// SAP-layer tests: key codings, the Table 1 schema as defined in the
// dictionary, loader correctness (row counts and cross-table consistency),
// join views, and the 2.2 vs 3.0 feature surface against this schema.
#include <gtest/gtest.h>

#include "sap/loader.h"
#include "sap/schema.h"
#include "sap/views.h"
#include "tpcd/dbgen.h"

namespace r3 {
namespace sap {
namespace {

using appsys::OsqlCond;
using rdbms::Value;

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

TEST(SapKeysTest, Codings) {
  EXPECT_EQ(Vbeln(42), "0000000042");
  EXPECT_EQ(Matnr(7), "0000000000000007");
  EXPECT_EQ(Posnr(3), "000003");
  EXPECT_EQ(Land1(24), "024");
  EXPECT_EQ(Knumv(42), Vbeln(42));  // pricing doc follows the order number
  EXPECT_EQ(OrderKeyOf(Vbeln(123456)), 123456);
  EXPECT_NE(Infnr(10, 0), Infnr(10, 1));
  EXPECT_NE(Infnr(10, 3), Infnr(11, 0));
}

class SapSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    appsys::AppServerOptions opts;
    opts.release = appsys::Release::kRelease22;
    sys_ = std::make_unique<appsys::R3System>(opts);
    ASSERT_OK(sys_->app.Bootstrap());
    ASSERT_OK(CreateSapSchema(&sys_->app));
    ASSERT_OK(CreateJoinViews(&sys_->app));
  }

  std::unique_ptr<appsys::R3System> sys_;
};

TEST_F(SapSchemaTest, SeventeenTablesWithPaperKinds) {
  appsys::DataDictionary* dict = sys_->app.dictionary();
  const char* transparent[] = {"T005", "T005T", "T005U", "MARA", "MAKT",
                               "KONP", "LFA1",  "EINA",  "EINE", "AUSP",
                               "KNA1", "VBAK",  "VBAP",  "VBEP", "STXL"};
  for (const char* t : transparent) {
    auto lt = dict->Get(t);
    ASSERT_TRUE(lt.ok()) << t;
    EXPECT_EQ(lt.value()->kind, appsys::TableKind::kTransparent) << t;
  }
  EXPECT_EQ(dict->Get("A004").value()->kind, appsys::TableKind::kPool);
  EXPECT_EQ(dict->Get("A004").value()->physical_table, "KAPOL");
  EXPECT_EQ(dict->Get("KONV").value()->kind, appsys::TableKind::kCluster);
  EXPECT_EQ(dict->Get("KONV").value()->physical_table, "KOCLU");
}

TEST_F(SapSchemaTest, EveryTableLeadsWithMandt) {
  for (const appsys::LogicalTable* t : sys_->app.dictionary()->AllTables()) {
    if (t->is_view || t->name == "DD02L" || t->name == "NRIV") continue;
    EXPECT_EQ(t->schema.column(0).name, "MANDT") << t->name;
    ASSERT_FALSE(t->key_columns.empty()) << t->name;
    EXPECT_EQ(t->key_columns[0], "MANDT") << t->name;
  }
}

TEST_F(SapSchemaTest, FillerMakesRowsRealisticallyWide) {
  // The Table 2 inflation depends on wide rows; guard the widths.
  auto vbap = sys_->app.dictionary()->Get("VBAP");
  ASSERT_TRUE(vbap.ok());
  EXPECT_GE(vbap.value()->schema.NumColumns(), 40u);
  auto mara = sys_->app.dictionary()->Get("MARA");
  ASSERT_TRUE(mara.ok());
  EXPECT_GE(mara.value()->schema.NumColumns(), 35u);
}

TEST_F(SapSchemaTest, FillerHelpers) {
  rdbms::Schema s({rdbms::ColChar("A", 3)});
  AddFiller(&s, 4);
  EXPECT_EQ(s.NumColumns(), 5u);
  EXPECT_EQ(s.column(4).length, 10);
  rdbms::Row r = WithFiller({Value::Str("x")}, 4);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_EQ(r[4].string_value(), "");
}

TEST_F(SapSchemaTest, LoaderPopulatesConsistently) {
  tpcd::DbGen gen(0.0005);
  SapLoader loader(&sys_->app, &gen);
  ASSERT_OK(loader.FastLoadAll());

  auto count = [&](const std::string& sql) {
    auto res = sys_->db.Query(sql);
    EXPECT_TRUE(res.ok()) << sql << ": " << res.status().ToString();
    return res.ok() ? res.value().rows[0][0].AsInt() : -1;
  };
  EXPECT_EQ(count("SELECT COUNT(*) FROM LFA1"), gen.NumSuppliers());
  EXPECT_EQ(count("SELECT COUNT(*) FROM MARA"), gen.NumParts());
  EXPECT_EQ(count("SELECT COUNT(*) FROM MAKT"), gen.NumParts());
  EXPECT_EQ(count("SELECT COUNT(*) FROM KONP"), gen.NumParts());
  EXPECT_EQ(count("SELECT COUNT(*) FROM EINA"), gen.NumPartSupps());
  EXPECT_EQ(count("SELECT COUNT(*) FROM EINE"), gen.NumPartSupps());
  EXPECT_EQ(count("SELECT COUNT(*) FROM KNA1"), gen.NumCustomers());
  EXPECT_EQ(count("SELECT COUNT(*) FROM VBAK"), gen.NumOrders());
  // One AUSP row per part, supplier, customer, and partsupp.
  EXPECT_EQ(count("SELECT COUNT(*) FROM AUSP"),
            gen.NumParts() + gen.NumSuppliers() + gen.NumCustomers() +
                gen.NumPartSupps());
  int64_t lineitems = 0;
  (void)gen.ForEachOrder([&](const tpcd::OrderRec& o) {
    lineitems += static_cast<int64_t>(o.lines.size());
    return Status::OK();
  });
  EXPECT_EQ(count("SELECT COUNT(*) FROM VBAP"), lineitems);
  EXPECT_EQ(count("SELECT COUNT(*) FROM VBEP"), lineitems);
  // One KOCLU bundle per order; three logical KONV rows per lineitem.
  EXPECT_EQ(count("SELECT COUNT(*) FROM KOCLU"), gen.NumOrders());
  auto konv_rows =
      sys_->app.dictionary()->ReadLogical("KONV", {});
  ASSERT_TRUE(konv_rows.ok());
  EXPECT_EQ(static_cast<int64_t>(konv_rows.value().size()), lineitems * 3);

  // Every VBAP position references existing master data.
  auto orphan = sys_->db.Query(
      "SELECT COUNT(*) FROM VBAP P WHERE NOT EXISTS "
      "(SELECT * FROM MARA M WHERE M.MANDT = P.MANDT "
      "AND M.MATNR = P.MATNR)");
  ASSERT_TRUE(orphan.ok());
  EXPECT_EQ(orphan.value().rows[0][0].AsInt(), 0);
}

TEST_F(SapSchemaTest, KonvPricingEncodesDiscountAndTax) {
  tpcd::DbGen gen(0.0005);
  SapLoader loader(&sys_->app, &gen);
  ASSERT_OK(loader.FastLoadAll());
  // For the first lineitem of order 1, KONV's DISC/TAX rows must encode the
  // generator's percentages in per-mille (the paper's 1 + KBETR/1000).
  tpcd::OrderRec first;
  bool got = false;
  (void)gen.ForEachOrder([&](const tpcd::OrderRec& o) {
    if (!got) {
      first = o;
      got = true;
    }
    return Status::OK();
  });
  auto rows = sys_->app.dictionary()->ReadLogical(
      "KONV", {appsys::DictCond{"KNUMV", rdbms::CmpOp::kEq,
                                Value::Str(Knumv(first.orderkey))},
               appsys::DictCond{"KPOSN", rdbms::CmpOp::kEq,
                                Value::Str(Posnr(1))}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);  // PR00, DISC, TAX
  double disc = 0, tax = 0;
  for (const rdbms::Row& r : rows.value()) {
    if (r[5].string_value() == kKschlDiscount) disc = r[6].AsDouble();
    if (r[5].string_value() == kKschlTax) tax = r[6].AsDouble();
  }
  EXPECT_DOUBLE_EQ(disc, -static_cast<double>(first.lines[0].discount_bp) * 10);
  EXPECT_DOUBLE_EQ(tax, static_cast<double>(first.lines[0].tax_bp) * 10);
}

TEST_F(SapSchemaTest, JoinViewsResolveThroughOpenSql) {
  tpcd::DbGen gen(0.0005);
  SapLoader loader(&sys_->app, &gen);
  ASSERT_OK(loader.FastLoadAll());
  appsys::OpenSqlQuery q;
  q.table = "VLIPS";  // VBAP x VBEP join view — usable even in Release 2.2
  q.columns = {"VBELN", "POSNR", "EDATU"};
  q.up_to = 5;
  auto res = sys_->app.open_sql()->Select(q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().rows.size(), 5u);
  // Views are read-only.
  EXPECT_FALSE(sys_->app.dictionary()
                   ->InsertLogical("VLIPS", rdbms::Row{})
                   .ok());
}

TEST_F(SapSchemaTest, BatchInputRejectsOrderForUnknownCustomer) {
  tpcd::DbGen gen(0.0005);
  SapLoader loader(&sys_->app, &gen);
  // Master data NOT loaded: entering an order must fail its checks.
  tpcd::OrderRec order = gen.MakeRefreshOrder(0);
  Status st = loader.EnterOrder(order);
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation) << st.ToString();
}

TEST_F(SapSchemaTest, DeleteOrderRemovesAllFragments) {
  tpcd::DbGen gen(0.0005);
  SapLoader loader(&sys_->app, &gen);
  ASSERT_OK(loader.FastLoadAll());
  tpcd::OrderRec extra = gen.MakeRefreshOrder(0);
  ASSERT_OK(loader.EnterOrder(extra));
  ASSERT_OK(loader.DeleteOrder(extra.orderkey));
  auto vbap = sys_->db.Query(
      "SELECT COUNT(*) FROM VBAP WHERE VBELN = '" + Vbeln(extra.orderkey) + "'");
  ASSERT_TRUE(vbap.ok());
  EXPECT_EQ(vbap.value().rows[0][0].AsInt(), 0);
  auto konv = sys_->app.dictionary()->ReadLogical(
      "KONV", {appsys::DictCond{"KNUMV", rdbms::CmpOp::kEq,
                                Value::Str(Knumv(extra.orderkey))}});
  ASSERT_TRUE(konv.ok());
  EXPECT_TRUE(konv.value().empty());
  auto texts = sys_->db.Query(
      "SELECT COUNT(*) FROM STXL WHERE TDNAME = '" + Vbeln(extra.orderkey) +
      "'");
  ASSERT_TRUE(texts.ok());
  EXPECT_EQ(texts.value().rows[0][0].AsInt(), 0);
}

}  // namespace
}  // namespace sap
}  // namespace r3
