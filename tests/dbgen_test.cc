// DBGEN tests: determinism, spec cardinalities, value domains (parameterized
// over scale factors), key-space structure, and refresh-order generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/date.h"
#include "tpcd/dbgen.h"
#include "tpcd/qgen.h"

namespace r3 {
namespace tpcd {
namespace {

TEST(DbGenTest, DeterministicAcrossInstances) {
  DbGen a(0.001), b(0.001);
  auto pa = a.MakeParts();
  auto pb = b.MakeParts();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); i += 17) {
    EXPECT_EQ(pa[i].name, pb[i].name);
    EXPECT_EQ(pa[i].type, pb[i].type);
  }
  std::vector<OrderRec> oa, ob;
  (void)a.ForEachOrder([&](const OrderRec& o) { oa.push_back(o); return Status::OK(); });
  (void)b.ForEachOrder([&](const OrderRec& o) { ob.push_back(o); return Status::OK(); });
  ASSERT_EQ(oa.size(), ob.size());
  EXPECT_EQ(oa[5].custkey, ob[5].custkey);
  EXPECT_EQ(oa[5].lines.size(), ob[5].lines.size());
}

TEST(DbGenTest, DifferentSeedsDiffer) {
  DbGen a(0.001, 1), b(0.001, 2);
  EXPECT_NE(a.MakeSuppliers()[0].address, b.MakeSuppliers()[0].address);
}

TEST(DbGenTest, FixedTables) {
  DbGen gen(0.001);
  EXPECT_EQ(gen.MakeRegions().size(), 5u);
  EXPECT_EQ(gen.MakeNations().size(), 25u);
  for (const NationRec& n : gen.MakeNations()) {
    EXPECT_GE(n.regionkey, 0);
    EXPECT_LE(n.regionkey, 4);
  }
}

class ScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScaleSweep, CardinalitiesScale) {
  double sf = GetParam();
  DbGen gen(sf);
  EXPECT_EQ(gen.NumSuppliers(), std::max<int64_t>(1, std::llround(10000 * sf)));
  EXPECT_EQ(gen.NumParts(), std::max<int64_t>(1, std::llround(200000 * sf)));
  EXPECT_EQ(gen.NumPartSupps(), gen.NumParts() * 4);
  EXPECT_EQ(gen.NumCustomers(),
            std::max<int64_t>(1, std::llround(150000 * sf)));
  EXPECT_EQ(gen.NumOrders(), std::max<int64_t>(1, std::llround(1500000 * sf)));
  EXPECT_EQ(gen.MakePartSupps().size(),
            static_cast<size_t>(gen.NumPartSupps()));
}

TEST_P(ScaleSweep, PartSuppPairsDistinct) {
  DbGen gen(GetParam());
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const PartSuppRec& ps : gen.MakePartSupps()) {
    EXPECT_TRUE(pairs.emplace(ps.partkey, ps.suppkey).second)
        << ps.partkey << "/" << ps.suppkey;
    EXPECT_GE(ps.suppkey, 1);
    EXPECT_LE(ps.suppkey, gen.NumSuppliers());
  }
}

INSTANTIATE_TEST_SUITE_P(Sf, ScaleSweep, ::testing::Values(0.0005, 0.002, 0.01));

TEST(DbGenTest, PartDomains) {
  DbGen gen(0.002);
  for (const PartRec& p : gen.MakeParts()) {
    EXPECT_GE(p.size, 1);
    EXPECT_LE(p.size, 50);
    EXPECT_EQ(p.retailprice_cents, DbGen::RetailPriceCents(p.partkey));
    EXPECT_EQ(p.brand.substr(0, 6), "Brand#");
    EXPECT_EQ(std::count(p.name.begin(), p.name.end(), ' '), 4);  // 5 words
    // Type is three syllables.
    EXPECT_EQ(std::count(p.type.begin(), p.type.end(), ' '), 2);
  }
}

TEST(DbGenTest, OrderAndLineItemInvariants) {
  DbGen gen(0.002);
  int64_t orders = 0, lines = 0;
  std::set<int64_t> orderkeys;
  (void)gen.ForEachOrder([&](const OrderRec& o) -> Status {
    ++orders;
    EXPECT_TRUE(orderkeys.insert(o.orderkey).second);
    EXPECT_NE(o.custkey % 3, 0) << "multiples of 3 place no orders";
    EXPECT_GE(o.orderdate, DbGen::StartDate());
    EXPECT_LE(o.orderdate, DbGen::EndDate() - 151);
    EXPECT_GE(o.lines.size(), 1u);
    EXPECT_LE(o.lines.size(), 7u);
    int64_t total = 0;
    for (const LineItemRec& l : o.lines) {
      ++lines;
      EXPECT_EQ(l.orderkey, o.orderkey);
      EXPECT_GE(l.quantity, 1);
      EXPECT_LE(l.quantity, 50);
      EXPECT_GE(l.discount_bp, 0);
      EXPECT_LE(l.discount_bp, 10);
      EXPECT_LE(l.tax_bp, 8);
      EXPECT_GT(l.shipdate, o.orderdate);
      EXPECT_GT(l.receiptdate, l.shipdate);
      EXPECT_EQ(l.extendedprice_cents,
                l.quantity * DbGen::RetailPriceCents(l.partkey));
      // Flags follow the spec's current-date rule.
      if (l.receiptdate <= DbGen::CurrentDate()) {
        EXPECT_TRUE(l.returnflag == "R" || l.returnflag == "A");
      } else {
        EXPECT_EQ(l.returnflag, "N");
      }
      EXPECT_EQ(l.linestatus, l.shipdate > DbGen::CurrentDate() ? "O" : "F");
      total += l.extendedprice_cents * (100 - l.discount_bp) / 100 *
               (100 + l.tax_bp) / 100;
    }
    EXPECT_EQ(o.totalprice_cents, total);
    return Status::OK();
  });
  EXPECT_EQ(orders, gen.NumOrders());
  // Average ~4 lines per order.
  EXPECT_NEAR(static_cast<double>(lines) / orders, 4.0, 0.5);
}

TEST(DbGenTest, SparseOrderKeys) {
  DbGen gen(0.001);
  std::vector<int64_t> keys;
  (void)gen.ForEachOrder([&](const OrderRec& o) {
    keys.push_back(o.orderkey);
    return Status::OK();
  });
  // 8 used out of every 32-key block.
  EXPECT_EQ(keys[0], 1);
  EXPECT_EQ(keys[7], 8);
  EXPECT_EQ(keys[8], 33);
}

TEST(DbGenTest, RefreshOrdersBeyondBaseKeySpace) {
  DbGen gen(0.001);
  int64_t max_base = 0;
  (void)gen.ForEachOrder([&](const OrderRec& o) {
    max_base = std::max(max_base, o.orderkey);
    return Status::OK();
  });
  OrderRec r0 = gen.MakeRefreshOrder(0);
  OrderRec r1 = gen.MakeRefreshOrder(1);
  EXPECT_GT(r0.orderkey, max_base);
  EXPECT_EQ(r1.orderkey, r0.orderkey + 1);
  // Deterministic too.
  EXPECT_EQ(gen.MakeRefreshOrder(0).custkey, r0.custkey);
}

TEST(DbGenTest, SuppliersOfPartConsistentWithLineItems) {
  DbGen gen(0.001);
  (void)gen.ForEachOrder([&](const OrderRec& o) {
    for (const LineItemRec& l : o.lines) {
      auto supps = gen.SuppliersOfPart(l.partkey);
      EXPECT_NE(std::find(supps.begin(), supps.end(), l.suppkey), supps.end())
          << "lineitem references a non-partsupp supplier";
    }
    return Status::OK();
  });
}

TEST(DbGenTest, CommentMarkersAreRare) {
  // The marker probability is 1/200; over 2000 suppliers we expect ~10 and
  // never a flood.
  DbGen gen(0.2);
  int complaints = 0;
  auto supps = gen.MakeSuppliers();
  for (const SupplierRec& s : supps) {
    if (s.comment.find("Customer Complaints") != std::string::npos) {
      ++complaints;
    }
  }
  EXPECT_GT(complaints, 0);
  EXPECT_LT(complaints, static_cast<int>(supps.size()) / 20);
}

// ---------------------------------------------------------------------------
// QGEN
// ---------------------------------------------------------------------------

TEST(QgenTest, DefaultsAreSpecValidationValues) {
  QueryParams p = QueryParams::Defaults(0.2);
  EXPECT_EQ(p.q1_delta_days, 90);
  EXPECT_EQ(p.q2_size, 15);
  EXPECT_EQ(p.q2_type_suffix, "BRASS");
  EXPECT_EQ(date::ToString(p.q3_date), "1995-03-15");
  EXPECT_DOUBLE_EQ(p.q11_fraction, 0.0001 / 0.2);
}

TEST(QgenTest, RandomParamsConform) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    QueryParams p = QueryParams::Make(0.1, seed);
    EXPECT_GE(p.q1_delta_days, 60);
    EXPECT_LE(p.q1_delta_days, 120);
    EXPECT_GE(p.q2_size, 1);
    EXPECT_LE(p.q2_size, 50);
    EXPECT_NE(p.q7_nation1, p.q7_nation2);
    EXPECT_NE(p.q12_mode1, p.q12_mode2);
    EXPECT_EQ(p.q16_sizes.size(), 8u);
    std::set<int64_t> sizes(p.q16_sizes.begin(), p.q16_sizes.end());
    EXPECT_EQ(sizes.size(), 8u);
  }
}

TEST(QgenTest, DeterministicBySeed) {
  QueryParams a = QueryParams::Make(0.1, 7);
  QueryParams b = QueryParams::Make(0.1, 7);
  EXPECT_EQ(a.q9_color, b.q9_color);
  EXPECT_EQ(a.q5_region, b.q5_region);
}

}  // namespace
}  // namespace tpcd
}  // namespace r3
