// Unit tests for the Value type: construction, comparison (incl. NULL and
// cross-numeric ordering), hashing consistency, rendering, and casts.
#include <gtest/gtest.h>

#include "common/date.h"
#include "rdbms/value.h"

namespace r3 {
namespace rdbms {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
}

TEST(ValueTest, Constructors) {
  EXPECT_EQ(Value::Int(5).int_value(), 5);
  EXPECT_DOUBLE_EQ(Value::Dbl(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Str("x").string_value(), "x");
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Date(100).date_value(), 100);
  EXPECT_EQ(Value::DecimalFromCents(1234).decimal_cents(), 1234);
  EXPECT_FALSE(Value::Int(0).is_null());
}

TEST(ValueTest, DecimalRounding) {
  EXPECT_EQ(Value::Decimal(1.006).decimal_cents(), 101);  // rounds to cents
  EXPECT_EQ(Value::Decimal(-2.50).decimal_cents(), -250);
  EXPECT_DOUBLE_EQ(Value::Decimal(123.45).AsDouble(), 123.45);
}

TEST(ValueTest, AsDoubleAndAsInt) {
  EXPECT_DOUBLE_EQ(Value::Int(7).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value::DecimalFromCents(150).AsDouble(), 1.5);
  EXPECT_EQ(Value::Dbl(3.9).AsInt(), 3);
  EXPECT_EQ(Value::DecimalFromCents(199).AsInt(), 1);
}

TEST(ValueTest, NullsSortFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null(DataType::kString)), 0);
  EXPECT_GT(Value::Str("").Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericCrossComparison) {
  EXPECT_EQ(Value::Int(5).Compare(Value::Dbl(5.0)), 0);
  EXPECT_EQ(Value::Int(5).Compare(Value::DecimalFromCents(500)), 0);
  EXPECT_LT(Value::DecimalFromCents(499).Compare(Value::Int(5)), 0);
  EXPECT_GT(Value::Dbl(5.01).Compare(Value::DecimalFromCents(500)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_LT(Value::Str("ab").Compare(Value::Str("abc")), 0);
  EXPECT_EQ(Value::Str("x").Compare(Value::Str("x")), 0);
}

TEST(ValueTest, DateComparison) {
  EXPECT_LT(Value::Date(10).Compare(Value::Date(11)), 0);
  EXPECT_EQ(Value::Date(10), Value::Date(10));
}

TEST(ValueTest, EqualValuesHashEqual) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Dbl(5.0).Hash());
  EXPECT_EQ(Value::Int(5).Hash(), Value::DecimalFromCents(500).Hash());
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::DecimalFromCents(105).ToString(), "1.05");
  EXPECT_EQ(Value::DecimalFromCents(-5).ToString(), "-0.05");
  EXPECT_EQ(Value::DecimalFromCents(-105).ToString(), "-1.05");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Date(date::FromYmd(1995, 6, 17)).ToString(), "1995-06-17");
}

TEST(ValueTest, CastNumericFamilies) {
  auto as_int = Value::Dbl(3.7).CastTo(DataType::kInt64);
  ASSERT_TRUE(as_int.ok());
  EXPECT_EQ(as_int.value().int_value(), 3);

  auto as_dec = Value::Int(5).CastTo(DataType::kDecimal);
  ASSERT_TRUE(as_dec.ok());
  EXPECT_EQ(as_dec.value().decimal_cents(), 500);

  auto as_dbl = Value::DecimalFromCents(150).CastTo(DataType::kDouble);
  ASSERT_TRUE(as_dbl.ok());
  EXPECT_DOUBLE_EQ(as_dbl.value().double_value(), 1.5);
}

TEST(ValueTest, CastFromStrings) {
  EXPECT_EQ(Value::Str(" 42 ").CastTo(DataType::kInt64).value().int_value(), 42);
  EXPECT_DOUBLE_EQ(
      Value::Str("2.5").CastTo(DataType::kDouble).value().double_value(), 2.5);
  EXPECT_EQ(
      Value::Str("1.25").CastTo(DataType::kDecimal).value().decimal_cents(),
      125);
  EXPECT_EQ(Value::Str("1995-06-17").CastTo(DataType::kDate).value().date_value(),
            date::FromYmd(1995, 6, 17));
  EXPECT_FALSE(Value::Str("abc").CastTo(DataType::kInt64).ok());
  EXPECT_FALSE(Value::Str("1.2.3").CastTo(DataType::kDouble).ok());
}

TEST(ValueTest, CastToString) {
  EXPECT_EQ(Value::Int(7).CastTo(DataType::kString).value().string_value(), "7");
}

TEST(ValueTest, CastPreservesNull) {
  auto v = Value::Null(DataType::kInt64).CastTo(DataType::kString);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());
  EXPECT_EQ(v.value().type(), DataType::kString);
}

TEST(ValueTest, IsNumericClassifier) {
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_TRUE(IsNumeric(DataType::kDecimal));
  EXPECT_FALSE(IsNumeric(DataType::kString));
  EXPECT_FALSE(IsNumeric(DataType::kDate));
  EXPECT_FALSE(IsNumeric(DataType::kBool));
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(DataTypeName(DataType::kDecimal), "DECIMAL");
  EXPECT_STREQ(DataTypeName(DataType::kDate), "DATE");
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
