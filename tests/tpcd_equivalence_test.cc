// The central correctness property of the reproduction: all four
// implementation strategies (isolated RDBMS, Native SQL, Open SQL 2.2,
// Open SQL 3.0) produce equivalent answers for every TPC-D query.
#include <gtest/gtest.h>

#include "sap/loader.h"
#include "sap/schema.h"
#include "sap/views.h"
#include "tpcd/loader.h"
#include "tpcd/queries.h"
#include "tpcd/schema.h"
#include "tpcd/update_functions.h"
#include "tpcd/validate.h"

namespace r3 {
namespace tpcd {
namespace {

constexpr double kSf = 0.002;

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

/// Queries whose output order is fully specified (compare ordered).
bool OrderedOutput(int q) {
  switch (q) {
    case 1:
    case 4:
    case 12:
    case 13:
      return true;  // deterministic single-column sorts
    default:
      return false;  // ties on float sort keys make order ambiguous
  }
}

struct Fixture {
  std::unique_ptr<rdbms::Database> rdbms_db;
  std::unique_ptr<appsys::R3System> sap22;
  std::unique_ptr<appsys::R3System> sap30;
  std::unique_ptr<DbGen> gen;
  QueryParams params;

  std::unique_ptr<IQuerySet> q_rdbms;
  std::unique_ptr<IQuerySet> q_native22;
  std::unique_ptr<IQuerySet> q_open22;
  std::unique_ptr<IQuerySet> q_native30;
  std::unique_ptr<IQuerySet> q_open30;

  static Fixture* Get() {
    static Fixture* instance = []() {
      auto* f = new Fixture();
      f->Setup();
      return f;
    }();
    return instance;
  }

  void Setup() {
    gen = std::make_unique<DbGen>(kSf);
    params = QueryParams::Defaults(kSf);

    rdbms_db = std::make_unique<rdbms::Database>();
    ASSERT_OK(CreateTpcdSchema(rdbms_db.get()));
    ASSERT_OK(LoadTpcdDatabase(rdbms_db.get(), gen.get()));
    q_rdbms = MakeRdbmsQuerySet(rdbms_db.get());

    auto make_sap = [&](appsys::Release release)
        -> std::unique_ptr<appsys::R3System> {
      appsys::AppServerOptions opts;
      opts.release = release;
      auto sys = std::make_unique<appsys::R3System>(opts);
      Status st = sys->app.Bootstrap();
      EXPECT_TRUE(st.ok()) << st.ToString();
      st = sap::CreateSapSchema(&sys->app);
      EXPECT_TRUE(st.ok()) << st.ToString();
      st = sap::CreateJoinViews(&sys->app);
      EXPECT_TRUE(st.ok()) << st.ToString();
      sap::SapLoader loader(&sys->app, gen.get());
      st = loader.FastLoadAll();
      EXPECT_TRUE(st.ok()) << st.ToString();
      return sys;
    };
    sap22 = make_sap(appsys::Release::kRelease22);
    q_native22 = MakeNativeQuerySet(&sap22->app);
    q_open22 = MakeOpen22QuerySet(&sap22->app);

    sap30 = make_sap(appsys::Release::kRelease30);
    Status st = sap30->app.dictionary()->ConvertToTransparent(
        "KONV", appsys::Release::kRelease30);
    EXPECT_TRUE(st.ok()) << st.ToString();
    q_native30 = MakeNativeQuerySet(&sap30->app);
    q_open30 = MakeOpen30QuerySet(&sap30->app);
  }
};

class EquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EquivalenceTest, AllVariantsAgree) {
  int q = GetParam();
  Fixture* f = Fixture::Get();

  auto reference = f->q_rdbms->RunQuery(q, f->params);
  ASSERT_TRUE(reference.ok()) << "rdbms Q" << q << ": "
                              << reference.status().ToString();

  struct VariantRef {
    const char* name;
    IQuerySet* set;
  };
  VariantRef variants[] = {
      {"native22", f->q_native22.get()},
      {"open22", f->q_open22.get()},
      {"native30", f->q_native30.get()},
      {"open30", f->q_open30.get()},
  };
  for (const VariantRef& v : variants) {
    auto res = v.set->RunQuery(q, f->params);
    ASSERT_TRUE(res.ok()) << v.name << " Q" << q << ": "
                          << res.status().ToString();
    std::string diff;
    EXPECT_TRUE(ResultsEquivalent(reference.value(), res.value(),
                                  OrderedOutput(q), &diff))
        << v.name << " Q" << q << " differs from rdbms: " << diff
        << "\n(reference rows=" << reference.value().rows.size()
        << ", variant rows=" << res.value().rows.size() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, EquivalenceTest,
                         ::testing::Range(1, kNumQueries + 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(UpdateFunctionsTest, Uf1ThenUf2RestoresCounts) {
  Fixture* f = Fixture::Get();
  int64_t count = UpdateFunctionCount(*f->gen);

  auto order_count = [&](rdbms::Database* db) -> int64_t {
    auto res = db->Query("SELECT COUNT(*) FROM ORDERS");
    EXPECT_TRUE(res.ok());
    return res.value().rows[0][0].AsInt();
  };
  int64_t before = order_count(f->rdbms_db.get());
  ASSERT_OK(RunUf1Rdbms(f->rdbms_db.get(), f->gen.get(), count));
  EXPECT_EQ(order_count(f->rdbms_db.get()), before + count);
  ASSERT_OK(RunUf2Rdbms(f->rdbms_db.get(), f->gen.get(), count));
  EXPECT_EQ(order_count(f->rdbms_db.get()), before);

  // SAP side via batch input.
  auto vbak_count = [&](appsys::R3System* sys) -> int64_t {
    auto res = sys->db.Query("SELECT COUNT(*) FROM VBAK");
    EXPECT_TRUE(res.ok());
    return res.value().rows[0][0].AsInt();
  };
  sap::SapLoader loader(&f->sap30->app, f->gen.get());
  int64_t sap_before = vbak_count(f->sap30.get());
  ASSERT_OK(RunUf1Sap(&loader, count));
  EXPECT_EQ(vbak_count(f->sap30.get()), sap_before + count);
  ASSERT_OK(RunUf2Sap(&loader, count));
  EXPECT_EQ(vbak_count(f->sap30.get()), sap_before);
}

TEST(UpdateFunctionsTest, Uf1ThenUf2RestoresChecksums) {
  Fixture* f = Fixture::Get();
  rdbms::Database* db = f->rdbms_db.get();
  int64_t count = UpdateFunctionCount(*f->gen);

  RefreshVerifier verifier;
  ASSERT_OK(verifier.Capture(db));
  ASSERT_OK(RunUf1Rdbms(db, f->gen.get(), count));
  EXPECT_FALSE(verifier.VerifyRestored(db).ok());  // it does detect change
  ASSERT_OK(RunUf2Rdbms(db, f->gen.get(), count));
  ASSERT_OK(verifier.VerifyRestored(db));

  // Idempotence: a second pair over the same refresh indices restores the
  // identical row counts and content checksums again...
  ASSERT_OK(RunUf1Rdbms(db, f->gen.get(), count));
  ASSERT_OK(RunUf2Rdbms(db, f->gen.get(), count));
  ASSERT_OK(verifier.VerifyRestored(db));

  // ...and so does a pair over a disjoint index range, the way the
  // throughput test's update stream issues them.
  ASSERT_OK(RunUf1Rdbms(db, f->gen.get(), count, /*start=*/count));
  ASSERT_OK(RunUf2Rdbms(db, f->gen.get(), count, /*start=*/count));
  ASSERT_OK(verifier.VerifyRestored(db));
}

}  // namespace
}  // namespace tpcd
}  // namespace r3
