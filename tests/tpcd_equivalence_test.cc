// The central correctness property of the reproduction: all four
// implementation strategies (isolated RDBMS, Native SQL, Open SQL 2.2,
// Open SQL 3.0) produce equivalent answers for every TPC-D query.
#include <gtest/gtest.h>

#include <algorithm>

#include "rdbms/index/key_codec.h"
#include "sap/loader.h"
#include "sap/schema.h"
#include "sap/views.h"
#include "tpcd/loader.h"
#include "tpcd/queries.h"
#include "tpcd/schema.h"
#include "tpcd/update_functions.h"
#include "tpcd/validate.h"

namespace r3 {
namespace tpcd {
namespace {

constexpr double kSf = 0.002;

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

/// Queries whose output order is fully specified (compare ordered).
bool OrderedOutput(int q) {
  switch (q) {
    case 1:
    case 4:
    case 12:
    case 13:
      return true;  // deterministic single-column sorts
    default:
      return false;  // ties on float sort keys make order ambiguous
  }
}

struct Fixture {
  std::unique_ptr<rdbms::Database> rdbms_db;
  std::unique_ptr<appsys::R3System> sap22;
  std::unique_ptr<appsys::R3System> sap30;
  std::unique_ptr<DbGen> gen;
  QueryParams params;

  std::unique_ptr<IQuerySet> q_rdbms;
  std::unique_ptr<IQuerySet> q_native22;
  std::unique_ptr<IQuerySet> q_open22;
  std::unique_ptr<IQuerySet> q_native30;
  std::unique_ptr<IQuerySet> q_open30;

  static Fixture* Get() {
    static Fixture* instance = []() {
      auto* f = new Fixture();
      f->Setup();
      return f;
    }();
    return instance;
  }

  void Setup() {
    gen = std::make_unique<DbGen>(kSf);
    params = QueryParams::Defaults(kSf);

    rdbms_db = std::make_unique<rdbms::Database>();
    ASSERT_OK(CreateTpcdSchema(rdbms_db.get()));
    ASSERT_OK(LoadTpcdDatabase(rdbms_db.get(), gen.get()));
    q_rdbms = MakeRdbmsQuerySet(rdbms_db.get());

    auto make_sap = [&](appsys::Release release)
        -> std::unique_ptr<appsys::R3System> {
      appsys::AppServerOptions opts;
      opts.release = release;
      auto sys = std::make_unique<appsys::R3System>(opts);
      Status st = sys->app.Bootstrap();
      EXPECT_TRUE(st.ok()) << st.ToString();
      st = sap::CreateSapSchema(&sys->app);
      EXPECT_TRUE(st.ok()) << st.ToString();
      st = sap::CreateJoinViews(&sys->app);
      EXPECT_TRUE(st.ok()) << st.ToString();
      sap::SapLoader loader(&sys->app, gen.get());
      st = loader.FastLoadAll();
      EXPECT_TRUE(st.ok()) << st.ToString();
      return sys;
    };
    sap22 = make_sap(appsys::Release::kRelease22);
    q_native22 = MakeNativeQuerySet(&sap22->app);
    q_open22 = MakeOpen22QuerySet(&sap22->app);

    sap30 = make_sap(appsys::Release::kRelease30);
    Status st = sap30->app.dictionary()->ConvertToTransparent(
        "KONV", appsys::Release::kRelease30);
    EXPECT_TRUE(st.ok()) << st.ToString();
    q_native30 = MakeNativeQuerySet(&sap30->app);
    q_open30 = MakeOpen30QuerySet(&sap30->app);
  }
};

class EquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EquivalenceTest, AllVariantsAgree) {
  int q = GetParam();
  Fixture* f = Fixture::Get();

  auto reference = f->q_rdbms->RunQuery(q, f->params);
  ASSERT_TRUE(reference.ok()) << "rdbms Q" << q << ": "
                              << reference.status().ToString();

  struct VariantRef {
    const char* name;
    IQuerySet* set;
  };
  VariantRef variants[] = {
      {"native22", f->q_native22.get()},
      {"open22", f->q_open22.get()},
      {"native30", f->q_native30.get()},
      {"open30", f->q_open30.get()},
  };
  for (const VariantRef& v : variants) {
    auto res = v.set->RunQuery(q, f->params);
    ASSERT_TRUE(res.ok()) << v.name << " Q" << q << ": "
                          << res.status().ToString();
    std::string diff;
    EXPECT_TRUE(ResultsEquivalent(reference.value(), res.value(),
                                  OrderedOutput(q), &diff))
        << v.name << " Q" << q << " differs from rdbms: " << diff
        << "\n(reference rows=" << reference.value().rows.size()
        << ", variant rows=" << res.value().rows.size() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, EquivalenceTest,
                         ::testing::Range(1, kNumQueries + 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(UpdateFunctionsTest, Uf1ThenUf2RestoresCounts) {
  Fixture* f = Fixture::Get();
  int64_t count = UpdateFunctionCount(*f->gen);

  auto order_count = [&](rdbms::Database* db) -> int64_t {
    auto res = db->Query("SELECT COUNT(*) FROM ORDERS");
    EXPECT_TRUE(res.ok());
    return res.value().rows[0][0].AsInt();
  };
  int64_t before = order_count(f->rdbms_db.get());
  ASSERT_OK(RunUf1Rdbms(f->rdbms_db.get(), f->gen.get(), count));
  EXPECT_EQ(order_count(f->rdbms_db.get()), before + count);
  ASSERT_OK(RunUf2Rdbms(f->rdbms_db.get(), f->gen.get(), count));
  EXPECT_EQ(order_count(f->rdbms_db.get()), before);

  // SAP side via batch input.
  auto vbak_count = [&](appsys::R3System* sys) -> int64_t {
    auto res = sys->db.Query("SELECT COUNT(*) FROM VBAK");
    EXPECT_TRUE(res.ok());
    return res.value().rows[0][0].AsInt();
  };
  sap::SapLoader loader(&f->sap30->app, f->gen.get());
  int64_t sap_before = vbak_count(f->sap30.get());
  ASSERT_OK(RunUf1Sap(&loader, count));
  EXPECT_EQ(vbak_count(f->sap30.get()), sap_before + count);
  ASSERT_OK(RunUf2Sap(&loader, count));
  EXPECT_EQ(vbak_count(f->sap30.get()), sap_before);
}

TEST(UpdateFunctionsTest, Uf1ThenUf2RestoresChecksums) {
  Fixture* f = Fixture::Get();
  rdbms::Database* db = f->rdbms_db.get();
  int64_t count = UpdateFunctionCount(*f->gen);

  RefreshVerifier verifier;
  ASSERT_OK(verifier.Capture(db));
  ASSERT_OK(RunUf1Rdbms(db, f->gen.get(), count));
  EXPECT_FALSE(verifier.VerifyRestored(db).ok());  // it does detect change
  ASSERT_OK(RunUf2Rdbms(db, f->gen.get(), count));
  ASSERT_OK(verifier.VerifyRestored(db));

  // Idempotence: a second pair over the same refresh indices restores the
  // identical row counts and content checksums again...
  ASSERT_OK(RunUf1Rdbms(db, f->gen.get(), count));
  ASSERT_OK(RunUf2Rdbms(db, f->gen.get(), count));
  ASSERT_OK(verifier.VerifyRestored(db));

  // ...and so does a pair over a disjoint index range, the way the
  // throughput test's update stream issues them.
  ASSERT_OK(RunUf1Rdbms(db, f->gen.get(), count, /*start=*/count));
  ASSERT_OK(RunUf2Rdbms(db, f->gen.get(), count, /*start=*/count));
  ASSERT_OK(verifier.VerifyRestored(db));
}

// -- Storage-engine equivalence: row heap vs columnar -------------------------
//
// The --engine knob must be invisible in query answers: the same TPC-D
// database loaded into the columnar engine returns byte-identical rows for
// all 17 queries, at any DOP and batch size.

/// The TPC-D database loaded into the columnar engine (shares the Fixture's
/// DbGen so both engines hold identical data).
struct ColumnarFixture {
  std::unique_ptr<rdbms::Database> db;
  std::unique_ptr<IQuerySet> queries;

  static ColumnarFixture* Get() {
    static ColumnarFixture* instance = []() {
      auto* f = new ColumnarFixture();
      f->Setup();
      return f;
    }();
    return instance;
  }

  void Setup() {
    rdbms::DatabaseOptions opts;
    opts.default_engine = rdbms::EngineKind::kColumnar;
    db = std::make_unique<rdbms::Database>(nullptr, opts);
    ASSERT_OK(CreateTpcdSchema(db.get()));
    ASSERT_OK(LoadTpcdDatabase(db.get(), Fixture::Get()->gen.get()));
    queries = MakeRdbmsQuerySet(db.get());
  }
};

/// Canonical byte encoding of a result, order-normalized: engine equality
/// is exact (same engine-independent plans and value arithmetic), not the
/// tolerance-based cross-variant comparison above.
std::vector<std::string> CanonicalRows(const rdbms::QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const rdbms::Row& row : r.rows) {
    out.push_back(rdbms::key_codec::Encode(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class EngineEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalenceTest, ColumnarMatchesRowByteForByte) {
  int q = GetParam();
  Fixture* f = Fixture::Get();
  ColumnarFixture* c = ColumnarFixture::Get();

  auto row_res = f->q_rdbms->RunQuery(q, f->params);
  ASSERT_TRUE(row_res.ok()) << "row Q" << q << ": "
                            << row_res.status().ToString();
  auto col_res = c->queries->RunQuery(q, f->params);
  ASSERT_TRUE(col_res.ok()) << "columnar Q" << q << ": "
                            << col_res.status().ToString();

  ASSERT_EQ(row_res.value().rows.size(), col_res.value().rows.size())
      << "Q" << q;
  if (OrderedOutput(q)) {
    for (size_t i = 0; i < row_res.value().rows.size(); ++i) {
      EXPECT_EQ(rdbms::key_codec::Encode(row_res.value().rows[i]),
                rdbms::key_codec::Encode(col_res.value().rows[i]))
          << "Q" << q << " row " << i;
    }
  } else {
    EXPECT_EQ(CanonicalRows(row_res.value()), CanonicalRows(col_res.value()))
        << "Q" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, EngineEquivalenceTest,
                         ::testing::Range(1, kNumQueries + 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(EngineInvarianceTest, ColumnarResultsInvariantAcrossDopAndBatchSize) {
  Fixture* f = Fixture::Get();
  ColumnarFixture* c = ColumnarFixture::Get();
  // One scan-shaped and one join-shaped query exercise both plan families.
  for (int q : {6, 3}) {
    auto baseline = c->queries->RunQuery(q, f->params);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    const std::vector<std::string> want = CanonicalRows(baseline.value());

    c->db->set_dop(4);
    auto dop4 = c->queries->RunQuery(q, f->params);
    c->db->set_dop(1);
    ASSERT_TRUE(dop4.ok()) << dop4.status().ToString();
    EXPECT_EQ(CanonicalRows(dop4.value()), want) << "Q" << q << " dop=4";

    for (size_t batch : {size_t{1}, size_t{7}}) {
      c->db->set_batch_rows(batch);
      int64_t t0 = c->db->clock()->NowMicros();
      auto res = c->queries->RunQuery(q, f->params);
      int64_t elapsed = c->db->clock()->NowMicros() - t0;
      c->db->set_batch_rows(rdbms::kDefaultBatchRows);
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      EXPECT_EQ(CanonicalRows(res.value()), want)
          << "Q" << q << " batch=" << batch;
      // Batch size is a pure wall-clock knob on the columnar path too.
      int64_t t1 = c->db->clock()->NowMicros();
      auto again = c->queries->RunQuery(q, f->params);
      int64_t elapsed_default = c->db->clock()->NowMicros() - t1;
      ASSERT_TRUE(again.ok()) << again.status().ToString();
      EXPECT_EQ(elapsed, elapsed_default) << "Q" << q << " batch=" << batch;
    }
  }
}

TEST(EngineSpeedupTest, ColumnarIsFasterOnScanBoundPower) {
  Fixture* f = Fixture::Get();
  ColumnarFixture* c = ColumnarFixture::Get();
  // Q6 is the scan-bound poster child (measured ~5.7x at this SF; CI
  // asserts the full >=5x bar on the bench output — here a conservative
  // floor guards against cost-model regressions).
  int64_t r0 = f->rdbms_db->clock()->NowMicros();
  auto row_res = f->q_rdbms->RunQuery(6, f->params);
  int64_t row_us = f->rdbms_db->clock()->NowMicros() - r0;
  ASSERT_TRUE(row_res.ok()) << row_res.status().ToString();

  int64_t c0 = c->db->clock()->NowMicros();
  auto col_res = c->queries->RunQuery(6, f->params);
  int64_t col_us = c->db->clock()->NowMicros() - c0;
  ASSERT_TRUE(col_res.ok()) << col_res.status().ToString();

  EXPECT_GE(row_us, 3 * col_us)
      << "row=" << row_us << "us columnar=" << col_us << "us";
}

}  // namespace
}  // namespace tpcd
}  // namespace r3
