// Property tests for the two wire formats:
//  * row serialization round-trips exactly for random rows (TEST_P sweep);
//  * the memcomparable key codec preserves value order bytewise.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "rdbms/index/key_codec.h"
#include "rdbms/row.h"

namespace r3 {
namespace rdbms {
namespace {

Schema TestSchema() {
  return Schema({ColInt("I8"), ColInt("I4", 4), ColDouble("D"),
                 ColDecimal("DEC"), ColChar("C", 10), ColVarchar("V"),
                 ColDate("DT"), ColBool("B")});
}

Value RandomValueFor(Rng* rng, const Column& col, bool allow_null = true) {
  if (allow_null && rng->Bernoulli(0.15)) return Value::Null(col.type);
  switch (col.type) {
    case DataType::kInt64:
      if (col.length == 4) {
        return Value::Int(rng->Uniform(-2000000000LL, 2000000000LL));
      }
      return Value::Int(rng->Uniform(-1e15, 1e15));
    case DataType::kDouble:
      return Value::Dbl(static_cast<double>(rng->Uniform(-1e9, 1e9)) / 977.0);
    case DataType::kDecimal:
      return Value::DecimalFromCents(rng->Uniform(-1e9, 1e9));
    case DataType::kString: {
      std::string s = rng->AlphaString(0, col.length > 0 ? col.length : 40);
      return Value::Str(s);
    }
    case DataType::kDate:
      return Value::Date(static_cast<int32_t>(rng->Uniform(-30000, 30000)));
    case DataType::kBool:
      return Value::Bool(rng->Bernoulli(0.5));
  }
  return Value::Null();
}

// ---------------------------------------------------------------------------
// Row serialization
// ---------------------------------------------------------------------------

class RowRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RowRoundTrip, RandomRowsSurviveExactly) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  Schema schema = TestSchema();
  for (int iter = 0; iter < 50; ++iter) {
    Row row;
    for (size_t c = 0; c < schema.NumColumns(); ++c) {
      row.push_back(RandomValueFor(&rng, schema.column(c)));
    }
    std::string bytes;
    ASSERT_TRUE(SerializeRow(schema, row, &bytes).ok());
    EXPECT_EQ(bytes.size(), SerializedRowSize(schema, row));
    Row back;
    ASSERT_TRUE(DeserializeRow(schema, bytes, &back).ok());
    ASSERT_EQ(back.size(), row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ(back[c].is_null(), row[c].is_null()) << "col " << c;
      if (!row[c].is_null()) {
        EXPECT_EQ(back[c].Compare(row[c]), 0)
            << "col " << c << ": " << row[c].ToString() << " vs "
            << back[c].ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowRoundTrip, ::testing::Range(0, 8));

TEST(RowCodecTest, CharIsBlankPaddedAndTrimmed) {
  Schema s({ColChar("C", 8)});
  std::string bytes;
  ASSERT_TRUE(SerializeRow(s, Row{Value::Str("hi")}, &bytes).ok());
  EXPECT_EQ(bytes.size(), 1u + 8u);
  Row back;
  ASSERT_TRUE(DeserializeRow(s, bytes, &back).ok());
  EXPECT_EQ(back[0].string_value(), "hi");  // padding removed on read
}

TEST(RowCodecTest, WidthMismatchRejected) {
  Schema s({ColInt("A"), ColInt("B")});
  std::string bytes;
  EXPECT_FALSE(SerializeRow(s, Row{Value::Int(1)}, &bytes).ok());
}

TEST(RowCodecTest, TruncatedBytesRejected) {
  Schema s({ColInt("A"), ColVarchar("V")});
  std::string bytes;
  ASSERT_TRUE(
      SerializeRow(s, Row{Value::Int(1), Value::Str("hello")}, &bytes).ok());
  Row back;
  EXPECT_FALSE(DeserializeRow(s, bytes.substr(0, bytes.size() - 2), &back).ok());
  EXPECT_FALSE(DeserializeRow(s, bytes + "x", &back).ok());
}

TEST(RowCodecTest, Int4WidthRoundTripsNegatives) {
  Schema s({ColInt("I", 4)});
  std::string bytes;
  ASSERT_TRUE(SerializeRow(s, Row{Value::Int(-123456)}, &bytes).ok());
  EXPECT_EQ(bytes.size(), 1u + 4u);
  Row back;
  ASSERT_TRUE(DeserializeRow(s, bytes, &back).ok());
  EXPECT_EQ(back[0].int_value(), -123456);
}

TEST(RowCodecTest, RowToStringRendering) {
  EXPECT_EQ(RowToString(Row{Value::Int(1), Value::Str("x"), Value::Null()}),
            "(1, x, NULL)");
}

// ---------------------------------------------------------------------------
// Key codec order preservation
// ---------------------------------------------------------------------------

class KeyOrderProperty : public ::testing::TestWithParam<DataType> {};

TEST_P(KeyOrderProperty, EncodingPreservesOrder) {
  DataType type = GetParam();
  Column col;
  col.type = type;
  col.length = type == DataType::kString ? 12 : 0;
  Rng rng(static_cast<uint64_t>(type) + 101);
  for (int iter = 0; iter < 300; ++iter) {
    Value a = RandomValueFor(&rng, col);
    Value b = RandomValueFor(&rng, col);
    std::string ka = key_codec::Encode(a);
    std::string kb = key_codec::Encode(b);
    int vc = a.Compare(b);
    int kc = ka.compare(kb);
    if (vc < 0) {
      EXPECT_LT(kc, 0) << a.ToString() << " vs " << b.ToString();
    } else if (vc > 0) {
      EXPECT_GT(kc, 0) << a.ToString() << " vs " << b.ToString();
    } else {
      EXPECT_EQ(kc, 0) << a.ToString() << " vs " << b.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Types, KeyOrderProperty,
                         ::testing::Values(DataType::kInt64, DataType::kDouble,
                                           DataType::kDecimal,
                                           DataType::kString, DataType::kDate,
                                           DataType::kBool),
                         [](const auto& info) {
                           return DataTypeName(info.param);
                         });

TEST(KeyCodecTest, CompositeOrdering) {
  auto key = [](int64_t a, const std::string& s) {
    return key_codec::Encode({Value::Int(a), Value::Str(s)});
  };
  EXPECT_LT(key(1, "zzz"), key(2, "aaa"));  // first column dominates
  EXPECT_LT(key(1, "a"), key(1, "b"));
  EXPECT_LT(key(1, "a"), key(1, "aa"));  // prefix sorts first
}

TEST(KeyCodecTest, NullSortsFirst) {
  EXPECT_LT(key_codec::Encode(Value::Null(DataType::kInt64)),
            key_codec::Encode(Value::Int(INT64_MIN)));
}

TEST(KeyCodecTest, EmbeddedNulByteEscaped) {
  std::string with_nul = std::string("a\0b", 3);
  std::string a = key_codec::Encode(Value::Str(with_nul));
  std::string b = key_codec::Encode(Value::Str("a"));
  std::string c = key_codec::Encode(Value::Str("ab"));
  EXPECT_GT(a, b);  // "a\0b" > "a"
  EXPECT_LT(a, c);  // "a\0b" < "ab"
}

TEST(KeyCodecTest, PrefixUpperBound) {
  EXPECT_EQ(key_codec::PrefixUpperBound("ab"), "ac");
  EXPECT_EQ(key_codec::PrefixUpperBound(std::string("a\xff", 2)), "b");
  EXPECT_EQ(key_codec::PrefixUpperBound(std::string("\xff\xff", 2)), "");
  // Everything starting with the prefix is strictly below the bound.
  std::string p = key_codec::Encode(Value::Int(42));
  std::string ub = key_codec::PrefixUpperBound(p);
  EXPECT_LT(p + "anything", ub);
  EXPECT_GE(ub, p);
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
