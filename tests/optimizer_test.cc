// Optimizer tests: selectivity estimation, access-path choice as a function
// of predicate visibility (literal vs parameter — the Table 6 mechanism),
// join-algorithm choice, and plan-shape checks via EXPLAIN.
#include <gtest/gtest.h>

#include "common/str_util.h"
#include "rdbms/db.h"
#include "rdbms/optimizer/stats.h"

namespace r3 {
namespace rdbms {
namespace {

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

// ---------------------------------------------------------------------------
// Selectivity estimation
// ---------------------------------------------------------------------------

ColumnStats IntStats(int64_t lo, int64_t hi, uint64_t ndv) {
  ColumnStats s;
  s.valid = true;
  s.min = Value::Int(lo);
  s.max = Value::Int(hi);
  s.ndv = ndv;
  return s;
}

TEST(SelectivityTest, EqualsUsesNdv) {
  ColumnStats s = IntStats(1, 100, 50);
  EXPECT_DOUBLE_EQ(selectivity::Equals(s, Value::Int(5)), 0.02);
}

TEST(SelectivityTest, EqualsOutOfDomainIsZero) {
  ColumnStats s = IntStats(1, 100, 50);
  EXPECT_DOUBLE_EQ(selectivity::Equals(s, Value::Int(101)), 0.0);
  EXPECT_DOUBLE_EQ(selectivity::Equals(s, Value::Int(0)), 0.0);
}

TEST(SelectivityTest, RangeInterpolates) {
  ColumnStats s = IntStats(0, 100, 100);
  EXPECT_NEAR(selectivity::LessThan(s, Value::Int(25)), 0.25, 0.01);
  EXPECT_NEAR(selectivity::GreaterThan(s, Value::Int(25)), 0.75, 0.01);
  EXPECT_DOUBLE_EQ(selectivity::LessThan(s, Value::Int(-5)), 0.0);
  EXPECT_DOUBLE_EQ(selectivity::LessThan(s, Value::Int(1000)), 1.0);
}

TEST(SelectivityTest, InvalidStatsFallBackToDefaults) {
  ColumnStats s;
  EXPECT_DOUBLE_EQ(selectivity::Equals(s, Value::Int(1)),
                   selectivity::kDefaultEquals);
  EXPECT_DOUBLE_EQ(selectivity::LessThan(s, Value::Int(1)),
                   selectivity::kDefaultRange);
}

// ---------------------------------------------------------------------------
// Access-path and join choices (EXPLAIN-based)
// ---------------------------------------------------------------------------

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Small buffer pool so scans are not free.
    DatabaseOptions opts;
    opts.buffer_pool_bytes = 512 * 1024;
    db_ = std::make_unique<Database>(nullptr, opts);
    ASSERT_OK(db_->Execute(
        "CREATE TABLE big (id INT, grp INT, val INT, pad CHAR(200), "
        "PRIMARY KEY (id))"));
    ASSERT_OK(db_->Execute("CREATE INDEX big_grp ON big (grp)"));
    for (int64_t i = 0; i < 5000; ++i) {
      ASSERT_OK(db_->InsertRow(
          "big", Row{Value::Int(i), Value::Int(i % 10), Value::Int(i % 1000),
                     Value::Str("p")}));
    }
    ASSERT_OK(db_->Execute(
        "CREATE TABLE small (id INT, name CHAR(10), PRIMARY KEY (id))"));
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_OK(db_->InsertRow(
          "small", Row{Value::Int(i), Value::Str(str::Format("n%lld",
                                                             (long long)i))}));
    }
    ASSERT_OK(db_->Execute("ANALYZE"));
  }

  std::string Plan(const std::string& sql) {
    auto p = db_->Explain(sql);
    EXPECT_TRUE(p.ok()) << sql << ": " << p.status().ToString();
    return p.ok() ? p.value() : "";
  }

  std::unique_ptr<Database> db_;
};

TEST_F(PlanTest, UniquePointLookupUsesPk) {
  EXPECT_NE(Plan("SELECT val FROM big WHERE id = 17").find("IndexScan"),
            std::string::npos);
}

TEST_F(PlanTest, NonSelectiveLiteralUsesSeqScan) {
  // grp has 10 distinct values: 10% selectivity, index would random-fetch.
  EXPECT_NE(Plan("SELECT val FROM big WHERE grp = 3").find("SeqScan"),
            std::string::npos);
}

TEST_F(PlanTest, ParameterizedPredicateIsBlindlyIndexed) {
  std::string plan = Plan("SELECT val FROM big WHERE grp = ?");
  EXPECT_NE(plan.find("IndexScan"), std::string::npos) << plan;
  EXPECT_NE(plan.find("big_grp"), std::string::npos) << plan;
}

TEST_F(PlanTest, RangeOnPkUsesCostedChoice) {
  // Tight range -> index; full range -> scan.
  EXPECT_NE(Plan("SELECT val FROM big WHERE id BETWEEN 10 AND 20")
                .find("IndexScan"),
            std::string::npos);
  EXPECT_NE(Plan("SELECT val FROM big WHERE id >= 0").find("SeqScan"),
            std::string::npos);
}

TEST_F(PlanTest, SelectiveOuterDrivesIndexNlJoin) {
  // One small row probing the big table's pk -> index nested loops.
  std::string plan = Plan(
      "SELECT b.val FROM small s, big b WHERE s.id = 3 AND b.id = s.id");
  EXPECT_NE(plan.find("IndexNLJoin"), std::string::npos) << plan;
}

TEST_F(PlanTest, BulkEquiJoinUsesHashJoin) {
  std::string plan = Plan(
      "SELECT COUNT(*) FROM big b, small s WHERE b.grp = s.id");
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
}

TEST_F(PlanTest, NonEquiJoinFallsBackToNestedLoops) {
  std::string plan = Plan(
      "SELECT COUNT(*) FROM small a, small b WHERE a.id < b.id");
  EXPECT_NE(plan.find("NLJoin"), std::string::npos) << plan;
}

TEST_F(PlanTest, AggregationAndSortAppearInPlan) {
  std::string plan = Plan(
      "SELECT grp, SUM(val) s FROM big GROUP BY grp ORDER BY s DESC");
  EXPECT_NE(plan.find("HashAggregate"), std::string::npos);
  EXPECT_NE(plan.find("Sort"), std::string::npos);
}

TEST_F(PlanTest, DistinctAndLimitAppearInPlan) {
  std::string plan = Plan("SELECT DISTINCT grp FROM big LIMIT 3");
  EXPECT_NE(plan.find("Distinct"), std::string::npos);
  EXPECT_NE(plan.find("Limit"), std::string::npos);
}

TEST_F(PlanTest, DisablingIndexScansForcesSeqScan) {
  DatabaseOptions opts;
  opts.planner.enable_index_scan = false;
  Database db2(nullptr, opts);
  ASSERT_OK(db2.Execute("CREATE TABLE t (a INT, PRIMARY KEY (a))"));
  ASSERT_OK(db2.Execute("INSERT INTO t VALUES (1), (2), (3)"));
  ASSERT_OK(db2.Execute("ANALYZE"));
  auto plan = db2.Explain("SELECT a FROM t WHERE a = 2");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().find("SeqScan"), std::string::npos);
}

TEST_F(PlanTest, BlindHeuristicCanBeDisabled) {
  DatabaseOptions opts;
  opts.planner.blind_prefers_index = false;
  Database db2(nullptr, opts);
  ASSERT_OK(db2.Execute("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a))"));
  ASSERT_OK(db2.Execute("CREATE INDEX t_b ON t (b)"));
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(db2.InsertRow("t", Row{Value::Int(i), Value::Int(i % 5)}));
  }
  ASSERT_OK(db2.Execute("ANALYZE"));
  auto plan = db2.Explain("SELECT a FROM t WHERE b = ?");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().find("SeqScan"), std::string::npos) << plan.value();
}

TEST_F(PlanTest, ParameterizedAndLiteralPlansDiffer) {
  // The heart of Table 6, as a regression test.
  std::string lit = Plan("SELECT val FROM big WHERE grp = 3");
  std::string par = Plan("SELECT val FROM big WHERE grp = ?");
  EXPECT_NE(lit, par);
}

// ---------------------------------------------------------------------------
// Statistics lifecycle
// ---------------------------------------------------------------------------

TEST_F(PlanTest, AnalyzePopulatesStats) {
  auto table = db_->catalog()->GetTable("big");
  ASSERT_TRUE(table.ok());
  const TableStats& stats = table.value()->stats;
  ASSERT_TRUE(stats.valid);
  EXPECT_EQ(stats.row_count, 5000u);
  EXPECT_EQ(stats.columns[1].ndv, 10u);  // grp
  EXPECT_EQ(stats.columns[0].min.int_value(), 0);
  EXPECT_EQ(stats.columns[0].max.int_value(), 4999);
}

TEST_F(PlanTest, RowCountMaintainedOnline) {
  auto table = db_->catalog()->GetTable("small");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->row_count, 10u);
  int64_t affected = 0;
  ASSERT_OK(db_->Execute("DELETE FROM small WHERE id < 3", {}, nullptr,
                         &affected));
  EXPECT_EQ(affected, 3);
  EXPECT_EQ(table.value()->row_count, 7u);
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
