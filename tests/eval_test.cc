// Expression-evaluator tests: SQL three-valued logic, NULL propagation,
// arithmetic typing (incl. date arithmetic), CASE, functions, and the
// expression-tree helpers.
#include <gtest/gtest.h>

#include "common/date.h"
#include "rdbms/expr/eval.h"
#include "rdbms/sql/parser.h"

namespace r3 {
namespace rdbms {
namespace {

/// Parses `sql_expr` as "SELECT <expr> FROM t" and evaluates it against an
/// empty context (constant expressions only).
Value EvalConst(const std::string& sql_expr) {
  auto sel = ParseSelect("SELECT " + sql_expr + " FROM t");
  EXPECT_TRUE(sel.ok()) << sel.status().ToString();
  EvalContext ctx;
  Value out;
  Status st = EvalExpr(*sel.value()->items[0].expr, ctx, &out);
  EXPECT_TRUE(st.ok()) << sql_expr << ": " << st.ToString();
  return out;
}

TEST(EvalTest, Arithmetic) {
  EXPECT_EQ(EvalConst("1 + 2 * 3").int_value(), 7);
  EXPECT_EQ(EvalConst("(1 + 2) * 3").int_value(), 9);
  EXPECT_DOUBLE_EQ(EvalConst("7 / 2").AsDouble(), 3.5);  // '/' -> double
  EXPECT_EQ(EvalConst("-(3 + 4)").int_value(), -7);
  EXPECT_DOUBLE_EQ(EvalConst("1.5 + 1").AsDouble(), 2.5);
}

TEST(EvalTest, DivisionByZeroIsError) {
  auto sel = ParseSelect("SELECT 1 / 0 FROM t");
  ASSERT_TRUE(sel.ok());
  EvalContext ctx;
  Value out;
  EXPECT_FALSE(EvalExpr(*sel.value()->items[0].expr, ctx, &out).ok());
}

TEST(EvalTest, DateArithmetic) {
  Value v = EvalConst("DATE '1998-12-01' - 90");
  EXPECT_EQ(v.type(), DataType::kDate);
  EXPECT_EQ(date::ToString(v.date_value()), "1998-09-02");
  EXPECT_EQ(EvalConst("DATE '1995-01-10' - DATE '1995-01-01'").int_value(), 9);
}

TEST(EvalTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(EvalConst("1 + NULL").is_null());
  EXPECT_TRUE(EvalConst("NULL * 0").is_null());
}

TEST(EvalTest, ComparisonsWithNullAreUnknown) {
  EXPECT_TRUE(EvalConst("1 = NULL").is_null());
  EXPECT_TRUE(EvalConst("NULL <> NULL").is_null());
  EXPECT_FALSE(EvalConst("1 = 1").is_null());
  EXPECT_TRUE(EvalConst("1 < 2").bool_value());
}

TEST(EvalTest, ThreeValuedLogic) {
  // FALSE AND UNKNOWN = FALSE; TRUE AND UNKNOWN = UNKNOWN.
  EXPECT_FALSE(EvalConst("1 = 2 AND 1 = NULL").bool_value());
  EXPECT_FALSE(EvalConst("1 = 2 AND 1 = NULL").is_null());
  EXPECT_TRUE(EvalConst("1 = 1 AND 1 = NULL").is_null());
  // TRUE OR UNKNOWN = TRUE; FALSE OR UNKNOWN = UNKNOWN.
  EXPECT_TRUE(EvalConst("1 = 1 OR 1 = NULL").bool_value());
  EXPECT_TRUE(EvalConst("1 = 2 OR 1 = NULL").is_null());
  // NOT UNKNOWN = UNKNOWN.
  EXPECT_TRUE(EvalConst("NOT (1 = NULL)").is_null());
  EXPECT_FALSE(EvalConst("NOT (1 = 1)").bool_value());
}

TEST(EvalTest, IsNullNeverUnknown) {
  EXPECT_TRUE(EvalConst("NULL IS NULL").bool_value());
  EXPECT_FALSE(EvalConst("1 IS NULL").bool_value());
  EXPECT_TRUE(EvalConst("1 IS NOT NULL").bool_value());
}

TEST(EvalTest, InListSemantics) {
  EXPECT_TRUE(EvalConst("2 IN (1, 2, 3)").bool_value());
  EXPECT_FALSE(EvalConst("5 IN (1, 2, 3)").bool_value());
  // No match but a NULL in the list -> UNKNOWN.
  EXPECT_TRUE(EvalConst("5 IN (1, NULL, 3)").is_null());
  // Match wins over NULLs.
  EXPECT_TRUE(EvalConst("1 IN (1, NULL)").bool_value());
  // NOT IN flips.
  EXPECT_TRUE(EvalConst("5 NOT IN (1, 2)").bool_value());
  EXPECT_TRUE(EvalConst("5 NOT IN (1, NULL)").is_null());
}

TEST(EvalTest, BetweenSemantics) {
  EXPECT_TRUE(EvalConst("2 BETWEEN 1 AND 3").bool_value());
  EXPECT_TRUE(EvalConst("1 BETWEEN 1 AND 3").bool_value());  // inclusive
  EXPECT_FALSE(EvalConst("0 BETWEEN 1 AND 3").bool_value());
  EXPECT_TRUE(EvalConst("0 NOT BETWEEN 1 AND 3").bool_value());
  EXPECT_TRUE(EvalConst("2 BETWEEN NULL AND 3").is_null());
}

TEST(EvalTest, LikeSemantics) {
  EXPECT_TRUE(EvalConst("'hello' LIKE 'h%'").bool_value());
  EXPECT_TRUE(EvalConst("'hello' NOT LIKE 'x%'").bool_value());
  EXPECT_TRUE(EvalConst("NULL LIKE 'x%'").is_null());
}

TEST(EvalTest, CaseExpression) {
  EXPECT_EQ(EvalConst("CASE WHEN 1 = 2 THEN 'a' WHEN 2 = 2 THEN 'b' "
                      "ELSE 'c' END").string_value(),
            "b");
  EXPECT_EQ(EvalConst("CASE WHEN 1 = 2 THEN 'a' ELSE 'c' END").string_value(),
            "c");
  EXPECT_TRUE(EvalConst("CASE WHEN 1 = 2 THEN 'a' END").is_null());
  // UNKNOWN WHEN condition is skipped like FALSE.
  EXPECT_EQ(
      EvalConst("CASE WHEN NULL = 1 THEN 'a' ELSE 'b' END").string_value(),
      "b");
}

TEST(EvalTest, Functions) {
  EXPECT_EQ(EvalConst("YEAR(DATE '1997-03-04')").int_value(), 1997);
  EXPECT_EQ(EvalConst("MONTH(DATE '1997-03-04')").int_value(), 3);
  EXPECT_EQ(EvalConst("SUBSTR('abcdef', 2, 3)").string_value(), "bcd");
  EXPECT_EQ(EvalConst("SUBSTR('abc', 5, 2)").string_value(), "");
  EXPECT_EQ(EvalConst("UPPER('aBc')").string_value(), "ABC");
  EXPECT_EQ(EvalConst("LOWER('aBc')").string_value(), "abc");
  EXPECT_EQ(EvalConst("LENGTH('abcd')").int_value(), 4);
  EXPECT_EQ(EvalConst("ABS(0 - 7)").int_value(), 7);
  EXPECT_EQ(EvalConst("MOD(17, 5)").int_value(), 2);
  EXPECT_DOUBLE_EQ(EvalConst("ROUND(2.567, 2)").AsDouble(), 2.57);
}

TEST(EvalTest, UnknownFunctionIsError) {
  auto sel = ParseSelect("SELECT FROBNICATE(1) FROM t");
  ASSERT_TRUE(sel.ok());
  EvalContext ctx;
  Value out;
  Status st = EvalExpr(*sel.value()->items[0].expr, ctx, &out);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST(EvalTest, CastExpression) {
  EXPECT_EQ(EvalConst("CAST(2.9 AS INT)").int_value(), 2);
  EXPECT_EQ(EvalConst("CAST('42' AS INT)").int_value(), 42);
  EXPECT_EQ(EvalConst("CAST(7 AS VARCHAR)").string_value(), "7");
}

TEST(EvalTest, ParamsBindByIndex) {
  auto sel = ParseSelect("SELECT ? + ? FROM t");
  ASSERT_TRUE(sel.ok());
  std::vector<Value> params{Value::Int(40), Value::Int(2)};
  EvalContext ctx;
  ctx.params = &params;
  Value out;
  ASSERT_TRUE(EvalExpr(*sel.value()->items[0].expr, ctx, &out).ok());
  EXPECT_EQ(out.int_value(), 42);
  // Missing binding is an error.
  std::vector<Value> short_params{Value::Int(1)};
  ctx.params = &short_params;
  EXPECT_FALSE(EvalExpr(*sel.value()->items[0].expr, ctx, &out).ok());
}

TEST(EvalTest, RowAndColumnRefs) {
  auto e = MakeColumnRef("", "x");
  e->column_index = 1;
  Row row{Value::Int(10), Value::Str("hit")};
  EvalContext ctx;
  ctx.row = &row;
  Value out;
  ASSERT_TRUE(EvalExpr(*e, ctx, &out).ok());
  EXPECT_EQ(out.string_value(), "hit");
  // Out-of-range ref is an internal error, not UB.
  e->column_index = 9;
  EXPECT_FALSE(EvalExpr(*e, ctx, &out).ok());
}

// ---------------------------------------------------------------------------
// Expression-tree helpers
// ---------------------------------------------------------------------------

TEST(ExprHelpersTest, SplitAndCombineConjuncts) {
  auto sel = ParseSelect("SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3");
  ASSERT_TRUE(sel.ok());
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(std::move(sel.value()->where), &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
  ExprPtr combined = CombineConjuncts(std::move(conjuncts));
  ASSERT_NE(combined, nullptr);
  EXPECT_EQ(combined->kind, ExprKind::kLogic);
  EXPECT_EQ(CombineConjuncts({}), nullptr);
}

TEST(ExprHelpersTest, ContainsPredicates) {
  auto sel = ParseSelect("SELECT SUM(a + ?) FROM t");
  ASSERT_TRUE(sel.ok());
  const Expr& e = *sel.value()->items[0].expr;
  EXPECT_TRUE(ExprHasAggregates(e));
  EXPECT_TRUE(ExprHasParams(e));
  EXPECT_TRUE(ExprHasColumnRefs(e));
  auto lit = MakeLiteral(Value::Int(1));
  EXPECT_FALSE(ExprHasColumnRefs(*lit));
}

TEST(ExprHelpersTest, CloneIsDeep) {
  auto sel = ParseSelect("SELECT a FROM t WHERE b IN (1, 2) AND c LIKE 'x%'");
  ASSERT_TRUE(sel.ok());
  ExprPtr clone = sel.value()->where->Clone();
  EXPECT_EQ(clone->ToString(), sel.value()->where->ToString());
  // Mutating the clone must not affect the original.
  clone->children[0]->negated = !clone->children[0]->negated;
  EXPECT_NE(clone->ToString(), sel.value()->where->ToString());
}

TEST(ExprHelpersTest, ToStringIsReadable) {
  auto sel = ParseSelect(
      "SELECT a FROM t WHERE x BETWEEN 1 AND 2 AND s LIKE 'p%' AND "
      "y IS NOT NULL");
  ASSERT_TRUE(sel.ok());
  std::string text = sel.value()->where->ToString();
  EXPECT_NE(text.find("BETWEEN"), std::string::npos);
  EXPECT_NE(text.find("LIKE"), std::string::npos);
  EXPECT_NE(text.find("IS NOT NULL"), std::string::npos);
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
