// End-to-end SQL tests for the embedded RDBMS: DDL, DML, scans, joins,
// aggregation, subqueries, views, prepared statements, and plan choice.
#include <gtest/gtest.h>

#include "rdbms/db.h"

namespace r3 {
namespace rdbms {
namespace {

#define ASSERT_OK(expr)                                \
  do {                                                 \
    ::r3::Status _st = (expr);                         \
    ASSERT_TRUE(_st.ok()) << _st.ToString();           \
  } while (false)

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_OK(db_->Execute(
        "CREATE TABLE dept (id INT, name CHAR(12), PRIMARY KEY (id))"));
    ASSERT_OK(db_->Execute(
        "CREATE TABLE emp (id INT, dept_id INT, name VARCHAR, salary DECIMAL, "
        "hired DATE, PRIMARY KEY (id))"));
    ASSERT_OK(db_->Execute("CREATE INDEX emp_dept ON emp (dept_id)"));
    ASSERT_OK(db_->Execute(
        "INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty')"));
    ASSERT_OK(db_->Execute(
        "INSERT INTO emp VALUES "
        "(10, 1, 'ada', 120.50, DATE '1995-01-15'), "
        "(11, 1, 'grace', 140.00, DATE '1996-06-01'), "
        "(12, 2, 'edsger', 90.25, DATE '1994-12-31'), "
        "(13, 2, 'alan', 95.75, DATE '1995-07-07'), "
        "(14, NULL, 'lonely', 50.00, DATE '1996-01-01')"));
    ASSERT_OK(db_->Execute("ANALYZE"));
  }

  QueryResult Q(const std::string& sql) {
    auto res = db_->Query(sql);
    EXPECT_TRUE(res.ok()) << sql << " -> " << res.status().ToString();
    return res.ok() ? std::move(res).value() : QueryResult{};
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SqlTest, SimpleSelect) {
  QueryResult r = Q("SELECT name FROM dept WHERE id = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "sales");
}

TEST_F(SqlTest, SelectStar) {
  QueryResult r = Q("SELECT * FROM dept ORDER BY id");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].size(), 2u);
  EXPECT_EQ(r.rows[0][1].string_value(), "eng");
}

TEST_F(SqlTest, WherePredicates) {
  EXPECT_EQ(Q("SELECT id FROM emp WHERE salary > 100").rows.size(), 2u);
  EXPECT_EQ(Q("SELECT id FROM emp WHERE salary BETWEEN 90 AND 100").rows.size(),
            2u);
  EXPECT_EQ(Q("SELECT id FROM emp WHERE name LIKE 'a%'").rows.size(), 2u);
  EXPECT_EQ(Q("SELECT id FROM emp WHERE dept_id IS NULL").rows.size(), 1u);
  EXPECT_EQ(Q("SELECT id FROM emp WHERE dept_id IS NOT NULL").rows.size(), 4u);
  EXPECT_EQ(Q("SELECT id FROM emp WHERE id IN (10, 12, 99)").rows.size(), 2u);
  EXPECT_EQ(
      Q("SELECT id FROM emp WHERE hired >= DATE '1995-01-01' AND "
        "hired < DATE '1996-01-01'")
          .rows.size(),
      2u);
}

TEST_F(SqlTest, NullComparisonsRejectRows) {
  // dept_id = NULL is UNKNOWN, never true.
  EXPECT_EQ(Q("SELECT id FROM emp WHERE dept_id = NULL").rows.size(), 0u);
  EXPECT_EQ(Q("SELECT id FROM emp WHERE dept_id <> 1").rows.size(), 2u);
}

TEST_F(SqlTest, Arithmetic) {
  QueryResult r = Q("SELECT salary * 2 + 1 FROM emp WHERE id = 10");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 242.0);
}

TEST_F(SqlTest, JoinImplicit) {
  QueryResult r = Q(
      "SELECT e.name, d.name FROM emp e, dept d "
      "WHERE e.dept_id = d.id ORDER BY e.name");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].string_value(), "ada");
  EXPECT_EQ(r.rows[0][1].string_value(), "eng");
}

TEST_F(SqlTest, JoinExplicit) {
  QueryResult r = Q(
      "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id "
      "WHERE d.name = 'sales' ORDER BY e.name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].string_value(), "alan");
}

TEST_F(SqlTest, LeftOuterJoin) {
  QueryResult r = Q(
      "SELECT d.name, e.name FROM dept d LEFT JOIN emp e ON e.dept_id = d.id "
      "ORDER BY d.name, e.name");
  // eng x2, sales x2, empty x1 (null-extended).
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0].string_value(), "empty");
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(SqlTest, GroupByAggregates) {
  QueryResult r = Q(
      "SELECT dept_id, COUNT(*), SUM(salary), AVG(salary), MIN(name), "
      "MAX(salary) FROM emp WHERE dept_id IS NOT NULL "
      "GROUP BY dept_id ORDER BY dept_id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 260.5);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 130.25);
  EXPECT_EQ(r.rows[0][4].string_value(), "ada");
  EXPECT_DOUBLE_EQ(r.rows[0][5].AsDouble(), 140.0);
}

TEST_F(SqlTest, AggregateWithoutGroupBy) {
  QueryResult r = Q("SELECT COUNT(*), SUM(salary) FROM emp");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
  EXPECT_NEAR(r.rows[0][1].AsDouble(), 496.5, 1e-9);
}

TEST_F(SqlTest, AggregateOverEmptyInput) {
  QueryResult r = Q("SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 1000");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(SqlTest, Having) {
  QueryResult r = Q(
      "SELECT dept_id, COUNT(*) FROM emp WHERE dept_id IS NOT NULL "
      "GROUP BY dept_id HAVING SUM(salary) > 200 ORDER BY dept_id");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(SqlTest, GroupByExpression) {
  QueryResult r = Q(
      "SELECT YEAR(hired), COUNT(*) FROM emp GROUP BY YEAR(hired) "
      "ORDER BY YEAR(hired)");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1994);
  EXPECT_EQ(r.rows[1][0].AsInt(), 1995);
  EXPECT_EQ(r.rows[1][1].AsInt(), 2);
}

TEST_F(SqlTest, CaseExpression) {
  QueryResult r = Q(
      "SELECT SUM(CASE WHEN salary > 100 THEN 1 ELSE 0 END) FROM emp");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(SqlTest, DistinctAndLimit) {
  EXPECT_EQ(Q("SELECT DISTINCT dept_id FROM emp WHERE dept_id IS NOT NULL")
                .rows.size(),
            2u);
  EXPECT_EQ(Q("SELECT id FROM emp ORDER BY id LIMIT 2").rows.size(), 2u);
}

TEST_F(SqlTest, CountDistinct) {
  QueryResult r = Q("SELECT COUNT(DISTINCT dept_id) FROM emp");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(SqlTest, ScalarSubquery) {
  QueryResult r = Q(
      "SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "grace");
}

TEST_F(SqlTest, CorrelatedScalarSubquery) {
  // Best-paid employee of each department.
  QueryResult r = Q(
      "SELECT e.name FROM emp e WHERE e.dept_id IS NOT NULL AND e.salary = "
      "(SELECT MAX(e2.salary) FROM emp e2 WHERE e2.dept_id = e.dept_id) "
      "ORDER BY e.name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].string_value(), "alan");
  EXPECT_EQ(r.rows[1][0].string_value(), "grace");
}

TEST_F(SqlTest, ExistsSubquery) {
  QueryResult r = Q(
      "SELECT d.name FROM dept d WHERE EXISTS "
      "(SELECT * FROM emp e WHERE e.dept_id = d.id) ORDER BY d.name");
  ASSERT_EQ(r.rows.size(), 2u);
  QueryResult r2 = Q(
      "SELECT d.name FROM dept d WHERE NOT EXISTS "
      "(SELECT * FROM emp e WHERE e.dept_id = d.id)");
  ASSERT_EQ(r2.rows.size(), 1u);
  EXPECT_EQ(r2.rows[0][0].string_value(), "empty");
}

TEST_F(SqlTest, InSubquery) {
  QueryResult r = Q(
      "SELECT name FROM dept WHERE id IN (SELECT dept_id FROM emp "
      "WHERE salary > 100) ORDER BY name");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].string_value(), "eng");
}

TEST_F(SqlTest, View) {
  ASSERT_OK(db_->Execute(
      "CREATE VIEW emp_dept AS SELECT e.id eid, e.name ename, e.salary sal, "
      "d.name dname FROM emp e, dept d WHERE e.dept_id = d.id"));
  QueryResult r = Q(
      "SELECT ename, dname FROM emp_dept WHERE sal > 100 ORDER BY ename");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].string_value(), "ada");
  EXPECT_EQ(r.rows[0][1].string_value(), "eng");
}

TEST_F(SqlTest, PreparedStatementWithParams) {
  auto stmt = db_->Prepare("SELECT name FROM emp WHERE salary > ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto r1 = db_->ExecutePrepared(stmt.value(), {Value::Dbl(100.0)});
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().rows.size(), 2u);
  auto r2 = db_->ExecutePrepared(stmt.value(), {Value::Dbl(0.0)});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().rows.size(), 5u);
  // Same text returns the same plan (cursor caching substrate).
  auto stmt2 = db_->Prepare("SELECT name FROM emp WHERE salary > ?");
  ASSERT_TRUE(stmt2.ok());
  EXPECT_EQ(stmt.value(), stmt2.value());
}

TEST_F(SqlTest, DeleteAndUpdate) {
  int64_t affected = 0;
  ASSERT_OK(db_->Execute("DELETE FROM emp WHERE dept_id = 2", {}, nullptr,
                         &affected));
  EXPECT_EQ(affected, 2);
  EXPECT_EQ(Q("SELECT id FROM emp").rows.size(), 3u);

  ASSERT_OK(db_->Execute("UPDATE emp SET salary = salary + 10 WHERE id = 10",
                         {}, nullptr, &affected));
  EXPECT_EQ(affected, 1);
  QueryResult r = Q("SELECT salary FROM emp WHERE id = 10");
  EXPECT_NEAR(r.rows[0][0].AsDouble(), 130.5, 1e-9);
}

TEST_F(SqlTest, UniqueConstraint) {
  Status st = db_->Execute("INSERT INTO dept VALUES (1, 'dup')");
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation) << st.ToString();
  // Table unchanged.
  EXPECT_EQ(Q("SELECT id FROM dept").rows.size(), 3u);
}

TEST_F(SqlTest, NotNullConstraint) {
  ASSERT_OK(db_->Execute(
      "CREATE TABLE strict (a INT NOT NULL, b INT)"));
  Status st = db_->Execute("INSERT INTO strict VALUES (NULL, 1)");
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
}

TEST_F(SqlTest, ExplainShowsIndexForSelectivePredicate) {
  auto plan = db_->Explain("SELECT name FROM emp WHERE id = 11");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().find("IndexScan"), std::string::npos) << plan.value();
}

TEST_F(SqlTest, ExplainParameterizedIsBlindIndex) {
  // With a literal covering everything, the optimizer picks a scan...
  auto lit = db_->Explain("SELECT name FROM emp WHERE id > 0");
  ASSERT_TRUE(lit.ok());
  EXPECT_NE(lit.value().find("SeqScan"), std::string::npos) << lit.value();
  // ...with a parameter it cannot know and blindly takes the index.
  auto par = db_->Explain("SELECT name FROM emp WHERE id > ?");
  ASSERT_TRUE(par.ok());
  EXPECT_NE(par.value().find("IndexScan"), std::string::npos) << par.value();
}

TEST_F(SqlTest, OrderByDesc) {
  QueryResult r = Q("SELECT id FROM emp ORDER BY salary DESC LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 11);
}

TEST_F(SqlTest, ThreeWayJoin) {
  ASSERT_OK(db_->Execute("CREATE TABLE loc (dept_id INT, city VARCHAR)"));
  ASSERT_OK(db_->Execute(
      "INSERT INTO loc VALUES (1, 'zurich'), (2, 'london')"));
  ASSERT_OK(db_->Execute("ANALYZE loc"));
  QueryResult r = Q(
      "SELECT e.name, d.name, l.city FROM emp e, dept d, loc l "
      "WHERE e.dept_id = d.id AND d.id = l.dept_id AND e.salary > 100 "
      "ORDER BY e.name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][2].string_value(), "zurich");
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
