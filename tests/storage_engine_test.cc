// Storage-engine tests: ENGINE-clause selection and parsing, cross-engine
// checksum equality on identical data, RecordIterator lifecycle, stats
// rebuild through Analyze on a columnar table, dictionary-compression
// round-trips for CHAR columns, RLE suppression of an all-default column,
// single-distinct-value pushdown, empty tables, the WAL/columnar mutual
// exclusion (both orderings), crash semantics for memory-resident engines,
// and the columnar.* metric surface.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "rdbms/db.h"
#include "rdbms/storage/columnar/columnar_engine.h"
#include "rdbms/storage/storage_engine.h"

namespace r3 {
namespace rdbms {
namespace {

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

// Loads the same small two-column table into `db` under the given engine.
// Values cycle through a handful of CHAR strings so dictionary compression
// has repetition to work with.
void LoadSmallTable(Database* db, const std::string& engine_clause,
                    int rows = 64) {
  std::string ddl = "CREATE TABLE T (K INTEGER, S CHAR(16), V DOUBLE)";
  if (!engine_clause.empty()) ddl += " ENGINE=" + engine_clause;
  ASSERT_OK(db->Execute(ddl));
  static const char* kStrings[] = {"alpha", "beta", "gamma", "delta"};
  for (int i = 0; i < rows; ++i) {
    ASSERT_OK(db->Execute("INSERT INTO T VALUES (" + std::to_string(i) +
                          ", '" + kStrings[i % 4] + "', " +
                          std::to_string(i * 0.5) + ")"));
  }
}

Result<TableInfo*> GetTable(Database* db, const std::string& name) {
  return db->catalog()->GetTable(name);
}

ColumnarEngine* AsColumnar(TableInfo* t) {
  EXPECT_EQ(t->storage->kind(), EngineKind::kColumnar);
  return static_cast<ColumnarEngine*>(t->storage.get());
}

// -- ENGINE clause & kind parsing ---------------------------------------------

TEST(EngineSelectionTest, EngineClauseSelectsEngine) {
  Database db;
  ASSERT_OK(db.Execute("CREATE TABLE R (A INTEGER)"));
  ASSERT_OK(db.Execute("CREATE TABLE C (A INTEGER) ENGINE=columnar"));
  // The clause is case-insensitive, like the rest of the SQL surface.
  ASSERT_OK(db.Execute("CREATE TABLE C2 (A INTEGER) ENGINE=COLUMNAR"));

  auto r = GetTable(&db, "R");
  auto c = GetTable(&db, "C");
  auto c2 = GetTable(&db, "C2");
  ASSERT_OK(r.status());
  ASSERT_OK(c.status());
  ASSERT_OK(c2.status());
  EXPECT_EQ((*r)->storage->kind(), EngineKind::kRowHeap);
  EXPECT_EQ((*c)->storage->kind(), EngineKind::kColumnar);
  EXPECT_EQ((*c2)->storage->kind(), EngineKind::kColumnar);
  EXPECT_STREQ((*r)->storage->name(), "row");
  EXPECT_STREQ((*c)->storage->name(), "columnar");
}

TEST(EngineSelectionTest, UnknownEngineNameIsRejected) {
  Database db;
  Status st = db.Execute("CREATE TABLE T (A INTEGER) ENGINE=parquet");
  EXPECT_FALSE(st.ok()) << "unknown engine accepted";
}

TEST(EngineSelectionTest, ParseEngineKindAliases) {
  auto expect_kind = [](std::string_view name, EngineKind want) {
    auto got = ParseEngineKind(name);
    ASSERT_OK(got.status());
    EXPECT_EQ(*got, want) << name;
  };
  expect_kind("row", EngineKind::kRowHeap);
  expect_kind("rowheap", EngineKind::kRowHeap);
  expect_kind("heap", EngineKind::kRowHeap);
  expect_kind("columnar", EngineKind::kColumnar);
  expect_kind("column", EngineKind::kColumnar);
  expect_kind("Columnar", EngineKind::kColumnar);
  EXPECT_FALSE(ParseEngineKind("lsm").ok());
  EXPECT_FALSE(ParseEngineKind("").ok());
}

TEST(EngineSelectionTest, DefaultEngineOptionApplies) {
  DatabaseOptions opts;
  opts.default_engine = EngineKind::kColumnar;
  Database db(nullptr, opts);
  ASSERT_OK(db.Execute("CREATE TABLE T (A INTEGER)"));
  auto t = GetTable(&db, "T");
  ASSERT_OK(t.status());
  EXPECT_EQ((*t)->storage->kind(), EngineKind::kColumnar);
  // An explicit clause still overrides the default.
  ASSERT_OK(db.Execute("CREATE TABLE T2 (A INTEGER) ENGINE=row"));
  auto t2 = GetTable(&db, "T2");
  ASSERT_OK(t2.status());
  EXPECT_EQ((*t2)->storage->kind(), EngineKind::kRowHeap);
}

// -- Cross-engine equivalence -------------------------------------------------

TEST(EngineEquivalenceTest, ChecksumsMatchAcrossEngines) {
  Database row_db;
  Database col_db;
  LoadSmallTable(&row_db, "");
  LoadSmallTable(&col_db, "columnar");
  auto row_sum = row_db.TableChecksum("T");
  auto col_sum = col_db.TableChecksum("T");
  ASSERT_OK(row_sum.status());
  ASSERT_OK(col_sum.status());
  EXPECT_EQ(*row_sum, *col_sum);

  // And after identical DML on both sides.
  for (Database* db : {&row_db, &col_db}) {
    ASSERT_OK(db->Execute("DELETE FROM T WHERE K = 7"));
    ASSERT_OK(db->Execute("UPDATE T SET V = 99.5 WHERE K = 11"));
  }
  row_sum = row_db.TableChecksum("T");
  col_sum = col_db.TableChecksum("T");
  ASSERT_OK(row_sum.status());
  ASSERT_OK(col_sum.status());
  EXPECT_EQ(*row_sum, *col_sum);
}

// -- RecordIterator lifecycle -------------------------------------------------

TEST(RecordIteratorTest, VisitsEveryLiveRecordOnce) {
  for (const char* engine : {"row", "columnar"}) {
    Database db;
    LoadSmallTable(&db, engine == std::string("row") ? "" : engine);
    ASSERT_OK(db.Execute("DELETE FROM T WHERE K = 3"));

    auto t = GetTable(&db, "T");
    ASSERT_OK(t.status());
    std::unique_ptr<RecordIterator> it = (*t)->storage->NewIterator();
    std::set<uint64_t> rids;
    Rid rid;
    std::string rec;
    size_t n = 0;
    while (true) {
      auto more = it->Next(&rid, &rec);
      ASSERT_OK(more.status());
      if (!*more) break;
      EXPECT_TRUE(rids.insert(rid.Pack()).second)
          << engine << ": rid visited twice";
      EXPECT_FALSE(rec.empty());
      ++n;
    }
    EXPECT_EQ(n, 63u) << engine;
    // A second Next past the end stays at the end rather than erroring.
    auto more = it->Next(&rid, &rec);
    ASSERT_OK(more.status());
    EXPECT_FALSE(*more);

    // Two iterators opened at once are independent.
    std::unique_ptr<RecordIterator> a = (*t)->storage->NewIterator();
    std::unique_ptr<RecordIterator> b = (*t)->storage->NewIterator();
    auto ma = a->Next(&rid, &rec);
    ASSERT_OK(ma.status());
    ASSERT_TRUE(*ma);
    const std::string first = rec;
    size_t nb = 0;
    while (true) {
      auto mb = b->Next(&rid, &rec);
      ASSERT_OK(mb.status());
      if (!*mb) break;
      ++nb;
    }
    EXPECT_EQ(nb, 63u) << engine;
    auto ma2 = a->Next(&rid, &rec);  // `a` unaffected by draining `b`
    ASSERT_OK(ma2.status());
    EXPECT_TRUE(*ma2);
  }
}

TEST(RecordIteratorTest, EmptyTableYieldsNothing) {
  for (const char* engine : {"", "columnar"}) {
    Database db;
    std::string ddl = "CREATE TABLE E (A INTEGER)";
    if (*engine != '\0') ddl += std::string(" ENGINE=") + engine;
    ASSERT_OK(db.Execute(ddl));
    auto t = GetTable(&db, "E");
    ASSERT_OK(t.status());
    std::unique_ptr<RecordIterator> it = (*t)->storage->NewIterator();
    Rid rid;
    std::string rec;
    auto more = it->Next(&rid, &rec);
    ASSERT_OK(more.status());
    EXPECT_FALSE(*more);
  }
}

// -- Stats rebuild on columnar ------------------------------------------------

TEST(ColumnarStatsTest, AnalyzeRebuildsStatsThroughEngineIterator) {
  Database db;
  LoadSmallTable(&db, "columnar", /*rows=*/128);
  auto t = GetTable(&db, "T");
  ASSERT_OK(t.status());
  EXPECT_FALSE((*t)->stats.valid);
  ASSERT_OK(db.Analyze("T"));
  EXPECT_TRUE((*t)->stats.valid);
  EXPECT_EQ((*t)->stats.row_count, 128u);
  ASSERT_EQ((*t)->stats.columns.size(), 3u);

  // DML then re-analyze keeps stats in step with the engine contents.
  ASSERT_OK(db.Execute("DELETE FROM T WHERE K < 28"));
  ASSERT_OK(db.Analyze("T"));
  EXPECT_EQ((*t)->stats.row_count, 100u);
}

// -- Dictionary compression ---------------------------------------------------

TEST(ColumnarCompressionTest, DictionaryRoundTripsCharValues) {
  Database db;
  LoadSmallTable(&db, "columnar", /*rows=*/256);
  // Exact values come back out of the dictionary.
  auto res = db.Query("SELECT S FROM T WHERE K = 5 OR K = 6 ORDER BY K");
  ASSERT_OK(res.status());
  ASSERT_EQ(res->rows.size(), 2u);
  EXPECT_EQ(res->rows[0][0].string_value(), "beta");
  EXPECT_EQ(res->rows[1][0].string_value(), "gamma");

  // 256 rows share 4 distinct strings: the dictionary must shrink the
  // column well below its raw footprint.
  auto t = GetTable(&db, "T");
  ASSERT_OK(t.status());
  ColumnarEngine* eng = AsColumnar(*t);
  EXPECT_EQ(eng->live_row_count(), 256u);
  EXPECT_GT(eng->RawBytes(), 0u);
  EXPECT_LT(eng->CompressedBytes(), eng->RawBytes());
}

TEST(ColumnarCompressionTest, AllDefaultColumnCollapsesUnderRle) {
  Database db;
  // S never varies: one dictionary entry, one run per chunk.
  ASSERT_OK(db.Execute(
      "CREATE TABLE F (K INTEGER, S CHAR(64)) ENGINE=columnar"));
  const std::string filler(60, 'z');
  for (int i = 0; i < 512; ++i) {
    ASSERT_OK(db.Execute("INSERT INTO F VALUES (" + std::to_string(i) +
                         ", '" + filler + "')"));
  }
  auto t = GetTable(&db, "F");
  ASSERT_OK(t.status());
  ColumnarEngine* eng = AsColumnar(*t);
  const uint64_t raw = eng->RawBytes();
  const uint64_t compressed = eng->CompressedBytes();
  // 512 copies of a 60-byte string suppress to a single dictionary entry
  // plus run headers; expect an order-of-magnitude collapse at least.
  EXPECT_LT(compressed * 4, raw)
      << "compressed=" << compressed << " raw=" << raw;

  // The collapsed column still scans correctly.
  auto res = db.Query("SELECT COUNT(*) FROM F WHERE S = '" + filler + "'");
  ASSERT_OK(res.status());
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0][0].AsInt(), 512);
}

TEST(ColumnarCompressionTest, SingleDistinctValuePredicates) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE G (K INTEGER, S CHAR(8)) ENGINE=columnar"));
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(db.Execute("INSERT INTO G VALUES (" + std::to_string(i) +
                         ", 'only')"));
  }
  // Dictionary-equality pushdown: the matching literal selects everything,
  // a non-member literal selects nothing without materializing rows.
  auto hit = db.Query("SELECT COUNT(*) FROM G WHERE S = 'only'");
  auto miss = db.Query("SELECT COUNT(*) FROM G WHERE S = 'other'");
  ASSERT_OK(hit.status());
  ASSERT_OK(miss.status());
  EXPECT_EQ(hit->rows[0][0].AsInt(), 100);
  EXPECT_EQ(miss->rows[0][0].AsInt(), 0);
}

TEST(ColumnarCompressionTest, EmptyTableHasZeroFootprint) {
  Database db;
  ASSERT_OK(db.Execute("CREATE TABLE E (A INTEGER, S CHAR(8)) "
                       "ENGINE=columnar"));
  auto t = GetTable(&db, "E");
  ASSERT_OK(t.status());
  ColumnarEngine* eng = AsColumnar(*t);
  EXPECT_EQ(eng->live_row_count(), 0u);
  EXPECT_EQ(eng->RawBytes(), 0u);
  EXPECT_EQ(eng->CompressedBytes(), 0u);
  auto res = db.Query("SELECT COUNT(*) FROM E");
  ASSERT_OK(res.status());
  EXPECT_EQ(res->rows[0][0].AsInt(), 0);
  ASSERT_OK(db.Analyze("E"));
  EXPECT_TRUE((*t)->stats.valid);
  EXPECT_EQ((*t)->stats.row_count, 0u);
}

// -- WAL gating ---------------------------------------------------------------

TEST(EngineWalGatingTest, EnableWalRejectsExistingColumnarTable) {
  Database db;
  ASSERT_OK(db.Execute("CREATE TABLE C (A INTEGER) ENGINE=columnar"));
  Status st = db.EnableWal();
  EXPECT_FALSE(st.ok()) << "EnableWal accepted a non-WAL-capable table";
}

TEST(EngineWalGatingTest, ColumnarCreateRejectedAfterEnableWal) {
  Database db;
  ASSERT_OK(db.EnableWal());
  Status st = db.Execute("CREATE TABLE C (A INTEGER) ENGINE=columnar");
  EXPECT_FALSE(st.ok()) << "columnar table created under WAL";
  // Row tables remain fine.
  ASSERT_OK(db.Execute("CREATE TABLE R (A INTEGER) ENGINE=row"));
}

// -- Crash semantics ----------------------------------------------------------

TEST(EngineCrashTest, CrashEmptiesColumnarTableAndItIsReusable) {
  Database db;
  ASSERT_OK(db.Execute(
      "CREATE TABLE W (K INTEGER, S CHAR(8)) ENGINE=columnar"));
  ASSERT_OK(db.Execute("CREATE INDEX W_K ON W (K)"));
  for (int i = 0; i < 32; ++i) {
    ASSERT_OK(db.Execute("INSERT INTO W VALUES (" + std::to_string(i) +
                         ", 'v')"));
  }
  ASSERT_OK(db.Analyze("W"));
  ASSERT_OK(db.SimulateCrash());

  // Memory-resident engine: the crash empties the table, its indexes, and
  // its statistics; the warehouse re-extracts rather than recovers.
  auto t = GetTable(&db, "W");
  ASSERT_OK(t.status());
  EXPECT_EQ((*t)->row_count, 0u);
  EXPECT_FALSE((*t)->stats.valid);
  auto res = db.Query("SELECT COUNT(*) FROM W");
  ASSERT_OK(res.status());
  EXPECT_EQ(res->rows[0][0].AsInt(), 0);

  // And the table is immediately usable again.
  ASSERT_OK(db.Execute("INSERT INTO W VALUES (1, 'w')"));
  res = db.Query("SELECT COUNT(*) FROM W WHERE K = 1");
  ASSERT_OK(res.status());
  EXPECT_EQ(res->rows[0][0].AsInt(), 1);
}

// -- Metrics surface ----------------------------------------------------------

TEST(ColumnarMetricsTest, ScanAndCompressionCountersAreEmitted) {
  MetricsRegistry registry;
  DatabaseOptions opts;
  opts.metrics = &registry;
  Database db(nullptr, opts);
  LoadSmallTable(&db, "columnar", /*rows=*/128);

  auto res = db.Query("SELECT SUM(V) FROM T WHERE K >= 0");
  ASSERT_OK(res.status());
  ASSERT_EQ(res->rows.size(), 1u);

  EXPECT_GT(registry.Value("columnar.segments_read"), 0);
  EXPECT_GT(registry.Value("columnar.values_scanned"), 0);
  EXPECT_GT(registry.Value("columnar.values_materialized"), 0);

  // Gauges publish on stats recompute.
  auto t = GetTable(&db, "T");
  ASSERT_OK(t.status());
  (void)AsColumnar(*t)->CompressedBytes();
  EXPECT_GT(registry.Value("columnar.raw_bytes"), 0);
  EXPECT_GT(registry.Value("columnar.compressed_bytes"), 0);
  EXPECT_GT(registry.Value("columnar.dict_bytes_saved"), 0);
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
