// End-to-end integration tests above the query layer: the power-test
// harness, the warehouse extraction (row counts must match the original
// database exactly), result validation, and the paper's qualitative shape
// claims at a tiny scale factor.
#include <gtest/gtest.h>

#include <set>

#include "common/str_util.h"
#include "sap/loader.h"
#include "sap/schema.h"
#include "sap/views.h"
#include "tpcd/loader.h"
#include "tpcd/power_test.h"
#include "tpcd/queries.h"
#include "tpcd/schema.h"
#include "tpcd/update_functions.h"
#include "tpcd/validate.h"
#include "warehouse/extract.h"

namespace r3 {
namespace tpcd {
namespace {

constexpr double kSf = 0.001;

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

std::unique_ptr<appsys::R3System> MakeSap(DbGen* gen, appsys::Release release,
                                          bool convert_konv) {
  appsys::AppServerOptions opts;
  opts.release = release;
  auto sys = std::make_unique<appsys::R3System>(opts);
  EXPECT_TRUE(sys->app.Bootstrap().ok());
  EXPECT_TRUE(sap::CreateSapSchema(&sys->app).ok());
  EXPECT_TRUE(sap::CreateJoinViews(&sys->app).ok());
  sap::SapLoader loader(&sys->app, gen);
  EXPECT_TRUE(loader.FastLoadAll().ok());
  if (convert_konv) {
    EXPECT_TRUE(sys->app.dictionary()
                    ->ConvertToTransparent("KONV", appsys::Release::kRelease30)
                    .ok());
  }
  return sys;
}

TEST(PowerTestTest, RunsAndReportsInPaperOrder) {
  DbGen gen(kSf);
  rdbms::Database db;
  ASSERT_OK(CreateTpcdSchema(&db));
  ASSERT_OK(LoadTpcdDatabase(&db, &gen));
  auto qs = MakeRdbmsQuerySet(&db);
  QueryParams params = QueryParams::Defaults(kSf);
  int64_t count = UpdateFunctionCount(gen);
  auto result = RunPowerTest(
      "RDBMS", qs.get(), params, db.clock(),
      [&] { return RunUf1Rdbms(&db, &gen, count); },
      [&] { return RunUf2Rdbms(&db, &gen, count); });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().items.size(), 19u);  // 17 queries + UF1 + UF2
  EXPECT_EQ(result.value().items[0].label, "Q1");
  EXPECT_EQ(result.value().items[16].label, "Q17");
  EXPECT_EQ(result.value().items[17].label, "UF1");
  EXPECT_EQ(result.value().items[18].label, "UF2");
  for (const PowerItem& item : result.value().items) {
    EXPECT_GT(item.sim_us, 0) << item.label;
  }
  EXPECT_GT(result.value().TotalAllSimUs(),
            result.value().TotalQueriesSimUs());
  EXPECT_NE(result.value().Find("Q5"), nullptr);
  EXPECT_EQ(result.value().Find("Q99"), nullptr);
  // The column formatter mentions every item.
  std::string rendered = FormatPowerColumn(result.value());
  EXPECT_NE(rendered.find("Q17"), std::string::npos);
  EXPECT_NE(rendered.find("Total (queries)"), std::string::npos);
}

TEST(WarehouseTest, ExtractionReconstructsExactRowCounts) {
  DbGen gen(kSf);
  auto sap = MakeSap(&gen, appsys::Release::kRelease30, /*convert_konv=*/true);
  std::vector<std::string> files;
  auto timings = warehouse::ExtractWarehouse(&sap->app, &files);
  ASSERT_TRUE(timings.ok()) << timings.status().ToString();
  ASSERT_EQ(timings.value().size(), 8u);
  ASSERT_EQ(files.size(), 8u);

  int64_t expected[] = {5,
                        25,
                        gen.NumSuppliers(),
                        gen.NumParts(),
                        gen.NumPartSupps(),
                        gen.NumCustomers(),
                        gen.NumOrders(),
                        0 /* lineitems counted below */};
  int64_t lineitems = 0;
  (void)gen.ForEachOrder([&](const OrderRec& o) {
    lineitems += static_cast<int64_t>(o.lines.size());
    return Status::OK();
  });
  expected[7] = lineitems;
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(timings.value()[i].rows, expected[i])
        << timings.value()[i].table;
    // ASCII output: one '\n'-terminated line per row, fields '|'-separated.
    EXPECT_EQ(std::count(files[i].begin(), files[i].end(), '\n'),
              expected[i]);
    EXPECT_GT(timings.value()[i].sim_us, 0);
  }
  // LINEITEM extraction dominates, as in Table 9.
  int64_t total = 0;
  for (const auto& t : timings.value()) total += t.sim_us;
  EXPECT_GT(timings.value()[7].sim_us, total / 2);
}

TEST(WarehouseTest, ExtractedLineitemFieldsMatchGenerator) {
  DbGen gen(kSf);
  auto sap = MakeSap(&gen, appsys::Release::kRelease30, /*convert_konv=*/true);
  std::vector<std::string> files;
  ASSERT_TRUE(warehouse::ExtractWarehouse(&sap->app, &files).ok());
  // First lineitem row corresponds to orderkey 1, linenumber 1.
  std::string first_line = files[7].substr(0, files[7].find('\n'));
  auto fields = str::Split(first_line, '|');
  OrderRec first_order;
  bool got = false;
  (void)gen.ForEachOrder([&](const OrderRec& o) {
    if (!got) {
      first_order = o;
      got = true;
    }
    return Status::OK();
  });
  ASSERT_TRUE(got);
  EXPECT_EQ(std::strtoll(fields[0].c_str(), nullptr, 10), first_order.orderkey);
  EXPECT_EQ(std::strtoll(fields[1].c_str(), nullptr, 10),
            first_order.lines[0].partkey);
  EXPECT_EQ(std::strtoll(fields[2].c_str(), nullptr, 10),
            first_order.lines[0].suppkey);
}

TEST(ValidateTest, EquivalenceRules) {
  rdbms::QueryResult a, b;
  a.rows.push_back({rdbms::Value::Int(42), rdbms::Value::Dbl(1.5)});
  b.rows.push_back(
      {rdbms::Value::Str("0000000042"), rdbms::Value::DecimalFromCents(150)});
  std::string diff;
  EXPECT_TRUE(ResultsEquivalent(a, b, /*ordered=*/true, &diff)) << diff;

  // Near-equal doubles within tolerance.
  rdbms::QueryResult c, d;
  c.rows.push_back({rdbms::Value::Dbl(1000000.0)});
  d.rows.push_back({rdbms::Value::Dbl(1000000.05)});
  EXPECT_TRUE(ResultsEquivalent(c, d, true, &diff));
  d.rows[0][0] = rdbms::Value::Dbl(1001000.0);
  EXPECT_FALSE(ResultsEquivalent(c, d, true, &diff));

  // Unordered comparison sorts rows.
  rdbms::QueryResult e, f;
  e.rows.push_back({rdbms::Value::Int(1)});
  e.rows.push_back({rdbms::Value::Int(2)});
  f.rows.push_back({rdbms::Value::Int(2)});
  f.rows.push_back({rdbms::Value::Int(1)});
  EXPECT_FALSE(ResultsEquivalent(e, f, true, &diff));
  EXPECT_TRUE(ResultsEquivalent(e, f, false, &diff));

  // Row-count mismatch reported.
  f.rows.pop_back();
  EXPECT_FALSE(ResultsEquivalent(e, f, false, &diff));
  EXPECT_NE(diff.find("row count"), std::string::npos);
}

TEST(ShapeTest, OpenSql22CostsMoreThanNativeWhichCostsMoreThanRdbms) {
  // The paper's headline ordering on a KONV-heavy query (Q6: the discount
  // lives in the cluster table).
  DbGen gen(kSf);
  rdbms::Database rdb;
  ASSERT_OK(CreateTpcdSchema(&rdb));
  ASSERT_OK(LoadTpcdDatabase(&rdb, &gen));
  auto sap = MakeSap(&gen, appsys::Release::kRelease22, /*convert_konv=*/false);

  QueryParams params = QueryParams::Defaults(kSf);
  auto q_rdbms = MakeRdbmsQuerySet(&rdb);
  auto q_native = MakeNativeQuerySet(&sap->app);
  auto q_open = MakeOpen22QuerySet(&sap->app);

  SimTimer t1(*rdb.clock());
  ASSERT_TRUE(q_rdbms->RunQuery(6, params).ok());
  int64_t rdbms_us = t1.ElapsedUs();

  SimTimer t2(sap->clock);
  ASSERT_TRUE(q_native->RunQuery(6, params).ok());
  int64_t native_us = t2.ElapsedUs();

  SimTimer t3(sap->clock);
  ASSERT_TRUE(q_open->RunQuery(6, params).ok());
  int64_t open_us = t3.ElapsedUs();

  EXPECT_GT(native_us, rdbms_us);
  // Open 2.2 is within the same order as Native here (both pay the KONV
  // nested probes); it must not be *cheaper* than the RDBMS.
  EXPECT_GT(open_us, rdbms_us);
}

TEST(ShapeTest, Upgrade30MakesOpenSqlFasterOnJoins) {
  // Q1 touches every line item's KONV conditions: in 2.2 that is one nested
  // probe per line; in 3.0 one pushed-down join. (Selective queries like Q3
  // can legitimately cross over at tiny scale, so the full-scan query is
  // the robust witness.)
  DbGen gen(kSf);
  auto sap22 = MakeSap(&gen, appsys::Release::kRelease22, false);
  auto sap30 = MakeSap(&gen, appsys::Release::kRelease30, true);
  QueryParams params = QueryParams::Defaults(kSf);

  auto q22 = MakeOpen22QuerySet(&sap22->app);
  auto q30 = MakeOpen30QuerySet(&sap30->app);

  SimTimer t22(sap22->clock);
  ASSERT_TRUE(q22->RunQuery(1, params).ok());
  int64_t us22 = t22.ElapsedUs();

  SimTimer t30(sap30->clock);
  ASSERT_TRUE(q30->RunQuery(1, params).ok());
  int64_t us30 = t30.ElapsedUs();

  EXPECT_LT(us30, us22) << "join push-down must pay off";
}

TEST(ShapeTest, BatchInputDwarfsDirectInserts) {
  // Table 3's lesson, in miniature: entering one order through batch input
  // costs orders of magnitude more than inserting the rows directly.
  DbGen gen(kSf);
  rdbms::Database rdb;
  ASSERT_OK(CreateTpcdSchema(&rdb));
  auto sap = MakeSap(&gen, appsys::Release::kRelease22, false);
  sap::SapLoader loader(&sap->app, &gen);

  OrderRec order = gen.MakeRefreshOrder(0);

  SimTimer direct(*rdb.clock());
  ASSERT_OK(rdb.InsertRow("ORDERS", OrderToRow(order)));
  for (const LineItemRec& l : order.lines) {
    ASSERT_OK(rdb.InsertRow("LINEITEM", LineItemToRow(l)));
  }
  int64_t direct_us = direct.ElapsedUs();

  SimTimer dialog(sap->clock);
  ASSERT_OK(loader.EnterOrder(order));
  int64_t dialog_us = dialog.ElapsedUs();

  EXPECT_GT(dialog_us, direct_us * 20);
}

}  // namespace
}  // namespace tpcd
}  // namespace r3
