// B+-tree tests: point ops, splits across many keys, duplicates (including
// duplicates straddling leaf splits), range cursors, deletes, uniqueness,
// and a randomized cross-check against std::multimap.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "rdbms/index/btree.h"
#include "rdbms/index/key_codec.h"

namespace r3 {
namespace rdbms {
namespace {

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : pool_(&disk_, &clock_, 256 * kPageSize) {
    auto t = BTree::Create(&pool_);
    tree_ = std::make_unique<BTree>(std::move(t).value());
  }

  static std::string K(int64_t v) { return key_codec::Encode(Value::Int(v)); }
  static std::string KS(const std::string& s) {
    return key_codec::Encode(Value::Str(s));
  }

  std::vector<std::pair<std::string, uint64_t>> Drain(std::string_view lower) {
    std::vector<std::pair<std::string, uint64_t>> out;
    auto c = tree_->Seek(std::string(lower));
    EXPECT_TRUE(c.ok());
    std::string k;
    uint64_t p;
    while (c.value().Next(&k, &p).value()) out.emplace_back(k, p);
    return out;
  }

  Disk disk_;
  SimClock clock_;
  BufferPool pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTree) {
  EXPECT_EQ(tree_->CountEntries().value(), 0u);
  EXPECT_FALSE(tree_->Contains(K(1)).value());
  EXPECT_TRUE(Drain("").empty());
}

TEST_F(BTreeTest, PointInsertAndContains) {
  ASSERT_OK(tree_->Insert(K(5), 50));
  ASSERT_OK(tree_->Insert(K(3), 30));
  EXPECT_TRUE(tree_->Contains(K(5)).value());
  EXPECT_FALSE(tree_->Contains(K(4)).value());
}

TEST_F(BTreeTest, ManyInsertsCauseSplitsAndStaySorted) {
  // Shuffled inserts of 20k keys force several levels of splits.
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 20000; ++i) keys.push_back(i);
  Rng rng(5);
  rng.Shuffle(&keys);
  for (int64_t k : keys) {
    ASSERT_OK(tree_->Insert(K(k), static_cast<uint64_t>(k)));
  }
  EXPECT_GT(tree_->height(), 1);
  auto all = Drain("");
  ASSERT_EQ(all.size(), 20000u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].second, i) << "position " << i;
    if (i > 0) {
      EXPECT_LT(all[i - 1].first, all[i].first);
    }
  }
}

TEST_F(BTreeTest, RangeSeek) {
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_OK(tree_->Insert(K(i * 2), static_cast<uint64_t>(i)));
  }
  auto from_51 = Drain(K(51));
  ASSERT_FALSE(from_51.empty());
  EXPECT_EQ(from_51[0].first, K(52));
  EXPECT_EQ(from_51.size(), 74u);  // 52..198 step 2
}

TEST_F(BTreeTest, DuplicateKeysAllRetained) {
  for (uint64_t p = 0; p < 500; ++p) {
    ASSERT_OK(tree_->Insert(K(7), p));
  }
  ASSERT_OK(tree_->Insert(K(6), 1));
  ASSERT_OK(tree_->Insert(K(8), 2));
  auto dup = Drain(K(7));
  // 500 sevens (payload-ordered) then the single eight.
  ASSERT_EQ(dup.size(), 501u);
  for (uint64_t p = 0; p < 500; ++p) {
    EXPECT_EQ(dup[p].first, K(7));
    EXPECT_EQ(dup[p].second, p);
  }
  EXPECT_EQ(dup[500].first, K(8));
}

TEST_F(BTreeTest, DuplicatesAcrossLeafSplitsAreFound) {
  // Long runs of duplicates forced over many leaves.
  for (int64_t k = 0; k < 20; ++k) {
    for (uint64_t p = 0; p < 300; ++p) {
      ASSERT_OK(tree_->Insert(K(k), k * 1000 + p));
    }
  }
  for (int64_t k = 0; k < 20; ++k) {
    EXPECT_TRUE(tree_->Contains(K(k)).value()) << k;
  }
  EXPECT_EQ(tree_->CountEntries().value(), 6000u);
  // A seek at key k must find all 300 of its entries before key k+1.
  auto at_5 = Drain(K(5));
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(at_5[static_cast<size_t>(i)].first, K(5));
  }
  EXPECT_EQ(at_5[300].first, K(6));
}

TEST_F(BTreeTest, DeleteExactEntry) {
  ASSERT_OK(tree_->Insert(K(1), 10));
  ASSERT_OK(tree_->Insert(K(1), 11));
  ASSERT_OK(tree_->Delete(K(1), 10));
  auto rest = Drain("");
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].second, 11u);
  EXPECT_FALSE(tree_->Delete(K(1), 10).ok());  // already gone
  EXPECT_FALSE(tree_->Delete(K(2), 0).ok());   // never existed
}

TEST_F(BTreeTest, UniqueIndexRejectsDuplicates) {
  ASSERT_OK(tree_->Insert(K(1), 10, /*unique=*/true));
  Status st = tree_->Insert(K(1), 11, /*unique=*/true);
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tree_->CountEntries().value(), 1u);
}

TEST_F(BTreeTest, VariableLengthStringKeys) {
  std::vector<std::string> words = {"a", "ab", "abc", "b", "ba", "z", "zz"};
  for (size_t i = 0; i < words.size(); ++i) {
    ASSERT_OK(tree_->Insert(KS(words[i]), i));
  }
  auto all = Drain("");
  ASSERT_EQ(all.size(), words.size());
  EXPECT_EQ(all[0].second, 0u);   // "a"
  EXPECT_EQ(all[1].second, 1u);   // "ab"
  EXPECT_EQ(all[2].second, 2u);   // "abc"
  EXPECT_EQ(all[3].second, 3u);   // "b"
}

TEST_F(BTreeTest, OversizeKeyRejected) {
  std::string huge(kPageSize, 'k');
  EXPECT_EQ(tree_->Insert(huge, 1).code(), StatusCode::kOutOfRange);
}

TEST_F(BTreeTest, RandomizedAgainstMultimap) {
  Rng rng(99);
  std::multimap<std::string, uint64_t> reference;
  for (int op = 0; op < 8000; ++op) {
    int64_t raw = rng.Uniform(0, 500);
    std::string key = K(raw);
    if (rng.Bernoulli(0.75) || reference.empty()) {
      uint64_t payload = static_cast<uint64_t>(op);
      ASSERT_OK(tree_->Insert(key, payload));
      reference.emplace(key, payload);
    } else {
      // Delete one existing entry for this key if any.
      auto it = reference.find(key);
      if (it != reference.end()) {
        ASSERT_OK(tree_->Delete(key, it->second));
        reference.erase(it);
      } else {
        EXPECT_FALSE(tree_->Delete(key, 1).ok());
      }
    }
  }
  auto all = Drain("");
  ASSERT_EQ(all.size(), reference.size());
  size_t i = 0;
  for (const auto& [k, p] : reference) {
    EXPECT_EQ(all[i].first, k);
    ++i;
  }
}

TEST_F(BTreeTest, CountAndPages) {
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_OK(tree_->Insert(K(i), static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(tree_->CountEntries().value(), 5000u);
  EXPECT_GT(tree_->NumPages().value(), 10u);
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
