// Batch-at-a-time execution pipeline: RowBatch mechanics, batch-size
// invariance of results and simulated times (batch capacity is a wall-clock
// knob only), LIMIT cutting a batch mid-fill, empty results, cursor
// rebind-and-reopen on cached plans, EXPLAIN ANALYZE counters, and the
// app-server regression that tuple shipping stays charged per tuple no
// matter how many tuples a FetchBatch call returns.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "appsys/connection.h"
#include "common/sim_clock.h"
#include "common/str_util.h"
#include "rdbms/db.h"

namespace r3 {
namespace rdbms {
namespace {

#define ASSERT_OK(expr)                      \
  do {                                       \
    ::r3::Status _st = (expr);               \
    ASSERT_TRUE(_st.ok()) << _st.ToString(); \
  } while (false)

TEST(RowBatchTest, AppendTruncatePop) {
  RowBatch batch(4);
  EXPECT_EQ(batch.capacity(), 4u);
  EXPECT_TRUE(batch.empty());
  for (int i = 0; i < 4; ++i) {
    Row& r = batch.AppendRow();
    r.push_back(Value::Int(i));
  }
  EXPECT_TRUE(batch.full());
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.row(2)[0].AsInt(), 2);

  batch.PopRow();
  EXPECT_EQ(batch.size(), 3u);
  batch.Truncate(1);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.row(0)[0].AsInt(), 0);

  // Reset empties but keeps capacity; appended slots are reused cleared.
  batch.Reset(4);
  EXPECT_TRUE(batch.empty());
  Row& r = batch.AppendRow();
  EXPECT_TRUE(r.empty());
}

TEST(RowBatchTest, KeepCompactsFromOffset) {
  RowBatch batch(8);
  for (int i = 0; i < 8; ++i) {
    batch.AppendRow().push_back(Value::Int(i));
  }
  // Keep rows 0..2 untouched, then survivors {4, 6, 7} of the tail.
  SelVector sel = {4, 6, 7};
  batch.Keep(sel, /*first=*/3);
  ASSERT_EQ(batch.size(), 6u);
  const int64_t expect[] = {0, 1, 2, 4, 6, 7};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(batch.row(i)[0].AsInt(), expect[i]) << "row " << i;
  }
}

std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>();
  Status st = db->Execute(
      "CREATE TABLE t (id INT, grp INT, val DECIMAL, PRIMARY KEY (id))");
  EXPECT_TRUE(st.ok()) << st.ToString();
  st = db->Execute("CREATE TABLE s (id INT, t_grp INT, PRIMARY KEY (id))");
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (int64_t i = 0; i < 500; ++i) {
    st = db->InsertRow("t", Row{Value::Int(i), Value::Int(i % 100),
                                Value::Decimal(static_cast<double>(i) / 7.0)});
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  for (int64_t i = 0; i < 200; ++i) {
    st = db->InsertRow("s", Row{Value::Int(i), Value::Int(i % 50)});
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  st = db->Analyze();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return db;
}

std::vector<std::string> RowStrings(const QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const Row& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      s += v.ToString();
      s += '|';
    }
    out.push_back(std::move(s));
  }
  return out;
}

// Results and simulated times must be identical at batch 1 (the legacy
// row-at-a-time shape), a deliberately awkward 7, and the default 1024 —
// across scans, filters, aggregation, sort, distinct, joins, and LIMIT.
TEST(BatchSizeInvarianceTest, RowsAndSimTimesIdenticalAcrossBatchSizes) {
  const std::vector<std::string> queries = {
      "SELECT grp, COUNT(*), SUM(val) FROM t WHERE val > 10.0 GROUP BY grp",
      "SELECT DISTINCT grp FROM t WHERE id < 200",
      "SELECT id, val FROM t ORDER BY val DESC LIMIT 10",
      "SELECT COUNT(*) FROM t, s WHERE t.id = s.t_grp",
      "SELECT id FROM t WHERE id >= 100 LIMIT 37",
  };

  // Per batch size, a fresh (deterministically identical) database; the
  // simulated time of each query must not depend on the batch capacity.
  std::vector<std::vector<int64_t>> times;
  std::vector<std::vector<std::vector<std::string>>> rows;
  for (size_t batch_rows : {size_t{1}, size_t{7}, kDefaultBatchRows}) {
    auto db = MakeDb();
    db->set_batch_rows(batch_rows);
    times.emplace_back();
    rows.emplace_back();
    for (const std::string& q : queries) {
      ASSERT_OK(db->pool()->Reset());
      SimTimer t(*db->clock());
      auto res = db->Query(q);
      times.back().push_back(t.ElapsedUs());
      ASSERT_TRUE(res.ok()) << q << ": " << res.status().ToString();
      rows.back().push_back(RowStrings(res.value()));
    }
  }

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (size_t k = 1; k < times.size(); ++k) {
      EXPECT_EQ(times[0][qi], times[k][qi])
          << queries[qi] << ": batch-size run " << k
          << " changed simulated time";
      EXPECT_EQ(rows[0][qi], rows[k][qi])
          << queries[qi] << ": batch-size run " << k << " changed rows";
    }
  }
}

TEST(BatchExecTest, LimitCutsMidBatch) {
  auto db = MakeDb();
  for (size_t batch_rows : {size_t{1}, size_t{7}, kDefaultBatchRows}) {
    db->set_batch_rows(batch_rows);
    auto res = db->Query("SELECT id FROM t WHERE id >= 100 LIMIT 37");
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_EQ(res.value().rows.size(), 37u) << "batch " << batch_rows;
    for (size_t i = 0; i < 37; ++i) {
      EXPECT_EQ(res.value().rows[i][0].AsInt(), static_cast<int64_t>(100 + i));
    }
  }
}

TEST(BatchExecTest, EmptyResultAndStickyExhaustion) {
  auto db = MakeDb();
  auto res = db->Query("SELECT id FROM t WHERE id < 0");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res.value().rows.empty());

  auto stmt = db->Prepare("SELECT id FROM t WHERE id < ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto cur = db->OpenCursor(stmt.value(), {Value::Int(0)});
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  RowBatch batch(db->batch_rows());
  auto got = cur.value().FetchBatch(&batch);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(got.value());
  EXPECT_TRUE(batch.empty());
  // Exhaustion is sticky: further fetches keep returning false.
  got = cur.value().FetchBatch(&batch);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(got.value());
  ASSERT_OK(cur.value().Close());
}

TEST(BatchExecTest, CursorFetchGranularityAndRebind) {
  auto db = MakeDb();
  db->set_batch_rows(10);
  auto stmt = db->Prepare("SELECT id FROM t WHERE id < ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  // 25 qualifying rows arrive as batches of 10, 10, 5.
  auto cur = db->OpenCursor(stmt.value(), {Value::Int(25)});
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  RowBatch batch(10);
  std::vector<size_t> batch_sizes;
  int64_t next_id = 0;
  while (true) {
    auto got = cur.value().FetchBatch(&batch);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (!got.value()) break;
    batch_sizes.push_back(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch.row(i)[0].AsInt(), next_id++);
    }
  }
  EXPECT_EQ(batch_sizes, (std::vector<size_t>{10, 10, 5}));
  ASSERT_OK(cur.value().Close());

  // Rebind-and-reopen the same cached plan with new parameters.
  auto cur2 = db->OpenCursor(stmt.value(), {Value::Int(3)});
  ASSERT_TRUE(cur2.ok()) << cur2.status().ToString();
  size_t rows = 0;
  while (true) {
    auto got = cur2.value().FetchBatch(&batch);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (!got.value()) break;
    rows += batch.size();
  }
  EXPECT_EQ(rows, 3u);
  ASSERT_OK(cur2.value().Close());

  // And the plain prepared path still works after cursor use.
  auto res = db->ExecutePrepared(stmt.value(), {Value::Int(7)});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().rows.size(), 7u);
}

TEST(BatchExecTest, ExplainAnalyzeShowsRuntimeCounters) {
  auto db = MakeDb();
  const std::string q =
      "SELECT grp, COUNT(*) FROM t WHERE val > 10.0 GROUP BY grp";

  auto plain = db->Explain(q);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain.value().find("[rows="), std::string::npos) << plain.value();

  auto analyzed = db->ExplainAnalyze(q);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed.value().find("[rows="), std::string::npos)
      << analyzed.value();
  EXPECT_NE(analyzed.value().find("sim="), std::string::npos)
      << analyzed.value();
  EXPECT_NE(analyzed.value().find("Totals:"), std::string::npos)
      << analyzed.value();
  // Stripped of the annotations, the analyzed plan is the plain plan.
  EXPECT_NE(analyzed.value().find("HashAggregate"), std::string::npos)
      << analyzed.value();
}

// The app server's interface cost is per tuple crossing the wire plus one
// round trip per call — batching the fetch amortizes neither. The cursor
// path must cost exactly rpc_round_trip + n * tuple_ship more than the
// same prepared statement executed inside the database, at every batch
// size.
TEST(BatchExecTest, ConnectionChargesTupleShipPerTuple) {
  for (size_t batch_rows : {size_t{2}, kDefaultBatchRows}) {
    auto db = MakeDb();
    db->set_batch_rows(batch_rows);
    appsys::DbConnection conn(db.get(), db->clock());
    const std::string sql = "SELECT id FROM t WHERE grp = ?";
    const std::vector<Value> params = {Value::Int(3)};

    // Warm: pays the hard parse so both timed runs are soft-parse.
    auto warm = conn.ExecuteCursor(sql, params);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    const int64_t n = static_cast<int64_t>(warm.value().rows.size());
    ASSERT_EQ(n, 5);

    auto stmt = db->Prepare(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

    ASSERT_OK(db->pool()->Reset());
    SimTimer t_db(*db->clock());
    auto inside = db->ExecutePrepared(stmt.value(), params);
    int64_t db_us = t_db.ElapsedUs();
    ASSERT_TRUE(inside.ok()) << inside.status().ToString();

    conn.ResetStats();
    ASSERT_OK(db->pool()->Reset());
    SimTimer t_conn(*db->clock());
    auto shipped = conn.ExecuteCursor(sql, params);
    int64_t conn_us = t_conn.ElapsedUs();
    ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();

    const CostModel& model = db->clock()->model();
    EXPECT_EQ(conn_us - db_us,
              model.rpc_round_trip_us + n * model.tuple_ship_us)
        << "batch " << batch_rows
        << ": interface overhead is not per-tuple (db=" << db_us
        << "us conn=" << conn_us << "us)";
    EXPECT_EQ(conn.stats().rows_shipped, n);
    EXPECT_EQ(conn.stats().round_trips, 1);
  }
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
