// Application-system layer tests: data dictionary (transparent/pool/cluster),
// Open SQL translation + release gating, Native SQL reachability, table
// buffering, report runtime, and batch input.
#include <gtest/gtest.h>

#include "appsys/app_server.h"
#include "common/metrics.h"

namespace r3 {
namespace appsys {
namespace {

using rdbms::ColChar;
using rdbms::ColDecimal;
using rdbms::ColInt;
using rdbms::CmpOp;
using rdbms::Row;
using rdbms::Schema;
using rdbms::Value;

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)
#define EXPECT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    EXPECT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

class AppSysTest : public ::testing::Test {
 protected:
  void SetUp() override { Install(Release::kRelease30); }

  void Install(Release release) {
    AppServerOptions opts;
    opts.release = release;
    opts.table_buffer_bytes = 1u << 20;
    rdbms::DatabaseOptions db_opts;
    db_opts.metrics = &metrics_;
    sys_ = std::make_unique<R3System>(opts, db_opts);
    ASSERT_OK(sys_->app.Bootstrap());
    DefineSchema();
  }

  void DefineSchema() {
    DataDictionary* dict = sys_->app.dictionary();
    // A small material master (transparent).
    Schema mara({ColChar("MANDT", 3), ColChar("MATNR", 16),
                 ColChar("MTART", 4), ColDecimal("BRGEW")});
    ASSERT_OK(dict->DefineTransparent("MARA", mara, {"MANDT", "MATNR"}));
    // A pool table of pricing terms.
    Schema a004({ColChar("MANDT", 3), ColChar("KNUMH", 10),
                 ColChar("MATNR", 16), ColDecimal("KBETR")});
    ASSERT_OK(dict->DefinePool("A004", a004, {"MANDT", "KNUMH"}, "KAPOL"));
    // A cluster of document conditions: bundle per (MANDT, KNUMV).
    Schema konv({ColChar("MANDT", 3), ColChar("KNUMV", 10),
                 ColInt("KPOSN", 4), ColChar("KSCHL", 4),
                 ColDecimal("KBETR"), ColDecimal("KAWRT")});
    ASSERT_OK(dict->DefineCluster(
        "KONV", konv, {"MANDT", "KNUMV", "KPOSN", "KSCHL"}, 2, "KOCLU"));
  }

  Row MaraRow(const std::string& matnr, const std::string& mtart, double w) {
    return Row{Value::Str("301"), Value::Str(matnr), Value::Str(mtart),
               Value::Decimal(w)};
  }
  Row KonvRow(const std::string& knumv, int64_t posn, const std::string& kschl,
              double kbetr, double kawrt) {
    return Row{Value::Str("301"), Value::Str(knumv), Value::Int(posn),
               Value::Str(kschl), Value::Decimal(kbetr), Value::Decimal(kawrt)};
  }

  // Declared before sys_ so the system (whose TableBuffer and Database cache
  // counter pointers) is destroyed first.
  MetricsRegistry metrics_;
  std::unique_ptr<R3System> sys_;
};

TEST_F(AppSysTest, TransparentInsertAndOpenSqlSelect) {
  OpenSql* osql = sys_->app.open_sql();
  ASSERT_OK(osql->Insert("MARA", MaraRow("M1", "FERT", 1.5)));
  ASSERT_OK(osql->Insert("MARA", MaraRow("M2", "ROH", 2.5)));

  OpenSqlQuery q;
  q.table = "MARA";
  q.columns = {"MATNR"};
  q.where = {OsqlCond::Cmp("BRGEW", CmpOp::kGt, Value::Dbl(2.0))};
  auto res = osql->Select(q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res.value().rows.size(), 1u);
  EXPECT_EQ(res.value().rows[0][0].string_value(), "M2");
}

TEST_F(AppSysTest, MandtIsInjectedAutomatically) {
  OpenSql* osql = sys_->app.open_sql();
  ASSERT_OK(osql->Insert("MARA", MaraRow("M1", "FERT", 1.0)));
  // A row of another business client, inserted behind Open SQL's back.
  ASSERT_OK(sys_->db.InsertRow(
      "MARA", Row{Value::Str("999"), Value::Str("MX"), Value::Str("FERT"),
                  Value::Decimal(9.0)}));
  OpenSqlQuery q;
  q.table = "MARA";
  auto res = osql->Select(q);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().rows.size(), 1u);  // the other client is invisible

  // Native SQL sees everything unless the report writes MANDT itself.
  auto native = sys_->app.native_sql()->ExecSql("SELECT MATNR FROM MARA");
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(native.value().rows.size(), 2u);
}

TEST_F(AppSysTest, OpenSqlTranslationParameterizesLiterals) {
  OpenSqlQuery q;
  q.table = "MARA";
  q.columns = {"MATNR"};
  q.where = {OsqlCond::Cmp("BRGEW", CmpOp::kLt, Value::Dbl(42.0))};
  auto sql = sys_->app.open_sql()->TranslateForDisplay(q);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  // No literal 42 anywhere; the MANDT value is a parameter too.
  EXPECT_EQ(sql.value().find("42"), std::string::npos) << sql.value();
  EXPECT_EQ(sql.value().find("301"), std::string::npos) << sql.value();
  EXPECT_NE(sql.value().find("?"), std::string::npos);
}

TEST_F(AppSysTest, PoolTableRoundTrip) {
  DataDictionary* dict = sys_->app.dictionary();
  ASSERT_OK(dict->InsertLogical(
      "A004", Row{Value::Str("301"), Value::Str("K1"), Value::Str("M1"),
                  Value::Decimal(10.5)}));
  ASSERT_OK(dict->InsertLogical(
      "A004", Row{Value::Str("301"), Value::Str("K2"), Value::Str("M2"),
                  Value::Decimal(20.25)}));
  auto rows = dict->ReadLogical(
      "A004", {DictCond{"MANDT", CmpOp::kEq, Value::Str("301")},
               DictCond{"KNUMH", CmpOp::kEq, Value::Str("K2")}});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0][2].string_value(), "M2");
  EXPECT_DOUBLE_EQ(rows.value()[0][3].AsDouble(), 20.25);
  // The logical table does not exist in the RDBMS schema.
  EXPECT_FALSE(sys_->db.catalog()->HasTable("A004"));
  EXPECT_TRUE(sys_->db.catalog()->HasTable("KAPOL"));
}

TEST_F(AppSysTest, ClusterBundlesRows) {
  DataDictionary* dict = sys_->app.dictionary();
  ASSERT_OK(dict->InsertLogical("KONV", KonvRow("D1", 1, "DISC", 50, 100)));
  ASSERT_OK(dict->InsertLogical("KONV", KonvRow("D1", 2, "DISC", 60, 200)));
  ASSERT_OK(dict->InsertLogical("KONV", KonvRow("D2", 1, "TAX", 70, 300)));

  // One physical bundle per document.
  auto phys = sys_->db.Query("SELECT COUNT(*) FROM KOCLU");
  ASSERT_TRUE(phys.ok());
  EXPECT_EQ(phys.value().rows[0][0].AsInt(), 2);

  auto rows = dict->ReadLogical(
      "KONV", {DictCond{"MANDT", CmpOp::kEq, Value::Str("301")},
               DictCond{"KNUMV", CmpOp::kEq, Value::Str("D1")}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
}

TEST_F(AppSysTest, NativeSqlCannotReachEncapsulatedTables) {
  auto res = sys_->app.native_sql()->ExecSql(
      "SELECT * FROM KONV WHERE MANDT = '301'");
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
}

TEST_F(AppSysTest, OpenSqlReadsEncapsulatedTables) {
  DataDictionary* dict = sys_->app.dictionary();
  ASSERT_OK(dict->InsertLogical("KONV", KonvRow("D1", 1, "DISC", 50, 100)));
  ASSERT_OK(dict->InsertLogical("KONV", KonvRow("D1", 2, "TAX", 60, 200)));
  OpenSqlQuery q;
  q.table = "KONV";
  q.columns = {"KPOSN", "KBETR"};
  q.where = {OsqlCond::Eq("KNUMV", Value::Str("D1")),
             OsqlCond::Eq("KSCHL", Value::Str("TAX"))};
  auto res = sys_->app.open_sql()->Select(q);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res.value().rows.size(), 1u);
  EXPECT_EQ(res.value().rows[0][0].AsInt(), 2);
}

TEST_F(AppSysTest, Release22RejectsJoinAndAggregatePushdown) {
  Install(Release::kRelease22);
  OpenSqlQuery join_q;
  join_q.table = "MARA";
  join_q.joins.push_back(OsqlJoinTable{"A004", "", {{"MARA~MATNR", "A004~MATNR"}}, false});
  EXPECT_EQ(sys_->app.open_sql()->Select(join_q).status().code(),
            StatusCode::kUnsupported);

  OpenSqlQuery agg_q;
  agg_q.table = "MARA";
  agg_q.aggregates.push_back(OsqlAggregate{rdbms::AggFunc::kSum, "BRGEW", false});
  EXPECT_EQ(sys_->app.open_sql()->Select(agg_q).status().code(),
            StatusCode::kUnsupported);
}

TEST_F(AppSysTest, Release30PushesJoinsAndSimpleAggregates) {
  OpenSql* osql = sys_->app.open_sql();
  ASSERT_OK(osql->Insert("MARA", MaraRow("M1", "FERT", 1.0)));
  ASSERT_OK(osql->Insert("MARA", MaraRow("M2", "FERT", 3.0)));
  ASSERT_OK(osql->Insert("MARA", MaraRow("M3", "ROH", 5.0)));

  OpenSqlQuery agg;
  agg.table = "MARA";
  agg.group_by = {"MTART"};
  agg.aggregates = {OsqlAggregate{rdbms::AggFunc::kSum, "BRGEW", false},
                    OsqlAggregate{rdbms::AggFunc::kCountStar, "", false}};
  agg.order_by = {"MTART"};
  auto res = osql->Select(agg);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res.value().rows.size(), 2u);
  EXPECT_EQ(res.value().rows[0][0].string_value(), "FERT");
  EXPECT_DOUBLE_EQ(res.value().rows[0][1].AsDouble(), 4.0);
  EXPECT_EQ(res.value().rows[0][2].AsInt(), 2);
}

TEST_F(AppSysTest, ClusterConversionGatedByRelease) {
  Install(Release::kRelease22);
  DataDictionary* dict = sys_->app.dictionary();
  EXPECT_EQ(dict->ConvertToTransparent("KONV", sys_->app.release()).code(),
            StatusCode::kUnsupported);
  // Pool conversion works even in 2.2.
  ASSERT_OK(dict->InsertLogical(
      "A004", Row{Value::Str("301"), Value::Str("K1"), Value::Str("M1"),
                  Value::Decimal(1.0)}));
  ASSERT_OK(dict->ConvertToTransparent("A004", sys_->app.release()));
  EXPECT_TRUE(sys_->db.catalog()->HasTable("A004"));
  EXPECT_FALSE(dict->IsEncapsulated("A004"));
  auto rows = dict->ReadLogical("A004", {});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 1u);
}

TEST_F(AppSysTest, ClusterConversionIn30PreservesDataAndEnablesNativeSql) {
  DataDictionary* dict = sys_->app.dictionary();
  ASSERT_OK(dict->InsertLogical("KONV", KonvRow("D1", 1, "DISC", 50, 100)));
  ASSERT_OK(dict->InsertLogical("KONV", KonvRow("D1", 2, "TAX", 60, 200)));
  ASSERT_OK(dict->ConvertToTransparent("KONV", Release::kRelease30));
  auto res = sys_->app.native_sql()->ExecSql(
      "SELECT KPOSN FROM KONV WHERE MANDT = '301' AND KNUMV = 'D1' "
      "ORDER BY KPOSN");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res.value().rows.size(), 2u);
  EXPECT_EQ(res.value().rows[0][0].AsInt(), 1);
}

TEST_F(AppSysTest, SelectSingleUsesTableBuffer) {
  OpenSql* osql = sys_->app.open_sql();
  TableBuffer* buffer = sys_->app.buffer();
  buffer->EnableFor("MARA");
  ASSERT_OK(osql->Insert("MARA", MaraRow("M1", "FERT", 1.0)));

  DbConnection::Stats before = sys_->app.connection()->stats();
  for (int i = 0; i < 10; ++i) {
    auto row = osql->SelectSingle(
        "MARA", {OsqlCond::Eq("MATNR", Value::Str("M1"))});
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    ASSERT_TRUE(row.value().has_value());
  }
  DbConnection::Stats after = sys_->app.connection()->stats();
  // Only the first lookup reaches the database.
  EXPECT_EQ(after.round_trips - before.round_trips, 1);
  EXPECT_EQ(buffer->stats().hits, 9);
}

TEST_F(AppSysTest, BufferInvalidatedOnWrite) {
  OpenSql* osql = sys_->app.open_sql();
  sys_->app.buffer()->EnableFor("MARA");
  ASSERT_OK(osql->Insert("MARA", MaraRow("M1", "FERT", 1.0)));
  auto r1 = osql->SelectSingle("MARA", {OsqlCond::Eq("MATNR", Value::Str("M1"))});
  ASSERT_TRUE(r1.ok());
  ASSERT_OK(osql->Insert("MARA", MaraRow("M2", "FERT", 2.0)));  // invalidates
  DbConnection::Stats before = sys_->app.connection()->stats();
  auto r2 = osql->SelectSingle("MARA", {OsqlCond::Eq("MATNR", Value::Str("M1"))});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(sys_->app.connection()->stats().round_trips - before.round_trips, 1);
}

TEST_F(AppSysTest, TableBufferMetricsMirrorBufferStats) {
  // The Table 8 instrumentation: every probe/hit/miss/invalidation the
  // buffer's own stats struct records is mirrored into the shared metrics
  // registry under appsys.table_buffer.*, where the performance monitor
  // computes its buffer-quality ratio from.
  OpenSql* osql = sys_->app.open_sql();
  TableBuffer* buffer = sys_->app.buffer();
  buffer->EnableFor("MARA");
  ASSERT_OK(osql->Insert("MARA", MaraRow("M1", "FERT", 1.0)));

  for (int i = 0; i < 10; ++i) {
    auto row = osql->SelectSingle(
        "MARA", {OsqlCond::Eq("MATNR", Value::Str("M1"))});
    ASSERT_TRUE(row.ok()) << row.status().ToString();
  }
  // One miss (cold), nine hits — the Table 8 shape.
  EXPECT_EQ(buffer->stats().misses, 1);
  EXPECT_EQ(buffer->stats().hits, 9);

  // A local write drops the table's entry; the next probe misses again.
  ASSERT_OK(osql->Insert("MARA", MaraRow("M2", "FERT", 2.0)));
  EXPECT_EQ(buffer->stats().invalidations, 1);
  auto reload = osql->SelectSingle(
      "MARA", {OsqlCond::Eq("MATNR", Value::Str("M1"))});
  ASSERT_TRUE(reload.ok());

  const TableBuffer::Stats& s = buffer->stats();
  EXPECT_EQ(s.probes, s.hits + s.misses);
  EXPECT_EQ(metrics_.Value("appsys.table_buffer.probes"), s.probes);
  EXPECT_EQ(metrics_.Value("appsys.table_buffer.hits"), s.hits);
  EXPECT_EQ(metrics_.Value("appsys.table_buffer.misses"), s.misses);
  EXPECT_EQ(metrics_.Value("appsys.table_buffer.invalidations"),
            s.invalidations);
  EXPECT_EQ(metrics_.Value("appsys.table_buffer.evictions"), s.evictions);
  // The connection's round-trip mirror agrees with its struct stats too.
  EXPECT_EQ(metrics_.Value("appsys.connection.round_trips"),
            sys_->app.connection()->stats().round_trips);
}

TEST_F(AppSysTest, ExtractTwoPhaseGrouping) {
  Extract extract(&sys_->clock, {0});
  extract.Append(Row{Value::Str("B"), Value::Dbl(2.0)});
  extract.Append(Row{Value::Str("A"), Value::Dbl(1.0)});
  extract.Append(Row{Value::Str("B"), Value::Dbl(4.0)});
  int64_t before = sys_->clock.NowMicros();
  ASSERT_OK(extract.Sort());
  std::vector<std::pair<std::string, double>> groups;
  ASSERT_OK(extract.LoopGroups([&](const std::vector<Row>& g) {
    double sum = 0;
    for (const Row& r : g) sum += r[1].AsDouble();
    groups.emplace_back(g[0][0].string_value(), sum);
    return Status::OK();
  }));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first, "A");
  EXPECT_DOUBLE_EQ(groups[1].second, 6.0);
  // The spool-out + re-read I/O was charged (phase separation).
  EXPECT_GT(sys_->clock.NowMicros() - before,
            sys_->clock.model().page_write_us);
}

TEST_F(AppSysTest, InternalTableBinarySearch) {
  InternalTable itab(&sys_->clock);
  itab.Append(Row{Value::Str("M2"), Value::Int(2)});
  itab.Append(Row{Value::Str("M1"), Value::Int(1)});
  itab.Append(Row{Value::Str("M3"), Value::Int(3)});
  itab.Sort({0});
  EXPECT_EQ(itab.BinarySearch({0}, Row{Value::Str("M2")}), 1);
  EXPECT_EQ(itab.BinarySearch({0}, Row{Value::Str("MX")}), -1);
}

TEST_F(AppSysTest, BatchInputChecksAndNumberRanges) {
  ASSERT_OK(sys_->app.CreateNumberRange("ORDER", 100));
  OpenSql* osql = sys_->app.open_sql();
  ASSERT_OK(osql->Insert("MARA", MaraRow("M1", "FERT", 1.0)));

  BatchInput* bi = sys_->app.batch_input();
  BatchInput::Transaction txn = bi->Begin("VA01");
  txn.Screen();
  ASSERT_OK(txn.CheckExists("MARA", {OsqlCond::Eq("MATNR", Value::Str("M1"))}));
  auto num = txn.NextNumber("ORDER");
  ASSERT_TRUE(num.ok()) << num.status().ToString();
  EXPECT_EQ(num.value(), 101);
  ASSERT_OK(txn.Commit());

  // A missing master record fails the transaction.
  BatchInput::Transaction bad = bi->Begin("VA01");
  bad.Screen();
  EXPECT_EQ(
      bad.CheckExists("MARA", {OsqlCond::Eq("MATNR", Value::Str("NOPE"))}).code(),
      StatusCode::kConstraintViolation);
  EXPECT_FALSE(bad.Commit().ok());

  auto num2 = bi->Begin("VA01").NextNumber("ORDER");
  ASSERT_TRUE(num2.ok());
  EXPECT_EQ(num2.value(), 102);
}

TEST_F(AppSysTest, CursorCachingAvoidsRecompilation) {
  OpenSql* osql = sys_->app.open_sql();
  ASSERT_OK(osql->Insert("MARA", MaraRow("M1", "FERT", 1.0)));
  OpenSqlQuery q;
  q.table = "MARA";
  q.columns = {"MATNR"};
  q.where = {OsqlCond::Cmp("BRGEW", CmpOp::kGt, Value::Dbl(0.0))};
  ASSERT_TRUE(osql->Select(q).ok());
  DbConnection::Stats s1 = sys_->app.connection()->stats();
  // Same shape, different literal: the translated text is identical, so the
  // cursor cache hits.
  q.where = {OsqlCond::Cmp("BRGEW", CmpOp::kGt, Value::Dbl(99.0))};
  ASSERT_TRUE(osql->Select(q).ok());
  DbConnection::Stats s2 = sys_->app.connection()->stats();
  EXPECT_EQ(s2.cursor_cache_hits - s1.cursor_cache_hits, 1);
  EXPECT_EQ(s2.cursor_cache_misses, s1.cursor_cache_misses);
}

}  // namespace
}  // namespace appsys
}  // namespace r3
