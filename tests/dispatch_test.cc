// Dispatcher / work-process / landscape tests: deterministic scheduling,
// admission control, queue-wait accounting (ST03 + wait events), per-MANDT
// tenancy isolation across app servers, landscape-wide ST05 merging, and
// the RDBMS session pool backing the work processes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "appsys/dispatch/landscape.h"
#include "appsys/sql_trace.h"
#include "common/wait_event.h"
#include "rdbms/session_pool.h"
#include "sap/dialog_workload.h"
#include "sap/loader.h"
#include "sap/schema.h"
#include "sap/views.h"
#include "tpcd/dbgen.h"

namespace r3 {
namespace appsys {
namespace dispatch {
namespace {

using rdbms::Value;
using sap::DialogWorkloadOptions;
using sap::SapKeySpace;

#define ASSERT_OK(expr)                      \
  do {                                       \
    ::r3::Status _st = (expr);               \
    ASSERT_TRUE(_st.ok()) << _st.ToString(); \
  } while (false)

constexpr double kSf = 0.0005;

/// One complete installation: SAP schema over TPC-D data, plus the pieces a
/// landscape needs. Built fresh per run so runs never see each other's
/// document inserts.
struct Installation {
  std::unique_ptr<R3System> sys;
  tpcd::DbGen gen{kSf};

  SapKeySpace Keys() const {
    return {gen.NumOrders(), gen.NumParts(), gen.NumCustomers(),
            gen.NumSuppliers()};
  }
};

std::unique_ptr<Installation> BuildInstallation(int exec_threads = 0) {
  auto ins = std::make_unique<Installation>();
  ins->sys = std::make_unique<R3System>();
  ins->sys->db.set_exec_threads(exec_threads);
  EXPECT_TRUE(ins->sys->app.Bootstrap().ok());
  EXPECT_TRUE(sap::CreateSapSchema(&ins->sys->app).ok());
  EXPECT_TRUE(sap::CreateJoinViews(&ins->sys->app).ok());
  sap::SapLoader loader(&ins->sys->app, &ins->gen);
  EXPECT_TRUE(loader.FastLoadAll().ok());
  EXPECT_TRUE(ins->sys->db.Analyze().ok());
  return ins;
}

/// Hand-built single-script request (tests drive exact scenarios).
PlannedRequest MakeRequest(int64_t arrival_us, int64_t seq, int32_t user,
                           std::string client, WpClass wp_class,
                           DialogScript script) {
  PlannedRequest r;
  r.arrival_us = arrival_us;
  r.seq = seq;
  r.user = user;
  r.client = std::move(client);
  r.wp_class = wp_class;
  r.script = std::move(script);
  return r;
}

DialogScript Mm03Script(int64_t partkey) {
  DialogScript s;
  s.tcode = "MM03";
  s.kind = ScriptKind::kMm03DisplayMaterial;
  s.partkey = partkey;
  return s;
}

DialogScript UpdatePostScript(int64_t orderkey, int64_t custkey,
                              std::vector<int64_t> parts) {
  DialogScript s;
  s.tcode = "VA01U";
  s.kind = ScriptKind::kVa01UpdatePost;
  s.orderkey = orderkey;
  s.custkey = custkey;
  s.parts = std::move(parts);
  return s;
}

// ---------------------------------------------------------------------------
// Determinism: the whole run document is byte-identical across repeated
// runs and across host thread counts (exec_threads is wall-clock-only).
// ---------------------------------------------------------------------------
TEST(DispatchDeterminismTest, ByteIdenticalAcrossRunsAndHostThreads) {
  std::vector<std::string> dumps;
  for (int exec_threads : {0, 0, 4}) {
    auto ins = BuildInstallation(exec_threads);
    LandscapeOptions lopts;
    lopts.num_instances = 2;
    SystemLandscape landscape(&ins->sys->db, ins->sys->app.dictionary(),
                              lopts);
    ASSERT_OK(landscape.Start());

    DialogWorkloadOptions wopts;
    wopts.users = 40;
    wopts.duration_s = 120;
    wopts.ramp_s = 20;
    auto plan = sap::GenerateDialogWorkload(ins->Keys(), wopts);
    ASSERT_FALSE(plan.empty());
    auto run =
        landscape.Run(std::move(plan), sap::MakeSapScriptRunner(ins->Keys()));
    ASSERT_OK(run.status());
    EXPECT_GT(run.value().completed, 0);
    dumps.push_back(run.value().ToJson().Dump(2));
  }
  EXPECT_EQ(dumps[0], dumps[1]) << "same config, different run";
  EXPECT_EQ(dumps[0], dumps[2]) << "exec_threads leaked into simulated time";
}

// ---------------------------------------------------------------------------
// Admission control: 1 dialog WP + queue cap 2 against 10 simultaneous
// arrivals -> exactly 3 complete (1 direct + 2 queued), 7 rejected.
// ---------------------------------------------------------------------------
TEST(DispatcherTest, AdmissionControlRejectsBeyondQueueCap) {
  auto ins = BuildInstallation();
  LandscapeOptions lopts;
  lopts.instance.dialog_wps = 1;
  lopts.instance.batch_wps = 0;
  lopts.instance.update_wps = 0;
  lopts.instance.dispatcher.queue_cap[static_cast<size_t>(WpClass::kDialog)] =
      2;
  SystemLandscape landscape(&ins->sys->db, ins->sys->app.dictionary(), lopts);
  ASSERT_OK(landscape.Start());

  std::vector<PlannedRequest> plan;
  for (int i = 0; i < 10; ++i) {
    plan.push_back(MakeRequest(0, i, i, "301", WpClass::kDialog,
                               Mm03Script(/*partkey=*/1 + i)));
  }
  auto run =
      landscape.Run(std::move(plan), sap::MakeSapScriptRunner(ins->Keys()));
  ASSERT_OK(run.status());
  const auto& r = run.value();
  EXPECT_EQ(r.offered, 10);
  EXPECT_EQ(r.completed, 3);
  EXPECT_EQ(r.rejected, 7);
  const auto& dia = r.per_class[static_cast<size_t>(WpClass::kDialog)];
  EXPECT_EQ(dia.queued, 2);
  EXPECT_EQ(dia.rejected, 7);
  EXPECT_EQ(dia.peak_queue_depth, 2);

  const Dispatcher::QueueStats& qs =
      landscape.instance(0)->dispatcher()->queue_stats(WpClass::kDialog);
  EXPECT_EQ(qs.queued_total, 2);
  EXPECT_EQ(qs.rejected, 7);
}

// ---------------------------------------------------------------------------
// Queue-wait accounting: with one WP, the second of two simultaneous
// arrivals waits exactly the first one's service time; the wait shows up in
// ST03 (as wait time extending the step's response) and as a
// kDispatchQueue wait event.
// ---------------------------------------------------------------------------
TEST(DispatcherTest, QueueWaitBookedInSt03AndWaitEvents) {
  auto ins = BuildInstallation();
  WaitEventLog wait_log(&ins->sys->clock);
  LandscapeOptions lopts;
  lopts.instance.dialog_wps = 1;
  lopts.instance.batch_wps = 0;
  lopts.instance.update_wps = 0;
  SystemLandscape landscape(&ins->sys->db, ins->sys->app.dictionary(), lopts);
  ASSERT_OK(landscape.Start());

  // Identical scripts: the only first/second asymmetries are the one-time
  // program load and cold caches, both part of step 1's service time.
  std::vector<PlannedRequest> plan;
  plan.push_back(
      MakeRequest(0, 0, 0, "301", WpClass::kDialog, Mm03Script(1)));
  plan.push_back(
      MakeRequest(0, 1, 1, "301", WpClass::kDialog, Mm03Script(1)));
  auto run =
      landscape.Run(std::move(plan), sap::MakeSapScriptRunner(ins->Keys()));
  ASSERT_OK(run.status());
  const auto& r = run.value();
  ASSERT_EQ(r.completed, 2);
  EXPECT_EQ(r.outcomes[0].wait_us, 0);
  EXPECT_GT(r.outcomes[0].service_us, 0);
  EXPECT_EQ(r.outcomes[1].wait_us, r.outcomes[0].service_us);
  EXPECT_EQ(r.outcomes[1].response_us(),
            r.outcomes[1].wait_us + r.outcomes[1].service_us);

  // Dispatcher books the same wait...
  const Dispatcher::QueueStats& qs =
      landscape.instance(0)->dispatcher()->queue_stats(WpClass::kDialog);
  EXPECT_EQ(qs.total_wait_us, r.outcomes[1].wait_us);
  EXPECT_EQ(qs.waited_steps, 1);

  // ...the wait-event log saw it as a dispatch-queue stall...
  EXPECT_EQ(wait_log.CountOf(WaitClass::kDispatchQueue), 1);
  EXPECT_EQ(wait_log.SimUsOf(WaitClass::kDispatchQueue),
            r.outcomes[1].wait_us);

  // ...and ST03's wait column carries it (the monitor's steps are our two
  // dialog steps; total wait == the queue wait).
  json::Value st03 = landscape.St03Json();
  ASSERT_EQ(st03.items().size(), 1u);
  const json::Value& tasks = st03.items()[0].Get("st03").Get("steps");
  ASSERT_TRUE(tasks.is_array());
  int64_t st03_wait = 0;
  int64_t st03_steps = 0;
  for (const json::Value& t : tasks.items()) {
    st03_wait += t.Get("wait_us").int_value();
    st03_steps += t.Get("steps").int_value();
  }
  EXPECT_EQ(st03_steps, 2);
  EXPECT_EQ(st03_wait, r.outcomes[1].wait_us);
}

// ---------------------------------------------------------------------------
// Per-MANDT isolation: two clients posting orders through logon-grouped
// instances end up with disjoint documents; Open SQL under one client never
// sees the other's rows, and the physical table carries both.
// ---------------------------------------------------------------------------
TEST(LandscapeTest, MandtIsolationAcrossLogonGroups) {
  auto ins = BuildInstallation();
  LandscapeOptions lopts;
  lopts.num_instances = 2;
  lopts.logon_groups["301"] = {0};
  lopts.logon_groups["402"] = {1};
  SystemLandscape landscape(&ins->sys->db, ins->sys->app.dictionary(), lopts);
  ASSERT_OK(landscape.Start());

  // Three postings for client 301, two for client 402 (update task runs
  // them with the poster's MANDT).
  std::vector<PlannedRequest> plan;
  int64_t seq = 0;
  for (int i = 0; i < 3; ++i) {
    plan.push_back(MakeRequest(seq * 1000, seq, /*user=*/0, "301",
                               WpClass::kUpdate,
                               UpdatePostScript(200000001 + i, 1, {1, 2})));
    ++seq;
  }
  for (int i = 0; i < 2; ++i) {
    plan.push_back(MakeRequest(seq * 1000, seq, /*user=*/1, "402",
                               WpClass::kUpdate,
                               UpdatePostScript(200000011 + i, 1, {3})));
    ++seq;
  }
  auto run =
      landscape.Run(std::move(plan), sap::MakeSapScriptRunner(ins->Keys()));
  ASSERT_OK(run.status());
  EXPECT_EQ(run.value().completed, 5);
  EXPECT_EQ(run.value().script_errors, 0);

  // Logon groups routed each client to its own instance.
  for (const RequestOutcome& o : run.value().outcomes) {
    EXPECT_EQ(o.instance, o.arrival_us < 3000 ? 0 : 1);
  }

  // Native count by MANDT: the shared table holds both tenants' documents.
  auto count = [&](const char* mandt) {
    auto res = ins->sys->db.Query(
        "SELECT COUNT(*) FROM VBAK WHERE MANDT = ? AND VBELN >= ?",
        {Value::Str(mandt), Value::Str(sap::Vbeln(200000000))});
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.value().rows[0][0].AsInt();
  };
  EXPECT_EQ(count("301"), 3);
  EXPECT_EQ(count("402"), 2);

  // Open SQL tenancy: client 402's interface cannot see 301's document.
  WorkProcess* wp =
      landscape.instance(1)->dispatcher()->FindFreeWp(WpClass::kDialog);
  ASSERT_NE(wp, nullptr);
  OpenSql* osql402 = landscape.instance(1)->OpenSqlFor(wp, "402");
  auto foreign = osql402->SelectSingle(
      "VBAK",
      {OsqlCond::Eq("VBELN", Value::Str(sap::Vbeln(200000001)))});
  ASSERT_OK(foreign.status());
  EXPECT_FALSE(foreign.value().has_value());
  auto own = osql402->SelectSingle(
      "VBAK",
      {OsqlCond::Eq("VBELN", Value::Str(sap::Vbeln(200000011)))});
  ASSERT_OK(own.status());
  EXPECT_TRUE(own.value().has_value());
}

// ---------------------------------------------------------------------------
// VA01 schedules its posting as a followup on an update work process.
// ---------------------------------------------------------------------------
TEST(LandscapeTest, Va01PostsThroughUpdateWorkProcesses) {
  auto ins = BuildInstallation();
  LandscapeOptions lopts;
  lopts.instance.dialog_wps = 2;
  lopts.instance.batch_wps = 0;
  lopts.instance.update_wps = 1;
  SystemLandscape landscape(&ins->sys->db, ins->sys->app.dictionary(), lopts);
  ASSERT_OK(landscape.Start());

  DialogScript va01;
  va01.tcode = "VA01";
  va01.kind = ScriptKind::kVa01CreateOrder;
  va01.custkey = 1;
  va01.parts = {1, 2};
  std::vector<PlannedRequest> plan;
  for (int i = 0; i < 4; ++i) {
    plan.push_back(
        MakeRequest(i * 1000000, i, i, "301", WpClass::kDialog, va01));
  }
  auto run =
      landscape.Run(std::move(plan), sap::MakeSapScriptRunner(ins->Keys()));
  ASSERT_OK(run.status());
  const auto& r = run.value();
  EXPECT_EQ(r.offered, 8) << "each VA01 must schedule one posting";
  EXPECT_EQ(r.completed, 8);
  EXPECT_EQ(r.script_errors, 0);
  const auto& upd = r.per_class[static_cast<size_t>(WpClass::kUpdate)];
  EXPECT_EQ(upd.completed, 4);
  int64_t update_outcomes = 0;
  for (const RequestOutcome& o : r.outcomes) {
    if (o.wp_class != WpClass::kUpdate) continue;
    ++update_outcomes;
    EXPECT_EQ(o.wp, 2) << "postings must run on the single update WP";
    EXPECT_GT(o.rows, 0);
  }
  EXPECT_EQ(update_outcomes, 4);

  // The documents exist, numbered above the generated keyspace.
  auto res = ins->sys->db.Query(
      "SELECT COUNT(*) FROM VBAK WHERE VBELN >= ?",
      {Value::Str(sap::Vbeln(100000001))});
  ASSERT_OK(res.status());
  EXPECT_EQ(res.value().rows[0][0].AsInt(), 4);
}

// ---------------------------------------------------------------------------
// Landscape-wide ST05: CombineTraces merges every work process's trace.
// ---------------------------------------------------------------------------
TEST(LandscapeTest, CombineTracesMergesAllWorkProcesses) {
  auto ins = BuildInstallation();
  LandscapeOptions lopts;
  lopts.num_instances = 2;
  lopts.instance.st05 = true;
  SystemLandscape landscape(&ins->sys->db, ins->sys->app.dictionary(), lopts);
  ASSERT_OK(landscape.Start());

  DialogWorkloadOptions wopts;
  wopts.users = 20;
  wopts.duration_s = 60;
  wopts.ramp_s = 10;
  auto plan = sap::GenerateDialogWorkload(ins->Keys(), wopts);
  auto run =
      landscape.Run(std::move(plan), sap::MakeSapScriptRunner(ins->Keys()));
  ASSERT_OK(run.status());
  ASSERT_GT(run.value().completed, 0);

  size_t per_wp_events = 0;
  size_t traced_wps = 0;
  for (int i = 0; i < landscape.num_instances(); ++i) {
    for (const WorkProcess& wp : landscape.instance(i)->dispatcher()->wps()) {
      ASSERT_NE(wp.trace, nullptr);
      per_wp_events += wp.trace->events().size();
      traced_wps += 1;
    }
  }
  EXPECT_EQ(traced_wps, 20u);  // 2 instances x (6+2+2)
  EXPECT_GT(per_wp_events, 0u);

  appsys::SqlTrace combined;
  landscape.CombineTraces(&combined);
  EXPECT_EQ(combined.events().size(), per_wp_events);
  EXPECT_FALSE(combined.TopStatements(3).empty());
}

// ---------------------------------------------------------------------------
// SessionPool: hard cap on concurrent RDBMS sessions, RAII release.
// ---------------------------------------------------------------------------
TEST(SessionPoolTest, CapDenyAndRelease) {
  R3System sys;
  rdbms::SessionPool pool(&sys.db, /*max_sessions=*/2);
  auto a = pool.Acquire();
  auto b = pool.Acquire();
  ASSERT_OK(a.status());
  ASSERT_OK(b.status());
  EXPECT_EQ(pool.active(), 2);

  auto c = pool.Acquire();
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pool.denied(), 1);

  {
    rdbms::SessionPool::Lease lease = std::move(a).value();
    EXPECT_EQ(pool.active(), 2);
  }  // lease released
  EXPECT_EQ(pool.active(), 1);
  auto d = pool.Acquire();
  ASSERT_OK(d.status());
  EXPECT_EQ(pool.active(), 2);
  EXPECT_EQ(pool.peak(), 2);
}

TEST(SessionPoolTest, LandscapeStartFailsWhenPoolTooSmall) {
  auto ins = BuildInstallation();
  LandscapeOptions lopts;
  lopts.num_instances = 2;          // 2 x (6+2+2) = 20 work processes
  lopts.max_sessions = 5;
  SystemLandscape landscape(&ins->sys->db, ins->sys->app.dictionary(), lopts);
  Status st = landscape.Start();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace dispatch
}  // namespace appsys
}  // namespace r3
