// Observability-layer tests: the metrics registry (sharded counters, gauges,
// fixed-bucket histograms), cross-layer trace spans and their Chrome export,
// the JSON helper underneath both, the ST04-style performance monitor — and
// the headline determinism guarantee: simulated-time trace exports and the
// sim-charging counters are byte-identical no matter how many OS worker
// threads run the plan's lanes or how many rows travel per batch (DESIGN.md
// §7). Also the regression fence for per-statement state: operator runtime
// counters and trace output must not bleed between statements on a reused
// Database.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "appsys/app_server.h"
#include "appsys/perf_monitor.h"
#include "appsys/sql_trace.h"
#include "appsys/workload_monitor.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "common/wait_event.h"
#include "rdbms/txn/lock_manager.h"
#include "tpcd/loader.h"
#include "tpcd/queries.h"
#include "tpcd/schema.h"

namespace r3 {
namespace {

using rdbms::Value;

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

/// EXPECT_EQ on multi-megabyte strings prints both operands on failure;
/// this reports just the first differing byte with a little context.
void ExpectSameBytes(const std::string& a, const std::string& b,
                     const char* what) {
  if (a == b) return;
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  size_t from = i > 60 ? i - 60 : 0;
  ADD_FAILURE() << what << " differ (sizes " << a.size() << " vs " << b.size()
                << ") at byte " << i << ":\n  a: ..." << a.substr(from, 120)
                << "\n  b: ..." << b.substr(from, 120);
}

// -- Metrics ------------------------------------------------------------------

TEST(MetricsTest, CounterSumsExactlyAcrossThreads) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  c.Add(5);
  EXPECT_EQ(c.Value(), kThreads * kPerThread + 5);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge g;
  g.Set(42);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 40);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h", {10, 100});
  h->Observe(5);
  h->Observe(10);   // bucket bounds are inclusive
  h->Observe(50);
  h->Observe(1000);  // overflow bucket
  EXPECT_EQ(h->TotalCount(), 4);
  EXPECT_EQ(h->Sum(), 1065);
  EXPECT_EQ(h->BucketCount(0), 2);
  EXPECT_EQ(h->BucketCount(1), 1);
  EXPECT_EQ(h->BucketCount(2), 1);  // overflow
  h->Reset();
  EXPECT_EQ(h->TotalCount(), 0);
  EXPECT_EQ(h->Sum(), 0);
}

TEST(MetricsTest, HistogramPercentilesAndMax) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("rdbms.test.latency_us", {10, 100, 1000});
  // Empty histogram: every summary statistic is 0.
  EXPECT_EQ(h->Percentile(0.50), 0);
  EXPECT_EQ(h->MaxValue(), 0);

  // 1..20: ten land in the <=10 bucket, ten in the <=100 bucket.
  for (int i = 1; i <= 20; ++i) h->Observe(i);
  EXPECT_EQ(h->Percentile(0.50), 10);  // rank 10 = last of bucket 0
  // Rank 19 lands in the <=100 bucket, but the bound is clamped to the
  // exact maximum — a percentile never exceeds the largest observation.
  EXPECT_EQ(h->Percentile(0.95), 20);
  EXPECT_EQ(h->MaxValue(), 20);  // exact, not a bucket bound

  // An overflow observation: percentiles that land past the last bound
  // report the exact maximum instead of a made-up bucket edge.
  h->Observe(5000);
  EXPECT_EQ(h->Percentile(1.0), 5000);
  EXPECT_EQ(h->MaxValue(), 5000);

  // The snapshot carries the same summary, and RenderText prints it.
  // With 21 observations the median rank (11) now lands in the second
  // bucket, and the p99 rank (21) in the overflow.
  std::vector<MetricSample> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].p50, 100);
  EXPECT_EQ(snap[0].p95, 100);
  EXPECT_EQ(snap[0].p99, 5000);
  EXPECT_EQ(snap[0].max, 5000);
  EXPECT_NE(registry.RenderText().find("p95="), std::string::npos);

  h->Reset();
  EXPECT_EQ(h->MaxValue(), 0);
  EXPECT_EQ(h->Percentile(0.99), 0);
}

TEST(MetricsTest, MetricNameConventionIsEnforceable) {
  // The three metric families, dot-separated lowercase segments.
  EXPECT_TRUE(IsValidMetricName("rdbms.bufferpool.physical_reads"));
  EXPECT_TRUE(IsValidMetricName("appsys.connection.round_trips"));
  EXPECT_TRUE(IsValidMetricName("columnar.segments_read"));
  EXPECT_TRUE(IsValidMetricName("rdbms.wait.buffer_pool_io_us"));

  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("rdbms"));          // family alone
  EXPECT_FALSE(IsValidMetricName("rdbms."));         // empty segment
  EXPECT_FALSE(IsValidMetricName("rdbms..x"));       // empty segment
  EXPECT_FALSE(IsValidMetricName("rdbms.foo."));     // trailing dot
  EXPECT_FALSE(IsValidMetricName("txn.lock_waits"));  // unknown family
  EXPECT_FALSE(IsValidMetricName("rdbms.Upper"));    // case
  EXPECT_FALSE(IsValidMetricName("rdbms.foo-bar"));  // bad character
}

TEST(MetricsTest, EveryRegisteredMetricNameFollowsTheConvention) {
  // Exercise enough of the system that every subsystem registers its
  // metrics — app server, Open SQL, buffer pool, WAL, txn/MVCC, locks —
  // then assert the registry holds no name outside the documented
  // rdbms.* / appsys.* / columnar.* convention (DESIGN.md §12).
  MetricsRegistry registry;
  rdbms::DatabaseOptions db_opts;
  db_opts.metrics = &registry;
  appsys::R3System sys(appsys::AppServerOptions{}, db_opts);
  ASSERT_OK(sys.app.Bootstrap());
  rdbms::Schema mara({rdbms::ColChar("MANDT", 3), rdbms::ColChar("MATNR", 16),
                      rdbms::ColDecimal("BRGEW")});
  ASSERT_OK(sys.app.dictionary()->DefineTransparent("MARA", mara,
                                                    {"MANDT", "MATNR"}));
  ASSERT_OK(sys.app.open_sql()->Insert(
      "MARA", {Value::Str("301"), Value::Str("M1"), Value::Decimal(1.0)}));
  appsys::OpenSqlQuery q;
  q.table = "MARA";
  ASSERT_TRUE(sys.app.open_sql()->Select(q).ok());
  ASSERT_OK(sys.db.EnableWal());
  ASSERT_OK(sys.db.Begin());
  ASSERT_OK(sys.db.Commit());

  std::vector<MetricSample> snap = registry.Snapshot();
  EXPECT_GT(snap.size(), 20u);
  for (const MetricSample& s : snap) {
    EXPECT_TRUE(IsValidMetricName(s.name)) << "bad metric name: " << s.name;
  }
}

TEST(MetricsTest, RegistrySnapshotAndRenderAreDeterministic) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Add(3);
  registry.GetCounter("a.first")->Add(1);
  registry.GetGauge("m.gauge")->Set(7);
  registry.GetHistogram("m.hist", {10})->Observe(4);

  EXPECT_EQ(registry.Value("a.first"), 1);
  EXPECT_EQ(registry.Value("m.gauge"), 7);
  EXPECT_EQ(registry.Value("no.such.metric"), 0);

  std::vector<MetricSample> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "a.first");  // sorted by name
  EXPECT_EQ(snap[3].name, "z.last");
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const MetricSample& x, const MetricSample& y) {
        return x.name < y.name;
      }));

  std::string text = registry.RenderText();
  EXPECT_EQ(text, registry.RenderText());
  EXPECT_NE(text.find("a.first"), std::string::npos);
  EXPECT_NE(text.find("m.hist"), std::string::npos);

  // ResetAll zeroes values but keeps the metric set (and bucket layout).
  registry.ResetAll();
  EXPECT_EQ(registry.Value("z.last"), 0);
  EXPECT_EQ(registry.Snapshot().size(), 4u);
  registry.GetCounter("z.last")->Add(2);
  EXPECT_EQ(registry.Value("z.last"), 2);
}

// -- JSON ---------------------------------------------------------------------

TEST(JsonTest, RoundTripPreservesDocument) {
  json::Value doc = json::Value::Object();
  doc.Set("name", json::Value::Str("bench \"quoted\"\n"));
  doc.Set("count", json::Value::Int(-12345));
  doc.Set("ratio", json::Value::Double(0.25));
  doc.Set("ok", json::Value::Bool(true));
  doc.Set("none", json::Value::Null());
  json::Value arr = json::Value::Array();
  arr.Append(json::Value::Int(1));
  arr.Append(json::Value::Str("two"));
  doc.Set("items", std::move(arr));

  std::string text = doc.Dump();
  auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& v = parsed.value();
  EXPECT_EQ(v.Get("name").string_value(), "bench \"quoted\"\n");
  EXPECT_EQ(v.Get("count").int_value(), -12345);
  EXPECT_DOUBLE_EQ(v.Get("ratio").double_value(), 0.25);
  EXPECT_TRUE(v.Get("ok").bool_value());
  EXPECT_TRUE(v.Get("none").is_null());
  ASSERT_EQ(v.Get("items").items().size(), 2u);
  EXPECT_EQ(v.Get("items").items()[1].string_value(), "two");
  // Re-dump of the parse is byte-identical (insertion order preserved).
  EXPECT_EQ(parsed.value().Dump(), text);
}

TEST(JsonTest, MalformedDocumentsAreRejected) {
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("[1,]").ok());
  EXPECT_FALSE(json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(json::Parse("{'a':1}").ok());
  EXPECT_FALSE(json::Validate("not json").ok());
  EXPECT_TRUE(json::Validate("{\"a\":[1,2,{\"b\":null}]}").ok());
}

// -- Trace spans across the RDBMS layers -------------------------------------

/// Category/name pairs present in a Chrome export.
std::set<std::pair<std::string, std::string>> EventSet(
    const std::string& chrome_json) {
  auto doc = json::Parse(chrome_json);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  std::set<std::pair<std::string, std::string>> out;
  if (!doc.ok()) return out;
  for (const json::Value& e : doc.value().Get("traceEvents").items()) {
    out.emplace(e.Get("cat").string_value(), e.Get("name").string_value());
  }
  return out;
}

TEST(TraceTest, SpansCoverSqlExecAndIoLayers) {
  MetricsRegistry registry;
  rdbms::DatabaseOptions opts;
  opts.metrics = &registry;
  rdbms::Database db(nullptr, opts);
  ASSERT_OK(db.Execute("CREATE TABLE t (a INT, b CHAR(16))"));
  for (int i = 0; i < 2000; ++i) {
    ASSERT_OK(db.InsertRow("t", {Value::Int(i), Value::Str("some filler")}));
  }
  ASSERT_OK(db.pool()->Reset());  // cold pool: the scan pays physical I/O

  Tracer tracer(db.clock());
  auto res = db.Query("SELECT SUM(a) FROM t WHERE a >= 10");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GT(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);

  std::string exported = tracer.ExportChromeJson();
  ASSERT_OK(json::Validate(exported));
  auto events = EventSet(exported);
  // The sql pipeline stages...
  EXPECT_TRUE(events.count({"sql", "parse"}));
  EXPECT_TRUE(events.count({"sql", "optimize"}));
  EXPECT_TRUE(events.count({"sql", "execute"}));
  // ...the executor's per-operator spans...
  bool has_exec = false, has_io = false;
  for (const auto& [cat, name] : events) {
    if (cat == "exec") has_exec = true;
    if (cat == "io" && name.rfind("page_read", 0) == 0) has_io = true;
  }
  EXPECT_TRUE(has_exec);
  // ...and the buffer pool's physical transfers.
  EXPECT_TRUE(has_io);
  EXPECT_GT(registry.Value("rdbms.bufferpool.physical_reads"), 0);
}

TEST(TraceTest, TxnWalAndRecoverySpansAppear) {
  MetricsRegistry registry;
  rdbms::DatabaseOptions opts;
  opts.metrics = &registry;
  rdbms::Database db(nullptr, opts);
  ASSERT_OK(db.Execute("CREATE TABLE t (a INT, b CHAR(8))"));
  ASSERT_OK(db.EnableWal());

  Tracer tracer(db.clock());
  ASSERT_OK(db.Begin());
  ASSERT_OK(db.InsertRow("t", {Value::Int(1), Value::Str("one")}));
  ASSERT_OK(db.Commit());
  ASSERT_OK(db.SimulateCrash());
  ASSERT_OK(db.Recover());

  auto events = EventSet(tracer.ExportChromeJson());
  EXPECT_TRUE(events.count({"wal", "flush"}));
  EXPECT_TRUE(events.count({"txn", "commit"}));
  EXPECT_TRUE(events.count({"recovery", "redo"}));
  // The subsystem's counters land in the Database's registry, not the
  // global one.
  EXPECT_GT(registry.Value("rdbms.wal.flushes"), 0);
  EXPECT_GT(registry.Value("rdbms.wal.appends"), 0);
  EXPECT_EQ(registry.Value("rdbms.txn.begins"), 1);
  EXPECT_EQ(registry.Value("rdbms.txn.commits"), 1);
  EXPECT_EQ(registry.Value("rdbms.recovery.runs"), 1);
}

TEST(TraceTest, TracingChargesNoSimulatedTime) {
  rdbms::Database db;
  ASSERT_OK(db.Execute("CREATE TABLE t (a INT)"));
  for (int i = 0; i < 500; ++i) ASSERT_OK(db.InsertRow("t", {Value::Int(i)}));
  const std::string sql = "SELECT COUNT(*) FROM t WHERE a < 250";
  ASSERT_TRUE(db.Query(sql).ok());  // warm the pool

  SimTimer untraced(*db.clock());
  ASSERT_TRUE(db.Query(sql).ok());
  int64_t untraced_us = untraced.ElapsedUs();

  Tracer tracer(db.clock());
  SimTimer traced(*db.clock());
  ASSERT_TRUE(db.Query(sql).ok());
  EXPECT_EQ(traced.ElapsedUs(), untraced_us);
  EXPECT_GT(tracer.event_count(), 0u);
}

TEST(TraceTest, NoStateBleedsBetweenStatementsOnReusedDatabase) {
  rdbms::Database db;
  ASSERT_OK(db.Execute("CREATE TABLE t (a INT, b INT)"));
  for (int i = 0; i < 800; ++i) {
    ASSERT_OK(db.InsertRow("t", {Value::Int(i), Value::Int(i % 7)}));
  }
  const std::string sql =
      "SELECT b, COUNT(*), SUM(a) FROM t WHERE a >= 100 GROUP BY b ORDER BY b";
  ASSERT_TRUE(db.Query(sql).ok());  // warm the pool

  TraceOptions trace_opts;
  trace_opts.include_wall_time = false;
  Tracer tracer(db.clock(), trace_opts);

  // Operator runtime counters reset per statement: repeated runs of the same
  // statement on the same Database trace identically (rows args included) and
  // charge identical simulated time.
  tracer.Clear();
  SimTimer t1(*db.clock());
  ASSERT_TRUE(db.Query(sql).ok());
  int64_t run1_us = t1.ElapsedUs();
  std::string export1 = tracer.ExportChromeJson();

  tracer.Clear();
  SimTimer t2(*db.clock());
  ASSERT_TRUE(db.Query(sql).ok());
  EXPECT_EQ(t2.ElapsedUs(), run1_us);
  ExpectSameBytes(export1, tracer.ExportChromeJson(),
                  "trace exports of identical consecutive statements");

  // The EXPLAIN ANALYZE counters are per-statement too: a second run reports
  // the same rows/batches/opens, not accumulated totals.
  auto ea1 = db.ExplainAnalyze(sql);
  ASSERT_TRUE(ea1.ok()) << ea1.status().ToString();
  auto ea2 = db.ExplainAnalyze(sql);
  ASSERT_TRUE(ea2.ok());
  ExpectSameBytes(ea1.value(), ea2.value(), "EXPLAIN ANALYZE reports");
}

// -- The app layer in the trace, and table-buffer metrics ---------------------

TEST(TraceTest, AppServerLayersAppearInTrace) {
  MetricsRegistry registry;
  appsys::AppServerOptions app_opts;
  app_opts.table_buffer_bytes = 1u << 20;
  rdbms::DatabaseOptions db_opts;
  db_opts.metrics = &registry;
  appsys::R3System sys(app_opts, db_opts);
  ASSERT_OK(sys.app.Bootstrap());
  rdbms::Schema mara({rdbms::ColChar("MANDT", 3), rdbms::ColChar("MATNR", 16),
                      rdbms::ColDecimal("BRGEW")});
  ASSERT_OK(sys.app.dictionary()->DefineTransparent("MARA", mara,
                                                    {"MANDT", "MATNR"}));
  appsys::OpenSql* osql = sys.app.open_sql();
  sys.app.buffer()->EnableFor("MARA");
  ASSERT_OK(osql->Insert(
      "MARA", {Value::Str("301"), Value::Str("M1"), Value::Decimal(1.5)}));

  Tracer tracer(sys.app.clock());
  auto miss = osql->SelectSingle(
      "MARA", {appsys::OsqlCond::Eq("MATNR", Value::Str("M1"))});
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  auto hit = osql->SelectSingle(
      "MARA", {appsys::OsqlCond::Eq("MATNR", Value::Str("M1"))});
  ASSERT_TRUE(hit.ok());
  appsys::OpenSqlQuery q;
  q.table = "MARA";
  ASSERT_TRUE(osql->Select(q).ok());

  auto events = EventSet(tracer.ExportChromeJson());
  EXPECT_TRUE(events.count({"app", "opensql.select"}));
  EXPECT_TRUE(events.count({"app", "opensql.translate"}));
  EXPECT_TRUE(events.count({"app", "table_buffer.hit"}));
  bool has_interface = false, has_sql = false;
  for (const auto& [cat, name] : events) {
    if (cat == "interface" && name.rfind("db_call.", 0) == 0)
      has_interface = true;
    if (cat == "sql") has_sql = true;
  }
  EXPECT_TRUE(has_interface);  // DbConnection round trips
  EXPECT_TRUE(has_sql);        // the RDBMS underneath the same spans

  // The connection's registry mirror agrees with its struct stats.
  EXPECT_EQ(registry.Value("appsys.connection.round_trips"),
            sys.app.connection()->stats().round_trips);
  EXPECT_GT(registry.Value("appsys.connection.round_trips"), 0);
}

// -- Performance monitor ------------------------------------------------------

TEST(PerfMonitorTest, AggregatesOperationsWithCounterDeltas) {
  MetricsRegistry registry;
  rdbms::DatabaseOptions db_opts;
  db_opts.metrics = &registry;
  appsys::R3System sys(appsys::AppServerOptions{}, db_opts);
  ASSERT_OK(sys.app.Bootstrap());
  rdbms::Schema mara({rdbms::ColChar("MANDT", 3), rdbms::ColChar("MATNR", 16),
                      rdbms::ColDecimal("BRGEW")});
  ASSERT_OK(sys.app.dictionary()->DefineTransparent("MARA", mara,
                                                    {"MANDT", "MATNR"}));
  appsys::PerfMonitor monitor(sys.app.clock(), &registry);

  {
    appsys::PerfMonitor::Scope op(&monitor, "load");
    ASSERT_OK(sys.app.open_sql()->Insert(
        "MARA", {Value::Str("301"), Value::Str("M1"), Value::Decimal(1.0)}));
  }
  for (int i = 0; i < 2; ++i) {
    appsys::PerfMonitor::Scope op(&monitor, "report");
    appsys::OpenSqlQuery q;
    q.table = "MARA";
    ASSERT_TRUE(sys.app.open_sql()->Select(q).ok());
  }

  const auto& ops = monitor.operations();
  ASSERT_EQ(ops.size(), 2u);  // first-seen order, aggregated by name
  EXPECT_EQ(ops[0].name, "load");
  EXPECT_EQ(ops[0].calls, 1);
  EXPECT_EQ(ops[1].name, "report");
  EXPECT_EQ(ops[1].calls, 2);
  EXPECT_GT(ops[1].sim_us, 0);
  EXPECT_GT(ops[1].CounterValue("rdbms.sql.statements"), 0);
  EXPECT_EQ(ops[1].CounterValue("appsys.connection.round_trips"), 2);
  EXPECT_GE(monitor.Total("rdbms.sql.statements"),
            ops[0].CounterValue("rdbms.sql.statements") +
                ops[1].CounterValue("rdbms.sql.statements"));

  std::string report = monitor.RenderReport();
  EXPECT_NE(report.find("performance monitor"), std::string::npos);
  EXPECT_NE(report.find("report"), std::string::npos);
  auto parsed = json::Parse(monitor.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().Has("totals"));
  ASSERT_TRUE(parsed.value().Has("operations"));
  EXPECT_EQ(parsed.value().Get("operations").items().size(), 2u);

  monitor.Reset();
  EXPECT_TRUE(monitor.operations().empty());
  EXPECT_EQ(monitor.Total("rdbms.sql.statements"), 0);
}

TEST(PerfMonitorTest, OperationsDoNotNest) {
  appsys::R3System sys;
  appsys::PerfMonitor monitor(&sys.clock);
  monitor.BeginOperation("outer");
  sys.clock.Charge(10);
  monitor.BeginOperation("inner");  // closes "outer" first
  sys.clock.Charge(5);
  monitor.EndOperation();
  monitor.EndOperation();  // no-op: nothing open
  ASSERT_EQ(monitor.operations().size(), 2u);
  EXPECT_EQ(monitor.operations()[0].name, "outer");
  EXPECT_EQ(monitor.operations()[0].sim_us, 10);
  EXPECT_EQ(monitor.operations()[1].sim_us, 5);
}

TEST(PerfMonitorTest, ToJsonReportsHistogramPercentiles) {
  MetricsRegistry registry;
  rdbms::DatabaseOptions opts;
  opts.metrics = &registry;
  rdbms::Database db(nullptr, opts);
  ASSERT_OK(db.Execute("CREATE TABLE t (a INT)"));
  for (int i = 0; i < 200; ++i) ASSERT_OK(db.InsertRow("t", {Value::Int(i)}));
  ASSERT_OK(db.pool()->Reset());  // cold pool: the scan pays physical I/O

  appsys::PerfMonitor monitor(db.clock(), &registry);
  ASSERT_TRUE(db.Query("SELECT COUNT(*) FROM t").ok());

  json::Value j = monitor.ToJson();
  ASSERT_TRUE(j.Has("histograms"));
  const json::Value& hists = j.Get("histograms");
  ASSERT_TRUE(hists.Has("rdbms.wait.buffer_pool_io_us"));
  const json::Value& io = hists.Get("rdbms.wait.buffer_pool_io_us");
  EXPECT_GT(io.Get("count").int_value(), 0);
  EXPECT_GT(io.Get("p50").int_value(), 0);
  EXPECT_GE(io.Get("max").int_value(), io.Get("p50").int_value());
  // Wall-time histograms are excluded: their values depend on OS
  // scheduling and would break bench-document determinism.
  for (const auto& [name, v] : hists.members()) {
    (void)v;
    EXPECT_EQ(name.find("_wall_us"), std::string::npos) << name;
  }
}

// -- Wait events --------------------------------------------------------------

TEST(WaitEventTest, BufferPoolMissRecordsOneIoEvent) {
  MetricsRegistry registry;
  rdbms::DatabaseOptions opts;
  opts.metrics = &registry;
  rdbms::Database db(nullptr, opts);
  ASSERT_OK(db.Execute("CREATE TABLE t (a INT)"));
  for (int i = 0; i < 50; ++i) ASSERT_OK(db.InsertRow("t", {Value::Int(i)}));
  ASSERT_TRUE(db.Query("SELECT COUNT(*) FROM t").ok());  // warm the pool
  ASSERT_OK(db.pool()->Reset());  // one data page to re-read, cold

  int64_t phys_before = registry.Value("rdbms.bufferpool.physical_reads");
  WaitEventLog log(db.clock());
  ASSERT_TRUE(db.Query("SELECT COUNT(*) FROM t").ok());
  int64_t misses = registry.Value("rdbms.bufferpool.physical_reads") -
                   phys_before;

  // Exactly one physical transfer, exactly one correctly-classed event.
  EXPECT_EQ(misses, 1);
  EXPECT_EQ(log.CountOf(WaitClass::kBufferPoolIo), misses);
  std::vector<WaitEvent> events = log.EventsOf(WaitClass::kBufferPoolIo);
  ASSERT_EQ(events.size(), static_cast<size_t>(misses));
  EXPECT_GT(events[0].sim_dur_us, 0);
  EXPECT_EQ(events[0].detail.rfind("page_read.", 0), 0u) << events[0].detail;
  EXPECT_EQ(log.SimUsOf(WaitClass::kBufferPoolIo), events[0].sim_dur_us);
  // No other class fired, and the always-on metric mirror agrees.
  EXPECT_EQ(log.CountOf(WaitClass::kLockWait), 0);
  EXPECT_EQ(log.CountOf(WaitClass::kWalFlush), 0);
  EXPECT_EQ(log.CountOf(WaitClass::kDeadlockAbort), 0);
  EXPECT_EQ(registry.Value("rdbms.wait.buffer_pool_io"),
            phys_before + misses);
  EXPECT_NE(log.RenderText().find("buffer_pool_io"), std::string::npos);
}

TEST(WaitEventTest, CommitGroupFlushRecordsOneWalFlushEvent) {
  MetricsRegistry registry;
  rdbms::DatabaseOptions opts;
  opts.metrics = &registry;
  rdbms::Database db(nullptr, opts);
  ASSERT_OK(db.Execute("CREATE TABLE t (a INT, b CHAR(8))"));
  ASSERT_OK(db.EnableWal());  // its checkpoint flush is before the log

  WaitEventLog log(db.clock());
  ASSERT_OK(db.Begin());
  ASSERT_OK(db.InsertRow("t", {Value::Int(1), Value::Str("one")}));
  ASSERT_OK(db.Commit());

  // The commit's log force: one group flush, one event, and the stall's
  // simulated duration is the flush's page-write charge exactly.
  EXPECT_EQ(log.CountOf(WaitClass::kWalFlush), 1);
  std::vector<WaitEvent> events = log.EventsOf(WaitClass::kWalFlush);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail, "group_flush");
  EXPECT_EQ(events[0].sim_dur_us, db.clock()->model().page_write_us);
  EXPECT_EQ(log.SimUsOf(WaitClass::kWalFlush), events[0].sim_dur_us);
  EXPECT_EQ(events[0].sim_start_us + events[0].sim_dur_us,
            db.clock()->NowMicros());
  EXPECT_EQ(log.CountOf(WaitClass::kBufferPoolIo), 0);
  // The metric mirror counts EnableWal's baseline-checkpoint flush too;
  // the log, attached after EnableWal, saw only the commit's.
  EXPECT_EQ(registry.Value("rdbms.wait.wal_flush"), 2);
}

TEST(WaitEventTest, DeadlockVictimRecordsOneAbortEvent) {
  using rdbms::txn::LockKey;
  using rdbms::txn::LockManager;
  using rdbms::txn::LockMode;
  MetricsRegistry metrics;
  SimClock clock;
  LockManager lm(&metrics, &clock);
  WaitEventLog log(&clock);

  // The classic two-transaction cross acquisition (mvcc_test's pattern).
  const LockKey a = LockKey::Row(1, 1);
  const LockKey b = LockKey::Row(1, 2);
  ASSERT_TRUE(lm.Acquire(1, a, LockMode::kX).ok());
  ASSERT_TRUE(lm.Acquire(2, b, LockMode::kX).ok());
  auto cross = [&](uint64_t id, LockKey want) {
    Status st = lm.Acquire(id, want, LockMode::kX);
    if (!st.ok()) EXPECT_EQ(st.code(), StatusCode::kAborted);
    lm.ReleaseAll(id);
  };
  std::thread t1(cross, 1, b);
  std::thread t2(cross, 2, a);
  t1.join();
  t2.join();

  // Exactly one victim, exactly one abort event; at least one of the two
  // blocked acquisitions recorded a lock wait before the cycle closed.
  EXPECT_EQ(log.CountOf(WaitClass::kDeadlockAbort), 1);
  EXPECT_GE(log.CountOf(WaitClass::kLockWait), 1);
  std::vector<WaitEvent> aborts = log.EventsOf(WaitClass::kDeadlockAbort);
  ASSERT_EQ(aborts.size(), 1u);
  EXPECT_EQ(aborts[0].detail, "txn2");  // deterministic youngest victim
  // Lock waits carry no simulated duration (their real duration is wall
  // time, which would break determinism): counts only.
  EXPECT_EQ(log.SimUsOf(WaitClass::kLockWait), 0);
  EXPECT_EQ(log.SimUsOf(WaitClass::kDeadlockAbort), 0);
  EXPECT_EQ(metrics.Value("rdbms.wait.deadlock_abort"), 1);
  EXPECT_EQ(metrics.Value("rdbms.wait.lock_wait"),
            metrics.Value("rdbms.txn.lock_waits"));
}

TEST(WaitEventTest, RecordingChargesNoSimulatedTime) {
  rdbms::Database db;
  ASSERT_OK(db.Execute("CREATE TABLE t (a INT)"));
  for (int i = 0; i < 500; ++i) ASSERT_OK(db.InsertRow("t", {Value::Int(i)}));
  const std::string sql = "SELECT COUNT(*) FROM t WHERE a < 250";

  ASSERT_OK(db.pool()->Reset());
  SimTimer unlogged(*db.clock());
  ASSERT_TRUE(db.Query(sql).ok());
  int64_t unlogged_us = unlogged.ElapsedUs();

  ASSERT_OK(db.pool()->Reset());
  WaitEventLog log(db.clock());
  SimTimer logged(*db.clock());
  ASSERT_TRUE(db.Query(sql).ok());
  EXPECT_EQ(logged.ElapsedUs(), unlogged_us);
  EXPECT_GT(log.event_count(), 0u);
}

// -- ST05 SQL trace -----------------------------------------------------------

TEST(SqlTraceTest, BlindCursorTopsTheReportAndIdenticalSelectsAreFlagged) {
  MetricsRegistry registry;
  rdbms::DatabaseOptions db_opts;
  db_opts.metrics = &registry;
  appsys::R3System sys(appsys::AppServerOptions{}, db_opts);
  ASSERT_OK(sys.app.Bootstrap());
  // A miniature VBAP: client + position key, quantity column with a
  // secondary index — the Table 6 setup at toy scale.
  rdbms::Schema vbap({rdbms::ColChar("MANDT", 3), rdbms::ColChar("POSNR", 6),
                      rdbms::ColInt("KWMENG")});
  ASSERT_OK(sys.app.dictionary()->DefineTransparent("VBAP", vbap,
                                                    {"MANDT", "POSNR"}));
  appsys::OpenSql* osql = sys.app.open_sql();
  for (int i = 0; i < 1500; ++i) {
    char posnr[8];
    std::snprintf(posnr, sizeof(posnr), "%06d", i);
    ASSERT_OK(osql->Insert("VBAP", {Value::Str(sys.app.client()),
                                    Value::Str(posnr), Value::Int(i)}));
  }
  ASSERT_OK(sys.app.dictionary()->CreateSecondaryIndex("VBAP", "Q",
                                                       {"MANDT", "KWMENG"}));
  ASSERT_OK(sys.db.Analyze("VBAP"));

  appsys::SqlTrace trace;
  sys.app.connection()->set_sql_trace(&trace);
  auto select_lt = [&](int64_t bound) {
    appsys::OpenSqlQuery q;
    q.table = "VBAP";
    q.columns = {"KWMENG"};
    q.where = {appsys::OsqlCond::Cmp("KWMENG", rdbms::CmpOp::kLt,
                                     Value::Int(bound))};
    auto res = osql->Select(q);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  };
  // Open SQL parameterizes the literal, so all four runs share one cursor:
  // a cheap probe (0 rows, pays the hard parse), the expensive full range
  // twice (an identical-select repeat), and the cheap probe again (now a
  // cursor hit with trivial cost — the blind cursor's min/max spread).
  select_lt(0);
  select_lt(1000000);
  select_lt(1000000);
  select_lt(0);
  // One Native SQL statement to rank against.
  auto native = sys.app.native_sql()->ExecSql("SELECT COUNT(*) FROM VBAP");
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  sys.app.connection()->set_sql_trace(nullptr);

  ASSERT_EQ(trace.dropped_events(), 0u);
  std::vector<appsys::SqlStatementStats> top = trace.TopStatements();
  ASSERT_EQ(top.size(), 2u);  // the shared cursor aggregates to one entry
  const appsys::SqlStatementStats& s = top[0];
  // The blind cursor is the top db-time consumer, ahead of the native scan.
  EXPECT_EQ(s.interface_kind, appsys::SqlInterface::kOpenSql);
  EXPECT_GT(s.total_db_us, top[1].total_db_us);
  EXPECT_EQ(s.executions, 4);
  EXPECT_EQ(s.cursor_misses, 1);
  EXPECT_EQ(s.cursor_hits, 3);
  // Two bind groups, each executed twice: two identical-select repeats.
  EXPECT_EQ(s.identical_repeats, 2);
  EXPECT_EQ(s.rows, 2 * 1500);
  // The blind-cursor heuristic: cursor-cached, never peeked, and a >=10x
  // spread between its cheapest and costliest execution.
  EXPECT_FALSE(s.peeked_any);
  EXPECT_TRUE(s.blind_cursor_suspect);
  EXPECT_GE(s.max_exec_us, 10 * s.min_exec_us);
  EXPECT_FALSE(top[1].blind_cursor_suspect);
  EXPECT_EQ(top[1].interface_kind, appsys::SqlInterface::kNativeSql);

  std::string report = trace.RenderReport();
  EXPECT_NE(report.find("[blind-cursor]"), std::string::npos);
  EXPECT_NE(report.find("[identical-selects]"), std::string::npos);
  json::Value j = trace.ToJson();
  ASSERT_OK(json::Validate(j.Dump()));
  EXPECT_EQ(j.Get("statements").items().size(), 2u);
  EXPECT_TRUE(
      j.Get("statements").items()[0].Get("blind_cursor_suspect").bool_value());

  trace.Clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_TRUE(trace.TopStatements().empty());
}

// -- ST03 workload monitor ----------------------------------------------------

TEST(WorkloadMonitorTest, StepDecompositionSumsExactly) {
  MetricsRegistry registry;
  rdbms::DatabaseOptions db_opts;
  db_opts.metrics = &registry;
  appsys::R3System sys(appsys::AppServerOptions{}, db_opts);
  ASSERT_OK(sys.app.Bootstrap());
  rdbms::Schema mara({rdbms::ColChar("MANDT", 3), rdbms::ColChar("MATNR", 16),
                      rdbms::ColDecimal("BRGEW")});
  ASSERT_OK(sys.app.dictionary()->DefineTransparent("MARA", mara,
                                                    {"MANDT", "MATNR"}));
  ASSERT_OK(sys.app.open_sql()->Insert(
      "MARA", {Value::Str("301"), Value::Str("M1"), Value::Decimal(1.0)}));

  appsys::WorkloadMonitor monitor(sys.app.clock());
  sys.app.connection()->set_workload_monitor(&monitor);

  SimTimer step_timer(*sys.app.clock());
  monitor.BeginStep("report");
  sys.app.clock()->Charge(7);  // dispatcher queue, booked as wait
  monitor.AddWaitTime(7);
  sys.app.clock()->Charge(5);  // program load, booked as load
  monitor.AddLoadTime(5);
  appsys::OpenSqlQuery q;
  q.table = "MARA";
  ASSERT_TRUE(sys.app.open_sql()->Select(q).ok());  // db-request time
  sys.app.clock()->Charge(100);  // ABAP processing: the unbooked residual
  monitor.EndStep();
  int64_t step_total = step_timer.ElapsedUs();

  ASSERT_EQ(monitor.steps().size(), 1u);
  const appsys::WorkloadMonitor::StepStats& s = monitor.steps()[0];
  EXPECT_EQ(s.task_type, "report");
  EXPECT_EQ(s.steps, 1);
  // The ST03 identity: the decomposition sums *exactly* to the step's
  // end-to-end simulated time, with every component where it belongs.
  EXPECT_EQ(s.total_us, step_total);
  EXPECT_EQ(s.wait_us + s.load_us + s.db_request_us + s.processing_us,
            s.total_us);
  EXPECT_EQ(s.wait_us, 7);
  EXPECT_EQ(s.load_us, 5);
  EXPECT_GT(s.db_request_us, 0);
  EXPECT_GE(s.processing_us, 100);

  // A second step of the same task type aggregates; a different type gets
  // its own line, and steps never nest (Begin closes the open step).
  {
    appsys::WorkloadMonitor::Scope scope(&monitor, "report");
    ASSERT_TRUE(sys.app.open_sql()->Select(q).ok());
  }
  monitor.BeginStep("dialog");
  monitor.BeginStep("dialog");  // closes the first "dialog" step
  monitor.EndStep();
  monitor.EndStep();  // no-op: nothing open
  ASSERT_EQ(monitor.steps().size(), 2u);
  EXPECT_EQ(monitor.steps()[0].steps, 2);
  EXPECT_EQ(monitor.steps()[1].task_type, "dialog");
  EXPECT_EQ(monitor.steps()[1].steps, 2);

  std::string report = monitor.RenderReport();
  EXPECT_NE(report.find("report"), std::string::npos);
  EXPECT_NE(report.find("dialog"), std::string::npos);
  json::Value j = monitor.ToJson();
  ASSERT_OK(json::Validate(j.Dump()));
  ASSERT_EQ(j.Get("steps").items().size(), 2u);
  const json::Value& js = j.Get("steps").items()[0];
  EXPECT_EQ(js.Get("wait_us").int_value() + js.Get("load_us").int_value() +
                js.Get("db_request_us").int_value() +
                js.Get("processing_us").int_value(),
            js.Get("total_us").int_value());

  monitor.Reset();
  EXPECT_TRUE(monitor.steps().empty());
}

// -- The headline guarantee ---------------------------------------------------

/// Counters whose values must not depend on worker-thread budget or batch
/// size: everything that charges simulated time, plus statement/plan counts.
/// (`rdbms.bufferpool.logical_reads` is deliberately absent — re-pinning a
/// page on every batch fill makes it batch-size-variant, and it charges no
/// simulated time; DESIGN.md §7.)
const char* const kInvariantCounters[] = {
    "rdbms.bufferpool.physical_reads",
    "rdbms.bufferpool.sequential_reads",
    "rdbms.bufferpool.random_reads",
    "rdbms.bufferpool.page_writes",
    "rdbms.sql.statements",
    "rdbms.sql.hard_parses",
    "rdbms.optimizer.plans",
    "rdbms.optimizer.seq_scans",
    "rdbms.optimizer.parallel_scans",
    "rdbms.optimizer.hash_joins",
    "rdbms.optimizer.sorts",
    "rdbms.optimizer.gather_nodes",
};

std::map<std::string, int64_t> InvariantCounterValues(
    const MetricsRegistry& registry) {
  std::map<std::string, int64_t> out;
  for (const char* name : kInvariantCounters) out[name] = registry.Value(name);
  return out;
}

/// Erases every `"ts":<n>` field from a Chrome export. Batch capacity
/// decides whether a consumer's per-tuple charges interleave between or
/// after its producer's, so timestamps *inside* a statement legitimately
/// shift with batch size; everything else — event order, names, categories,
/// durations, row-count args — must not (see trace.h).
std::string StripTimestamps(const std::string& chrome_json) {
  std::string out;
  out.reserve(chrome_json.size());
  size_t i = 0;
  const std::string key = "\"ts\":";
  while (i < chrome_json.size()) {
    if (chrome_json.compare(i, key.size(), key) == 0) {
      i += key.size();
      while (i < chrome_json.size() &&
             (chrome_json[i] == '-' || (chrome_json[i] >= '0' &&
                                        chrome_json[i] <= '9'))) {
        ++i;
      }
      out += "\"ts\":0";
      continue;
    }
    out += chrome_json[i++];
  }
  return out;
}

TEST(ObservabilityDeterminismTest, TraceAndCountersInvariantAcrossThreadsAndBatches) {
  constexpr double kSf = 0.002;
  MetricsRegistry registry;
  rdbms::DatabaseOptions db_opts;
  db_opts.dop = 2;  // fixed plan-lane count: parallel plans in every run
  db_opts.planner.parallel_threshold_rows = 500;
  db_opts.metrics = &registry;
  rdbms::Database db(nullptr, db_opts);
  tpcd::DbGen gen(kSf);
  ASSERT_OK(tpcd::CreateTpcdSchema(&db));
  ASSERT_OK(tpcd::LoadTpcdDatabase(&db, &gen));
  auto queries = tpcd::MakeRdbmsQuerySet(&db);
  tpcd::QueryParams params = tpcd::QueryParams::Defaults(kSf);

  // Per-query simulated elapsed times, collected alongside the row counts.
  auto run_all = [&](std::vector<size_t>* row_counts,
                     std::vector<int64_t>* sim_times) {
    for (int q = 1; q <= tpcd::kNumQueries; ++q) {
      SimTimer t(*db.clock());
      auto res = queries->RunQuery(q, params);
      ASSERT_TRUE(res.ok()) << "Q" << q << ": " << res.status().ToString();
      row_counts->push_back(res.value().rows.size());
      sim_times->push_back(t.ElapsedUs());
    }
  };

  // Warm-up pass so every measured pass starts from identical engine state.
  {
    std::vector<size_t> ignored_rows;
    std::vector<int64_t> ignored_times;
    run_all(&ignored_rows, &ignored_times);
  }

  TraceOptions trace_opts;
  trace_opts.include_wall_time = false;  // byte-comparable exports
  Tracer tracer(db.clock(), trace_opts);

  struct Pass {
    int exec_threads;   // OS-thread budget for the plan's 2 lanes
    size_t batch_rows;  // rows per RowBatch in the pipeline
    std::string exported;
    std::map<std::string, int64_t> counters;
    std::vector<size_t> rows;
    std::vector<int64_t> sim_times;
  };
  std::vector<Pass> passes = {
      {1, 1024}, {4, 1024}, {1, 1}, {4, 1}, {1, 7},
  };
  for (Pass& pass : passes) {
    db.set_exec_threads(pass.exec_threads);
    db.set_batch_rows(pass.batch_rows);
    ASSERT_OK(db.pool()->Reset());  // identical cold-cache start every pass
    registry.ResetAll();
    tracer.Clear();
    run_all(&pass.rows, &pass.sim_times);
    ASSERT_EQ(tracer.dropped_events(), 0u);
    pass.exported = tracer.ExportChromeJson();
    pass.counters = InvariantCounterValues(registry);
  }
  const Pass& ref = passes[0];

  // The baseline must actually exercise what the test claims to pin down:
  // parallel plans, physical I/O, and spans from every layer.
  EXPECT_GT(ref.counters.at("rdbms.optimizer.gather_nodes"), 0);
  EXPECT_GT(ref.counters.at("rdbms.bufferpool.physical_reads"), 0);
  // >= because some of the 17 report programs issue more than one statement.
  EXPECT_GE(ref.counters.at("rdbms.sql.statements"),
            static_cast<int64_t>(tpcd::kNumQueries));
  ASSERT_OK(json::Validate(ref.exported));
  for (const char* needle :
       {"\"cat\":\"sql\"", "\"cat\":\"exec\"", "\"cat\":\"io\""}) {
    EXPECT_NE(ref.exported.find(needle), std::string::npos) << needle;
  }

  const std::string ref_stripped = StripTimestamps(ref.exported);
  for (size_t i = 1; i < passes.size(); ++i) {
    const Pass& pass = passes[i];
    SCOPED_TRACE(::testing::Message() << "exec_threads=" << pass.exec_threads
                                      << " batch_rows=" << pass.batch_rows);
    EXPECT_EQ(pass.rows, ref.rows);
    EXPECT_EQ(pass.sim_times, ref.sim_times);  // per-query totals invariant
    EXPECT_EQ(pass.counters, ref.counters);
    if (pass.batch_rows == ref.batch_rows) {
      // Worker-thread budget: full byte-identical exports, timestamps and
      // all — the trace never sees OS scheduling.
      ExpectSameBytes(ref.exported, pass.exported,
                      "trace exports across exec_threads");
    } else {
      // Batch capacity: identical modulo intra-statement charge
      // interleaving (see StripTimestamps).
      ExpectSameBytes(ref_stripped, StripTimestamps(pass.exported),
                      "timestamp-stripped trace exports across batch sizes");
    }
  }
  // Thread-budget invariance at the small batch size too: passes {1,1} and
  // {4,1} must match byte-for-byte.
  ExpectSameBytes(passes[2].exported, passes[3].exported,
                  "trace exports across exec_threads at batch_rows=1");
}

}  // namespace
}  // namespace r3
