// Observability-layer tests: the metrics registry (sharded counters, gauges,
// fixed-bucket histograms), cross-layer trace spans and their Chrome export,
// the JSON helper underneath both, the ST04-style performance monitor — and
// the headline determinism guarantee: simulated-time trace exports and the
// sim-charging counters are byte-identical no matter how many OS worker
// threads run the plan's lanes or how many rows travel per batch (DESIGN.md
// §7). Also the regression fence for per-statement state: operator runtime
// counters and trace output must not bleed between statements on a reused
// Database.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "appsys/app_server.h"
#include "appsys/perf_monitor.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "tpcd/loader.h"
#include "tpcd/queries.h"
#include "tpcd/schema.h"

namespace r3 {
namespace {

using rdbms::Value;

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

/// EXPECT_EQ on multi-megabyte strings prints both operands on failure;
/// this reports just the first differing byte with a little context.
void ExpectSameBytes(const std::string& a, const std::string& b,
                     const char* what) {
  if (a == b) return;
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  size_t from = i > 60 ? i - 60 : 0;
  ADD_FAILURE() << what << " differ (sizes " << a.size() << " vs " << b.size()
                << ") at byte " << i << ":\n  a: ..." << a.substr(from, 120)
                << "\n  b: ..." << b.substr(from, 120);
}

// -- Metrics ------------------------------------------------------------------

TEST(MetricsTest, CounterSumsExactlyAcrossThreads) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  c.Add(5);
  EXPECT_EQ(c.Value(), kThreads * kPerThread + 5);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge g;
  g.Set(42);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 40);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h", {10, 100});
  h->Observe(5);
  h->Observe(10);   // bucket bounds are inclusive
  h->Observe(50);
  h->Observe(1000);  // overflow bucket
  EXPECT_EQ(h->TotalCount(), 4);
  EXPECT_EQ(h->Sum(), 1065);
  EXPECT_EQ(h->BucketCount(0), 2);
  EXPECT_EQ(h->BucketCount(1), 1);
  EXPECT_EQ(h->BucketCount(2), 1);  // overflow
  h->Reset();
  EXPECT_EQ(h->TotalCount(), 0);
  EXPECT_EQ(h->Sum(), 0);
}

TEST(MetricsTest, RegistrySnapshotAndRenderAreDeterministic) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Add(3);
  registry.GetCounter("a.first")->Add(1);
  registry.GetGauge("m.gauge")->Set(7);
  registry.GetHistogram("m.hist", {10})->Observe(4);

  EXPECT_EQ(registry.Value("a.first"), 1);
  EXPECT_EQ(registry.Value("m.gauge"), 7);
  EXPECT_EQ(registry.Value("no.such.metric"), 0);

  std::vector<MetricSample> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "a.first");  // sorted by name
  EXPECT_EQ(snap[3].name, "z.last");
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const MetricSample& x, const MetricSample& y) {
        return x.name < y.name;
      }));

  std::string text = registry.RenderText();
  EXPECT_EQ(text, registry.RenderText());
  EXPECT_NE(text.find("a.first"), std::string::npos);
  EXPECT_NE(text.find("m.hist"), std::string::npos);

  // ResetAll zeroes values but keeps the metric set (and bucket layout).
  registry.ResetAll();
  EXPECT_EQ(registry.Value("z.last"), 0);
  EXPECT_EQ(registry.Snapshot().size(), 4u);
  registry.GetCounter("z.last")->Add(2);
  EXPECT_EQ(registry.Value("z.last"), 2);
}

// -- JSON ---------------------------------------------------------------------

TEST(JsonTest, RoundTripPreservesDocument) {
  json::Value doc = json::Value::Object();
  doc.Set("name", json::Value::Str("bench \"quoted\"\n"));
  doc.Set("count", json::Value::Int(-12345));
  doc.Set("ratio", json::Value::Double(0.25));
  doc.Set("ok", json::Value::Bool(true));
  doc.Set("none", json::Value::Null());
  json::Value arr = json::Value::Array();
  arr.Append(json::Value::Int(1));
  arr.Append(json::Value::Str("two"));
  doc.Set("items", std::move(arr));

  std::string text = doc.Dump();
  auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& v = parsed.value();
  EXPECT_EQ(v.Get("name").string_value(), "bench \"quoted\"\n");
  EXPECT_EQ(v.Get("count").int_value(), -12345);
  EXPECT_DOUBLE_EQ(v.Get("ratio").double_value(), 0.25);
  EXPECT_TRUE(v.Get("ok").bool_value());
  EXPECT_TRUE(v.Get("none").is_null());
  ASSERT_EQ(v.Get("items").items().size(), 2u);
  EXPECT_EQ(v.Get("items").items()[1].string_value(), "two");
  // Re-dump of the parse is byte-identical (insertion order preserved).
  EXPECT_EQ(parsed.value().Dump(), text);
}

TEST(JsonTest, MalformedDocumentsAreRejected) {
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("[1,]").ok());
  EXPECT_FALSE(json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(json::Parse("{'a':1}").ok());
  EXPECT_FALSE(json::Validate("not json").ok());
  EXPECT_TRUE(json::Validate("{\"a\":[1,2,{\"b\":null}]}").ok());
}

// -- Trace spans across the RDBMS layers -------------------------------------

/// Category/name pairs present in a Chrome export.
std::set<std::pair<std::string, std::string>> EventSet(
    const std::string& chrome_json) {
  auto doc = json::Parse(chrome_json);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  std::set<std::pair<std::string, std::string>> out;
  if (!doc.ok()) return out;
  for (const json::Value& e : doc.value().Get("traceEvents").items()) {
    out.emplace(e.Get("cat").string_value(), e.Get("name").string_value());
  }
  return out;
}

TEST(TraceTest, SpansCoverSqlExecAndIoLayers) {
  MetricsRegistry registry;
  rdbms::DatabaseOptions opts;
  opts.metrics = &registry;
  rdbms::Database db(nullptr, opts);
  ASSERT_OK(db.Execute("CREATE TABLE t (a INT, b CHAR(16))"));
  for (int i = 0; i < 2000; ++i) {
    ASSERT_OK(db.InsertRow("t", {Value::Int(i), Value::Str("some filler")}));
  }
  ASSERT_OK(db.pool()->Reset());  // cold pool: the scan pays physical I/O

  Tracer tracer(db.clock());
  auto res = db.Query("SELECT SUM(a) FROM t WHERE a >= 10");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GT(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);

  std::string exported = tracer.ExportChromeJson();
  ASSERT_OK(json::Validate(exported));
  auto events = EventSet(exported);
  // The sql pipeline stages...
  EXPECT_TRUE(events.count({"sql", "parse"}));
  EXPECT_TRUE(events.count({"sql", "optimize"}));
  EXPECT_TRUE(events.count({"sql", "execute"}));
  // ...the executor's per-operator spans...
  bool has_exec = false, has_io = false;
  for (const auto& [cat, name] : events) {
    if (cat == "exec") has_exec = true;
    if (cat == "io" && name.rfind("page_read", 0) == 0) has_io = true;
  }
  EXPECT_TRUE(has_exec);
  // ...and the buffer pool's physical transfers.
  EXPECT_TRUE(has_io);
  EXPECT_GT(registry.Value("rdbms.bufferpool.physical_reads"), 0);
}

TEST(TraceTest, TxnWalAndRecoverySpansAppear) {
  MetricsRegistry registry;
  rdbms::DatabaseOptions opts;
  opts.metrics = &registry;
  rdbms::Database db(nullptr, opts);
  ASSERT_OK(db.Execute("CREATE TABLE t (a INT, b CHAR(8))"));
  ASSERT_OK(db.EnableWal());

  Tracer tracer(db.clock());
  ASSERT_OK(db.Begin());
  ASSERT_OK(db.InsertRow("t", {Value::Int(1), Value::Str("one")}));
  ASSERT_OK(db.Commit());
  ASSERT_OK(db.SimulateCrash());
  ASSERT_OK(db.Recover());

  auto events = EventSet(tracer.ExportChromeJson());
  EXPECT_TRUE(events.count({"wal", "flush"}));
  EXPECT_TRUE(events.count({"txn", "commit"}));
  EXPECT_TRUE(events.count({"recovery", "redo"}));
  // The subsystem's counters land in the Database's registry, not the
  // global one.
  EXPECT_GT(registry.Value("wal.flushes"), 0);
  EXPECT_GT(registry.Value("wal.appends"), 0);
  EXPECT_EQ(registry.Value("txn.begins"), 1);
  EXPECT_EQ(registry.Value("txn.commits"), 1);
  EXPECT_EQ(registry.Value("recovery.runs"), 1);
}

TEST(TraceTest, TracingChargesNoSimulatedTime) {
  rdbms::Database db;
  ASSERT_OK(db.Execute("CREATE TABLE t (a INT)"));
  for (int i = 0; i < 500; ++i) ASSERT_OK(db.InsertRow("t", {Value::Int(i)}));
  const std::string sql = "SELECT COUNT(*) FROM t WHERE a < 250";
  ASSERT_TRUE(db.Query(sql).ok());  // warm the pool

  SimTimer untraced(*db.clock());
  ASSERT_TRUE(db.Query(sql).ok());
  int64_t untraced_us = untraced.ElapsedUs();

  Tracer tracer(db.clock());
  SimTimer traced(*db.clock());
  ASSERT_TRUE(db.Query(sql).ok());
  EXPECT_EQ(traced.ElapsedUs(), untraced_us);
  EXPECT_GT(tracer.event_count(), 0u);
}

TEST(TraceTest, NoStateBleedsBetweenStatementsOnReusedDatabase) {
  rdbms::Database db;
  ASSERT_OK(db.Execute("CREATE TABLE t (a INT, b INT)"));
  for (int i = 0; i < 800; ++i) {
    ASSERT_OK(db.InsertRow("t", {Value::Int(i), Value::Int(i % 7)}));
  }
  const std::string sql =
      "SELECT b, COUNT(*), SUM(a) FROM t WHERE a >= 100 GROUP BY b ORDER BY b";
  ASSERT_TRUE(db.Query(sql).ok());  // warm the pool

  TraceOptions trace_opts;
  trace_opts.include_wall_time = false;
  Tracer tracer(db.clock(), trace_opts);

  // Operator runtime counters reset per statement: repeated runs of the same
  // statement on the same Database trace identically (rows args included) and
  // charge identical simulated time.
  tracer.Clear();
  SimTimer t1(*db.clock());
  ASSERT_TRUE(db.Query(sql).ok());
  int64_t run1_us = t1.ElapsedUs();
  std::string export1 = tracer.ExportChromeJson();

  tracer.Clear();
  SimTimer t2(*db.clock());
  ASSERT_TRUE(db.Query(sql).ok());
  EXPECT_EQ(t2.ElapsedUs(), run1_us);
  ExpectSameBytes(export1, tracer.ExportChromeJson(),
                  "trace exports of identical consecutive statements");

  // The EXPLAIN ANALYZE counters are per-statement too: a second run reports
  // the same rows/batches/opens, not accumulated totals.
  auto ea1 = db.ExplainAnalyze(sql);
  ASSERT_TRUE(ea1.ok()) << ea1.status().ToString();
  auto ea2 = db.ExplainAnalyze(sql);
  ASSERT_TRUE(ea2.ok());
  ExpectSameBytes(ea1.value(), ea2.value(), "EXPLAIN ANALYZE reports");
}

// -- The app layer in the trace, and table-buffer metrics ---------------------

TEST(TraceTest, AppServerLayersAppearInTrace) {
  MetricsRegistry registry;
  appsys::AppServerOptions app_opts;
  app_opts.table_buffer_bytes = 1u << 20;
  rdbms::DatabaseOptions db_opts;
  db_opts.metrics = &registry;
  appsys::R3System sys(app_opts, db_opts);
  ASSERT_OK(sys.app.Bootstrap());
  rdbms::Schema mara({rdbms::ColChar("MANDT", 3), rdbms::ColChar("MATNR", 16),
                      rdbms::ColDecimal("BRGEW")});
  ASSERT_OK(sys.app.dictionary()->DefineTransparent("MARA", mara,
                                                    {"MANDT", "MATNR"}));
  appsys::OpenSql* osql = sys.app.open_sql();
  sys.app.buffer()->EnableFor("MARA");
  ASSERT_OK(osql->Insert(
      "MARA", {Value::Str("301"), Value::Str("M1"), Value::Decimal(1.5)}));

  Tracer tracer(sys.app.clock());
  auto miss = osql->SelectSingle(
      "MARA", {appsys::OsqlCond::Eq("MATNR", Value::Str("M1"))});
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  auto hit = osql->SelectSingle(
      "MARA", {appsys::OsqlCond::Eq("MATNR", Value::Str("M1"))});
  ASSERT_TRUE(hit.ok());
  appsys::OpenSqlQuery q;
  q.table = "MARA";
  ASSERT_TRUE(osql->Select(q).ok());

  auto events = EventSet(tracer.ExportChromeJson());
  EXPECT_TRUE(events.count({"app", "opensql.select"}));
  EXPECT_TRUE(events.count({"app", "opensql.translate"}));
  EXPECT_TRUE(events.count({"app", "table_buffer.hit"}));
  bool has_interface = false, has_sql = false;
  for (const auto& [cat, name] : events) {
    if (cat == "interface" && name.rfind("db_call.", 0) == 0)
      has_interface = true;
    if (cat == "sql") has_sql = true;
  }
  EXPECT_TRUE(has_interface);  // DbConnection round trips
  EXPECT_TRUE(has_sql);        // the RDBMS underneath the same spans

  // The connection's registry mirror agrees with its struct stats.
  EXPECT_EQ(registry.Value("appsys.connection.round_trips"),
            sys.app.connection()->stats().round_trips);
  EXPECT_GT(registry.Value("appsys.connection.round_trips"), 0);
}

// -- Performance monitor ------------------------------------------------------

TEST(PerfMonitorTest, AggregatesOperationsWithCounterDeltas) {
  MetricsRegistry registry;
  rdbms::DatabaseOptions db_opts;
  db_opts.metrics = &registry;
  appsys::R3System sys(appsys::AppServerOptions{}, db_opts);
  ASSERT_OK(sys.app.Bootstrap());
  rdbms::Schema mara({rdbms::ColChar("MANDT", 3), rdbms::ColChar("MATNR", 16),
                      rdbms::ColDecimal("BRGEW")});
  ASSERT_OK(sys.app.dictionary()->DefineTransparent("MARA", mara,
                                                    {"MANDT", "MATNR"}));
  appsys::PerfMonitor monitor(sys.app.clock(), &registry);

  {
    appsys::PerfMonitor::Scope op(&monitor, "load");
    ASSERT_OK(sys.app.open_sql()->Insert(
        "MARA", {Value::Str("301"), Value::Str("M1"), Value::Decimal(1.0)}));
  }
  for (int i = 0; i < 2; ++i) {
    appsys::PerfMonitor::Scope op(&monitor, "report");
    appsys::OpenSqlQuery q;
    q.table = "MARA";
    ASSERT_TRUE(sys.app.open_sql()->Select(q).ok());
  }

  const auto& ops = monitor.operations();
  ASSERT_EQ(ops.size(), 2u);  // first-seen order, aggregated by name
  EXPECT_EQ(ops[0].name, "load");
  EXPECT_EQ(ops[0].calls, 1);
  EXPECT_EQ(ops[1].name, "report");
  EXPECT_EQ(ops[1].calls, 2);
  EXPECT_GT(ops[1].sim_us, 0);
  EXPECT_GT(ops[1].CounterValue("rdbms.sql.statements"), 0);
  EXPECT_EQ(ops[1].CounterValue("appsys.connection.round_trips"), 2);
  EXPECT_GE(monitor.Total("rdbms.sql.statements"),
            ops[0].CounterValue("rdbms.sql.statements") +
                ops[1].CounterValue("rdbms.sql.statements"));

  std::string report = monitor.RenderReport();
  EXPECT_NE(report.find("performance monitor"), std::string::npos);
  EXPECT_NE(report.find("report"), std::string::npos);
  auto parsed = json::Parse(monitor.ToJson().Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().Has("totals"));
  ASSERT_TRUE(parsed.value().Has("operations"));
  EXPECT_EQ(parsed.value().Get("operations").items().size(), 2u);

  monitor.Reset();
  EXPECT_TRUE(monitor.operations().empty());
  EXPECT_EQ(monitor.Total("rdbms.sql.statements"), 0);
}

TEST(PerfMonitorTest, OperationsDoNotNest) {
  appsys::R3System sys;
  appsys::PerfMonitor monitor(&sys.clock);
  monitor.BeginOperation("outer");
  sys.clock.Charge(10);
  monitor.BeginOperation("inner");  // closes "outer" first
  sys.clock.Charge(5);
  monitor.EndOperation();
  monitor.EndOperation();  // no-op: nothing open
  ASSERT_EQ(monitor.operations().size(), 2u);
  EXPECT_EQ(monitor.operations()[0].name, "outer");
  EXPECT_EQ(monitor.operations()[0].sim_us, 10);
  EXPECT_EQ(monitor.operations()[1].sim_us, 5);
}

// -- The headline guarantee ---------------------------------------------------

/// Counters whose values must not depend on worker-thread budget or batch
/// size: everything that charges simulated time, plus statement/plan counts.
/// (`rdbms.bufferpool.logical_reads` is deliberately absent — re-pinning a
/// page on every batch fill makes it batch-size-variant, and it charges no
/// simulated time; DESIGN.md §7.)
const char* const kInvariantCounters[] = {
    "rdbms.bufferpool.physical_reads",
    "rdbms.bufferpool.sequential_reads",
    "rdbms.bufferpool.random_reads",
    "rdbms.bufferpool.page_writes",
    "rdbms.sql.statements",
    "rdbms.sql.hard_parses",
    "rdbms.optimizer.plans",
    "rdbms.optimizer.seq_scans",
    "rdbms.optimizer.parallel_scans",
    "rdbms.optimizer.hash_joins",
    "rdbms.optimizer.sorts",
    "rdbms.optimizer.gather_nodes",
};

std::map<std::string, int64_t> InvariantCounterValues(
    const MetricsRegistry& registry) {
  std::map<std::string, int64_t> out;
  for (const char* name : kInvariantCounters) out[name] = registry.Value(name);
  return out;
}

/// Erases every `"ts":<n>` field from a Chrome export. Batch capacity
/// decides whether a consumer's per-tuple charges interleave between or
/// after its producer's, so timestamps *inside* a statement legitimately
/// shift with batch size; everything else — event order, names, categories,
/// durations, row-count args — must not (see trace.h).
std::string StripTimestamps(const std::string& chrome_json) {
  std::string out;
  out.reserve(chrome_json.size());
  size_t i = 0;
  const std::string key = "\"ts\":";
  while (i < chrome_json.size()) {
    if (chrome_json.compare(i, key.size(), key) == 0) {
      i += key.size();
      while (i < chrome_json.size() &&
             (chrome_json[i] == '-' || (chrome_json[i] >= '0' &&
                                        chrome_json[i] <= '9'))) {
        ++i;
      }
      out += "\"ts\":0";
      continue;
    }
    out += chrome_json[i++];
  }
  return out;
}

TEST(ObservabilityDeterminismTest, TraceAndCountersInvariantAcrossThreadsAndBatches) {
  constexpr double kSf = 0.002;
  MetricsRegistry registry;
  rdbms::DatabaseOptions db_opts;
  db_opts.dop = 2;  // fixed plan-lane count: parallel plans in every run
  db_opts.planner.parallel_threshold_rows = 500;
  db_opts.metrics = &registry;
  rdbms::Database db(nullptr, db_opts);
  tpcd::DbGen gen(kSf);
  ASSERT_OK(tpcd::CreateTpcdSchema(&db));
  ASSERT_OK(tpcd::LoadTpcdDatabase(&db, &gen));
  auto queries = tpcd::MakeRdbmsQuerySet(&db);
  tpcd::QueryParams params = tpcd::QueryParams::Defaults(kSf);

  // Per-query simulated elapsed times, collected alongside the row counts.
  auto run_all = [&](std::vector<size_t>* row_counts,
                     std::vector<int64_t>* sim_times) {
    for (int q = 1; q <= tpcd::kNumQueries; ++q) {
      SimTimer t(*db.clock());
      auto res = queries->RunQuery(q, params);
      ASSERT_TRUE(res.ok()) << "Q" << q << ": " << res.status().ToString();
      row_counts->push_back(res.value().rows.size());
      sim_times->push_back(t.ElapsedUs());
    }
  };

  // Warm-up pass so every measured pass starts from identical engine state.
  {
    std::vector<size_t> ignored_rows;
    std::vector<int64_t> ignored_times;
    run_all(&ignored_rows, &ignored_times);
  }

  TraceOptions trace_opts;
  trace_opts.include_wall_time = false;  // byte-comparable exports
  Tracer tracer(db.clock(), trace_opts);

  struct Pass {
    int exec_threads;   // OS-thread budget for the plan's 2 lanes
    size_t batch_rows;  // rows per RowBatch in the pipeline
    std::string exported;
    std::map<std::string, int64_t> counters;
    std::vector<size_t> rows;
    std::vector<int64_t> sim_times;
  };
  std::vector<Pass> passes = {
      {1, 1024}, {4, 1024}, {1, 1}, {4, 1}, {1, 7},
  };
  for (Pass& pass : passes) {
    db.set_exec_threads(pass.exec_threads);
    db.set_batch_rows(pass.batch_rows);
    ASSERT_OK(db.pool()->Reset());  // identical cold-cache start every pass
    registry.ResetAll();
    tracer.Clear();
    run_all(&pass.rows, &pass.sim_times);
    ASSERT_EQ(tracer.dropped_events(), 0u);
    pass.exported = tracer.ExportChromeJson();
    pass.counters = InvariantCounterValues(registry);
  }
  const Pass& ref = passes[0];

  // The baseline must actually exercise what the test claims to pin down:
  // parallel plans, physical I/O, and spans from every layer.
  EXPECT_GT(ref.counters.at("rdbms.optimizer.gather_nodes"), 0);
  EXPECT_GT(ref.counters.at("rdbms.bufferpool.physical_reads"), 0);
  // >= because some of the 17 report programs issue more than one statement.
  EXPECT_GE(ref.counters.at("rdbms.sql.statements"),
            static_cast<int64_t>(tpcd::kNumQueries));
  ASSERT_OK(json::Validate(ref.exported));
  for (const char* needle :
       {"\"cat\":\"sql\"", "\"cat\":\"exec\"", "\"cat\":\"io\""}) {
    EXPECT_NE(ref.exported.find(needle), std::string::npos) << needle;
  }

  const std::string ref_stripped = StripTimestamps(ref.exported);
  for (size_t i = 1; i < passes.size(); ++i) {
    const Pass& pass = passes[i];
    SCOPED_TRACE(::testing::Message() << "exec_threads=" << pass.exec_threads
                                      << " batch_rows=" << pass.batch_rows);
    EXPECT_EQ(pass.rows, ref.rows);
    EXPECT_EQ(pass.sim_times, ref.sim_times);  // per-query totals invariant
    EXPECT_EQ(pass.counters, ref.counters);
    if (pass.batch_rows == ref.batch_rows) {
      // Worker-thread budget: full byte-identical exports, timestamps and
      // all — the trace never sees OS scheduling.
      ExpectSameBytes(ref.exported, pass.exported,
                      "trace exports across exec_threads");
    } else {
      // Batch capacity: identical modulo intra-statement charge
      // interleaving (see StripTimestamps).
      ExpectSameBytes(ref_stripped, StripTimestamps(pass.exported),
                      "timestamp-stripped trace exports across batch sizes");
    }
  }
  // Thread-budget invariance at the small batch size too: passes {1,1} and
  // {4,1} must match byte-for-byte.
  ExpectSameBytes(passes[2].exported, passes[3].exported,
                  "trace exports across exec_threads at batch_rows=1");
}

}  // namespace
}  // namespace r3
