// Optimizer v2 tests: equi-height histogram construction, the bind-peeking
// plan-variant cache, per-engine cost calibration, multi-range index access,
// and the peeking-off byte-identity contract over the TPC-D query sweep.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/str_util.h"
#include "rdbms/db.h"
#include "rdbms/optimizer/optimizer_costs.h"
#include "rdbms/optimizer/stats.h"
#include "tpcd/loader.h"
#include "tpcd/qgen.h"
#include "tpcd/queries.h"
#include "tpcd/schema.h"

namespace r3 {
namespace rdbms {
namespace {

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

// ---------------------------------------------------------------------------
// Histogram construction
// ---------------------------------------------------------------------------

ColumnStats StatsFor(std::vector<Value> values, uint64_t null_count) {
  ColumnStats s;
  s.null_count = null_count;
  if (!values.empty()) {
    std::sort(values.begin(), values.end(),
              [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
    s.valid = true;
    s.min = values.front();
    s.max = values.back();
    uint64_t ndv = 1;
    for (size_t i = 1; i < values.size(); ++i) {
      if (values[i].Compare(values[i - 1]) != 0) ++ndv;
    }
    s.ndv = ndv;
    BuildEquiHeightHistogram(std::move(values), &s);
  }
  return s;
}

TEST(HistogramTest, SkewedColumnBeatsUniformityAssumption) {
  // 1000 copies of 7 plus the singletons 101..200: the uniform-ndv model
  // claims every value selects 1/101 of the rows; the histogram knows the
  // heavy hitter holds ~91% of them.
  std::vector<Value> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(Value::Int(7));
  for (int i = 101; i <= 200; ++i) vals.push_back(Value::Int(i));
  ColumnStats s = StatsFor(std::move(vals), 0);
  ASSERT_FALSE(s.hist.empty());
  EXPECT_EQ(s.hist_rows, 1100u);
  double hist_eq = selectivity::Equals(s, Value::Int(7), /*use_histogram=*/true);
  EXPECT_NEAR(hist_eq, 1000.0 / 1100.0, 0.05);
  double flat_eq = selectivity::Equals(s, Value::Int(7), /*use_histogram=*/false);
  EXPECT_LT(flat_eq, 0.02);  // 1/101 — off by two orders of magnitude
  // Range estimation sees the mass concentrated at the low end.
  double lt = selectivity::LessThan(s, Value::Int(100), /*use_histogram=*/true);
  EXPECT_NEAR(lt, 1000.0 / 1100.0, 0.05);
}

TEST(HistogramTest, ConstantColumnIsOneBucket) {
  std::vector<Value> vals(500, Value::Str("301"));
  ColumnStats s = StatsFor(std::move(vals), 0);
  ASSERT_EQ(s.hist.size(), 1u);
  EXPECT_DOUBLE_EQ(
      selectivity::Equals(s, Value::Str("301"), /*use_histogram=*/true), 1.0);
  EXPECT_DOUBLE_EQ(
      selectivity::LessThan(s, Value::Str("301"), /*use_histogram=*/true), 0.0);
}

TEST(HistogramTest, NullHeavyColumnScalesByNonNullFraction) {
  std::vector<Value> vals;
  for (int i = 1; i <= 100; ++i) vals.push_back(Value::Int(i));
  ColumnStats s = StatsFor(std::move(vals), /*null_count=*/900);
  ASSERT_FALSE(s.hist.empty());
  // NULLs never satisfy a comparison: the histogram fractions shrink by the
  // non-null share (100 of 1000 rows).
  double lt = selectivity::LessThan(s, Value::Int(51), /*use_histogram=*/true);
  EXPECT_NEAR(lt, 0.05, 0.01);
  double eq = selectivity::Equals(s, Value::Int(42), /*use_histogram=*/true);
  EXPECT_NEAR(eq, 0.001, 0.0005);
}

TEST(HistogramTest, AnalyzePopulatesHistograms) {
  Database db;
  ASSERT_OK(db.Execute("CREATE TABLE t (k INT, v INT, PRIMARY KEY (k))"));
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_OK(db.InsertRow("t", Row{Value::Int(i), Value::Int(i % 3)}));
  }
  ASSERT_OK(db.Analyze("t"));
  auto t = db.catalog()->GetTable("t");
  ASSERT_OK(t.status());
  const TableStats& stats = t.value()->stats;
  ASSERT_TRUE(stats.valid);
  EXPECT_FALSE(stats.columns[0].hist.empty());
  EXPECT_EQ(stats.columns[0].hist_rows, 200u);
  EXPECT_EQ(t.value()->mods_since_analyze, 0u);
}

// ---------------------------------------------------------------------------
// Bind peeking: plan-variant cache
// ---------------------------------------------------------------------------

class PeekFixture : public ::testing::Test {
 protected:
  void MakeDb(EngineKind engine) {
    DatabaseOptions opts;
    opts.buffer_pool_bytes = 512 * 1024;
    opts.default_engine = engine;
    opts.metrics = &metrics_;
    db_ = std::make_unique<Database>(nullptr, opts);
    ASSERT_OK(db_->Execute(
        "CREATE TABLE big (id INT, val INT, pad CHAR(60), PRIMARY KEY (id))"));
    for (int64_t i = 0; i < 10000; ++i) {
      ASSERT_OK(db_->InsertRow(
          "big", Row{Value::Int(i), Value::Int(i % 97), Value::Str("p")}));
    }
    ASSERT_OK(db_->Execute("ANALYZE"));
  }

  int64_t CounterValue(const std::string& name) {
    return metrics_.GetCounter(name)->Value();
  }

  MetricsRegistry metrics_;
  std::unique_ptr<Database> db_;
};

TEST_F(PeekFixture, BucketBoundaryCompilesExactlyTwoVariants) {
  MakeDb(EngineKind::kRowHeap);
  db_->set_bind_peeking(true);
  const std::string sql = "SELECT val FROM big WHERE id < ?";

  // Selective bound: ~0.1% of the table -> bucket 0, first hard parse.
  Database::BindPeekInfo info;
  auto s1 = db_->PrepareWithParams(sql, {Value::Int(5)}, &info);
  ASSERT_OK(s1.status());
  EXPECT_TRUE(info.peeked);
  EXPECT_EQ(info.bucket, 0);
  EXPECT_FALSE(info.variant_hit);
  EXPECT_NE(s1.value()->ExplainPlan().find("IndexScan"), std::string::npos);

  // Same bucket, different literal: cache hit, same variant object.
  auto s2 = db_->PrepareWithParams(sql, {Value::Int(3)}, &info);
  ASSERT_OK(s2.status());
  EXPECT_TRUE(info.variant_hit);
  EXPECT_EQ(info.bucket, 0);
  EXPECT_EQ(s1.value(), s2.value());

  // Crossing the boundary: ~90% of the table -> bucket 3, one new variant.
  auto s3 = db_->PrepareWithParams(sql, {Value::Int(9000)}, &info);
  ASSERT_OK(s3.status());
  EXPECT_FALSE(info.variant_hit);
  EXPECT_EQ(info.bucket, 3);
  EXPECT_NE(s3.value(), s1.value());
  EXPECT_NE(s3.value()->ExplainPlan().find("SeqScan"), std::string::npos);

  // Re-execution in the non-selective bucket: hit again.
  auto s4 = db_->PrepareWithParams(sql, {Value::Int(9500)}, &info);
  ASSERT_OK(s4.status());
  EXPECT_TRUE(info.variant_hit);
  EXPECT_EQ(s4.value(), s3.value());

  EXPECT_EQ(CounterValue("rdbms.sql.plan_cache.variants"), 2);
  EXPECT_EQ(CounterValue("rdbms.sql.plan_cache.bucket0_hits"), 1);
  EXPECT_EQ(CounterValue("rdbms.sql.plan_cache.bucket3_hits"), 1);

  // The variants return correct results for their buckets.
  auto r1 = db_->ExecutePrepared(s1.value(), {Value::Int(5)});
  ASSERT_OK(r1.status());
  EXPECT_EQ(r1.value().rows.size(), 5u);
  auto r3 = db_->ExecutePrepared(s3.value(), {Value::Int(9000)});
  ASSERT_OK(r3.status());
  EXPECT_EQ(r3.value().rows.size(), 9000u);
}

TEST_F(PeekFixture, PeekingOffForwardsToPlainPrepare) {
  MakeDb(EngineKind::kRowHeap);
  Database::BindPeekInfo info;
  auto s1 = db_->PrepareWithParams("SELECT val FROM big WHERE id < ?",
                                   {Value::Int(10)}, &info);
  ASSERT_OK(s1.status());
  EXPECT_FALSE(info.peeked);
  auto s2 = db_->Prepare("SELECT val FROM big WHERE id < ?");
  ASSERT_OK(s2.status());
  EXPECT_EQ(s1.value(), s2.value());  // same cache, same statement
  EXPECT_EQ(CounterValue("rdbms.sql.plan_cache.variants"), 0);
}

TEST_F(PeekFixture, ExplainWithParamsShowsPeekAndCosts) {
  MakeDb(EngineKind::kRowHeap);
  auto plan =
      db_->Explain("SELECT val FROM big WHERE id < ?", {Value::Int(5)});
  ASSERT_OK(plan.status());
  EXPECT_NE(plan.value().find("Peek: bucket=0"), std::string::npos)
      << plan.value();
  EXPECT_NE(plan.value().find("Costs(big):"), std::string::npos)
      << plan.value();
  EXPECT_NE(plan.value().find("IndexScan"), std::string::npos) << plan.value();
}

// ---------------------------------------------------------------------------
// Per-engine calibrated costs
// ---------------------------------------------------------------------------

TEST_F(PeekFixture, CalibratedCostsDivergePerEngine) {
  MakeDb(EngineKind::kRowHeap);
  auto row_t = db_->catalog()->GetTable("big");
  ASSERT_OK(row_t.status());
  const CostModel& cost = DefaultCostModel();
  OptimizerCosts row_costs = OptimizerCosts::ForTable(*row_t.value(), cost);
  // Row heap: fetching a row behind an index entry is a random page read.
  EXPECT_DOUBLE_EQ(row_costs.row_fetch_us, cost.random_page_read_us);
  EXPECT_DOUBLE_EQ(row_costs.index_entry_cpu_us, cost.dbms_tuple_cpu_us);
  EXPECT_DOUBLE_EQ(row_costs.index_descent_us, 2.0 * cost.random_page_read_us);

  MakeDb(EngineKind::kColumnar);
  auto col_t = db_->catalog()->GetTable("big");
  ASSERT_OK(col_t.status());
  OptimizerCosts col_costs = OptimizerCosts::ForTable(*col_t.value(), cost);
  // Columnar: Get() charges per-value CPU, no random page I/O — the PR 6
  // pessimization this calibration replaces.
  EXPECT_LT(col_costs.row_fetch_us, row_costs.row_fetch_us / 100.0);
  EXPECT_DOUBLE_EQ(col_costs.index_entry_cpu_us, cost.dbms_tuple_cpu_us);
}

TEST_F(PeekFixture, EnginesPickDifferentAccessPathsAtSameBound) {
  // The cheap columnar row fetch keeps the index attractive at fractions
  // where the row engine must already scan. Some bound in the sweep shows
  // the divergence on identical data and an identical statement.
  const std::string sql = "SELECT val FROM big WHERE id < ?";
  std::vector<int64_t> bounds = {20, 50, 100, 200, 500, 1000, 2000};
  std::vector<std::string> row_plans, col_plans;
  for (EngineKind engine : {EngineKind::kRowHeap, EngineKind::kColumnar}) {
    MakeDb(engine);
    for (int64_t b : bounds) {
      auto plan = db_->Explain(sql, {Value::Int(b)});
      ASSERT_OK(plan.status());
      bool index = plan.value().find("IndexScan") != std::string::npos;
      (engine == EngineKind::kRowHeap ? row_plans : col_plans)
          .push_back(index ? "index" : "scan");
    }
  }
  EXPECT_NE(row_plans, col_plans) << "engines never diverged over the sweep";
  // And the divergence goes the calibrated way: columnar holds onto the
  // index at least as long as the row engine does.
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (row_plans[i] == "index") {
      EXPECT_EQ(col_plans[i], "index")
          << "row engine indexed bound " << bounds[i] << " but columnar did not";
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-range index access
// ---------------------------------------------------------------------------

TEST_F(PeekFixture, InListCompilesToMultiRangeIndexScan) {
  MakeDb(EngineKind::kRowHeap);
  db_->set_bind_peeking(true);
  const std::string sql = "SELECT id FROM big WHERE id IN (3, 4711, 9200)";
  auto plan = db_->Explain(sql, {});
  ASSERT_OK(plan.status());
  EXPECT_NE(plan.value().find("ranges=3"), std::string::npos) << plan.value();
  auto res = db_->Query(sql);
  ASSERT_OK(res.status());
  ASSERT_EQ(res.value().rows.size(), 3u);
  // Key order, each row exactly once.
  EXPECT_EQ(res.value().rows[0][0].int_value(), 3);
  EXPECT_EQ(res.value().rows[1][0].int_value(), 4711);
  EXPECT_EQ(res.value().rows[2][0].int_value(), 9200);

  // OR of ranges folds the same way, overlaps merged.
  auto res2 = db_->Query(
      "SELECT id FROM big WHERE id < 3 OR (id > 9995 AND id <= 9997)");
  ASSERT_OK(res2.status());
  EXPECT_EQ(res2.value().rows.size(), 5u);

  // Peeking off: the same IN list estimates the legacy way, no ranges.
  db_->set_bind_peeking(false);
  auto plan_off = db_->Explain(sql);
  ASSERT_OK(plan_off.status());
  EXPECT_EQ(plan_off.value().find("ranges="), std::string::npos)
      << plan_off.value();
}

// ---------------------------------------------------------------------------
// Stale statistics + estimate drift observability
// ---------------------------------------------------------------------------

TEST_F(PeekFixture, StaleStatsWarnInExplainAnalyze) {
  MakeDb(EngineKind::kRowHeap);
  auto t = db_->catalog()->GetTable("big");
  ASSERT_OK(t.status());
  EXPECT_FALSE(t.value()->stats_stale());
  // Bulk DML past the 10% threshold flips the flag without an ANALYZE.
  for (int64_t i = 10000; i < 11200; ++i) {
    ASSERT_OK(db_->InsertRow(
        "big", Row{Value::Int(i), Value::Int(0), Value::Str("p")}));
  }
  EXPECT_TRUE(t.value()->stats_stale());
  auto out = db_->ExplainAnalyze("SELECT COUNT(*) FROM big", {});
  ASSERT_OK(out.status());
  EXPECT_NE(out.value().find("Stats: big stale"), std::string::npos)
      << out.value();
  // Operator annotations carry the estimate-vs-actual drift.
  EXPECT_NE(out.value().find("est_rows="), std::string::npos) << out.value();
  EXPECT_NE(out.value().find("drift="), std::string::npos) << out.value();
  // A fresh ANALYZE clears the warning.
  ASSERT_OK(db_->Analyze("big"));
  EXPECT_FALSE(t.value()->stats_stale());
  auto out2 = db_->ExplainAnalyze("SELECT COUNT(*) FROM big", {});
  ASSERT_OK(out2.status());
  EXPECT_EQ(out2.value().find("stale"), std::string::npos) << out2.value();
}

// ---------------------------------------------------------------------------
// Peeking-off byte identity
// ---------------------------------------------------------------------------

TEST_F(PeekFixture, HistogramsAreInvisibleWhenPeekingOff) {
  MakeDb(EngineKind::kRowHeap);
  const std::vector<std::string> queries = {
      "SELECT val FROM big WHERE id < 100",
      "SELECT val FROM big WHERE id BETWEEN 10 AND 20",
      "SELECT COUNT(*) FROM big WHERE val = 3",
      "SELECT val FROM big WHERE id IN (1, 2, 3)",
      "SELECT val FROM big WHERE id < ?",
  };
  std::vector<std::string> with_hist;
  for (const std::string& q : queries) {
    auto p = db_->Explain(q);
    ASSERT_OK(p.status());
    with_hist.push_back(p.value());
  }
  // Wipe every histogram; with peeking off the plans must not change.
  for (const TableInfo* t : db_->catalog()->AllTables()) {
    for (ColumnStats& cs : const_cast<TableInfo*>(t)->stats.columns) {
      cs.hist.clear();
      cs.hist_rows = 0;
    }
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    auto p = db_->Explain(queries[i]);
    ASSERT_OK(p.status());
    EXPECT_EQ(p.value(), with_hist[i]) << queries[i];
  }
}

TEST(TpcdByteIdentityTest, ToggledPeekingLeavesTheSweepUntouched) {
  // Two identical TPC-D systems; B flips bind peeking on, plans a statement
  // under it, and flips it back off. The 17-query sweep must then be
  // byte-identical across the two systems: results, plan texts, and
  // per-query simulated times.
  constexpr double kSf = 0.002;
  tpcd::DbGen gen_a(kSf), gen_b(kSf);
  auto db_a = std::make_unique<Database>();
  auto db_b = std::make_unique<Database>();
  ASSERT_OK(tpcd::CreateTpcdSchema(db_a.get()));
  ASSERT_OK(tpcd::LoadTpcdDatabase(db_a.get(), &gen_a));
  ASSERT_OK(tpcd::CreateTpcdSchema(db_b.get()));
  ASSERT_OK(tpcd::LoadTpcdDatabase(db_b.get(), &gen_b));

  db_b->set_bind_peeking(true);
  auto peeked = db_b->Explain("SELECT COUNT(*) FROM LINEITEM WHERE L_TAX < ?",
                              {Value::Decimal(0.03)});
  ASSERT_OK(peeked.status());
  EXPECT_NE(peeked.value().find("Peek:"), std::string::npos);
  db_b->set_bind_peeking(false);

  auto q_a = tpcd::MakeRdbmsQuerySet(db_a.get());
  auto q_b = tpcd::MakeRdbmsQuerySet(db_b.get());
  tpcd::QueryParams params = tpcd::QueryParams::Defaults(kSf);
  for (int q = 1; q <= tpcd::kNumQueries; ++q) {
    SimTimer ta(*db_a->clock());
    auto ra = q_a->RunQuery(q, params);
    int64_t us_a = ta.ElapsedUs();
    SimTimer tb(*db_b->clock());
    auto rb = q_b->RunQuery(q, params);
    int64_t us_b = tb.ElapsedUs();
    ASSERT_OK(ra.status());
    ASSERT_OK(rb.status());
    EXPECT_EQ(us_a, us_b) << "Q" << q << " simulated time diverged";
    ASSERT_EQ(ra.value().rows.size(), rb.value().rows.size()) << "Q" << q;
    for (size_t r = 0; r < ra.value().rows.size(); ++r) {
      const Row& rowa = ra.value().rows[r];
      const Row& rowb = rb.value().rows[r];
      ASSERT_EQ(rowa.size(), rowb.size());
      for (size_t c = 0; c < rowa.size(); ++c) {
        EXPECT_EQ(rowa[c].ToString(), rowb[c].ToString())
            << "Q" << q << " row " << r << " col " << c;
      }
    }
  }
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
