// MVCC + row-lock tests: LockKey identity, the waits-for deadlock detector
// (two- and three-transaction cycles, deterministic youngest-victim choice),
// snapshot visibility over the version chain (insert/update/delete/ghost,
// own-transaction reads, abort reversal), transaction-end garbage
// collection, a TSan stress over concurrent chain readers/writers/GC, and
// an end-to-end Database check that an open cursor keeps its snapshot while
// autocommit DML changes the table underneath it.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "rdbms/db.h"
#include "rdbms/txn/lock_manager.h"
#include "rdbms/txn/mvcc.h"

namespace r3 {
namespace rdbms {
namespace {

using txn::LockKey;
using txn::LockManager;
using txn::LockMode;
using txn::MvccManager;
using txn::Snapshot;

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

// -- LockKey ------------------------------------------------------------------

TEST(LockKeyTest, IdentityAndHash) {
  EXPECT_TRUE(LockKey::Root() == LockKey::Root());
  EXPECT_FALSE(LockKey::Root() == LockKey::Table(0));
  EXPECT_TRUE(LockKey::Table(3) == LockKey::Table(3));
  EXPECT_FALSE(LockKey::Table(3) == LockKey::Table(4));
  EXPECT_FALSE(LockKey::Table(3) == LockKey::Row(3, 7));
  EXPECT_TRUE(LockKey::Row(3, 7) == LockKey::Row(3, 7));
  EXPECT_FALSE(LockKey::Row(3, 7) == LockKey::Row(3, 8));
  LockKey::Hash h;
  EXPECT_EQ(h(LockKey::Row(3, 7)), h(LockKey::Row(3, 7)));
  EXPECT_NE(h(LockKey::Row(3, 7)), h(LockKey::Row(3, 8)));
}

// -- Deadlock detection -------------------------------------------------------

// Runs the classic two-transaction cross acquisition and returns the id the
// detector chose as victim.
uint64_t RunTwoTxnDeadlock() {
  MetricsRegistry metrics;
  LockManager lm(&metrics);
  const LockKey a = LockKey::Row(1, 1);
  const LockKey b = LockKey::Row(1, 2);
  EXPECT_TRUE(lm.Acquire(1, a, LockMode::kX).ok());
  EXPECT_TRUE(lm.Acquire(2, b, LockMode::kX).ok());
  std::atomic<uint64_t> victim{0};
  auto cross = [&](uint64_t id, LockKey want) {
    Status st = lm.Acquire(id, want, LockMode::kX);
    if (st.code() == StatusCode::kAborted) {
      victim = id;
    } else {
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    // A real session would roll back; dropping the locks unblocks the peer.
    lm.ReleaseAll(id);
  };
  std::thread t1(cross, 1, b);
  std::thread t2(cross, 2, a);
  t1.join();
  t2.join();
  EXPECT_EQ(metrics.Value("rdbms.txn.deadlock_aborts"), 1);
  return victim.load();
}

TEST(DeadlockTest, TwoTxnCycleAbortsExactlyOne) {
  EXPECT_EQ(RunTwoTxnDeadlock(), 2u);
}

TEST(DeadlockTest, VictimIsDeterministicAcrossRuns) {
  // The detector must always sacrifice the youngest (highest-id) member of
  // the cycle, independent of thread scheduling.
  for (int run = 0; run < 5; ++run) {
    ASSERT_EQ(RunTwoTxnDeadlock(), 2u) << "run " << run;
  }
}

TEST(DeadlockTest, ThreeTxnCycleAbortsYoungest) {
  MetricsRegistry metrics;
  LockManager lm(&metrics);
  const LockKey r[3] = {LockKey::Row(1, 1), LockKey::Row(1, 2),
                        LockKey::Row(1, 3)};
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_OK(lm.Acquire(id, r[id - 1], LockMode::kX));
  }
  std::atomic<uint64_t> victim{0};
  std::atomic<int> aborted{0};
  std::vector<std::thread> threads;
  for (uint64_t id = 1; id <= 3; ++id) {
    threads.emplace_back([&, id] {
      // txn 1 wants r[1], txn 2 wants r[2], txn 3 wants r[0]: a 3-cycle.
      Status st = lm.Acquire(id, r[id % 3], LockMode::kX);
      if (st.code() == StatusCode::kAborted) {
        victim = id;
        aborted += 1;
      } else {
        EXPECT_TRUE(st.ok()) << st.ToString();
      }
      lm.ReleaseAll(id);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(aborted.load(), 1);
  EXPECT_EQ(victim.load(), 3u);
  EXPECT_EQ(metrics.Value("rdbms.txn.deadlock_aborts"), 1);
}

TEST(DeadlockTest, LockWaitMetricsAreRecorded) {
  MetricsRegistry metrics;
  LockManager lm(&metrics);
  const LockKey key = LockKey::Row(2, 5);
  ASSERT_OK(lm.Acquire(1, key, LockMode::kX));
  std::thread waiter([&] {
    ASSERT_OK(lm.Acquire(2, key, LockMode::kX));
    lm.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_EQ(metrics.Value("rdbms.txn.lock_waits"), 1);
  EXPECT_EQ(metrics.Value("rdbms.txn.deadlock_aborts"), 0);
}

// -- Snapshot visibility ------------------------------------------------------

constexpr uint32_t kFile = 9;

Rid MakeRid(uint32_t page, uint16_t slot) { return Rid{page, slot}; }

TEST(MvccVisibilityTest, InsertInvisibleUntilCommit) {
  MvccManager m;
  m.set_enabled(true);
  Rid rid = MakeRid(0, 0);
  m.BeginTxn(10);
  auto before = m.AcquireSnapshot();
  m.OnInsert(kFile, rid, 10);
  std::string alt;

  // A snapshot from before the writer began must not see the new row.
  EXPECT_EQ(m.Check(kFile, rid, *before, &alt),
            MvccManager::Visibility::kInvisible);
  // A concurrent snapshot taken while the writer is active: still invisible.
  auto during = m.AcquireSnapshot();
  EXPECT_EQ(m.Check(kFile, rid, *during, &alt),
            MvccManager::Visibility::kInvisible);
  // The writer's own statements see their insert.
  auto own = m.AcquireSnapshot(10);
  EXPECT_EQ(m.Check(kFile, rid, *own, &alt),
            MvccManager::Visibility::kCurrent);

  m.CommitTxn(10);
  auto after = m.AcquireSnapshot();
  EXPECT_EQ(m.Check(kFile, rid, *after, &alt),
            MvccManager::Visibility::kCurrent);
}

TEST(MvccVisibilityTest, UpdateServesOldVersionToOldSnapshots) {
  MvccManager m;
  m.set_enabled(true);
  Rid rid = MakeRid(1, 4);
  auto before = m.AcquireSnapshot();
  m.BeginTxn(11);
  m.OnUpdate(kFile, rid, 11, "old-image");
  std::string alt;

  // Pre-update snapshot reads the superseded image, not the heap row.
  EXPECT_EQ(m.Check(kFile, rid, *before, &alt),
            MvccManager::Visibility::kAltVersion);
  EXPECT_EQ(alt, "old-image");
  // The updater reads its own write.
  auto own = m.AcquireSnapshot(11);
  EXPECT_EQ(m.Check(kFile, rid, *own, &alt),
            MvccManager::Visibility::kCurrent);

  m.CommitTxn(11);
  // `before` still pins the old version after commit (snapshot isolation).
  EXPECT_EQ(m.Check(kFile, rid, *before, &alt),
            MvccManager::Visibility::kAltVersion);
  auto after = m.AcquireSnapshot();
  EXPECT_EQ(m.Check(kFile, rid, *after, &alt),
            MvccManager::Visibility::kCurrent);
}

TEST(MvccVisibilityTest, DeleteLeavesGhostForOldSnapshots) {
  MvccManager m;
  m.set_enabled(true);
  Rid rid = MakeRid(3, 2);
  auto before = m.AcquireSnapshot();
  m.BeginTxn(12);
  m.OnDelete(kFile, rid, 12, "ghost-image");
  m.CommitTxn(12);

  std::vector<std::pair<uint16_t, std::string>> ghosts;
  m.VisibleGhosts(kFile, 3, *before, &ghosts);
  ASSERT_EQ(ghosts.size(), 1u);
  EXPECT_EQ(ghosts[0].first, 2);
  EXPECT_EQ(ghosts[0].second, "ghost-image");

  // Post-delete snapshots observe the deletion: no ghost.
  auto after = m.AcquireSnapshot();
  ghosts.clear();
  m.VisibleGhosts(kFile, 3, *after, &ghosts);
  EXPECT_TRUE(ghosts.empty());
}

TEST(MvccVisibilityTest, GhostsSortBySlotWithinPage) {
  MvccManager m;
  m.set_enabled(true);
  auto before = m.AcquireSnapshot();
  m.BeginTxn(13);
  m.OnDelete(kFile, MakeRid(5, 7), 13, "s7");
  m.OnDelete(kFile, MakeRid(5, 1), 13, "s1");
  m.OnDelete(kFile, MakeRid(5, 4), 13, "s4");
  m.CommitTxn(13);
  std::vector<std::pair<uint16_t, std::string>> ghosts;
  m.VisibleGhosts(kFile, 5, *before, &ghosts);
  ASSERT_EQ(ghosts.size(), 3u);
  EXPECT_EQ(ghosts[0].first, 1);
  EXPECT_EQ(ghosts[1].first, 4);
  EXPECT_EQ(ghosts[2].first, 7);
}

TEST(MvccVisibilityTest, AbortRestoresPreviousState) {
  MvccManager m;
  m.set_enabled(true);
  Rid ins = MakeRid(0, 0);
  Rid upd = MakeRid(0, 1);
  Rid del = MakeRid(0, 2);
  m.BeginTxn(20);
  m.OnInsert(kFile, ins, 20);
  m.OnUpdate(kFile, upd, 20, "upd-pre");
  m.OnDelete(kFile, del, 20, "del-pre");
  EXPECT_EQ(m.live_entries(), 3u);
  m.AbortTxn(20);
  // Every version-map effect reverted: rows are plain heap rows again.
  EXPECT_EQ(m.live_entries(), 0u);
  std::string alt;
  auto snap = m.AcquireSnapshot();
  EXPECT_EQ(m.Check(kFile, upd, *snap, &alt),
            MvccManager::Visibility::kCurrent);
  std::vector<std::pair<uint16_t, std::string>> ghosts;
  m.VisibleGhosts(kFile, 0, *snap, &ghosts);
  EXPECT_TRUE(ghosts.empty());
}

// -- Garbage collection -------------------------------------------------------

TEST(MvccGcTest, CommitGcTrimsOnceNoSnapshotNeedsTheVersion) {
  MetricsRegistry metrics;
  MvccManager m(&metrics);
  m.set_enabled(true);
  Rid rid = MakeRid(2, 0);

  auto old_snap = m.AcquireSnapshot();
  m.BeginTxn(30);
  m.OnUpdate(kFile, rid, 30, "v1");
  m.CommitTxn(30);
  // Pinned by old_snap: the chain must survive this commit's GC pass.
  EXPECT_EQ(m.live_entries(), 1u);
  std::string alt;
  EXPECT_EQ(m.Check(kFile, rid, *old_snap, &alt),
            MvccManager::Visibility::kAltVersion);

  old_snap.reset();  // horizon advances
  EXPECT_GT(m.GarbageCollect(), 0u);
  EXPECT_EQ(m.live_entries(), 0u);
  EXPECT_GT(metrics.Value("rdbms.mvcc.versions_trimmed"), 0);
  EXPECT_GT(metrics.Value("rdbms.mvcc.entries_erased"), 0);
}

TEST(MvccGcTest, GhostsDieWhenDeletionIsUniversallyVisible) {
  MvccManager m;
  m.set_enabled(true);
  Rid rid = MakeRid(4, 4);
  auto old_snap = m.AcquireSnapshot();
  m.BeginTxn(31);
  m.OnDelete(kFile, rid, 31, "ghost");
  m.CommitTxn(31);
  EXPECT_EQ(m.live_entries(), 1u);  // ghost pinned by old_snap
  old_snap.reset();
  m.GarbageCollect();
  EXPECT_EQ(m.live_entries(), 0u);
  auto snap = m.AcquireSnapshot();
  std::vector<std::pair<uint16_t, std::string>> ghosts;
  m.VisibleGhosts(kFile, 4, *snap, &ghosts);
  EXPECT_TRUE(ghosts.empty());
}

TEST(MvccGcTest, LongUpdateChainsShrinkToOneEntry) {
  MvccManager m;
  m.set_enabled(true);
  Rid rid = MakeRid(6, 0);
  for (uint64_t t = 40; t < 50; ++t) {
    m.BeginTxn(t);
    m.OnUpdate(kFile, rid, t, "v" + std::to_string(t));
    m.CommitTxn(t);
  }
  // No snapshot pinned anything: each commit's GC pass kept the map small.
  m.GarbageCollect();
  EXPECT_EQ(m.live_entries(), 0u);
}

// -- Concurrency stress (the TSan meat) ---------------------------------------

TEST(MvccStressTest, ConcurrentWritersReadersAndGc) {
  MvccManager m;
  m.set_enabled(true);
  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int kIters = 200;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&m, w] {
      for (int i = 0; i < kIters; ++i) {
        uint64_t id = static_cast<uint64_t>(w) * 1000000 + i + 1;
        Rid rid = MakeRid(static_cast<uint32_t>(w), static_cast<uint16_t>(i % 32));
        m.BeginTxn(id);
        m.OnUpdate(kFile, rid, id, "img");
        if (i % 16 == 7) {
          m.OnDelete(kFile, MakeRid(static_cast<uint32_t>(w) + 100,
                                    static_cast<uint16_t>(i % 32)),
                     id, "ghost");
        }
        if (i % 5 == 0) {
          m.AbortTxn(id);
        } else {
          m.CommitTxn(id);
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&m, &stop, r] {
      std::string alt;
      std::vector<std::pair<uint16_t, std::string>> ghosts;
      uint64_t spins = 0;
      // do-while: every reader completes at least one full pass even when
      // the writers finish before this thread is first scheduled (fast
      // machines under parallel ctest load), so the spin count assertion
      // below cannot flake on scheduling.
      do {
        auto snap = m.AcquireSnapshot();
        for (uint32_t w = 0; w < kWriters; ++w) {
          for (uint16_t s = 0; s < 32; ++s) {
            (void)m.Check(kFile, MakeRid(w, s), *snap, &alt);
          }
          ghosts.clear();
          m.VisibleGhosts(kFile, w + 100, *snap, &ghosts);
        }
        ++spins;
        (void)r;
      } while (!stop.load(std::memory_order_acquire));
      EXPECT_GT(spins, 0u);
    });
  }
  std::thread gc([&m, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      m.GarbageCollect();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  gc.join();

  // All writers finished and nothing pins history: GC drains the map.
  m.GarbageCollect();
  EXPECT_EQ(m.live_txns(), 0u);
  EXPECT_EQ(m.live_entries(), 0u);
}

// -- Database integration -----------------------------------------------------

std::vector<int64_t> CollectInts(Database* db, Cursor* cur) {
  std::vector<int64_t> out;
  RowBatch batch(8);
  (void)db;
  while (true) {
    auto ok = cur->FetchBatch(&batch);
    EXPECT_TRUE(ok.ok()) << ok.status().ToString();
    if (!ok.ok() || !ok.value()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      out.push_back(batch.row(i)[0].int_value());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(MvccDatabaseTest, OpenCursorKeepsItsSnapshotAcrossAutocommitDml) {
  Database db;
  ASSERT_OK(db.Execute("CREATE TABLE T (A INTEGER)", {}, nullptr, nullptr));
  ASSERT_OK(db.EnableWal());  // turns MVCC on
  for (int64_t v = 1; v <= 3; ++v) {
    ASSERT_OK(db.Execute("INSERT INTO T (A) VALUES (" + std::to_string(v) + ")",
                         {}, nullptr, nullptr));
  }

  auto stmt = db.Prepare("SELECT A FROM T");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto cur = db.OpenCursor(stmt.value(), {});
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();

  // Mutate the table *after* the cursor pinned its snapshot.
  ASSERT_OK(db.Execute("DELETE FROM T WHERE A = 2", {}, nullptr, nullptr));
  ASSERT_OK(db.Execute("INSERT INTO T (A) VALUES (4)", {}, nullptr, nullptr));

  // The cursor sees the world as of its open: 2 alive (ghost), 4 absent.
  std::vector<int64_t> rows = CollectInts(&db, &cur.value());
  EXPECT_EQ(rows, (std::vector<int64_t>{1, 2, 3}));
  ASSERT_OK(cur.value().Close());

  // A fresh statement sees the new reality.
  auto now = db.Query("SELECT A FROM T");
  ASSERT_TRUE(now.ok()) << now.status().ToString();
  std::vector<int64_t> latest;
  for (const Row& r : now.value().rows) latest.push_back(r[0].int_value());
  std::sort(latest.begin(), latest.end());
  EXPECT_EQ(latest, (std::vector<int64_t>{1, 3, 4}));
}

TEST(MvccDatabaseTest, TxnRollbackRevertsVersionMap) {
  Database db;
  ASSERT_OK(db.Execute("CREATE TABLE T (A INTEGER)", {}, nullptr, nullptr));
  ASSERT_OK(db.EnableWal());
  ASSERT_OK(db.Execute("INSERT INTO T (A) VALUES (1)", {}, nullptr, nullptr));

  ASSERT_OK(db.Begin());
  ASSERT_OK(db.Execute("INSERT INTO T (A) VALUES (2)", {}, nullptr, nullptr));
  ASSERT_OK(db.Execute("DELETE FROM T WHERE A = 1", {}, nullptr, nullptr));
  ASSERT_OK(db.Rollback());

  auto rows = db.Query("SELECT A FROM T");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().rows.size(), 1u);
  EXPECT_EQ(rows.value().rows[0][0].int_value(), 1);
  // The version map fully unwound with the transaction.
  db.txn_manager()->mvcc()->GarbageCollect();
  EXPECT_EQ(db.txn_manager()->mvcc()->live_entries(), 0u);
  EXPECT_EQ(db.txn_manager()->mvcc()->live_txns(), 0u);
}

// -- Index vs. sequential read-path symmetry (DESIGN.md §9) -------------------

namespace symmetry {

/// T(A, B) with 256 fat rows A=1..256 and an index on A, stats analyzed so
/// an equality probe on A plans as an index scan (asserted): the filler
/// column pushes the heap to enough pages that the probe beats the scan.
void BuildIndexedTable(Database* db) {
  ASSERT_OK(db->Execute("CREATE TABLE T (A INTEGER, B CHAR(200))", {}, nullptr,
                        nullptr));
  ASSERT_OK(db->Execute("CREATE INDEX T_A ON T (A)", {}, nullptr, nullptr));
  ASSERT_OK(db->EnableWal());  // turns MVCC on
  const std::string filler(180, 'x');
  for (int64_t v = 1; v <= 256; ++v) {
    ASSERT_OK(db->Execute("INSERT INTO T (A, B) VALUES (" + std::to_string(v) +
                              ", '" + filler + "')",
                          {}, nullptr, nullptr));
  }
  ASSERT_OK(db->Analyze("T"));
  auto plan = db->Explain("SELECT A FROM T WHERE A = 2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_NE(plan.value().find("IndexScan"), std::string::npos) << plan.value();
}

}  // namespace symmetry

TEST(MvccIndexAsymmetryTest, EagerIndexDeletesMissGhostsByDefault) {
  Database db;
  symmetry::BuildIndexedTable(&db);

  auto seq_stmt = db.Prepare("SELECT A FROM T");
  auto idx_stmt = db.Prepare("SELECT A FROM T WHERE A = 2");
  ASSERT_TRUE(seq_stmt.ok() && idx_stmt.ok());
  auto seq_cur = db.OpenCursor(seq_stmt.value(), {});
  auto idx_cur = db.OpenCursor(idx_stmt.value(), {});
  ASSERT_TRUE(seq_cur.ok() && idx_cur.ok());

  ASSERT_OK(db.Execute("DELETE FROM T WHERE A = 2", {}, nullptr, nullptr));

  // The sequential scan resolves the ghost for its older snapshot...
  std::vector<int64_t> seq_rows = CollectInts(&db, &seq_cur.value());
  EXPECT_EQ(seq_rows.size(), 256u);
  EXPECT_TRUE(std::binary_search(seq_rows.begin(), seq_rows.end(), 2));
  // ...but the index probe lost its B-tree entry with the delete: the
  // documented default asymmetry.
  std::vector<int64_t> idx_rows = CollectInts(&db, &idx_cur.value());
  EXPECT_TRUE(idx_rows.empty());
}

TEST(MvccIndexAsymmetryTest, DeferredCleanupResolvesGhostsOnIndexScans) {
  DatabaseOptions opts;
  opts.mvcc_index_ghosts = true;
  Database db(nullptr, opts);
  symmetry::BuildIndexedTable(&db);

  auto idx_stmt = db.Prepare("SELECT A FROM T WHERE A = 2");
  ASSERT_TRUE(idx_stmt.ok());
  auto idx_cur = db.OpenCursor(idx_stmt.value(), {});
  ASSERT_TRUE(idx_cur.ok());

  ASSERT_OK(db.Execute("DELETE FROM T WHERE A = 2", {}, nullptr, nullptr));

  // A second delete probes the stale entry, finds the row gone, and
  // matches nothing — DML never sees ghosts.
  int64_t affected = -1;
  ASSERT_OK(db.Execute("DELETE FROM T WHERE A = 2", {}, nullptr, &affected));
  EXPECT_EQ(affected, 0);

  // The index cursor's older snapshot resolves the ghost through the
  // retained entry — same answer the sequential scan gives.
  std::vector<int64_t> idx_rows = CollectInts(&db, &idx_cur.value());
  EXPECT_EQ(idx_rows, (std::vector<int64_t>{2}));
  ASSERT_OK(idx_cur.value().Close());

  // With the pinning snapshot gone the entry drains at the next
  // transaction boundary, and fresh probes stay clean.
  ASSERT_OK(db.Begin());
  ASSERT_OK(db.Commit());
  auto now = db.Query("SELECT A FROM T WHERE A = 2");
  ASSERT_TRUE(now.ok()) << now.status().ToString();
  EXPECT_TRUE(now.value().rows.empty());
}

TEST(MvccIndexAsymmetryTest, RollbackKeepsDeferredEntriesLive) {
  DatabaseOptions opts;
  opts.mvcc_index_ghosts = true;
  Database db(nullptr, opts);
  symmetry::BuildIndexedTable(&db);

  ASSERT_OK(db.Begin());
  ASSERT_OK(db.Execute("DELETE FROM T WHERE A = 2", {}, nullptr, nullptr));
  ASSERT_OK(db.Rollback());

  // The entry was never removed and the undo did not re-insert it:
  // exactly one match, not zero, not two.
  auto rows = db.Query("SELECT A FROM T WHERE A = 2");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().rows.size(), 1u);
  EXPECT_EQ(rows.value().rows[0][0].int_value(), 2);

  // And the restored row still deletes normally afterwards.
  int64_t affected = 0;
  ASSERT_OK(db.Execute("DELETE FROM T WHERE A = 2", {}, nullptr, &affected));
  EXPECT_EQ(affected, 1);
  auto gone = db.Query("SELECT A FROM T WHERE A = 2");
  ASSERT_TRUE(gone.ok()) << gone.status().ToString();
  EXPECT_TRUE(gone.value().rows.empty());
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
