// Transactional storage tests: WAL mechanics (group flush, crash
// injection), table-level locking (including the multi-threaded paths TSan
// watches), rollback semantics through the Database session, crash recovery
// (redo winners, discard losers), and the kill-point sweep — crash at every
// WAL flush boundary during an RF1 refresh and verify the database recovers
// to exactly the committed prefix of whole orders.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/sim_clock.h"
#include "rdbms/db.h"
#include "rdbms/txn/lock_manager.h"
#include "rdbms/txn/wal.h"
#include "tpcd/loader.h"
#include "tpcd/schema.h"
#include "tpcd/update_functions.h"

namespace r3 {
namespace rdbms {
namespace {

using txn::LockManager;
using txn::LockMode;
using txn::LockSchedule;
using txn::LogRecord;
using txn::LogType;
using txn::Wal;

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

#define EXPECT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    EXPECT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

// -- WAL unit behaviour -------------------------------------------------------

TEST(WalTest, GroupFlushChargesOnePageWritePerStartedPage) {
  MetricsRegistry registry;
  SimClock clock;
  Wal wal(&clock, &registry);

  LogRecord rec;
  rec.type = LogType::kHeapInsert;
  rec.payload = std::string(100, 'x');
  EXPECT_EQ(wal.Append(rec), 1u);
  EXPECT_EQ(wal.Append(rec), 2u);
  EXPECT_EQ(wal.Append(rec), 3u);
  EXPECT_EQ(wal.flushed_lsn(), 0u);

  int64_t before_us = clock.NowMicros();
  ASSERT_OK(wal.Flush());
  EXPECT_EQ(wal.flushed_lsn(), 3u);
  EXPECT_GT(clock.NowMicros(), before_us);
  // Three small records share one log page: the group commit.
  EXPECT_EQ(registry.Value("rdbms.wal.flush_pages"), 1);
  EXPECT_EQ(registry.Value("rdbms.wal.flushes"), 1);

  // Nothing pending: not an I/O, not a flush boundary.
  ASSERT_OK(wal.Flush());
  EXPECT_EQ(registry.Value("rdbms.wal.flushes"), 1);
  EXPECT_EQ(wal.flush_attempts(), 1);

  // A large batch pays one write per started 8 KiB page.
  rec.payload = std::string(20000, 'y');
  wal.Append(std::move(rec));
  ASSERT_OK(wal.Flush());
  EXPECT_EQ(registry.Value("rdbms.wal.flush_pages"), 1 + 3);
}

TEST(WalTest, CrashInjectionLatchesAndDropUnflushedClears) {
  SimClock clock;
  MetricsRegistry registry;
  Wal wal(&clock, &registry);
  LogRecord rec;
  rec.type = LogType::kHeapInsert;
  rec.payload = "p";

  wal.Append(rec);
  ASSERT_OK(wal.Flush());  // flush 1 survives

  wal.set_crash_at_flush(1);  // relative: the next non-empty flush dies
  wal.Append(rec);
  Status st = wal.Flush();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(wal.crashed());
  // Everything fails while crashed, and nothing new became durable.
  EXPECT_FALSE(wal.Flush().ok());
  EXPECT_FALSE(wal.EnsureDurable(2).ok());
  EXPECT_EQ(wal.flushed_lsn(), 1u);

  // The crash itself: the unflushed tail is gone, the log is usable again.
  wal.DropUnflushed();
  EXPECT_FALSE(wal.crashed());
  EXPECT_EQ(wal.next_lsn(), 2u);
  ASSERT_EQ(wal.records().size(), 1u);
  wal.Append(rec);
  ASSERT_OK(wal.Flush());
  EXPECT_EQ(wal.flushed_lsn(), 2u);
}

// -- Lock manager -------------------------------------------------------------

TEST(LockManagerTest, CompatibilityMatrix) {
  using txn::LockCompatible;
  EXPECT_TRUE(LockCompatible(LockMode::kIS, LockMode::kIX));
  EXPECT_TRUE(LockCompatible(LockMode::kIX, LockMode::kIX));
  EXPECT_TRUE(LockCompatible(LockMode::kS, LockMode::kS));
  EXPECT_TRUE(LockCompatible(LockMode::kIS, LockMode::kS));
  EXPECT_FALSE(LockCompatible(LockMode::kS, LockMode::kIX));
  EXPECT_FALSE(LockCompatible(LockMode::kX, LockMode::kS));
  EXPECT_FALSE(LockCompatible(LockMode::kX, LockMode::kX));
  EXPECT_FALSE(LockCompatible(LockMode::kX, LockMode::kIS));
}

TEST(LockManagerTest, ReacquireUpgradeAndRelease) {
  using txn::LockKey;
  LockManager lm;
  const LockKey kT = LockKey::Table(1);
  const LockKey kU = LockKey::Table(2);
  ASSERT_OK(lm.Acquire(1, LockKey::Root(), LockMode::kIX));
  ASSERT_OK(lm.Acquire(1, kT, LockMode::kS));
  ASSERT_OK(lm.Acquire(1, kT, LockMode::kS));  // re-acquire: no-op
  ASSERT_OK(lm.Acquire(1, kT, LockMode::kX));  // upgrade S -> X
  EXPECT_EQ(lm.HeldCount(1), 2u);
  // Compatible sharers coexist.
  ASSERT_OK(lm.Acquire(2, LockKey::Root(), LockMode::kIX));
  ASSERT_OK(lm.Acquire(2, kU, LockMode::kX));
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldCount(1), 0u);
  EXPECT_EQ(lm.HeldCount(2), 2u);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, RowLocksOnSameTableDoNotConflict) {
  using txn::LockKey;
  LockManager lm;
  ASSERT_OK(lm.Acquire(1, LockKey::Table(7), LockMode::kIX));
  ASSERT_OK(lm.Acquire(2, LockKey::Table(7), LockMode::kIX));
  ASSERT_OK(lm.Acquire(1, LockKey::Row(7, 100), LockMode::kX));
  // Different row of the same table: no conflict, no wait.
  ASSERT_OK(lm.Acquire(2, LockKey::Row(7, 101), LockMode::kX));
  EXPECT_EQ(lm.HeldCount(1), 2u);
  EXPECT_EQ(lm.HeldCount(2), 2u);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
}

TEST(LockManagerTest, WriterBlocksReaderUntilRelease) {
  using txn::LockKey;
  LockManager lm;
  const LockKey kRow = LockKey::Row(3, 42);
  ASSERT_OK(lm.Acquire(1, kRow, LockMode::kX));
  std::atomic<bool> reader_granted{false};
  std::thread reader([&] {
    Status st = lm.Acquire(2, kRow, LockMode::kS);
    EXPECT_TRUE(st.ok()) << st.ToString();
    reader_granted = true;
  });
  // The reader must wait while the X is held. (A short sleep keeps the
  // check meaningful without making the test timing-sensitive.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(reader_granted.load());
  lm.ReleaseAll(1);
  reader.join();
  EXPECT_TRUE(reader_granted.load());
  lm.ReleaseAll(2);
}

// The TSan meat: many threads acquiring, upgrading, and releasing against a
// small resource set.
TEST(LockManagerTest, ConcurrentAcquireReleaseStress) {
  using txn::LockKey;
  LockManager lm;
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  const LockKey tables[] = {LockKey::Table(1), LockKey::Table(2),
                            LockKey::Table(3)};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lm, &tables, t] {
      for (int i = 0; i < kIters; ++i) {
        uint64_t id = static_cast<uint64_t>(t) * 100000 + i + 1;
        Status st = lm.Acquire(id, LockKey::Root(), LockMode::kIX);
        EXPECT_TRUE(st.ok()) << st.ToString();
        st = lm.Acquire(id, tables[i % 3], LockMode::kS);
        EXPECT_TRUE(st.ok()) << st.ToString();
        if (i % 4 == 0) {
          // Two txns holding S on the same table and both upgrading is a
          // genuine deadlock; the detector may pick this txn as victim.
          st = lm.Acquire(id, tables[i % 3], LockMode::kX);  // upgrade
          EXPECT_TRUE(st.ok() || st.code() == StatusCode::kAborted)
              << st.ToString();
        }
        lm.ReleaseAll(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kIters; ++i) {
      EXPECT_EQ(lm.HeldCount(static_cast<uint64_t>(t) * 100000 + i + 1), 0u);
    }
  }
}

TEST(LockScheduleTest, VirtualWaitsModelSharedAndExclusive) {
  LockSchedule sched;
  // Two overlapping readers...
  EXPECT_EQ(sched.GrantStart("T", LockMode::kS, 0), 0);
  sched.Record("T", LockMode::kS, 100);
  EXPECT_EQ(sched.GrantStart("T", LockMode::kS, 10), 10);
  sched.Record("T", LockMode::kS, 150);
  // ...a writer waits for both...
  EXPECT_EQ(sched.GrantStart("T", LockMode::kX, 20), 150);
  sched.Record("T", LockMode::kX, 200);
  // ...a later reader waits only for the writer...
  EXPECT_EQ(sched.GrantStart("T", LockMode::kS, 60), 200);
  // ...and an unrelated table is free.
  EXPECT_EQ(sched.GrantStart("U", LockMode::kX, 60), 60);
}

// -- Rollback through the Database session ------------------------------------

std::unique_ptr<Database> SmallDb() {
  auto db = std::make_unique<Database>();
  Status st = db->Execute("CREATE TABLE t (a INT, b CHAR(16))");
  EXPECT_TRUE(st.ok()) << st.ToString();
  st = db->Execute("CREATE UNIQUE INDEX t_a ON t (a)");
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (int i = 0; i < 10; ++i) {
    st = db->InsertRow("t", {Value::Int(i), Value::Str("row")});
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return db;
}

int64_t CountRows(Database* db, const std::string& where = "") {
  auto res = db->Query("SELECT COUNT(*) FROM t" +
                       (where.empty() ? "" : " WHERE " + where));
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.value().rows[0][0].AsInt();
}

TEST(TxnRollbackTest, RestoresInsertsDeletesUpdatesAndIndexes) {
  auto db = SmallDb();
  auto sum = db->TableChecksum("t");
  ASSERT_OK(sum.status());

  ASSERT_OK(db->Begin());
  EXPECT_TRUE(db->in_txn());
  ASSERT_OK(db->InsertRow("t", {Value::Int(100), Value::Str("new")}));
  int64_t affected = 0;
  ASSERT_OK(db->Execute("DELETE FROM t WHERE a = 3", {}, nullptr, &affected));
  EXPECT_EQ(affected, 1);
  ASSERT_OK(db->Execute("UPDATE t SET b = 'changed' WHERE a = 5", {}, nullptr,
                        &affected));
  EXPECT_EQ(affected, 1);
  // Key-changing update: the index entry moves and must move back.
  ASSERT_OK(db->Execute("UPDATE t SET a = 50 WHERE a = 7", {}, nullptr,
                        &affected));
  EXPECT_EQ(affected, 1);
  EXPECT_EQ(CountRows(db.get()), 10);
  EXPECT_EQ(CountRows(db.get(), "a = 100"), 1);

  ASSERT_OK(db->Rollback());
  EXPECT_FALSE(db->in_txn());
  EXPECT_EQ(CountRows(db.get()), 10);
  EXPECT_EQ(CountRows(db.get(), "a = 3"), 1);
  EXPECT_EQ(CountRows(db.get(), "a = 7"), 1);
  EXPECT_EQ(CountRows(db.get(), "a = 50"), 0);
  EXPECT_EQ(CountRows(db.get(), "a = 100"), 0);
  EXPECT_EQ(CountRows(db.get(), "b = 'changed'"), 0);
  auto sum2 = db->TableChecksum("t");
  ASSERT_OK(sum2.status());
  EXPECT_EQ(sum2.value(), sum.value());

  // The unique index holds no ghost of the rolled-back insert.
  ASSERT_OK(db->InsertRow("t", {Value::Int(100), Value::Str("again")}));
  EXPECT_EQ(CountRows(db.get(), "a = 100"), 1);
}

TEST(TxnRollbackTest, ResetsPerStatementStateLikeAnyStatement) {
  auto db = SmallDb();
  const std::string sql = "SELECT COUNT(*), SUM(a) FROM t WHERE a >= 2";
  ASSERT_TRUE(db->Query(sql).ok());  // warm

  SimTimer before(*db->clock());
  ASSERT_TRUE(db->Query(sql).ok());
  int64_t baseline_us = before.ElapsedUs();

  ASSERT_OK(db->Begin());
  ASSERT_OK(db->InsertRow("t", {Value::Int(77), Value::Str("x")}));
  ASSERT_OK(db->Rollback());

  // A rollback is a statement boundary: the next statement starts from a
  // clean per-statement epoch (operator stats, lanes) and — because the undo
  // restored the exact content — charges exactly the baseline again.
  SimTimer after(*db->clock());
  ASSERT_TRUE(db->Query(sql).ok());
  EXPECT_EQ(after.ElapsedUs(), baseline_us);
}

TEST(TxnTest, BeginInsideTxnAndCommitOutsideAreErrors) {
  auto db = SmallDb();
  EXPECT_FALSE(db->Commit().ok());
  EXPECT_FALSE(db->Rollback().ok());
  ASSERT_OK(db->Begin());
  EXPECT_FALSE(db->Begin().ok());
  ASSERT_OK(db->Commit());
}

// -- Crash recovery on a small database ---------------------------------------

TEST(RecoveryTest, CommittedTxnSurvivesCrashLoserIsDiscarded) {
  auto db = SmallDb();
  ASSERT_OK(db->EnableWal());

  ASSERT_OK(db->Begin());
  ASSERT_OK(db->InsertRow("t", {Value::Int(20), Value::Str("commit me")}));
  ASSERT_OK(db->InsertRow("t", {Value::Int(21), Value::Str("commit me")}));
  ASSERT_OK(db->Commit());
  auto sum = db->TableChecksum("t");
  ASSERT_OK(sum.status());

  // A loser: modified pages are pinned in memory by no-steal, its log
  // records never flushed.
  ASSERT_OK(db->Begin());
  ASSERT_OK(db->InsertRow("t", {Value::Int(99), Value::Str("loser")}));
  int64_t affected = 0;
  ASSERT_OK(db->Execute("DELETE FROM t WHERE a = 1", {}, nullptr, &affected));

  ASSERT_OK(db->SimulateCrash());
  EXPECT_FALSE(db->in_txn());
  ASSERT_OK(db->Recover());

  EXPECT_EQ(CountRows(db.get()), 12);
  EXPECT_EQ(CountRows(db.get(), "a = 20"), 1);
  EXPECT_EQ(CountRows(db.get(), "a = 21"), 1);
  EXPECT_EQ(CountRows(db.get(), "a = 99"), 0);
  EXPECT_EQ(CountRows(db.get(), "a = 1"), 1);
  auto sum2 = db->TableChecksum("t");
  ASSERT_OK(sum2.status());
  EXPECT_EQ(sum2.value(), sum.value());

  // The recovered database is fully usable, indexes included.
  ASSERT_OK(db->InsertRow("t", {Value::Int(99), Value::Str("post")}));
  EXPECT_EQ(CountRows(db.get(), "a = 99"), 1);
  EXPECT_FALSE(
      db->InsertRow("t", {Value::Int(20), Value::Str("dup")}).ok());
}

TEST(RecoveryTest, AutocommitIsDurableAtTheNextFlushOnly) {
  auto db = SmallDb();
  ASSERT_OK(db->EnableWal());

  // Appended but never flushed: lost by the crash — autocommit rides the
  // next group flush rather than forcing one per statement.
  ASSERT_OK(db->InsertRow("t", {Value::Int(30), Value::Str("unflushed")}));
  ASSERT_OK(db->SimulateCrash());
  ASSERT_OK(db->Recover());
  EXPECT_EQ(CountRows(db.get(), "a = 30"), 0);

  ASSERT_OK(db->InsertRow("t", {Value::Int(31), Value::Str("flushed")}));
  ASSERT_OK(db->Checkpoint());  // flushes the log (and the pool)
  ASSERT_OK(db->InsertRow("t", {Value::Int(32), Value::Str("unflushed")}));
  ASSERT_OK(db->SimulateCrash());
  ASSERT_OK(db->Recover());
  EXPECT_EQ(CountRows(db.get(), "a = 31"), 1);
  EXPECT_EQ(CountRows(db.get(), "a = 32"), 0);
}

TEST(RecoveryTest, CheckpointTruncatesTheLog) {
  auto db = SmallDb();
  ASSERT_OK(db->EnableWal());
  for (int i = 40; i < 48; ++i) {
    ASSERT_OK(db->InsertRow("t", {Value::Int(i), Value::Str("fill")}));
  }
  EXPECT_GT(db->wal()->records().size(), 8u);
  ASSERT_OK(db->Checkpoint());
  // Quiescent checkpoint: everything is in the data pages, the log holds
  // just the checkpoint record itself.
  ASSERT_EQ(db->wal()->records().size(), 1u);
  EXPECT_EQ(db->wal()->records().front().type, LogType::kCheckpoint);

  // Recovery from a truncated log is a no-op redo and still correct.
  ASSERT_OK(db->SimulateCrash());
  ASSERT_OK(db->Recover());
  EXPECT_EQ(CountRows(db.get()), 18);
}

// -- The kill-point sweep over a TPC-D refresh --------------------------------

constexpr double kSf = 0.002;

uint64_t Checksum2(Database* db) {
  auto o = db->TableChecksum("ORDERS");
  auto l = db->TableChecksum("LINEITEM");
  EXPECT_TRUE(o.ok() && l.ok());
  return o.value() ^ (l.value() * 1000003ull);
}

int64_t CommitCount(const Wal* wal) {
  int64_t n = 0;
  for (const LogRecord& rec : wal->records()) {
    if (rec.type == LogType::kCommit && rec.txn_id != 0) ++n;
  }
  return n;
}

TEST(RecoveryKillSweepTest, EveryFlushBoundaryRecoversToCommittedPrefix) {
  tpcd::DbGen gen(kSf);
  Database db;
  ASSERT_OK(tpcd::CreateTpcdSchema(&db));
  ASSERT_OK(tpcd::LoadTpcdDatabase(&db, &gen));
  int64_t count = tpcd::UpdateFunctionCount(gen);
  ASSERT_GE(count, 2) << "sweep needs at least two refresh orders";

  // Reference checksums from a shadow database: ref[j] is the state after
  // the first j refresh orders committed. Checksums are order-independent,
  // so physical placement differences between the two databases (and
  // between pre- and post-recovery heaps) do not matter.
  std::vector<uint64_t> ref(static_cast<size_t>(count) + 1);
  {
    tpcd::DbGen shadow_gen(kSf);
    Database shadow;
    ASSERT_OK(tpcd::CreateTpcdSchema(&shadow));
    ASSERT_OK(tpcd::LoadTpcdDatabase(&shadow, &shadow_gen));
    ref[0] = Checksum2(&shadow);
    for (int64_t j = 1; j <= count; ++j) {
      ASSERT_OK(tpcd::RunRefreshOrderTxn(&shadow, &shadow_gen, j - 1));
      ref[static_cast<size_t>(j)] = Checksum2(&shadow);
    }
  }

  ASSERT_OK(db.EnableWal());
  ASSERT_EQ(Checksum2(&db), ref[0]);

  bool completed_uncrashed = false;
  for (int64_t k = 1; k <= 200 && !completed_uncrashed; ++k) {
    SCOPED_TRACE(::testing::Message() << "crash at flush point " << k);
    ASSERT_OK(db.Checkpoint());
    int64_t baseline = CommitCount(db.wal());
    db.wal()->set_crash_at_flush(k);

    Status st = tpcd::RunUf1Rdbms(&db, &gen, count);
    int64_t committed;
    if (st.ok()) {
      // The injected flush point lies beyond the whole refresh: the sweep
      // covered every boundary.
      db.wal()->set_crash_at_flush(0);
      completed_uncrashed = true;
      committed = count;
    } else {
      EXPECT_EQ(st.code(), StatusCode::kIoError) << st.ToString();
      ASSERT_OK(db.SimulateCrash());
      // Durable commits are exactly those whose records survived the crash.
      committed = CommitCount(db.wal()) - baseline;
      ASSERT_OK(db.Recover());
    }
    ASSERT_GE(committed, 0);
    ASSERT_LE(committed, count);
    EXPECT_EQ(Checksum2(&db), ref[static_cast<size_t>(committed)])
        << "recovered state is not the committed prefix of " << committed
        << " orders";

    // Return to the baseline state for the next flush point.
    ASSERT_OK(tpcd::RunUf2Rdbms(&db, &gen, committed));
    ASSERT_EQ(Checksum2(&db), ref[0]);
  }
  EXPECT_TRUE(completed_uncrashed)
      << "sweep never reached a crash-free refresh run";

  // And after all that violence, a full UF1+UF2 pair still round-trips.
  tpcd::RefreshVerifier verifier;
  ASSERT_OK(verifier.Capture(&db));
  ASSERT_OK(tpcd::RunUf1Rdbms(&db, &gen, count));
  ASSERT_OK(tpcd::RunUf2Rdbms(&db, &gen, count));
  ASSERT_OK(verifier.VerifyRestored(&db));
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
