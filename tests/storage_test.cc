// Storage-engine tests: slotted pages, heap files, and the buffer pool
// (eviction, pinning, sequential/random classification, cost charging).
#include <gtest/gtest.h>

#include <vector>

#include "rdbms/storage/buffer_pool.h"
#include "rdbms/storage/heap_file.h"
#include "rdbms/storage/page.h"

namespace r3 {
namespace rdbms {
namespace {

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

// ---------------------------------------------------------------------------
// SlottedPage
// ---------------------------------------------------------------------------

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : page_(buf_) { page_.Init(); }
  char buf_[kPageSize] = {};
  SlottedPage page_;
};

TEST_F(SlottedPageTest, InsertAndRead) {
  auto s1 = page_.Insert("hello");
  auto s2 = page_.Insert("world!");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(page_.Read(s1.value()).value(), "hello");
  EXPECT_EQ(page_.Read(s2.value()).value(), "world!");
  EXPECT_EQ(page_.slot_count(), 2);
}

TEST_F(SlottedPageTest, DeleteMarksSlot) {
  uint16_t s = page_.Insert("x").value();
  ASSERT_OK(page_.Delete(s));
  EXPECT_FALSE(page_.IsLive(s));
  EXPECT_FALSE(page_.Read(s).ok());
  EXPECT_FALSE(page_.Delete(s).ok());  // double delete
}

TEST_F(SlottedPageTest, UpdateInPlaceAndGrow) {
  uint16_t s = page_.Insert("abcdef").value();
  ASSERT_OK(page_.Update(s, "xy"));  // shrink in place
  EXPECT_EQ(page_.Read(s).value(), "xy");
  ASSERT_OK(page_.Update(s, std::string(100, 'q')));  // grow, relocate
  EXPECT_EQ(page_.Read(s).value(), std::string(100, 'q'));
}

TEST_F(SlottedPageTest, FillsUntilFull) {
  std::string rec(100, 'r');
  int inserted = 0;
  while (true) {
    auto s = page_.Insert(rec);
    if (!s.ok()) break;
    ++inserted;
  }
  // 8 KiB / (100 bytes + 4-byte slot) ~ 78.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 85);
}

TEST_F(SlottedPageTest, CompactionReclaimsDeletedSpace) {
  std::string rec(400, 'a');
  std::vector<uint16_t> slots;
  while (true) {
    auto s = page_.Insert(rec);
    if (!s.ok()) break;
    slots.push_back(s.value());
  }
  // Delete every other record; a new insert must succeed via compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_OK(page_.Delete(slots[i]));
  }
  auto s = page_.Insert(std::string(600, 'b'));
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  // Survivors must be intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(page_.Read(slots[i]).value(), rec);
  }
}

TEST_F(SlottedPageTest, OversizeRecordRejected) {
  EXPECT_FALSE(page_.Insert(std::string(kPageSize, 'x')).ok());
}

TEST_F(SlottedPageTest, LiveBytesAccounting) {
  page_.Insert("12345").value();
  uint16_t s = page_.Insert("678").value();
  EXPECT_EQ(page_.LiveBytes(), 8u);
  ASSERT_OK(page_.Delete(s));
  EXPECT_EQ(page_.LiveBytes(), 5u);
}

// ---------------------------------------------------------------------------
// Disk
// ---------------------------------------------------------------------------

TEST(DiskTest, FileAndPageLifecycle) {
  Disk disk;
  uint32_t f = disk.CreateFile();
  EXPECT_EQ(disk.FilePages(f).value(), 0u);
  uint32_t p = disk.AllocatePage(f).value();
  EXPECT_EQ(p, 0u);
  char w[kPageSize] = {};
  w[0] = 'z';
  ASSERT_OK(disk.WritePage(PageId{f, p}, w));
  char r[kPageSize] = {};
  ASSERT_OK(disk.ReadPage(PageId{f, p}, r));
  EXPECT_EQ(r[0], 'z');
  EXPECT_EQ(disk.FileSizeBytes(f).value(), kPageSize);
  ASSERT_OK(disk.TruncateFile(f));
  EXPECT_EQ(disk.FilePages(f).value(), 0u);
}

TEST(DiskTest, BadIdsRejected) {
  Disk disk;
  char buf[kPageSize];
  EXPECT_FALSE(disk.ReadPage(PageId{0, 0}, buf).ok());
  EXPECT_FALSE(disk.AllocatePage(9).ok());
  uint32_t f = disk.CreateFile();
  EXPECT_FALSE(disk.ReadPage(PageId{f, 5}, buf).ok());
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : pool_(&disk_, &clock_, 16 * kPageSize) {
    file_ = disk_.CreateFile();
  }
  Disk disk_;
  SimClock clock_;
  BufferPool pool_;
  uint32_t file_ = 0;
};

TEST_F(BufferPoolTest, NewPageThenFetchHits) {
  uint32_t pn = 0;
  {
    auto h = pool_.NewPage(file_, &pn);
    ASSERT_TRUE(h.ok());
    h.value().data()[0] = 'a';
    h.value().MarkDirty();
  }
  auto h2 = pool_.FetchPage(PageId{file_, pn});
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h2.value().data()[0], 'a');
  EXPECT_EQ(pool_.stats().physical_reads, 0u);  // still resident
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  // Fill beyond capacity; first pages get evicted and must survive on disk.
  for (int i = 0; i < 40; ++i) {
    uint32_t pn = 0;
    auto h = pool_.NewPage(file_, &pn);
    ASSERT_TRUE(h.ok());
    h.value().data()[0] = static_cast<char>('A' + i % 26);
    h.value().MarkDirty();
  }
  for (int i = 0; i < 40; ++i) {
    auto h = pool_.FetchPage(PageId{file_, static_cast<uint32_t>(i)});
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h.value().data()[0], static_cast<char>('A' + i % 26)) << i;
  }
  EXPECT_GT(pool_.stats().physical_reads, 0u);
  EXPECT_GT(pool_.stats().page_writes, 0u);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  uint32_t pn = 0;
  auto pinned = pool_.NewPage(file_, &pn);
  ASSERT_TRUE(pinned.ok());
  pinned.value().data()[7] = 'P';
  // Thrash the pool.
  for (int i = 0; i < 64; ++i) {
    uint32_t other = 0;
    ASSERT_TRUE(pool_.NewPage(file_, &other).ok());
  }
  EXPECT_EQ(pinned.value().data()[7], 'P');
}

TEST_F(BufferPoolTest, ExhaustionWhenAllPinned) {
  std::vector<PageHandle> handles;
  for (int i = 0; i < 16; ++i) {
    uint32_t pn = 0;
    auto h = pool_.NewPage(file_, &pn);
    ASSERT_TRUE(h.ok());
    handles.push_back(std::move(h).value());
  }
  uint32_t pn = 0;
  EXPECT_FALSE(pool_.NewPage(file_, &pn).ok());
}

TEST_F(BufferPoolTest, SequentialVsRandomClassification) {
  for (int i = 0; i < 8; ++i) {
    uint32_t pn = 0;
    ASSERT_TRUE(pool_.NewPage(file_, &pn).ok());
  }
  ASSERT_OK(pool_.Reset());  // flush + drop, so fetches hit the disk
  pool_.ResetStats();
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool_.FetchPage(PageId{file_, i}).ok());
  }
  // First fetch is random, the following 7 sequential.
  EXPECT_EQ(pool_.stats().random_reads, 1u);
  EXPECT_EQ(pool_.stats().sequential_reads, 7u);

  ASSERT_OK(pool_.Reset());
  pool_.ResetStats();
  int64_t before = clock_.NowMicros();
  for (uint32_t i = 8; i-- > 0;) {
    ASSERT_TRUE(pool_.FetchPage(PageId{file_, i}).ok());
  }
  EXPECT_EQ(pool_.stats().random_reads, 8u);
  // Random reads charge more than sequential ones would have.
  EXPECT_GE(clock_.NowMicros() - before,
            8 * clock_.model().random_page_read_us);
}

TEST_F(BufferPoolTest, HitRatioStat) {
  uint32_t pn = 0;
  ASSERT_TRUE(pool_.NewPage(file_, &pn).ok());
  pool_.ResetStats();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool_.FetchPage(PageId{file_, pn}).ok());
  }
  EXPECT_DOUBLE_EQ(pool_.stats().HitRatio(), 1.0);
}

// ---------------------------------------------------------------------------
// HeapFile
// ---------------------------------------------------------------------------

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest()
      : pool_(&disk_, &clock_, 64 * kPageSize),
        heap_(&pool_, disk_.CreateFile()) {}
  Disk disk_;
  SimClock clock_;
  BufferPool pool_;
  HeapFile heap_;
};

TEST_F(HeapFileTest, InsertGetDelete) {
  Rid rid = heap_.Insert("record-1").value();
  std::string out;
  ASSERT_OK(heap_.Get(rid, &out));
  EXPECT_EQ(out, "record-1");
  ASSERT_OK(heap_.Delete(rid));
  EXPECT_FALSE(heap_.Get(rid, &out).ok());
}

TEST_F(HeapFileTest, SpansManyPages) {
  std::string rec(1000, 'x');
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) {
    rids.push_back(heap_.Insert(rec + std::to_string(i)).value());
  }
  EXPECT_GT(heap_.NumPages().value(), 10u);
  std::string out;
  ASSERT_OK(heap_.Get(rids[55], &out));
  EXPECT_EQ(out, rec + "55");
}

TEST_F(HeapFileTest, IteratorSeesLiveRecordsOnly) {
  std::vector<Rid> rids;
  for (int i = 0; i < 20; ++i) {
    rids.push_back(heap_.Insert("r" + std::to_string(i)).value());
  }
  ASSERT_OK(heap_.Delete(rids[3]));
  ASSERT_OK(heap_.Delete(rids[17]));
  HeapFile::Iterator it(&heap_);
  Rid rid;
  std::string rec;
  int seen = 0;
  while (it.Next(&rid, &rec).value()) {
    EXPECT_NE(rec, "r3");
    EXPECT_NE(rec, "r17");
    ++seen;
  }
  EXPECT_EQ(seen, 18);
}

TEST_F(HeapFileTest, UpdateMayRelocate) {
  // Fill a page tightly, then grow one record beyond its page.
  std::vector<Rid> rids;
  for (int i = 0; i < 7; ++i) {
    rids.push_back(heap_.Insert(std::string(1000, 'a')).value());
  }
  Rid moved = heap_.Update(rids[0], std::string(7000, 'b')).value();
  std::string out;
  ASSERT_OK(heap_.Get(moved, &out));
  EXPECT_EQ(out.size(), 7000u);
  EXPECT_EQ(out[0], 'b');
}

TEST_F(HeapFileTest, RidPackUnpack) {
  Rid rid{123456, 789};
  Rid back = Rid::Unpack(rid.Pack());
  EXPECT_EQ(back, rid);
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
