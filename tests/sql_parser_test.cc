// Lexer and parser tests: token classification, statement shapes, operator
// precedence, special forms, and error reporting.
#include <gtest/gtest.h>

#include "rdbms/sql/lexer.h"
#include "rdbms/sql/parser.h"

namespace r3 {
namespace rdbms {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto toks = Tokenize("SELECT a, 42 FROM t WHERE x <= 3.5");
  ASSERT_TRUE(toks.ok());
  const auto& v = toks.value();
  EXPECT_EQ(v[0].type, TokenType::kIdentifier);
  EXPECT_EQ(v[0].text, "SELECT");
  EXPECT_EQ(v[2].type, TokenType::kOperator);  // ','
  EXPECT_EQ(v[3].type, TokenType::kInteger);
  EXPECT_EQ(v[3].int_value, 42);
  EXPECT_EQ(v[8].text, "<=");
  EXPECT_EQ(v[9].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(v[9].float_value, 3.5);
  EXPECT_EQ(v.back().type, TokenType::kEnd);
}

TEST(LexerTest, StringsWithEscapes) {
  auto toks = Tokenize("'it''s'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].type, TokenType::kString);
  EXPECT_EQ(toks.value()[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, CommentsSkipped) {
  auto toks = Tokenize("SELECT 1 -- trailing comment\n, 2");
  ASSERT_TRUE(toks.ok());
  // SELECT 1 , 2 <end>
  EXPECT_EQ(toks.value().size(), 5u);
}

TEST(LexerTest, NotEqualsNormalized) {
  auto toks = Tokenize("a != b");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[1].text, "<>");
}

TEST(LexerTest, BadCharacterRejected) {
  EXPECT_FALSE(Tokenize("SELECT #").ok());
}

TEST(LexerTest, ScientificNotation) {
  auto toks = Tokenize("1e3 2.5E-2");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(toks.value()[0].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks.value()[1].float_value, 0.025);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

std::unique_ptr<SelectStmt> MustSelect(const std::string& sql) {
  auto r = ParseSelect(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? std::move(r).value() : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  auto s = MustSelect("SELECT a FROM t");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->items.size(), 1u);
  EXPECT_EQ(s->from.size(), 1u);
  EXPECT_EQ(s->from[0]->name, "t");
  EXPECT_EQ(s->where, nullptr);
}

TEST(ParserTest, SelectStarAndAliases) {
  auto s = MustSelect("SELECT *, a AS x, b y FROM t u");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->items[0].star);
  EXPECT_EQ(s->items[1].alias, "x");
  EXPECT_EQ(s->items[2].alias, "y");
  EXPECT_EQ(s->from[0]->alias, "u");
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto s = MustSelect("SELECT 1 + 2 * 3 FROM t");
  const Expr& e = *s->items[0].expr;
  ASSERT_EQ(e.kind, ExprKind::kArith);
  EXPECT_EQ(e.arith_op, ArithOp::kAdd);
  EXPECT_EQ(e.children[1]->arith_op, ArithOp::kMul);
}

TEST(ParserTest, LogicalPrecedence) {
  auto s = MustSelect("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
  const Expr& e = *s->where;
  ASSERT_EQ(e.kind, ExprKind::kLogic);
  EXPECT_EQ(e.logic_op, LogicOp::kOr);  // AND binds tighter
  EXPECT_EQ(e.children[1]->logic_op, LogicOp::kAnd);
}

TEST(ParserTest, SpecialPredicates) {
  auto s = MustSelect(
      "SELECT a FROM t WHERE a LIKE 'x%' AND b NOT LIKE 'y%' "
      "AND c BETWEEN 1 AND 2 AND d NOT IN (1, 2) AND e IS NOT NULL");
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(std::move(s->where), &conjuncts);
  ASSERT_EQ(conjuncts.size(), 5u);
  EXPECT_EQ(conjuncts[0]->kind, ExprKind::kLike);
  EXPECT_FALSE(conjuncts[0]->negated);
  EXPECT_TRUE(conjuncts[1]->negated);
  EXPECT_EQ(conjuncts[2]->kind, ExprKind::kBetween);
  EXPECT_EQ(conjuncts[3]->kind, ExprKind::kInList);
  EXPECT_TRUE(conjuncts[3]->negated);
  EXPECT_EQ(conjuncts[4]->kind, ExprKind::kIsNull);
  EXPECT_TRUE(conjuncts[4]->negated);
}

TEST(ParserTest, JoinsExplicitAndOuter) {
  auto s = MustSelect(
      "SELECT a FROM t JOIN u ON t.id = u.id LEFT JOIN v ON u.id = v.id");
  ASSERT_EQ(s->from.size(), 1u);
  const TableRef& outer = *s->from[0];
  EXPECT_EQ(outer.kind, TableRef::Kind::kJoin);
  EXPECT_TRUE(outer.left_outer);
  EXPECT_EQ(outer.left->kind, TableRef::Kind::kJoin);
  EXPECT_FALSE(outer.left->left_outer);
}

TEST(ParserTest, GroupHavingOrderLimit) {
  auto s = MustSelect(
      "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2 "
      "ORDER BY a DESC, 2 ASC LIMIT 10");
  EXPECT_EQ(s->group_by.size(), 1u);
  ASSERT_NE(s->having, nullptr);
  ASSERT_EQ(s->order_by.size(), 2u);
  EXPECT_FALSE(s->order_by[0].asc);
  EXPECT_TRUE(s->order_by[1].asc);
  EXPECT_EQ(s->limit, 10);
}

TEST(ParserTest, AggregatesAndDistinct) {
  auto s = MustSelect(
      "SELECT COUNT(*), COUNT(DISTINCT a), SUM(b), AVG(c), MIN(d), MAX(e) "
      "FROM t");
  EXPECT_EQ(s->items[0].expr->agg_func, AggFunc::kCountStar);
  EXPECT_EQ(s->items[1].expr->agg_func, AggFunc::kCount);
  EXPECT_TRUE(s->items[1].expr->agg_distinct);
  EXPECT_EQ(s->items[2].expr->agg_func, AggFunc::kSum);
  EXPECT_EQ(s->items[5].expr->agg_func, AggFunc::kMax);
}

TEST(ParserTest, CaseWhen) {
  auto s = MustSelect(
      "SELECT CASE WHEN a > 1 THEN 'big' WHEN a > 0 THEN 'small' "
      "ELSE 'neg' END FROM t");
  const Expr& e = *s->items[0].expr;
  EXPECT_EQ(e.kind, ExprKind::kCase);
  EXPECT_TRUE(e.case_has_else);
  EXPECT_EQ(e.children.size(), 5u);
}

TEST(ParserTest, SubqueryForms) {
  auto s = MustSelect(
      "SELECT a FROM t WHERE EXISTS (SELECT * FROM u) "
      "AND b IN (SELECT x FROM v) AND c = (SELECT MAX(y) FROM w)");
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(std::move(s->where), &conjuncts);
  EXPECT_EQ(conjuncts[0]->kind, ExprKind::kExistsSubquery);
  EXPECT_EQ(conjuncts[1]->kind, ExprKind::kInSubquery);
  EXPECT_EQ(conjuncts[2]->children[1]->kind, ExprKind::kScalarSubquery);
}

TEST(ParserTest, DateLiteralAndParams) {
  auto s = MustSelect("SELECT a FROM t WHERE d >= DATE '1995-06-17' AND x = ?");
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(std::move(s->where), &conjuncts);
  EXPECT_EQ(conjuncts[0]->children[1]->literal.type(), DataType::kDate);
  EXPECT_EQ(conjuncts[1]->children[1]->kind, ExprKind::kParam);
  EXPECT_EQ(conjuncts[1]->children[1]->param_index, 0u);
}

TEST(ParserTest, CastAndFunctions) {
  auto s = MustSelect(
      "SELECT CAST(a AS DOUBLE), YEAR(d), SUBSTR(s, 1, 3) FROM t");
  EXPECT_EQ(s->items[0].expr->kind, ExprKind::kCast);
  EXPECT_EQ(s->items[0].expr->cast_target, DataType::kDouble);
  EXPECT_EQ(s->items[1].expr->kind, ExprKind::kFunc);
  EXPECT_EQ(s->items[1].expr->func_name, "YEAR");
  EXPECT_EQ(s->items[2].expr->children.size(), 3u);
}

TEST(ParserTest, DmlStatements) {
  auto ins = ParseStatement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins.value().kind, Statement::Kind::kInsert);
  EXPECT_EQ(ins.value().insert->rows.size(), 2u);

  auto del = ParseStatement("DELETE FROM t WHERE a = 1");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.value().kind, Statement::Kind::kDelete);

  auto upd = ParseStatement("UPDATE t SET a = a + 1, b = 'z' WHERE c = 2");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd.value().update->assignments.size(), 2u);
}

TEST(ParserTest, DdlStatements) {
  auto ct = ParseStatement(
      "CREATE TABLE t (a INT NOT NULL, b CHAR(10), c DECIMAL(15,2), d DATE, "
      "PRIMARY KEY (a))");
  ASSERT_TRUE(ct.ok());
  const CreateTableStmt& stmt = *ct.value().create_table;
  EXPECT_EQ(stmt.columns.size(), 4u);
  EXPECT_FALSE(stmt.columns[0].nullable);
  EXPECT_EQ(stmt.columns[1].length, 10);
  EXPECT_EQ(stmt.primary_key.size(), 1u);

  auto ci = ParseStatement("CREATE UNIQUE INDEX i ON t (a, b)");
  ASSERT_TRUE(ci.ok());
  EXPECT_TRUE(ci.value().create_index->unique);

  auto cv = ParseStatement("CREATE VIEW v AS SELECT a FROM t");
  ASSERT_TRUE(cv.ok());
  EXPECT_EQ(cv.value().create_view->select_sql, "SELECT a FROM t");

  auto dr = ParseStatement("DROP INDEX i");
  ASSERT_TRUE(dr.ok());
  EXPECT_EQ(dr.value().drop->target, DropStmt::Target::kIndex);
}

TEST(ParserTest, ErrorsAreDescriptive) {
  auto r1 = ParseStatement("SELECT FROM t");
  EXPECT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("near"), std::string::npos);
  EXPECT_FALSE(ParseStatement("SELECT a").ok());            // missing FROM
  EXPECT_FALSE(ParseStatement("SELECT a FROM t extra garbage ,").ok());
  EXPECT_FALSE(ParseStatement("FOO BAR").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE").ok());
}

TEST(ParserTest, CloneProducesEqualTree) {
  auto s = MustSelect(
      "SELECT a, SUM(b) FROM t JOIN u ON t.i = u.i WHERE c IN (1,2) "
      "GROUP BY a ORDER BY a LIMIT 5");
  auto clone = s->Clone();
  EXPECT_EQ(clone->items.size(), s->items.size());
  EXPECT_EQ(clone->items[1].expr->ToString(), s->items[1].expr->ToString());
  EXPECT_EQ(clone->where->ToString(), s->where->ToString());
  EXPECT_EQ(clone->limit, 5);
}

}  // namespace
}  // namespace rdbms
}  // namespace r3
