// Correctness of morsel-driven intra-query parallelism: every TPC-D query,
// on every implementation path (isolated RDBMS, Native SQL, Open SQL 2.2 and
// 3.0), must produce row-for-row identical results at DOP 4 and DOP 1, and
// repeated parallel runs must report identical simulated times (the lane
// merge is deterministic by construction — this test is the enforcement).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "sap/loader.h"
#include "sap/schema.h"
#include "sap/views.h"
#include "tpcd/loader.h"
#include "tpcd/queries.h"
#include "tpcd/schema.h"
#include "tpcd/validate.h"

namespace r3 {
namespace tpcd {
namespace {

constexpr double kSf = 0.002;

// At sf 0.002 LINEITEM holds ~12k rows and ORDERS ~3k; lowering the
// parallel threshold from its 5000-row default makes Gather plans fire on
// the big tables at test scale.
constexpr uint64_t kTestParallelThreshold = 500;

constexpr int kParallelDop = 4;

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::r3::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (false)

struct Fixture {
  std::unique_ptr<rdbms::Database> rdbms_db;
  std::unique_ptr<appsys::R3System> sap22;
  std::unique_ptr<appsys::R3System> sap30;
  std::unique_ptr<DbGen> gen;
  QueryParams params;

  std::unique_ptr<IQuerySet> q_rdbms;
  std::unique_ptr<IQuerySet> q_native22;
  std::unique_ptr<IQuerySet> q_open22;
  std::unique_ptr<IQuerySet> q_native30;
  std::unique_ptr<IQuerySet> q_open30;

  static Fixture* Get() {
    static Fixture* instance = []() {
      auto* f = new Fixture();
      f->Setup();
      return f;
    }();
    return instance;
  }

  void Setup() {
    gen = std::make_unique<DbGen>(kSf);
    params = QueryParams::Defaults(kSf);

    rdbms::DatabaseOptions db_opts;
    db_opts.planner.parallel_threshold_rows = kTestParallelThreshold;
    rdbms_db = std::make_unique<rdbms::Database>(nullptr, db_opts);
    ASSERT_OK(CreateTpcdSchema(rdbms_db.get()));
    ASSERT_OK(LoadTpcdDatabase(rdbms_db.get(), gen.get()));
    q_rdbms = MakeRdbmsQuerySet(rdbms_db.get());

    auto make_sap = [&](appsys::Release release)
        -> std::unique_ptr<appsys::R3System> {
      appsys::AppServerOptions opts;
      opts.release = release;
      auto sys = std::make_unique<appsys::R3System>(opts, db_opts);
      Status st = sys->app.Bootstrap();
      EXPECT_TRUE(st.ok()) << st.ToString();
      st = sap::CreateSapSchema(&sys->app);
      EXPECT_TRUE(st.ok()) << st.ToString();
      st = sap::CreateJoinViews(&sys->app);
      EXPECT_TRUE(st.ok()) << st.ToString();
      sap::SapLoader loader(&sys->app, gen.get());
      st = loader.FastLoadAll();
      EXPECT_TRUE(st.ok()) << st.ToString();
      return sys;
    };
    sap22 = make_sap(appsys::Release::kRelease22);
    q_native22 = MakeNativeQuerySet(&sap22->app);
    q_open22 = MakeOpen22QuerySet(&sap22->app);

    sap30 = make_sap(appsys::Release::kRelease30);
    Status st = sap30->app.dictionary()->ConvertToTransparent(
        "KONV", appsys::Release::kRelease30);
    EXPECT_TRUE(st.ok()) << st.ToString();
    q_native30 = MakeNativeQuerySet(&sap30->app);
    q_open30 = MakeOpen30QuerySet(&sap30->app);
  }

  struct Variant {
    const char* name;
    IQuerySet* set;
    rdbms::Database* db;
  };

  std::vector<Variant> Variants() {
    return {
        {"rdbms", q_rdbms.get(), rdbms_db.get()},
        {"native22", q_native22.get(), &sap22->db},
        {"open22", q_open22.get(), &sap22->db},
        {"native30", q_native30.get(), &sap30->db},
        {"open30", q_open30.get(), &sap30->db},
    };
  }
};

class ParallelEquivalenceTest : public ::testing::TestWithParam<int> {};

// Gather emits rows in morsel order (= serial heap order) and parallel
// aggregation emits groups in encoded-key order (= serial order), so the
// comparison is ordered for every query: DOP must not reorder anything.
TEST_P(ParallelEquivalenceTest, Dop4MatchesDop1RowForRow) {
  int q = GetParam();
  Fixture* f = Fixture::Get();

  for (const Fixture::Variant& v : f->Variants()) {
    v.db->set_dop(1);
    auto serial = v.set->RunQuery(q, f->params);
    ASSERT_TRUE(serial.ok()) << v.name << " Q" << q << " (dop 1): "
                             << serial.status().ToString();

    v.db->set_dop(kParallelDop);
    auto parallel = v.set->RunQuery(q, f->params);
    v.db->set_dop(1);
    ASSERT_TRUE(parallel.ok()) << v.name << " Q" << q << " (dop 4): "
                               << parallel.status().ToString();

    std::string diff;
    EXPECT_TRUE(ResultsEquivalent(serial.value(), parallel.value(),
                                  /*ordered=*/true, &diff))
        << v.name << " Q" << q << " dop 4 differs from dop 1: " << diff
        << "\n(serial rows=" << serial.value().rows.size()
        << ", parallel rows=" << parallel.value().rows.size() << ")";
  }
}

// Repeated parallel runs must report identical simulated times: lane
// assignment is static and the merge takes the critical path, so simulated
// cost is a function of the plan, never of thread scheduling.
TEST_P(ParallelEquivalenceTest, Dop4SimulatedTimeIsDeterministic) {
  int q = GetParam();
  Fixture* f = Fixture::Get();

  for (const Fixture::Variant& v : f->Variants()) {
    v.db->set_dop(kParallelDop);

    // Warm-up run: populates the prepared-statement cache so both timed
    // runs see the same soft-parse path. Each timed run then starts from an
    // identical cold buffer pool — simulated time is a function of pool
    // state, and this test isolates the threading contribution.
    auto warm = v.set->RunQuery(q, f->params);
    ASSERT_TRUE(warm.ok()) << v.name << " Q" << q << ": "
                           << warm.status().ToString();

    ASSERT_OK(v.db->pool()->Reset());
    SimTimer t1(*v.db->clock());
    auto r1 = v.set->RunQuery(q, f->params);
    int64_t us1 = t1.ElapsedUs();

    ASSERT_OK(v.db->pool()->Reset());
    SimTimer t2(*v.db->clock());
    auto r2 = v.set->RunQuery(q, f->params);
    int64_t us2 = t2.ElapsedUs();

    v.db->set_dop(1);
    ASSERT_TRUE(r1.ok()) << v.name << " Q" << q << ": "
                         << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << v.name << " Q" << q << ": "
                         << r2.status().ToString();

    EXPECT_EQ(us1, us2) << v.name << " Q" << q
                        << ": repeated dop-4 runs disagree on simulated time";

    // Row payloads must be bit-identical across repeats at the same DOP.
    ASSERT_EQ(r1.value().rows.size(), r2.value().rows.size())
        << v.name << " Q" << q;
    for (size_t i = 0; i < r1.value().rows.size(); ++i) {
      const rdbms::Row& a = r1.value().rows[i];
      const rdbms::Row& b = r2.value().rows[i];
      ASSERT_EQ(a.size(), b.size()) << v.name << " Q" << q << " row " << i;
      for (size_t c = 0; c < a.size(); ++c) {
        EXPECT_EQ(a[c].ToString(), b[c].ToString())
            << v.name << " Q" << q << " row " << i << " col " << c;
      }
    }
  }
}

// Batch capacity is a wall-clock knob only: every query must return
// row-for-row identical results and bit-identical simulated times when
// executed one row at a time (batch 1, the legacy Volcano shape) and with
// the default 1024-row batches — at DOP 1 and DOP 4 alike.
TEST_P(ParallelEquivalenceTest, BatchSizeInvariantResultsAndSimTime) {
  int q = GetParam();
  Fixture* f = Fixture::Get();

  for (const Fixture::Variant& v : f->Variants()) {
    for (int dop : {1, kParallelDop}) {
      v.db->set_dop(dop);
      auto warm = v.set->RunQuery(q, f->params);
      ASSERT_TRUE(warm.ok()) << v.name << " Q" << q << ": "
                             << warm.status().ToString();

      const size_t batch_sizes[2] = {1, rdbms::kDefaultBatchRows};
      int64_t us[2] = {0, 0};
      rdbms::QueryResult results[2];
      for (int k = 0; k < 2; ++k) {
        v.db->set_batch_rows(batch_sizes[k]);
        ASSERT_OK(v.db->pool()->Reset());
        SimTimer t(*v.db->clock());
        auto r = v.set->RunQuery(q, f->params);
        us[k] = t.ElapsedUs();
        ASSERT_TRUE(r.ok()) << v.name << " Q" << q << " (batch "
                            << batch_sizes[k] << "): "
                            << r.status().ToString();
        results[k] = std::move(r.value());
      }
      v.db->set_batch_rows(rdbms::kDefaultBatchRows);

      EXPECT_EQ(us[0], us[1])
          << v.name << " Q" << q << " dop " << dop << ": batch-1 simulated "
          << us[0] << "us vs batch-" << rdbms::kDefaultBatchRows << " "
          << us[1] << "us";
      std::string diff;
      EXPECT_TRUE(ResultsEquivalent(results[0], results[1],
                                    /*ordered=*/true, &diff))
          << v.name << " Q" << q << " dop " << dop
          << " batch 1 differs from batch " << rdbms::kDefaultBatchRows
          << ": " << diff;
    }
    v.db->set_dop(1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ParallelEquivalenceTest,
                         ::testing::Range(1, kNumQueries + 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(ParallelPlanTest, GatherAppearsOnlyAboveThresholdAndDop) {
  Fixture* f = Fixture::Get();
  rdbms::Database* db = f->rdbms_db.get();

  const std::string big_agg =
      "SELECT COUNT(*), SUM(L_QUANTITY) FROM LINEITEM";

  db->set_dop(1);
  auto serial_plan = db->Explain(big_agg);
  ASSERT_TRUE(serial_plan.ok()) << serial_plan.status().ToString();
  EXPECT_EQ(serial_plan.value().find("Gather"), std::string::npos)
      << serial_plan.value();

  db->set_dop(kParallelDop);
  auto parallel_plan = db->Explain(big_agg);
  ASSERT_TRUE(parallel_plan.ok()) << parallel_plan.status().ToString();
  EXPECT_NE(parallel_plan.value().find("Gather(dop=4)"), std::string::npos)
      << parallel_plan.value();
  EXPECT_NE(parallel_plan.value().find("PartialHashAggregate"),
            std::string::npos)
      << parallel_plan.value();
  EXPECT_NE(parallel_plan.value().find("ParallelSeqScan"), std::string::npos)
      << parallel_plan.value();

  // Small tables stay serial even at dop 4 (below the row threshold).
  auto small_plan = db->Explain("SELECT COUNT(*) FROM SUPPLIER");
  ASSERT_TRUE(small_plan.ok()) << small_plan.status().ToString();
  EXPECT_EQ(small_plan.value().find("Gather"), std::string::npos)
      << small_plan.value();

  // DISTINCT aggregates cannot be merged from partial states: the scan may
  // still parallelize (row-mode Gather), but the aggregation itself must
  // stay a serial HashAggregate above it.
  auto distinct_plan =
      db->Explain("SELECT COUNT(DISTINCT L_SUPPKEY) FROM LINEITEM");
  ASSERT_TRUE(distinct_plan.ok()) << distinct_plan.status().ToString();
  EXPECT_EQ(distinct_plan.value().find("PartialHashAggregate"),
            std::string::npos)
      << distinct_plan.value();
  EXPECT_NE(distinct_plan.value().find("HashAggregate"), std::string::npos)
      << distinct_plan.value();
  db->set_dop(1);
}

TEST(ParallelPlanTest, ParallelAggregateIsFasterInSimulatedTime) {
  Fixture* f = Fixture::Get();
  rdbms::Database* db = f->rdbms_db.get();
  const std::string q6 =
      "SELECT SUM(L_EXTENDEDPRICE * L_DISCOUNT) FROM LINEITEM "
      "WHERE L_QUANTITY < 24";

  db->set_dop(1);
  SimTimer ts(*db->clock());
  auto serial = db->Query(q6);
  int64_t serial_us = ts.ElapsedUs();
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  db->set_dop(kParallelDop);
  SimTimer tp(*db->clock());
  auto parallel = db->Query(q6);
  int64_t parallel_us = tp.ElapsedUs();
  db->set_dop(1);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  std::string diff;
  EXPECT_TRUE(ResultsEquivalent(serial.value(), parallel.value(),
                                /*ordered=*/true, &diff))
      << diff;
  // The acceptance bar for the bench is 2x at DOP 4; leave headroom here
  // for the fixed (unparallelized) plan overhead at tiny scale.
  EXPECT_LT(parallel_us * 2, serial_us)
      << "dop 4 simulated " << parallel_us << "us vs serial " << serial_us
      << "us";
}

}  // namespace
}  // namespace tpcd
}  // namespace r3
