// Unit tests for the common layer: Status/Result, SimClock, duration
// formatting, the deterministic RNG, calendar dates, and string utilities.
#include <gtest/gtest.h>

#include <set>

#include "common/date.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/str_util.h"

namespace r3 {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("no table T");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "no table T");
  EXPECT_EQ(st.ToString(), "NotFound: no table T");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kConstraintViolation, StatusCode::kUnsupported,
        StatusCode::kInternal, StatusCode::kIoError}) {
    EXPECT_STRNE(StatusCodeName(c), "Unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

Status UseParse(int v, int* out) {
  R3_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  return Status::OK();
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParse(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseParse(-5, &out).ok());
}

// ---------------------------------------------------------------------------
// SimClock
// ---------------------------------------------------------------------------

TEST(SimClockTest, AccumulatesCharges) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.ChargeRoundTrip();
  clock.ChargeTupleShip(10);
  EXPECT_EQ(clock.NowMicros(),
            clock.model().rpc_round_trip_us + 10 * clock.model().tuple_ship_us);
}

TEST(SimClockTest, TimerMeasuresSpan) {
  SimClock clock;
  clock.Charge(100);
  SimTimer t(clock);
  clock.Charge(250);
  EXPECT_EQ(t.ElapsedUs(), 250);
}

TEST(SimClockTest, CustomModel) {
  CostModel m;
  m.rpc_round_trip_us = 7;
  SimClock clock(m);
  clock.ChargeRoundTrip();
  EXPECT_EQ(clock.NowMicros(), 7);
}

TEST(FormatDurationTest, PaperStyleRendering) {
  EXPECT_EQ(FormatDuration(0), "<1s");
  EXPECT_EQ(FormatDuration(999999), "<1s");
  EXPECT_EQ(FormatDuration(34 * 1000000LL), "34s");
  EXPECT_EQ(FormatDuration((5 * 60 + 17) * 1000000LL), "5m 17s");
  EXPECT_EQ(FormatDuration(((2 * 60 + 14) * 60 + 56) * 1000000LL), "2h 14m 56s");
  EXPECT_EQ(FormatDuration((((25 * 24 + 19) * 60 + 55) * 60) * 1000000LL),
            "25d 19h 55m");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Uniform(-5, 12);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 12);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.Uniform(5, 5), 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(RngTest, AlphaStringRespectsLengths) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    std::string s = rng.AlphaString(3, 8);
    EXPECT_GE(s.size(), 3u);
    EXPECT_LE(s.size(), 8u);
    for (char c : s) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

// ---------------------------------------------------------------------------
// date
// ---------------------------------------------------------------------------

TEST(DateTest, EpochIsZero) { EXPECT_EQ(date::FromYmd(1970, 1, 1), 0); }

TEST(DateTest, KnownDates) {
  EXPECT_EQ(date::FromYmd(1970, 1, 2), 1);
  EXPECT_EQ(date::ToString(date::FromYmd(1995, 6, 17)), "1995-06-17");
}

TEST(DateTest, RoundTripSweep) {
  // Every 13th day across the TPC-D era.
  for (int32_t dn = date::FromYmd(1992, 1, 1); dn <= date::FromYmd(1999, 1, 1);
       dn += 13) {
    int y, m, d;
    date::ToYmd(dn, &y, &m, &d);
    EXPECT_EQ(date::FromYmd(y, m, d), dn);
  }
}

TEST(DateTest, LeapYearRules) {
  EXPECT_TRUE(date::IsValid(1996, 2, 29));
  EXPECT_FALSE(date::IsValid(1997, 2, 29));
  EXPECT_FALSE(date::IsValid(1900, 2, 29));  // century rule
  EXPECT_TRUE(date::IsValid(2000, 2, 29));   // 400 rule
}

TEST(DateTest, InvalidDatesRejected) {
  EXPECT_FALSE(date::IsValid(1995, 0, 1));
  EXPECT_FALSE(date::IsValid(1995, 13, 1));
  EXPECT_FALSE(date::IsValid(1995, 4, 31));
  EXPECT_FALSE(date::IsValid(1995, 1, 0));
}

TEST(DateTest, ParseAndErrors) {
  auto ok = date::Parse("1996-02-29");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(date::ToString(ok.value()), "1996-02-29");
  EXPECT_FALSE(date::Parse("not a date").ok());
  EXPECT_FALSE(date::Parse("1997-02-29").ok());
  EXPECT_FALSE(date::Parse("1995-06-17x").ok());
}

TEST(DateTest, AddMonthsClampsDay) {
  int32_t jan31 = date::FromYmd(1996, 1, 31);
  EXPECT_EQ(date::ToString(date::AddMonths(jan31, 1)), "1996-02-29");
  EXPECT_EQ(date::ToString(date::AddMonths(jan31, 13)), "1997-02-28");
  EXPECT_EQ(date::ToString(date::AddMonths(jan31, -1)), "1995-12-31");
}

TEST(DateTest, YearMonthExtraction) {
  int32_t d = date::FromYmd(1998, 12, 1);
  EXPECT_EQ(date::Year(d), 1998);
  EXPECT_EQ(date::Month(d), 12);
}

// ---------------------------------------------------------------------------
// str
// ---------------------------------------------------------------------------

TEST(StrTest, CaseConversion) {
  EXPECT_EQ(str::ToUpper("aBc123"), "ABC123");
  EXPECT_EQ(str::ToLower("aBc123"), "abc123");
  EXPECT_TRUE(str::EqualsIgnoreCase("Hello", "hELLO"));
  EXPECT_FALSE(str::EqualsIgnoreCase("Hello", "Hellos"));
}

TEST(StrTest, TrimAndPad) {
  EXPECT_EQ(str::Trim("  x y  "), "x y");
  EXPECT_EQ(str::Trim(""), "");
  EXPECT_EQ(str::PadTo("ab", 5), "ab   ");
  EXPECT_EQ(str::PadTo("abcdef", 4), "abcd");
  EXPECT_EQ(str::RTrim("ab   "), "ab");
  EXPECT_EQ(str::RTrim("   "), "");
}

TEST(StrTest, SplitJoin) {
  auto parts = str::Split("a|b||c", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(str::Join(parts, "|"), "a|b||c");
  EXPECT_EQ(str::Split("", ',').size(), 1u);
}

TEST(StrTest, LikeMatchBasics) {
  EXPECT_TRUE(str::LikeMatch("hello", "hello"));
  EXPECT_FALSE(str::LikeMatch("hello", "hell"));
  EXPECT_TRUE(str::LikeMatch("hello", "h%o"));
  EXPECT_TRUE(str::LikeMatch("hello", "%"));
  EXPECT_TRUE(str::LikeMatch("", "%"));
  EXPECT_FALSE(str::LikeMatch("", "_"));
  EXPECT_TRUE(str::LikeMatch("hello", "_ello"));
  EXPECT_TRUE(str::LikeMatch("hello", "he__o"));
}

TEST(StrTest, LikeMatchBacktracking) {
  // Multiple %s requiring backtracking over the last star.
  EXPECT_TRUE(str::LikeMatch("Customer blah Complaints", "%Customer%Complaints%"));
  EXPECT_FALSE(str::LikeMatch("Customer blah Recommends", "%Customer%Complaints%"));
  EXPECT_TRUE(str::LikeMatch("aXbXc", "a%b%c"));
  EXPECT_TRUE(str::LikeMatch("abcabc", "%abc"));
  EXPECT_TRUE(str::LikeMatch("PROMO BRUSHED TIN", "PROMO%"));
  EXPECT_FALSE(str::LikeMatch("ECONOMY PROMO TIN", "PROMO%"));
}

TEST(StrTest, FormatAndSapKey) {
  EXPECT_EQ(str::Format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(str::SapKey(42, 10), "0000000042");
  EXPECT_EQ(str::SapKey(0, 3), "000");
  EXPECT_EQ(str::SapKey(123456, 6), "123456");
}

}  // namespace
}  // namespace r3
