#ifndef R3DB_RDBMS_ROW_BATCH_H_
#define R3DB_RDBMS_ROW_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "rdbms/row.h"

namespace r3 {
namespace rdbms {

/// Default number of rows exchanged per operator call (DatabaseOptions can
/// override; 1 reproduces the legacy row-at-a-time pipeline shape).
inline constexpr size_t kDefaultBatchRows = 1024;

/// Indices of batch rows surviving a predicate, ascending.
using SelVector = std::vector<uint32_t>;

/// A batch of rows exchanged between operators.
///
/// The container owns a pool of Row slots that is never shrunk: clearing or
/// resetting a batch keeps every slot's Value storage, so a slot reused
/// across batches re-fills without re-allocating (this is where most of the
/// batch pipeline's wall-clock win over row-at-a-time comes from, next to
/// amortized virtual dispatch).
///
/// `capacity` is a fill limit, not a storage bound: producers append at most
/// `capacity()` rows per fill. Operators honour the *caller's* capacity so
/// early-exit consumers (LIMIT, EXISTS, scalar subqueries) pull exactly the
/// rows the row-at-a-time engine would have pulled — the simulated-cost
/// identity argument in DESIGN.md §6 depends on this.
class RowBatch {
 public:
  RowBatch() = default;
  explicit RowBatch(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  /// Empties the batch and sets a new fill limit; slot storage is kept.
  void Reset(size_t capacity) {
    capacity_ = capacity;
    size_ = 0;
  }

  /// Empties the batch; capacity and slot storage are kept.
  void Clear() { size_ = 0; }

  /// Appends an empty row slot and returns it for in-place filling. The
  /// returned reference is invalidated by the next Append/Push call.
  Row& AppendRow() {
    if (slots_.size() <= size_) slots_.emplace_back();
    Row& slot = slots_[size_++];
    slot.clear();
    return slot;
  }

  /// Appends by move (the slot's previous storage is dropped).
  void PushRow(Row&& row) {
    if (slots_.size() <= size_) slots_.emplace_back();
    slots_[size_++] = std::move(row);
  }

  /// Drops the most recently appended row (its slot storage is kept).
  void PopRow() { --size_; }

  Row& row(size_t i) { return slots_[i]; }
  const Row& row(size_t i) const { return slots_[i]; }

  void Truncate(size_t n) {
    if (n < size_) size_ = n;
  }

  /// Compacts the tail [first, size) down to the rows selected by `sel`
  /// (absolute ascending indices >= first); rows before `first` are kept.
  /// Swaps slots instead of copying so dropped slots keep their storage.
  void Keep(const SelVector& sel, size_t first = 0) {
    size_t w = first;
    for (uint32_t idx : sel) {
      if (idx != w) slots_[w].swap(slots_[idx]);
      ++w;
    }
    size_ = w;
  }

 private:
  std::vector<Row> slots_;
  size_t size_ = 0;
  size_t capacity_ = kDefaultBatchRows;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_ROW_BATCH_H_
