#include "rdbms/row.h"

#include <cstring>

#include "common/str_util.h"

namespace r3 {
namespace rdbms {

namespace {

void AppendFixedInt(std::string* out, uint64_t v, size_t bytes) {
  // Little-endian fixed-width.
  for (size_t i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t ReadFixedInt(const char* p, size_t bytes) {
  uint64_t v = 0;
  for (size_t i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

int64_t SignExtend(uint64_t v, size_t bytes) {
  if (bytes == 8) return static_cast<int64_t>(v);
  uint64_t sign_bit = 1ULL << (8 * bytes - 1);
  if (v & sign_bit) {
    v |= ~((sign_bit << 1) - 1);
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Status SerializeRow(const Schema& schema, const Row& row, std::string* out) {
  if (row.size() != schema.NumColumns()) {
    return Status::Internal(
        str::Format("row has %zu values, schema has %zu columns", row.size(),
                    schema.NumColumns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = schema.column(i);
    const Value& v = row[i];
    if (v.is_null()) {
      out->push_back(1);
      continue;
    }
    out->push_back(0);
    switch (col.type) {
      case DataType::kBool:
        out->push_back(v.bool_value() ? 1 : 0);
        break;
      case DataType::kInt64:
        AppendFixedInt(out, static_cast<uint64_t>(v.int_value()),
                       col.length == 4 ? 4 : 8);
        break;
      case DataType::kDouble: {
        double d = v.double_value();
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        AppendFixedInt(out, bits, 8);
        break;
      }
      case DataType::kDecimal:
        AppendFixedInt(out, static_cast<uint64_t>(v.decimal_cents()), 8);
        break;
      case DataType::kDate:
        AppendFixedInt(out, static_cast<uint32_t>(v.date_value()), 4);
        break;
      case DataType::kString: {
        const std::string& s = v.string_value();
        if (col.length > 0) {
          out->append(str::PadTo(s, col.length));
        } else {
          if (s.size() > 0xffff) {
            return Status::OutOfRange("VARCHAR value exceeds 64 KiB");
          }
          AppendFixedInt(out, s.size(), 2);
          out->append(s);
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status DeserializeRow(const Schema& schema, std::string_view data, Row* row) {
  row->clear();
  row->reserve(schema.NumColumns());
  size_t pos = 0;
  auto need = [&](size_t n) -> bool { return pos + n <= data.size(); };
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    const Column& col = schema.column(i);
    if (!need(1)) return Status::Internal("row truncated (null byte)");
    bool is_null = data[pos++] != 0;
    if (is_null) {
      row->push_back(Value::Null(col.type));
      continue;
    }
    switch (col.type) {
      case DataType::kBool:
        if (!need(1)) return Status::Internal("row truncated (bool)");
        row->push_back(Value::Bool(data[pos++] != 0));
        break;
      case DataType::kInt64: {
        size_t w = col.length == 4 ? 4 : 8;
        if (!need(w)) return Status::Internal("row truncated (int)");
        row->push_back(Value::Int(SignExtend(ReadFixedInt(data.data() + pos, w), w)));
        pos += w;
        break;
      }
      case DataType::kDouble: {
        if (!need(8)) return Status::Internal("row truncated (double)");
        uint64_t bits = ReadFixedInt(data.data() + pos, 8);
        pos += 8;
        double d;
        std::memcpy(&d, &bits, 8);
        row->push_back(Value::Dbl(d));
        break;
      }
      case DataType::kDecimal: {
        if (!need(8)) return Status::Internal("row truncated (decimal)");
        row->push_back(Value::DecimalFromCents(
            static_cast<int64_t>(ReadFixedInt(data.data() + pos, 8))));
        pos += 8;
        break;
      }
      case DataType::kDate: {
        if (!need(4)) return Status::Internal("row truncated (date)");
        row->push_back(Value::Date(static_cast<int32_t>(
            SignExtend(ReadFixedInt(data.data() + pos, 4), 4))));
        pos += 4;
        break;
      }
      case DataType::kString: {
        if (col.length > 0) {
          if (!need(col.length)) return Status::Internal("row truncated (char)");
          row->push_back(
              Value::Str(str::RTrim(data.substr(pos, col.length))));
          pos += col.length;
        } else {
          if (!need(2)) return Status::Internal("row truncated (varlen)");
          size_t len = ReadFixedInt(data.data() + pos, 2);
          pos += 2;
          if (!need(len)) return Status::Internal("row truncated (varchar)");
          row->push_back(Value::Str(std::string(data.substr(pos, len))));
          pos += len;
        }
        break;
      }
    }
  }
  if (pos != data.size()) {
    return Status::Internal("trailing bytes after row");
  }
  return Status::OK();
}

size_t SerializedRowSize(const Schema& schema, const Row& row) {
  size_t n = 0;
  for (size_t i = 0; i < row.size() && i < schema.NumColumns(); ++i) {
    n += 1;  // null byte
    if (!row[i].is_null()) n += schema.column(i).StoredSize(row[i]);
  }
  return n;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace rdbms
}  // namespace r3
