#ifndef R3DB_RDBMS_SCHEMA_H_
#define R3DB_RDBMS_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdbms/value.h"

namespace r3 {
namespace rdbms {

/// A column declaration.
struct Column {
  std::string name;
  DataType type = DataType::kInt64;
  /// For kString: declared CHAR width (fixed, blank padded) — 0 means
  /// VARCHAR. For kInt64: stored byte width (4 or 8; the original TPC-D
  /// schema uses 4-byte integer keys, which matters for Table 2's size
  /// comparison). Ignored for other types.
  uint16_t length = 0;
  bool nullable = true;

  /// Bytes this column occupies in a serialized row (excluding null byte).
  size_t StoredSize(const Value& v) const;
};

/// Convenience constructors for schema literals.
Column ColInt(std::string name, uint16_t byte_width = 8);
Column ColDouble(std::string name);
Column ColDecimal(std::string name);
Column ColChar(std::string name, uint16_t width);
Column ColVarchar(std::string name);
Column ColDate(std::string name);
Column ColBool(std::string name);

/// An ordered set of columns with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t NumColumns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of `name` (case-insensitive), or error.
  Result<size_t> IndexOf(const std::string& name) const;

  /// True if the schema has a column named `name`.
  bool Contains(const std::string& name) const;

  /// Appends a column (used by schema builders); name must be new.
  Status AddColumn(Column c);

  /// Schema of `this` ++ `other` (join output).
  Schema Concat(const Schema& other) const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> index_;  // upper-cased name -> idx
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_SCHEMA_H_
