#include "rdbms/index/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "common/str_util.h"

namespace r3 {
namespace rdbms {

namespace {

// Node layout (within one kPageSize frame):
//   [0]     uint8  is_leaf
//   [1]     pad
//   [2..4)  uint16 nkeys
//   [4..8)  uint32 link: next-leaf page for leaves (kNoPage = none),
//                        leftmost child for internal nodes
//   [8..10) uint16 data_start (record area grows down from kPageSize)
//   [10..)  slot array: uint16 entry offset, in key order
// Entry at offset: uint16 key_len, key bytes, uint64 payload (LE).
//
// Leaf entries are (user key, payload) ordered by (key, payload).
// Internal separators are the *augmented* key `user_key || be64(payload)` of
// the first entry of the right sibling, so duplicates that straddle a split
// keep a total order; the entry payload is the child page. Navigation uses
// "first separator strictly greater than the search bytes" — a plain user
// key (a strict prefix of every augmented separator with the same user key)
// therefore descends to the leftmost leaf that can contain it.

constexpr size_t kHeaderSize = 10;
constexpr uint32_t kNoPage = 0xffffffffu;

void AppendBe64(uint64_t v, std::string* out) {
  for (int i = 7; i >= 0; --i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::string AugmentedKey(std::string_view key, uint64_t payload) {
  std::string out(key);
  AppendBe64(payload, &out);
  return out;
}

class Node {
 public:
  explicit Node(char* p) : p_(p) {}

  void Init(bool is_leaf) {
    p_[0] = is_leaf ? 1 : 0;
    p_[1] = 0;
    Put16(2, 0);
    Put32(4, kNoPage);
    Put16(8, static_cast<uint16_t>(kPageSize));
  }

  bool is_leaf() const { return p_[0] != 0; }
  uint16_t nkeys() const { return Get16(2); }
  uint32_t link() const { return Get32(4); }
  void set_link(uint32_t v) { Put32(4, v); }

  std::string_view Key(uint16_t i) const {
    uint16_t off = SlotOffset(i);
    uint16_t klen = Get16(off);
    return std::string_view(p_ + off + 2, klen);
  }

  uint64_t Payload(uint16_t i) const {
    uint16_t off = SlotOffset(i);
    uint16_t klen = Get16(off);
    uint64_t v = 0;
    std::memcpy(&v, p_ + off + 2 + klen, 8);
    return v;
  }

  size_t FreeSpace() const {
    size_t dir_end = kHeaderSize + nkeys() * 2;
    uint16_t start = Get16(8);
    return start > dir_end ? start - dir_end : 0;
  }

  static size_t EntrySize(size_t key_len) { return 2 + key_len + 8 + 2; }

  bool Fits(size_t key_len) const { return FreeSpace() >= EntrySize(key_len); }

  /// Leaf ordering: first index i with (Key(i), Payload(i)) >= (key, payload).
  uint16_t LowerBound(std::string_view key, uint64_t payload) const {
    uint16_t lo = 0, hi = nkeys();
    while (lo < hi) {
      uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
      int c = Key(mid).compare(key);
      if (c < 0 || (c == 0 && Payload(mid) < payload)) {
        lo = static_cast<uint16_t>(mid + 1);
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// First index i with Key(i) >= key (bytewise; payload ignored).
  uint16_t LowerBoundKey(std::string_view key) const {
    uint16_t lo = 0, hi = nkeys();
    while (lo < hi) {
      uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
      if (Key(mid).compare(key) < 0) {
        lo = static_cast<uint16_t>(mid + 1);
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// First index i with Key(i) > search (bytewise).
  uint16_t UpperBoundKey(std::string_view search) const {
    uint16_t lo = 0, hi = nkeys();
    while (lo < hi) {
      uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
      if (Key(mid).compare(search) <= 0) {
        lo = static_cast<uint16_t>(mid + 1);
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Child to descend into for `search` bytes (internal nodes).
  uint32_t ChildFor(std::string_view search) const {
    uint16_t ub = UpperBoundKey(search);
    if (ub == 0) return link();
    return static_cast<uint32_t>(Payload(static_cast<uint16_t>(ub - 1)));
  }

  /// Inserts at position `pos`; caller must have checked Fits().
  void InsertEntryAt(uint16_t pos, std::string_view key, uint64_t payload) {
    uint16_t data_start = Get16(8);
    size_t rec = 2 + key.size() + 8;
    uint16_t off = static_cast<uint16_t>(data_start - rec);
    Put16(off, static_cast<uint16_t>(key.size()));
    std::memcpy(p_ + off + 2, key.data(), key.size());
    std::memcpy(p_ + off + 2 + key.size(), &payload, 8);
    Put16(8, off);
    uint16_t n = nkeys();
    for (uint16_t i = n; i > pos; --i) {
      Put16(kHeaderSize + i * 2, Get16(kHeaderSize + (i - 1) * 2));
    }
    Put16(kHeaderSize + pos * 2, off);
    Put16(2, static_cast<uint16_t>(n + 1));
  }

  void RemoveAt(uint16_t i) {
    uint16_t n = nkeys();
    for (uint16_t j = i; j + 1 < n; ++j) {
      Put16(kHeaderSize + j * 2, Get16(kHeaderSize + (j + 1) * 2));
    }
    Put16(2, static_cast<uint16_t>(n - 1));
  }

  void Export(std::vector<std::pair<std::string, uint64_t>>* out) const {
    out->clear();
    out->reserve(nkeys());
    for (uint16_t i = 0; i < nkeys(); ++i) {
      out->emplace_back(std::string(Key(i)), Payload(i));
    }
  }

  /// Rebuilds the node with the given already-sorted entries.
  void Rebuild(bool leaf, uint32_t link,
               const std::vector<std::pair<std::string, uint64_t>>& entries) {
    Init(leaf);
    set_link(link);
    for (const auto& [k, v] : entries) {
      InsertEntryAt(nkeys(), k, v);
    }
  }

 private:
  uint16_t Get16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, p_ + off, 2);
    return v;
  }
  void Put16(size_t off, uint16_t v) { std::memcpy(p_ + off, &v, 2); }
  uint32_t Get32(size_t off) const {
    uint32_t v;
    std::memcpy(&v, p_ + off, 4);
    return v;
  }
  void Put32(size_t off, uint32_t v) { std::memcpy(p_ + off, &v, 4); }
  uint16_t SlotOffset(uint16_t i) const { return Get16(kHeaderSize + i * 2); }

  char* p_;
};

// Sort helper for leaf entries: (key, payload).
bool EntryLess(const std::pair<std::string, uint64_t>& a,
               const std::pair<std::string, uint64_t>& b) {
  int c = a.first.compare(b.first);
  if (c != 0) return c < 0;
  return a.second < b.second;
}

}  // namespace

Result<BTree> BTree::Create(BufferPool* pool) {
  uint32_t file_id = pool->disk()->CreateFile();
  uint32_t root_no = 0;
  R3_ASSIGN_OR_RETURN(PageHandle h, pool->NewPage(file_id, &root_no));
  Node root(h.data());
  root.Init(/*is_leaf=*/true);
  h.MarkDirty();
  return BTree(pool, file_id, root_no);
}

Result<uint32_t> BTree::FindLeaf(std::string_view search) {
  uint32_t page_no = root_;
  while (true) {
    R3_ASSIGN_OR_RETURN(PageHandle h, pool_->FetchPage(PageId{file_id_, page_no}));
    Node node(h.data());
    if (node.is_leaf()) return page_no;
    page_no = node.ChildFor(search);
  }
}

Status BTree::InsertRec(uint32_t page_no, std::string_view key,
                        uint64_t payload, bool unique,
                        std::optional<PromotedEntry>* promoted) {
  promoted->reset();
  R3_ASSIGN_OR_RETURN(PageHandle h, pool_->FetchPage(PageId{file_id_, page_no}));
  Node node(h.data());

  if (node.is_leaf()) {
    if (unique) {
      uint16_t pos = node.LowerBoundKey(key);
      if (pos < node.nkeys() && node.Key(pos) == key) {
        return Status::AlreadyExists("duplicate key in unique index");
      }
    }
    if (node.Fits(key.size())) {
      node.InsertEntryAt(node.LowerBound(key, payload), key, payload);
      h.MarkDirty();
      return Status::OK();
    }
    // Split leaf.
    std::vector<std::pair<std::string, uint64_t>> entries;
    node.Export(&entries);
    entries.emplace_back(std::string(key), payload);
    std::sort(entries.begin(), entries.end(), EntryLess);
    size_t mid = entries.size() / 2;
    std::vector<std::pair<std::string, uint64_t>> left(entries.begin(),
                                                       entries.begin() + mid);
    std::vector<std::pair<std::string, uint64_t>> right(entries.begin() + mid,
                                                        entries.end());
    uint32_t right_no = 0;
    R3_ASSIGN_OR_RETURN(PageHandle rh, pool_->NewPage(file_id_, &right_no));
    Node rnode(rh.data());
    rnode.Rebuild(/*leaf=*/true, node.link(), right);
    rh.MarkDirty();
    node.Rebuild(/*leaf=*/true, right_no, left);
    h.MarkDirty();
    *promoted = PromotedEntry{
        AugmentedKey(right.front().first, right.front().second), right_no};
    return Status::OK();
  }

  // Internal node: descend using the augmented search key.
  std::string search = AugmentedKey(key, payload);
  uint32_t child = node.ChildFor(search);
  std::optional<PromotedEntry> child_promoted;
  h.Release();  // keep pin depth shallow while recursing
  R3_RETURN_IF_ERROR(InsertRec(child, key, payload, unique, &child_promoted));
  if (!child_promoted) return Status::OK();

  R3_ASSIGN_OR_RETURN(PageHandle h2, pool_->FetchPage(PageId{file_id_, page_no}));
  Node node2(h2.data());
  const std::string& sep = child_promoted->key;
  uint64_t child_payload = child_promoted->right_page;
  if (node2.Fits(sep.size())) {
    node2.InsertEntryAt(node2.LowerBoundKey(sep), sep, child_payload);
    h2.MarkDirty();
    return Status::OK();
  }
  // Split internal node: median separator moves up.
  std::vector<std::pair<std::string, uint64_t>> entries;
  node2.Export(&entries);
  entries.emplace_back(sep, child_payload);
  std::sort(entries.begin(), entries.end(), EntryLess);
  size_t mid = entries.size() / 2;
  std::string up_key = entries[mid].first;
  uint32_t right_leftmost = static_cast<uint32_t>(entries[mid].second);
  std::vector<std::pair<std::string, uint64_t>> left(entries.begin(),
                                                     entries.begin() + mid);
  std::vector<std::pair<std::string, uint64_t>> right(entries.begin() + mid + 1,
                                                      entries.end());
  uint32_t right_no = 0;
  R3_ASSIGN_OR_RETURN(PageHandle rh, pool_->NewPage(file_id_, &right_no));
  Node rnode(rh.data());
  rnode.Rebuild(/*leaf=*/false, right_leftmost, right);
  rh.MarkDirty();
  node2.Rebuild(/*leaf=*/false, node2.link(), left);
  h2.MarkDirty();
  *promoted = PromotedEntry{std::move(up_key), right_no};
  return Status::OK();
}

Status BTree::Insert(std::string_view key, uint64_t payload, bool unique) {
  // A node must be able to hold at least 3 entries for splits to terminate
  // (+8 for the payload suffix separators carry).
  if ((2 + key.size() + 8 + 8 + 2) * 3 + kHeaderSize > kPageSize) {
    return Status::OutOfRange("index key too large for a node page");
  }
  std::optional<PromotedEntry> promoted;
  R3_RETURN_IF_ERROR(InsertRec(root_, key, payload, unique, &promoted));
  if (promoted) {
    uint32_t new_root_no = 0;
    R3_ASSIGN_OR_RETURN(PageHandle h, pool_->NewPage(file_id_, &new_root_no));
    Node root(h.data());
    root.Init(/*is_leaf=*/false);
    root.set_link(root_);
    root.InsertEntryAt(0, promoted->key, promoted->right_page);
    h.MarkDirty();
    root_ = new_root_no;
    ++height_;
  }
  return Status::OK();
}

Status BTree::Delete(std::string_view key, uint64_t payload) {
  std::string search = AugmentedKey(key, payload);
  R3_ASSIGN_OR_RETURN(uint32_t page_no, FindLeaf(search));
  while (page_no != kNoPage) {
    R3_ASSIGN_OR_RETURN(PageHandle h, pool_->FetchPage(PageId{file_id_, page_no}));
    Node node(h.data());
    uint16_t pos = node.LowerBound(key, payload);
    if (pos < node.nkeys()) {
      if (node.Key(pos) == key && node.Payload(pos) == payload) {
        node.RemoveAt(pos);
        h.MarkDirty();
        return Status::OK();
      }
      break;  // first entry >= target is not the target: absent
    }
    page_no = node.link();
  }
  return Status::NotFound("index entry not found");
}

Result<bool> BTree::Contains(std::string_view key) {
  R3_ASSIGN_OR_RETURN(Cursor c, Seek(key));
  std::string k;
  uint64_t payload;
  R3_ASSIGN_OR_RETURN(bool ok, c.Next(&k, &payload));
  return ok && k == key;
}

Result<BTree::Cursor> BTree::Seek(std::string_view lower) {
  R3_ASSIGN_OR_RETURN(uint32_t leaf_no, FindLeaf(lower));
  Cursor c;
  c.tree_ = this;
  R3_ASSIGN_OR_RETURN(PageHandle h, pool_->FetchPage(PageId{file_id_, leaf_no}));
  Node node(h.data());
  uint16_t pos = node.LowerBoundKey(lower);
  c.page_no_ = leaf_no;
  c.pos_ = pos;
  c.done_ = false;
  // Cursor::Next handles pos == nkeys by hopping leaves.
  return c;
}

Result<bool> BTree::Cursor::Next(std::string* key, uint64_t* payload) {
  if (done_) return false;
  while (true) {
    R3_ASSIGN_OR_RETURN(
        PageHandle h, tree_->pool_->FetchPage(PageId{tree_->file_id_, page_no_}));
    Node node(h.data());
    if (pos_ < node.nkeys()) {
      std::string_view k = node.Key(static_cast<uint16_t>(pos_));
      key->assign(k.data(), k.size());
      *payload = node.Payload(static_cast<uint16_t>(pos_));
      ++pos_;
      return true;
    }
    uint32_t next = node.link();
    if (next == kNoPage) {
      done_ = true;
      return false;
    }
    page_no_ = next;
    pos_ = 0;
  }
}

Result<uint64_t> BTree::CountEntries() {
  R3_ASSIGN_OR_RETURN(Cursor c, SeekFirst());
  uint64_t n = 0;
  std::string k;
  uint64_t p;
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, c.Next(&k, &p));
    if (!ok) break;
    ++n;
  }
  return n;
}

Result<uint32_t> BTree::NumPages() const {
  return pool_->disk()->FilePages(file_id_);
}

}  // namespace rdbms
}  // namespace r3
