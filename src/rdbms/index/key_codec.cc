#include "rdbms/index/key_codec.h"

#include <cstring>

namespace r3 {
namespace rdbms {
namespace key_codec {

namespace {

void AppendBigEndianFlipped(uint64_t v, std::string* out) {
  v ^= 0x8000000000000000ULL;  // flip sign bit: negatives sort first
  for (int i = 7; i >= 0; --i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    out->push_back('\x00');
    return;
  }
  out->push_back('\x01');
  switch (v.type()) {
    case DataType::kBool:
      out->push_back(v.bool_value() ? '\x01' : '\x00');
      break;
    case DataType::kInt64:
      AppendBigEndianFlipped(static_cast<uint64_t>(v.int_value()), out);
      break;
    case DataType::kDecimal:
      AppendBigEndianFlipped(static_cast<uint64_t>(v.decimal_cents()), out);
      break;
    case DataType::kDate:
      AppendBigEndianFlipped(
          static_cast<uint64_t>(static_cast<int64_t>(v.date_value())), out);
      break;
    case DataType::kDouble: {
      double d = v.double_value();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      if (bits & 0x8000000000000000ULL) {
        bits = ~bits;  // negative: invert all so more-negative sorts first
      } else {
        bits ^= 0x8000000000000000ULL;  // positive: set sign bit
      }
      for (int i = 7; i >= 0; --i) {
        out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
      }
      break;
    }
    case DataType::kString: {
      for (char c : v.string_value()) {
        if (c == '\x00') {
          out->push_back('\x00');
          out->push_back('\xff');
        } else {
          out->push_back(c);
        }
      }
      out->push_back('\x00');
      out->push_back('\x00');
      break;
    }
  }
}

std::string Encode(const std::vector<Value>& values) {
  std::string out;
  for (const Value& v : values) EncodeValue(v, &out);
  return out;
}

std::string Encode(const Value& v) {
  std::string out;
  EncodeValue(v, &out);
  return out;
}

std::string PrefixUpperBound(const std::string& prefix) {
  std::string out = prefix;
  while (!out.empty()) {
    unsigned char last = static_cast<unsigned char>(out.back());
    if (last != 0xff) {
      out.back() = static_cast<char>(last + 1);
      return out;
    }
    out.pop_back();
  }
  return out;  // empty: no finite upper bound
}

}  // namespace key_codec
}  // namespace rdbms
}  // namespace r3
