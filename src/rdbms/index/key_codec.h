#ifndef R3DB_RDBMS_INDEX_KEY_CODEC_H_
#define R3DB_RDBMS_INDEX_KEY_CODEC_H_

#include <string>
#include <vector>

#include "rdbms/value.h"

namespace r3 {
namespace rdbms {

/// Memcomparable key encoding: for any values a, b of the same column
/// types, Encode(a) < Encode(b) (bytewise) iff a sorts before b.
///
/// Per value: a 1-byte tag (0x00 = NULL sorts first, 0x01 = present), then
///  * int64/date/decimal: 8 bytes big-endian with the sign bit flipped;
///  * double: IEEE-754 bits, negative values bit-inverted, positive values
///    sign-flipped;
///  * string: bytes with 0x00 escaped as 0x00 0xFF, terminated by 0x00 0x00
///    (so a prefix sorts before its extensions and embedded NULs stay
///    ordered);
///  * bool: one byte.
namespace key_codec {

/// Appends the encoding of one value to `*out`.
void EncodeValue(const Value& v, std::string* out);

/// Encodes a composite key.
std::string Encode(const std::vector<Value>& values);

/// Encodes a single value.
std::string Encode(const Value& v);

/// Successor of a byte string in lexicographic order with the same length
/// sensitivity as our ranges: returns key + 0x00 (smallest strictly-greater
/// extension is key itself extended — we instead use this to build exclusive
/// upper bounds for prefix scans).
std::string PrefixUpperBound(const std::string& prefix);

}  // namespace key_codec
}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_INDEX_KEY_CODEC_H_
