#ifndef R3DB_RDBMS_INDEX_BTREE_H_
#define R3DB_RDBMS_INDEX_BTREE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "rdbms/storage/buffer_pool.h"
#include "rdbms/storage/page.h"

namespace r3 {
namespace rdbms {

/// Disk-page B+-tree mapping memcomparable byte keys to uint64 payloads
/// (packed RIDs for secondary indexes, child pages internally).
///
/// * Variable-length keys (slotted node layout).
/// * Duplicate keys allowed; entries are ordered by (key, payload) so
///   deletes address an exact entry.
/// * Deletion is lazy (no rebalancing/merging) — fine for the TPC-D
///   workloads where deletes are a small fraction of inserts.
///
/// The root page number lives in the in-memory object; the catalog owns
/// BTree instances for the lifetime of the database.
class BTree {
 public:
  /// Creates an empty tree in a fresh Disk file.
  static Result<BTree> Create(BufferPool* pool);

  /// Inserts (key, payload). With `unique` set, fails with kAlreadyExists
  /// if any entry with the same key exists.
  Status Insert(std::string_view key, uint64_t payload, bool unique = false);

  /// Removes the exact (key, payload) entry. kNotFound if absent.
  Status Delete(std::string_view key, uint64_t payload);

  /// True if at least one entry with exactly `key` exists.
  Result<bool> Contains(std::string_view key);

  /// Forward cursor over entries with key >= `lower` (byte order).
  class Cursor {
   public:
    /// Advances; returns false when the tree is exhausted.
    Result<bool> Next(std::string* key, uint64_t* payload);

   private:
    friend class BTree;
    BTree* tree_ = nullptr;
    uint32_t page_no_ = 0;
    uint32_t pos_ = 0;
    bool done_ = true;
  };

  /// Positions a cursor at the first entry with key >= `lower`.
  Result<Cursor> Seek(std::string_view lower);

  /// Positions a cursor at the very first entry.
  Result<Cursor> SeekFirst() { return Seek(std::string_view()); }

  /// Number of live entries.
  Result<uint64_t> CountEntries();

  uint32_t file_id() const { return file_id_; }

  /// Pages allocated to this index (for size reporting).
  Result<uint32_t> NumPages() const;

  /// Tree height (1 = just a root leaf).
  int height() const { return height_; }

 private:
  BTree(BufferPool* pool, uint32_t file_id, uint32_t root)
      : pool_(pool), file_id_(file_id), root_(root) {}

  struct PromotedEntry {
    std::string key;
    uint32_t right_page;
  };

  // Recursive insert; sets *promoted when the child split.
  Status InsertRec(uint32_t page_no, std::string_view key, uint64_t payload,
                   bool unique, std::optional<PromotedEntry>* promoted);

  // Descends to the leaf that may contain `key` (for point ops).
  Result<uint32_t> FindLeaf(std::string_view key);

  BufferPool* pool_;
  uint32_t file_id_;
  uint32_t root_;
  int height_ = 1;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_INDEX_BTREE_H_
