#ifndef R3DB_RDBMS_PLAN_LOGICAL_PLAN_H_
#define R3DB_RDBMS_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "rdbms/catalog.h"
#include "rdbms/expr/expr.h"
#include "rdbms/schema.h"

namespace r3 {
namespace rdbms {

/// One base table occurrence in a bound query. Wide-row model: every
/// intermediate row of a query has one contiguous column range per table
/// (`offset` .. `offset + schema width`), regardless of the join order the
/// optimizer later picks. Expressions are bound to these positions once.
struct BoundTableRef {
  const TableInfo* table = nullptr;
  std::string alias;   ///< resolution name (upper-cased)
  size_t offset = 0;   ///< first wide-row position of this table's columns
  /// True if this table is the right side of a LEFT OUTER JOIN; its
  /// `outer_join_conjuncts` are the ON predicates (evaluated by the join,
  /// with NULL fill on no match).
  bool left_outer = false;
  std::vector<ExprPtr> outer_join_conjuncts;
};

enum class SubqueryKind : uint8_t { kScalar, kExists, kIn };

struct BoundQuery;

/// A bound subquery attached to some predicate of the parent query.
struct BoundSubquery {
  SubqueryKind kind = SubqueryKind::kScalar;
  std::unique_ptr<BoundQuery> query;
  bool correlated = false;
};

/// Sort key over the query's *output* rows.
struct BoundOrderKey {
  size_t output_index = 0;
  bool asc = true;
};

/// A fully resolved SELECT, ready for the optimizer.
///
/// Layouts:
///  * "wide row": concat of all tables' columns (width `wide_width`);
///    `conjuncts`, `group_by`, aggregate arguments, and (when there is no
///    aggregation) `select_exprs` are bound to it.
///  * "aggregate row": [group values..., aggregate results...]; with
///    aggregation, `select_exprs` and `having` are bound to it (kSlotRef /
///    kAggRef nodes).
///  * "output row": one value per select item; ORDER BY/DISTINCT/LIMIT
///    operate here.
struct BoundQuery {
  std::vector<BoundTableRef> tables;
  size_t wide_width = 0;

  /// WHERE plus inner-join ON predicates, split into conjuncts.
  std::vector<ExprPtr> conjuncts;

  bool has_aggregation = false;
  std::vector<ExprPtr> group_by;   ///< over the wide row
  std::vector<ExprPtr> agg_calls;  ///< kAggCall nodes; args over the wide row

  /// All projected expressions; entries at index >= num_visible are hidden
  /// sort columns (ORDER BY expressions not in the select list).
  std::vector<ExprPtr> select_exprs;
  size_t num_visible = 0;
  std::vector<std::string> column_names;  ///< visible columns only
  Schema output_schema;                   ///< visible columns only
  /// When hidden sort columns exist: slot refs 0..num_visible-1 used by a
  /// final projection that drops them after sorting.
  std::vector<ExprPtr> final_project;

  ExprPtr having;  ///< over the aggregate row (may be null)

  std::vector<BoundOrderKey> order_by;
  int64_t limit = -1;
  bool distinct = false;

  std::vector<BoundSubquery> subqueries;
  size_t num_params = 0;

  /// True if any expression anywhere in the query contains a `?` parameter
  /// (drives the optimizer's blind-plan path; see Table 6).
  bool has_params = false;

  /// True if this (sub)query references columns of an enclosing query.
  bool is_correlated = false;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_PLAN_LOGICAL_PLAN_H_
