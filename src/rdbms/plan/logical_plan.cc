// Intentionally minimal: BoundQuery is a plain data holder; see
// sql/binder.cc (producer) and optimizer/optimizer.cc (consumer).
#include "rdbms/plan/logical_plan.h"
