#include "rdbms/expr/expr.h"

#include "common/str_util.h"
#include "rdbms/sql/ast.h"

namespace r3 {
namespace rdbms {

Expr::Expr(ExprKind k) : kind(k) {}

Expr::~Expr() = default;

namespace {

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kNeg:
      return "-";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

}  // namespace

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>(kind);
  out->result_type = result_type;
  out->literal = literal;
  out->table_qualifier = table_qualifier;
  out->column_name = column_name;
  out->column_index = column_index;
  out->param_index = param_index;
  out->slot = slot;
  out->arith_op = arith_op;
  out->cmp_op = cmp_op;
  out->logic_op = logic_op;
  out->negated = negated;
  out->func_name = func_name;
  out->cast_target = cast_target;
  out->agg_func = agg_func;
  out->agg_distinct = agg_distinct;
  out->case_has_else = case_has_else;
  // Subquery plans are not cloneable; keep the AST so a re-bind can plan it.
  if (subquery_ast != nullptr) {
    out->subquery_ast = subquery_ast->Clone();
  }
  for (const ExprPtr& c : children) {
    out->children.push_back(c->Clone());
  }
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type() == DataType::kString ? "'" + literal.ToString() + "'"
                                                 : literal.ToString();
    case ExprKind::kColumnRef:
      // Bound refs print canonically by position so structurally equal
      // expressions stringify identically (the binder relies on this for
      // GROUP BY / ORDER BY matching).
      if (column_index != kUnresolvedColumn) {
        return str::Format("col#%zu", column_index);
      }
      return table_qualifier.empty() ? column_name
                                     : table_qualifier + "." + column_name;
    case ExprKind::kOuterRef:
      return str::Format("outer#%zu", column_index);
    case ExprKind::kParam:
      return str::Format("?%zu", param_index);
    case ExprKind::kSlotRef:
      return str::Format("#%zu", column_index);
    case ExprKind::kArith:
      if (arith_op == ArithOp::kNeg) {
        return std::string("(-") + children[0]->ToString() + ")";
      }
      return "(" + children[0]->ToString() + " " + ArithOpName(arith_op) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kCompare:
      return "(" + children[0]->ToString() + " " + CmpOpName(cmp_op) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kLogic: {
      const char* op = logic_op == LogicOp::kAnd ? " AND " : " OR ";
      return "(" + children[0]->ToString() + op + children[1]->ToString() + ")";
    }
    case ExprKind::kNot:
      return "NOT (" + children[0]->ToString() + ")";
    case ExprKind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kLike:
      return children[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             children[1]->ToString();
    case ExprKind::kInList: {
      std::string out = children[0]->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); ++i) {
        if (i != 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kBetween:
      return children[0]->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t pairs = (children.size() - (case_has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + children[2 * i]->ToString() + " THEN " +
               children[2 * i + 1]->ToString();
      }
      if (case_has_else) out += " ELSE " + children.back()->ToString();
      return out + " END";
    }
    case ExprKind::kFunc: {
      std::string out = func_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i != 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kCast:
      return "CAST(" + children[0]->ToString() + " AS " +
             DataTypeName(cast_target) + ")";
    case ExprKind::kAggCall:
      if (agg_func == AggFunc::kCountStar) return "COUNT(*)";
      return std::string(AggFuncName(agg_func)) + "(" +
             (agg_distinct ? "DISTINCT " : "") + children[0]->ToString() + ")";
    case ExprKind::kAggRef:
      return str::Format("agg#%zu", slot);
    case ExprKind::kScalarSubquery:
      return "(<subquery>)";
    case ExprKind::kExistsSubquery:
      return negated ? "NOT EXISTS(<subquery>)" : "EXISTS(<subquery>)";
    case ExprKind::kInSubquery:
      return children[0]->ToString() + (negated ? " NOT IN " : " IN ") +
             "(<subquery>)";
  }
  return "?";
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>(ExprKind::kLiteral);
  e->result_type = v.type();
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string name) {
  auto e = std::make_unique<Expr>(ExprKind::kColumnRef);
  e->table_qualifier = std::move(qualifier);
  e->column_name = std::move(name);
  return e;
}

ExprPtr MakeParam(size_t index) {
  auto e = std::make_unique<Expr>(ExprKind::kParam);
  e->param_index = index;
  return e;
}

ExprPtr MakeSlotRef(size_t index, DataType type) {
  auto e = std::make_unique<Expr>(ExprKind::kSlotRef);
  e->column_index = index;
  e->result_type = type;
  return e;
}

ExprPtr MakeArith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>(ExprKind::kArith);
  e->arith_op = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

ExprPtr MakeNeg(ExprPtr v) {
  auto e = std::make_unique<Expr>(ExprKind::kArith);
  e->arith_op = ArithOp::kNeg;
  e->children.push_back(std::move(v));
  return e;
}

ExprPtr MakeCompare(CmpOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>(ExprKind::kCompare);
  e->cmp_op = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

ExprPtr MakeLogic(LogicOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>(ExprKind::kLogic);
  e->logic_op = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

ExprPtr MakeNot(ExprPtr v) {
  auto e = std::make_unique<Expr>(ExprKind::kNot);
  e->children.push_back(std::move(v));
  return e;
}

ExprPtr MakeIsNull(ExprPtr v, bool negated) {
  auto e = std::make_unique<Expr>(ExprKind::kIsNull);
  e->negated = negated;
  e->children.push_back(std::move(v));
  return e;
}

ExprPtr MakeLike(ExprPtr v, ExprPtr pattern, bool negated) {
  auto e = std::make_unique<Expr>(ExprKind::kLike);
  e->negated = negated;
  e->children.push_back(std::move(v));
  e->children.push_back(std::move(pattern));
  return e;
}

ExprPtr MakeBetween(ExprPtr v, ExprPtr lo, ExprPtr hi, bool negated) {
  auto e = std::make_unique<Expr>(ExprKind::kBetween);
  e->negated = negated;
  e->children.push_back(std::move(v));
  e->children.push_back(std::move(lo));
  e->children.push_back(std::move(hi));
  return e;
}

ExprPtr MakeFunc(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>(ExprKind::kFunc);
  e->func_name = str::ToUpper(name);
  e->children = std::move(args);
  return e;
}

ExprPtr MakeCast(ExprPtr v, DataType target) {
  auto e = std::make_unique<Expr>(ExprKind::kCast);
  e->cast_target = target;
  e->result_type = target;
  e->children.push_back(std::move(v));
  return e;
}

ExprPtr MakeAggCall(AggFunc f, ExprPtr arg, bool distinct) {
  auto e = std::make_unique<Expr>(ExprKind::kAggCall);
  e->agg_func = f;
  e->agg_distinct = distinct;
  if (arg != nullptr) e->children.push_back(std::move(arg));
  return e;
}

void SplitConjuncts(ExprPtr e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kLogic && e->logic_op == LogicOp::kAnd) {
    ExprPtr l = std::move(e->children[0]);
    ExprPtr r = std::move(e->children[1]);
    SplitConjuncts(std::move(l), out);
    SplitConjuncts(std::move(r), out);
    return;
  }
  out->push_back(std::move(e));
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (ExprPtr& c : conjuncts) {
    if (out == nullptr) {
      out = std::move(c);
    } else {
      out = MakeLogic(LogicOp::kAnd, std::move(out), std::move(c));
    }
  }
  return out;
}

bool ExprContains(const Expr& e, bool (*pred)(const Expr&)) {
  if (pred(e)) return true;
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && ExprContains(*c, pred)) return true;
  }
  return false;
}

bool ExprHasColumnRefs(const Expr& e) {
  return ExprContains(e, [](const Expr& x) {
    return x.kind == ExprKind::kColumnRef || x.kind == ExprKind::kOuterRef ||
           x.kind == ExprKind::kSlotRef;
  });
}

bool ExprHasAggregates(const Expr& e) {
  return ExprContains(
      e, [](const Expr& x) { return x.kind == ExprKind::kAggCall; });
}

bool ExprHasParams(const Expr& e) {
  return ExprContains(e,
                      [](const Expr& x) { return x.kind == ExprKind::kParam; });
}

void VisitExpr(Expr* e, const std::function<void(Expr*)>& fn) {
  if (e == nullptr) return;
  fn(e);
  for (ExprPtr& c : e->children) {
    VisitExpr(c.get(), fn);
  }
}

}  // namespace rdbms
}  // namespace r3
