#ifndef R3DB_RDBMS_EXPR_EXPR_H_
#define R3DB_RDBMS_EXPR_EXPR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdbms/value.h"

namespace r3 {
namespace rdbms {

struct SelectStmt;  // sql/ast.h

/// Node kinds of the (unified parse-time and bound) expression tree.
///
/// The parser produces kColumnRef nodes with textual names; the binder
/// resolves them to wide-row positions (or kOuterRef for correlated refs),
/// assigns result types, replaces aggregate calls in post-aggregation
/// expressions with kAggRef slots, and attaches subquery plans.
enum class ExprKind : uint8_t {
  kLiteral,
  kColumnRef,  ///< column of the current query's wide row
  kOuterRef,   ///< column of the enclosing query's wide row (correlation)
  kParam,      ///< `?` placeholder, bound at execution time
  kSlotRef,    ///< direct position in the operator's input row (post-agg)
  kArith,
  kCompare,
  kLogic,
  kNot,
  kIsNull,   ///< `negated` => IS NOT NULL
  kLike,     ///< `negated` => NOT LIKE; children = [value, pattern]
  kInList,   ///< children = [target, item...]; `negated` => NOT IN
  kBetween,  ///< children = [target, lo, hi]; `negated` => NOT BETWEEN
  kCase,     ///< children = [when, then]... (+ else if case_has_else)
  kFunc,     ///< by name: YEAR, MONTH, SUBSTR, UPPER, LOWER, ABS, LENGTH, MOD
  kCast,
  kAggCall,  ///< SUM/AVG/... over children[0] (none for COUNT(*))
  kAggRef,   ///< aggregation output slot
  kScalarSubquery,
  kExistsSubquery,  ///< `negated` => NOT EXISTS
  kInSubquery,      ///< children = [target]; `negated` => NOT IN
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kNeg };
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicOp : uint8_t { kAnd, kOr };
enum class AggFunc : uint8_t { kCountStar, kCount, kSum, kAvg, kMin, kMax };

inline constexpr size_t kUnresolvedColumn = static_cast<size_t>(-1);
inline constexpr size_t kNoSubquery = static_cast<size_t>(-1);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One expression node; see ExprKind for field usage.
struct Expr {
  // Constructor and destructor are out-of-line: SelectStmt is incomplete
  // here and unique_ptr<SelectStmt> must not be instantiated in the header.
  explicit Expr(ExprKind k);
  ~Expr();
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind;
  DataType result_type = DataType::kInt64;  ///< set by the binder

  Value literal;

  std::string table_qualifier;  ///< kColumnRef (optional)
  std::string column_name;      ///< kColumnRef
  size_t column_index = kUnresolvedColumn;  ///< kColumnRef/kOuterRef/kSlotRef

  size_t param_index = 0;  ///< kParam
  size_t slot = 0;         ///< kAggRef

  ArithOp arith_op = ArithOp::kAdd;
  CmpOp cmp_op = CmpOp::kEq;
  LogicOp logic_op = LogicOp::kAnd;
  bool negated = false;

  std::string func_name;                   ///< kFunc
  DataType cast_target = DataType::kInt64; ///< kCast

  AggFunc agg_func = AggFunc::kCountStar;  ///< kAggCall
  bool agg_distinct = false;

  bool case_has_else = false;

  size_t subquery_index = kNoSubquery;     ///< bound subquery plan slot
  std::unique_ptr<SelectStmt> subquery_ast;

  std::vector<ExprPtr> children;

  /// Deep copy (drops any bound subquery_index; clones the AST).
  ExprPtr Clone() const;

  /// Debug rendering, e.g. "(L_QUANTITY < ?0)".
  std::string ToString() const;
};

// ---- Construction helpers (used by the parser, binder, and query builders).

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string name);
ExprPtr MakeParam(size_t index);
ExprPtr MakeSlotRef(size_t index, DataType type);
ExprPtr MakeArith(ArithOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeNeg(ExprPtr e);
ExprPtr MakeCompare(CmpOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeLogic(LogicOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeNot(ExprPtr e);
ExprPtr MakeIsNull(ExprPtr e, bool negated);
ExprPtr MakeLike(ExprPtr v, ExprPtr pattern, bool negated);
ExprPtr MakeBetween(ExprPtr v, ExprPtr lo, ExprPtr hi, bool negated);
ExprPtr MakeFunc(std::string name, std::vector<ExprPtr> args);
ExprPtr MakeCast(ExprPtr e, DataType target);
ExprPtr MakeAggCall(AggFunc f, ExprPtr arg, bool distinct);

/// Splits an AND-tree into conjuncts (moves out of `e`).
void SplitConjuncts(ExprPtr e, std::vector<ExprPtr>* out);

/// Re-joins conjuncts into a single AND-tree (empty -> nullptr).
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

/// True if the (sub)tree contains a node satisfying `pred`.
bool ExprContains(const Expr& e, bool (*pred)(const Expr&));

/// True if the tree references any kColumnRef/kOuterRef/kSlotRef.
bool ExprHasColumnRefs(const Expr& e);

/// True if the tree contains a kAggCall.
bool ExprHasAggregates(const Expr& e);

/// True if the tree contains a kParam.
bool ExprHasParams(const Expr& e);

/// Applies `fn` to every node (pre-order), allowing mutation.
void VisitExpr(Expr* e, const std::function<void(Expr*)>& fn);

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_EXPR_EXPR_H_
