#ifndef R3DB_RDBMS_EXPR_EVAL_H_
#define R3DB_RDBMS_EXPR_EVAL_H_

#include <vector>

#include "common/status.h"
#include "rdbms/expr/expr.h"
#include "rdbms/row.h"
#include "rdbms/row_batch.h"

namespace r3 {
namespace rdbms {

/// Executes bound subquery plans on behalf of the evaluator. Implemented by
/// the executor (exec/executor.cc); the indirection keeps the expression
/// layer free of operator dependencies.
class SubqueryRunner {
 public:
  virtual ~SubqueryRunner() = default;

  /// Runs scalar subquery `idx` with `outer` as the correlation row;
  /// produces its single value (NULL if the subquery yields no row; error if
  /// it yields more than one).
  virtual Status RunScalar(size_t idx, const Row* outer, Value* out) = 0;

  /// EXISTS probe.
  virtual Status RunExists(size_t idx, const Row* outer, bool* out) = 0;

  /// IN probe with SQL three-valued semantics: Bool(true) on match,
  /// Null if no match but NULLs were produced, Bool(false) otherwise.
  virtual Status RunInProbe(size_t idx, const Row* outer, const Value& probe,
                            Value* out) = 0;
};

/// Everything an expression needs at evaluation time.
struct EvalContext {
  const Row* row = nullptr;    ///< current input row (wide row or agg row)
  const Row* outer = nullptr;  ///< enclosing query's row for correlated refs
  const std::vector<Value>* params = nullptr;  ///< `?` bindings
  SubqueryRunner* subqueries = nullptr;
};

/// Evaluates a bound expression. NULL propagation follows SQL semantics;
/// boolean results use three-valued logic with Null standing in for UNKNOWN.
Status EvalExpr(const Expr& e, const EvalContext& ctx, Value* out);

/// Evaluates `e` as a predicate: true iff the result is TRUE (UNKNOWN and
/// FALSE both reject the row).
Result<bool> EvalPredicate(const Expr& e, const EvalContext& ctx);

/// Evaluates a predicate conjunction against one row: true iff every
/// predicate is TRUE.
Result<bool> EvalPredicates(const std::vector<const Expr*>& preds,
                            const EvalContext& ctx);

// ---------------------------------------------------------------------------
// Batch evaluation
// ---------------------------------------------------------------------------
// One EvalContext is reused for the whole batch (`ec->row` is repointed per
// row) — the row-at-a-time engine rebuilt the context per row, which was
// pure overhead since only the row pointer changes.

/// Filters the batch tail [first, size): appends the absolute index of every
/// row on which all `preds` are TRUE to `*sel` (cleared first, ascending).
Status EvalPredicatesBatch(const std::vector<const Expr*>& preds,
                           EvalContext* ec, const RowBatch& batch,
                           size_t first, SelVector* sel);

/// Evaluates a select list over every row of `in`, appending one projected
/// row per input row to `*out`. The caller guarantees capacity.
Status EvalProjectionBatch(const std::vector<const Expr*>& exprs,
                           EvalContext* ec, const RowBatch& in, RowBatch* out);

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_EXPR_EVAL_H_
