#include "rdbms/expr/eval.h"

#include <cmath>

#include "common/date.h"
#include "common/str_util.h"

namespace r3 {
namespace rdbms {

namespace {

Status EvalArith(const Expr& e, const EvalContext& ctx, Value* out) {
  Value l;
  R3_RETURN_IF_ERROR(EvalExpr(*e.children[0], ctx, &l));
  if (e.arith_op == ArithOp::kNeg) {
    if (l.is_null()) {
      *out = Value::Null(l.type());
      return Status::OK();
    }
    switch (l.type()) {
      case DataType::kInt64:
        *out = Value::Int(-l.int_value());
        return Status::OK();
      case DataType::kDecimal:
        *out = Value::DecimalFromCents(-l.decimal_cents());
        return Status::OK();
      case DataType::kDouble:
        *out = Value::Dbl(-l.double_value());
        return Status::OK();
      default:
        return Status::InvalidArgument("cannot negate " +
                                       std::string(DataTypeName(l.type())));
    }
  }
  Value r;
  R3_RETURN_IF_ERROR(EvalExpr(*e.children[1], ctx, &r));
  if (l.is_null() || r.is_null()) {
    *out = Value::Null(DataType::kDouble);
    return Status::OK();
  }
  // Date +/- integer days.
  if (l.type() == DataType::kDate && r.type() == DataType::kInt64 &&
      (e.arith_op == ArithOp::kAdd || e.arith_op == ArithOp::kSub)) {
    int64_t days = e.arith_op == ArithOp::kAdd ? r.int_value() : -r.int_value();
    *out = Value::Date(static_cast<int32_t>(l.date_value() + days));
    return Status::OK();
  }
  if (l.type() == DataType::kDate && r.type() == DataType::kDate &&
      e.arith_op == ArithOp::kSub) {
    *out = Value::Int(l.date_value() - r.date_value());
    return Status::OK();
  }
  if (!IsNumeric(l.type()) || !IsNumeric(r.type())) {
    return Status::InvalidArgument(
        str::Format("arithmetic on %s and %s", DataTypeName(l.type()),
                    DataTypeName(r.type())));
  }
  bool both_int =
      l.type() == DataType::kInt64 && r.type() == DataType::kInt64;
  switch (e.arith_op) {
    case ArithOp::kAdd:
      *out = both_int ? Value::Int(l.int_value() + r.int_value())
                      : Value::Dbl(l.AsDouble() + r.AsDouble());
      return Status::OK();
    case ArithOp::kSub:
      *out = both_int ? Value::Int(l.int_value() - r.int_value())
                      : Value::Dbl(l.AsDouble() - r.AsDouble());
      return Status::OK();
    case ArithOp::kMul:
      *out = both_int ? Value::Int(l.int_value() * r.int_value())
                      : Value::Dbl(l.AsDouble() * r.AsDouble());
      return Status::OK();
    case ArithOp::kDiv: {
      double denom = r.AsDouble();
      if (denom == 0.0) return Status::InvalidArgument("division by zero");
      *out = Value::Dbl(l.AsDouble() / denom);
      return Status::OK();
    }
    case ArithOp::kNeg:
      break;  // handled above
  }
  return Status::Internal("bad arith op");
}

// Three-valued AND/OR. Bool values with Null as UNKNOWN.
Value Logic3(LogicOp op, const Value& a, const Value& b) {
  auto truth = [](const Value& v) -> int {  // 1 true, 0 false, -1 unknown
    if (v.is_null()) return -1;
    return v.bool_value() ? 1 : 0;
  };
  int x = truth(a);
  int y = truth(b);
  if (op == LogicOp::kAnd) {
    if (x == 0 || y == 0) return Value::Bool(false);
    if (x == 1 && y == 1) return Value::Bool(true);
    return Value::Null(DataType::kBool);
  }
  if (x == 1 || y == 1) return Value::Bool(true);
  if (x == 0 && y == 0) return Value::Bool(false);
  return Value::Null(DataType::kBool);
}

Status EvalFunc(const Expr& e, const EvalContext& ctx, Value* out) {
  std::vector<Value> args(e.children.size());
  for (size_t i = 0; i < e.children.size(); ++i) {
    R3_RETURN_IF_ERROR(EvalExpr(*e.children[i], ctx, &args[i]));
  }
  const std::string& f = e.func_name;
  auto arity = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument(
          str::Format("%s expects %zu arguments", f.c_str(), n));
    }
    return Status::OK();
  };
  if (f == "YEAR" || f == "MONTH") {
    R3_RETURN_IF_ERROR(arity(1));
    if (args[0].is_null()) {
      *out = Value::Null(DataType::kInt64);
      return Status::OK();
    }
    if (args[0].type() != DataType::kDate) {
      return Status::InvalidArgument(f + " expects a DATE");
    }
    *out = Value::Int(f == "YEAR" ? date::Year(args[0].date_value())
                                  : date::Month(args[0].date_value()));
    return Status::OK();
  }
  if (f == "SUBSTR" || f == "SUBSTRING") {
    if (args.size() != 2 && args.size() != 3) {
      return Status::InvalidArgument("SUBSTR expects 2 or 3 arguments");
    }
    if (args[0].is_null()) {
      *out = Value::Null(DataType::kString);
      return Status::OK();
    }
    const std::string& s = args[0].string_value();
    int64_t start = args[1].AsInt();  // 1-based
    if (start < 1) start = 1;
    size_t begin = static_cast<size_t>(start - 1);
    if (begin >= s.size()) {
      *out = Value::Str("");
      return Status::OK();
    }
    size_t len = args.size() == 3 ? static_cast<size_t>(std::max<int64_t>(0, args[2].AsInt()))
                                  : s.size() - begin;
    *out = Value::Str(s.substr(begin, len));
    return Status::OK();
  }
  if (f == "UPPER" || f == "LOWER") {
    R3_RETURN_IF_ERROR(arity(1));
    if (args[0].is_null()) {
      *out = Value::Null(DataType::kString);
      return Status::OK();
    }
    *out = Value::Str(f == "UPPER" ? str::ToUpper(args[0].string_value())
                                   : str::ToLower(args[0].string_value()));
    return Status::OK();
  }
  if (f == "LENGTH") {
    R3_RETURN_IF_ERROR(arity(1));
    if (args[0].is_null()) {
      *out = Value::Null(DataType::kInt64);
      return Status::OK();
    }
    *out = Value::Int(static_cast<int64_t>(args[0].string_value().size()));
    return Status::OK();
  }
  if (f == "ABS") {
    R3_RETURN_IF_ERROR(arity(1));
    if (args[0].is_null()) {
      *out = args[0];
      return Status::OK();
    }
    if (args[0].type() == DataType::kInt64) {
      *out = Value::Int(std::llabs(args[0].int_value()));
    } else {
      *out = Value::Dbl(std::fabs(args[0].AsDouble()));
    }
    return Status::OK();
  }
  if (f == "MOD") {
    R3_RETURN_IF_ERROR(arity(2));
    if (args[0].is_null() || args[1].is_null()) {
      *out = Value::Null(DataType::kInt64);
      return Status::OK();
    }
    int64_t d = args[1].AsInt();
    if (d == 0) return Status::InvalidArgument("MOD by zero");
    *out = Value::Int(args[0].AsInt() % d);
    return Status::OK();
  }
  if (f == "ROUND") {
    if (args.size() != 1 && args.size() != 2) {
      return Status::InvalidArgument("ROUND expects 1 or 2 arguments");
    }
    if (args[0].is_null()) {
      *out = Value::Null(DataType::kDouble);
      return Status::OK();
    }
    int64_t digits = args.size() == 2 ? args[1].AsInt() : 0;
    double scale = std::pow(10.0, static_cast<double>(digits));
    *out = Value::Dbl(std::round(args[0].AsDouble() * scale) / scale);
    return Status::OK();
  }
  return Status::Unsupported("unknown function " + f);
}

}  // namespace

Status EvalExpr(const Expr& e, const EvalContext& ctx, Value* out) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      *out = e.literal;
      return Status::OK();
    case ExprKind::kColumnRef:
    case ExprKind::kSlotRef:
      if (ctx.row == nullptr || e.column_index >= ctx.row->size()) {
        return Status::Internal("column ref out of range: " + e.ToString());
      }
      *out = (*ctx.row)[e.column_index];
      return Status::OK();
    case ExprKind::kOuterRef:
      if (ctx.outer == nullptr || e.column_index >= ctx.outer->size()) {
        return Status::Internal("outer ref out of range: " + e.ToString());
      }
      *out = (*ctx.outer)[e.column_index];
      return Status::OK();
    case ExprKind::kParam:
      if (ctx.params == nullptr || e.param_index >= ctx.params->size()) {
        return Status::InvalidArgument(
            str::Format("parameter ?%zu not bound", e.param_index));
      }
      *out = (*ctx.params)[e.param_index];
      return Status::OK();
    case ExprKind::kArith:
      return EvalArith(e, ctx, out);
    case ExprKind::kCompare: {
      Value l, r;
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[0], ctx, &l));
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[1], ctx, &r));
      if (l.is_null() || r.is_null()) {
        *out = Value::Null(DataType::kBool);
        return Status::OK();
      }
      int c = l.Compare(r);
      bool v = false;
      switch (e.cmp_op) {
        case CmpOp::kEq:
          v = c == 0;
          break;
        case CmpOp::kNe:
          v = c != 0;
          break;
        case CmpOp::kLt:
          v = c < 0;
          break;
        case CmpOp::kLe:
          v = c <= 0;
          break;
        case CmpOp::kGt:
          v = c > 0;
          break;
        case CmpOp::kGe:
          v = c >= 0;
          break;
      }
      *out = Value::Bool(v);
      return Status::OK();
    }
    case ExprKind::kLogic: {
      Value l, r;
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[0], ctx, &l));
      // Short circuit where three-valued logic allows it.
      if (!l.is_null()) {
        if (e.logic_op == LogicOp::kAnd && !l.bool_value()) {
          *out = Value::Bool(false);
          return Status::OK();
        }
        if (e.logic_op == LogicOp::kOr && l.bool_value()) {
          *out = Value::Bool(true);
          return Status::OK();
        }
      }
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[1], ctx, &r));
      *out = Logic3(e.logic_op, l, r);
      return Status::OK();
    }
    case ExprKind::kNot: {
      Value v;
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[0], ctx, &v));
      if (v.is_null()) {
        *out = Value::Null(DataType::kBool);
      } else {
        *out = Value::Bool(!v.bool_value());
      }
      return Status::OK();
    }
    case ExprKind::kIsNull: {
      Value v;
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[0], ctx, &v));
      bool is_null = v.is_null();
      *out = Value::Bool(e.negated ? !is_null : is_null);
      return Status::OK();
    }
    case ExprKind::kLike: {
      Value v, p;
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[0], ctx, &v));
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[1], ctx, &p));
      if (v.is_null() || p.is_null()) {
        *out = Value::Null(DataType::kBool);
        return Status::OK();
      }
      bool m = str::LikeMatch(v.string_value(), p.string_value());
      *out = Value::Bool(e.negated ? !m : m);
      return Status::OK();
    }
    case ExprKind::kInList: {
      Value target;
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[0], ctx, &target));
      if (target.is_null()) {
        *out = Value::Null(DataType::kBool);
        return Status::OK();
      }
      bool saw_null = false;
      bool matched = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        Value item;
        R3_RETURN_IF_ERROR(EvalExpr(*e.children[i], ctx, &item));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (target.Compare(item) == 0) {
          matched = true;
          break;
        }
      }
      if (matched) {
        *out = Value::Bool(!e.negated);
      } else if (saw_null) {
        *out = Value::Null(DataType::kBool);
      } else {
        *out = Value::Bool(e.negated);
      }
      return Status::OK();
    }
    case ExprKind::kBetween: {
      Value v, lo, hi;
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[0], ctx, &v));
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[1], ctx, &lo));
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[2], ctx, &hi));
      if (v.is_null() || lo.is_null() || hi.is_null()) {
        *out = Value::Null(DataType::kBool);
        return Status::OK();
      }
      bool in = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
      *out = Value::Bool(e.negated ? !in : in);
      return Status::OK();
    }
    case ExprKind::kCase: {
      size_t pairs = (e.children.size() - (e.case_has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        Value cond;
        R3_RETURN_IF_ERROR(EvalExpr(*e.children[2 * i], ctx, &cond));
        if (!cond.is_null() && cond.bool_value()) {
          return EvalExpr(*e.children[2 * i + 1], ctx, out);
        }
      }
      if (e.case_has_else) {
        return EvalExpr(*e.children.back(), ctx, out);
      }
      *out = Value::Null(e.result_type);
      return Status::OK();
    }
    case ExprKind::kFunc:
      return EvalFunc(e, ctx, out);
    case ExprKind::kCast: {
      Value v;
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[0], ctx, &v));
      R3_ASSIGN_OR_RETURN(*out, v.CastTo(e.cast_target));
      return Status::OK();
    }
    case ExprKind::kAggCall:
      return Status::Internal("aggregate call evaluated outside aggregation");
    case ExprKind::kAggRef:
      if (ctx.row == nullptr || e.slot >= ctx.row->size()) {
        return Status::Internal("aggregate ref out of range");
      }
      *out = (*ctx.row)[e.slot];
      return Status::OK();
    case ExprKind::kScalarSubquery:
      if (ctx.subqueries == nullptr) {
        return Status::Internal("no subquery runner in context");
      }
      return ctx.subqueries->RunScalar(e.subquery_index, ctx.row, out);
    case ExprKind::kExistsSubquery: {
      if (ctx.subqueries == nullptr) {
        return Status::Internal("no subquery runner in context");
      }
      bool exists = false;
      R3_RETURN_IF_ERROR(
          ctx.subqueries->RunExists(e.subquery_index, ctx.row, &exists));
      *out = Value::Bool(e.negated ? !exists : exists);
      return Status::OK();
    }
    case ExprKind::kInSubquery: {
      if (ctx.subqueries == nullptr) {
        return Status::Internal("no subquery runner in context");
      }
      Value probe;
      R3_RETURN_IF_ERROR(EvalExpr(*e.children[0], ctx, &probe));
      Value res;
      R3_RETURN_IF_ERROR(
          ctx.subqueries->RunInProbe(e.subquery_index, ctx.row, probe, &res));
      if (res.is_null()) {
        *out = res;
      } else {
        *out = Value::Bool(e.negated ? !res.bool_value() : res.bool_value());
      }
      return Status::OK();
    }
  }
  return Status::Internal("bad expr kind");
}

Result<bool> EvalPredicate(const Expr& e, const EvalContext& ctx) {
  Value v;
  R3_RETURN_IF_ERROR(EvalExpr(e, ctx, &v));
  return !v.is_null() && v.bool_value();
}

Result<bool> EvalPredicates(const std::vector<const Expr*>& preds,
                            const EvalContext& ctx) {
  for (const Expr* p : preds) {
    R3_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*p, ctx));
    if (!ok) return false;
  }
  return true;
}

Status EvalPredicatesBatch(const std::vector<const Expr*>& preds,
                           EvalContext* ec, const RowBatch& batch,
                           size_t first, SelVector* sel) {
  sel->clear();
  for (size_t i = first; i < batch.size(); ++i) {
    ec->row = &batch.row(i);
    R3_ASSIGN_OR_RETURN(bool pass, EvalPredicates(preds, *ec));
    if (pass) sel->push_back(static_cast<uint32_t>(i));
  }
  return Status::OK();
}

Status EvalProjectionBatch(const std::vector<const Expr*>& exprs,
                           EvalContext* ec, const RowBatch& in,
                           RowBatch* out) {
  for (size_t i = 0; i < in.size(); ++i) {
    ec->row = &in.row(i);
    Row& dst = out->AppendRow();
    dst.reserve(exprs.size());
    for (const Expr* e : exprs) {
      Value v;
      R3_RETURN_IF_ERROR(EvalExpr(*e, *ec, &v));
      dst.push_back(std::move(v));
    }
  }
  return Status::OK();
}

}  // namespace rdbms
}  // namespace r3
