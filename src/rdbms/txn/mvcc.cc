#include "rdbms/txn/mvcc.h"

#include <algorithm>

namespace r3 {
namespace rdbms {
namespace txn {

namespace {
std::vector<int64_t> ChainLenBounds() { return {1, 2, 4, 8, 16, 32, 64}; }
}  // namespace

MvccManager::MvccManager(MetricsRegistry* metrics) {
  MetricsRegistry* m = metrics != nullptr ? metrics : GlobalMetrics();
  m_versions_created_ = m->GetCounter("rdbms.mvcc.versions_created");
  m_ghosts_created_ = m->GetCounter("rdbms.mvcc.ghosts_created");
  m_gc_runs_ = m->GetCounter("rdbms.mvcc.gc_runs");
  m_gc_trimmed_ = m->GetCounter("rdbms.mvcc.versions_trimmed");
  m_gc_entries_erased_ = m->GetCounter("rdbms.mvcc.entries_erased");
  m_snapshots_ = m->GetCounter("rdbms.mvcc.snapshots_taken");
  m_alt_reads_ = m->GetCounter("rdbms.mvcc.alt_version_reads");
  m_invisible_rows_ = m->GetCounter("rdbms.mvcc.invisible_rows_skipped");
  h_chain_len_ = m->GetHistogram("rdbms.mvcc.chain_length", ChainLenBounds());
}

void MvccManager::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  files_.clear();
  active_txns_.clear();
  snapshot_low_waters_.clear();
  txn_ops_.clear();
  gc_queue_.clear();
  entry_count_.store(0, std::memory_order_release);
  last_seen_txn_ = 0;
}

void MvccManager::BeginTxn(uint64_t id) {
  if (!enabled_ || id == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  active_txns_.insert(id);
  last_seen_txn_ = std::max(last_seen_txn_, id);
}

void MvccManager::CommitTxn(uint64_t id) {
  if (!enabled_ || id == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  active_txns_.erase(id);
  auto it = txn_ops_.find(id);
  if (it != txn_ops_.end()) {
    // The committed txn's touched rows become GC candidates: once the
    // horizon passes `id`, their superseded versions are unreachable.
    for (const OpRec& op : it->second) {
      gc_queue_.emplace_back(op.file_id, op.rid);
    }
    txn_ops_.erase(it);
  }
  GarbageCollectLocked();
}

void MvccManager::AbortTxn(uint64_t id) {
  if (!enabled_ || id == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  active_txns_.erase(id);
  auto it = txn_ops_.find(id);
  if (it == txn_ops_.end()) return;
  // Undo version-map effects newest-first, mirroring the physical undo the
  // Database layer already performed on the heap.
  for (auto op = it->second.rbegin(); op != it->second.rend(); ++op) {
    FileMap& fm = files_[op->file_id];
    auto row_it = fm.rows.find(op->rid);
    if (row_it == fm.rows.end()) continue;
    Entry& e = row_it->second;
    switch (op->kind) {
      case OpRec::Kind::kInsert:
        // The inserted row is physically gone again. If the entry has
        // history (insert over a ghost cannot happen — RIDs are never
        // reused — so `older` must be empty), just drop it.
        EraseEntryLocked(fm, op->rid);
        break;
      case OpRec::Kind::kUpdate:
        // The heap holds the pre-image again; pop our version off the chain.
        if (!e.older.empty()) {
          e.xmin = e.older.front().xmin;
          e.older.erase(e.older.begin());
        }
        if (e.xmin == 0 && e.older.empty() && !e.deleted) {
          EraseEntryLocked(fm, op->rid);
        }
        break;
      case OpRec::Kind::kDelete:
        // The row was physically re-inserted at the same RID by undo.
        if (e.deleted && !e.older.empty()) {
          RemoveGhostLocked(fm, op->rid);
          e.deleted = false;
          e.xmax = 0;
          e.xmin = e.older.front().xmin;
          e.older.erase(e.older.begin());
        }
        if (e.xmin == 0 && e.older.empty() && !e.deleted) {
          EraseEntryLocked(fm, op->rid);
        }
        break;
    }
  }
  txn_ops_.erase(it);
  GarbageCollectLocked();
}

std::shared_ptr<const Snapshot> MvccManager::AcquireSnapshot(uint64_t own_txn) {
  auto snap = std::make_shared<Snapshot>();
  snap->own_txn = own_txn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    snap->next_txn_id = last_seen_txn_ + 1;
    snap->active.assign(active_txns_.begin(), active_txns_.end());
    snap->low_water =
        active_txns_.empty() ? snap->next_txn_id : *active_txns_.begin();
    snapshot_low_waters_[snap->low_water]++;
  }
  m_snapshots_->Increment();
  // The returned handle unregisters its low-water on destruction, releasing
  // the GC horizon this snapshot pinned.
  uint64_t lw = snap->low_water;
  return std::shared_ptr<const Snapshot>(
      snap.get(), [this, snap, lw](const Snapshot*) mutable {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = snapshot_low_waters_.find(lw);
        if (it != snapshot_low_waters_.end() && --it->second == 0) {
          snapshot_low_waters_.erase(it);
        }
        snap.reset();
      });
}

void MvccManager::OnInsert(uint32_t file_id, Rid rid, uint64_t txn) {
  if (!enabled_ || txn == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  last_seen_txn_ = std::max(last_seen_txn_, txn);
  FileMap& fm = files_[file_id];
  auto [it, inserted] = fm.rows.try_emplace(rid.Pack());
  Entry& e = it->second;
  if (inserted) BumpEntryCount(+1);
  e.xmin = txn;
  e.xmax = 0;
  e.deleted = false;
  RecordOp(txn, OpRec::Kind::kInsert, file_id, rid.Pack());
}

void MvccManager::OnUpdate(uint32_t file_id, Rid rid, uint64_t txn,
                           std::string_view pre_image) {
  if (!enabled_ || txn == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  last_seen_txn_ = std::max(last_seen_txn_, txn);
  FileMap& fm = files_[file_id];
  uint64_t key = rid.Pack();
  auto [it, inserted] = fm.rows.try_emplace(key);
  Entry& e = it->second;
  if (inserted) BumpEntryCount(+1);
  // Push the superseded image: it was created by the old xmin and ends at
  // this txn.
  OldVersion v;
  v.xmin = e.xmin;  // 0 when the row predates MVCC tracking
  v.xmax = txn;
  v.record.assign(pre_image.data(), pre_image.size());
  e.older.insert(e.older.begin(), std::move(v));
  e.xmin = txn;
  m_versions_created_->Increment();
  h_chain_len_->Observe(static_cast<int64_t>(e.older.size()));
  RecordOp(txn, OpRec::Kind::kUpdate, file_id, key);
}

void MvccManager::OnDelete(uint32_t file_id, Rid rid, uint64_t txn,
                           std::string_view pre_image) {
  if (!enabled_ || txn == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  last_seen_txn_ = std::max(last_seen_txn_, txn);
  FileMap& fm = files_[file_id];
  uint64_t key = rid.Pack();
  auto [it, inserted] = fm.rows.try_emplace(key);
  Entry& e = it->second;
  if (inserted) BumpEntryCount(+1);
  // Keep the deleted image as the newest chain link; the heap slot is gone.
  OldVersion v;
  v.xmin = e.xmin;
  v.xmax = txn;
  v.record.assign(pre_image.data(), pre_image.size());
  e.older.insert(e.older.begin(), std::move(v));
  e.deleted = true;
  e.xmax = txn;
  AddGhostLocked(fm, key);
  m_ghosts_created_->Increment();
  h_chain_len_->Observe(static_cast<int64_t>(e.older.size()));
  RecordOp(txn, OpRec::Kind::kDelete, file_id, key);
}

MvccManager::Visibility MvccManager::Check(uint32_t file_id, Rid rid,
                                           const Snapshot& snap,
                                           std::string* alt) const {
  if (!MightHaveVersions(file_id)) return Visibility::kCurrent;
  std::lock_guard<std::mutex> lk(mu_);
  auto fit = files_.find(file_id);
  if (fit == files_.end()) return Visibility::kCurrent;
  auto rit = fit->second.rows.find(rid.Pack());
  if (rit == fit->second.rows.end()) return Visibility::kCurrent;
  const Entry& e = rit->second;
  if (e.deleted) {
    // Caller fetched a live heap row, so a `deleted` entry here means the
    // RID was never reused (slots are not reused) — should not happen; be
    // safe and treat the heap row as current.
    return Visibility::kCurrent;
  }
  if (snap.Sees(e.xmin)) return Visibility::kCurrent;
  // Walk older versions, newest first: visible when its creator is seen and
  // its terminator is not.
  for (const OldVersion& v : e.older) {
    if (!snap.Sees(v.xmin)) continue;
    if (snap.Sees(v.xmax)) {
      // This version ended before the snapshot — and every older one did
      // too, so the row (as far as this snapshot goes) did not exist yet.
      break;
    }
    if (alt != nullptr) *alt = v.record;
    m_alt_reads_->Increment();
    return Visibility::kAltVersion;
  }
  m_invisible_rows_->Increment();
  return Visibility::kInvisible;
}

void MvccManager::VisibleGhosts(
    uint32_t file_id, uint32_t page_no, const Snapshot& snap,
    std::vector<std::pair<uint16_t, std::string>>* out) const {
  if (!MightHaveVersions(file_id)) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto fit = files_.find(file_id);
  if (fit == files_.end()) return;
  auto git = fit->second.ghosts_by_page.find(page_no);
  if (git == fit->second.ghosts_by_page.end()) return;
  size_t first = out->size();
  for (uint64_t key : git->second) {
    auto rit = fit->second.rows.find(key);
    if (rit == fit->second.rows.end() || !rit->second.deleted) continue;
    const Entry& e = rit->second;
    for (const OldVersion& v : e.older) {
      if (!snap.Sees(v.xmin)) continue;
      if (snap.Sees(v.xmax)) break;  // deletion (or older end) visible
      out->emplace_back(Rid::Unpack(key).slot, v.record);
      break;
    }
  }
  std::sort(out->begin() + first, out->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

bool MvccManager::GhostImage(uint32_t file_id, Rid rid, const Snapshot& snap,
                             std::string* out) const {
  if (!MightHaveVersions(file_id)) return false;
  std::lock_guard<std::mutex> lk(mu_);
  auto fit = files_.find(file_id);
  if (fit == files_.end()) return false;
  auto rit = fit->second.rows.find(rid.Pack());
  if (rit == fit->second.rows.end() || !rit->second.deleted) return false;
  for (const OldVersion& v : rit->second.older) {
    if (!snap.Sees(v.xmin)) continue;
    if (snap.Sees(v.xmax)) break;  // deletion (or older end) visible
    *out = v.record;
    m_alt_reads_->Increment();
    return true;
  }
  return false;
}

uint64_t MvccManager::Horizon() const {
  std::lock_guard<std::mutex> lk(mu_);
  return HorizonLocked();
}

size_t MvccManager::GarbageCollect() {
  std::lock_guard<std::mutex> lk(mu_);
  return GarbageCollectLocked();
}

uint64_t MvccManager::HorizonLocked() const {
  uint64_t h = last_seen_txn_ + 1;
  if (!active_txns_.empty()) h = std::min(h, *active_txns_.begin());
  if (!snapshot_low_waters_.empty()) {
    h = std::min(h, snapshot_low_waters_.begin()->first);
  }
  return h;
}

size_t MvccManager::GarbageCollectLocked() {
  m_gc_runs_->Increment();
  const uint64_t horizon = HorizonLocked();
  size_t freed = 0;
  size_t budget = gc_queue_.size();
  std::deque<std::pair<uint32_t, uint64_t>> requeue;
  while (budget-- > 0 && !gc_queue_.empty()) {
    auto [file_id, key] = gc_queue_.front();
    gc_queue_.pop_front();
    auto fit = files_.find(file_id);
    if (fit == files_.end()) continue;
    FileMap& fm = fit->second;
    auto rit = fm.rows.find(key);
    if (rit == fm.rows.end()) continue;
    Entry& e = rit->second;
    // Trim chain tail: a version is dead once the *next newer* write (its
    // xmax) is visible to every possible snapshot, i.e. xmax < horizon.
    while (!e.older.empty() && e.older.back().xmax < horizon &&
           e.older.back().xmax != 0) {
      e.older.pop_back();
      ++freed;
      m_gc_trimmed_->Increment();
    }
    bool erase = false;
    if (e.deleted) {
      // Ghost: gone once the deletion itself is universally visible and no
      // chain link survives.
      erase = e.older.empty() && e.xmax != 0 && e.xmax < horizon;
    } else {
      // Frozen: current version universally visible, no history left.
      erase = e.older.empty() && e.xmin < horizon;
    }
    if (erase) {
      EraseEntryLocked(fm, key);
      m_gc_entries_erased_->Increment();
    } else if (!e.older.empty() || e.deleted || e.xmin >= horizon) {
      // Still pinned by some snapshot or in-flight txn; revisit later.
      requeue.emplace_back(file_id, key);
    }
  }
  for (auto& item : requeue) gc_queue_.push_back(item);
  return freed;
}

size_t MvccManager::live_entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [fid, fm] : files_) n += fm.rows.size();
  return n;
}

size_t MvccManager::live_txns() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_txns_.size();
}

size_t MvccManager::live_snapshots() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& [lw, count] : snapshot_low_waters_) n += count;
  return n;
}

void MvccManager::RecordOp(uint64_t txn, OpRec::Kind kind, uint32_t file_id,
                           uint64_t rid) {
  txn_ops_[txn].push_back(OpRec{kind, file_id, rid});
}

void MvccManager::EraseEntryLocked(FileMap& fm, uint64_t rid) {
  auto it = fm.rows.find(rid);
  if (it == fm.rows.end()) return;
  if (it->second.deleted) RemoveGhostLocked(fm, rid);
  fm.rows.erase(it);
  BumpEntryCount(-1);
}

void MvccManager::AddGhostLocked(FileMap& fm, uint64_t rid) {
  uint32_t page = Rid::Unpack(rid).page_no;
  auto& vec = fm.ghosts_by_page[page];
  if (std::find(vec.begin(), vec.end(), rid) == vec.end()) {
    vec.push_back(rid);
  }
}

void MvccManager::RemoveGhostLocked(FileMap& fm, uint64_t rid) {
  uint32_t page = Rid::Unpack(rid).page_no;
  auto it = fm.ghosts_by_page.find(page);
  if (it == fm.ghosts_by_page.end()) return;
  auto& vec = it->second;
  vec.erase(std::remove(vec.begin(), vec.end(), rid), vec.end());
  if (vec.empty()) fm.ghosts_by_page.erase(it);
}

}  // namespace txn
}  // namespace rdbms
}  // namespace r3
