#ifndef R3DB_RDBMS_TXN_MVCC_H_
#define R3DB_RDBMS_TXN_MVCC_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "rdbms/storage/page.h"

namespace r3 {
namespace rdbms {
namespace txn {

/// A transaction's (or statement's) view of the database, captured when the
/// transaction begins. Snapshot isolation: a version is visible when its
/// creator committed before the snapshot was taken (or is the snapshot's own
/// transaction) and its deleter did not.
struct Snapshot {
  uint64_t own_txn = 0;      ///< 0 = read-only / autocommit statement
  uint64_t next_txn_id = 0;  ///< ids >= this began after the snapshot
  /// Oldest transaction whose effects this snapshot may not see: the GC
  /// horizon contribution of this snapshot while it is live.
  uint64_t low_water = 0;
  std::vector<uint64_t> active;  ///< in-flight txn ids at capture, sorted

  /// True when the effects of `t` are visible to this snapshot.
  bool Sees(uint64_t t) const {
    if (t == 0) return true;  // baseline / pre-MVCC write: committed long ago
    if (t == own_txn) return true;
    if (t >= next_txn_id) return false;
    // Aborted transactions revert their versions eagerly, so any id below
    // next_txn_id that was not active at capture has committed.
    return !std::binary_search(active.begin(), active.end(), t);
  }
};

/// Multi-version concurrency control over the heap: an in-memory version
/// chain per modified row, snapshot-visibility checks for readers, and a
/// transaction-end garbage collector.
///
/// The newest version of a row always lives in its heap page (InnoDB-style);
/// this manager keeps the row's logical header — creating txn (xmin),
/// deleting txn (xmax) — plus a chain of superseded record images, keyed by
/// {heap file, RID}. Rows never touched since MVCC was enabled have no entry
/// and are visible to every snapshot, so the map only ever holds the working
/// set of recent write transactions (GC trims it back after commit).
///
/// A physically deleted row whose deletion is invisible to some live
/// snapshot survives as a *ghost*: the slot is gone from the page (keeping
/// WAL, checksums, and non-MVCC behavior unchanged) but the chain retains
/// the last record image, indexed per page so sequential scans can emit it.
///
/// Thread-safe: one mutex guards the maps (writers are row-locked anyway;
/// readers only race with GC and concurrent writers in the stress tests).
/// Disabled (the default) every hook is a no-op and readers skip the map
/// entirely via an atomic emptiness check.
class MvccManager {
 public:
  explicit MvccManager(MetricsRegistry* metrics = nullptr);

  MvccManager(const MvccManager&) = delete;
  MvccManager& operator=(const MvccManager&) = delete;

  /// Turns version tracking on (Database::EnableWal does this). Off, all
  /// hooks no-op and visibility always answers kCurrent.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Crash aftermath: drop every chain, snapshot, and in-flight txn (the
  /// heap was dropped too; recovery rebuilds only committed state, which is
  /// visible to everyone without version info).
  void Reset();

  // -- Transaction registry --------------------------------------------------

  /// Registers `id` as in-flight; subsequent snapshots treat it as invisible
  /// until CommitTxn.
  void BeginTxn(uint64_t id);

  /// Marks `id` committed (drops it from the active set) and runs the
  /// transaction-end GC pass.
  void CommitTxn(uint64_t id);

  /// Reverts every version-map effect of `id` (the caller has already
  /// restored the heap images) and drops it from the active set.
  void AbortTxn(uint64_t id);

  /// Captures the active-txn set as a Snapshot. The snapshot is registered
  /// for GC-horizon purposes until the returned handle is destroyed.
  std::shared_ptr<const Snapshot> AcquireSnapshot(uint64_t own_txn = 0);

  // -- Writer hooks (no-ops when disabled) -----------------------------------

  /// Row inserted at `rid` by `txn`.
  void OnInsert(uint32_t file_id, Rid rid, uint64_t txn);

  /// Row at `rid` rewritten in place by `txn`; `pre_image` is the record as
  /// it was before the write.
  void OnUpdate(uint32_t file_id, Rid rid, uint64_t txn,
                std::string_view pre_image);

  /// Row at `rid` physically deleted by `txn`; `pre_image` becomes the ghost
  /// image older snapshots read.
  void OnDelete(uint32_t file_id, Rid rid, uint64_t txn,
                std::string_view pre_image);

  // -- Reader API ------------------------------------------------------------

  enum class Visibility {
    kCurrent,     ///< the heap record is the visible version
    kAltVersion,  ///< an older image (written to `*alt`) is visible
    kInvisible,   ///< no version of this row exists for the snapshot
  };

  /// Decides which version of the (live) heap row at `rid` snapshot `snap`
  /// sees. kAltVersion copies the visible image into `*alt`.
  Visibility Check(uint32_t file_id, Rid rid, const Snapshot& snap,
                   std::string* alt) const;

  /// Appends the ghost rows of `page_no` visible to `snap` — rows whose
  /// physical deletion the snapshot must not observe — as {slot, record},
  /// sorted by slot. Scans call this after the page's live slots.
  void VisibleGhosts(uint32_t file_id, uint32_t page_no, const Snapshot& snap,
                     std::vector<std::pair<uint16_t, std::string>>* out) const;

  /// Per-RID counterpart of VisibleGhosts, for index probes that land on a
  /// deferred-cleanup B-tree entry (DatabaseOptions::mvcc_index_ghosts):
  /// when the row at `rid` is a ghost whose deletion `snap` must not see,
  /// copies the snapshot-visible image into `*out` and returns true.
  bool GhostImage(uint32_t file_id, Rid rid, const Snapshot& snap,
                  std::string* out) const;

  /// Oldest txn id any live snapshot or in-flight transaction may still
  /// care about: effects of every id below it are universally visible.
  uint64_t Horizon() const;

  /// Lock-free fast path for scans: false guarantees no row of `file_id`
  /// has version info (every heap record is current and there are no
  /// ghosts), so per-row checks can be skipped wholesale.
  bool MightHaveVersions(uint32_t file_id) const {
    (void)file_id;  // global count: per-file precision isn't worth a lock
    return entry_count_.load(std::memory_order_acquire) != 0;
  }

  // -- Garbage collection ----------------------------------------------------

  /// Trims version chains and ghost entries no live snapshot can need.
  /// Runs automatically at CommitTxn; exposed for tests. Returns the number
  /// of record images freed.
  size_t GarbageCollect();

  // -- Introspection (tests) -------------------------------------------------

  size_t live_entries() const;
  size_t live_txns() const;
  size_t live_snapshots() const;

 private:
  /// A superseded record image. `xmin` wrote it; `xmax` replaced or deleted
  /// it (and is therefore the creator of the next-newer version, or the
  /// deleter of the row).
  struct OldVersion {
    uint64_t xmin = 0;
    uint64_t xmax = 0;
    std::string record;
  };

  /// Logical row header + history for one RID.
  struct Entry {
    uint64_t xmin = 0;     ///< creator of the current (heap) version
    uint64_t xmax = 0;     ///< deleter, when `deleted`
    bool deleted = false;  ///< ghost: the slot is physically gone
    std::vector<OldVersion> older;  ///< newest first
  };

  struct FileMap {
    std::unordered_map<uint64_t, Entry> rows;  ///< key: Rid::Pack()
    /// page -> packed RIDs of ghosts on that page (for scan emission).
    std::unordered_map<uint32_t, std::vector<uint64_t>> ghosts_by_page;
  };

  /// One reversible version-map effect, for AbortTxn.
  struct OpRec {
    enum class Kind : uint8_t { kInsert, kUpdate, kDelete };
    Kind kind;
    uint32_t file_id;
    uint64_t rid;
  };

  void RecordOp(uint64_t txn, OpRec::Kind kind, uint32_t file_id,
                uint64_t rid);
  void EraseEntryLocked(FileMap& fm, uint64_t rid);
  void AddGhostLocked(FileMap& fm, uint64_t rid);
  void RemoveGhostLocked(FileMap& fm, uint64_t rid);
  /// Oldest txn id any live snapshot or in-flight txn may care about.
  uint64_t HorizonLocked() const;
  size_t GarbageCollectLocked();
  void BumpEntryCount(int64_t delta) {
    entry_count_.fetch_add(delta, std::memory_order_acq_rel);
  }

  bool enabled_ = false;
  mutable std::mutex mu_;
  std::unordered_map<uint32_t, FileMap> files_;
  std::set<uint64_t> active_txns_;
  /// Registered snapshot low-waters (multiset semantics via counted map).
  std::map<uint64_t, int> snapshot_low_waters_;
  std::unordered_map<uint64_t, std::vector<OpRec>> txn_ops_;
  std::deque<std::pair<uint32_t, uint64_t>> gc_queue_;  ///< {file, rid}
  std::atomic<int64_t> entry_count_{0};
  uint64_t last_seen_txn_ = 0;  ///< highest id ever registered or written

  Counter* m_versions_created_;
  Counter* m_ghosts_created_;
  Counter* m_gc_runs_;
  Counter* m_gc_trimmed_;
  Counter* m_gc_entries_erased_;
  Counter* m_snapshots_;
  Counter* m_alt_reads_;       ///< reads served from an older version
  Counter* m_invisible_rows_;  ///< rows skipped as not-yet-visible
  Histogram* h_chain_len_;
};

}  // namespace txn
}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_TXN_MVCC_H_
