#ifndef R3DB_RDBMS_TXN_RECOVERY_H_
#define R3DB_RDBMS_TXN_RECOVERY_H_

#include <cstdint>

#include "common/metrics.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "rdbms/catalog.h"
#include "rdbms/storage/buffer_pool.h"
#include "rdbms/txn/wal.h"

namespace r3 {
namespace rdbms {
namespace txn {

struct RecoveryStats {
  int64_t scanned_records = 0;
  int64_t redone_records = 0;
  int64_t winner_txns = 0;
  int64_t loser_txns = 0;
  int64_t tables_rebuilt = 0;
};

/// Restart recovery over an already-crashed image: the caller has dropped
/// the buffer pool (so every read below sees the durable Disk state) and
/// truncated the WAL to its durable prefix (Wal::DropUnflushed).
///
/// Three passes (DESIGN.md §8):
///  1. Analysis — find the last checkpoint's redo point; partition txn ids
///     into winners (a commit record exists; autocommit id 0 always wins)
///     and losers (everything else — discarded, never redone; no-steal
///     buffering guarantees their changes are not on disk).
///  2. Redo — replay winners' heap operations in LSN order, skipping pages
///     whose on-disk LSN already covers the record (idempotence).
///  3. Rebuild — for every table touched by any scanned record: recount
///     row/byte stats from the heap and rebuild its B-trees from scratch
///     (index pages carry no LSNs; rebuilding from the recovered heap is
///     the recovery story for secondary structures).
Result<RecoveryStats> RunRecovery(Catalog* catalog, BufferPool* pool, Wal* wal,
                                  SimClock* clock,
                                  MetricsRegistry* metrics = nullptr);

}  // namespace txn
}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_TXN_RECOVERY_H_
