#ifndef R3DB_RDBMS_TXN_TXN_MANAGER_H_
#define R3DB_RDBMS_TXN_TXN_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_set>

#include "common/metrics.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "rdbms/storage/buffer_pool.h"
#include "rdbms/txn/lock_manager.h"
#include "rdbms/txn/mvcc.h"
#include "rdbms/txn/wal.h"

namespace r3 {
namespace rdbms {
namespace txn {

/// Transaction lifecycle + WAL coordination for one Database.
///
/// One explicit transaction at a time per Database session (the engine is a
/// single-session system; concurrency across sessions is modeled by the
/// throughput bench's deterministic scheduler, and the thread-safe
/// LockManager protects the real multi-threaded paths). Operations outside
/// an explicit transaction are autocommit: logged under txn id 0 — treated
/// as implicitly committed by recovery — and made durable by the next group
/// flush rather than forcing one per statement.
///
/// Policy summary (DESIGN.md §8): redo-only logging + no-steal buffering.
/// Commit forces the log (group flush); rollback undoes in memory from the
/// Database's undo log and writes an abort marker; recovery redoes winners
/// and simply discards losers, whose pages were never allowed to reach disk.
class TxnManager : public WalHook {
 public:
  TxnManager(BufferPool* pool, SimClock* clock,
             MetricsRegistry* metrics = nullptr);

  /// Turns on write-ahead logging: flushes the current pool contents as the
  /// baseline image, installs the WAL-before-data hook, and logs an initial
  /// checkpoint. DDL and bulk loads before this call are not logged (and not
  /// recoverable — they are the fixture, re-created by the harness).
  Status EnableWal();

  bool wal_enabled() const { return wal_ != nullptr; }
  Wal* wal() { return wal_.get(); }
  LockManager* locks() { return &locks_; }
  MvccManager* mvcc() { return &mvcc_; }

  bool in_txn() const { return active_txn_ != 0; }
  uint64_t active_txn_id() const { return active_txn_; }
  /// True when DML must be recorded (for undo and/or redo).
  bool tracking() const { return in_txn() || wal_enabled(); }

  Result<uint64_t> Begin();

  /// MVCC write id for the statement about to run: the active txn's id
  /// inside a transaction, else (autocommit, MVCC on) a fresh id with
  /// instant-commit semantics — it never enters the active set, so
  /// snapshots taken before the statement exclude it by id comparison
  /// alone, and snapshots taken after see it as committed. Returns 0 when
  /// MVCC is off (hooks no-op on 0). WAL records keep txn id 0 for
  /// autocommit either way, so the log stays byte-identical.
  uint64_t AllocWriteId();

  /// Closes an autocommit write id from AllocWriteId: moves its version-map
  /// footprint to GC (committed) or reverts it (statement failed after the
  /// Database's physical undo). No-op for in-txn ids — Commit/FinishRollback
  /// handle those.
  void FinishAutocommitWrite(uint64_t write_id, bool committed);

  /// Snapshot for the statement or transaction about to read.
  std::shared_ptr<const Snapshot> AcquireSnapshot() {
    return mvcc_.AcquireSnapshot(active_txn_);
  }
  /// Logs the commit record and forces the log. On failure (injected crash)
  /// the transaction stays open; the caller simulates the crash.
  Status Commit();
  /// Called by Database *after* it applied the in-memory undo: logs the
  /// abort marker, lifts no-steal pins, releases locks.
  Status FinishRollback();

  /// Logs one heap operation of the current txn (or autocommit txn 0),
  /// stamps the page LSN, and marks the frame WAL-dirty. No-op status when
  /// WAL is off but a txn is active (undo-only mode).
  Status LogHeapOp(LogType type, uint32_t file_id, Rid rid,
                   std::string_view payload);

  /// Fuzzy checkpoint: flushes what is flushable, logs a checkpoint record
  /// with the redo point, forces the log, truncates it.
  Status Checkpoint();

  /// Crash aftermath: forgets the active transaction, its locks and page
  /// pins (the buffer pool is dropped separately by the Database).
  void ResetAfterCrash();

  /// WalHook: the buffer pool calls this before writing a WAL-dirty page.
  Status EnsureDurable(uint64_t lsn) override;

 private:
  BufferPool* pool_;
  SimClock* clock_;
  MetricsRegistry* metrics_;
  LockManager locks_;
  MvccManager mvcc_;
  std::unique_ptr<Wal> wal_;
  uint64_t next_txn_id_ = 1;
  uint64_t active_txn_ = 0;
  uint64_t active_begin_lsn_ = 0;
  std::unordered_set<PageId, PageIdHash> txn_pages_;
  Counter* m_begins_;
  Counter* m_commits_;
  Counter* m_rollbacks_;
  Counter* m_checkpoints_;
};

}  // namespace txn
}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_TXN_TXN_MANAGER_H_
