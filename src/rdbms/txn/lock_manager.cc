#include "rdbms/txn/lock_manager.h"

#include <algorithm>
#include <chrono>

namespace r3 {
namespace rdbms {
namespace txn {
namespace {

// A wait this long means a lock cycle, not a slow holder.
constexpr auto kDeadlockTimeout = std::chrono::seconds(30);

// Least upper bound of two held modes on one resource (S+IX -> X).
LockMode Supremum(LockMode a, LockMode b) {
  if (a == b) return a;
  if (a == LockMode::kX || b == LockMode::kX) return LockMode::kX;
  if ((a == LockMode::kS && b == LockMode::kIX) ||
      (a == LockMode::kIX && b == LockMode::kS)) {
    return LockMode::kX;
  }
  if (a == LockMode::kS || b == LockMode::kS) return LockMode::kS;
  if (a == LockMode::kIX || b == LockMode::kIX) return LockMode::kIX;
  return LockMode::kIS;
}

// True when holding `held` already implies `want`.
bool Covers(LockMode held, LockMode want) {
  if (held == want) return true;
  switch (held) {
    case LockMode::kX:
      return true;
    case LockMode::kS:
      return want == LockMode::kIS;
    case LockMode::kIX:
      return want == LockMode::kIS;
    case LockMode::kIS:
      return false;
  }
  return false;
}

}  // namespace

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

bool LockCompatible(LockMode a, LockMode b) {
  if (a == LockMode::kX || b == LockMode::kX) return false;
  if (a == LockMode::kS && b == LockMode::kIX) return false;
  if (a == LockMode::kIX && b == LockMode::kS) return false;
  return true;
}

bool LockManager::Grantable(const Resource& res, uint64_t txn_id,
                            LockMode mode) const {
  for (const Holder& h : res.holders) {
    if (h.txn_id == txn_id) continue;
    if (!LockCompatible(h.mode, mode)) return false;
  }
  return true;
}

Status LockManager::Acquire(uint64_t txn_id, const std::string& resource,
                            LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  Resource& res = resources_[resource];
  Holder* own = nullptr;
  for (Holder& h : res.holders) {
    if (h.txn_id == txn_id) {
      own = &h;
      break;
    }
  }
  if (own != nullptr && Covers(own->mode, mode)) return Status::OK();

  auto deadline = std::chrono::steady_clock::now() + kDeadlockTimeout;
  while (!Grantable(res, txn_id, mode)) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::Internal("lock wait timeout on '" + resource + "' (" +
                              LockModeName(mode) + "); possible deadlock");
    }
  }
  if (own != nullptr) {
    // `own` may dangle if the map rehashed while we waited; re-find it.
    for (Holder& h : res.holders) {
      if (h.txn_id == txn_id) {
        h.mode = Supremum(h.mode, mode);
        return Status::OK();
      }
    }
  }
  res.holders.push_back(Holder{txn_id, mode});
  return Status::OK();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, res] : resources_) {
      auto& hs = res.holders;
      hs.erase(std::remove_if(
                   hs.begin(), hs.end(),
                   [txn_id](const Holder& h) { return h.txn_id == txn_id; }),
               hs.end());
    }
  }
  cv_.notify_all();
}

size_t LockManager::HeldCount(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, res] : resources_) {
    for (const Holder& h : res.holders) {
      if (h.txn_id == txn_id) {
        ++n;
        break;
      }
    }
  }
  return n;
}

int64_t LockSchedule::GrantStart(const std::string& resource, LockMode mode,
                                 int64_t t) const {
  auto it = tails_.find(resource);
  if (it == tails_.end()) return t;
  int64_t earliest =
      mode == LockMode::kX ? it->second.last_any_end : it->second.last_x_end;
  return std::max(t, earliest);
}

void LockSchedule::Record(const std::string& resource, LockMode mode,
                          int64_t end) {
  Tail& tail = tails_[resource];
  tail.last_any_end = std::max(tail.last_any_end, end);
  if (mode == LockMode::kX) tail.last_x_end = std::max(tail.last_x_end, end);
}

}  // namespace txn
}  // namespace rdbms
}  // namespace r3
