#include "rdbms/txn/lock_manager.h"

#include <algorithm>
#include <chrono>

namespace r3 {
namespace rdbms {
namespace txn {
namespace {

// A wait this long means a scheduling bug, not a slow holder: real cycles
// are caught by the waits-for detector long before this fires.
constexpr auto kLockWaitTimeout = std::chrono::seconds(30);

// Least upper bound of two held modes on one resource (S+IX -> X).
LockMode Supremum(LockMode a, LockMode b) {
  if (a == b) return a;
  if (a == LockMode::kX || b == LockMode::kX) return LockMode::kX;
  if ((a == LockMode::kS && b == LockMode::kIX) ||
      (a == LockMode::kIX && b == LockMode::kS)) {
    return LockMode::kX;
  }
  if (a == LockMode::kS || b == LockMode::kS) return LockMode::kS;
  if (a == LockMode::kIX || b == LockMode::kIX) return LockMode::kIX;
  return LockMode::kIS;
}

// True when holding `held` already implies `want`.
bool Covers(LockMode held, LockMode want) {
  if (held == want) return true;
  switch (held) {
    case LockMode::kX:
      return true;
    case LockMode::kS:
      return want == LockMode::kIS;
    case LockMode::kIX:
      return want == LockMode::kIS;
    case LockMode::kIS:
      return false;
  }
  return false;
}

}  // namespace

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

bool LockCompatible(LockMode a, LockMode b) {
  if (a == LockMode::kX || b == LockMode::kX) return false;
  if (a == LockMode::kS && b == LockMode::kIX) return false;
  if (a == LockMode::kIX && b == LockMode::kS) return false;
  return true;
}

std::string LockKey::DebugString() const {
  if (table_id == 0) return "<root>";
  std::string s = "t" + std::to_string(table_id - 1);
  if (row != kWholeTable) s += "#" + std::to_string(row);
  return s;
}

LockManager::LockManager(MetricsRegistry* metrics, SimClock* clock)
    : clock_(clock) {
  MetricsRegistry* m = metrics != nullptr ? metrics : GlobalMetrics();
  m_lock_waits_ = m->GetCounter("rdbms.txn.lock_waits");
  m_deadlock_aborts_ = m->GetCounter("rdbms.txn.deadlock_aborts");
  m_wait_lock_ = m->GetCounter("rdbms.wait.lock_wait");
  m_wait_deadlock_ = m->GetCounter("rdbms.wait.deadlock_abort");
  h_wait_us_ = m->GetHistogram("rdbms.txn.lock_wait_wall_us");
}

void LockManager::RecordWaitEvent(WaitClass c, const LockKey& key) {
  if (clock_ == nullptr) return;
  if (WaitEventLog* wl = clock_->wait_log()) {
    // Times are 0 by design (see constructor comment).
    wl->Record(c, 0, 0, key.DebugString());
  }
}

bool LockManager::Grantable(const Resource& res, uint64_t txn_id,
                            LockMode mode) const {
  for (const Holder& h : res.holders) {
    if (h.txn_id == txn_id) continue;
    if (!LockCompatible(h.mode, mode)) return false;
  }
  return true;
}

uint64_t LockManager::DetectDeadlockLocked(const Resource& res,
                                           uint64_t txn_id, LockMode mode) {
  // Refresh this txn's outgoing edges: it waits for every conflicting
  // holder of the resource.
  auto& edges = waits_for_[txn_id];
  edges.clear();
  for (const Holder& h : res.holders) {
    if (h.txn_id != txn_id && !LockCompatible(h.mode, mode)) {
      edges.insert(h.txn_id);
    }
  }
  // DFS from txn_id over waits_for_; a path back to txn_id is a cycle.
  // Iterative, with the path kept explicit so the victim can be chosen
  // from exactly the cycle members.
  std::vector<uint64_t> path{txn_id};
  std::vector<std::unordered_set<uint64_t>::const_iterator> frontier;
  std::unordered_set<uint64_t> visited{txn_id};
  auto it0 = waits_for_.find(txn_id);
  if (it0 == waits_for_.end() || it0->second.empty()) return 0;
  frontier.push_back(it0->second.begin());
  while (!frontier.empty()) {
    uint64_t at = path.back();
    auto eit = waits_for_.find(at);
    if (eit == waits_for_.end() || frontier.back() == eit->second.end()) {
      path.pop_back();
      frontier.pop_back();
      continue;
    }
    uint64_t next = *frontier.back();
    ++frontier.back();
    if (next == txn_id) {
      // Cycle = current path. Victim: the youngest (highest id) member.
      // Every member is parked on this mutex's CV, so the choice cannot
      // depend on thread timing — deterministic across runs.
      uint64_t victim = *std::max_element(path.begin(), path.end());
      victims_.insert(victim);
      m_deadlock_aborts_->Increment();
      m_wait_deadlock_->Increment();
      if (clock_ != nullptr) {
        if (WaitEventLog* wl = clock_->wait_log()) {
          wl->Record(WaitClass::kDeadlockAbort, 0, 0,
                     "txn" + std::to_string(victim));
        }
      }
      return victim;
    }
    if (!visited.insert(next).second) continue;
    auto nit = waits_for_.find(next);
    if (nit == waits_for_.end() || nit->second.empty()) continue;
    path.push_back(next);
    frontier.push_back(nit->second.begin());
  }
  return 0;
}

Status LockManager::Acquire(uint64_t txn_id, LockKey key, LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  if (victims_.count(txn_id) != 0) {
    return Status::Aborted("transaction " + std::to_string(txn_id) +
                           " chosen as deadlock victim");
  }
  Resource& res = resources_[key];
  Holder* own = nullptr;
  for (Holder& h : res.holders) {
    if (h.txn_id == txn_id) {
      own = &h;
      break;
    }
  }
  if (own != nullptr && Covers(own->mode, mode)) return Status::OK();

  bool waited = false;
  auto wait_start = std::chrono::steady_clock::now();
  auto deadline = wait_start + kLockWaitTimeout;
  while (!Grantable(res, txn_id, mode)) {
    if (!waited) {
      waited = true;
      m_lock_waits_->Increment();
      m_wait_lock_->Increment();
      RecordWaitEvent(WaitClass::kLockWait, key);
    }
    uint64_t victim = DetectDeadlockLocked(res, txn_id, mode);
    if (victim != 0) {
      // Wake everyone: parked victims must notice their mark.
      cv_.notify_all();
      if (victim == txn_id) {
        waits_for_.erase(txn_id);
        h_wait_us_->Observe(std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now() - wait_start)
                                .count());
        return Status::Aborted("transaction " + std::to_string(txn_id) +
                               " chosen as deadlock victim on " +
                               key.DebugString());
      }
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      waits_for_.erase(txn_id);
      return Status::Internal("lock wait timeout on '" + key.DebugString() +
                              "' (" + LockModeName(mode) + ")");
    }
    if (victims_.count(txn_id) != 0) {
      waits_for_.erase(txn_id);
      h_wait_us_->Observe(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - wait_start)
                              .count());
      return Status::Aborted("transaction " + std::to_string(txn_id) +
                             " chosen as deadlock victim");
    }
  }
  waits_for_.erase(txn_id);
  if (waited) {
    h_wait_us_->Observe(std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - wait_start)
                            .count());
  }
  if (own != nullptr) {
    // `own` may dangle if the map rehashed while we waited; re-find it.
    for (Holder& h : res.holders) {
      if (h.txn_id == txn_id) {
        h.mode = Supremum(h.mode, mode);
        return Status::OK();
      }
    }
  }
  res.holders.push_back(Holder{txn_id, mode});
  return Status::OK();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, res] : resources_) {
      auto& hs = res.holders;
      hs.erase(std::remove_if(
                   hs.begin(), hs.end(),
                   [txn_id](const Holder& h) { return h.txn_id == txn_id; }),
               hs.end());
    }
    waits_for_.erase(txn_id);
    victims_.erase(txn_id);
  }
  cv_.notify_all();
}

size_t LockManager::HeldCount(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, res] : resources_) {
    for (const Holder& h : res.holders) {
      if (h.txn_id == txn_id) {
        ++n;
        break;
      }
    }
  }
  return n;
}

int64_t LockSchedule::GrantStart(const std::string& resource, LockMode mode,
                                 int64_t t) const {
  auto it = tails_.find(resource);
  if (it == tails_.end()) return t;
  int64_t earliest =
      mode == LockMode::kX ? it->second.last_any_end : it->second.last_x_end;
  return std::max(t, earliest);
}

void LockSchedule::Record(const std::string& resource, LockMode mode,
                          int64_t end) {
  Tail& tail = tails_[resource];
  tail.last_any_end = std::max(tail.last_any_end, end);
  if (mode == LockMode::kX) tail.last_x_end = std::max(tail.last_x_end, end);
}

}  // namespace txn
}  // namespace rdbms
}  // namespace r3
