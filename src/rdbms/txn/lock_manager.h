#ifndef R3DB_RDBMS_TXN_LOCK_MANAGER_H_
#define R3DB_RDBMS_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace r3 {
namespace rdbms {
namespace txn {

/// Multi-granularity lock modes. The hierarchy is two levels deep: the root
/// resource "" (database) takes intention modes, table names take S/X.
enum class LockMode : uint8_t { kIS, kIX, kS, kX };

const char* LockModeName(LockMode mode);

/// True when two modes may be held on the same resource by different txns.
bool LockCompatible(LockMode a, LockMode b);

/// Table-level lock manager (thread-safe, blocking).
///
/// Grants are mode-compatible sets per resource; an incompatible request
/// blocks on a condition variable until the holders drain. There is no
/// deadlock detection — the supported workloads acquire in a fixed order
/// (root intention lock, then tables by statement) — but waits carry a
/// generous timeout so an accidental cycle fails a test instead of hanging
/// it.
class LockManager {
 public:
  /// Blocks until granted (or upgraded). Re-acquiring an already-covering
  /// mode is a no-op.
  Status Acquire(uint64_t txn_id, const std::string& resource, LockMode mode);

  /// Releases every lock held by `txn_id` and wakes waiters.
  void ReleaseAll(uint64_t txn_id);

  /// Number of resources on which `txn_id` holds a lock (for tests).
  size_t HeldCount(uint64_t txn_id) const;

 private:
  struct Holder {
    uint64_t txn_id;
    LockMode mode;
  };
  struct Resource {
    std::vector<Holder> holders;
  };

  /// True when `mode` may be granted to `txn_id` given current holders;
  /// ignores the txn's own entry (upgrade path).
  bool Grantable(const Resource& res, uint64_t txn_id, LockMode mode) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Resource> resources_;
};

/// Deterministic virtual-time model of S/X table locks for the throughput
/// bench: statements in the discrete-event simulation execute atomically
/// against the real engine, and this schedule decides *when* each one could
/// have started had the streams truly interleaved — an S request waits for
/// the last conflicting X to end, an X request for every earlier holder.
/// No threads, no timing jitter: byte-identical output across runs.
class LockSchedule {
 public:
  /// Earliest virtual time >= `t` at which `mode` on `resource` can start.
  int64_t GrantStart(const std::string& resource, LockMode mode,
                     int64_t t) const;

  /// Records that a granted lock was held until virtual time `end`.
  void Record(const std::string& resource, LockMode mode, int64_t end);

 private:
  struct Tail {
    int64_t last_x_end = 0;    ///< latest end of any X holder
    int64_t last_any_end = 0;  ///< latest end of any holder (S or X)
  };
  std::unordered_map<std::string, Tail> tails_;
};

}  // namespace txn
}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_TXN_LOCK_MANAGER_H_
