#ifndef R3DB_RDBMS_TXN_LOCK_MANAGER_H_
#define R3DB_RDBMS_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/wait_event.h"

namespace r3 {
namespace rdbms {
namespace txn {

/// Multi-granularity lock modes. The hierarchy is three levels deep: the
/// root resource (database) takes intention modes, tables take intention or
/// S/X modes, rows take S/X.
enum class LockMode : uint8_t { kIS, kIX, kS, kX };

const char* LockModeName(LockMode mode);

/// True when two modes may be held on the same resource by different txns.
bool LockCompatible(LockMode a, LockMode b);

/// Interned lock resource key: {table, row}. Replaces the old string key so
/// the hot path (one row X lock per DML row) never builds a std::string.
///
/// `table_id` is the heap file id + 1 (0 names the database root);
/// `row` is the packed RID, or kWholeTable for a table-level lock.
struct LockKey {
  static constexpr uint64_t kWholeTable = ~0ull;

  uint32_t table_id = 0;
  uint64_t row = kWholeTable;

  static LockKey Root() { return LockKey{0, kWholeTable}; }
  static LockKey Table(uint32_t file_id) {
    return LockKey{file_id + 1, kWholeTable};
  }
  static LockKey Row(uint32_t file_id, uint64_t packed_rid) {
    return LockKey{file_id + 1, packed_rid};
  }

  bool operator==(const LockKey& o) const {
    return table_id == o.table_id && row == o.row;
  }

  struct Hash {
    size_t operator()(const LockKey& k) const {
      uint64_t h = (static_cast<uint64_t>(k.table_id) << 32) ^ k.row;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdull;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };

  std::string DebugString() const;
};

/// Hierarchical lock manager (thread-safe, blocking) with row-granularity
/// X locks and waits-for-graph deadlock detection.
///
/// Grants are mode-compatible sets per resource; an incompatible request
/// records a waits-for edge to each conflicting holder and blocks on a
/// condition variable. Before sleeping (and after every wake) the requester
/// runs cycle detection over the waits-for graph: if its wait closes a
/// cycle, the youngest transaction in the cycle (highest txn id) is chosen
/// as victim — deterministically, since every cycle member is parked and
/// the graph cannot change under the manager's mutex. The victim's pending
/// and future Acquires return Status::Aborted (code kAborted) until its
/// locks are released, at which point the caller is expected to roll back.
class LockManager {
 public:
  /// `clock` (optional) is only used as the rendezvous for wait-event
  /// recording (common/wait_event.h): blocked Acquires report a kLockWait
  /// event, deadlock victims a kDeadlockAbort. Events carry counts only
  /// (sim times 0) — a lock wait's duration is wall time, which would break
  /// determinism, and the manager never reads the clock (session threads
  /// racing NowMicros() against the coordinator would trip TSan).
  explicit LockManager(MetricsRegistry* metrics = nullptr,
                       SimClock* clock = nullptr);

  /// Blocks until granted (or upgraded). Re-acquiring an already-covering
  /// mode is a no-op. Returns kAborted when this transaction was chosen as
  /// a deadlock victim (caller must roll back, which calls ReleaseAll).
  Status Acquire(uint64_t txn_id, LockKey key, LockMode mode);

  /// Releases every lock held by `txn_id`, clears its victim mark and
  /// waits-for edges, and wakes waiters.
  void ReleaseAll(uint64_t txn_id);

  /// Number of resources on which `txn_id` holds a lock (for tests).
  size_t HeldCount(uint64_t txn_id) const;

 private:
  struct Holder {
    uint64_t txn_id;
    LockMode mode;
  };
  struct Resource {
    std::vector<Holder> holders;
  };

  /// True when `mode` may be granted to `txn_id` given current holders;
  /// ignores the txn's own entry (upgrade path).
  bool Grantable(const Resource& res, uint64_t txn_id, LockMode mode) const;

  /// Records waits-for edges from `txn_id` to the conflicting holders of
  /// `res`, then checks for a cycle through `txn_id`. When one exists,
  /// marks the youngest member as victim and returns its id (0 = no cycle).
  uint64_t DetectDeadlockLocked(const Resource& res, uint64_t txn_id,
                                LockMode mode);

  /// Emits a count-only wait event to the clock's attached log, if any.
  void RecordWaitEvent(WaitClass c, const LockKey& key);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<LockKey, Resource, LockKey::Hash> resources_;
  /// txn -> set of txns it currently waits for (edges live only while the
  /// requester is parked in Acquire).
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> waits_for_;
  std::unordered_set<uint64_t> victims_;

  SimClock* clock_;             ///< wait-event rendezvous only; may be null
  Counter* m_lock_waits_;       ///< Acquires that had to block
  Counter* m_deadlock_aborts_;  ///< victims chosen
  Counter* m_wait_lock_;        ///< wait-event mirror of m_lock_waits_
  Counter* m_wait_deadlock_;    ///< wait-event mirror of m_deadlock_aborts_
  Histogram* h_wait_us_;        ///< blocked-acquire wall time
};

/// Deterministic virtual-time model of the lock protocol for the throughput
/// bench: statements in the discrete-event simulation execute atomically
/// against the real engine, and this schedule decides *when* each one could
/// have started had the streams truly interleaved — an S request waits for
/// the last conflicting X to end, an X request for every earlier holder.
/// No threads, no timing jitter: byte-identical output across runs.
///
/// Keys are strings (table names, or "table#rid" for the row-granularity
/// model) — this is bench bookkeeping, not the engine hot path.
class LockSchedule {
 public:
  /// Earliest virtual time >= `t` at which `mode` on `resource` can start.
  int64_t GrantStart(const std::string& resource, LockMode mode,
                     int64_t t) const;

  /// Records that a granted lock was held until virtual time `end`.
  void Record(const std::string& resource, LockMode mode, int64_t end);

 private:
  struct Tail {
    int64_t last_x_end = 0;    ///< latest end of any X holder
    int64_t last_any_end = 0;  ///< latest end of any holder (S or X)
  };
  std::unordered_map<std::string, Tail> tails_;
};

}  // namespace txn
}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_TXN_LOCK_MANAGER_H_
