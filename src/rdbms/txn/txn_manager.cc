#include "rdbms/txn/txn_manager.h"

#include <string>

#include "common/trace.h"
#include "rdbms/storage/page.h"

namespace r3 {
namespace rdbms {
namespace txn {

TxnManager::TxnManager(BufferPool* pool, SimClock* clock,
                       MetricsRegistry* metrics)
    : pool_(pool),
      clock_(clock),
      metrics_(metrics == nullptr ? GlobalMetrics() : metrics),
      locks_(metrics_, clock),
      mvcc_(metrics_) {
  m_begins_ = metrics_->GetCounter("rdbms.txn.begins");
  m_commits_ = metrics_->GetCounter("rdbms.txn.commits");
  m_rollbacks_ = metrics_->GetCounter("rdbms.txn.rollbacks");
  m_checkpoints_ = metrics_->GetCounter("rdbms.txn.checkpoints");
}

Status TxnManager::EnableWal() {
  if (wal_enabled()) return Status::OK();
  if (in_txn()) {
    return Status::InvalidArgument("EnableWal inside a transaction");
  }
  // Everything loaded so far becomes the durable baseline image; the log
  // only ever describes changes after this point.
  R3_RETURN_IF_ERROR(pool_->FlushAll());
  wal_ = std::make_unique<Wal>(clock_, metrics_);
  pool_->set_wal_hook(this);
  // Version tracking rides on the WAL switch: both mark the transition from
  // "fixture loading" to "transactional operation".
  mvcc_.set_enabled(true);
  return Checkpoint();
}

Result<uint64_t> TxnManager::Begin() {
  if (in_txn()) {
    return Status::InvalidArgument("transaction already active");
  }
  active_txn_ = next_txn_id_++;
  mvcc_.BeginTxn(active_txn_);
  if (wal_enabled()) {
    LogRecord rec;
    rec.txn_id = active_txn_;
    rec.type = LogType::kBegin;
    active_begin_lsn_ = wal_->Append(std::move(rec));
  }
  m_begins_->Add(1);
  return active_txn_;
}

Status TxnManager::Commit() {
  if (!in_txn()) return Status::InvalidArgument("no active transaction");
  TraceSpan span(clock_, "txn", "commit");
  span.ArgInt("txn_id", static_cast<int64_t>(active_txn_));
  if (wal_enabled()) {
    LogRecord rec;
    rec.txn_id = active_txn_;
    rec.type = LogType::kCommit;
    wal_->Append(std::move(rec));
    // Force: the commit is durable before control returns. Everything
    // pending rides along (group commit).
    R3_RETURN_IF_ERROR(wal_->Flush());
  }
  for (const PageId& pid : txn_pages_) pool_->ClearNoSteal(pid);
  txn_pages_.clear();
  mvcc_.CommitTxn(active_txn_);
  locks_.ReleaseAll(active_txn_);
  active_txn_ = 0;
  active_begin_lsn_ = 0;
  m_commits_->Add(1);
  return Status::OK();
}

Status TxnManager::FinishRollback() {
  if (!in_txn()) return Status::InvalidArgument("no active transaction");
  if (wal_enabled() && !wal_->crashed()) {
    LogRecord rec;
    rec.txn_id = active_txn_;
    rec.type = LogType::kAbort;
    wal_->Append(std::move(rec));
    // Not forced: recovery discards this txn with or without the marker.
  }
  for (const PageId& pid : txn_pages_) pool_->ClearNoSteal(pid);
  txn_pages_.clear();
  // The Database already restored the heap images; revert the version map
  // to match.
  mvcc_.AbortTxn(active_txn_);
  locks_.ReleaseAll(active_txn_);
  active_txn_ = 0;
  active_begin_lsn_ = 0;
  m_rollbacks_->Add(1);
  return Status::OK();
}

Status TxnManager::LogHeapOp(LogType type, uint32_t file_id, Rid rid,
                             std::string_view payload) {
  if (!wal_enabled()) return Status::OK();
  LogRecord rec;
  rec.txn_id = active_txn_;  // 0 = autocommit
  rec.type = type;
  rec.file_id = file_id;
  rec.rid = rid;
  rec.payload.assign(payload.data(), payload.size());
  uint64_t lsn = wal_->Append(std::move(rec));
  // Stamp the page so redo is idempotent; the page is resident (the caller
  // just modified it through a pin).
  PageId pid{file_id, rid.page_no};
  R3_ASSIGN_OR_RETURN(PageHandle h, pool_->FetchPage(pid));
  SlottedPage(h.data()).set_lsn(lsn);
  h.MarkDirty();
  bool no_steal = in_txn();
  R3_RETURN_IF_ERROR(pool_->MarkWalDirty(pid, lsn, no_steal));
  if (no_steal) txn_pages_.insert(pid);
  return Status::OK();
}

Status TxnManager::Checkpoint() {
  if (!wal_enabled()) {
    return Status::InvalidArgument("checkpoint requires WAL");
  }
  // Fuzzy: flush what is flushable (skips active-txn pages), then record
  // where redo must start — the oldest change still only in memory, or the
  // oldest active transaction, whichever is earlier.
  R3_RETURN_IF_ERROR(pool_->FlushAll());
  uint64_t redo_lsn = wal_->next_lsn();
  uint64_t min_dirty = pool_->MinDirtyRecLsn();
  if (min_dirty != 0 && min_dirty < redo_lsn) redo_lsn = min_dirty;
  if (in_txn() && active_begin_lsn_ != 0 && active_begin_lsn_ < redo_lsn) {
    redo_lsn = active_begin_lsn_;
  }
  LogRecord rec;
  rec.type = LogType::kCheckpoint;
  rec.checkpoint_redo_lsn = redo_lsn;
  wal_->Append(std::move(rec));
  R3_RETURN_IF_ERROR(wal_->Flush());
  wal_->TruncateBefore(redo_lsn);
  m_checkpoints_->Add(1);
  return Status::OK();
}

void TxnManager::ResetAfterCrash() {
  if (active_txn_ != 0) locks_.ReleaseAll(active_txn_);
  active_txn_ = 0;
  active_begin_lsn_ = 0;
  txn_pages_.clear();
  // Recovery rebuilds only committed state, visible to every snapshot; any
  // version chains describe heap images that no longer exist.
  mvcc_.Reset();
}

uint64_t TxnManager::AllocWriteId() {
  if (in_txn()) return active_txn_;
  if (!mvcc_.enabled()) return 0;
  return next_txn_id_++;
}

void TxnManager::FinishAutocommitWrite(uint64_t write_id, bool committed) {
  if (write_id == 0 || write_id == active_txn_) return;
  if (committed) {
    mvcc_.CommitTxn(write_id);
  } else {
    mvcc_.AbortTxn(write_id);
  }
}

Status TxnManager::EnsureDurable(uint64_t lsn) {
  if (!wal_enabled()) return Status::OK();
  return wal_->EnsureDurable(lsn);
}

}  // namespace txn
}  // namespace rdbms
}  // namespace r3
