#ifndef R3DB_RDBMS_TXN_WAL_H_
#define R3DB_RDBMS_TXN_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "rdbms/storage/disk.h"
#include "rdbms/storage/page.h"

namespace r3 {
namespace rdbms {
namespace txn {

/// Record types of the redo-only log. There are no CLRs: the buffer pool's
/// no-steal policy guarantees a loser's pages never reach disk, so recovery
/// simply discards records of transactions without a commit (DESIGN.md §8).
enum class LogType : uint8_t {
  kBegin,
  kCommit,
  kAbort,
  kHeapInsert,  ///< payload = record image, applied at exactly `rid`
  kHeapDelete,  ///< no payload
  kHeapUpdate,  ///< payload = after-image, in-place at `rid`
  kCheckpoint,  ///< `checkpoint_redo_lsn` = where redo must start
};

/// One physiological log record: page-addressed (file + rid), logical
/// within the page (slot-level op, not a byte diff).
struct LogRecord {
  uint64_t lsn = 0;  ///< assigned by Wal::Append
  uint64_t txn_id = 0;  ///< 0 = autocommit (implicitly committed when logged)
  LogType type = LogType::kBegin;
  uint32_t file_id = 0;
  Rid rid;
  std::string payload;
  uint64_t checkpoint_redo_lsn = 0;

  /// Serialized footprint used for group-flush I/O accounting.
  size_t ApproxBytes() const { return 32 + payload.size(); }
};

/// Redo-only write-ahead log with group flush.
///
/// Append() is cheap (an in-memory enqueue); durability happens at Flush(),
/// which makes every appended record durable at once and charges the
/// simulated clock one page write per started 8 KiB of accumulated log —
/// the group-commit batching that lets many small transactions share one
/// I/O. Records past flushed_lsn() are lost by a crash (DropUnflushed).
///
/// Fault injection: set_crash_at_flush(k) makes the k-th non-empty Flush()
/// fail with kIoError and latches the log in a crashed state (every later
/// append/flush fails too), simulating the process image dying at that
/// flush boundary. DropUnflushed() — the crash itself — clears the latch.
class Wal {
 public:
  Wal(SimClock* clock, MetricsRegistry* metrics = nullptr);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Enqueues a record, assigning and returning its LSN.
  uint64_t Append(LogRecord rec);

  /// Makes all appended records durable; no-op when none are pending.
  Status Flush();

  /// Flushes iff `lsn` is not yet durable (the WAL-before-data hook).
  Status EnsureDurable(uint64_t lsn);

  /// Crash: loses the unflushed tail and clears the injected-crash latch.
  void DropUnflushed();

  /// Checkpoint truncation: drops records with lsn < `lsn`.
  void TruncateBefore(uint64_t lsn);

  /// All retained records in LSN order (recovery scans this after
  /// DropUnflushed has removed the non-durable tail).
  const std::vector<LogRecord>& records() const { return log_; }

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t flushed_lsn() const { return flushed_lsn_; }
  bool crashed() const { return crashed_; }

  /// 0 disables injection; k >= 1 crashes the k-th non-empty flush
  /// (counted from the next call).
  void set_crash_at_flush(int64_t k);
  /// Non-empty flushes performed (or attempted) so far.
  int64_t flush_attempts() const { return flush_attempts_; }

 private:
  SimClock* clock_;
  Counter* m_appends_;
  Counter* m_flushes_;
  Counter* m_flushed_bytes_;
  Counter* m_flush_pages_;
  // Wait-event mirrors of the log-force stall (DESIGN.md §12).
  Counter* m_wait_flush_;
  Histogram* h_wait_flush_us_;
  std::vector<LogRecord> log_;
  uint64_t next_lsn_ = 1;
  uint64_t flushed_lsn_ = 0;
  size_t pending_bytes_ = 0;
  int64_t crash_at_flush_ = 0;
  int64_t flush_attempts_ = 0;
  bool crashed_ = false;
};

}  // namespace txn
}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_TXN_WAL_H_
