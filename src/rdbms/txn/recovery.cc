#include "rdbms/txn/recovery.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/trace.h"
#include "rdbms/index/btree.h"
#include "rdbms/row.h"
#include "rdbms/storage/heap_file.h"
#include "rdbms/storage/storage_engine.h"
#include "rdbms/storage/page.h"

namespace r3 {
namespace rdbms {
namespace txn {
namespace {

bool IsHeapOp(LogType t) {
  return t == LogType::kHeapInsert || t == LogType::kHeapDelete ||
         t == LogType::kHeapUpdate;
}

Status RedoHeapOp(BufferPool* pool, TableInfo* table, const LogRecord& rec) {
  PageId pid{rec.file_id, rec.rid.page_no};
  // Page allocation is durable in the Disk, so the page exists; it may read
  // back zeroed if it was allocated but never flushed (InsertAt self-heals
  // that; delete/update can only target records a flushed or redone insert
  // put there).
  R3_ASSIGN_OR_RETURN(PageHandle h, pool->FetchPage(pid));
  SlottedPage page(h.data());
  if (page.lsn() >= rec.lsn) return Status::OK();  // already applied
  switch (rec.type) {
    case LogType::kHeapInsert:
      R3_RETURN_IF_ERROR(page.InsertAt(rec.rid.slot, rec.payload));
      break;
    case LogType::kHeapDelete:
      R3_RETURN_IF_ERROR(page.Delete(rec.rid.slot));
      break;
    case LogType::kHeapUpdate:
      R3_RETURN_IF_ERROR(page.Update(rec.rid.slot, rec.payload));
      break;
    default:
      return Status::Internal("not a heap op");
  }
  page.set_lsn(rec.lsn);
  h.MarkDirty();
  (void)table;
  return Status::OK();
}

/// Recounts row/byte stats from the heap and rebuilds every index of
/// `table` against the recovered record images.
Status RebuildTable(Catalog* catalog, BufferPool* pool, TableInfo* table) {
  table->storage->ResetInsertHint();
  uint64_t rows = 0;
  uint64_t bytes = 0;
  for (IndexInfo* idx : table->indexes) {
    // A fresh tree in a fresh Disk file; the pre-crash file is orphaned
    // (acceptable for the in-memory Disk — see DESIGN.md §8).
    R3_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool));
    *idx->btree = std::move(tree);
  }
  std::unique_ptr<RecordIterator> it = table->storage->NewIterator();
  Rid rid;
  std::string rec;
  Row row;
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, it->Next(&rid, &rec));
    if (!ok) break;
    ++rows;
    bytes += rec.size();
    for (IndexInfo* idx : table->indexes) {
      R3_RETURN_IF_ERROR(DeserializeRow(table->schema, rec, &row));
      R3_RETURN_IF_ERROR(idx->btree->Insert(IndexKeyForRow(*idx, row),
                                            rid.Pack(), idx->unique));
    }
  }
  table->row_count = rows;
  table->data_bytes = bytes;
  (void)catalog;
  return Status::OK();
}

}  // namespace

Result<RecoveryStats> RunRecovery(Catalog* catalog, BufferPool* pool, Wal* wal,
                                  SimClock* clock, MetricsRegistry* metrics) {
  if (metrics == nullptr) metrics = GlobalMetrics();
  RecoveryStats stats;
  TraceSpan span(clock, "recovery", "redo");

  const std::vector<LogRecord>& log = wal->records();

  // Pass 1: analysis.
  uint64_t redo_lsn = log.empty() ? 0 : log.front().lsn;
  std::unordered_set<uint64_t> winners;
  std::unordered_set<uint64_t> seen_txns;
  for (const LogRecord& rec : log) {
    ++stats.scanned_records;
    if (rec.type == LogType::kCheckpoint) redo_lsn = rec.checkpoint_redo_lsn;
    if (rec.txn_id != 0) seen_txns.insert(rec.txn_id);
    if (rec.type == LogType::kCommit) winners.insert(rec.txn_id);
  }
  stats.winner_txns = static_cast<int64_t>(winners.size());
  stats.loser_txns = static_cast<int64_t>(seen_txns.size() - winners.size());

  // file_id -> table, for resolving physiological records.
  std::unordered_map<uint32_t, TableInfo*> by_file;
  for (const TableInfo* t : catalog->AllTables()) {
    R3_ASSIGN_OR_RETURN(TableInfo * mt, catalog->GetTable(t->name));
    // Only WAL-capable engines appear in the log; a columnar table's file
    // id never shows up (its writes are not logged).
    if (mt->storage->wal_capable()) by_file[mt->storage->file_id()] = mt;
  }

  // Pass 2: redo winners (and autocommit txn 0) from the redo point.
  std::unordered_set<uint32_t> touched_files;
  for (const LogRecord& rec : log) {
    if (!IsHeapOp(rec.type)) continue;
    auto it = by_file.find(rec.file_id);
    if (it == by_file.end()) {
      return Status::Internal("log references unknown file " +
                              std::to_string(rec.file_id));
    }
    touched_files.insert(rec.file_id);
    if (rec.lsn < redo_lsn) continue;
    if (rec.txn_id != 0 && winners.count(rec.txn_id) == 0) continue;
    R3_RETURN_IF_ERROR(RedoHeapOp(pool, it->second, rec));
    ++stats.redone_records;
  }

  // Pass 3: rebuild derived state of every touched table.
  for (uint32_t file_id : touched_files) {
    R3_RETURN_IF_ERROR(RebuildTable(catalog, pool, by_file[file_id]));
    ++stats.tables_rebuilt;
  }

  span.ArgInt("scanned", stats.scanned_records);
  span.ArgInt("redone", stats.redone_records);
  span.ArgInt("tables_rebuilt", stats.tables_rebuilt);
  metrics->GetCounter("rdbms.recovery.runs")->Add(1);
  metrics->GetCounter("rdbms.recovery.redo_records")->Add(stats.redone_records);
  metrics->GetCounter("rdbms.recovery.tables_rebuilt")->Add(stats.tables_rebuilt);
  return stats;
}

}  // namespace txn
}  // namespace rdbms
}  // namespace r3
