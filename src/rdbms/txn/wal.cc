#include "rdbms/txn/wal.h"

#include "common/trace.h"
#include "common/wait_event.h"

namespace r3 {
namespace rdbms {
namespace txn {

Wal::Wal(SimClock* clock, MetricsRegistry* metrics) : clock_(clock) {
  if (metrics == nullptr) metrics = GlobalMetrics();
  m_appends_ = metrics->GetCounter("rdbms.wal.appends");
  m_flushes_ = metrics->GetCounter("rdbms.wal.flushes");
  m_flushed_bytes_ = metrics->GetCounter("rdbms.wal.flushed_bytes");
  m_flush_pages_ = metrics->GetCounter("rdbms.wal.flush_pages");
  m_wait_flush_ = metrics->GetCounter("rdbms.wait.wal_flush");
  h_wait_flush_us_ = metrics->GetHistogram("rdbms.wait.wal_flush_us");
}

uint64_t Wal::Append(LogRecord rec) {
  rec.lsn = next_lsn_++;
  pending_bytes_ += rec.ApproxBytes();
  log_.push_back(std::move(rec));
  m_appends_->Add(1);
  return next_lsn_ - 1;
}

Status Wal::Flush() {
  if (crashed_) return Status::IoError("wal: log device lost (crashed)");
  if (next_lsn_ - 1 <= flushed_lsn_) return Status::OK();  // nothing pending
  ++flush_attempts_;
  if (crash_at_flush_ > 0 && flush_attempts_ == crash_at_flush_) {
    // The process image dies before the write hits the log device: nothing
    // appended since the previous flush becomes durable.
    crashed_ = true;
    return Status::IoError("wal: injected crash at flush point " +
                           std::to_string(crash_at_flush_));
  }
  int64_t pages =
      static_cast<int64_t>((pending_bytes_ + kPageSize - 1) / kPageSize);
  if (pages < 1) pages = 1;
  int64_t cost_us = pages * clock_->model().page_write_us;
  clock_->Charge(cost_us);
  m_wait_flush_->Add(1);
  h_wait_flush_us_->Observe(cost_us);
  if (Tracer* tracer = clock_->tracer()) {
    tracer->Complete("wal", "flush", clock_->NowMicros() - cost_us, cost_us);
  }
  if (WaitEventLog* wl = clock_->wait_log()) {
    wl->Record(WaitClass::kWalFlush, clock_->NowMicros() - cost_us, cost_us,
               "group_flush");
  }
  m_flushes_->Add(1);
  m_flushed_bytes_->Add(static_cast<int64_t>(pending_bytes_));
  m_flush_pages_->Add(pages);
  flushed_lsn_ = next_lsn_ - 1;
  pending_bytes_ = 0;
  return Status::OK();
}

Status Wal::EnsureDurable(uint64_t lsn) {
  if (lsn <= flushed_lsn_) return Status::OK();
  return Flush();
}

void Wal::DropUnflushed() {
  while (!log_.empty() && log_.back().lsn > flushed_lsn_) log_.pop_back();
  next_lsn_ = flushed_lsn_ + 1;
  pending_bytes_ = 0;
  crashed_ = false;
  crash_at_flush_ = 0;
}

void Wal::TruncateBefore(uint64_t lsn) {
  size_t keep_from = 0;
  while (keep_from < log_.size() && log_[keep_from].lsn < lsn) ++keep_from;
  if (keep_from > 0) log_.erase(log_.begin(), log_.begin() + keep_from);
}

void Wal::set_crash_at_flush(int64_t k) {
  crash_at_flush_ = k == 0 ? 0 : flush_attempts_ + k;
}

}  // namespace txn
}  // namespace rdbms
}  // namespace r3
