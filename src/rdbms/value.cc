#include "rdbms/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "common/date.h"
#include "common/str_util.h"

namespace r3 {
namespace rdbms {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kDecimal:
      return "DECIMAL";
    case DataType::kString:
      return "STRING";
    case DataType::kDate:
      return "DATE";
  }
  return "?";
}

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kDecimal;
}

Value Value::Decimal(double d) {
  return DecimalFromCents(static_cast<int64_t>(std::llround(d * 100.0)));
}

double Value::AsDouble() const {
  switch (type_) {
    case DataType::kDouble:
      return d_;
    case DataType::kDecimal:
      return static_cast<double>(i_) / 100.0;
    default:
      return static_cast<double>(i_);
  }
}

int64_t Value::AsInt() const {
  switch (type_) {
    case DataType::kDouble:
      return static_cast<int64_t>(d_);
    case DataType::kDecimal:
      return i_ / 100;
    default:
      return i_;
  }
}

int Value::Compare(const Value& other) const {
  if (null_ || other.null_) {
    if (null_ && other.null_) return 0;
    return null_ ? -1 : 1;
  }
  // Numeric cross-comparison (int/decimal/double). Bool and date compare
  // only with themselves via the integer path below.
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    if (type_ == other.type_ && type_ != DataType::kDouble) {
      return i_ < other.i_ ? -1 : (i_ > other.i_ ? 1 : 0);
    }
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case DataType::kString: {
      int c = s_.compare(other.s_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return i_ < other.i_ ? -1 : (i_ > other.i_ ? 1 : 0);
  }
}

size_t Value::Hash() const {
  if (null_) return 0x9e3779b9u;
  switch (type_) {
    case DataType::kString:
      return std::hash<std::string>()(s_);
    case DataType::kDouble: {
      // Hash the numeric value so 1.0 (double) == 1 (int) hash-match in
      // mixed-type joins after binder casts; doubles that are integral hash
      // as their integer value.
      double d = d_;
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case DataType::kDecimal: {
      if (i_ % 100 == 0) return std::hash<int64_t>()(i_ / 100);
      return std::hash<double>()(AsDouble());
    }
    default:
      return std::hash<int64_t>()(i_);
  }
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case DataType::kBool:
      return i_ ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(i_);
    case DataType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", d_);
      return buf;
    }
    case DataType::kDecimal: {
      char buf[40];
      int64_t whole = i_ / 100;
      int64_t frac = i_ % 100;
      if (frac < 0) frac = -frac;
      if (i_ < 0 && whole == 0) {
        std::snprintf(buf, sizeof(buf), "-0.%02lld", static_cast<long long>(frac));
      } else {
        std::snprintf(buf, sizeof(buf), "%lld.%02lld", static_cast<long long>(whole),
                      static_cast<long long>(frac));
      }
      return buf;
    }
    case DataType::kString:
      return s_;
    case DataType::kDate:
      return date::ToString(static_cast<int32_t>(i_));
  }
  return "?";
}

Result<Value> Value::CastTo(DataType target) const {
  if (null_) return Null(target);
  if (target == type_) return *this;
  switch (target) {
    case DataType::kInt64:
      switch (type_) {
        case DataType::kDouble:
        case DataType::kDecimal:
        case DataType::kBool:
        case DataType::kDate:
          return Int(AsInt());
        case DataType::kString: {
          std::string t = str::Trim(s_);
          char* end = nullptr;
          long long v = std::strtoll(t.c_str(), &end, 10);
          if (end == t.c_str() || (end != nullptr && *end != '\0')) {
            return Status::InvalidArgument("cannot cast '" + s_ + "' to INT");
          }
          return Int(v);
        }
        default:
          break;
      }
      break;
    case DataType::kDouble:
      if (IsNumeric(type_) || type_ == DataType::kBool) return Dbl(AsDouble());
      if (type_ == DataType::kString) {
        std::string t = str::Trim(s_);
        char* end = nullptr;
        double d = std::strtod(t.c_str(), &end);
        if (end == t.c_str() || (end != nullptr && *end != '\0')) {
          return Status::InvalidArgument("cannot cast '" + s_ + "' to DOUBLE");
        }
        return Dbl(d);
      }
      break;
    case DataType::kDecimal:
      if (IsNumeric(type_)) return Decimal(AsDouble());
      if (type_ == DataType::kString) {
        std::string t = str::Trim(s_);
        char* end = nullptr;
        double d = std::strtod(t.c_str(), &end);
        if (end == t.c_str() || (end != nullptr && *end != '\0')) {
          return Status::InvalidArgument("cannot cast '" + s_ +
                                         "' to DECIMAL");
        }
        return Decimal(d);
      }
      break;
    case DataType::kString:
      return Str(ToString());
    case DataType::kDate:
      if (type_ == DataType::kString) {
        R3_ASSIGN_OR_RETURN(int32_t dn, date::Parse(str::RTrim(s_)));
        return Date(dn);
      }
      if (type_ == DataType::kInt64) return Date(static_cast<int32_t>(i_));
      break;
    case DataType::kBool:
      if (IsNumeric(type_)) return Bool(AsDouble() != 0.0);
      break;
  }
  return Status::InvalidArgument(std::string("unsupported cast ") +
                                 DataTypeName(type_) + " -> " +
                                 DataTypeName(target));
}

}  // namespace rdbms
}  // namespace r3
