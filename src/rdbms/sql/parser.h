#ifndef R3DB_RDBMS_SQL_PARSER_H_
#define R3DB_RDBMS_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "rdbms/sql/ast.h"

namespace r3 {
namespace rdbms {

/// Parses one SQL statement (optionally `;`-terminated).
///
/// Supported dialect (what the project's workloads need, and a bit more):
///   SELECT [DISTINCT] list FROM t [alias] (, t | JOIN t ON e | LEFT JOIN ...)
///     [WHERE e] [GROUP BY e, ...] [HAVING e] [ORDER BY e [ASC|DESC], ...]
///     [LIMIT n]
///   scalar/EXISTS/IN subqueries, CASE WHEN, CAST, DATE 'yyyy-mm-dd',
///   `?` parameters, arithmetic, LIKE/BETWEEN/IN/IS NULL
///   INSERT INTO t [(cols)] VALUES (...), (...) ...
///   DELETE FROM t [WHERE e] | UPDATE t SET c = e, ... [WHERE e]
///   CREATE TABLE t (col type ..., [PRIMARY KEY (cols)])
///   CREATE [UNIQUE] INDEX i ON t (cols) | CREATE VIEW v AS SELECT ...
///   DROP TABLE|INDEX|VIEW name | ANALYZE [t]
Result<Statement> ParseStatement(const std::string& sql);

/// Parses text that must be a single SELECT.
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql);

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_SQL_PARSER_H_
