#include "rdbms/sql/parser.h"

#include <utility>

#include "common/date.h"
#include "common/str_util.h"
#include "rdbms/sql/lexer.h"

namespace r3 {
namespace rdbms {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string sql)
      : tokens_(std::move(tokens)), sql_(std::move(sql)) {}

  Result<Statement> ParseTop();
  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt();

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool PeekKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && str::EqualsIgnoreCase(t.text, kw);
  }
  bool MatchKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Error(std::string("expected ") + kw);
  }
  bool PeekOp(const char* op, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kOperator && t.text == op;
  }
  bool MatchOp(const char* op) {
    if (PeekOp(op)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectOp(const char* op) {
    if (MatchOp(op)) return Status::OK();
    return Error(std::string("expected '") + op + "'");
  }
  Status Error(const std::string& what) const {
    const Token& t = Peek();
    std::string near = t.type == TokenType::kEnd ? "<end>" : t.text;
    return Status::InvalidArgument(
        str::Format("parse error at offset %zu near '%s': %s", t.position,
                    near.c_str(), what.c_str()));
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    Advance();
    return t.text;
  }

  // Expressions, by precedence.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAddSub();
  Result<ExprPtr> ParseMulDiv();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseCase();
  Result<ExprPtr> ParseFunctionCall(const std::string& name);

  // Clauses.
  Result<std::unique_ptr<TableRef>> ParseFromItem();
  Result<std::unique_ptr<TableRef>> ParseTablePrimary();
  Result<Statement> ParseInsert();
  Result<Statement> ParseDelete();
  Result<Statement> ParseUpdate();
  Result<Statement> ParseCreate();
  Result<Statement> ParseDrop();
  Result<Statement> ParseAnalyze();
  Result<Column> ParseColumnDef();

  bool AtSelectKeyword() const { return PeekKeyword("SELECT"); }

  bool IsReserved(const std::string& word) const {
    static const char* kReserved[] = {
        "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",     "HAVING", "ORDER",
        "LIMIT",  "AND",   "OR",     "NOT",    "AS",     "ON",     "JOIN",
        "LEFT",   "OUTER", "INNER",  "ASC",    "DESC",   "UNION",  "VALUES",
        "SET",    "INTO",  "DISTINCT", "CASE", "WHEN",   "THEN",   "ELSE",
        "END",    "IS",    "NULL",   "LIKE",   "IN",     "BETWEEN", "EXISTS",
    };
    for (const char* kw : kReserved) {
      if (str::EqualsIgnoreCase(word, kw)) return true;
    }
    return false;
  }

  std::vector<Token> tokens_;
  std::string sql_;
  size_t pos_ = 0;
  size_t next_param_ = 0;
};

Result<ExprPtr> Parser::ParseOr() {
  R3_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchKeyword("OR")) {
    R3_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = MakeLogic(LogicOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  R3_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (MatchKeyword("AND")) {
    R3_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = MakeLogic(LogicOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    R3_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
    return MakeNot(std::move(inner));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  R3_ASSIGN_OR_RETURN(ExprPtr left, ParseAddSub());

  // IS [NOT] NULL
  if (PeekKeyword("IS")) {
    Advance();
    bool negated = MatchKeyword("NOT");
    R3_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    return MakeIsNull(std::move(left), negated);
  }

  bool negated = false;
  if (PeekKeyword("NOT") &&
      (PeekKeyword("LIKE", 1) || PeekKeyword("IN", 1) || PeekKeyword("BETWEEN", 1))) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("LIKE")) {
    R3_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAddSub());
    return MakeLike(std::move(left), std::move(pattern), negated);
  }
  if (MatchKeyword("BETWEEN")) {
    R3_ASSIGN_OR_RETURN(ExprPtr lo, ParseAddSub());
    R3_RETURN_IF_ERROR(ExpectKeyword("AND"));
    R3_ASSIGN_OR_RETURN(ExprPtr hi, ParseAddSub());
    return MakeBetween(std::move(left), std::move(lo), std::move(hi), negated);
  }
  if (MatchKeyword("IN")) {
    R3_RETURN_IF_ERROR(ExpectOp("("));
    if (AtSelectKeyword()) {
      R3_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelectStmt());
      R3_RETURN_IF_ERROR(ExpectOp(")"));
      auto e = std::make_unique<Expr>(ExprKind::kInSubquery);
      e->negated = negated;
      e->subquery_ast = std::move(sub);
      e->children.push_back(std::move(left));
      return ExprPtr(std::move(e));
    }
    auto e = std::make_unique<Expr>(ExprKind::kInList);
    e->negated = negated;
    e->children.push_back(std::move(left));
    do {
      R3_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
      e->children.push_back(std::move(item));
    } while (MatchOp(","));
    R3_RETURN_IF_ERROR(ExpectOp(")"));
    return ExprPtr(std::move(e));
  }

  static const struct {
    const char* text;
    CmpOp op;
  } kOps[] = {
      {"=", CmpOp::kEq}, {"<>", CmpOp::kNe}, {"<=", CmpOp::kLe},
      {">=", CmpOp::kGe}, {"<", CmpOp::kLt}, {">", CmpOp::kGt},
  };
  for (const auto& [text, op] : kOps) {
    if (MatchOp(text)) {
      R3_ASSIGN_OR_RETURN(ExprPtr right, ParseAddSub());
      return MakeCompare(op, std::move(left), std::move(right));
    }
  }
  return left;
}

Result<ExprPtr> Parser::ParseAddSub() {
  R3_ASSIGN_OR_RETURN(ExprPtr left, ParseMulDiv());
  while (true) {
    if (MatchOp("+")) {
      R3_ASSIGN_OR_RETURN(ExprPtr right, ParseMulDiv());
      left = MakeArith(ArithOp::kAdd, std::move(left), std::move(right));
    } else if (MatchOp("-")) {
      R3_ASSIGN_OR_RETURN(ExprPtr right, ParseMulDiv());
      left = MakeArith(ArithOp::kSub, std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::ParseMulDiv() {
  R3_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (true) {
    if (MatchOp("*")) {
      R3_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeArith(ArithOp::kMul, std::move(left), std::move(right));
    } else if (MatchOp("/")) {
      R3_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeArith(ArithOp::kDiv, std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchOp("-")) {
    R3_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
    return MakeNeg(std::move(inner));
  }
  if (MatchOp("+")) {
    return ParseUnary();
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParseCase() {
  auto e = std::make_unique<Expr>(ExprKind::kCase);
  while (MatchKeyword("WHEN")) {
    R3_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    R3_RETURN_IF_ERROR(ExpectKeyword("THEN"));
    R3_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
    e->children.push_back(std::move(cond));
    e->children.push_back(std::move(then));
  }
  if (e->children.empty()) {
    return Error("CASE requires at least one WHEN");
  }
  if (MatchKeyword("ELSE")) {
    R3_ASSIGN_OR_RETURN(ExprPtr els, ParseExpr());
    e->children.push_back(std::move(els));
    e->case_has_else = true;
  }
  R3_RETURN_IF_ERROR(ExpectKeyword("END"));
  return ExprPtr(std::move(e));
}

Result<ExprPtr> Parser::ParseFunctionCall(const std::string& name) {
  // Aggregates.
  struct AggName {
    const char* text;
    AggFunc func;
  };
  static const AggName kAggs[] = {
      {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum},
      {"AVG", AggFunc::kAvg},     {"MIN", AggFunc::kMin},
      {"MAX", AggFunc::kMax},
  };
  for (const AggName& a : kAggs) {
    if (str::EqualsIgnoreCase(name, a.text)) {
      if (a.func == AggFunc::kCount && MatchOp("*")) {
        R3_RETURN_IF_ERROR(ExpectOp(")"));
        return MakeAggCall(AggFunc::kCountStar, nullptr, false);
      }
      bool distinct = MatchKeyword("DISTINCT");
      R3_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      R3_RETURN_IF_ERROR(ExpectOp(")"));
      return MakeAggCall(a.func, std::move(arg), distinct);
    }
  }
  // Scalar function.
  std::vector<ExprPtr> args;
  if (!PeekOp(")")) {
    do {
      R3_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      args.push_back(std::move(arg));
    } while (MatchOp(","));
  }
  R3_RETURN_IF_ERROR(ExpectOp(")"));
  return MakeFunc(name, std::move(args));
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kInteger:
      Advance();
      return MakeLiteral(Value::Int(t.int_value));
    case TokenType::kFloat:
      Advance();
      return MakeLiteral(Value::Dbl(t.float_value));
    case TokenType::kString:
      Advance();
      return MakeLiteral(Value::Str(t.text));
    case TokenType::kOperator:
      if (t.text == "?") {
        Advance();
        return MakeParam(next_param_++);
      }
      if (t.text == "(") {
        Advance();
        if (AtSelectKeyword()) {
          R3_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelectStmt());
          R3_RETURN_IF_ERROR(ExpectOp(")"));
          auto e = std::make_unique<Expr>(ExprKind::kScalarSubquery);
          e->subquery_ast = std::move(sub);
          return ExprPtr(std::move(e));
        }
        R3_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        R3_RETURN_IF_ERROR(ExpectOp(")"));
        return inner;
      }
      return Error("expected expression");
    case TokenType::kIdentifier: {
      // Special forms.
      if (str::EqualsIgnoreCase(t.text, "CASE")) {
        Advance();
        return ParseCase();
      }
      if (str::EqualsIgnoreCase(t.text, "EXISTS")) {
        Advance();
        R3_RETURN_IF_ERROR(ExpectOp("("));
        if (!AtSelectKeyword()) return Error("EXISTS requires a subquery");
        R3_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sub, ParseSelectStmt());
        R3_RETURN_IF_ERROR(ExpectOp(")"));
        auto e = std::make_unique<Expr>(ExprKind::kExistsSubquery);
        e->subquery_ast = std::move(sub);
        return ExprPtr(std::move(e));
      }
      if (str::EqualsIgnoreCase(t.text, "CAST")) {
        Advance();
        R3_RETURN_IF_ERROR(ExpectOp("("));
        R3_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        R3_RETURN_IF_ERROR(ExpectKeyword("AS"));
        R3_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier("type"));
        // Optional (n) / (p,s) ignored for cast purposes.
        if (MatchOp("(")) {
          while (!PeekOp(")") && Peek().type != TokenType::kEnd) Advance();
          R3_RETURN_IF_ERROR(ExpectOp(")"));
        }
        R3_RETURN_IF_ERROR(ExpectOp(")"));
        std::string tn = str::ToUpper(type_name);
        DataType target;
        if (tn == "INT" || tn == "INTEGER" || tn == "BIGINT") {
          target = DataType::kInt64;
        } else if (tn == "DOUBLE" || tn == "FLOAT") {
          target = DataType::kDouble;
        } else if (tn == "DECIMAL" || tn == "NUMERIC") {
          target = DataType::kDecimal;
        } else if (tn == "CHAR" || tn == "VARCHAR" || tn == "STRING") {
          target = DataType::kString;
        } else if (tn == "DATE") {
          target = DataType::kDate;
        } else if (tn == "BOOLEAN" || tn == "BOOL") {
          target = DataType::kBool;
        } else {
          return Error("unknown cast target type " + type_name);
        }
        return MakeCast(std::move(inner), target);
      }
      if (str::EqualsIgnoreCase(t.text, "DATE") &&
          Peek(1).type == TokenType::kString) {
        Advance();
        const Token& lit = Advance();
        R3_ASSIGN_OR_RETURN(int32_t dn, date::Parse(lit.text));
        return MakeLiteral(Value::Date(dn));
      }
      if (str::EqualsIgnoreCase(t.text, "NULL")) {
        Advance();
        return MakeLiteral(Value::Null());
      }
      if (str::EqualsIgnoreCase(t.text, "TRUE")) {
        Advance();
        return MakeLiteral(Value::Bool(true));
      }
      if (str::EqualsIgnoreCase(t.text, "FALSE")) {
        Advance();
        return MakeLiteral(Value::Bool(false));
      }
      // Function call?
      if (PeekOp("(", 1)) {
        std::string name = t.text;
        Advance();
        Advance();  // '('
        return ParseFunctionCall(name);
      }
      // Column reference: ident or ident.ident.
      Advance();
      if (MatchOp(".")) {
        R3_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        return MakeColumnRef(t.text, std::move(col));
      }
      return MakeColumnRef("", t.text);
    }
    case TokenType::kEnd:
      return Error("unexpected end of input");
  }
  return Error("expected expression");
}

Result<std::unique_ptr<TableRef>> Parser::ParseTablePrimary() {
  R3_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
  auto ref = std::make_unique<TableRef>();
  ref->kind = TableRef::Kind::kBase;
  ref->name = std::move(name);
  if (MatchKeyword("AS")) {
    R3_ASSIGN_OR_RETURN(ref->alias, ExpectIdentifier("alias"));
  } else if (Peek().type == TokenType::kIdentifier && !IsReserved(Peek().text)) {
    ref->alias = Advance().text;
  }
  return ref;
}

Result<std::unique_ptr<TableRef>> Parser::ParseFromItem() {
  R3_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> left, ParseTablePrimary());
  while (true) {
    bool left_outer = false;
    if (PeekKeyword("LEFT")) {
      Advance();
      MatchKeyword("OUTER");
      R3_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      left_outer = true;
    } else if (PeekKeyword("INNER") && PeekKeyword("JOIN", 1)) {
      Advance();
      Advance();
    } else if (PeekKeyword("JOIN")) {
      Advance();
    } else {
      return left;
    }
    R3_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> right, ParseTablePrimary());
    R3_RETURN_IF_ERROR(ExpectKeyword("ON"));
    R3_ASSIGN_OR_RETURN(ExprPtr on, ParseExpr());
    auto join = std::make_unique<TableRef>();
    join->kind = TableRef::Kind::kJoin;
    join->left = std::move(left);
    join->right = std::move(right);
    join->left_outer = left_outer;
    join->on = std::move(on);
    left = std::move(join);
  }
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelectStmt() {
  R3_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStmt>();
  stmt->distinct = MatchKeyword("DISTINCT");

  do {
    SelectItem item;
    if (MatchOp("*")) {
      item.star = true;
    } else {
      R3_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        R3_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      } else if (Peek().type == TokenType::kIdentifier && !IsReserved(Peek().text)) {
        item.alias = Advance().text;
      }
    }
    stmt->items.push_back(std::move(item));
  } while (MatchOp(","));

  R3_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  do {
    R3_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> item, ParseFromItem());
    stmt->from.push_back(std::move(item));
  } while (MatchOp(","));

  if (MatchKeyword("WHERE")) {
    R3_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (PeekKeyword("GROUP")) {
    Advance();
    R3_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      R3_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
      stmt->group_by.push_back(std::move(g));
    } while (MatchOp(","));
  }
  if (MatchKeyword("HAVING")) {
    R3_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  if (PeekKeyword("ORDER")) {
    Advance();
    R3_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderItem item;
      R3_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.asc = false;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
    } while (MatchOp(","));
  }
  if (MatchKeyword("LIMIT")) {
    const Token& t = Peek();
    if (t.type != TokenType::kInteger) return Error("LIMIT expects an integer");
    Advance();
    stmt->limit = t.int_value;
  }
  return stmt;
}

Result<Column> Parser::ParseColumnDef() {
  R3_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("column name"));
  R3_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier("type"));
  std::string tn = str::ToUpper(type_name);
  Column col;
  col.name = std::move(name);
  auto parse_len = [&]() -> Result<int64_t> {
    R3_RETURN_IF_ERROR(ExpectOp("("));
    const Token& t = Peek();
    if (t.type != TokenType::kInteger) return Error("expected length");
    Advance();
    // DECIMAL(p, s): swallow the scale.
    if (MatchOp(",")) {
      if (Peek().type != TokenType::kInteger) return Error("expected scale");
      Advance();
    }
    R3_RETURN_IF_ERROR(ExpectOp(")"));
    return t.int_value;
  };
  if (tn == "INT" || tn == "INTEGER") {
    col.type = DataType::kInt64;
    col.length = 4;  // original TPC-D uses 4-byte integers
  } else if (tn == "BIGINT") {
    col.type = DataType::kInt64;
    col.length = 8;
  } else if (tn == "DOUBLE" || tn == "FLOAT" || tn == "REAL") {
    col.type = DataType::kDouble;
  } else if (tn == "DECIMAL" || tn == "NUMERIC") {
    col.type = DataType::kDecimal;
    if (PeekOp("(")) {
      R3_RETURN_IF_ERROR(parse_len().status());
    }
  } else if (tn == "CHAR" || tn == "CHARACTER") {
    col.type = DataType::kString;
    R3_ASSIGN_OR_RETURN(int64_t len, parse_len());
    col.length = static_cast<uint16_t>(len);
  } else if (tn == "VARCHAR" || tn == "TEXT" || tn == "STRING") {
    col.type = DataType::kString;
    col.length = 0;
    if (PeekOp("(")) {
      R3_RETURN_IF_ERROR(parse_len().status());
    }
  } else if (tn == "DATE") {
    col.type = DataType::kDate;
  } else if (tn == "BOOLEAN" || tn == "BOOL") {
    col.type = DataType::kBool;
  } else {
    return Error("unknown type " + type_name);
  }
  if (PeekKeyword("NOT") && PeekKeyword("NULL", 1)) {
    Advance();
    Advance();
    col.nullable = false;
  }
  return col;
}

Result<Statement> Parser::ParseCreate() {
  R3_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  bool unique = MatchKeyword("UNIQUE");
  if (MatchKeyword("TABLE")) {
    if (unique) return Error("UNIQUE TABLE makes no sense");
    auto ct = std::make_unique<CreateTableStmt>();
    R3_ASSIGN_OR_RETURN(ct->table, ExpectIdentifier("table name"));
    R3_RETURN_IF_ERROR(ExpectOp("("));
    do {
      if (PeekKeyword("PRIMARY")) {
        Advance();
        R3_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        R3_RETURN_IF_ERROR(ExpectOp("("));
        do {
          R3_ASSIGN_OR_RETURN(std::string c, ExpectIdentifier("column"));
          ct->primary_key.push_back(std::move(c));
        } while (MatchOp(","));
        R3_RETURN_IF_ERROR(ExpectOp(")"));
      } else {
        R3_ASSIGN_OR_RETURN(Column col, ParseColumnDef());
        ct->columns.push_back(std::move(col));
      }
    } while (MatchOp(","));
    R3_RETURN_IF_ERROR(ExpectOp(")"));
    if (MatchKeyword("ENGINE")) {
      MatchOp("=");  // the `=` is optional, MySQL-style
      R3_ASSIGN_OR_RETURN(ct->engine, ExpectIdentifier("engine name"));
    }
    Statement out;
    out.kind = Statement::Kind::kCreateTable;
    out.create_table = std::move(ct);
    return out;
  }
  if (MatchKeyword("INDEX")) {
    auto ci = std::make_unique<CreateIndexStmt>();
    ci->unique = unique;
    R3_ASSIGN_OR_RETURN(ci->index, ExpectIdentifier("index name"));
    R3_RETURN_IF_ERROR(ExpectKeyword("ON"));
    R3_ASSIGN_OR_RETURN(ci->table, ExpectIdentifier("table name"));
    R3_RETURN_IF_ERROR(ExpectOp("("));
    do {
      R3_ASSIGN_OR_RETURN(std::string c, ExpectIdentifier("column"));
      ci->columns.push_back(std::move(c));
    } while (MatchOp(","));
    R3_RETURN_IF_ERROR(ExpectOp(")"));
    Statement out;
    out.kind = Statement::Kind::kCreateIndex;
    out.create_index = std::move(ci);
    return out;
  }
  if (MatchKeyword("VIEW")) {
    if (unique) return Error("UNIQUE VIEW makes no sense");
    auto cv = std::make_unique<CreateViewStmt>();
    R3_ASSIGN_OR_RETURN(cv->view, ExpectIdentifier("view name"));
    R3_RETURN_IF_ERROR(ExpectKeyword("AS"));
    size_t start = Peek().position;
    // Validate the SELECT parses, but store its text for the catalog.
    R3_RETURN_IF_ERROR(ParseSelectStmt().status());
    cv->select_sql = str::Trim(sql_.substr(start));
    // Strip a trailing ';' if present in the captured text.
    while (!cv->select_sql.empty() &&
           (cv->select_sql.back() == ';' || cv->select_sql.back() == ' ')) {
      cv->select_sql.pop_back();
    }
    Statement out;
    out.kind = Statement::Kind::kCreateView;
    out.create_view = std::move(cv);
    return out;
  }
  return Error("expected TABLE, INDEX, or VIEW");
}

Result<Statement> Parser::ParseInsert() {
  R3_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  R3_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  auto ins = std::make_unique<InsertStmt>();
  R3_ASSIGN_OR_RETURN(ins->table, ExpectIdentifier("table name"));
  if (MatchOp("(")) {
    do {
      R3_ASSIGN_OR_RETURN(std::string c, ExpectIdentifier("column"));
      ins->columns.push_back(std::move(c));
    } while (MatchOp(","));
    R3_RETURN_IF_ERROR(ExpectOp(")"));
  }
  R3_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  do {
    R3_RETURN_IF_ERROR(ExpectOp("("));
    std::vector<ExprPtr> row;
    do {
      R3_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
      row.push_back(std::move(v));
    } while (MatchOp(","));
    R3_RETURN_IF_ERROR(ExpectOp(")"));
    ins->rows.push_back(std::move(row));
  } while (MatchOp(","));
  Statement out;
  out.kind = Statement::Kind::kInsert;
  out.insert = std::move(ins);
  return out;
}

Result<Statement> Parser::ParseDelete() {
  R3_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  R3_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  auto del = std::make_unique<DeleteStmt>();
  R3_ASSIGN_OR_RETURN(del->table, ExpectIdentifier("table name"));
  if (MatchKeyword("WHERE")) {
    R3_ASSIGN_OR_RETURN(del->where, ParseExpr());
  }
  Statement out;
  out.kind = Statement::Kind::kDelete;
  out.del = std::move(del);
  return out;
}

Result<Statement> Parser::ParseUpdate() {
  R3_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  auto upd = std::make_unique<UpdateStmt>();
  R3_ASSIGN_OR_RETURN(upd->table, ExpectIdentifier("table name"));
  R3_RETURN_IF_ERROR(ExpectKeyword("SET"));
  do {
    R3_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
    R3_RETURN_IF_ERROR(ExpectOp("="));
    R3_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
    upd->assignments.emplace_back(std::move(col), std::move(v));
  } while (MatchOp(","));
  if (MatchKeyword("WHERE")) {
    R3_ASSIGN_OR_RETURN(upd->where, ParseExpr());
  }
  Statement out;
  out.kind = Statement::Kind::kUpdate;
  out.update = std::move(upd);
  return out;
}

Result<Statement> Parser::ParseDrop() {
  R3_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  auto drop = std::make_unique<DropStmt>();
  if (MatchKeyword("TABLE")) {
    drop->target = DropStmt::Target::kTable;
  } else if (MatchKeyword("INDEX")) {
    drop->target = DropStmt::Target::kIndex;
  } else if (MatchKeyword("VIEW")) {
    drop->target = DropStmt::Target::kView;
  } else {
    return Error("expected TABLE, INDEX, or VIEW");
  }
  R3_ASSIGN_OR_RETURN(drop->name, ExpectIdentifier("name"));
  Statement out;
  out.kind = Statement::Kind::kDrop;
  out.drop = std::move(drop);
  return out;
}

Result<Statement> Parser::ParseAnalyze() {
  R3_RETURN_IF_ERROR(ExpectKeyword("ANALYZE"));
  auto an = std::make_unique<AnalyzeStmt>();
  if (Peek().type == TokenType::kIdentifier) {
    an->table = Advance().text;
  }
  Statement out;
  out.kind = Statement::Kind::kAnalyze;
  out.analyze = std::move(an);
  return out;
}

Result<Statement> Parser::ParseTop() {
  Result<Statement> result = [&]() -> Result<Statement> {
    if (PeekKeyword("SELECT")) {
      R3_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelectStmt());
      Statement out;
      out.kind = Statement::Kind::kSelect;
      out.select = std::move(sel);
      return out;
    }
    if (PeekKeyword("INSERT")) return ParseInsert();
    if (PeekKeyword("DELETE")) return ParseDelete();
    if (PeekKeyword("UPDATE")) return ParseUpdate();
    if (PeekKeyword("CREATE")) return ParseCreate();
    if (PeekKeyword("DROP")) return ParseDrop();
    if (PeekKeyword("ANALYZE")) return ParseAnalyze();
    return Error("expected a statement");
  }();
  if (!result.ok()) return result;
  MatchOp(";");
  if (Peek().type != TokenType::kEnd) {
    return Error("trailing input after statement");
  }
  return result;
}

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  R3_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser p(std::move(tokens), sql);
  return p.ParseTop();
}

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql) {
  R3_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  return std::move(stmt.select);
}

}  // namespace rdbms
}  // namespace r3
