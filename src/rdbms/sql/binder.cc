#include "rdbms/sql/binder.h"

#include <unordered_map>
#include <unordered_set>

#include "common/str_util.h"
#include "rdbms/sql/parser.h"

namespace r3 {
namespace rdbms {

namespace {

/// A base table occurrence visible to name resolution.
struct TableSlot {
  const TableInfo* info = nullptr;
  std::string alias;  ///< upper-cased
  size_t offset = 0;
};

/// A view occurrence: names map to columns of underlying table slots.
struct ViewSlot {
  std::string alias;  ///< upper-cased
  std::vector<std::string> export_order;
  /// export name (upper) -> (table slot index, column index).
  std::unordered_map<std::string, std::pair<size_t, size_t>> exports;
};

/// Flattened FROM item before offsets are assigned.
struct FlatTable {
  std::string table_name;
  std::string alias;
  bool left_outer = false;
  std::vector<ExprPtr> on_conjuncts;  ///< unbound AST conjuncts
};

}  // namespace

struct Binder::Scope {
  std::vector<TableSlot> tables;
  std::vector<ViewSlot> views;

  /// Resolves qualifier.name -> (wide position, type). `qualifier` may be
  /// empty. Returns kNotFound if unresolved, kInvalidArgument if ambiguous.
  Result<std::pair<size_t, DataType>> Resolve(const std::string& qualifier,
                                              const std::string& name) const {
    std::string q = str::ToUpper(qualifier);
    std::string n = str::ToUpper(name);
    std::vector<std::pair<size_t, DataType>> hits;
    for (const TableSlot& t : tables) {
      // Tables hidden behind a view (fresh "__V..." aliases) take part in
      // resolution only through the view's export map.
      if (q.empty() && t.alias.rfind("__V", 0) == 0) continue;
      if (!q.empty() && t.alias != q) continue;
      auto idx = t.info->schema.IndexOf(n);
      if (idx.ok()) {
        hits.emplace_back(t.offset + idx.value(),
                          t.info->schema.column(idx.value()).type);
      }
    }
    for (const ViewSlot& v : views) {
      if (!q.empty() && v.alias != q) continue;
      auto it = v.exports.find(n);
      if (it != v.exports.end()) {
        const TableSlot& t = tables[it->second.first];
        hits.emplace_back(t.offset + it->second.second,
                          t.info->schema.column(it->second.second).type);
      }
    }
    if (hits.empty()) {
      return Status::NotFound("unresolved column '" +
                              (qualifier.empty() ? name : qualifier + "." + name) +
                              "'");
    }
    if (hits.size() > 1) {
      // The same physical column reachable through a view and its table is
      // genuinely the same thing; only complain about distinct targets.
      for (size_t i = 1; i < hits.size(); ++i) {
        if (hits[i].first != hits[0].first) {
          return Status::InvalidArgument("ambiguous column '" + name + "'");
        }
      }
    }
    return hits[0];
  }
};

namespace {

/// Everything one BindSelectImpl invocation carries around.
struct BindContext {
  const Catalog* catalog = nullptr;
  Binder::Scope* scope = nullptr;
  Binder::Scope* outer = nullptr;
  BoundQuery* bq = nullptr;
  Binder* binder = nullptr;
  bool used_outer = false;  ///< set when an outer (correlated) ref binds
};

Status BindExpr(Expr* e, BindContext* ctx, bool allow_aggregates);

DataType InferArithType(const Expr& e) {
  if (e.arith_op == ArithOp::kNeg) return e.children[0]->result_type;
  DataType l = e.children[0]->result_type;
  DataType r = e.children[1]->result_type;
  if (e.arith_op == ArithOp::kDiv) return DataType::kDouble;
  if (l == DataType::kDate || r == DataType::kDate) {
    // date - date -> int; date +/- int -> date.
    if (l == DataType::kDate && r == DataType::kDate) return DataType::kInt64;
    return DataType::kDate;
  }
  if (l == DataType::kInt64 && r == DataType::kInt64) return DataType::kInt64;
  return DataType::kDouble;
}

DataType InferFuncType(const Expr& e) {
  const std::string& f = e.func_name;
  if (f == "YEAR" || f == "MONTH" || f == "LENGTH" || f == "MOD") {
    return DataType::kInt64;
  }
  if (f == "SUBSTR" || f == "SUBSTRING" || f == "UPPER" || f == "LOWER") {
    return DataType::kString;
  }
  if (f == "ABS") return e.children.empty() ? DataType::kDouble
                                            : e.children[0]->result_type;
  return DataType::kDouble;
}

DataType InferAggType(const Expr& e) {
  switch (e.agg_func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      return DataType::kDouble;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return e.children.empty() ? DataType::kDouble
                                : e.children[0]->result_type;
  }
  return DataType::kDouble;
}

Status BindSubquery(Expr* e, BindContext* ctx, SubqueryKind kind) {
  if (e->subquery_ast == nullptr) {
    return Status::Internal("subquery node without AST");
  }
  // Bind the subquery with the current scope as its outer scope.
  R3_ASSIGN_OR_RETURN(
      std::unique_ptr<BoundQuery> sub,
      ctx->binder->BindSelectForSubquery(*e->subquery_ast, ctx->scope));
  if (kind != SubqueryKind::kExists && sub->select_exprs.size() != 1) {
    return Status::InvalidArgument(
        "scalar/IN subquery must produce exactly one column");
  }
  BoundSubquery bound;
  bound.kind = kind;
  bound.correlated = sub->is_correlated;
  if (kind == SubqueryKind::kScalar) {
    e->result_type = sub->output_schema.NumColumns() > 0
                         ? sub->output_schema.column(0).type
                         : DataType::kDouble;
  } else {
    e->result_type = DataType::kBool;
  }
  bound.query = std::move(sub);
  e->subquery_index = ctx->bq->subqueries.size();
  ctx->bq->subqueries.push_back(std::move(bound));
  return Status::OK();
}

Status BindExpr(Expr* e, BindContext* ctx, bool allow_aggregates) {
  switch (e->kind) {
    case ExprKind::kLiteral:
      e->result_type = e->literal.type();
      return Status::OK();
    case ExprKind::kParam:
      ctx->bq->has_params = true;
      if (e->param_index + 1 > ctx->bq->num_params) {
        ctx->bq->num_params = e->param_index + 1;
      }
      e->result_type = DataType::kDouble;  // dynamic; refined at execution
      return Status::OK();
    case ExprKind::kColumnRef: {
      auto res = ctx->scope->Resolve(e->table_qualifier, e->column_name);
      if (res.ok()) {
        e->column_index = res.value().first;
        e->result_type = res.value().second;
        return Status::OK();
      }
      if (res.status().code() == StatusCode::kNotFound && ctx->outer != nullptr) {
        auto outer_res = ctx->outer->Resolve(e->table_qualifier, e->column_name);
        if (outer_res.ok()) {
          e->kind = ExprKind::kOuterRef;
          e->column_index = outer_res.value().first;
          e->result_type = outer_res.value().second;
          ctx->used_outer = true;
          return Status::OK();
        }
      }
      return res.status();
    }
    case ExprKind::kOuterRef:
    case ExprKind::kSlotRef:
    case ExprKind::kAggRef:
      return Status::OK();  // already bound (rebind passes)
    case ExprKind::kAggCall:
      if (!allow_aggregates) {
        return Status::InvalidArgument(
            "aggregate not allowed in this context: " + e->ToString());
      }
      for (ExprPtr& c : e->children) {
        // No nested aggregates.
        R3_RETURN_IF_ERROR(BindExpr(c.get(), ctx, /*allow_aggregates=*/false));
      }
      e->result_type = InferAggType(*e);
      return Status::OK();
    case ExprKind::kScalarSubquery:
      return BindSubquery(e, ctx, SubqueryKind::kScalar);
    case ExprKind::kExistsSubquery:
      return BindSubquery(e, ctx, SubqueryKind::kExists);
    case ExprKind::kInSubquery:
      R3_RETURN_IF_ERROR(BindExpr(e->children[0].get(), ctx, allow_aggregates));
      R3_RETURN_IF_ERROR(BindSubquery(e, ctx, SubqueryKind::kIn));
      e->result_type = DataType::kBool;
      return Status::OK();
    default:
      break;
  }
  for (ExprPtr& c : e->children) {
    R3_RETURN_IF_ERROR(BindExpr(c.get(), ctx, allow_aggregates));
  }
  switch (e->kind) {
    case ExprKind::kArith:
      e->result_type = InferArithType(*e);
      break;
    case ExprKind::kCompare:
    case ExprKind::kLogic:
    case ExprKind::kNot:
    case ExprKind::kIsNull:
    case ExprKind::kLike:
    case ExprKind::kInList:
    case ExprKind::kBetween:
      e->result_type = DataType::kBool;
      break;
    case ExprKind::kCase:
      e->result_type = e->children.size() >= 2 ? e->children[1]->result_type
                                               : DataType::kDouble;
      break;
    case ExprKind::kFunc:
      e->result_type = InferFuncType(*e);
      break;
    case ExprKind::kCast:
      e->result_type = e->cast_target;
      break;
    default:
      break;
  }
  return Status::OK();
}

/// Flattens a TableRef tree (JOIN nesting) into base-table occurrences and
/// ON conjuncts; expands views recursively.
Status FlattenTableRef(const Catalog* catalog, const TableRef& ref,
                       bool under_left_outer, std::vector<FlatTable>* out,
                       std::vector<std::unique_ptr<ViewSlot>>* view_slots,
                       int* fresh_counter) {
  if (ref.kind == TableRef::Kind::kJoin) {
    R3_RETURN_IF_ERROR(FlattenTableRef(catalog, *ref.left, under_left_outer, out,
                                       view_slots, fresh_counter));
    size_t right_start = out->size();
    R3_RETURN_IF_ERROR(FlattenTableRef(catalog, *ref.right,
                                       under_left_outer || ref.left_outer, out,
                                       view_slots, fresh_counter));
    std::vector<ExprPtr> conjuncts;
    if (ref.on != nullptr) {
      SplitConjuncts(ref.on->Clone(), &conjuncts);
    }
    if (ref.left_outer) {
      if (out->size() != right_start + 1) {
        return Status::Unsupported(
            "LEFT JOIN right side must be a single base table");
      }
      (*out)[right_start].left_outer = true;
      for (ExprPtr& c : conjuncts) {
        (*out)[right_start].on_conjuncts.push_back(std::move(c));
      }
    } else {
      // Inner joins: attach to the last right table (they end up in the
      // query's general conjunct pool anyway).
      if (out->empty()) return Status::Internal("join without tables");
      for (ExprPtr& c : conjuncts) {
        out->back().on_conjuncts.push_back(std::move(c));
      }
    }
    return Status::OK();
  }

  // Base: table or view.
  std::string display = ref.alias.empty() ? ref.name : ref.alias;
  if (catalog->HasTable(ref.name)) {
    FlatTable ft;
    ft.table_name = ref.name;
    ft.alias = str::ToUpper(display);
    out->push_back(std::move(ft));
    return Status::OK();
  }
  if (catalog->HasView(ref.name)) {
    R3_ASSIGN_OR_RETURN(const ViewInfo* vi, catalog->GetView(ref.name));
    R3_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> vsel,
                        ParseSelect(vi->sql));
    if (!vsel->group_by.empty() || vsel->having != nullptr ||
        vsel->distinct || !vsel->order_by.empty() || vsel->limit >= 0) {
      return Status::Unsupported(
          "only simple select-project-join views can be inlined");
    }
    // Expand the view body into fresh-aliased base tables.
    std::vector<FlatTable> inner;
    for (const auto& f : vsel->from) {
      R3_RETURN_IF_ERROR(FlattenTableRef(catalog, *f, under_left_outer, &inner,
                                         view_slots, fresh_counter));
    }
    // Local resolution structures for the view body.
    struct LocalTable {
      const TableInfo* info;
      std::string old_alias;
      std::string new_alias;
      size_t out_index;
    };
    std::vector<LocalTable> locals;
    for (FlatTable& ft : inner) {
      R3_ASSIGN_OR_RETURN(TableInfo * ti, catalog->GetTable(ft.table_name));
      std::string fresh = str::Format("__V%d_%s", (*fresh_counter)++,
                                      ft.alias.c_str());
      locals.push_back(
          {ti, ft.alias, str::ToUpper(fresh), out->size()});
      ft.alias = str::ToUpper(fresh);
      out->push_back(std::move(ft));
    }
    // Rewrite view-internal column refs to the fresh aliases.
    auto rewrite = [&](Expr* root) -> Status {
      Status st = Status::OK();
      VisitExpr(root, [&](Expr* e) {
        if (!st.ok() || e->kind != ExprKind::kColumnRef) return;
        std::string q = str::ToUpper(e->table_qualifier);
        const LocalTable* found = nullptr;
        for (const LocalTable& lt : locals) {
          if (!q.empty()) {
            if (lt.old_alias == q) {
              found = &lt;
              break;
            }
          } else if (lt.info->schema.Contains(e->column_name)) {
            if (found != nullptr) {
              st = Status::InvalidArgument("ambiguous column '" +
                                           e->column_name + "' in view " +
                                           vi->name);
              return;
            }
            found = &lt;
          }
        }
        if (found == nullptr) {
          st = Status::NotFound("unresolved column '" + e->column_name +
                                "' in view " + vi->name);
          return;
        }
        e->table_qualifier = found->new_alias;
      });
      return st;
    };
    // View WHERE and join ONs become conjuncts attached to the last table.
    std::vector<ExprPtr> view_conjuncts;
    if (vsel->where != nullptr) {
      SplitConjuncts(vsel->where->Clone(), &view_conjuncts);
    }
    for (const LocalTable& lt : locals) {
      for (ExprPtr& c : (*out)[lt.out_index].on_conjuncts) {
        R3_RETURN_IF_ERROR(rewrite(c.get()));
      }
    }
    for (ExprPtr& c : view_conjuncts) {
      R3_RETURN_IF_ERROR(rewrite(c.get()));
      out->back().on_conjuncts.push_back(std::move(c));
    }
    // Export map.
    auto vslot = std::make_unique<ViewSlot>();
    vslot->alias = str::ToUpper(display);
    for (const SelectItem& item : vsel->items) {
      if (item.star) {
        return Status::Unsupported("SELECT * not allowed in view definitions");
      }
      if (item.expr->kind != ExprKind::kColumnRef) {
        return Status::Unsupported(
            "view select list must contain plain column references");
      }
      R3_RETURN_IF_ERROR(rewrite(item.expr.get()));
      // Which local table is it?
      std::string q = str::ToUpper(item.expr->table_qualifier);
      const LocalTable* lt_found = nullptr;
      for (const LocalTable& lt : locals) {
        if (lt.new_alias == q) {
          lt_found = &lt;
          break;
        }
      }
      if (lt_found == nullptr) {
        return Status::Internal("view column rewrite failed");
      }
      R3_ASSIGN_OR_RETURN(size_t col_idx,
                          lt_found->info->schema.IndexOf(item.expr->column_name));
      std::string exported =
          str::ToUpper(item.alias.empty() ? item.expr->column_name : item.alias);
      if (vslot->exports.count(exported) > 0) {
        return Status::InvalidArgument("duplicate view column '" + exported +
                                       "'");
      }
      vslot->export_order.push_back(exported);
      // Table-slot indexes are assigned later (after offsets); store the
      // out-vector index for now and fix up in the caller.
      vslot->exports.emplace(exported,
                             std::make_pair(lt_found->out_index, col_idx));
    }
    view_slots->push_back(std::move(vslot));
    return Status::OK();
  }
  return Status::NotFound("no table or view named '" + ref.name + "'");
}

/// Rewrites a post-aggregation expression: occurrences of GROUP BY
/// expressions become kSlotRef, aggregate calls become kAggRef (appended to
/// agg_calls, deduplicated). Any remaining raw column ref is an error.
Status RewritePostAgg(ExprPtr* e, const std::vector<std::string>& group_keys,
                      const std::vector<DataType>& group_types,
                      std::vector<ExprPtr>* agg_calls,
                      std::vector<std::string>* agg_keys) {
  std::string canon = (*e)->ToString();
  for (size_t i = 0; i < group_keys.size(); ++i) {
    if (canon == group_keys[i]) {
      *e = MakeSlotRef(i, group_types[i]);
      return Status::OK();
    }
  }
  if ((*e)->kind == ExprKind::kAggCall) {
    for (size_t i = 0; i < agg_keys->size(); ++i) {
      if (canon == (*agg_keys)[i]) {
        auto ref = std::make_unique<Expr>(ExprKind::kAggRef);
        ref->slot = group_keys.size() + i;
        ref->result_type = (*agg_calls)[i]->result_type;
        *e = std::move(ref);
        return Status::OK();
      }
    }
    auto ref = std::make_unique<Expr>(ExprKind::kAggRef);
    ref->slot = group_keys.size() + agg_calls->size();
    ref->result_type = (*e)->result_type;
    agg_keys->push_back(canon);
    agg_calls->push_back(std::move(*e));
    *e = std::move(ref);
    return Status::OK();
  }
  if ((*e)->kind == ExprKind::kColumnRef || (*e)->kind == ExprKind::kOuterRef) {
    return Status::InvalidArgument(
        "column " + (*e)->column_name +
        " must appear in GROUP BY or inside an aggregate");
  }
  for (ExprPtr& c : (*e)->children) {
    R3_RETURN_IF_ERROR(
        RewritePostAgg(&c, group_keys, group_types, agg_calls, agg_keys));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<BoundQuery>> Binder::BindSelect(const SelectStmt& stmt) {
  return BindSelectImpl(stmt, nullptr);
}

Result<std::unique_ptr<BoundQuery>> Binder::BindSelectForSubquery(
    const SelectStmt& stmt, Scope* outer_scope) {
  return BindSelectImpl(stmt, outer_scope);
}

Result<std::unique_ptr<BoundQuery>> Binder::BindSelectImpl(
    const SelectStmt& stmt, Scope* outer_scope) {
  auto bq = std::make_unique<BoundQuery>();

  // 1. Flatten FROM (+ views) into base tables.
  std::vector<FlatTable> flat;
  std::vector<std::unique_ptr<ViewSlot>> view_slots;
  int fresh_counter = 0;
  for (const auto& f : stmt.from) {
    R3_RETURN_IF_ERROR(FlattenTableRef(catalog_, *f, /*under_left_outer=*/false,
                                       &flat, &view_slots, &fresh_counter));
  }
  if (flat.empty()) {
    return Status::InvalidArgument("query has no tables");
  }

  Scope scope;
  size_t offset = 0;
  for (FlatTable& ft : flat) {
    R3_ASSIGN_OR_RETURN(TableInfo * ti, catalog_->GetTable(ft.table_name));
    // Duplicate alias check.
    for (const TableSlot& prev : scope.tables) {
      if (prev.alias == ft.alias) {
        return Status::InvalidArgument("duplicate table alias '" + ft.alias +
                                       "'");
      }
    }
    scope.tables.push_back(TableSlot{ti, ft.alias, offset});
    BoundTableRef btr;
    btr.table = ti;
    btr.alias = ft.alias;
    btr.offset = offset;
    btr.left_outer = ft.left_outer;
    bq->tables.push_back(std::move(btr));
    offset += ti->schema.NumColumns();
  }
  bq->wide_width = offset;
  for (auto& vs : view_slots) {
    scope.views.push_back(std::move(*vs));
  }

  BindContext ctx;
  ctx.catalog = catalog_;
  ctx.scope = &scope;
  ctx.outer = outer_scope;
  ctx.bq = bq.get();
  ctx.binder = this;

  // 2. Conjuncts: WHERE plus all ON conjuncts.
  std::vector<ExprPtr> all_conjuncts;
  if (stmt.where != nullptr) {
    SplitConjuncts(stmt.where->Clone(), &all_conjuncts);
  }
  for (size_t i = 0; i < flat.size(); ++i) {
    for (ExprPtr& c : flat[i].on_conjuncts) {
      if (flat[i].left_outer) {
        R3_RETURN_IF_ERROR(BindExpr(c.get(), &ctx, /*allow_aggregates=*/false));
        bq->tables[i].outer_join_conjuncts.push_back(std::move(c));
      } else {
        all_conjuncts.push_back(std::move(c));
      }
    }
  }
  for (ExprPtr& c : all_conjuncts) {
    R3_RETURN_IF_ERROR(BindExpr(c.get(), &ctx, /*allow_aggregates=*/false));
    bq->conjuncts.push_back(std::move(c));
  }

  // 3. Select list (star expansion first).
  std::vector<ExprPtr> select_exprs;
  std::vector<std::string> names;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (const TableSlot& t : scope.tables) {
        // Skip tables hidden behind views (their fresh alias starts "__V").
        if (t.alias.rfind("__V", 0) == 0) continue;
        for (size_t c = 0; c < t.info->schema.NumColumns(); ++c) {
          auto ref = MakeColumnRef(t.alias, t.info->schema.column(c).name);
          select_exprs.push_back(std::move(ref));
          names.push_back(t.info->schema.column(c).name);
        }
      }
      for (const ViewSlot& v : scope.views) {
        for (const std::string& exported : v.export_order) {
          select_exprs.push_back(MakeColumnRef(v.alias, exported));
          names.push_back(exported);
        }
      }
      continue;
    }
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == ExprKind::kColumnRef ? item.expr->column_name
                                                     : item.expr->ToString();
    }
    select_exprs.push_back(item.expr->Clone());
    names.push_back(std::move(name));
  }
  for (ExprPtr& e : select_exprs) {
    R3_RETURN_IF_ERROR(BindExpr(e.get(), &ctx, /*allow_aggregates=*/true));
  }

  // 4. Aggregation.
  bool any_agg = false;
  for (const ExprPtr& e : select_exprs) {
    if (ExprHasAggregates(*e)) any_agg = true;
  }
  if (stmt.having != nullptr || !stmt.group_by.empty()) any_agg = true;

  std::vector<std::string> group_keys;
  std::vector<DataType> group_types;
  if (any_agg) {
    bq->has_aggregation = true;
    for (const ExprPtr& g : stmt.group_by) {
      ExprPtr bound = g->Clone();
      R3_RETURN_IF_ERROR(BindExpr(bound.get(), &ctx, /*allow_aggregates=*/false));
      group_keys.push_back(bound->ToString());
      group_types.push_back(bound->result_type);
      bq->group_by.push_back(std::move(bound));
    }
    std::vector<std::string> agg_keys;
    for (ExprPtr& e : select_exprs) {
      R3_RETURN_IF_ERROR(RewritePostAgg(&e, group_keys, group_types,
                                        &bq->agg_calls, &agg_keys));
    }
    if (stmt.having != nullptr) {
      ExprPtr h = stmt.having->Clone();
      R3_RETURN_IF_ERROR(BindExpr(h.get(), &ctx, /*allow_aggregates=*/true));
      R3_RETURN_IF_ERROR(
          RewritePostAgg(&h, group_keys, group_types, &bq->agg_calls, &agg_keys));
      bq->having = std::move(h);
    }
  }

  // 5. Output schema.
  for (size_t i = 0; i < select_exprs.size(); ++i) {
    Column col;
    col.name = names[i];
    col.type = select_exprs[i]->result_type;
    // Output schema may have duplicate names (e.g. two unaliased exprs);
    // uniquify for Schema's name map.
    std::string base = col.name;
    int suffix = 1;
    while (bq->output_schema.Contains(col.name)) {
      col.name = str::Format("%s_%d", base.c_str(), ++suffix);
    }
    R3_RETURN_IF_ERROR(bq->output_schema.AddColumn(col));
  }
  bq->select_exprs = std::move(select_exprs);
  bq->num_visible = bq->select_exprs.size();
  bq->column_names = std::move(names);

  // 6. ORDER BY: must resolve to an output column (alias, 1-based position,
  // or an expression textually matching a select item).
  for (const OrderItem& o : stmt.order_by) {
    BoundOrderKey key;
    key.asc = o.asc;
    bool resolved = false;
    if (o.expr->kind == ExprKind::kLiteral &&
        o.expr->literal.type() == DataType::kInt64) {
      int64_t pos = o.expr->literal.int_value();
      if (pos < 1 || pos > static_cast<int64_t>(bq->select_exprs.size())) {
        return Status::InvalidArgument("ORDER BY position out of range");
      }
      key.output_index = static_cast<size_t>(pos - 1);
      resolved = true;
    }
    if (!resolved && o.expr->kind == ExprKind::kColumnRef &&
        o.expr->table_qualifier.empty()) {
      for (size_t i = 0; i < bq->column_names.size(); ++i) {
        if (str::EqualsIgnoreCase(bq->column_names[i], o.expr->column_name)) {
          key.output_index = i;
          resolved = true;
          break;
        }
      }
    }
    if (!resolved) {
      ExprPtr bound = o.expr->Clone();
      R3_RETURN_IF_ERROR(BindExpr(bound.get(), &ctx, /*allow_aggregates=*/true));
      if (bq->has_aggregation) {
        std::vector<std::string> agg_keys_tmp;
        for (const ExprPtr& a : bq->agg_calls) {
          agg_keys_tmp.push_back(a->ToString());
        }
        R3_RETURN_IF_ERROR(RewritePostAgg(&bound, group_keys, group_types,
                                          &bq->agg_calls, &agg_keys_tmp));
      }
      std::string canon = bound->ToString();
      for (size_t i = 0; i < bq->select_exprs.size(); ++i) {
        if (bq->select_exprs[i]->ToString() == canon) {
          key.output_index = i;
          resolved = true;
          break;
        }
      }
    }
    if (!resolved) {
      // Hidden sort column: order by an expression outside the select list.
      if (stmt.distinct) {
        return Status::InvalidArgument(
            "with DISTINCT, ORDER BY expressions must appear in the select "
            "list");
      }
      ExprPtr bound = o.expr->Clone();
      R3_RETURN_IF_ERROR(BindExpr(bound.get(), &ctx, /*allow_aggregates=*/true));
      if (bq->has_aggregation) {
        std::vector<std::string> agg_keys_tmp;
        for (const ExprPtr& a : bq->agg_calls) {
          agg_keys_tmp.push_back(a->ToString());
        }
        R3_RETURN_IF_ERROR(RewritePostAgg(&bound, group_keys, group_types,
                                          &bq->agg_calls, &agg_keys_tmp));
      }
      key.output_index = bq->select_exprs.size();
      bq->select_exprs.push_back(std::move(bound));
      resolved = true;
    }
    bq->order_by.push_back(key);
  }
  if (bq->select_exprs.size() > bq->num_visible) {
    for (size_t i = 0; i < bq->num_visible; ++i) {
      bq->final_project.push_back(
          MakeSlotRef(i, bq->select_exprs[i]->result_type));
    }
  }

  bq->limit = stmt.limit;
  bq->distinct = stmt.distinct;
  bq->is_correlated = ctx.used_outer;
  return bq;
}

}  // namespace rdbms
}  // namespace r3
