#ifndef R3DB_RDBMS_SQL_BINDER_H_
#define R3DB_RDBMS_SQL_BINDER_H_

#include <memory>

#include "common/status.h"
#include "rdbms/catalog.h"
#include "rdbms/plan/logical_plan.h"
#include "rdbms/sql/ast.h"

namespace r3 {
namespace rdbms {

/// Resolves a parsed SELECT against the catalog into a BoundQuery:
/// view inlining, FROM flattening, name resolution (with one level of
/// correlation into an enclosing query), type annotation, aggregate
/// extraction, and subquery binding.
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  struct Scope;  // defined in binder.cc

  /// Binds a top-level SELECT. The AST is not modified (expressions are
  /// cloned into the BoundQuery).
  Result<std::unique_ptr<BoundQuery>> BindSelect(const SelectStmt& stmt);

  /// Binds a nested SELECT with `outer_scope` available for correlated
  /// references (used internally while binding subquery expressions).
  Result<std::unique_ptr<BoundQuery>> BindSelectForSubquery(
      const SelectStmt& stmt, Scope* outer_scope);

 private:
  Result<std::unique_ptr<BoundQuery>> BindSelectImpl(const SelectStmt& stmt,
                                                     Scope* outer_scope);

  const Catalog* catalog_;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_SQL_BINDER_H_
