#include "rdbms/sql/ast.h"

namespace r3 {
namespace rdbms {

std::unique_ptr<TableRef> TableRef::Clone() const {
  auto out = std::make_unique<TableRef>();
  out->kind = kind;
  out->name = name;
  out->alias = alias;
  if (left != nullptr) out->left = left->Clone();
  if (right != nullptr) out->right = right->Clone();
  out->left_outer = left_outer;
  if (on != nullptr) out->on = on->Clone();
  return out;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = distinct;
  for (const SelectItem& item : items) {
    SelectItem copy;
    copy.alias = item.alias;
    copy.star = item.star;
    if (item.expr != nullptr) copy.expr = item.expr->Clone();
    out->items.push_back(std::move(copy));
  }
  for (const auto& t : from) out->from.push_back(t->Clone());
  if (where != nullptr) out->where = where->Clone();
  for (const ExprPtr& g : group_by) out->group_by.push_back(g->Clone());
  if (having != nullptr) out->having = having->Clone();
  for (const OrderItem& o : order_by) {
    out->order_by.push_back(OrderItem{o.expr->Clone(), o.asc});
  }
  out->limit = limit;
  return out;
}

}  // namespace rdbms
}  // namespace r3
