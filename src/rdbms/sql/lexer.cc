#include "rdbms/sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/str_util.h"

namespace r3 {
namespace rdbms {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  auto is_ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.position = i;
    if (is_ident_start(c)) {
      size_t start = i;
      while (i < n && is_ident(sql[i])) ++i;
      t.type = TokenType::kIdentifier;
      t.text = sql.substr(start, i - start);
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
          is_float = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        } else {
          i = save;  // 'e' belongs to a following identifier
        }
      }
      std::string text = sql.substr(start, i - start);
      if (is_float) {
        t.type = TokenType::kFloat;
        t.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.type = TokenType::kInteger;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      t.text = std::move(text);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text.push_back(sql[i++]);
      }
      if (!closed) {
        return Status::InvalidArgument(
            str::Format("unterminated string literal at offset %zu", t.position));
      }
      t.type = TokenType::kString;
      t.text = std::move(text);
      out.push_back(std::move(t));
      continue;
    }
    // Operators; two-char first.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<>" || two == "<=" || two == ">=" || two == "!=" || two == "||") {
        t.type = TokenType::kOperator;
        t.text = two == "!=" ? "<>" : two;
        out.push_back(std::move(t));
        i += 2;
        continue;
      }
    }
    static const char kSingles[] = "()*,.;+-/=<>?";
    bool ok = false;
    for (char s : kSingles) {
      if (s != '\0' && c == s) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      return Status::InvalidArgument(
          str::Format("unexpected character '%c' at offset %zu", c, i));
    }
    t.type = TokenType::kOperator;
    t.text = std::string(1, c);
    out.push_back(std::move(t));
    ++i;
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace rdbms
}  // namespace r3
