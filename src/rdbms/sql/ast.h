#ifndef R3DB_RDBMS_SQL_AST_H_
#define R3DB_RDBMS_SQL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rdbms/expr/expr.h"
#include "rdbms/schema.h"

namespace r3 {
namespace rdbms {

/// FROM-clause item: a base table/view (possibly aliased) or a JOIN tree.
struct TableRef {
  enum class Kind { kBase, kJoin };
  Kind kind = Kind::kBase;

  // kBase
  std::string name;
  std::string alias;  ///< empty: use `name`

  // kJoin
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  bool left_outer = false;
  ExprPtr on;

  std::unique_ptr<TableRef> Clone() const;
};

/// One SELECT-list entry. `star` means `*` (expr is null).
struct SelectItem {
  ExprPtr expr;
  std::string alias;
  bool star = false;
};

struct OrderItem {
  ExprPtr expr;
  bool asc = true;
};

/// A (possibly nested) SELECT statement.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<std::unique_ptr<TableRef>> from;  ///< comma-separated items
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  ///< -1: none

  std::unique_ptr<SelectStmt> Clone() const;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  ///< empty: schema order
  std::vector<std::vector<ExprPtr>> rows;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct CreateTableStmt {
  std::string table;
  std::vector<Column> columns;
  std::vector<std::string> primary_key;  ///< creates a unique index if set
  /// Optional `ENGINE = row|columnar` clause; empty = the database default.
  std::string engine;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
};

struct CreateViewStmt {
  std::string view;
  std::string select_sql;  ///< original text, stored in the catalog
};

struct DropStmt {
  enum class Target { kTable, kIndex, kView };
  Target target = Target::kTable;
  std::string name;
};

struct AnalyzeStmt {
  std::string table;  ///< empty: all tables
};

/// A parsed statement of any kind (exactly one member is set).
struct Statement {
  enum class Kind {
    kSelect,
    kInsert,
    kDelete,
    kUpdate,
    kCreateTable,
    kCreateIndex,
    kCreateView,
    kDrop,
    kAnalyze,
  };
  Kind kind = Kind::kSelect;

  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<CreateViewStmt> create_view;
  std::unique_ptr<DropStmt> drop;
  std::unique_ptr<AnalyzeStmt> analyze;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_SQL_AST_H_
