#ifndef R3DB_RDBMS_SQL_LEXER_H_
#define R3DB_RDBMS_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace r3 {
namespace rdbms {

enum class TokenType : uint8_t {
  kIdentifier,   ///< bare word (keywords are identifiers; parser matches text)
  kString,       ///< 'quoted' (with '' as escape)
  kInteger,
  kFloat,        ///< has '.' or exponent
  kOperator,     ///< punctuation: ( ) , . ; * + - / = <> <= >= < > ?
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   ///< identifier text (original case) or operator chars
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;  ///< byte offset, for error messages
};

/// Splits SQL text into tokens. Comments: `-- to end of line`.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_SQL_LEXER_H_
