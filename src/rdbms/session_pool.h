#ifndef R3DB_RDBMS_SESSION_POOL_H_
#define R3DB_RDBMS_SESSION_POOL_H_

#include <cstdint>

#include "common/metrics.h"
#include "common/status.h"

namespace r3 {
namespace rdbms {

class Database;

/// Hands out database sessions to the application tier.
///
/// The embedded Database executes one statement at a time (DESIGN.md: "one
/// session"), but the real back-end RDBMS of the paper served one shadow
/// process per R/3 work process. This pool models that contract: every work
/// process must hold a session lease before it may issue calls, the DBA-
/// configured `max_sessions` caps how many leases exist at once, and the
/// `rdbms.sessions.*` metrics expose the handout (active/peak/denied) the
/// way ST04 exposes the shadow-process table. Statements of the lease
/// holders still *execute* serially on the shared engine — the discrete-
/// event scheduler interleaves whole statements, so the single-session
/// engine is never re-entered (and determinism is preserved).
class SessionPool {
 public:
  /// `max_sessions` 0 = unlimited (the engine imposes no hard cap).
  SessionPool(Database* db, int64_t max_sessions = 0);

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// RAII session lease; releases its slot on destruction. Movable so a
  /// work process can hold it by value.
  class Lease {
   public:
    Lease() = default;
    ~Lease() { Release(); }
    Lease(Lease&& other) noexcept : pool_(other.pool_) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    bool valid() const { return pool_ != nullptr; }
    void Release();

   private:
    friend class SessionPool;
    explicit Lease(SessionPool* pool) : pool_(pool) {}
    SessionPool* pool_ = nullptr;
  };

  /// Acquires a session slot; an OutOfRange error once `max_sessions`
  /// leases are outstanding (the paper-era failure mode: an app server
  /// configured for more work processes than the RDBMS allows connections).
  Result<Lease> Acquire();

  Database* db() { return db_; }
  int64_t max_sessions() const { return max_sessions_; }
  int64_t active() const { return active_; }
  int64_t peak() const { return peak_; }
  int64_t denied() const { return denied_; }

 private:
  friend class Lease;
  void ReleaseOne();

  Database* db_;
  int64_t max_sessions_;
  int64_t active_ = 0;
  int64_t peak_ = 0;
  int64_t denied_ = 0;
  Counter* m_acquired_;
  Counter* m_denied_;
  Gauge* g_active_;
  Gauge* g_peak_;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_SESSION_POOL_H_
