#ifndef R3DB_RDBMS_VALUE_H_
#define R3DB_RDBMS_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace r3 {
namespace rdbms {

/// Column/value types supported by the engine.
///
/// kDecimal is a fixed-point type with scale 2 (hundredths), stored as a
/// scaled int64 — TPC-D money and quantity columns. Arithmetic involving
/// decimals is carried out in double precision by the evaluator; storage and
/// comparisons are exact.
enum class DataType : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kDouble = 2,
  kDecimal = 3,
  kString = 4,
  kDate = 5,  ///< day number, see common/date.h
};

/// Returns "BOOL", "INT", "DOUBLE", "DECIMAL", "STRING", or "DATE".
const char* DataTypeName(DataType t);

/// True for kInt64/kDouble/kDecimal.
bool IsNumeric(DataType t);

/// A dynamically typed SQL value (possibly NULL).
class Value {
 public:
  /// Default: NULL of type kInt64 (callers usually overwrite).
  Value() = default;

  static Value Null(DataType t = DataType::kInt64) {
    Value v;
    v.type_ = t;
    v.null_ = true;
    return v;
  }
  static Value Bool(bool b) { return MakeInt(DataType::kBool, b ? 1 : 0); }
  static Value Int(int64_t i) { return MakeInt(DataType::kInt64, i); }
  static Value Dbl(double d) {
    Value v;
    v.type_ = DataType::kDouble;
    v.null_ = false;
    v.d_ = d;
    return v;
  }
  /// From scaled hundredths: DecimalFromCents(12345) == 123.45.
  static Value DecimalFromCents(int64_t cents) {
    return MakeInt(DataType::kDecimal, cents);
  }
  /// From a double, rounding to hundredths.
  static Value Decimal(double d);
  static Value Str(std::string s) {
    Value v;
    v.type_ = DataType::kString;
    v.null_ = false;
    v.s_ = std::move(s);
    return v;
  }
  static Value Date(int32_t day_number) {
    return MakeInt(DataType::kDate, day_number);
  }

  DataType type() const { return type_; }
  bool is_null() const { return null_; }

  bool bool_value() const { return i_ != 0; }
  int64_t int_value() const { return i_; }
  double double_value() const { return d_; }
  int64_t decimal_cents() const { return i_; }
  const std::string& string_value() const { return s_; }
  int32_t date_value() const { return static_cast<int32_t>(i_); }

  /// Numeric view of any numeric (or date) value, as a double.
  /// Decimals are unscaled: Decimal(1.25).AsDouble() == 1.25.
  double AsDouble() const;

  /// Numeric view as int64 (decimals truncate toward zero).
  int64_t AsInt() const;

  /// Three-way comparison. NULLs sort first (before all non-NULL values);
  /// this is the *sorting* comparison — SQL predicate comparison with NULL
  /// is handled by the evaluator. Numeric types cross-compare; strings and
  /// dates only compare with their own kind.
  /// Returns <0, 0, >0. Mixed incomparable kinds compare by type id.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }

  /// Hash usable for hash joins / aggregation; equal values hash equal.
  size_t Hash() const;

  /// Display rendering (dates as YYYY-MM-DD, decimals with two digits,
  /// NULL as "NULL").
  std::string ToString() const;

  /// Casts to `target`, e.g. string->int for key coding, int->decimal.
  Result<Value> CastTo(DataType target) const;

 private:
  static Value MakeInt(DataType t, int64_t i) {
    Value v;
    v.type_ = t;
    v.null_ = false;
    v.i_ = i;
    return v;
  }

  DataType type_ = DataType::kInt64;
  bool null_ = true;
  int64_t i_ = 0;
  double d_ = 0.0;
  std::string s_;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_VALUE_H_
