#include "rdbms/session_pool.h"

#include "common/str_util.h"
#include "rdbms/db.h"

namespace r3 {
namespace rdbms {

SessionPool::SessionPool(Database* db, int64_t max_sessions)
    : db_(db), max_sessions_(max_sessions < 0 ? 0 : max_sessions) {
  MetricsRegistry* metrics = db_->metrics();
  m_acquired_ = metrics->GetCounter("rdbms.sessions.acquired");
  m_denied_ = metrics->GetCounter("rdbms.sessions.denied");
  g_active_ = metrics->GetGauge("rdbms.sessions.active");
  g_peak_ = metrics->GetGauge("rdbms.sessions.peak");
}

Result<SessionPool::Lease> SessionPool::Acquire() {
  if (max_sessions_ > 0 && active_ >= max_sessions_) {
    ++denied_;
    m_denied_->Add(1);
    return Status::OutOfRange(
        str::Format("session pool exhausted (%lld of %lld in use)",
                    static_cast<long long>(active_),
                    static_cast<long long>(max_sessions_)));
  }
  ++active_;
  if (active_ > peak_) peak_ = active_;
  m_acquired_->Add(1);
  g_active_->Set(active_);
  g_peak_->Set(peak_);
  return Lease(this);
}

void SessionPool::ReleaseOne() {
  if (active_ > 0) --active_;
  g_active_->Set(active_);
}

void SessionPool::Lease::Release() {
  if (pool_ != nullptr) {
    pool_->ReleaseOne();
    pool_ = nullptr;
  }
}

}  // namespace rdbms
}  // namespace r3
