#ifndef R3DB_RDBMS_STORAGE_PAGE_H_
#define R3DB_RDBMS_STORAGE_PAGE_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "rdbms/storage/disk.h"

namespace r3 {
namespace rdbms {

/// Record id: page number within the table's file + slot within the page.
struct Rid {
  uint32_t page_no = 0;
  uint16_t slot = 0;

  bool operator==(const Rid& o) const {
    return page_no == o.page_no && slot == o.slot;
  }
  bool operator<(const Rid& o) const {
    return page_no != o.page_no ? page_no < o.page_no : slot < o.slot;
  }

  /// Packs into 48 bits (for index payloads).
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page_no) << 16) | slot;
  }
  static Rid Unpack(uint64_t v) {
    return Rid{static_cast<uint32_t>(v >> 16), static_cast<uint16_t>(v & 0xffff)};
  }
};

/// View over one 8 KiB buffer frame laid out as a slotted page.
///
/// Layout:
///   [0..2)  uint16 slot_count
///   [2..4)  uint16 data_start (offset of the lowest record byte)
///   [4..12) uint64 page LSN (last WAL record applied; 0 = pre-WAL page)
///   [12..)  slot directory: per slot {uint16 offset, uint16 length}
///   ...free space...
///   [data_start..kPageSize) record bytes, growing downward
///
/// A deleted slot has offset == 0xFFFF. Slots are never reused across
/// deletes within a page's lifetime (keeps RIDs stable); the space of the
/// deleted record is reclaimed only by compaction on demand.
///
/// The page LSN makes redo idempotent: recovery skips a log record when the
/// on-disk page already carries an equal-or-newer LSN (DESIGN.md §8). It is
/// maintained by the transaction manager; pages written outside a WAL-enabled
/// database keep LSN 0 and are always older than any log record.
class SlottedPage {
 public:
  /// Wraps an existing frame; does not own it.
  explicit SlottedPage(char* frame) : p_(frame) {}

  /// Zeroes the header of a fresh page.
  void Init();

  uint16_t slot_count() const { return Get16(0); }

  /// LSN of the last WAL record applied to this page (0 = never stamped).
  uint64_t lsn() const;
  void set_lsn(uint64_t lsn);

  /// Contiguous free bytes available for one more record (+ its slot).
  size_t FreeSpace() const;

  /// Inserts a record; returns its slot or kNotFound if it does not fit.
  Result<uint16_t> Insert(std::string_view record);

  /// Inserts a record at exactly `slot` (recovery/undo path: restores a
  /// record to its original RID). The slot must be deleted or beyond the
  /// current directory; intermediate slots materialize as deleted
  /// placeholders. Works on a zeroed (never-initialized) frame. Fails with
  /// kInternal if the slot is live, kOutOfRange if out of space.
  Status InsertAt(uint16_t slot, std::string_view record);

  /// Returns the record bytes in `slot` (view into the frame).
  Result<std::string_view> Read(uint16_t slot) const;

  /// Marks `slot` deleted. Deleting twice is an error.
  Status Delete(uint16_t slot);

  /// Replaces the record in `slot`; fails with kOutOfRange if the new record
  /// does not fit in place plus remaining free space.
  Status Update(uint16_t slot, std::string_view record);

  /// True if the slot exists and is not deleted.
  bool IsLive(uint16_t slot) const;

  /// Sum of live record bytes (for stats).
  size_t LiveBytes() const;

 private:
  static constexpr uint16_t kDeleted = 0xffff;
  static constexpr size_t kHeaderSize = 12;
  static constexpr size_t kSlotSize = 4;

  uint16_t Get16(size_t off) const {
    return static_cast<uint16_t>(static_cast<unsigned char>(p_[off])) |
           static_cast<uint16_t>(static_cast<unsigned char>(p_[off + 1])) << 8;
  }
  void Put16(size_t off, uint16_t v) {
    p_[off] = static_cast<char>(v & 0xff);
    p_[off + 1] = static_cast<char>(v >> 8);
  }
  uint16_t data_start() const { return Get16(2); }
  uint16_t SlotOffset(uint16_t slot) const { return Get16(kHeaderSize + slot * kSlotSize); }
  uint16_t SlotLength(uint16_t slot) const { return Get16(kHeaderSize + slot * kSlotSize + 2); }

  /// Compacts record space, preserving slot numbers.
  void Compact();

  char* p_;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_STORAGE_PAGE_H_
