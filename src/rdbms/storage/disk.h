#ifndef R3DB_RDBMS_STORAGE_DISK_H_
#define R3DB_RDBMS_STORAGE_DISK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace r3 {
namespace rdbms {

/// Size of one disk page/buffer frame.
inline constexpr size_t kPageSize = 8192;

/// Identifies a page: (file, page number within file).
struct PageId {
  uint32_t file_id = 0;
  uint32_t page_no = 0;

  bool operator==(const PageId& o) const {
    return file_id == o.file_id && page_no == o.page_no;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& p) const {
    return (static_cast<size_t>(p.file_id) << 32) ^ p.page_no;
  }
};

/// In-memory stand-in for the disk subsystem.
///
/// Stores page images; knows nothing about costs (the BufferPool charges the
/// SimClock when it actually transfers pages). Files model tablespaces: each
/// table/index gets its own file so sequential-vs-random classification and
/// per-object size reporting (Table 2) are meaningful.
class Disk {
 public:
  Disk() = default;
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Creates an empty file; returns its id.
  uint32_t CreateFile();

  /// Appends a zeroed page to `file_id`; returns the new page number.
  Result<uint32_t> AllocatePage(uint32_t file_id);

  /// Copies a page image into `buf` (kPageSize bytes).
  Status ReadPage(PageId id, char* buf) const;

  /// Copies `buf` (kPageSize bytes) over the page image.
  Status WritePage(PageId id, const char* buf);

  /// Number of pages allocated in the file.
  Result<uint32_t> FilePages(uint32_t file_id) const;

  /// Bytes occupied by the file on "disk".
  Result<uint64_t> FileSizeBytes(uint32_t file_id) const;

  /// Drops all pages of a file (file id remains valid and empty).
  Status TruncateFile(uint32_t file_id);

 private:
  struct File {
    std::vector<std::unique_ptr<char[]>> pages;
  };
  Status CheckPage(PageId id) const;

  std::vector<File> files_;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_STORAGE_DISK_H_
