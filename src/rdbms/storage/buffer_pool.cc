#include "rdbms/storage/buffer_pool.h"

#include <cassert>
#include <cstring>
#include <mutex>

#include "common/str_util.h"
#include "common/trace.h"
#include "common/wait_event.h"

namespace r3 {
namespace rdbms {

PageHandle::PageHandle(BufferPool* pool, size_t frame_idx, char* data)
    : pool_(pool), frame_idx_(frame_idx), data_(data) {}

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& o) noexcept
    : pool_(o.pool_), frame_idx_(o.frame_idx_), data_(o.data_) {
  o.pool_ = nullptr;
  o.data_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_idx_ = o.frame_idx_;
    data_ = o.data_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  if (pool_ == nullptr) return;
  // The frame's id is stable while we hold a pin.
  BufferPool::Frame& f = pool_->frames_[frame_idx_];
  std::lock_guard<std::mutex> lk(pool_->ShardOf(f.id).mu);
  f.dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_idx_, /*dirty=*/false);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(Disk* disk, SimClock* clock, size_t capacity_bytes,
                       MetricsRegistry* metrics)
    : disk_(disk), clock_(clock) {
  if (metrics == nullptr) metrics = GlobalMetrics();
  m_logical_reads_ = metrics->GetCounter("rdbms.bufferpool.logical_reads");
  m_physical_reads_ = metrics->GetCounter("rdbms.bufferpool.physical_reads");
  m_sequential_reads_ =
      metrics->GetCounter("rdbms.bufferpool.sequential_reads");
  m_random_reads_ = metrics->GetCounter("rdbms.bufferpool.random_reads");
  m_page_writes_ = metrics->GetCounter("rdbms.bufferpool.page_writes");
  m_wait_io_ = metrics->GetCounter("rdbms.wait.buffer_pool_io");
  h_wait_io_us_ = metrics->GetHistogram("rdbms.wait.buffer_pool_io_us");
  size_t n = capacity_bytes / kPageSize;
  if (n < 8) n = 8;
  frames_.resize(n);
  free_frames_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    frames_[i].data = std::make_unique<char[]>(kPageSize);
    free_frames_.push_back(n - 1 - i);  // pop_back yields frame 0 first
  }
}

bool BufferPool::ChargeRead(PageId id) {
  // Workers classify against their lane's private read stream; the serial
  // path uses the pool-wide stream under stream_mu_. Either way, back-to-back
  // page_no values within one stream count as sequential I/O.
  std::unordered_map<uint32_t, uint32_t>* stream;
  std::unique_lock<std::mutex> lk;
  if (SimClock::Lane* lane = SimClock::active_lane()) {
    stream = &lane->last_read_page;
  } else {
    lk = std::unique_lock<std::mutex>(stream_mu_);
    stream = &last_read_page_;
  }
  auto it = stream->find(id.file_id);
  bool sequential = it != stream->end() && id.page_no == it->second + 1;
  (*stream)[id.file_id] = id.page_no;
  int64_t cost_us = sequential ? clock_->model().seq_page_read_us
                               : clock_->model().random_page_read_us;
  clock_->Charge(cost_us);
  m_wait_io_->Add(1);
  h_wait_io_us_->Observe(cost_us);
  if (Tracer* t = clock_->tracer()) {
    // Lane-active calls are dropped inside Complete(); the coordinator's
    // Gather span already carries the workers' merged critical path.
    t->Complete("io", sequential ? "page_read.seq" : "page_read.rand",
                clock_->NowMicros() - cost_us, cost_us);
  }
  if (WaitEventLog* wl = clock_->wait_log()) {
    // Lane-active calls are dropped inside Record() for the same reason.
    wl->Record(WaitClass::kBufferPoolIo, clock_->NowMicros() - cost_us,
               cost_us, sequential ? "page_read.seq" : "page_read.rand");
  }
  return sequential;
}

Result<size_t> BufferPool::GetVictimFrame() {
  {
    std::lock_guard<std::mutex> lk(lru_mu_);
    if (!free_frames_.empty()) {
      size_t idx = free_frames_.back();
      free_frames_.pop_back();
      return idx;
    }
  }
  // No-steal frames popped while hunting for a victim go back to the LRU
  // front (original relative order) once the hunt is over.
  std::vector<size_t> skipped;
  auto reinsert_skipped = [&] {
    for (size_t i = skipped.size(); i-- > 0;) {
      Frame& sf = frames_[skipped[i]];
      std::lock_guard<std::mutex> shard_lk(ShardOf(sf.id).mu);
      std::lock_guard<std::mutex> lru_lk(lru_mu_);
      // A concurrent fetch may have pinned it meanwhile; Unpin re-lists it.
      if (sf.in_use && sf.pin_count == 0 && !sf.in_lru) {
        lru_.push_front(skipped[i]);
        sf.lru_it = lru_.begin();
        sf.in_lru = true;
      }
    }
  };
  Result<size_t> result = Status::Internal("victim search did not conclude");
  bool decided = false;
  while (!decided) {
    size_t idx;
    {
      std::lock_guard<std::mutex> lk(lru_mu_);
      if (lru_.empty()) {
        result = Status::Internal(
            "buffer pool exhausted: all frames pinned or held by active "
            "transactions");
        break;
      }
      idx = lru_.front();
      lru_.pop_front();
      frames_[idx].in_lru = false;
    }
    Frame& f = frames_[idx];
    Shard& vs = ShardOf(f.id);
    std::lock_guard<std::mutex> lk(vs.mu);
    // A concurrent FetchPage may have re-pinned the frame between the LRU
    // pop and here; it will be pushed back on unpin, so just skip it.
    if (f.pin_count > 0) continue;
    if (f.no_steal) {
      skipped.push_back(idx);
      continue;
    }
    if (f.dirty) {
      Status st;
      if (wal_hook_ != nullptr && f.wal_lsn != 0) {
        st = wal_hook_->EnsureDurable(f.wal_lsn);
      }
      if (st.ok()) st = disk_->WritePage(f.id, f.data.get());
      if (!st.ok()) {
        // Put the frame back (still dirty, still resident) and fail the
        // fetch: with the log device gone nothing may reach the disk.
        std::lock_guard<std::mutex> lru_lk(lru_mu_);
        lru_.push_front(idx);
        f.lru_it = lru_.begin();
        f.in_lru = true;
        result = st;
        break;
      }
      ++vs.stats.page_writes;
      m_page_writes_->Add(1);
      clock_->ChargePageWrite();
      if (Tracer* t = clock_->tracer()) {
        int64_t cost_us = clock_->model().page_write_us;
        t->Complete("io", "page_write", clock_->NowMicros() - cost_us,
                    cost_us);
      }
      f.dirty = false;
    }
    f.wal_lsn = 0;
    f.rec_lsn = 0;
    vs.page_table.erase(f.id);
    f.in_use = false;
    result = idx;
    decided = true;
  }
  // Reinserted outside any shard lock (a skipped frame may share the
  // victim's shard; shard mutexes are not recursive).
  reinsert_skipped();
  return result;
}

Result<PageHandle> BufferPool::FetchPage(PageId id) {
  Shard& s = ShardOf(id);
  m_logical_reads_->Add(1);
  {
    std::lock_guard<std::mutex> lk(s.mu);
    ++s.stats.logical_reads;
    auto it = s.page_table.find(id);
    if (it != s.page_table.end()) {
      size_t idx = it->second;
      Frame& f = frames_[idx];
      {
        std::lock_guard<std::mutex> lru_lk(lru_mu_);
        if (f.in_lru) {
          lru_.erase(f.lru_it);
          f.in_lru = false;
        }
      }
      ++f.pin_count;
      return PageHandle(this, idx, f.data.get());
    }
  }
  // Miss: the load/eviction path runs one thread at a time.
  std::lock_guard<std::mutex> ev(evict_mu_);
  {
    // Another thread may have loaded the page while we waited.
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.page_table.find(id);
    if (it != s.page_table.end()) {
      size_t idx = it->second;
      Frame& f = frames_[idx];
      {
        std::lock_guard<std::mutex> lru_lk(lru_mu_);
        if (f.in_lru) {
          lru_.erase(f.lru_it);
          f.in_lru = false;
        }
      }
      ++f.pin_count;
      return PageHandle(this, idx, f.data.get());
    }
  }
  R3_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  R3_RETURN_IF_ERROR(disk_->ReadPage(id, f.data.get()));
  bool sequential = ChargeRead(id);
  f.id = id;
  f.in_use = true;
  f.dirty = false;
  f.pin_count = 1;
  m_physical_reads_->Add(1);
  (sequential ? m_sequential_reads_ : m_random_reads_)->Add(1);
  {
    std::lock_guard<std::mutex> lk(s.mu);
    ++s.stats.physical_reads;
    if (sequential) {
      ++s.stats.sequential_reads;
    } else {
      ++s.stats.random_reads;
    }
    s.page_table[id] = idx;
  }
  return PageHandle(this, idx, f.data.get());
}

Status BufferPool::ReadPageForScan(PageId id, char* buf) {
  Shard& s = ShardOf(id);
  m_logical_reads_->Add(1);
  {
    std::lock_guard<std::mutex> lk(s.mu);
    ++s.stats.logical_reads;
    auto it = s.page_table.find(id);
    if (it != s.page_table.end()) {
      std::memcpy(buf, frames_[it->second].data.get(), kPageSize);
      return Status::OK();
    }
  }
  // Miss: read straight from disk into the caller's buffer. No frame is
  // allocated and nothing is evicted, so replacement state (and therefore
  // every other reader's hit/miss outcome) is unaffected.
  R3_RETURN_IF_ERROR(disk_->ReadPage(id, buf));
  bool sequential = ChargeRead(id);
  m_physical_reads_->Add(1);
  (sequential ? m_sequential_reads_ : m_random_reads_)->Add(1);
  {
    std::lock_guard<std::mutex> lk(s.mu);
    ++s.stats.physical_reads;
    if (sequential) {
      ++s.stats.sequential_reads;
    } else {
      ++s.stats.random_reads;
    }
  }
  return Status::OK();
}

Result<PageHandle> BufferPool::NewPage(uint32_t file_id, uint32_t* page_no) {
  std::lock_guard<std::mutex> ev(evict_mu_);
  R3_ASSIGN_OR_RETURN(uint32_t pn, disk_->AllocatePage(file_id));
  *page_no = pn;
  R3_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  std::memset(f.data.get(), 0, kPageSize);
  f.id = PageId{file_id, pn};
  f.in_use = true;
  f.dirty = true;
  f.pin_count = 1;
  Shard& s = ShardOf(f.id);
  std::lock_guard<std::mutex> lk(s.mu);
  s.page_table[f.id] = idx;
  return PageHandle(this, idx, f.data.get());
}

void BufferPool::Unpin(size_t frame_idx, bool dirty) {
  Frame& f = frames_[frame_idx];
  // f.id is stable while pinned, so this resolves the right shard.
  Shard& s = ShardOf(f.id);
  std::lock_guard<std::mutex> lk(s.mu);
  assert(f.pin_count > 0);
  if (dirty) f.dirty = true;
  if (--f.pin_count == 0) {
    std::lock_guard<std::mutex> lru_lk(lru_mu_);
    lru_.push_back(frame_idx);
    f.lru_it = std::prev(lru_.end());
    f.in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  // Runs in serial context only (no concurrent workers).
  std::lock_guard<std::mutex> ev(evict_mu_);
  for (Frame& f : frames_) {
    if (f.in_use && f.dirty) {
      if (f.no_steal) continue;  // an active txn's page; see header comment
      if (wal_hook_ != nullptr && f.wal_lsn != 0) {
        R3_RETURN_IF_ERROR(wal_hook_->EnsureDurable(f.wal_lsn));
      }
      R3_RETURN_IF_ERROR(disk_->WritePage(f.id, f.data.get()));
      {
        std::lock_guard<std::mutex> lk(ShardOf(f.id).mu);
        ++ShardOf(f.id).stats.page_writes;
      }
      m_page_writes_->Add(1);
      clock_->ChargePageWrite();
      f.dirty = false;
      f.wal_lsn = 0;
      f.rec_lsn = 0;
    }
  }
  return Status::OK();
}

Status BufferPool::Reset() {
  R3_RETURN_IF_ERROR(FlushAll());
  std::lock_guard<std::mutex> ev(evict_mu_);
  for (Frame& f : frames_) {
    if (f.pin_count > 0) {
      return Status::Internal("Reset with pinned pages");
    }
    if (f.in_use && f.no_steal) {
      return Status::Internal("Reset with an active transaction's pages");
    }
  }
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.page_table.clear();
  }
  std::lock_guard<std::mutex> lru_lk(lru_mu_);
  lru_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) {
    frames_[i].in_use = false;
    frames_[i].in_lru = false;
    frames_[i].dirty = false;
    frames_[i].wal_lsn = 0;
    frames_[i].rec_lsn = 0;
    frames_[i].no_steal = false;
    free_frames_.push_back(frames_.size() - 1 - i);
  }
  std::lock_guard<std::mutex> stream_lk(stream_mu_);
  last_read_page_.clear();
  return Status::OK();
}

Status BufferPool::DropAllNoFlush() {
  // Serial context only: the "crash" happens with no statements in flight.
  std::lock_guard<std::mutex> ev(evict_mu_);
  for (Frame& f : frames_) {
    if (f.pin_count > 0) {
      return Status::Internal("DropAllNoFlush with pinned pages");
    }
  }
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.page_table.clear();
  }
  std::lock_guard<std::mutex> lru_lk(lru_mu_);
  lru_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    f.in_use = false;
    f.in_lru = false;
    f.dirty = false;
    f.wal_lsn = 0;
    f.rec_lsn = 0;
    f.no_steal = false;
    free_frames_.push_back(frames_.size() - 1 - i);
  }
  std::lock_guard<std::mutex> stream_lk(stream_mu_);
  last_read_page_.clear();
  return Status::OK();
}

Status BufferPool::MarkWalDirty(PageId id, uint64_t lsn, bool no_steal) {
  Shard& s = ShardOf(id);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.page_table.find(id);
  if (it == s.page_table.end()) {
    return Status::Internal(
        str::Format("MarkWalDirty: page %u:%u not resident", id.file_id,
                    id.page_no));
  }
  Frame& f = frames_[it->second];
  f.dirty = true;
  f.wal_lsn = lsn;
  if (f.rec_lsn == 0) f.rec_lsn = lsn;
  if (no_steal) f.no_steal = true;
  return Status::OK();
}

void BufferPool::ClearNoSteal(PageId id) {
  Shard& s = ShardOf(id);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.page_table.find(id);
  if (it == s.page_table.end()) return;
  frames_[it->second].no_steal = false;
}

uint64_t BufferPool::MinDirtyRecLsn() const {
  // Serial context only (checkpoint path); reads frame fields unlatched the
  // same way FlushAll does.
  uint64_t min_lsn = 0;
  for (const Frame& f : frames_) {
    if (f.in_use && f.dirty && f.rec_lsn != 0) {
      if (min_lsn == 0 || f.rec_lsn < min_lsn) min_lsn = f.rec_lsn;
    }
  }
  return min_lsn;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    total += s.stats;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.stats = BufferPoolStats();
  }
}

}  // namespace rdbms
}  // namespace r3
