#include "rdbms/storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "common/str_util.h"

namespace r3 {
namespace rdbms {

PageHandle::PageHandle(BufferPool* pool, size_t frame_idx, char* data)
    : pool_(pool), frame_idx_(frame_idx), data_(data) {}

PageHandle::~PageHandle() { Release(); }

PageHandle::PageHandle(PageHandle&& o) noexcept
    : pool_(o.pool_), frame_idx_(o.frame_idx_), data_(o.data_) {
  o.pool_ = nullptr;
  o.data_ = nullptr;
}

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_idx_ = o.frame_idx_;
    data_ = o.data_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
  }
  return *this;
}

void PageHandle::MarkDirty() {
  if (pool_ != nullptr) pool_->frames_[frame_idx_].dirty = true;
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_idx_, /*dirty=*/false);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(Disk* disk, SimClock* clock, size_t capacity_bytes)
    : disk_(disk), clock_(clock) {
  size_t n = capacity_bytes / kPageSize;
  if (n < 8) n = 8;
  frames_.resize(n);
  free_frames_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    frames_[i].data = std::make_unique<char[]>(kPageSize);
    free_frames_.push_back(n - 1 - i);  // pop_back yields frame 0 first
  }
}

void BufferPool::ChargeRead(PageId id) {
  auto it = last_read_page_.find(id.file_id);
  bool sequential = it != last_read_page_.end() && id.page_no == it->second + 1;
  if (sequential) {
    ++stats_.sequential_reads;
    clock_->ChargeSeqPageRead();
  } else {
    ++stats_.random_reads;
    clock_->ChargeRandomPageRead();
  }
  last_read_page_[id.file_id] = id.page_no;
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::Internal("buffer pool exhausted: all frames pinned");
  }
  size_t idx = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[idx];
  f.in_lru = false;
  if (f.dirty) {
    R3_RETURN_IF_ERROR(disk_->WritePage(f.id, f.data.get()));
    ++stats_.page_writes;
    clock_->ChargePageWrite();
    f.dirty = false;
  }
  page_table_.erase(f.id);
  f.in_use = false;
  return idx;
}

Result<PageHandle> BufferPool::FetchPage(PageId id) {
  ++stats_.logical_reads;
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    size_t idx = it->second;
    Frame& f = frames_[idx];
    if (f.in_lru) {
      lru_.erase(f.lru_it);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageHandle(this, idx, f.data.get());
  }
  ++stats_.physical_reads;
  R3_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  R3_RETURN_IF_ERROR(disk_->ReadPage(id, f.data.get()));
  ChargeRead(id);
  f.id = id;
  f.in_use = true;
  f.dirty = false;
  f.pin_count = 1;
  page_table_[id] = idx;
  return PageHandle(this, idx, f.data.get());
}

Result<PageHandle> BufferPool::NewPage(uint32_t file_id, uint32_t* page_no) {
  R3_ASSIGN_OR_RETURN(uint32_t pn, disk_->AllocatePage(file_id));
  *page_no = pn;
  R3_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  std::memset(f.data.get(), 0, kPageSize);
  f.id = PageId{file_id, pn};
  f.in_use = true;
  f.dirty = true;
  f.pin_count = 1;
  page_table_[f.id] = idx;
  return PageHandle(this, idx, f.data.get());
}

void BufferPool::Unpin(size_t frame_idx, bool dirty) {
  Frame& f = frames_[frame_idx];
  assert(f.pin_count > 0);
  if (dirty) f.dirty = true;
  if (--f.pin_count == 0) {
    lru_.push_back(frame_idx);
    f.lru_it = std::prev(lru_.end());
    f.in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.in_use && f.dirty) {
      R3_RETURN_IF_ERROR(disk_->WritePage(f.id, f.data.get()));
      ++stats_.page_writes;
      clock_->ChargePageWrite();
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::Reset() {
  R3_RETURN_IF_ERROR(FlushAll());
  for (Frame& f : frames_) {
    if (f.pin_count > 0) {
      return Status::Internal("Reset with pinned pages");
    }
  }
  page_table_.clear();
  lru_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) {
    frames_[i].in_use = false;
    frames_[i].in_lru = false;
    frames_[i].dirty = false;
    free_frames_.push_back(frames_.size() - 1 - i);
  }
  last_read_page_.clear();
  return Status::OK();
}

}  // namespace rdbms
}  // namespace r3
