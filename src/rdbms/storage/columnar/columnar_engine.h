#ifndef R3DB_RDBMS_STORAGE_COLUMNAR_COLUMNAR_ENGINE_H_
#define R3DB_RDBMS_STORAGE_COLUMNAR_COLUMNAR_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "rdbms/schema.h"
#include "rdbms/storage/buffer_pool.h"
#include "rdbms/storage/storage_engine.h"
#include "rdbms/value.h"

namespace r3 {
namespace rdbms {

class ColumnarScanCursor;

/// Read-optimized, memory-resident column store for the warehouse path:
/// per-column segments with dictionary compression for string (CHAR) keys
/// and run-length coding that collapses default-valued filler columns to a
/// handful of runs. Batch scans decode only the columns a query touches and
/// materialize survivors late, charging simulated time per compressed
/// segment byte and per decoded value instead of per heap page and tuple.
///
/// Rows are addressed by synthetic RIDs — page_no is the chunk index
/// (kChunkRows rows per chunk), slot the offset within the chunk — which
/// keeps B-tree payloads, row locks, and MVCC version keys working
/// unchanged. Slots are never reused, mirroring the heap's tombstones.
///
/// Not WAL-capable: segments live outside the buffer pool and are dropped
/// by crash simulation (a warehouse re-extracts after a crash; see
/// DESIGN.md). Writes are single-threaded (DML holds row locks); concurrent
/// read-only scans are safe.
class ColumnarEngine : public StorageEngine {
 public:
  static constexpr uint32_t kChunkRows = 4096;

  /// `schema` must outlive the engine. `file_id` is a reserved Disk file id
  /// used purely as the lock/MVCC/index namespace; no pages are written.
  ColumnarEngine(BufferPool* pool, uint32_t file_id, const Schema* schema,
                 MetricsRegistry* metrics = nullptr);

  EngineKind kind() const override { return EngineKind::kColumnar; }
  uint32_t file_id() const override { return file_id_; }
  bool wal_capable() const override { return false; }

  Result<Rid> Insert(std::string_view record) override;
  Status InsertAt(Rid rid, std::string_view record) override;
  Status Get(Rid rid, std::string* out) const override;
  Status Delete(Rid rid) override;
  Result<Rid> Update(Rid rid, std::string_view record) override;

  std::unique_ptr<ScanCursor> NewScanCursor(const ScanSpec& spec) override;
  std::unique_ptr<RecordIterator> NewIterator() const override;

  Result<uint32_t> NumPages() const override;
  Result<uint64_t> DataBytes() const override;
  Result<uint64_t> Checksum() const override;
  StorageCosts ScanCosts(const CostModel& cost) const override;
  void Clear() override;

  // -- Introspection (tests, PerfMonitor) ------------------------------------

  /// Total compressed segment + dictionary bytes (lazily recomputed).
  uint64_t CompressedBytes() const;
  /// Total serialized-record bytes of the live rows (the row-heap payload
  /// the compression is measured against).
  uint64_t RawBytes() const;
  size_t live_row_count() const { return live_rows_; }
  /// Highest slot index ever allocated (live or tombstoned) plus one.
  size_t total_slot_count() const { return total_slots_; }

 private:
  friend class ColumnarScanCursor;

  /// One column's segments: exactly one of {codes, ints, dbls} is populated
  /// depending on the declared type; `nulls` marks NULL slots everywhere.
  struct ColumnData {
    DataType type = DataType::kInt64;
    std::vector<uint32_t> codes;  ///< string columns: dictionary codes
    std::vector<std::string> dict;
    std::unordered_map<std::string, uint32_t> dict_map;
    std::vector<int64_t> ints;   ///< bool / int64 / decimal / date
    std::vector<double> dbls;    ///< double
    std::vector<uint8_t> nulls;  ///< 1 = NULL at that slot
  };

  /// Per-column compressed sizes, recomputed when `stats_dirty_`.
  struct ColumnStats {
    uint64_t dict_bytes = 0;
    uint64_t total_bytes = 0;             ///< dict + all chunk payloads
    std::vector<uint64_t> chunk_bytes;    ///< RLE payload bytes per chunk
  };

  size_t SlotIndex(Rid rid) const {
    return static_cast<size_t>(rid.page_no) * kChunkRows + rid.slot;
  }
  Rid RidOfIndex(size_t idx) const {
    return Rid{static_cast<uint32_t>(idx / kChunkRows),
               static_cast<uint16_t>(idx % kChunkRows)};
  }
  bool LiveAt(size_t idx) const { return idx < live_.size() && live_[idx]; }

  /// Appends one slot's worth of storage to every column (value payload for
  /// live rows, placeholder for holes).
  void AppendSlot(const Row& row);
  /// Overwrites the values at `idx` from `row` (slot must exist).
  void StoreAt(size_t idx, const Row& row);
  /// Reconstructs the Value of column `c` at slot `idx`.
  Value ValueAt(size_t c, size_t idx) const;
  /// Deserializes `record` against the schema, validating arity.
  Status DecodeRecord(std::string_view record, Row* row) const;
  void MarkDirty();
  /// Recomputes per-column RLE/dictionary sizes under stats_mu_.
  void RecomputeStats() const;
  /// Publishes compression gauges after a stats recompute.
  void PublishGauges(uint64_t compressed) const;

  size_t num_chunks() const {
    return (total_slots_ + kChunkRows - 1) / kChunkRows;
  }

  BufferPool* pool_;
  uint32_t file_id_;
  const Schema* schema_;

  std::vector<ColumnData> cols_;
  std::vector<uint8_t> live_;
  std::vector<uint32_t> rec_bytes_;  ///< serialized size per live slot
  size_t total_slots_ = 0;
  size_t live_rows_ = 0;
  uint64_t raw_bytes_ = 0;

  mutable std::mutex stats_mu_;
  mutable bool stats_dirty_ = true;
  mutable std::vector<ColumnStats> col_stats_;
  mutable uint64_t compressed_bytes_ = 0;

  Counter* m_segments_read_ = nullptr;
  Counter* m_values_scanned_ = nullptr;
  Counter* m_values_materialized_ = nullptr;
  Gauge* g_compressed_bytes_ = nullptr;
  Gauge* g_raw_bytes_ = nullptr;
  Gauge* g_bytes_saved_ = nullptr;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_STORAGE_COLUMNAR_COLUMNAR_ENGINE_H_
