#include "rdbms/storage/columnar/columnar_engine.h"

#include <algorithm>
#include <utility>

#include "common/str_util.h"
#include "rdbms/row.h"
#include "rdbms/txn/mvcc.h"

namespace r3 {
namespace rdbms {

namespace {

/// Compressed width of one stored value, in bytes. Dictionary codes shrink
/// with the dictionary; fixed-width types pay their natural size.
uint64_t ValueWidth(DataType type, size_t dict_size) {
  switch (type) {
    case DataType::kBool:
      return 1;
    case DataType::kDate:
      return 4;
    case DataType::kString:
      if (dict_size <= 255) return 1;
      if (dict_size <= 65535) return 2;
      return 4;
    default:
      return 8;  // int64 / decimal / double
  }
}

/// Per-run overhead: a 2-byte repeat count.
constexpr uint64_t kRunHeader = 2;
/// Per-dictionary-entry overhead: a 2-byte length prefix.
constexpr uint64_t kDictEntryHeader = 2;

}  // namespace

// ---------------------------------------------------------------------------
// ColumnarScanCursor
// ---------------------------------------------------------------------------

/// Batch scan kernel: per chunk, charge the compressed bytes of the touched
/// column segments as sequential page I/O, one columnar-value CPU tick per
/// scanned predicate value, evaluate dictionary-equality predicates on
/// codes, then materialize only the surviving rows' needed columns.
class ColumnarScanCursor : public ScanCursor {
 public:
  ColumnarScanCursor(const ColumnarEngine* engine, const ScanSpec& spec)
      : engine_(engine),
        mvcc_(spec.mvcc),
        snapshot_(spec.snapshot),
        offset_(spec.offset),
        wide_width_(spec.wide_width),
        dict_eqs_(spec.dict_eqs) {
    const size_t ncols = engine_->schema_->NumColumns();
    if (spec.all_columns) {
      for (size_t c = 0; c < ncols; ++c) mat_cols_.push_back(c);
    } else {
      mat_cols_ = spec.needed_cols;
      std::sort(mat_cols_.begin(), mat_cols_.end());
      mat_cols_.erase(std::unique(mat_cols_.begin(), mat_cols_.end()),
                      mat_cols_.end());
    }
    scan_cols_ = spec.filter_cols;
    std::sort(scan_cols_.begin(), scan_cols_.end());
    scan_cols_.erase(std::unique(scan_cols_.begin(), scan_cols_.end()),
                     scan_cols_.end());
  }

  Status BeginBatch() override {
    mvcc_active_ = mvcc_ != nullptr && snapshot_ != nullptr &&
                   mvcc_->MightHaveVersions(engine_->file_id());
    if (!opened_) {
      opened_ = true;
      R3_RETURN_IF_ERROR(ResolvePlan());
    }
    return Status::OK();
  }

  Result<bool> NextChunk(RowBatch* out) override {
    if (stage_pos_ >= staged_.size()) {
      staged_.clear();
      stage_pos_ = 0;
      while (staged_.empty()) {
        if (chunk_ >= chunk_cost_bytes_.size() || impossible_) {
          if (!tail_charged_) {
            tail_charged_ = true;
            if (byte_acc_ > 0) {
              engine_->pool_->clock()->ChargeSeqPageRead();
              byte_acc_ = 0;
            }
          }
          return false;
        }
        R3_RETURN_IF_ERROR(ProcessChunk(chunk_++));
      }
    }
    while (stage_pos_ < staged_.size() && !out->full()) {
      out->PushRow(std::move(staged_[stage_pos_++]));
    }
    return true;
  }

 private:
  /// Snapshots the per-chunk compressed byte costs of the accessed columns
  /// and resolves dictionary-equality literals to codes. An absent literal
  /// proves the predicate matches nothing: the scan reads dictionaries only.
  Status ResolvePlan() {
    const ColumnarEngine* e = engine_;
    e->RecomputeStats();
    std::vector<size_t> accessed = mat_cols_;
    accessed.insert(accessed.end(), scan_cols_.begin(), scan_cols_.end());
    std::sort(accessed.begin(), accessed.end());
    accessed.erase(std::unique(accessed.begin(), accessed.end()),
                   accessed.end());
    accessed_col_count_ = accessed.size();
    chunk_cost_bytes_.assign(e->num_chunks(), 0);
    uint64_t dict_bytes = 0;
    {
      std::lock_guard<std::mutex> lock(e->stats_mu_);
      for (size_t c : accessed) {
        if (c >= e->col_stats_.size()) {
          return Status::Internal(
              str::Format("columnar scan references column %zu of %zu", c,
                          e->col_stats_.size()));
        }
        const ColumnarEngine::ColumnStats& cs = e->col_stats_[c];
        dict_bytes += cs.dict_bytes;
        for (size_t k = 0; k < cs.chunk_bytes.size(); ++k) {
          chunk_cost_bytes_[k] += cs.chunk_bytes[k];
        }
      }
    }
    AddBytes(dict_bytes);
    for (const ScanSpec::DictEq& eq : dict_eqs_) {
      const ColumnarEngine::ColumnData& col = e->cols_[eq.col];
      if (col.type != DataType::kString) {
        return Status::Internal("dictionary predicate on non-string column");
      }
      auto it = col.dict_map.find(eq.value);
      if (it == col.dict_map.end()) {
        impossible_ = true;  // literal absent from the dictionary
        return Status::OK();
      }
      dict_codes_.push_back({eq.col, it->second});
    }
    return Status::OK();
  }

  void AddBytes(uint64_t bytes) {
    byte_acc_ += bytes;
    while (byte_acc_ >= kPageSize) {
      engine_->pool_->clock()->ChargeSeqPageRead();
      byte_acc_ -= kPageSize;
    }
  }

  bool PassesDictEqs(size_t idx) const {
    for (const auto& [c, code] : dict_codes_) {
      const ColumnarEngine::ColumnData& col = engine_->cols_[c];
      if (col.nulls[idx] || col.codes[idx] != code) return false;
    }
    return true;
  }

  Status ProcessChunk(size_t chunk) {
    const ColumnarEngine* e = engine_;
    SimClock* clock = e->pool_->clock();
    const size_t begin = chunk * ColumnarEngine::kChunkRows;
    const size_t end = std::min(e->total_slots_,
                                begin + ColumnarEngine::kChunkRows);
    AddBytes(chunk_cost_bytes_[chunk]);
    if (e->m_segments_read_ != nullptr) {
      e->m_segments_read_->Add(static_cast<int64_t>(accessed_col_count_));
    }
    int64_t live_n = 0;
    for (size_t idx = begin; idx < end; ++idx) {
      if (e->live_[idx]) ++live_n;
    }
    if (!scan_cols_.empty() && live_n > 0) {
      int64_t scanned = live_n * static_cast<int64_t>(scan_cols_.size());
      clock->ChargeColumnarValue(scanned);
      if (e->m_values_scanned_ != nullptr) e->m_values_scanned_->Add(scanned);
    }
    int64_t survivors = 0;
    for (size_t idx = begin; idx < end; ++idx) {
      if (!e->live_[idx]) continue;
      if (mvcc_active_) {
        // Engine-side predicate pushdown is disabled when versions may be
        // in play: a snapshot might see an older value of the column.
        switch (mvcc_->Check(e->file_id_, e->RidOfIndex(idx), *snapshot_,
                             &alt_rec_)) {
          case txn::MvccManager::Visibility::kCurrent:
            StageSegmentRow(idx);
            break;
          case txn::MvccManager::Visibility::kAltVersion:
            R3_RETURN_IF_ERROR(StageRecordRow(alt_rec_));
            break;
          case txn::MvccManager::Visibility::kInvisible:
            continue;
        }
      } else {
        if (!PassesDictEqs(idx)) continue;
        StageSegmentRow(idx);
      }
      ++survivors;
    }
    if (survivors > 0 && !mat_cols_.empty()) {
      int64_t materialized =
          survivors * static_cast<int64_t>(mat_cols_.size());
      clock->ChargeColumnarValue(materialized);
      if (e->m_values_materialized_ != nullptr) {
        e->m_values_materialized_->Add(materialized);
      }
    }
    if (mvcc_active_) {
      ghosts_.clear();
      mvcc_->VisibleGhosts(e->file_id_, static_cast<uint32_t>(chunk),
                           *snapshot_, &ghosts_);
      for (const auto& [slot, rec] : ghosts_) {
        // Ghosts are full record images, decoded like heap tuples.
        clock->ChargeDbmsTuple();
        R3_RETURN_IF_ERROR(StageRecordRow(rec));
      }
    }
    return Status::OK();
  }

  /// Materializes the needed columns of slot `idx` from the segments.
  void StageSegmentRow(size_t idx) {
    Row& wide = staged_.emplace_back();
    wide.assign(wide_width_, Value::Null());
    for (size_t c : mat_cols_) {
      wide[offset_ + c] = engine_->ValueAt(c, idx);
    }
  }

  /// Materializes every column from a serialized record image (MVCC alt
  /// versions and ghosts carry the whole row).
  Status StageRecordRow(std::string_view rec) {
    R3_RETURN_IF_ERROR(
        DeserializeRow(*engine_->schema_, rec, &table_row_));
    Row& wide = staged_.emplace_back();
    wide.assign(wide_width_, Value::Null());
    for (size_t i = 0; i < table_row_.size(); ++i) {
      wide[offset_ + i] = std::move(table_row_[i]);
    }
    return Status::OK();
  }

  const ColumnarEngine* engine_;
  txn::MvccManager* mvcc_;
  const txn::Snapshot* snapshot_;
  size_t offset_;
  size_t wide_width_;
  std::vector<ScanSpec::DictEq> dict_eqs_;

  std::vector<size_t> mat_cols_;
  std::vector<size_t> scan_cols_;
  size_t accessed_col_count_ = 0;
  std::vector<std::pair<size_t, uint32_t>> dict_codes_;
  std::vector<uint64_t> chunk_cost_bytes_;

  bool opened_ = false;
  bool mvcc_active_ = false;
  bool impossible_ = false;
  bool tail_charged_ = false;
  size_t chunk_ = 0;
  uint64_t byte_acc_ = 0;
  std::vector<Row> staged_;
  size_t stage_pos_ = 0;
  Row table_row_;
  std::string alt_rec_;
  std::vector<std::pair<uint16_t, std::string>> ghosts_;
};

// ---------------------------------------------------------------------------
// ColumnarEngine
// ---------------------------------------------------------------------------

ColumnarEngine::ColumnarEngine(BufferPool* pool, uint32_t file_id,
                               const Schema* schema, MetricsRegistry* metrics)
    : pool_(pool), file_id_(file_id), schema_(schema) {
  cols_.resize(schema_->NumColumns());
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].type = schema_->column(c).type;
  }
  if (metrics != nullptr) {
    m_segments_read_ = metrics->GetCounter("columnar.segments_read");
    m_values_scanned_ = metrics->GetCounter("columnar.values_scanned");
    m_values_materialized_ =
        metrics->GetCounter("columnar.values_materialized");
    g_compressed_bytes_ = metrics->GetGauge("columnar.compressed_bytes");
    g_raw_bytes_ = metrics->GetGauge("columnar.raw_bytes");
    g_bytes_saved_ = metrics->GetGauge("columnar.dict_bytes_saved");
  }
}

Status ColumnarEngine::DecodeRecord(std::string_view record, Row* row) const {
  R3_RETURN_IF_ERROR(DeserializeRow(*schema_, record, row));
  if (row->size() != cols_.size()) {
    return Status::Internal(
        str::Format("record has %zu columns, schema has %zu", row->size(),
                    cols_.size()));
  }
  return Status::OK();
}

void ColumnarEngine::AppendSlot(const Row& row) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    ColumnData& col = cols_[c];
    const Value* v = row.empty() ? nullptr : &row[c];
    const bool null = v == nullptr || v->is_null();
    col.nulls.push_back(null ? 1 : 0);
    if (col.type == DataType::kString) {
      uint32_t code = 0;
      if (!null) {
        const std::string& s = v->string_value();
        auto it = col.dict_map.find(s);
        if (it == col.dict_map.end()) {
          code = static_cast<uint32_t>(col.dict.size());
          col.dict.push_back(s);
          col.dict_map.emplace(s, code);
        } else {
          code = it->second;
        }
      }
      col.codes.push_back(code);
    } else if (col.type == DataType::kDouble) {
      col.dbls.push_back(null ? 0.0 : v->double_value());
    } else {
      col.ints.push_back(null ? 0 : v->int_value());
    }
  }
  live_.push_back(0);
  rec_bytes_.push_back(0);
  ++total_slots_;
}

void ColumnarEngine::StoreAt(size_t idx, const Row& row) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    ColumnData& col = cols_[c];
    const Value& v = row[c];
    const bool null = v.is_null();
    col.nulls[idx] = null ? 1 : 0;
    if (col.type == DataType::kString) {
      uint32_t code = 0;
      if (!null) {
        const std::string& s = v.string_value();
        auto it = col.dict_map.find(s);
        if (it == col.dict_map.end()) {
          code = static_cast<uint32_t>(col.dict.size());
          col.dict.push_back(s);
          col.dict_map.emplace(s, code);
        } else {
          code = it->second;
        }
      }
      col.codes[idx] = code;
    } else if (col.type == DataType::kDouble) {
      col.dbls[idx] = null ? 0.0 : v.double_value();
    } else {
      col.ints[idx] = null ? 0 : v.int_value();
    }
  }
}

Value ColumnarEngine::ValueAt(size_t c, size_t idx) const {
  const ColumnData& col = cols_[c];
  if (col.nulls[idx]) return Value::Null(col.type);
  switch (col.type) {
    case DataType::kString:
      return Value::Str(col.dict[col.codes[idx]]);
    case DataType::kDouble:
      return Value::Dbl(col.dbls[idx]);
    case DataType::kBool:
      return Value::Bool(col.ints[idx] != 0);
    case DataType::kDecimal:
      return Value::DecimalFromCents(col.ints[idx]);
    case DataType::kDate:
      return Value::Date(static_cast<int32_t>(col.ints[idx]));
    default:
      return Value::Int(col.ints[idx]);
  }
}

void ColumnarEngine::MarkDirty() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_dirty_ = true;
}

Result<Rid> ColumnarEngine::Insert(std::string_view record) {
  Row row;
  R3_RETURN_IF_ERROR(DecodeRecord(record, &row));
  const size_t idx = total_slots_;
  if (idx / kChunkRows > 0xFFFFFFFFull) {
    return Status::OutOfRange("columnar table full");
  }
  AppendSlot(row);
  live_[idx] = 1;
  rec_bytes_[idx] = static_cast<uint32_t>(record.size());
  raw_bytes_ += record.size();
  ++live_rows_;
  MarkDirty();
  return RidOfIndex(idx);
}

Status ColumnarEngine::InsertAt(Rid rid, std::string_view record) {
  if (rid.slot >= kChunkRows) {
    return Status::InvalidArgument(
        str::Format("columnar rid slot %u out of range", rid.slot));
  }
  Row row;
  R3_RETURN_IF_ERROR(DecodeRecord(record, &row));
  const size_t idx = SlotIndex(rid);
  while (total_slots_ <= idx) AppendSlot(Row());
  if (live_[idx]) {
    return Status::AlreadyExists(
        str::Format("columnar slot %u.%u is live", rid.page_no, rid.slot));
  }
  StoreAt(idx, row);
  live_[idx] = 1;
  raw_bytes_ += record.size() - rec_bytes_[idx];
  rec_bytes_[idx] = static_cast<uint32_t>(record.size());
  ++live_rows_;
  MarkDirty();
  return Status::OK();
}

Status ColumnarEngine::Get(Rid rid, std::string* out) const {
  const size_t idx = SlotIndex(rid);
  if (!LiveAt(idx)) {
    return Status::NotFound(
        str::Format("no columnar record at %u.%u", rid.page_no, rid.slot));
  }
  pool_->clock()->ChargeColumnarValue(static_cast<int64_t>(cols_.size()));
  Row row;
  row.reserve(cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) row.push_back(ValueAt(c, idx));
  out->clear();
  return SerializeRow(*schema_, row, out);
}

Status ColumnarEngine::Delete(Rid rid) {
  const size_t idx = SlotIndex(rid);
  if (!LiveAt(idx)) {
    return Status::NotFound(
        str::Format("no columnar record at %u.%u", rid.page_no, rid.slot));
  }
  live_[idx] = 0;
  raw_bytes_ -= rec_bytes_[idx];
  --live_rows_;
  MarkDirty();
  return Status::OK();
}

Result<Rid> ColumnarEngine::Update(Rid rid, std::string_view record) {
  const size_t idx = SlotIndex(rid);
  if (!LiveAt(idx)) {
    return Status::NotFound(
        str::Format("no columnar record at %u.%u", rid.page_no, rid.slot));
  }
  Row row;
  R3_RETURN_IF_ERROR(DecodeRecord(record, &row));
  StoreAt(idx, row);
  raw_bytes_ += record.size() - rec_bytes_[idx];
  rec_bytes_[idx] = static_cast<uint32_t>(record.size());
  MarkDirty();
  return rid;  // columnar updates never relocate
}

std::unique_ptr<ScanCursor> ColumnarEngine::NewScanCursor(
    const ScanSpec& spec) {
  return std::make_unique<ColumnarScanCursor>(this, spec);
}

namespace {

class ColumnarIterator : public RecordIterator {
 public:
  explicit ColumnarIterator(const ColumnarEngine* engine) : engine_(engine) {}

  Result<bool> Next(Rid* rid, std::string* record) override;

 private:
  const ColumnarEngine* engine_;
  size_t idx_ = 0;
};

}  // namespace

Result<bool> ColumnarIterator::Next(Rid* rid, std::string* record) {
  // Implemented via Get so maintenance reads charge like point reads.
  for (;;) {
    Rid r{static_cast<uint32_t>(idx_ / ColumnarEngine::kChunkRows),
          static_cast<uint16_t>(idx_ % ColumnarEngine::kChunkRows)};
    if (idx_ >= engine_->total_slot_count()) return false;
    ++idx_;
    Status st = engine_->Get(r, record);
    if (st.ok()) {
      *rid = r;
      return true;
    }
    if (st.code() != StatusCode::kNotFound) return st;
  }
}

std::unique_ptr<RecordIterator> ColumnarEngine::NewIterator() const {
  return std::make_unique<ColumnarIterator>(this);
}

Result<uint32_t> ColumnarEngine::NumPages() const {
  const uint64_t bytes = CompressedBytes();
  const uint64_t pages = (bytes + kPageSize - 1) / kPageSize;
  return static_cast<uint32_t>(std::max<uint64_t>(1, pages));
}

Result<uint64_t> ColumnarEngine::DataBytes() const {
  return CompressedBytes();
}

Result<uint64_t> ColumnarEngine::Checksum() const {
  // Same commutative FNV-1a over live record images as the row heap: the
  // records re-serialize canonically, so identical logical contents hash
  // identically across engines.
  uint64_t sum = 0;
  uint64_t count = 0;
  std::string rec;
  Row row;
  for (size_t idx = 0; idx < total_slots_; ++idx) {
    if (!live_[idx]) continue;
    row.clear();
    for (size_t c = 0; c < cols_.size(); ++c) row.push_back(ValueAt(c, idx));
    rec.clear();
    R3_RETURN_IF_ERROR(SerializeRow(*schema_, row, &rec));
    uint64_t h = 1469598103934665603ull;  // FNV offset basis
    for (unsigned char ch : rec) {
      h ^= ch;
      h *= 1099511628211ull;  // FNV prime
    }
    sum += h;
    ++count;
  }
  return sum + count * 0x9E3779B97F4A7C15ull;
}

StorageCosts ColumnarEngine::ScanCosts(const CostModel& cost) const {
  StorageCosts c;
  // Segments stream at the sequential page rate, but NumPages() reports
  // compressed pages, so the I/O term shrinks with the compression ratio.
  c.seq_page_us = static_cast<double>(cost.seq_page_read_us);
  // Random access is still priced like a seek: the optimizer's random-page
  // term always rides on a B-tree descent, and those index pages are as
  // page-bound as ever. Pricing it at the (tiny) per-value decode cost made
  // every index path look free and flipped scan-friendly plans to index
  // nested loops that the engine then executed no faster.
  c.random_page_us = static_cast<double>(cost.random_page_read_us);
  c.tuple_cpu_us = static_cast<double>(cost.columnar_value_cpu_us) *
                   static_cast<double>(cols_.size());
  return c;
}

void ColumnarEngine::Clear() {
  for (ColumnData& col : cols_) {
    col.codes.clear();
    col.dict.clear();
    col.dict_map.clear();
    col.ints.clear();
    col.dbls.clear();
    col.nulls.clear();
  }
  live_.clear();
  rec_bytes_.clear();
  total_slots_ = 0;
  live_rows_ = 0;
  raw_bytes_ = 0;
  MarkDirty();
}

uint64_t ColumnarEngine::CompressedBytes() const {
  RecomputeStats();
  std::lock_guard<std::mutex> lock(stats_mu_);
  return compressed_bytes_;
}

uint64_t ColumnarEngine::RawBytes() const { return raw_bytes_; }

void ColumnarEngine::RecomputeStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (!stats_dirty_) return;
  const size_t chunks = num_chunks();
  col_stats_.assign(cols_.size(), ColumnStats());
  uint64_t total = 0;
  for (size_t c = 0; c < cols_.size(); ++c) {
    const ColumnData& col = cols_[c];
    ColumnStats& cs = col_stats_[c];
    cs.chunk_bytes.assign(chunks, 0);
    if (col.type == DataType::kString) {
      for (const std::string& s : col.dict) {
        cs.dict_bytes += s.size() + kDictEntryHeader;
      }
    }
    const uint64_t width = ValueWidth(col.type, col.dict.size());
    for (size_t k = 0; k < chunks; ++k) {
      const size_t begin = k * kChunkRows;
      const size_t end = std::min(total_slots_, begin + kChunkRows);
      // Count runs of equal (value, nullness) pairs across the chunk's live
      // slots: an all-default filler column collapses to a single run.
      uint64_t runs = 0;
      bool have_prev = false;
      bool prev_null = false;
      uint32_t prev_code = 0;
      int64_t prev_int = 0;
      double prev_dbl = 0.0;
      for (size_t idx = begin; idx < end; ++idx) {
        if (!live_[idx]) continue;
        const bool null = col.nulls[idx] != 0;
        bool same = have_prev && null == prev_null;
        if (same && !null) {
          if (col.type == DataType::kString) {
            same = col.codes[idx] == prev_code;
          } else if (col.type == DataType::kDouble) {
            same = col.dbls[idx] == prev_dbl;
          } else {
            same = col.ints[idx] == prev_int;
          }
        }
        if (!same) {
          ++runs;
          have_prev = true;
          prev_null = null;
          if (!null) {
            if (col.type == DataType::kString) {
              prev_code = col.codes[idx];
            } else if (col.type == DataType::kDouble) {
              prev_dbl = col.dbls[idx];
            } else {
              prev_int = col.ints[idx];
            }
          }
        }
      }
      cs.chunk_bytes[k] = runs * (width + kRunHeader);
    }
    for (uint64_t b : cs.chunk_bytes) cs.total_bytes += b;
    cs.total_bytes += cs.dict_bytes;
    total += cs.total_bytes;
  }
  compressed_bytes_ = total;
  stats_dirty_ = false;
  PublishGauges(total);
}

void ColumnarEngine::PublishGauges(uint64_t compressed) const {
  if (g_compressed_bytes_ != nullptr) {
    g_compressed_bytes_->Set(static_cast<int64_t>(compressed));
  }
  if (g_raw_bytes_ != nullptr) {
    g_raw_bytes_->Set(static_cast<int64_t>(raw_bytes_));
  }
  if (g_bytes_saved_ != nullptr) {
    const int64_t saved = static_cast<int64_t>(raw_bytes_) -
                          static_cast<int64_t>(compressed);
    g_bytes_saved_->Set(saved > 0 ? saved : 0);
  }
}

}  // namespace rdbms
}  // namespace r3
