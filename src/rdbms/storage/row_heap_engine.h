#ifndef R3DB_RDBMS_STORAGE_ROW_HEAP_ENGINE_H_
#define R3DB_RDBMS_STORAGE_ROW_HEAP_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>

#include "rdbms/schema.h"
#include "rdbms/storage/heap_file.h"
#include "rdbms/storage/storage_engine.h"

namespace r3 {
namespace rdbms {

/// The transactional default engine: slotted heap pages in the buffer pool,
/// WAL-logged and MVCC-versioned. A thin wrapper over HeapFile — every
/// operation forwards unchanged, so behavior (and simulated cost) is
/// byte-identical to the pre-engine code that used TableInfo::heap directly.
class RowHeapEngine : public StorageEngine {
 public:
  /// `schema` must outlive the engine (it points into the owning TableInfo).
  RowHeapEngine(BufferPool* pool, uint32_t file_id, const Schema* schema);

  EngineKind kind() const override { return EngineKind::kRowHeap; }
  uint32_t file_id() const override { return heap_.file_id(); }
  bool wal_capable() const override { return true; }
  HeapFile* heap_file() const override { return &heap_; }

  Result<Rid> Insert(std::string_view record) override {
    return heap_.Insert(record);
  }
  Status InsertAt(Rid rid, std::string_view record) override {
    return heap_.InsertAt(rid, record);
  }
  Status Get(Rid rid, std::string* out) const override {
    return heap_.Get(rid, out);
  }
  Status Delete(Rid rid) override { return heap_.Delete(rid); }
  Result<Rid> Update(Rid rid, std::string_view record) override {
    return heap_.Update(rid, record);
  }
  void ResetInsertHint() override { heap_.ResetInsertHint(); }

  std::unique_ptr<ScanCursor> NewScanCursor(const ScanSpec& spec) override;
  std::unique_ptr<RecordIterator> NewIterator() const override;

  Result<uint32_t> NumPages() const override { return heap_.NumPages(); }
  Result<uint64_t> DataBytes() const override;
  Result<uint64_t> Checksum() const override;
  StorageCosts ScanCosts(const CostModel& cost) const override;

 private:
  BufferPool* pool_;
  // mutable: the const heap_file() accessor hands out the non-const pointer
  // that WAL redo and recovery rebuild need.
  mutable HeapFile heap_;
  const Schema* schema_;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_STORAGE_ROW_HEAP_ENGINE_H_
