#include "rdbms/storage/row_heap_engine.h"

#include <utility>
#include <vector>

#include "rdbms/row.h"
#include "rdbms/storage/page.h"
#include "rdbms/txn/mvcc.h"

namespace r3 {
namespace rdbms {

namespace {

/// The sequential-scan loop extracted verbatim from the pre-engine
/// SeqScanOp: one NextChunk call performs one step of the old per-batch
/// while loop — a pending-ghost drain, or one heap page's live slots (with
/// per-row MVCC resolution) plus the ghost collection for that page.
class RowHeapScanCursor : public ScanCursor {
 public:
  RowHeapScanCursor(BufferPool* pool, HeapFile* heap, const Schema* schema,
                    const ScanSpec& spec)
      : pool_(pool),
        heap_(heap),
        schema_(schema),
        mvcc_(spec.mvcc),
        snapshot_(spec.snapshot),
        offset_(spec.offset),
        wide_width_(spec.wide_width) {}

  Status BeginBatch() override {
    R3_ASSIGN_OR_RETURN(num_pages_, heap_->NumPages());
    // Consult the version map only when it could matter: it is empty unless
    // a transaction is (or recently was) rewriting rows under MVCC.
    mvcc_active_ = mvcc_ != nullptr && snapshot_ != nullptr &&
                   mvcc_->MightHaveVersions(heap_->file_id());
    return Status::OK();
  }

  Result<bool> NextChunk(RowBatch* out) override {
    const uint32_t file_id = heap_->file_id();
    if (ghost_pos_ < pending_ghosts_.size()) {
      // Drain ghosts of the page just finished: rows whose physical delete
      // this snapshot must not observe.
      while (ghost_pos_ < pending_ghosts_.size() && !out->full()) {
        pool_->clock()->ChargeDbmsTuple();
        const std::string& rec = pending_ghosts_[ghost_pos_++].second;
        R3_RETURN_IF_ERROR(DeserializeRow(*schema_, rec, &table_row_));
        EmitWideRow(out);
      }
    } else if (page_no_ >= num_pages_) {
      return false;
    } else {
      R3_ASSIGN_OR_RETURN(PageHandle h,
                          pool_->FetchPage(PageId{file_id, page_no_}));
      SlottedPage page(h.data());
      while (slot_ < page.slot_count() && !out->full()) {
        uint16_t s = static_cast<uint16_t>(slot_++);
        if (!page.IsLive(s)) continue;
        pool_->clock()->ChargeDbmsTuple();
        R3_ASSIGN_OR_RETURN(std::string_view rec, page.Read(s));
        if (mvcc_active_) {
          switch (mvcc_->Check(file_id, Rid{page_no_, s}, *snapshot_,
                               &alt_rec_)) {
            case txn::MvccManager::Visibility::kCurrent:
              break;
            case txn::MvccManager::Visibility::kAltVersion:
              rec = alt_rec_;
              break;
            case txn::MvccManager::Visibility::kInvisible:
              continue;
          }
        }
        R3_RETURN_IF_ERROR(DeserializeRow(*schema_, rec, &table_row_));
        EmitWideRow(out);
      }
      if (slot_ >= page.slot_count()) {
        if (mvcc_active_) {
          pending_ghosts_.clear();
          ghost_pos_ = 0;
          mvcc_->VisibleGhosts(file_id, page_no_, *snapshot_,
                               &pending_ghosts_);
        }
        ++page_no_;
        slot_ = 0;
      }
    }  // the page pin is released before the caller runs its filters
    return true;
  }

 private:
  void EmitWideRow(RowBatch* out) {
    Row& wide = out->AppendRow();
    wide.assign(wide_width_, Value::Null());
    for (size_t i = 0; i < table_row_.size(); ++i) {
      wide[offset_ + i] = std::move(table_row_[i]);
    }
  }

  BufferPool* pool_;
  HeapFile* heap_;
  const Schema* schema_;
  txn::MvccManager* mvcc_;
  const txn::Snapshot* snapshot_;
  size_t offset_;
  size_t wide_width_;

  uint32_t num_pages_ = 0;
  bool mvcc_active_ = false;
  uint32_t page_no_ = 0;
  uint32_t slot_ = 0;
  Row table_row_;
  std::string alt_rec_;
  std::vector<std::pair<uint16_t, std::string>> pending_ghosts_;
  size_t ghost_pos_ = 0;
};

class RowHeapIterator : public RecordIterator {
 public:
  explicit RowHeapIterator(const HeapFile* heap) : it_(heap) {}
  Result<bool> Next(Rid* rid, std::string* record) override {
    return it_.Next(rid, record);
  }

 private:
  HeapFile::Iterator it_;
};

}  // namespace

RowHeapEngine::RowHeapEngine(BufferPool* pool, uint32_t file_id,
                             const Schema* schema)
    : pool_(pool), heap_(pool, file_id), schema_(schema) {}

std::unique_ptr<ScanCursor> RowHeapEngine::NewScanCursor(
    const ScanSpec& spec) {
  return std::make_unique<RowHeapScanCursor>(pool_, &heap_, schema_, spec);
}

std::unique_ptr<RecordIterator> RowHeapEngine::NewIterator() const {
  return std::make_unique<RowHeapIterator>(&heap_);
}

Result<uint64_t> RowHeapEngine::DataBytes() const {
  return pool_->disk()->FileSizeBytes(heap_.file_id());
}

Result<uint64_t> RowHeapEngine::Checksum() const {
  // FNV-1a per record, combined commutatively: the checksum depends only on
  // the multiset of live record images, not on their RIDs or scan order
  // (undo and recovery may relocate records).
  uint64_t sum = 0;
  uint64_t count = 0;
  R3_ASSIGN_OR_RETURN(uint32_t num_pages, heap_.NumPages());
  std::vector<char> buf(kPageSize);
  for (uint32_t p = 0; p < num_pages; ++p) {
    R3_RETURN_IF_ERROR(
        pool_->ReadPageForScan(PageId{heap_.file_id(), p}, buf.data()));
    SlottedPage page(buf.data());
    for (uint16_t s = 0; s < page.slot_count(); ++s) {
      if (!page.IsLive(s)) continue;
      R3_ASSIGN_OR_RETURN(std::string_view rec, page.Read(s));
      uint64_t h = 1469598103934665603ull;  // FNV offset basis
      for (unsigned char c : rec) {
        h ^= c;
        h *= 1099511628211ull;  // FNV prime
      }
      sum += h;
      ++count;
    }
  }
  return sum + count * 0x9E3779B97F4A7C15ull;
}

StorageCosts RowHeapEngine::ScanCosts(const CostModel& cost) const {
  StorageCosts c;
  c.seq_page_us = static_cast<double>(cost.seq_page_read_us);
  c.random_page_us = static_cast<double>(cost.random_page_read_us);
  c.tuple_cpu_us = static_cast<double>(cost.dbms_tuple_cpu_us);
  return c;
}

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kRowHeap:
      return "row";
    case EngineKind::kColumnar:
      return "columnar";
  }
  return "unknown";
}

Result<EngineKind> ParseEngineKind(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(
        c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c));
  }
  if (lower == "row" || lower == "rowheap" || lower == "heap") {
    return EngineKind::kRowHeap;
  }
  if (lower == "columnar" || lower == "column") return EngineKind::kColumnar;
  return Status::InvalidArgument("unknown storage engine '" +
                                 std::string(name) +
                                 "' (expected row or columnar)");
}

}  // namespace rdbms
}  // namespace r3
