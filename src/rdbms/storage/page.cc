#include "rdbms/storage/page.h"

#include <cstring>
#include <vector>

#include "common/str_util.h"

namespace r3 {
namespace rdbms {

void SlottedPage::Init() {
  Put16(0, 0);
  Put16(2, static_cast<uint16_t>(kPageSize));
  set_lsn(0);
}

uint64_t SlottedPage::lsn() const {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p_[4 + i]);
  }
  return v;
}

void SlottedPage::set_lsn(uint64_t lsn) {
  for (int i = 0; i < 8; ++i) {
    p_[4 + i] = static_cast<char>(lsn & 0xff);
    lsn >>= 8;
  }
}

size_t SlottedPage::FreeSpace() const {
  size_t dir_end = kHeaderSize + slot_count() * kSlotSize;
  size_t start = data_start();
  if (start < dir_end) return 0;  // should not happen
  return start - dir_end;
}

Result<uint16_t> SlottedPage::Insert(std::string_view record) {
  if (record.size() > kPageSize - kHeaderSize - kSlotSize) {
    return Status::OutOfRange(
        str::Format("record of %zu bytes exceeds page capacity", record.size()));
  }
  size_t needed = record.size() + kSlotSize;
  if (FreeSpace() < needed) {
    // Space may be fragmented by deletes; compact once and retest.
    Compact();
    if (FreeSpace() < needed) {
      return Status::OutOfRange("page full");
    }
  }
  uint16_t slot = slot_count();
  uint16_t new_start = static_cast<uint16_t>(data_start() - record.size());
  std::memcpy(p_ + new_start, record.data(), record.size());
  Put16(2, new_start);
  Put16(kHeaderSize + slot * kSlotSize, new_start);
  Put16(kHeaderSize + slot * kSlotSize + 2, static_cast<uint16_t>(record.size()));
  Put16(0, static_cast<uint16_t>(slot + 1));
  return slot;
}

Status SlottedPage::InsertAt(uint16_t slot, std::string_view record) {
  // A frame that was allocated but never flushed reads back zeroed after a
  // crash; data_start 0 is impossible on an initialized page, so treat it as
  // "needs Init" (preserving the zero LSN).
  if (data_start() == 0) Init();
  uint16_t count = slot_count();
  if (slot < count && SlotOffset(slot) != kDeleted) {
    return Status::Internal(str::Format("slot %u is live", slot));
  }
  size_t new_slots = slot < count ? 0 : static_cast<size_t>(slot - count) + 1;
  size_t needed = record.size() + new_slots * kSlotSize;
  if (FreeSpace() < needed) {
    Compact();
    if (FreeSpace() < needed) {
      return Status::OutOfRange("page full");
    }
  }
  if (slot >= count) {
    for (uint16_t s = count; s <= slot; ++s) {
      Put16(kHeaderSize + s * kSlotSize, kDeleted);
      Put16(kHeaderSize + s * kSlotSize + 2, 0);
    }
    Put16(0, static_cast<uint16_t>(slot + 1));
  }
  uint16_t new_start = static_cast<uint16_t>(data_start() - record.size());
  std::memcpy(p_ + new_start, record.data(), record.size());
  Put16(2, new_start);
  Put16(kHeaderSize + slot * kSlotSize, new_start);
  Put16(kHeaderSize + slot * kSlotSize + 2,
        static_cast<uint16_t>(record.size()));
  return Status::OK();
}

Result<std::string_view> SlottedPage::Read(uint16_t slot) const {
  if (slot >= slot_count()) {
    return Status::NotFound(str::Format("no slot %u", slot));
  }
  uint16_t off = SlotOffset(slot);
  if (off == kDeleted) {
    return Status::NotFound(str::Format("slot %u deleted", slot));
  }
  return std::string_view(p_ + off, SlotLength(slot));
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= slot_count()) {
    return Status::NotFound(str::Format("no slot %u", slot));
  }
  if (SlotOffset(slot) == kDeleted) {
    return Status::NotFound(str::Format("slot %u already deleted", slot));
  }
  Put16(kHeaderSize + slot * kSlotSize, kDeleted);
  return Status::OK();
}

Status SlottedPage::Update(uint16_t slot, std::string_view record) {
  if (slot >= slot_count()) {
    return Status::NotFound(str::Format("no slot %u", slot));
  }
  uint16_t off = SlotOffset(slot);
  if (off == kDeleted) {
    return Status::NotFound(str::Format("slot %u deleted", slot));
  }
  uint16_t old_len = SlotLength(slot);
  if (record.size() <= old_len) {
    std::memcpy(p_ + off, record.data(), record.size());
    Put16(kHeaderSize + slot * kSlotSize + 2, static_cast<uint16_t>(record.size()));
    return Status::OK();
  }
  // Grow: relocate within the page if there is room.
  if (FreeSpace() + old_len < record.size()) {
    // Try compaction with this slot's space freed first.
    Put16(kHeaderSize + slot * kSlotSize, kDeleted);
    Compact();
    if (FreeSpace() < record.size()) {
      // Restore is impossible (record bytes were reclaimed); the caller
      // (HeapFile) treats this as "does not fit" and relocates the record,
      // so losing the old image here is fine — it saved it beforehand.
      return Status::OutOfRange("record grew beyond page space");
    }
    uint16_t new_start = static_cast<uint16_t>(data_start() - record.size());
    std::memcpy(p_ + new_start, record.data(), record.size());
    Put16(2, new_start);
    Put16(kHeaderSize + slot * kSlotSize, new_start);
    Put16(kHeaderSize + slot * kSlotSize + 2, static_cast<uint16_t>(record.size()));
    return Status::OK();
  }
  Put16(kHeaderSize + slot * kSlotSize, kDeleted);
  Compact();
  uint16_t new_start = static_cast<uint16_t>(data_start() - record.size());
  std::memcpy(p_ + new_start, record.data(), record.size());
  Put16(2, new_start);
  Put16(kHeaderSize + slot * kSlotSize, new_start);
  Put16(kHeaderSize + slot * kSlotSize + 2, static_cast<uint16_t>(record.size()));
  return Status::OK();
}

bool SlottedPage::IsLive(uint16_t slot) const {
  return slot < slot_count() && SlotOffset(slot) != kDeleted;
}

size_t SlottedPage::LiveBytes() const {
  size_t total = 0;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) != kDeleted) total += SlotLength(s);
  }
  return total;
}

void SlottedPage::Compact() {
  struct Live {
    uint16_t slot;
    uint16_t off;
    uint16_t len;
  };
  std::vector<Live> live;
  live.reserve(slot_count());
  for (uint16_t s = 0; s < slot_count(); ++s) {
    uint16_t off = SlotOffset(s);
    if (off != kDeleted) live.push_back({s, off, SlotLength(s)});
  }
  // Copy records out, rewrite densely from the end of the page.
  std::string scratch;
  scratch.reserve(kPageSize);
  for (const Live& l : live) scratch.append(p_ + l.off, l.len);
  uint16_t write = static_cast<uint16_t>(kPageSize);
  size_t src = 0;
  for (const Live& l : live) {
    write = static_cast<uint16_t>(write - l.len);
    std::memcpy(p_ + write, scratch.data() + src, l.len);
    src += l.len;
    Put16(kHeaderSize + l.slot * kSlotSize, write);
  }
  Put16(2, write);
}

}  // namespace rdbms
}  // namespace r3
