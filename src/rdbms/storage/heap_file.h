#ifndef R3DB_RDBMS_STORAGE_HEAP_FILE_H_
#define R3DB_RDBMS_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "rdbms/storage/buffer_pool.h"
#include "rdbms/storage/page.h"

namespace r3 {
namespace rdbms {

/// Unordered collection of records in slotted pages of one Disk file.
class HeapFile {
 public:
  /// `file_id` must be a fresh or previously-HeapFile-owned Disk file.
  HeapFile(BufferPool* pool, uint32_t file_id);

  uint32_t file_id() const { return file_id_; }

  /// Appends a record, allocating pages as needed.
  Result<Rid> Insert(std::string_view record);

  /// Places a record at exactly `rid` (undo/redo path: a record must return
  /// to its original RID so index payloads stay valid). Allocates missing
  /// pages up to rid.page_no; the slot must not hold a live record.
  Status InsertAt(Rid rid, std::string_view record);

  /// Forgets the append-locality hint (after crash recovery rebuilt state).
  void ResetInsertHint() { has_last_insert_page_ = false; }

  /// Copies the record at `rid` into `*out`.
  Status Get(Rid rid, std::string* out) const;

  /// Deletes the record at `rid`.
  Status Delete(Rid rid);

  /// Updates in place when possible; if the record no longer fits on its
  /// page it is moved and the *new* Rid is returned (caller must fix any
  /// index entries).
  Result<Rid> Update(Rid rid, std::string_view record);

  /// Number of pages in the file.
  Result<uint32_t> NumPages() const;

  /// Full-scan cursor. Usage:
  ///   HeapFile::Iterator it(&heap);
  ///   while (true) {
  ///     R3_ASSIGN_OR_RETURN(bool ok, it.Next(&rid, &rec));
  ///     if (!ok) break; ...
  ///   }
  class Iterator {
   public:
    explicit Iterator(const HeapFile* heap) : heap_(heap) {}

    /// Advances to the next live record. Returns false at end of file.
    Result<bool> Next(Rid* rid, std::string* record);

   private:
    const HeapFile* heap_;
    uint32_t page_no_ = 0;
    uint32_t slot_ = 0;  // next slot to examine on page_no_
    bool done_ = false;
  };

 private:
  BufferPool* pool_;
  uint32_t file_id_;
  // Page with known free space to try first (simple append locality).
  uint32_t last_insert_page_ = 0;
  bool has_last_insert_page_ = false;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_STORAGE_HEAP_FILE_H_
