#ifndef R3DB_RDBMS_STORAGE_STORAGE_ENGINE_H_
#define R3DB_RDBMS_STORAGE_STORAGE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/cost_model.h"
#include "common/status.h"
#include "rdbms/row_batch.h"
#include "rdbms/storage/page.h"

namespace r3 {
namespace rdbms {

class HeapFile;

namespace txn {
class MvccManager;
struct Snapshot;
}  // namespace txn

/// Which physical layout a table uses. The row heap is the transactional
/// default; the columnar engine is a read-optimized, memory-resident layout
/// for the warehouse path (no WAL durability — a crash re-extracts).
enum class EngineKind : uint8_t {
  kRowHeap = 0,
  kColumnar = 1,
};

const char* EngineKindName(EngineKind kind);

/// Parses "row" / "columnar" (case-insensitive). Anything else is an error.
Result<EngineKind> ParseEngineKind(std::string_view name);

/// Per-engine page/tuple costs the optimizer plugs into its formulas, in the
/// spirit of MariaDB's per-handler OPTIMIZER_COSTS. Values are doubles so an
/// engine can undercut the row heap's integer microsecond constants; the row
/// engine reports the CostModel integers verbatim (exactly representable, so
/// plan arithmetic stays bit-identical to the pre-engine code).
struct StorageCosts {
  double seq_page_us = 0;     ///< reading one page sequentially
  double random_page_us = 0;  ///< reading one page at a random position
  double tuple_cpu_us = 0;    ///< per-tuple CPU while scanning
};

/// Constructor bundle for a table scan cursor: the execution-time context a
/// storage engine needs to produce visible wide rows. `offset`/`wide_width`
/// describe where the table's columns land in the operator's wide row.
struct ScanSpec {
  txn::MvccManager* mvcc = nullptr;          ///< null = no MVCC checks
  const txn::Snapshot* snapshot = nullptr;   ///< null = no MVCC checks
  size_t offset = 0;
  size_t wide_width = 0;
  /// Local column ids (0-based within the table) the consumer will actually
  /// read; engines that can project (columnar) materialize only these.
  /// `all_columns` true means materialize everything (row heap always does).
  bool all_columns = true;
  std::vector<size_t> needed_cols;
  /// Local column ids referenced by the scan's filter predicates (subset of
  /// needed_cols); a columnar engine charges these as its "scan" columns.
  std::vector<size_t> filter_cols;
  /// Exact-match string predicates safe to evaluate inside a columnar
  /// engine via dictionary-code comparison. The operator keeps the original
  /// predicate in its filter list, so engine-side evaluation may only drop
  /// rows the predicate would reject anyway.
  struct DictEq {
    size_t col = 0;      ///< local column id (string-typed)
    std::string value;   ///< non-null comparison literal
  };
  std::vector<DictEq> dict_eqs;
};

/// Pull-based batch scan over one table, produced by a StorageEngine. The
/// cursor appends fully padded wide rows (table columns at `offset`, Nulls
/// elsewhere) to the caller's RowBatch and owns all position state.
class ScanCursor {
 public:
  virtual ~ScanCursor() = default;

  /// Called once at the top of every operator NextBatch before the chunk
  /// loop, so the cursor can refresh per-batch state (page count, whether
  /// MVCC checks can be skipped) exactly like the pre-engine scan did.
  virtual Status BeginBatch() = 0;

  /// Performs one scan step — one heap page, one pending-ghost drain, or one
  /// columnar chunk — appending visible rows to `*out` (never beyond its
  /// capacity; overflow is staged internally for the next call). Returns
  /// false when the scan is exhausted and nothing was appended.
  virtual Result<bool> NextChunk(RowBatch* out) = 0;
};

/// Iterator over the raw serialized records of a table, for maintenance
/// paths (ANALYZE, index backfill, recovery rebuild) that predate MVCC
/// visibility: it yields the current version of every live row.
class RecordIterator {
 public:
  virtual ~RecordIterator() = default;

  /// Advances to the next live record. Returns false at the end.
  virtual Result<bool> Next(Rid* rid, std::string* record) = 0;
};

/// Abstract table storage: the catalog owns one engine per table and every
/// scan operator, DML path, and maintenance pass goes through this
/// interface. Records cross the boundary in the canonical serialized row
/// format (SerializeRow), so checksums and WAL images are engine-agnostic.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  virtual EngineKind kind() const = 0;
  const char* name() const { return EngineKindName(kind()); }

  /// The Disk file id backing (or reserved for) this table. Also the MVCC
  /// and lock-key namespace for its rows.
  virtual uint32_t file_id() const = 0;

  /// True when the engine's pages are WAL-logged and crash recovery can
  /// rebuild it. Database::EnableWal refuses tables that answer false.
  virtual bool wal_capable() const = 0;

  /// The underlying heap file for WAL/recovery redo, or nullptr for engines
  /// without slotted-page backing.
  virtual HeapFile* heap_file() const { return nullptr; }

  // -- Record DML ------------------------------------------------------------

  virtual Result<Rid> Insert(std::string_view record) = 0;

  /// Places a record at exactly `rid` (undo path: a record must return to
  /// its original RID so index payloads stay valid).
  virtual Status InsertAt(Rid rid, std::string_view record) = 0;

  virtual Status Get(Rid rid, std::string* out) const = 0;

  virtual Status Delete(Rid rid) = 0;

  /// Updates the record; the returned RID may differ from `rid` when the
  /// engine had to relocate it (row heap page overflow).
  virtual Result<Rid> Update(Rid rid, std::string_view record) = 0;

  /// Forgets append-locality hints (after crash recovery rebuilt state).
  virtual void ResetInsertHint() {}

  // -- Scans -----------------------------------------------------------------

  virtual std::unique_ptr<ScanCursor> NewScanCursor(const ScanSpec& spec) = 0;

  virtual std::unique_ptr<RecordIterator> NewIterator() const = 0;

  // -- Introspection ---------------------------------------------------------

  /// Page count for the optimizer's I/O costing: physical pages for the row
  /// heap, compressed-bytes-equivalent pages for the columnar engine.
  virtual Result<uint32_t> NumPages() const = 0;

  /// Bytes of storage attributed to the table's data (excluding indexes):
  /// the Disk file size for the row heap, compressed segment bytes for the
  /// columnar engine.
  virtual Result<uint64_t> DataBytes() const = 0;

  /// Order-independent checksum over the multiset of live records, charging
  /// no simulated time. Engines storing canonical serialized rows produce
  /// identical checksums for identical logical contents.
  virtual Result<uint64_t> Checksum() const = 0;

  virtual StorageCosts ScanCosts(const CostModel& cost) const = 0;

  /// Drops all rows without logging (crash simulation for engines that are
  /// not WAL-capable; the row heap ignores this — recovery handles it).
  virtual void Clear() {}
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_STORAGE_STORAGE_ENGINE_H_
