#ifndef R3DB_RDBMS_STORAGE_BUFFER_POOL_H_
#define R3DB_RDBMS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "rdbms/storage/disk.h"

namespace r3 {
namespace rdbms {

class BufferPool;

/// WAL-before-data hook. The transaction manager implements this; before the
/// pool writes a dirty frame whose latest change carries a WAL LSN, it calls
/// EnsureDurable(lsn) so the log reaches the device first. Declared here
/// (rather than pulling txn/ headers into storage/) to keep the layering
/// acyclic: storage knows only this one interface.
class WalHook {
 public:
  virtual ~WalHook() = default;
  virtual Status EnsureDurable(uint64_t lsn) = 0;
};

/// RAII pin on a buffered page. Unpins on destruction; call MarkDirty()
/// after modifying the frame.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, size_t frame_idx, char* data);
  ~PageHandle();

  PageHandle(PageHandle&& o) noexcept;
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  char* data() { return data_; }
  const char* data() const { return data_; }
  bool valid() const { return pool_ != nullptr; }

  void MarkDirty();
  /// Explicit early unpin.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_idx_ = 0;
  char* data_ = nullptr;
};

/// I/O statistics (cumulative).
struct BufferPoolStats {
  uint64_t logical_reads = 0;   ///< FetchPage/ReadPageForScan calls
  uint64_t physical_reads = 0;  ///< misses that hit the Disk
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  uint64_t page_writes = 0;

  double HitRatio() const {
    return logical_reads == 0
               ? 0.0
               : 1.0 - static_cast<double>(physical_reads) / logical_reads;
  }

  BufferPoolStats& operator+=(const BufferPoolStats& o) {
    logical_reads += o.logical_reads;
    physical_reads += o.physical_reads;
    sequential_reads += o.sequential_reads;
    random_reads += o.random_reads;
    page_writes += o.page_writes;
    return *this;
  }
};

/// Fixed-capacity LRU buffer pool over a Disk.
///
/// The paper's SAP installation gives the RDBMS only 10 MB of buffer by
/// default; the pool's byte capacity is a constructor parameter so benches
/// can reproduce that setting. Every physical transfer charges the shared
/// SimClock, classifying a read as sequential when it follows the previous
/// read of the same file by exactly one page.
///
/// Thread safety: the page table is partitioned into kNumShards shards
/// (hash(PageId) -> shard), each guarded by its own latch and carrying its
/// own stats counters (aggregated on read by stats()). The LRU list and
/// free list stay global under `lru_mu_` — a single replacement order keeps
/// serial eviction behaviour identical to the unsharded pool — and the
/// miss/eviction path is serialized by `evict_mu_`. Lock order: shard -> lru,
/// evict -> shard, evict -> lru; lru_mu_ is always innermost, so there is no
/// cycle.
///
/// Parallel table scans use ReadPageForScan(), which copies a resident frame
/// out under the shard latch (or reads the Disk into the caller's buffer on
/// a miss) without pinning, touching the LRU, or evicting — pool state is
/// untouched, so concurrent-scan hit/miss behaviour depends only on the pool
/// contents before the parallel region. That keeps simulated time
/// deterministic and models scan-resistant buffer management (large scans do
/// not flush the working set).
class BufferPool {
 public:
  static constexpr size_t kNumShards = 16;  // power of two

  /// `capacity_bytes` is rounded down to whole frames (>= 8 frames enforced).
  /// I/O counters are mirrored into `metrics` under `rdbms.bufferpool.*`
  /// (GlobalMetrics() when null); the counter pointers are resolved once
  /// here, so the hot paths never touch the registry.
  BufferPool(Disk* disk, SimClock* clock, size_t capacity_bytes,
             MetricsRegistry* metrics = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page in memory, reading it from disk on a miss. Thread-safe.
  Result<PageHandle> FetchPage(PageId id);

  /// Copies the page into `buf` (kPageSize bytes) without pinning or
  /// disturbing replacement state. Thread-safe; see class comment.
  Status ReadPageForScan(PageId id, char* buf);

  /// Allocates a fresh page in `file_id` and pins it (zeroed, dirty).
  Result<PageHandle> NewPage(uint32_t file_id, uint32_t* page_no);

  /// Writes back all dirty frames. Frames held by an active transaction
  /// (no-steal) are skipped — FlushAll doubles as the fuzzy-checkpoint
  /// writer, which must not persist uncommitted changes.
  Status FlushAll();

  /// Drops all frames (asserts nothing pinned); flushes dirty ones. Fails
  /// if any frame is still no-steal (an active transaction's page).
  Status Reset();

  /// Crash simulation: discards every frame *without* writing anything back,
  /// so the Disk keeps only what earlier evictions/flushes persisted. Fails
  /// if any page is pinned.
  Status DropAllNoFlush();

  /// Installs the WAL-before-data hook (null to detach).
  void set_wal_hook(WalHook* hook) { wal_hook_ = hook; }

  /// Tags the resident page `id` with the WAL LSN of the change just applied
  /// to it. `no_steal` pins the frame against eviction/flush until
  /// ClearNoSteal — set for pages dirtied by an active explicit transaction
  /// (redo-only logging is only correct if loser pages never reach disk).
  /// The page must be resident (it was just modified through a pin).
  Status MarkWalDirty(PageId id, uint64_t lsn, bool no_steal);

  /// Lifts the no-steal pin at transaction end (commit or rollback).
  void ClearNoSteal(PageId id);

  /// Smallest rec_lsn (LSN of the *first* change since the frame was last
  /// clean) over all dirty frames; 0 when none. The fuzzy checkpoint uses
  /// this as its redo-point bound.
  uint64_t MinDirtyRecLsn() const;

  /// Aggregates per-shard counters; a consistent snapshot only while no
  /// reads are in flight.
  BufferPoolStats stats() const;
  void ResetStats();

  size_t capacity_frames() const { return frames_.size(); }
  SimClock* clock() { return clock_; }
  Disk* disk() { return disk_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId id;
    std::unique_ptr<char[]> data;
    bool in_use = false;
    bool dirty = false;
    int pin_count = 0;
    std::list<size_t>::iterator lru_it;  // valid iff pin_count == 0 && in_use
    bool in_lru = false;
    // WAL state, guarded by the frame's shard mutex like `dirty`:
    uint64_t wal_lsn = 0;   // latest logged change (flush log up to here)
    uint64_t rec_lsn = 0;   // first logged change since last clean
    bool no_steal = false;  // dirtied by an active txn; not evictable
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PageId, size_t, PageIdHash> page_table;
    BufferPoolStats stats;
  };

  Shard& ShardOf(PageId id) { return shards_[PageIdHash{}(id) % kNumShards]; }

  void Unpin(size_t frame_idx, bool dirty);
  /// Caller must hold evict_mu_.
  Result<size_t> GetVictimFrame();
  /// Classifies a physical read against the active lane's (or the shared)
  /// read stream, charges the clock (and emits an "io" trace event when a
  /// tracer is attached and no lane is active), and returns true when
  /// sequential.
  bool ChargeRead(PageId id);

  Disk* disk_;
  SimClock* clock_;
  WalHook* wal_hook_ = nullptr;
  // Registry mirrors of the shard stats (cached pointers; see constructor).
  Counter* m_logical_reads_;
  Counter* m_physical_reads_;
  Counter* m_sequential_reads_;
  Counter* m_random_reads_;
  Counter* m_page_writes_;
  // Wait-event mirrors of the physical-read stalls (DESIGN.md §12).
  Counter* m_wait_io_;
  Histogram* h_wait_io_us_;
  std::vector<Frame> frames_;
  Shard shards_[kNumShards];
  std::mutex lru_mu_;      // guards lru_ + free_frames_ + Frame lru links
  std::mutex evict_mu_;    // serializes the miss/eviction path
  std::mutex stream_mu_;   // guards last_read_page_ (serial read stream)
  std::list<size_t> lru_;  // front = least recently used
  std::vector<size_t> free_frames_;
  std::unordered_map<uint32_t, uint32_t> last_read_page_;  // file -> page_no
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_STORAGE_BUFFER_POOL_H_
