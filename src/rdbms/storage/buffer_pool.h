#ifndef R3DB_RDBMS_STORAGE_BUFFER_POOL_H_
#define R3DB_RDBMS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "rdbms/storage/disk.h"

namespace r3 {
namespace rdbms {

class BufferPool;

/// RAII pin on a buffered page. Unpins on destruction; call MarkDirty()
/// after modifying the frame.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, size_t frame_idx, char* data);
  ~PageHandle();

  PageHandle(PageHandle&& o) noexcept;
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  char* data() { return data_; }
  const char* data() const { return data_; }
  bool valid() const { return pool_ != nullptr; }

  void MarkDirty();
  /// Explicit early unpin.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_idx_ = 0;
  char* data_ = nullptr;
};

/// I/O statistics (cumulative).
struct BufferPoolStats {
  uint64_t logical_reads = 0;   ///< FetchPage calls
  uint64_t physical_reads = 0;  ///< misses that hit the Disk
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  uint64_t page_writes = 0;

  double HitRatio() const {
    return logical_reads == 0
               ? 0.0
               : 1.0 - static_cast<double>(physical_reads) / logical_reads;
  }
};

/// Fixed-capacity LRU buffer pool over a Disk.
///
/// The paper's SAP installation gives the RDBMS only 10 MB of buffer by
/// default; the pool's byte capacity is a constructor parameter so benches
/// can reproduce that setting. Every physical transfer charges the shared
/// SimClock, classifying a read as sequential when it follows the previous
/// read of the same file by exactly one page.
class BufferPool {
 public:
  /// `capacity_bytes` is rounded down to whole frames (>= 8 frames enforced).
  BufferPool(Disk* disk, SimClock* clock, size_t capacity_bytes);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page in memory, reading it from disk on a miss.
  Result<PageHandle> FetchPage(PageId id);

  /// Allocates a fresh page in `file_id` and pins it (zeroed, dirty).
  Result<PageHandle> NewPage(uint32_t file_id, uint32_t* page_no);

  /// Writes back all dirty frames.
  Status FlushAll();

  /// Drops all frames (asserts nothing pinned); flushes dirty ones.
  Status Reset();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

  size_t capacity_frames() const { return frames_.size(); }
  SimClock* clock() { return clock_; }
  Disk* disk() { return disk_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId id;
    std::unique_ptr<char[]> data;
    bool in_use = false;
    bool dirty = false;
    int pin_count = 0;
    std::list<size_t>::iterator lru_it;  // valid iff pin_count == 0 && in_use
    bool in_lru = false;
  };

  void Unpin(size_t frame_idx, bool dirty);
  Result<size_t> GetVictimFrame();
  void ChargeRead(PageId id);

  Disk* disk_;
  SimClock* clock_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t, PageIdHash> page_table_;
  std::list<size_t> lru_;  // front = least recently used
  std::vector<size_t> free_frames_;
  std::unordered_map<uint32_t, uint32_t> last_read_page_;  // file -> page_no
  BufferPoolStats stats_;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_STORAGE_BUFFER_POOL_H_
