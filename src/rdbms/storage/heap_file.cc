#include "rdbms/storage/heap_file.h"

namespace r3 {
namespace rdbms {

HeapFile::HeapFile(BufferPool* pool, uint32_t file_id)
    : pool_(pool), file_id_(file_id) {}

Result<Rid> HeapFile::Insert(std::string_view record) {
  if (has_last_insert_page_) {
    R3_ASSIGN_OR_RETURN(PageHandle h,
                        pool_->FetchPage(PageId{file_id_, last_insert_page_}));
    SlottedPage page(h.data());
    auto slot = page.Insert(record);
    if (slot.ok()) {
      h.MarkDirty();
      return Rid{last_insert_page_, slot.value()};
    }
  }
  uint32_t page_no = 0;
  R3_ASSIGN_OR_RETURN(PageHandle h, pool_->NewPage(file_id_, &page_no));
  SlottedPage page(h.data());
  page.Init();
  R3_ASSIGN_OR_RETURN(uint16_t slot, page.Insert(record));
  h.MarkDirty();
  last_insert_page_ = page_no;
  has_last_insert_page_ = true;
  return Rid{page_no, slot};
}

Status HeapFile::InsertAt(Rid rid, std::string_view record) {
  // After a crash the Disk retains every allocated page (allocation is
  // durable), so this loop only runs when redo replays an insert into a page
  // the pre-crash run allocated but a fresh file does not have.
  R3_ASSIGN_OR_RETURN(uint32_t num_pages, NumPages());
  while (num_pages <= rid.page_no) {
    uint32_t page_no = 0;
    R3_ASSIGN_OR_RETURN(PageHandle h, pool_->NewPage(file_id_, &page_no));
    SlottedPage(h.data()).Init();
    h.MarkDirty();
    ++num_pages;
  }
  R3_ASSIGN_OR_RETURN(PageHandle h,
                      pool_->FetchPage(PageId{file_id_, rid.page_no}));
  SlottedPage page(h.data());
  R3_RETURN_IF_ERROR(page.InsertAt(rid.slot, record));
  h.MarkDirty();
  return Status::OK();
}

Status HeapFile::Get(Rid rid, std::string* out) const {
  R3_ASSIGN_OR_RETURN(PageHandle h,
                      pool_->FetchPage(PageId{file_id_, rid.page_no}));
  SlottedPage page(h.data());
  R3_ASSIGN_OR_RETURN(std::string_view rec, page.Read(rid.slot));
  out->assign(rec.data(), rec.size());
  return Status::OK();
}

Status HeapFile::Delete(Rid rid) {
  R3_ASSIGN_OR_RETURN(PageHandle h,
                      pool_->FetchPage(PageId{file_id_, rid.page_no}));
  SlottedPage page(h.data());
  R3_RETURN_IF_ERROR(page.Delete(rid.slot));
  h.MarkDirty();
  return Status::OK();
}

Result<Rid> HeapFile::Update(Rid rid, std::string_view record) {
  {
    R3_ASSIGN_OR_RETURN(PageHandle h,
                        pool_->FetchPage(PageId{file_id_, rid.page_no}));
    SlottedPage page(h.data());
    Status st = page.Update(rid.slot, record);
    if (st.ok()) {
      h.MarkDirty();
      return rid;
    }
    if (st.code() != StatusCode::kOutOfRange) return st;
    // Did not fit: the slot was deleted inside Update; relocate below.
    h.MarkDirty();
  }
  return Insert(record);
}

Result<uint32_t> HeapFile::NumPages() const {
  return pool_->disk()->FilePages(file_id_);
}

Result<bool> HeapFile::Iterator::Next(Rid* rid, std::string* record) {
  if (done_) return false;
  R3_ASSIGN_OR_RETURN(uint32_t num_pages, heap_->NumPages());
  while (page_no_ < num_pages) {
    R3_ASSIGN_OR_RETURN(PageHandle h,
                        heap_->pool_->FetchPage(PageId{heap_->file_id_, page_no_}));
    SlottedPage page(h.data());
    while (slot_ < page.slot_count()) {
      uint16_t s = static_cast<uint16_t>(slot_++);
      if (!page.IsLive(s)) continue;
      R3_ASSIGN_OR_RETURN(std::string_view rec, page.Read(s));
      record->assign(rec.data(), rec.size());
      *rid = Rid{page_no_, s};
      return true;
    }
    ++page_no_;
    slot_ = 0;
  }
  done_ = true;
  return false;
}

}  // namespace rdbms
}  // namespace r3
