#include "rdbms/storage/disk.h"

#include <cstring>

#include "common/str_util.h"

namespace r3 {
namespace rdbms {

uint32_t Disk::CreateFile() {
  files_.emplace_back();
  return static_cast<uint32_t>(files_.size() - 1);
}

Result<uint32_t> Disk::AllocatePage(uint32_t file_id) {
  if (file_id >= files_.size()) {
    return Status::NotFound(str::Format("no file %u", file_id));
  }
  File& f = files_[file_id];
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  f.pages.push_back(std::move(page));
  return static_cast<uint32_t>(f.pages.size() - 1);
}

Status Disk::CheckPage(PageId id) const {
  if (id.file_id >= files_.size()) {
    return Status::NotFound(str::Format("no file %u", id.file_id));
  }
  if (id.page_no >= files_[id.file_id].pages.size()) {
    return Status::NotFound(
        str::Format("file %u has no page %u", id.file_id, id.page_no));
  }
  return Status::OK();
}

Status Disk::ReadPage(PageId id, char* buf) const {
  R3_RETURN_IF_ERROR(CheckPage(id));
  std::memcpy(buf, files_[id.file_id].pages[id.page_no].get(), kPageSize);
  return Status::OK();
}

Status Disk::WritePage(PageId id, const char* buf) {
  R3_RETURN_IF_ERROR(CheckPage(id));
  std::memcpy(files_[id.file_id].pages[id.page_no].get(), buf, kPageSize);
  return Status::OK();
}

Result<uint32_t> Disk::FilePages(uint32_t file_id) const {
  if (file_id >= files_.size()) {
    return Status::NotFound(str::Format("no file %u", file_id));
  }
  return static_cast<uint32_t>(files_[file_id].pages.size());
}

Result<uint64_t> Disk::FileSizeBytes(uint32_t file_id) const {
  R3_ASSIGN_OR_RETURN(uint32_t pages, FilePages(file_id));
  return static_cast<uint64_t>(pages) * kPageSize;
}

Status Disk::TruncateFile(uint32_t file_id) {
  if (file_id >= files_.size()) {
    return Status::NotFound(str::Format("no file %u", file_id));
  }
  files_[file_id].pages.clear();
  return Status::OK();
}

}  // namespace rdbms
}  // namespace r3
