#ifndef R3DB_RDBMS_ROW_H_
#define R3DB_RDBMS_ROW_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdbms/schema.h"
#include "rdbms/value.h"

namespace r3 {
namespace rdbms {

/// A materialized tuple.
using Row = std::vector<Value>;

/// Serializes `row` according to `schema` and appends to `*out`.
///
/// Wire format per column: 1 null byte, then (if non-null) the column's
/// fixed-width payload, or u16 length + bytes for VARCHAR. CHAR(n) columns
/// are blank-padded to exactly n bytes (and trimmed on read) — this is what
/// makes SAP's CHAR(16)-coded keys physically ~4x larger than the original
/// TPC-D 4-byte integer keys.
Status SerializeRow(const Schema& schema, const Row& row, std::string* out);

/// Parses a serialized row. `data` must be exactly one row.
Status DeserializeRow(const Schema& schema, std::string_view data, Row* row);

/// Serialized size without building the string.
size_t SerializedRowSize(const Schema& schema, const Row& row);

/// Renders a row as "(a, b, c)" for tests and debugging.
std::string RowToString(const Row& row);

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_ROW_H_
