#include "rdbms/catalog.h"

#include <algorithm>

#include "common/str_util.h"
#include "rdbms/index/key_codec.h"
#include "rdbms/row.h"
#include "rdbms/storage/columnar/columnar_engine.h"
#include "rdbms/storage/row_heap_engine.h"

namespace r3 {
namespace rdbms {

Result<TableInfo*> Catalog::CreateTable(const std::string& name,
                                        Schema schema) {
  return CreateTable(name, std::move(schema), default_engine_);
}

Result<TableInfo*> Catalog::CreateTable(const std::string& name, Schema schema,
                                        EngineKind kind) {
  std::string key = str::ToUpper(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  if (views_.count(key) > 0) {
    return Status::AlreadyExists("a view named '" + name + "' exists");
  }
  auto info = std::make_unique<TableInfo>();
  info->name = name;
  info->schema = std::move(schema);
  // Even the columnar engine reserves a Disk file id: it is the namespace
  // row locks, MVCC versions, and index payload RIDs are keyed by.
  uint32_t file_id = pool_->disk()->CreateFile();
  switch (kind) {
    case EngineKind::kRowHeap:
      info->storage =
          std::make_unique<RowHeapEngine>(pool_, file_id, &info->schema);
      break;
    case EngineKind::kColumnar:
      info->storage = std::make_unique<ColumnarEngine>(
          pool_, file_id, &info->schema, metrics_);
      break;
  }
  TableInfo* raw = info.get();
  tables_.emplace(key, std::move(info));
  table_order_.push_back(key);
  return raw;
}

Result<TableInfo*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(str::ToUpper(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(str::ToUpper(name)) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = str::ToUpper(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  // Drop dependent indexes first.
  std::vector<std::string> doomed;
  for (const auto& [iname, idx] : indexes_) {
    if (str::EqualsIgnoreCase(idx->table, name)) doomed.push_back(iname);
  }
  for (const std::string& iname : doomed) {
    R3_RETURN_IF_ERROR(DropIndex(iname));
  }
  R3_RETURN_IF_ERROR(
      pool_->disk()->TruncateFile(it->second->storage->file_id()));
  tables_.erase(it);
  table_order_.erase(std::remove(table_order_.begin(), table_order_.end(), key),
                     table_order_.end());
  return Status::OK();
}

Result<IndexInfo*> Catalog::CreateIndex(const std::string& index_name,
                                        const std::string& table,
                                        const std::vector<std::string>& columns,
                                        bool unique) {
  std::string key = str::ToUpper(index_name);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index '" + index_name + "' already exists");
  }
  R3_ASSIGN_OR_RETURN(TableInfo * tbl, GetTable(table));
  auto info = std::make_unique<IndexInfo>();
  info->name = index_name;
  info->table = tbl->name;
  info->unique = unique;
  for (const std::string& col : columns) {
    R3_ASSIGN_OR_RETURN(size_t idx, tbl->schema.IndexOf(col));
    info->column_indices.push_back(idx);
  }
  R3_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_));
  info->btree = std::make_unique<BTree>(std::move(tree));

  // Backfill from existing rows.
  std::unique_ptr<RecordIterator> it = tbl->storage->NewIterator();
  Rid rid;
  std::string rec;
  Row row;
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, it->Next(&rid, &rec));
    if (!ok) break;
    R3_RETURN_IF_ERROR(DeserializeRow(tbl->schema, rec, &row));
    R3_RETURN_IF_ERROR(
        info->btree->Insert(IndexKeyForRow(*info, row), rid.Pack(), unique));
  }

  IndexInfo* raw = info.get();
  indexes_.emplace(key, std::move(info));
  tbl->indexes.push_back(raw);
  return raw;
}

Result<IndexInfo*> Catalog::GetIndex(const std::string& name) const {
  auto it = indexes_.find(str::ToUpper(name));
  if (it == indexes_.end()) {
    return Status::NotFound("no index named '" + name + "'");
  }
  return it->second.get();
}

Status Catalog::DropIndex(const std::string& name) {
  std::string key = str::ToUpper(name);
  auto it = indexes_.find(key);
  if (it == indexes_.end()) {
    return Status::NotFound("no index named '" + name + "'");
  }
  IndexInfo* raw = it->second.get();
  auto tbl = GetTable(raw->table);
  if (tbl.ok()) {
    auto& vec = tbl.value()->indexes;
    vec.erase(std::remove(vec.begin(), vec.end(), raw), vec.end());
  }
  R3_RETURN_IF_ERROR(pool_->disk()->TruncateFile(raw->btree->file_id()));
  indexes_.erase(it);
  return Status::OK();
}

Status Catalog::CreateView(const std::string& name, const std::string& sql) {
  std::string key = str::ToUpper(name);
  if (views_.count(key) > 0 || tables_.count(key) > 0) {
    return Status::AlreadyExists("name '" + name + "' already in use");
  }
  views_.emplace(key, ViewInfo{name, sql});
  return Status::OK();
}

Result<const ViewInfo*> Catalog::GetView(const std::string& name) const {
  auto it = views_.find(str::ToUpper(name));
  if (it == views_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  return &it->second;
}

bool Catalog::HasView(const std::string& name) const {
  return views_.count(str::ToUpper(name)) > 0;
}

std::vector<const TableInfo*> Catalog::AllTables() const {
  std::vector<const TableInfo*> out;
  out.reserve(table_order_.size());
  for (const std::string& key : table_order_) {
    auto it = tables_.find(key);
    if (it != tables_.end()) out.push_back(it->second.get());
  }
  return out;
}

std::string IndexKeyForRow(const IndexInfo& index, const Row& row) {
  std::string key;
  for (size_t col : index.column_indices) {
    key_codec::EncodeValue(row[col], &key);
  }
  return key;
}

}  // namespace rdbms
}  // namespace r3
