#ifndef R3DB_RDBMS_DB_H_
#define R3DB_RDBMS_DB_H_

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/trace.h"
#include "rdbms/catalog.h"
#include "rdbms/optimizer/optimizer.h"
#include "rdbms/sql/ast.h"
#include "rdbms/storage/buffer_pool.h"
#include "rdbms/storage/disk.h"
#include "rdbms/txn/txn_manager.h"

namespace r3 {
namespace rdbms {

struct DatabaseOptions {
  /// RDBMS buffer cache. 10 MB is what SAP R/3 configures by default for
  /// its back-end (Section 3.3 of the paper); benches keep this setting.
  size_t buffer_pool_bytes = 10u << 20;
  size_t work_mem_bytes = 4u << 20;
  /// Degree of intra-query parallelism (1 = serial, the paper's setting).
  /// Copied into `planner.dop` at construction; change later via
  /// Database::set_dop().
  int dop = 1;
  /// Rows per RowBatch in the execution pipeline (1 = row-at-a-time shape).
  /// Purely a wall-clock knob: results and simulated times do not depend on
  /// it (DESIGN.md §6).
  size_t batch_rows = kDefaultBatchRows;
  /// OS worker-thread cap for parallel plan fragments; 0 (default) follows
  /// `dop`. Unlike `dop` — which fixes the *plan's* lane count and thereby
  /// results and simulated times — this is purely a wall-clock knob: the
  /// same dop-N plan runs its N lanes on up to `exec_threads` threads with
  /// identical simulated behaviour (DESIGN.md §7).
  int exec_threads = 0;
  /// Storage engine for tables created without an explicit ENGINE clause.
  EngineKind default_engine = EngineKind::kRowHeap;
  /// MVCC read-path symmetry knob (DESIGN.md §9). Off (the default), a
  /// delete removes the row's B-tree entries eagerly, so index scans stop
  /// seeing it immediately while sequential scans still resolve the ghost
  /// for older snapshots — the documented asymmetry. On, entry removal is
  /// deferred until no live snapshot can see the row, and index probes
  /// resolve the stale entries through the same version chain sequential
  /// scans use, making both access paths snapshot-consistent. Known
  /// limitations while entries are pending: a unique-index insert of the
  /// deleted key reports a duplicate, and an index created after the
  /// delete never carries the ghost.
  bool mvcc_index_ghosts = false;
  /// Registry for `rdbms.*` (and, via the AppServer, `appsys.*`) metrics.
  /// Null uses the process-wide GlobalMetrics(). Benches that build several
  /// systems side by side pass one registry per system.
  MetricsRegistry* metrics = nullptr;
  PlannerOptions planner;
};

/// A materialized query result.
struct QueryResult {
  Schema schema;
  std::vector<std::string> column_names;
  std::vector<Row> rows;
};

/// A compiled statement, reusable with different parameter bindings —
/// the substrate for SAP R/3's cursor caching.
class PreparedStatement {
 public:
  const Schema& output_schema() const { return plan_.output_schema; }
  const std::vector<std::string>& column_names() const {
    return plan_.column_names;
  }
  size_t num_params() const { return plan_.num_params; }
  std::string ExplainPlan() const { return plan_.Explain(); }

 private:
  friend class Database;
  friend class Cursor;
  std::string sql_;
  PhysicalPlan plan_;
};

/// An open server-side cursor over a prepared statement: the unit the app
/// server's Open SQL layer fetches from, one batch per FetchBatch call.
/// Movable; closing (or destroying) releases the plan for the next open.
class Cursor {
 public:
  Cursor() = default;
  ~Cursor();

  Cursor(Cursor&&) noexcept = default;
  Cursor& operator=(Cursor&&) noexcept = default;
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;

  bool valid() const { return state_ != nullptr; }
  const Schema& output_schema() const;
  const std::vector<std::string>& column_names() const;

  /// Fills `*batch` with up to `batch->capacity()` result rows; returns
  /// false when the cursor is exhausted (the batch is then empty).
  Result<bool> FetchBatch(RowBatch* batch);

  /// Closes the underlying plan. Idempotent; the destructor calls it too.
  Status Close();

 private:
  friend class Database;

  /// Heap-allocated so the ExecContext's pointer to `params` survives moves
  /// of the Cursor object.
  struct State {
    PreparedStatement* stmt = nullptr;
    std::vector<Value> params;
    /// Pins the statement's snapshot-isolation view (and its GC horizon)
    /// for the cursor's whole open..close window, so rows written by other
    /// transactions after the open never appear in later FetchBatch calls.
    std::shared_ptr<const txn::Snapshot> snapshot;
    ExecContext ctx;
    bool done = false;
    TraceSpan span;  ///< "sql/execute" span covering open..close
  };
  std::unique_ptr<State> state_;
};

/// The embedded relational database: the stand-in for the paper's unnamed
/// commercial back-end RDBMS.
///
/// Not thread-safe (one session). Statements outside Begin()/Commit() run
/// in autocommit: every statement either fully applies or reports an error
/// with best-effort cleanup of partial index entries. Explicit transactions
/// add multi-statement atomicity (Rollback undoes every record write since
/// Begin) and — once EnableWal() is on — crash durability with redo-only
/// recovery (DESIGN.md §8). WAL is off by default; nothing changes for
/// databases that never call EnableWal().
class Database {
 public:
  /// `clock` is shared with whatever runs on top (the application server);
  /// pass null to let the database own a private clock.
  explicit Database(SimClock* clock = nullptr, DatabaseOptions options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Catalog* catalog() { return catalog_.get(); }
  const Catalog* catalog() const { return catalog_.get(); }
  BufferPool* pool() { return pool_.get(); }
  SimClock* clock() { return clock_; }
  MetricsRegistry* metrics() const { return metrics_; }
  const DatabaseOptions& options() const { return options_; }

  /// Changes the degree of parallelism for subsequent statements. Plans fix
  /// their lane count at compile time, so the prepared-statement cache is
  /// invalidated.
  void set_dop(int dop);
  int dop() const { return options_.dop; }

  /// Changes the execution batch size for subsequent statements (min 1).
  /// Plans don't embed it, so cached prepared statements stay valid.
  void set_batch_rows(size_t batch_rows);
  size_t batch_rows() const { return options_.batch_rows; }

  /// Caps the OS worker threads for parallel fragments (0 = follow dop).
  /// A pure wall-clock knob: plans, results, and simulated times are
  /// unaffected, so cached prepared statements stay valid.
  void set_exec_threads(int n) { options_.exec_threads = n < 0 ? 0 : n; }
  int exec_threads() const { return options_.exec_threads; }

  // -- Transactions ---------------------------------------------------------

  /// Starts an explicit transaction (one at a time per session).
  Status Begin();

  /// Commits: forces the WAL (when enabled) so the transaction is durable
  /// before control returns, then releases its locks. On a WAL write
  /// failure (injected crash) the transaction stays open and the database
  /// must be crashed + recovered.
  Status Commit();

  /// Undoes every record write of the active transaction (reverse order,
  /// in memory), releases its locks, and resets per-statement execution
  /// state (operator-stats epoch, SimClock lane binding) so a reused
  /// connection starts the next statement clean.
  Status Rollback();

  bool in_txn() const { return txn_mgr_->in_txn(); }

  /// Turns on write-ahead logging with the current contents as the durable
  /// baseline (schema + loaded data are the fixture; only changes after
  /// this call are logged). Idempotent.
  Status EnableWal();

  /// Fuzzy checkpoint: flushes committed dirty pages, records the redo
  /// point, truncates the log.
  Status Checkpoint();

  /// Simulates the process image dying: every non-flushed buffer page and
  /// every non-flushed WAL record is lost; the active transaction (if any)
  /// evaporates. The Disk plays the surviving storage device.
  Status SimulateCrash();

  /// Restart recovery after SimulateCrash(): log scan, redo committed work,
  /// discard losers, rebuild derived state, checkpoint.
  Status Recover();

  /// Order-independent checksum over a table's live rows (content only, not
  /// RIDs — stable across record relocation). For refresh-idempotence and
  /// crash-recovery verification.
  Result<uint64_t> TableChecksum(const std::string& table) const;

  txn::TxnManager* txn_manager() { return txn_mgr_.get(); }
  /// Null until EnableWal().
  txn::Wal* wal() { return txn_mgr_->wal(); }

  // -- SQL entry points -----------------------------------------------------

  /// Parses, plans, and runs a statement of any kind. For SELECTs the rows
  /// land in `*result` (if non-null); DML sets `*affected_rows`.
  Status Execute(const std::string& sql, const std::vector<Value>& params = {},
                 QueryResult* result = nullptr, int64_t* affected_rows = nullptr);

  /// SELECT convenience wrapper.
  Result<QueryResult> Query(const std::string& sql,
                            const std::vector<Value>& params = {});

  /// Compiles a SELECT once; cached by statement text (a hard parse is
  /// charged only on the first call — parameterized re-execution is what
  /// makes cursor caching pay).
  Result<PreparedStatement*> Prepare(const std::string& sql);

  /// What PrepareWithParams decided for one call (optimizer v2 telemetry).
  struct BindPeekInfo {
    bool peeked = false;        ///< false = peeking off, plain Prepare path
    int bucket = 0;             ///< selectivity bucket (see PeekBucket)
    double est_fraction = 1.0;  ///< peeked selectivity estimate
    bool variant_hit = false;   ///< reused a cached plan variant (no compile)
  };

  /// Bind-value-peeking Prepare (optimizer v2): classifies `params` into a
  /// selectivity bucket and keeps one compiled plan variant per
  /// (statement, bucket) — a parameter-sensitive plan cache. Re-executions
  /// in a known bucket reuse the variant without a hard parse; crossing a
  /// bucket boundary compiles one new variant. When `bind_peeking()` is off
  /// this forwards to Prepare() — byte-identical to the v1 path.
  Result<PreparedStatement*> PrepareWithParams(const std::string& sql,
                                               const std::vector<Value>& params,
                                               BindPeekInfo* info = nullptr);

  /// Toggles bind-value peeking (optimizer v2 master switch). Cached plans
  /// embed the peeking decision, so both plan caches are flushed.
  void set_bind_peeking(bool on);
  bool bind_peeking() const { return options_.planner.bind_peeking; }

  /// Runs a prepared SELECT with the given parameter bindings.
  Result<QueryResult> ExecutePrepared(PreparedStatement* stmt,
                                      const std::vector<Value>& params = {});

  /// Opens a server-side cursor on a prepared statement: binds `params`,
  /// opens the plan, and returns a Cursor to FetchBatch from. One cursor at
  /// a time per PreparedStatement (the plan tree is single-use until
  /// closed).
  Result<Cursor> OpenCursor(PreparedStatement* stmt,
                            const std::vector<Value>& params = {});

  /// Plans a SELECT and renders the physical plan without running it.
  Result<std::string> Explain(const std::string& sql);

  /// Plans a SELECT under the given bind values with peeking forced on and
  /// renders the bucket classification, peeked selectivity, and per-engine
  /// calibrated optimizer costs ahead of the chosen plan.
  Result<std::string> Explain(const std::string& sql,
                              const std::vector<Value>& params);

  /// Plans, runs, and renders the physical plan annotated with per-operator
  /// runtime counters (rows/batches/opens/simulated time) plus query-wide
  /// totals — the EXPLAIN ANALYZE view.
  Result<std::string> ExplainAnalyze(const std::string& sql,
                                     const std::vector<Value>& params = {});

  // -- Direct (non-SQL) row interface; used by bulk loaders ------------------

  /// Validates NOT NULL + CHAR widths, casts values to the declared column
  /// types, inserts, and maintains all indexes.
  Status InsertRow(const std::string& table, const Row& row);

  /// Refreshes optimizer statistics (empty name = all tables).
  Status Analyze(const std::string& table = "");

  // -- Introspection ----------------------------------------------------------

  struct TableSize {
    std::string name;
    uint64_t rows = 0;
    uint64_t data_kb = 0;
    uint64_t index_kb = 0;
  };

  /// Allocated sizes per table (Table 2 of the paper).
  Result<std::vector<TableSize>> TableSizes() const;

 private:
  Status ExecuteSelect(const SelectStmt& stmt, const std::vector<Value>& params,
                       QueryResult* result);
  Status ExecuteInsert(const InsertStmt& stmt, const std::vector<Value>& params,
                       int64_t* affected);
  Status ExecuteDelete(const DeleteStmt& stmt, const std::vector<Value>& params,
                       int64_t* affected);
  Status ExecuteUpdate(const UpdateStmt& stmt, const std::vector<Value>& params,
                       int64_t* affected);
  Status ExecuteCreateTable(const CreateTableStmt& stmt);

  /// Binds an expression against a single table's schema (for DML WHERE /
  /// SET clauses; no subqueries or aggregates).
  Status BindTableExpr(const TableInfo& table, Expr* e) const;

  /// Finds rows matching `where` (index-assisted when its equality
  /// conjuncts cover an index prefix; heap scan otherwise).
  Status CollectMatches(TableInfo* table, const Expr* where,
                        const std::vector<Value>& params,
                        std::vector<std::pair<Rid, Row>>* out);

  Status InsertRowChecked(TableInfo* table, Row row, Rid* rid_out);
  Status DeleteRowAt(TableInfo* table, Rid rid, const Row& row);
  Status AnalyzeTable(TableInfo* table);

  /// One reversible record write of the active transaction.
  struct UndoEntry {
    enum class Kind { kInsert, kDelete, kUpdate };
    Kind kind;
    TableInfo* table;
    Rid rid;      ///< insert/delete: the row's RID; update: the pre-image RID
    Rid new_rid;  ///< update only: RID after the update (may equal rid)
    Row row;      ///< insert: inserted values; delete/update: pre-image
    Row new_row;  ///< update only: post-image (for index undo)
    /// Delete under `mvcc_index_ghosts`: the B-tree entries were left in
    /// place (queued for deferred removal), so undo must not re-insert them.
    bool deferred_index = false;
  };

  /// Takes the intention locks above a row write (root IX + table IX) for
  /// the active transaction; no-op in autocommit. kAborted = this txn was
  /// chosen as a deadlock victim and must roll back.
  Status LockTableIntent(TableInfo* table);
  /// Row-granularity write lock: intention locks plus the {table, rid} X
  /// lock. Writers of different rows no longer serialize on the table.
  Status LockRowForWrite(TableInfo* table, Rid rid);
  /// Appends a WAL record for `table` unless its engine is not WAL-capable.
  Status LogEngineOp(TableInfo* table, txn::LogType type, Rid rid,
                     std::string_view rec);
  Status UndoOne(const UndoEntry& e);

  /// A B-tree entry whose row was MVCC-deleted under `mvcc_index_ghosts`:
  /// kept so index scans can resolve the ghost, removed once the deleting
  /// txn drops below the MVCC horizon (no snapshot can see the row).
  struct DeferredIndexDelete {
    IndexInfo* index = nullptr;
    std::string key;
    uint64_t rid_pack = 0;
    uint64_t xmax = 0;  ///< the deleting transaction
  };

  /// Removes queued index entries whose deleting txn is below the MVCC
  /// horizon (all of them when `force`). Cheap no-op on an empty queue.
  Status DrainDeferredIndexDeletes(bool force);

  ExecContext MakeExecContext(SubqueryRunnerImpl* runner,
                              const std::vector<Value>* params);

  /// Hard-parses one plan variant with `params` visible to the planner as
  /// peeked constants. `classifier_out` (optional) receives the statement's
  /// peek classifier, extracted before planning consumes the bound query.
  Result<std::unique_ptr<PreparedStatement>> CompilePeekedVariant(
      const std::string& sql, const std::vector<Value>& params,
      PeekClassifier* classifier_out);

  /// Effective OS-thread budget for parallel fragments.
  int EffectiveExecThreads() const {
    return options_.exec_threads > 0 ? options_.exec_threads : options_.dop;
  }

  /// Advances the statement epoch (operator stats reset on next Open) and
  /// counts the statement; called once per top-level executed statement.
  uint64_t BeginStatement();

  DatabaseOptions options_;
  std::unique_ptr<SimClock> owned_clock_;
  SimClock* clock_;
  MetricsRegistry* metrics_;
  std::unique_ptr<Disk> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<txn::TxnManager> txn_mgr_;
  /// MVCC write id of the DML statement currently executing: the active
  /// txn's id, or a fresh instantly-committed id per autocommit statement
  /// (TxnManager::AllocWriteId). 0 = no DML in flight / MVCC off.
  uint64_t write_id_ = 0;
  std::vector<UndoEntry> undo_log_;
  /// Pending B-tree cleanups under `mvcc_index_ghosts` (see above).
  std::vector<DeferredIndexDelete> deferred_index_deletes_;
  std::unordered_map<std::string, std::unique_ptr<PreparedStatement>> prepared_;
  /// Parameter-sensitive plan cache (bind peeking on): one classifier per
  /// statement text plus up to kPeekBuckets compiled variants.
  struct PeekedStatement {
    PeekClassifier classifier;
    std::array<std::unique_ptr<PreparedStatement>, kPeekBuckets> variants;
  };
  std::unordered_map<std::string, PeekedStatement> peeked_prepared_;
  uint64_t statement_epoch_ = 0;
  // Cached registry mirrors (see constructor).
  Counter* m_statements_;
  Counter* m_hard_parses_;
  Counter* m_prepared_hits_;
  Counter* m_plan_variants_;
  std::array<Counter*, kPeekBuckets> m_bucket_hits_;
  Histogram* h_statement_sim_us_;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_DB_H_
