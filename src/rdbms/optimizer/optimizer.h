#ifndef R3DB_RDBMS_OPTIMIZER_OPTIMIZER_H_
#define R3DB_RDBMS_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "rdbms/catalog.h"
#include "rdbms/exec/executor.h"
#include "rdbms/plan/logical_plan.h"

namespace r3 {
namespace rdbms {

struct PlannerOptions {
  /// When a predicate's constant is a `?` parameter the optimizer cannot
  /// estimate selectivity. True reproduces the paper's commercial RDBMS:
  /// "the optimizer ... blindly generates a plan" that prefers the index
  /// (Section 4.1 / Table 6). False falls back to a sequential scan.
  bool blind_prefers_index = true;

  /// Sort/aggregate memory budget (spills charge simulated I/O).
  size_t work_mem_bytes = 4u << 20;

  /// Master switch for secondary-index access paths (benches use this for
  /// ablations).
  bool enable_index_scan = true;

  /// Master switch for index-nested-loops joins.
  bool enable_index_nl_join = true;

  /// Degree of intra-query parallelism plans may use (1 = serial plans
  /// only). Parallel plans fix their lane count at plan time, so results
  /// and simulated times depend on this value, not on the executing
  /// machine.
  int dop = 1;

  /// Minimum estimated base-table cardinality before a parallel (Gather)
  /// scan is worth its startup cost.
  uint64_t parallel_threshold_rows = 5000;

  /// Optimizer v2 master switch: bind-value peeking plus everything that
  /// rides on it — histogram-routed selectivity, the split per-engine
  /// OptimizerCosts index formulas, and multi-range index access. Off (the
  /// default) keeps every plan, estimate, and simulated time byte-identical
  /// to the pre-v2 optimizer; the Table 6 blindness repro stays intact.
  bool bind_peeking = false;

  /// The actual bind values visible to the planner when `bind_peeking` is
  /// on (null = none). Set transiently per compile by the plan-variant
  /// cache; parameterized predicates are then estimated like literals.
  const std::vector<Value>* peeked_params = nullptr;
};

/// Selectivity-bucket classification for the parameter-sensitive plan
/// cache: estimated fraction ≤0.1% / ≤2% / ≤20% / rest.
int PeekBucket(double est_fraction);
inline constexpr int kPeekBuckets = 4;

/// The per-statement classifier the plan-variant cache uses to map bind
/// values to a selectivity bucket without re-planning. Built once from the
/// bound query at first compile; entries clone the comparison value
/// expressions so they outlive the (consumed) BoundQuery.
struct PeekClassifier {
  struct Entry {
    const TableInfo* table = nullptr;
    size_t column = 0;  ///< table-local
    CmpOp op = CmpOp::kEq;
    bool is_between = false;
    ExprPtr value;   ///< comparison constant (may reference params)
    ExprPtr value2;  ///< BETWEEN upper bound
  };
  std::vector<Entry> entries;
};

/// Extracts the classifier from a bound query's single-table predicates.
PeekClassifier BuildPeekClassifier(const BoundQuery& bq);

/// Estimated fraction of the driving table selected under `params`:
/// per-table product of predicate selectivities (histogram-backed), then
/// the minimum across tables. 1.0 when nothing is estimable.
double PeekEstimate(const PeekClassifier& c, const std::vector<Value>& params);

/// A compiled subquery plan plus its (per-execution) caches.
struct CompiledSubquery;

/// Executes compiled subquery plans; one instance per query nesting level.
class SubqueryRunnerImpl : public SubqueryRunner {
 public:
  SubqueryRunnerImpl() = default;
  ~SubqueryRunnerImpl() override;

  Status RunScalar(size_t idx, const Row* outer, Value* out) override;
  Status RunExists(size_t idx, const Row* outer, bool* out) override;
  Status RunInProbe(size_t idx, const Row* outer, const Value& probe,
                    Value* out) override;

  /// Points the runner (recursively) at the current execution's context
  /// pieces and clears value caches. Call once per statement execution.
  /// `dop` is the worker-thread budget forwarded to subquery ExecContexts;
  /// `batch_rows` the RowBatch capacity for subquery pulls;
  /// `statement_epoch` stamps subquery ExecContexts so cached plans reset
  /// their operator stats per top-level statement.
  void BindExecution(BufferPool* pool, SimClock* clock,
                     const std::vector<Value>* params, size_t work_mem,
                     int dop = 1, size_t batch_rows = kDefaultBatchRows,
                     uint64_t statement_epoch = 0);

  /// Points the runner (recursively) at the statement's MVCC context so
  /// subquery scans apply the same snapshot-visibility rules as the main
  /// plan. Call after BindExecution; both null = non-MVCC reads.
  void BindMvcc(txn::MvccManager* mvcc, const txn::Snapshot* snapshot);

  std::vector<std::unique_ptr<CompiledSubquery>> subqueries;

 private:
  ExecContext MakeContext(CompiledSubquery* cs, const Row* outer);

  BufferPool* pool_ = nullptr;
  SimClock* clock_ = nullptr;
  const std::vector<Value>* params_ = nullptr;
  size_t work_mem_ = 4u << 20;
  int dop_ = 1;
  size_t batch_rows_ = kDefaultBatchRows;
  uint64_t statement_epoch_ = 0;
  txn::MvccManager* mvcc_ = nullptr;
  const txn::Snapshot* snapshot_ = nullptr;
};

struct CompiledSubquery {
  SubqueryKind kind = SubqueryKind::kScalar;
  bool correlated = false;
  OperatorPtr root;
  std::unique_ptr<SubqueryRunnerImpl> runner;  ///< for its own subqueries
  /// Non-owning: the BoundQuery stays owned by its parent query's
  /// `subqueries` vector (which PhysicalPlan::query keeps alive).
  BoundQuery* query = nullptr;

  // Per-execution caches (uncorrelated only).
  bool scalar_cached = false;
  Value scalar_value;
  bool exists_cached = false;
  bool exists_value = false;
  bool in_set_cached = false;
  std::unordered_set<std::string> in_set;
  bool in_set_has_null = false;

  /// Reusable pull scratch for this subquery's executions.
  RowBatch scratch;
};

/// What the planner decided for one statement — the per-plan slice of the
/// paper's "which access path / join method did the optimizer pick" story.
/// Counted over the main tree plus all (nested) subquery plans.
struct PlanChoices {
  int seq_scans = 0;
  int index_scans = 0;
  int parallel_scans = 0;
  int columnar_scans = 0;
  int hash_joins = 0;
  int index_nl_joins = 0;
  int nl_joins = 0;
  int hash_aggs = 0;
  int partial_aggs = 0;
  int sorts = 0;
  int distincts = 0;
  int limits = 0;
  int materializes = 0;
  int gather_nodes = 0;
  int gather_dop = 0;  ///< dop of the plan's Gather nodes (0 = serial plan)
  int subquery_plans = 0;

  /// One-line rendering for EXPLAIN ANALYZE / the performance monitor.
  std::string Summary() const;
};

/// A ready-to-execute statement: operator tree + subquery machinery +
/// ownership of all bound expressions.
struct PhysicalPlan {
  OperatorPtr root;
  std::unique_ptr<SubqueryRunnerImpl> runner;
  std::unique_ptr<BoundQuery> query;  ///< keeps Expr nodes alive
  Schema output_schema;
  std::vector<std::string> column_names;
  size_t num_params = 0;
  PlanChoices choices;

  std::string Explain() const { return root ? ExplainPlan(*root) : "<empty>"; }
};

/// Cost-based physical planner: access-path selection from statistics,
/// greedy join ordering, join-algorithm choice (index-NL vs hash vs NL),
/// and naive (nested re-execution) subquery compilation — deliberately
/// matching the behaviour the paper observed in its commercial RDBMS.
class Optimizer {
 public:
  /// `metrics` (null = GlobalMetrics()) receives `rdbms.optimizer.*`
  /// counters for every plan produced.
  Optimizer(const Catalog* catalog, PlannerOptions options,
            MetricsRegistry* metrics = nullptr)
      : catalog_(catalog), options_(options), metrics_(metrics) {}

  /// Consumes the bound query and produces an executable plan.
  Result<PhysicalPlan> Plan(std::unique_ptr<BoundQuery> bq);

 private:
  struct PlanResult {
    OperatorPtr root;
    std::unique_ptr<SubqueryRunnerImpl> runner;
  };

  Result<PlanResult> PlanQueryTree(BoundQuery* bq);

  const Catalog* catalog_;
  PlannerOptions options_;
  MetricsRegistry* metrics_;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_OPTIMIZER_OPTIMIZER_H_
