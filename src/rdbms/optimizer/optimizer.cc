#include "rdbms/optimizer/optimizer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>

#include "common/cost_model.h"
#include "common/str_util.h"
#include "rdbms/exec/parallel_ops.h"
#include "rdbms/expr/eval.h"
#include "rdbms/index/key_codec.h"
#include "rdbms/optimizer/optimizer_costs.h"

namespace r3 {
namespace rdbms {

namespace {

/// Everything the v2 estimation path needs, threaded through the free
/// helper functions. Default-constructed = the legacy (pre-v2) optimizer:
/// no histograms, no peeked parameters, single-range index access, raw
/// StorageCosts arithmetic — bit-identical plans.
struct EstimationContext {
  bool v2 = false;
  const std::vector<Value>* peeked = nullptr;
};

// ---------------------------------------------------------------------------
// Expression analysis helpers
// ---------------------------------------------------------------------------

/// Applies `fn` to every expression tree of a bound query (not descending
/// into its subqueries' own trees).
void ForEachExprOfQuery(const BoundQuery& bq,
                        const std::function<void(const Expr&)>& fn) {
  auto walk = [&](const ExprPtr& e) {
    if (e != nullptr) fn(*e);
  };
  for (const auto& c : bq.conjuncts) walk(c);
  for (const auto& g : bq.group_by) walk(g);
  for (const auto& a : bq.agg_calls) walk(a);
  for (const auto& s : bq.select_exprs) walk(s);
  if (bq.having != nullptr) fn(*bq.having);
  for (const auto& t : bq.tables) {
    for (const auto& c : t.outer_join_conjuncts) walk(c);
  }
}

/// Collects this-level wide-row positions referenced by `e`, including the
/// outer references made by directly nested subqueries (which refer to this
/// level's wide row).
void CollectPositions(const Expr& e, const BoundQuery& bq,
                      std::set<size_t>* positions) {
  if (e.kind == ExprKind::kColumnRef) {
    positions->insert(e.column_index);
  }
  if (e.subquery_index != kNoSubquery && e.subquery_index < bq.subqueries.size()) {
    const BoundQuery& sub = *bq.subqueries[e.subquery_index].query;
    std::function<void(const Expr&)> collect_outer = [&](const Expr& x) {
      if (x.kind == ExprKind::kOuterRef) positions->insert(x.column_index);
      for (const ExprPtr& c : x.children) {
        if (c != nullptr) collect_outer(*c);
      }
    };
    ForEachExprOfQuery(sub, collect_outer);
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr) CollectPositions(*c, bq, positions);
  }
}

size_t TableOfPosition(const BoundQuery& bq, size_t pos) {
  for (size_t i = 0; i < bq.tables.size(); ++i) {
    size_t w = bq.tables[i].table->schema.NumColumns();
    if (pos >= bq.tables[i].offset && pos < bq.tables[i].offset + w) return i;
  }
  return static_cast<size_t>(-1);
}

/// True if `e` is constant at execution time of the current query level:
/// literals, parameters, outer references, and functions thereof.
bool IsRuntimeConstant(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
    case ExprKind::kSlotRef:
    case ExprKind::kAggRef:
    case ExprKind::kAggCall:
    case ExprKind::kScalarSubquery:
    case ExprKind::kExistsSubquery:
    case ExprKind::kInSubquery:
      return false;
    default:
      break;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && !IsRuntimeConstant(*c)) return false;
  }
  return true;
}

/// Evaluates a runtime-constant expression at *plan* time. Fails (kNotFound
/// used as the "unknown" signal) when the value depends on parameters or
/// outer rows, which are unavailable to the optimizer — the heart of the
/// paper's Table 6 observation. With bind peeking (`est.peeked`), parameter
/// references resolve against the peeked bind values and the optimizer is
/// no longer blind.
Result<Value> PlanTimeValue(const Expr& e, const EstimationContext& est) {
  if (ExprHasParams(e) && est.peeked == nullptr) {
    return Status::NotFound("value depends on a parameter");
  }
  if (ExprContains(e, [](const Expr& x) { return x.kind == ExprKind::kOuterRef; })) {
    return Status::NotFound("value depends on an outer row");
  }
  EvalContext ec;
  ec.params = est.peeked;
  Value v;
  Status st = EvalExpr(e, ec, &v);
  if (!st.ok()) return Status::NotFound("not plan-time evaluable");
  return v;
}

const ColumnStats* StatsFor(const TableInfo& t, size_t col) {
  if (!t.stats.valid || col >= t.stats.columns.size()) return nullptr;
  const ColumnStats& s = t.stats.columns[col];
  return s.valid ? &s : nullptr;
}

uint64_t RowCountOf(const TableInfo& t) {
  return t.stats.valid ? t.stats.row_count : t.row_count;
}

// A normalized single-column comparison: col <op> const-expr.
struct ColCompare {
  size_t column = 0;  ///< table-local column index
  CmpOp op = CmpOp::kEq;
  const Expr* value = nullptr;
  const Expr* value2 = nullptr;  ///< BETWEEN upper bound
  bool is_between = false;
};

/// Tries to view `e` as a comparison between a column of table `t` and a
/// runtime constant.
bool MatchColCompare(const Expr& e, const BoundTableRef& t, ColCompare* out) {
  size_t width = t.table->schema.NumColumns();
  auto local_col = [&](const Expr& x) -> int64_t {
    if (x.kind != ExprKind::kColumnRef) return -1;
    if (x.column_index < t.offset || x.column_index >= t.offset + width) return -1;
    return static_cast<int64_t>(x.column_index - t.offset);
  };
  if (e.kind == ExprKind::kCompare) {
    int64_t lc = local_col(*e.children[0]);
    int64_t rc = local_col(*e.children[1]);
    if (lc >= 0 && IsRuntimeConstant(*e.children[1])) {
      out->column = static_cast<size_t>(lc);
      out->op = e.cmp_op;
      out->value = e.children[1].get();
      return true;
    }
    if (rc >= 0 && IsRuntimeConstant(*e.children[0])) {
      out->column = static_cast<size_t>(rc);
      // Flip the operator.
      switch (e.cmp_op) {
        case CmpOp::kLt:
          out->op = CmpOp::kGt;
          break;
        case CmpOp::kLe:
          out->op = CmpOp::kGe;
          break;
        case CmpOp::kGt:
          out->op = CmpOp::kLt;
          break;
        case CmpOp::kGe:
          out->op = CmpOp::kLe;
          break;
        default:
          out->op = e.cmp_op;
          break;
      }
      out->value = e.children[0].get();
      return true;
    }
    return false;
  }
  if (e.kind == ExprKind::kBetween && !e.negated) {
    int64_t c = local_col(*e.children[0]);
    if (c >= 0 && IsRuntimeConstant(*e.children[1]) &&
        IsRuntimeConstant(*e.children[2])) {
      out->column = static_cast<size_t>(c);
      out->is_between = true;
      out->value = e.children[1].get();
      out->value2 = e.children[2].get();
      return true;
    }
  }
  return false;
}

/// Estimated selectivity of one conjunct against table `t`.
/// `*unknown` is set when the constant is invisible at plan time.
double EstimateConjunctSelectivity(const Expr& e, const BoundTableRef& t,
                                   bool* unknown,
                                   const EstimationContext& est) {
  *unknown = false;
  const bool hist = est.v2;
  ColCompare cc;
  if (MatchColCompare(e, t, &cc)) {
    const ColumnStats* s = StatsFor(*t.table, cc.column);
    if (cc.is_between) {
      auto lo = PlanTimeValue(*cc.value, est);
      auto hi = PlanTimeValue(*cc.value2, est);
      if (!lo.ok() || !hi.ok() || s == nullptr) {
        *unknown = !lo.ok() || !hi.ok();
        return selectivity::kDefaultRange / 2;
      }
      double below_hi = selectivity::LessThan(*s, hi.value(), hist);
      double below_lo = selectivity::LessThan(*s, lo.value(), hist);
      double eq_hi = hist ? selectivity::Equals(*s, hi.value(), hist) : 0.0;
      return std::max(0.0, below_hi + eq_hi - below_lo);
    }
    auto v = PlanTimeValue(*cc.value, est);
    if (!v.ok()) {
      *unknown = true;
      return cc.op == CmpOp::kEq ? selectivity::kDefaultEquals
                                 : selectivity::kDefaultRange;
    }
    if (s == nullptr) {
      return cc.op == CmpOp::kEq ? selectivity::kDefaultEquals
                                 : selectivity::kDefaultRange;
    }
    switch (cc.op) {
      case CmpOp::kEq:
        return selectivity::Equals(*s, v.value(), hist);
      case CmpOp::kLt:
      case CmpOp::kLe:
        return selectivity::LessThan(*s, v.value(), hist);
      case CmpOp::kGt:
      case CmpOp::kGe:
        return selectivity::GreaterThan(*s, v.value(), hist);
      case CmpOp::kNe:
        return 1.0 - selectivity::Equals(*s, v.value(), hist);
    }
  }
  if (e.kind == ExprKind::kLike) return 0.05;
  if (e.kind == ExprKind::kInList) {
    if (est.v2 && !e.negated && e.children.size() > 1) {
      // v2: sum the per-item equality estimates when the target is a local
      // column and every item's value is visible (literals or peeked).
      size_t width = t.table->schema.NumColumns();
      const Expr& target = *e.children[0];
      if (target.kind == ExprKind::kColumnRef &&
          target.column_index >= t.offset &&
          target.column_index < t.offset + width) {
        const ColumnStats* s =
            StatsFor(*t.table, target.column_index - t.offset);
        double sum = 0;
        bool all_known = true;
        for (size_t i = 1; i < e.children.size(); ++i) {
          auto v = PlanTimeValue(*e.children[i], est);
          if (!v.ok()) {
            all_known = false;
            break;
          }
          sum += s != nullptr ? selectivity::Equals(*s, v.value(), hist)
                              : selectivity::kDefaultEquals;
        }
        if (all_known) return std::min(1.0, sum);
      }
    }
    return std::min(1.0, selectivity::kDefaultEquals *
                             static_cast<double>(e.children.size() - 1) * 2.0);
  }
  return 0.25;  // generic predicate
}

// ---------------------------------------------------------------------------
// Access paths
// ---------------------------------------------------------------------------

struct AccessPath {
  const IndexInfo* index = nullptr;  ///< null: sequential scan
  IndexBounds bounds;
  std::set<const Expr*> consumed;  ///< conjuncts folded into the bounds
  double est_rows = 1;             ///< after all pushed single-table filters
  bool blind = false;              ///< chosen without selectivity knowledge
};

struct TableCandidate {
  std::vector<const Expr*> singles;  ///< pushed single-table conjuncts
  AccessPath path;
};

/// True when `op` constrains a range (not equality).
bool IsRangeOp(CmpOp op) {
  return op == CmpOp::kLt || op == CmpOp::kLe || op == CmpOp::kGt ||
         op == CmpOp::kGe;
}

/// Flattens an OR chain into index ranges on `col` of `t`; false when any
/// leaf is not an index-compatible comparison on that column.
bool FlattenOrRanges(const Expr& e, const BoundTableRef& t, size_t col,
                     std::vector<IndexRange>* out) {
  if (e.kind == ExprKind::kLogic && e.logic_op == LogicOp::kOr) {
    for (const ExprPtr& c : e.children) {
      if (c == nullptr || !FlattenOrRanges(*c, t, col, out)) return false;
    }
    return true;
  }
  ColCompare cc;
  if (!MatchColCompare(e, t, &cc) || cc.column != col) return false;
  IndexRange r;
  if (cc.is_between) {
    r.lower = cc.value;
    r.upper = cc.value2;
  } else {
    switch (cc.op) {
      case CmpOp::kEq:
        r.point = cc.value;
        break;
      case CmpOp::kLt:
        r.upper = cc.value;
        r.upper_inclusive = false;
        break;
      case CmpOp::kLe:
        r.upper = cc.value;
        break;
      case CmpOp::kGt:
        r.lower = cc.value;
        r.lower_inclusive = false;
        break;
      case CmpOp::kGe:
        r.lower = cc.value;
        break;
      default:
        return false;  // != is not indexable
    }
  }
  out->push_back(r);
  return true;
}

/// Estimated selectivity of one index range on a column with stats `s`.
double RangeSelectivity(const IndexRange& r, const ColumnStats* s,
                        const EstimationContext& est, bool* unknown) {
  *unknown = false;
  if (r.point != nullptr) {
    auto v = PlanTimeValue(*r.point, est);
    if (!v.ok()) {
      *unknown = true;
      return selectivity::kDefaultEquals;
    }
    return s != nullptr ? selectivity::Equals(*s, v.value(), est.v2)
                        : selectivity::kDefaultEquals;
  }
  double lo_frac = 0.0;
  double hi_frac = 1.0;
  if (r.lower != nullptr) {
    auto v = PlanTimeValue(*r.lower, est);
    if (!v.ok()) {
      *unknown = true;
      return selectivity::kDefaultRange;
    }
    if (s != nullptr) lo_frac = selectivity::LessThan(*s, v.value(), est.v2);
  }
  if (r.upper != nullptr) {
    auto v = PlanTimeValue(*r.upper, est);
    if (!v.ok()) {
      *unknown = true;
      return selectivity::kDefaultRange;
    }
    if (s != nullptr) {
      hi_frac = selectivity::LessThan(*s, v.value(), est.v2);
      if (r.upper_inclusive) {
        hi_frac += selectivity::Equals(*s, v.value(), est.v2);
      }
    }
  }
  if (s == nullptr && (r.lower != nullptr || r.upper != nullptr)) {
    return selectivity::kDefaultRange;
  }
  return std::max(0.0, std::min(1.0, hi_frac) - lo_frac);
}

/// Chooses the access path for one table given its pushed conjuncts.
AccessPath ChooseAccessPath(const BoundTableRef& t,
                            const std::vector<const Expr*>& singles,
                            const PlannerOptions& options,
                            const CostModel& cost,
                            const EstimationContext& est) {
  AccessPath seq;
  double sel_total = 1.0;
  // Per-conjunct estimates, with one correction: range conjuncts whose
  // bounds are invisible at plan time are combined *per column* before
  // multiplying. `x >= ? AND x <= ?` used to contribute kDefaultRange² —
  // double-counting the same column's range — where the equivalent
  // `x BETWEEN ? AND ?` contributed kDefaultRange/2.
  {
    std::vector<double> sels(singles.size(), 1.0);
    std::vector<int64_t> unk_range_col(singles.size(), -1);
    std::map<size_t, std::pair<bool, bool>> col_bounds;  // col -> (lo, hi)
    for (size_t i = 0; i < singles.size(); ++i) {
      bool unknown = false;
      sels[i] = EstimateConjunctSelectivity(*singles[i], t, &unknown, est);
      ColCompare cc;
      if (unknown && MatchColCompare(*singles[i], t, &cc) &&
          (cc.is_between || IsRangeOp(cc.op))) {
        unk_range_col[i] = static_cast<int64_t>(cc.column);
        auto& b = col_bounds[cc.column];
        if (cc.is_between) {
          b.first = b.second = true;
        } else if (cc.op == CmpOp::kGt || cc.op == CmpOp::kGe) {
          b.first = true;
        } else {
          b.second = true;
        }
      }
    }
    std::set<size_t> counted;
    for (size_t i = 0; i < singles.size(); ++i) {
      if (unk_range_col[i] >= 0) {
        size_t col = static_cast<size_t>(unk_range_col[i]);
        if (!counted.insert(col).second) continue;  // deduped
        const auto& b = col_bounds[col];
        sel_total *= b.first && b.second ? selectivity::kDefaultRange / 2
                                         : selectivity::kDefaultRange;
      } else {
        sel_total *= sels[i];
      }
    }
  }
  uint64_t rows = std::max<uint64_t>(1, RowCountOf(*t.table));
  seq.est_rows = std::max(1.0, sel_total * static_cast<double>(rows));
  if (!options.enable_index_scan) return seq;

  AccessPath best = seq;
  double best_cost = -1.0;
  AccessPath best_blind;
  size_t best_blind_score = 0;
  uint32_t pages = 1;
  if (auto p = t.table->storage->NumPages(); p.ok()) {
    pages = std::max(1u, p.value());
  }
  // Per-engine costs (MariaDB OPTIMIZER_COSTS style): the row heap reports
  // the CostModel integers verbatim, so its plan arithmetic is bit-identical
  // to the pre-engine costing. The v2 path additionally consults the split
  // OptimizerCosts fields (descent vs entry CPU vs row fetch), which is
  // where the columnar engine's cheap in-memory row fetch finally shows up.
  const StorageCosts ecost = t.table->storage->ScanCosts(cost);
  const OptimizerCosts ocost = OptimizerCosts::ForTable(*t.table, cost);
  double seq_cost = static_cast<double>(pages) * ecost.seq_page_us +
                    static_cast<double>(rows) * ecost.tuple_cpu_us;

  for (const IndexInfo* idx : t.table->indexes) {
    IndexBounds bounds;
    std::set<const Expr*> consumed;
    double idx_sel = 1.0;
    bool any_unknown = false;
    size_t k = 0;
    // Equality prefix.
    for (; k < idx->column_indices.size(); ++k) {
      const Expr* eq_value = nullptr;
      for (const Expr* c : singles) {
        if (consumed.count(c) > 0) continue;
        ColCompare cc;
        if (MatchColCompare(*c, t, &cc) && !cc.is_between &&
            cc.op == CmpOp::kEq && cc.column == idx->column_indices[k]) {
          eq_value = cc.value;
          bool unknown = false;
          idx_sel *= EstimateConjunctSelectivity(*c, t, &unknown, est);
          any_unknown = any_unknown || unknown;
          consumed.insert(c);
          break;
        }
      }
      if (eq_value == nullptr) break;
      bounds.eq_exprs.push_back(eq_value);
    }
    // Optional range on the next column.
    if (k < idx->column_indices.size()) {
      for (const Expr* c : singles) {
        if (consumed.count(c) > 0) continue;
        ColCompare cc;
        if (!MatchColCompare(*c, t, &cc) || cc.column != idx->column_indices[k]) {
          continue;
        }
        bool unknown = false;
        double s = EstimateConjunctSelectivity(*c, t, &unknown, est);
        if (cc.is_between) {
          if (bounds.lower != nullptr || bounds.upper != nullptr) continue;
          bounds.lower = cc.value;
          bounds.lower_inclusive = true;
          bounds.upper = cc.value2;
          bounds.upper_inclusive = true;
        } else if ((cc.op == CmpOp::kGt || cc.op == CmpOp::kGe) &&
                   bounds.lower == nullptr) {
          bounds.lower = cc.value;
          bounds.lower_inclusive = cc.op == CmpOp::kGe;
        } else if ((cc.op == CmpOp::kLt || cc.op == CmpOp::kLe) &&
                   bounds.upper == nullptr) {
          bounds.upper = cc.value;
          bounds.upper_inclusive = cc.op == CmpOp::kLe;
        } else {
          continue;
        }
        idx_sel *= s;
        any_unknown = any_unknown || unknown;
        consumed.insert(c);
      }
      // v2 multi-range: when no contiguous range folded in, try `a IN (…)`
      // or an OR-of-ranges on this column — each becomes one key range of
      // the same IndexScan (one descent per range).
      if (est.v2 && bounds.lower == nullptr && bounds.upper == nullptr) {
        const size_t range_col = idx->column_indices[k];
        for (const Expr* c : singles) {
          if (consumed.count(c) > 0) continue;
          std::vector<IndexRange> ranges;
          bool matched = false;
          if (c->kind == ExprKind::kInList && !c->negated &&
              c->children.size() > 1) {
            const Expr& target = *c->children[0];
            const size_t width = t.table->schema.NumColumns();
            if (target.kind == ExprKind::kColumnRef &&
                target.column_index >= t.offset &&
                target.column_index < t.offset + width &&
                target.column_index - t.offset == range_col) {
              matched = true;
              for (size_t i = 1; i < c->children.size(); ++i) {
                if (!IsRuntimeConstant(*c->children[i])) {
                  matched = false;
                  break;
                }
                IndexRange r;
                r.point = c->children[i].get();
                ranges.push_back(r);
              }
            }
          } else if (c->kind == ExprKind::kLogic &&
                     c->logic_op == LogicOp::kOr) {
            matched = FlattenOrRanges(*c, t, range_col, &ranges);
          }
          if (!matched || ranges.empty()) continue;
          const ColumnStats* s = StatsFor(*t.table, range_col);
          double sum = 0;
          bool unk = false;
          for (const IndexRange& r : ranges) {
            bool u = false;
            sum += RangeSelectivity(r, s, est, &u);
            unk = unk || u;
          }
          idx_sel *= std::min(1.0, sum);
          any_unknown = any_unknown || unk;
          bounds.ranges = std::move(ranges);
          consumed.insert(c);
          break;
        }
      }
    }
    if (consumed.empty()) continue;  // index not applicable

    bool full_unique_match = idx->unique &&
                             bounds.eq_exprs.size() == idx->column_indices.size();
    double est_match = std::max(1.0, idx_sel * static_cast<double>(rows));
    double idx_cost;
    if (est.v2) {
      const double nranges =
          bounds.ranges.empty() ? 1.0 : static_cast<double>(bounds.ranges.size());
      idx_cost = nranges * ocost.index_descent_us +
                 est_match * (ocost.index_entry_cpu_us + ocost.row_fetch_us);
    } else {
      idx_cost = est_match * (ecost.random_page_us + ecost.tuple_cpu_us);
    }
    AccessPath cand;
    cand.index = idx;
    cand.bounds = bounds;
    cand.consumed = consumed;
    cand.est_rows = std::max(1.0, sel_total * static_cast<double>(rows));
    if (full_unique_match) {
      // A covered unique point lookup always wins.
      best = cand;
      best.est_rows = 1.0;
      break;
    }
    if (any_unknown) {
      // The optimizer is blind (parameterized constants): it cannot cost
      // the index and — like the paper's RDBMS — just takes the most
      // specific one (most predicate columns covered).
      cand.blind = true;
      size_t score = consumed.size();
      if (options.blind_prefers_index && score > best_blind_score) {
        best_blind = cand;
        best_blind_score = score;
      }
      continue;
    }
    if (idx_cost < seq_cost && (best_cost < 0 || idx_cost < best_cost)) {
      best = cand;
      best_cost = idx_cost;
    }
  }
  if (best_blind_score > 0) return best_blind;
  return best;
}

std::vector<FilledRange> RangesFor(const BoundQuery& bq,
                                   const std::set<size_t>& tables) {
  std::vector<FilledRange> out;
  for (size_t t : tables) {
    out.push_back(FilledRange{bq.tables[t].offset,
                              bq.tables[t].table->schema.NumColumns()});
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SubqueryRunnerImpl
// ---------------------------------------------------------------------------

SubqueryRunnerImpl::~SubqueryRunnerImpl() = default;

void SubqueryRunnerImpl::BindExecution(BufferPool* pool, SimClock* clock,
                                       const std::vector<Value>* params,
                                       size_t work_mem, int dop,
                                       size_t batch_rows,
                                       uint64_t statement_epoch) {
  pool_ = pool;
  clock_ = clock;
  params_ = params;
  work_mem_ = work_mem;
  dop_ = dop;
  batch_rows_ = batch_rows < 1 ? 1 : batch_rows;
  statement_epoch_ = statement_epoch;
  for (auto& cs : subqueries) {
    cs->scalar_cached = false;
    cs->exists_cached = false;
    cs->in_set_cached = false;
    cs->in_set.clear();
    cs->in_set_has_null = false;
    if (cs->runner != nullptr) {
      cs->runner->BindExecution(pool, clock, params, work_mem, dop,
                                batch_rows, statement_epoch);
    }
  }
  // Reset per statement; the caller re-binds via BindMvcc when the
  // statement reads under a snapshot.
  mvcc_ = nullptr;
  snapshot_ = nullptr;
}

void SubqueryRunnerImpl::BindMvcc(txn::MvccManager* mvcc,
                                  const txn::Snapshot* snapshot) {
  mvcc_ = mvcc;
  snapshot_ = snapshot;
  for (auto& cs : subqueries) {
    if (cs->runner != nullptr) cs->runner->BindMvcc(mvcc, snapshot);
  }
}

ExecContext SubqueryRunnerImpl::MakeContext(CompiledSubquery* cs,
                                            const Row* outer) {
  ExecContext ctx;
  ctx.pool = pool_;
  ctx.clock = clock_;
  ctx.params = params_;
  ctx.subqueries = cs->runner.get();
  ctx.outer_row = outer;
  ctx.work_mem_bytes = work_mem_;
  ctx.dop = dop_;
  ctx.batch_size = batch_rows_;
  ctx.statement_epoch = statement_epoch_;
  ctx.mvcc = mvcc_;
  ctx.snapshot = snapshot_;
  return ctx;
}

Status SubqueryRunnerImpl::RunScalar(size_t idx, const Row* outer, Value* out) {
  if (idx >= subqueries.size()) return Status::Internal("bad subquery index");
  CompiledSubquery* cs = subqueries[idx].get();
  if (!cs->correlated && cs->scalar_cached) {
    *out = cs->scalar_value;
    return Status::OK();
  }
  ExecContext ctx = MakeContext(cs, cs->correlated ? outer : nullptr);
  R3_RETURN_IF_ERROR(cs->root->Open(&ctx));
  // Single-row pulls reproduce the row-at-a-time engine's two Next calls
  // (value, then uniqueness check) charge for charge.
  cs->scratch.Reset(1);
  R3_ASSIGN_OR_RETURN(bool ok, cs->root->NextBatch(&cs->scratch));
  if (!ok) {
    *out = Value::Null();
  } else {
    *out = cs->scratch.row(0)[0];  // copy before the next pull clears it
    R3_ASSIGN_OR_RETURN(bool more, cs->root->NextBatch(&cs->scratch));
    if (more) {
      return Status::InvalidArgument("scalar subquery produced more than one row");
    }
  }
  R3_RETURN_IF_ERROR(cs->root->Close());
  if (!cs->correlated) {
    cs->scalar_cached = true;
    cs->scalar_value = *out;
  }
  return Status::OK();
}

Status SubqueryRunnerImpl::RunExists(size_t idx, const Row* outer, bool* out) {
  if (idx >= subqueries.size()) return Status::Internal("bad subquery index");
  CompiledSubquery* cs = subqueries[idx].get();
  if (!cs->correlated && cs->exists_cached) {
    *out = cs->exists_value;
    return Status::OK();
  }
  ExecContext ctx = MakeContext(cs, cs->correlated ? outer : nullptr);
  R3_RETURN_IF_ERROR(cs->root->Open(&ctx));
  cs->scratch.Reset(1);  // EXISTS needs one row: don't pull more
  R3_ASSIGN_OR_RETURN(bool ok, cs->root->NextBatch(&cs->scratch));
  *out = ok;
  R3_RETURN_IF_ERROR(cs->root->Close());
  if (!cs->correlated) {
    cs->exists_cached = true;
    cs->exists_value = *out;
  }
  return Status::OK();
}

Status SubqueryRunnerImpl::RunInProbe(size_t idx, const Row* outer,
                                      const Value& probe, Value* out) {
  if (idx >= subqueries.size()) return Status::Internal("bad subquery index");
  CompiledSubquery* cs = subqueries[idx].get();
  auto normalize = [](const Value& v) -> Value {
    if (IsNumeric(v.type()) && v.type() != DataType::kDouble && !v.is_null()) {
      return Value::Dbl(v.AsDouble());
    }
    return v;
  };
  if (!cs->correlated) {
    if (!cs->in_set_cached) {
      ExecContext ctx = MakeContext(cs, nullptr);
      R3_RETURN_IF_ERROR(cs->root->Open(&ctx));
      cs->scratch.Reset(batch_rows_);  // full drain: batch freely
      while (true) {
        R3_ASSIGN_OR_RETURN(bool ok, cs->root->NextBatch(&cs->scratch));
        if (!ok) break;
        for (size_t i = 0; i < cs->scratch.size(); ++i) {
          const Value& v = cs->scratch.row(i)[0];
          if (v.is_null()) {
            cs->in_set_has_null = true;
          } else {
            cs->in_set.insert(key_codec::Encode(normalize(v)));
          }
        }
      }
      R3_RETURN_IF_ERROR(cs->root->Close());
      cs->in_set_cached = true;
    }
    if (probe.is_null()) {
      *out = Value::Null(DataType::kBool);
      return Status::OK();
    }
    if (cs->in_set.count(key_codec::Encode(normalize(probe))) > 0) {
      *out = Value::Bool(true);
    } else if (cs->in_set_has_null) {
      *out = Value::Null(DataType::kBool);
    } else {
      *out = Value::Bool(false);
    }
    return Status::OK();
  }
  // Correlated IN: naive re-execution (what the paper's RDBMS did, badly).
  if (probe.is_null()) {
    *out = Value::Null(DataType::kBool);
    return Status::OK();
  }
  ExecContext ctx = MakeContext(cs, outer);
  R3_RETURN_IF_ERROR(cs->root->Open(&ctx));
  // Single-row pulls so the early exit on a match stops the subquery at
  // exactly the row the row-at-a-time engine stopped at.
  cs->scratch.Reset(1);
  bool saw_null = false;
  bool matched = false;
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, cs->root->NextBatch(&cs->scratch));
    if (!ok) break;
    const Value& v = cs->scratch.row(0)[0];
    if (v.is_null()) {
      saw_null = true;
      continue;
    }
    if (v.Compare(probe) == 0) {
      matched = true;
      break;
    }
  }
  R3_RETURN_IF_ERROR(cs->root->Close());
  if (matched) {
    *out = Value::Bool(true);
  } else if (saw_null) {
    *out = Value::Null(DataType::kBool);
  } else {
    *out = Value::Bool(false);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

Result<Optimizer::PlanResult> Optimizer::PlanQueryTree(BoundQuery* bq) {
  const CostModel& cost = DefaultCostModel();
  EstimationContext est;
  est.v2 = options_.bind_peeking;
  est.peeked = options_.bind_peeking ? options_.peeked_params : nullptr;

  // 0. Compile subqueries (recursively) into the runner.
  auto runner = std::make_unique<SubqueryRunnerImpl>();
  for (BoundSubquery& sub : bq->subqueries) {
    auto cs = std::make_unique<CompiledSubquery>();
    cs->kind = sub.kind;
    cs->correlated = sub.correlated;
    R3_ASSIGN_OR_RETURN(PlanResult child, PlanQueryTree(sub.query.get()));
    cs->root = std::move(child.root);
    cs->runner = std::move(child.runner);
    cs->query = sub.query.get();
    runner->subqueries.push_back(std::move(cs));
  }

  // 1. Classify conjuncts by required tables.
  struct ConjunctInfo {
    Expr* expr;
    std::set<size_t> tables;
    bool placed = false;
  };
  std::vector<ConjunctInfo> conjuncts;
  for (ExprPtr& c : bq->conjuncts) {
    ConjunctInfo info;
    info.expr = c.get();
    std::set<size_t> positions;
    CollectPositions(*c, *bq, &positions);
    for (size_t p : positions) {
      size_t t = TableOfPosition(*bq, p);
      if (t != static_cast<size_t>(-1)) info.tables.insert(t);
    }
    conjuncts.push_back(std::move(info));
  }

  // 2. Push single-table conjuncts; choose access paths.
  std::vector<TableCandidate> cands(bq->tables.size());
  for (size_t t = 0; t < bq->tables.size(); ++t) {
    if (bq->tables[t].left_outer) continue;  // filters ride on the join
    for (ConjunctInfo& c : conjuncts) {
      if (c.tables.size() == 1 && *c.tables.begin() == t) {
        cands[t].singles.push_back(c.expr);
        c.placed = true;
      }
    }
    cands[t].path =
        ChooseAccessPath(bq->tables[t], cands[t].singles, options_, cost, est);
  }
  // Zero-table conjuncts attach to the first scan.
  std::vector<const Expr*> zero_table;
  for (ConjunctInfo& c : conjuncts) {
    if (!c.placed && c.tables.empty()) {
      zero_table.push_back(c.expr);
      c.placed = true;
    }
  }

  // Parallel (Gather) eligibility: only sequential scans of large non-outer
  // tables in subquery-free query levels qualify. Subquery-free matters
  // because worker lanes must never re-enter the (serial, caching) subquery
  // machinery.
  auto parallel_eligible = [&](size_t t) -> bool {
    if (options_.dop <= 1) return false;
    if (!bq->subqueries.empty()) return false;
    const BoundTableRef& ref = bq->tables[t];
    // Only the row heap partitions by page range; other engines scan
    // serially (their chunk-granular cost accounting is DOP-invariant).
    if (ref.table->storage->kind() != EngineKind::kRowHeap) return false;
    if (ref.left_outer) return false;
    if (cands[t].path.index != nullptr) return false;
    return RowCountOf(*ref.table) >= options_.parallel_threshold_rows;
  };

  auto make_scan = [&](size_t t) -> OperatorPtr {
    const TableCandidate& cand = cands[t];
    const BoundTableRef& ref = bq->tables[t];
    // Estimated post-filter cardinality, recorded on the scan node so
    // EXPLAIN ANALYZE can report est-vs-actual drift (stale-stats story).
    const uint64_t scan_est =
        static_cast<uint64_t>(std::max(0.0, cand.path.est_rows));
    std::vector<const Expr*> residual;
    for (const Expr* s : cand.singles) {
      if (cand.path.consumed.count(s) == 0) residual.push_back(s);
    }
    if (cand.path.index != nullptr) {
      auto op = std::make_unique<IndexScanOp>(ref.table, cand.path.index,
                                              ref.offset, bq->wide_width,
                                              cand.path.bounds, residual);
      op->set_est_rows(scan_est);
      return op;
    }
    if (parallel_eligible(t)) {
      auto op = std::make_unique<GatherOp>(ref.table, ref.offset,
                                           bq->wide_width, residual,
                                           options_.dop, scan_est);
      op->set_est_rows(scan_est);
      return op;
    }
    // Projection set for engines that materialize lazily: every wide-row
    // position any expression of this query level reads, rebased to the
    // table. With subqueries present fall back to all columns — a deeply
    // nested correlation could reference a position no top-level walk sees.
    std::optional<std::vector<size_t>> needed;
    if (ref.table->storage->kind() != EngineKind::kRowHeap &&
        bq->subqueries.empty()) {
      std::set<size_t> positions;
      ForEachExprOfQuery(
          *bq, [&](const Expr& e) { CollectPositions(e, *bq, &positions); });
      const size_t ncols = ref.table->schema.NumColumns();
      std::vector<size_t> local;
      for (size_t p : positions) {
        if (p >= ref.offset && p < ref.offset + ncols) {
          local.push_back(p - ref.offset);
        }
      }
      needed = std::move(local);
    }
    auto op = std::make_unique<SeqScanOp>(ref.table, ref.offset,
                                          bq->wide_width, residual,
                                          std::move(needed));
    op->set_est_rows(scan_est);
    return op;
  };

  // 3. Greedy join ordering.
  std::set<size_t> remaining;
  for (size_t t = 0; t < bq->tables.size(); ++t) remaining.insert(t);

  // Outer-joined tables depend on the tables their ON clause references.
  std::vector<std::set<size_t>> outer_deps(bq->tables.size());
  for (size_t t = 0; t < bq->tables.size(); ++t) {
    if (!bq->tables[t].left_outer) continue;
    std::set<size_t> positions;
    for (const ExprPtr& c : bq->tables[t].outer_join_conjuncts) {
      CollectPositions(*c, *bq, &positions);
    }
    for (size_t p : positions) {
      size_t owner = TableOfPosition(*bq, p);
      if (owner != static_cast<size_t>(-1) && owner != t) {
        outer_deps[t].insert(owner);
      }
    }
  }

  // First table: cheapest non-outer candidate.
  size_t first = static_cast<size_t>(-1);
  double first_rows = 0;
  for (size_t t : remaining) {
    if (bq->tables[t].left_outer) continue;
    double est = cands[t].path.est_rows;
    if (first == static_cast<size_t>(-1) || est < first_rows) {
      first = t;
      first_rows = est;
    }
  }
  if (first == static_cast<size_t>(-1)) {
    return Status::Unsupported("query consists only of outer-joined tables");
  }

  OperatorPtr tree = make_scan(first);
  if (!zero_table.empty()) {
    tree = std::make_unique<FilterOp>(std::move(tree), zero_table);
  }
  std::set<size_t> joined{first};
  remaining.erase(first);
  double current_rows = first_rows;

  // Estimated rows of a candidate table under its pushed filters.
  auto table_rows = [&](size_t t) -> double {
    if (bq->tables[t].left_outer) {
      return static_cast<double>(std::max<uint64_t>(1, RowCountOf(*bq->tables[t].table)));
    }
    return cands[t].path.est_rows;
  };

  while (!remaining.empty()) {
    // Candidate choice: prefer connected tables with the smallest estimated
    // join result.
    size_t best_t = static_cast<size_t>(-1);
    bool best_connected = false;
    double best_result = 0;
    for (size_t t : remaining) {
      if (bq->tables[t].left_outer) {
        bool deps_ok = true;
        for (size_t d : outer_deps[t]) {
          if (joined.count(d) == 0) deps_ok = false;
        }
        if (!deps_ok) continue;
      }
      // Is t connected by an equi conjunct to the joined set?
      bool connected = false;
      double join_sel = 1.0;
      auto consider = [&](const Expr& c) {
        if (c.kind != ExprKind::kCompare || c.cmp_op != CmpOp::kEq) return;
        std::set<size_t> lpos, rpos;
        CollectPositions(*c.children[0], *bq, &lpos);
        CollectPositions(*c.children[1], *bq, &rpos);
        auto owner_set = [&](const std::set<size_t>& pos, std::set<size_t>* ts) {
          for (size_t p : pos) {
            size_t o = TableOfPosition(*bq, p);
            if (o != static_cast<size_t>(-1)) ts->insert(o);
          }
        };
        std::set<size_t> lt, rt;
        owner_set(lpos, &lt);
        owner_set(rpos, &rt);
        auto subset_of_joined = [&](const std::set<size_t>& s) {
          for (size_t x : s) {
            if (joined.count(x) == 0) return false;
          }
          return !s.empty();
        };
        auto is_t = [&](const std::set<size_t>& s) {
          return s.size() == 1 && *s.begin() == t;
        };
        if ((subset_of_joined(lt) && is_t(rt)) ||
            (subset_of_joined(rt) && is_t(lt))) {
          connected = true;
          // ndv-based selectivity when both sides are plain columns.
          double ndv = std::max(
              10.0, static_cast<double>(std::max<uint64_t>(
                        1, RowCountOf(*bq->tables[t].table))));
          const Expr& tcol = is_t(rt) ? *c.children[1] : *c.children[0];
          if (tcol.kind == ExprKind::kColumnRef) {
            size_t local = tcol.column_index - bq->tables[t].offset;
            const ColumnStats* s = StatsFor(*bq->tables[t].table, local);
            if (s != nullptr && s->ndv > 0) {
              ndv = static_cast<double>(s->ndv);
            }
          }
          join_sel = std::min(join_sel, 1.0 / ndv);
        }
      };
      if (bq->tables[t].left_outer) {
        for (const ExprPtr& c : bq->tables[t].outer_join_conjuncts) consider(*c);
      } else {
        for (const ConjunctInfo& c : conjuncts) {
          if (!c.placed && c.tables.count(t) > 0) consider(*c.expr);
        }
      }
      double result = connected
                          ? std::max(1.0, current_rows * table_rows(t) * join_sel)
                          : current_rows * table_rows(t);
      if (best_t == static_cast<size_t>(-1) ||
          (connected && !best_connected) ||
          (connected == best_connected && result < best_result)) {
        best_t = t;
        best_connected = connected;
        best_result = result;
      }
    }
    if (best_t == static_cast<size_t>(-1)) {
      return Status::Internal("join ordering failed (outer-join cycle?)");
    }
    size_t t = best_t;
    remaining.erase(t);
    const BoundTableRef& ref = bq->tables[t];
    bool outer = ref.left_outer;

    // Collect the join predicates that become placeable with t.
    std::vector<Expr*> now_placeable;
    if (outer) {
      for (const ExprPtr& c : ref.outer_join_conjuncts) {
        now_placeable.push_back(c.get());
      }
    }
    for (ConjunctInfo& c : conjuncts) {
      if (c.placed) continue;
      bool ok = true;
      for (size_t x : c.tables) {
        if (x != t && joined.count(x) == 0) ok = false;
      }
      if (!ok) continue;
      if (outer && c.tables.count(t) > 0) {
        // A WHERE predicate on an outer-joined table would change semantics
        // if pulled into the outer join; apply it after (as a filter) —
        // which matches SQL (it then rejects NULL-extended rows).
        continue;
      }
      c.placed = true;
      now_placeable.push_back(c.expr);
    }

    // Split into equi keys (S-side, t-side) and residual.
    std::vector<const Expr*> s_keys, t_keys, residual;
    for (Expr* c : now_placeable) {
      bool is_equi = false;
      if (c->kind == ExprKind::kCompare && c->cmp_op == CmpOp::kEq) {
        std::set<size_t> lpos, rpos;
        CollectPositions(*c->children[0], *bq, &lpos);
        CollectPositions(*c->children[1], *bq, &rpos);
        auto owners = [&](const std::set<size_t>& pos) {
          std::set<size_t> out;
          for (size_t p : pos) {
            size_t o = TableOfPosition(*bq, p);
            if (o != static_cast<size_t>(-1)) out.insert(o);
          }
          return out;
        };
        std::set<size_t> lt = owners(lpos), rt = owners(rpos);
        auto in_joined = [&](const std::set<size_t>& s) {
          if (s.empty()) return false;
          for (size_t x : s) {
            if (joined.count(x) == 0) return false;
          }
          return true;
        };
        auto is_t_only = [&](const std::set<size_t>& s) {
          return s.size() == 1 && *s.begin() == t;
        };
        if (in_joined(lt) && is_t_only(rt)) {
          s_keys.push_back(c->children[0].get());
          t_keys.push_back(c->children[1].get());
          is_equi = true;
        } else if (in_joined(rt) && is_t_only(lt)) {
          s_keys.push_back(c->children[1].get());
          t_keys.push_back(c->children[0].get());
          is_equi = true;
        }
      }
      if (!is_equi) residual.push_back(c);
    }

    // Join algorithm choice.
    bool built = false;
    uint64_t t_rows_raw = std::max<uint64_t>(1, RowCountOf(*ref.table));
    if (options_.enable_index_nl_join && !t_keys.empty()) {
      // Find an index on t whose leading columns are exactly covered by the
      // t-side key columns (plain refs).
      for (const IndexInfo* idx : ref.table->indexes) {
        std::vector<const Expr*> probe_exprs;
        bool match = true;
        for (size_t k = 0; k < idx->column_indices.size(); ++k) {
          const Expr* found = nullptr;
          for (size_t j = 0; j < t_keys.size(); ++j) {
            const Expr* tk = t_keys[j];
            if (tk->kind == ExprKind::kColumnRef &&
                tk->column_index == ref.offset + idx->column_indices[k]) {
              found = s_keys[j];
              break;
            }
          }
          if (found == nullptr) {
            match = k > 0;  // a strict prefix is acceptable
            break;
          }
          probe_exprs.push_back(found);
        }
        if (!match || probe_exprs.empty()) continue;
        // Cost: per outer row, one index descent plus one random heap fetch
        // per *matching* inner row (fan-out = rows / ndv of the probed
        // prefix), vs scanning t once for a hash join.
        double fanout = 1.0;
        {
          // Combined distinct count of the probed prefix: the product of the
          // per-column ndvs, capped at the table's cardinality.
          double ndv = 1.0;
          for (size_t k = 0; k < probe_exprs.size(); ++k) {
            size_t col = idx->column_indices[k];
            const ColumnStats* s = StatsFor(*ref.table, col);
            double col_ndv =
                s != nullptr && s->ndv > 0
                    ? static_cast<double>(s->ndv)
                    : std::max(1.0, static_cast<double>(t_rows_raw) / 100);
            ndv = std::min(ndv * col_ndv, static_cast<double>(t_rows_raw));
          }
          fanout = std::max(1.0, static_cast<double>(t_rows_raw) / ndv);
        }
        const StorageCosts tcost = ref.table->storage->ScanCosts(cost);
        double inl_cost;
        if (est.v2) {
          // Split per-engine costs: descent is page-priced for every
          // engine, but the per-match row fetch is an in-memory decode on
          // the columnar engine (OptimizerCosts::ForTable).
          const OptimizerCosts toc = OptimizerCosts::ForTable(*ref.table, cost);
          inl_cost = current_rows * toc.index_descent_us +
                     current_rows * fanout *
                         (toc.index_entry_cpu_us + toc.row_fetch_us);
        } else {
          inl_cost = current_rows * (tcost.random_page_us * 2) +
                     current_rows * fanout * tcost.random_page_us;
        }
        uint32_t t_pages = 1;
        if (auto p = ref.table->storage->NumPages(); p.ok()) {
          t_pages = std::max(1u, p.value());
        }
        double hash_cost = static_cast<double>(t_pages) * tcost.seq_page_us +
                           static_cast<double>(t_rows_raw) * tcost.tuple_cpu_us;
        if (inl_cost > hash_cost && probe_exprs.size() < idx->column_indices.size()) {
          continue;  // partial prefix and not cheaper: let hash handle it
        }
        if (inl_cost > hash_cost * 4) continue;
        // Residual: non-key join predicates + all single-table filters of t
        // (the index path replaces the chosen access path).
        std::vector<const Expr*> inl_residual = residual;
        for (const Expr* s : cands[t].singles) inl_residual.push_back(s);
        // Key equality beyond the probed prefix must be rechecked.
        for (size_t j = 0; j < t_keys.size(); ++j) {
          bool probed = false;
          for (size_t k = 0; k < probe_exprs.size(); ++k) {
            if (t_keys[j]->kind == ExprKind::kColumnRef &&
                t_keys[j]->column_index ==
                    ref.offset + idx->column_indices[k] &&
                probe_exprs[k] == s_keys[j]) {
              probed = true;
              break;
            }
          }
          if (!probed) {
            // Recheck via residual using the original conjunct; find it.
            for (Expr* c : now_placeable) {
              if (c->kind == ExprKind::kCompare && c->cmp_op == CmpOp::kEq &&
                  (c->children[0].get() == t_keys[j] ||
                   c->children[1].get() == t_keys[j])) {
                inl_residual.push_back(c);
                break;
              }
            }
          }
        }
        tree = std::make_unique<IndexNLJoinOp>(std::move(tree), ref.table, idx,
                                               ref.offset, probe_exprs,
                                               inl_residual, outer);
        built = true;
        break;
      }
    }
    if (!built && !t_keys.empty()) {
      // Hash join; t is the build side (its scan applies pushed filters).
      std::set<size_t> t_set{t};
      tree = std::make_unique<HashJoinOp>(
          make_scan(t), std::move(tree), t_keys, s_keys, residual,
          RangesFor(*bq, t_set), outer,
          static_cast<uint64_t>(std::max(0.0, cands[t].path.est_rows)));
      built = true;
    }
    if (!built) {
      std::set<size_t> t_set{t};
      tree = std::make_unique<NestedLoopsJoinOp>(std::move(tree), make_scan(t),
                                                 residual, RangesFor(*bq, t_set),
                                                 outer);
    }
    // Estimated join output rows, for EXPLAIN ANALYZE drift reporting.
    tree->set_est_rows(static_cast<uint64_t>(std::max(1.0, best_result)));
    joined.insert(t);
    current_rows = std::max(1.0, best_result);
  }

  // 4. Any conjuncts still unplaced (should not happen) become a filter.
  std::vector<const Expr*> leftover;
  for (ConjunctInfo& c : conjuncts) {
    if (!c.placed) leftover.push_back(c.expr);
  }
  if (!leftover.empty()) {
    tree = std::make_unique<FilterOp>(std::move(tree), leftover);
  }

  // 5. Aggregation.
  if (bq->has_aggregation) {
    std::vector<const Expr*> groups, aggs;
    for (const ExprPtr& g : bq->group_by) groups.push_back(g.get());
    for (const ExprPtr& a : bq->agg_calls) aggs.push_back(a.get());
    bool has_distinct_agg = false;
    for (const Expr* a : aggs) {
      if (a->agg_distinct) has_distinct_agg = true;
    }
    // Single-table scan-aggregate queries (the TPC-D Q1/Q6 shape) run as
    // one parallel partial-aggregation pipeline: scan, filter, and partial
    // aggregation all happen in the worker lanes; only merged groups cross
    // the gather barrier. DISTINCT aggregates are not losslessly mergeable
    // from partials and keep the serial HashAggOp.
    if (!has_distinct_agg && bq->tables.size() == 1 && parallel_eligible(0)) {
      std::vector<const Expr*> filters = cands[0].singles;
      filters.insert(filters.end(), zero_table.begin(), zero_table.end());
      filters.insert(filters.end(), leftover.begin(), leftover.end());
      tree = std::make_unique<GatherOp>(
          bq->tables[0].table, bq->tables[0].offset, bq->wide_width,
          std::move(filters), options_.dop,
          static_cast<uint64_t>(std::max(0.0, cands[0].path.est_rows)),
          groups, aggs);
    } else {
      tree = std::make_unique<HashAggOp>(
          std::move(tree), groups, aggs,
          static_cast<uint64_t>(std::max(0.0, current_rows)));
    }
    if (bq->having != nullptr) {
      tree = std::make_unique<FilterOp>(std::move(tree),
                                        std::vector<const Expr*>{bq->having.get()});
    }
  }

  // 6. Projection -> output rows.
  std::vector<const Expr*> select;
  for (const ExprPtr& e : bq->select_exprs) select.push_back(e.get());
  tree = std::make_unique<ProjectOp>(std::move(tree), select);

  if (bq->distinct) {
    // Cardinality hint only meaningful when no aggregation collapsed the
    // stream first.
    uint64_t est = bq->has_aggregation
                       ? 0
                       : static_cast<uint64_t>(std::max(0.0, current_rows));
    tree = std::make_unique<DistinctOp>(std::move(tree), est);
  }
  if (!bq->order_by.empty()) {
    std::vector<SortKey> keys;
    for (const BoundOrderKey& k : bq->order_by) {
      keys.push_back(SortKey{k.output_index, k.asc});
    }
    tree = std::make_unique<SortOp>(std::move(tree), keys);
  }
  if (!bq->final_project.empty()) {
    // Drop hidden sort columns.
    std::vector<const Expr*> fin;
    for (const ExprPtr& e : bq->final_project) fin.push_back(e.get());
    tree = std::make_unique<ProjectOp>(std::move(tree), fin);
  }
  if (bq->limit >= 0) {
    tree = std::make_unique<LimitOp>(std::move(tree), bq->limit);
  }

  PlanResult out;
  out.root = std::move(tree);
  out.runner = std::move(runner);
  return out;
}

std::string PlanChoices::Summary() const {
  std::string out = str::Format(
      "scans{seq=%d index=%d parallel=%d} joins{hash=%d index_nl=%d nl=%d} "
      "aggs{hash=%d partial=%d} sort=%d distinct=%d limit=%d materialize=%d "
      "gather{nodes=%d dop=%d} subplans=%d",
      seq_scans, index_scans, parallel_scans, hash_joins, index_nl_joins,
      nl_joins, hash_aggs, partial_aggs, sorts, distincts, limits,
      materializes, gather_nodes, gather_dop, subquery_plans);
  // Appended only when present, keeping the rendering byte-identical for
  // plans over row tables.
  if (columnar_scans > 0) {
    out += str::Format(" columnar_scans=%d", columnar_scans);
  }
  return out;
}

namespace {

/// Counts plan-node kinds by their Describe() name prefixes. The plan text
/// is the one stable cross-layer contract for node identity (tests already
/// byte-compare it), so EXPLAIN-style counting beats adding a virtual kind
/// to every operator.
void CountPlanText(const std::string& text, PlanChoices* c) {
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    size_t first = text.find_first_not_of(' ', start);
    if (first != std::string::npos && first < end) {
      const char* line = text.c_str() + first;
      auto has_prefix = [line](const char* p) {
        return std::strncmp(line, p, std::strlen(p)) == 0;
      };
      if (has_prefix("SeqScan(")) {
        ++c->seq_scans;
      } else if (has_prefix("ColumnarScan(")) {
        ++c->columnar_scans;
      } else if (has_prefix("IndexScan(")) {
        ++c->index_scans;
      } else if (has_prefix("ParallelSeqScan(")) {
        ++c->parallel_scans;
      } else if (has_prefix("HashJoin(") || has_prefix("HashLeftOuterJoin(")) {
        ++c->hash_joins;
      } else if (has_prefix("IndexNLJoin(") || has_prefix("IndexNLOuterJoin(")) {
        ++c->index_nl_joins;
      } else if (has_prefix("NLJoin(") || has_prefix("NLOuterJoin(")) {
        ++c->nl_joins;
      } else if (has_prefix("HashAggregate(")) {
        ++c->hash_aggs;
      } else if (has_prefix("PartialHashAggregate(")) {
        ++c->partial_aggs;
      } else if (has_prefix("Sort(")) {
        ++c->sorts;
      } else if (has_prefix("Distinct")) {
        ++c->distincts;
      } else if (has_prefix("Limit(")) {
        ++c->limits;
      } else if (has_prefix("Materialize")) {
        ++c->materializes;
      } else if (has_prefix("Gather(dop=")) {
        ++c->gather_nodes;
        c->gather_dop = std::atoi(line + std::strlen("Gather(dop="));
      }
    }
    start = end + 1;
  }
}

void CountSubqueries(const SubqueryRunnerImpl* runner, PlanChoices* c) {
  if (runner == nullptr) return;
  for (const auto& cs : runner->subqueries) {
    ++c->subquery_plans;
    if (cs->root != nullptr) CountPlanText(cs->root->DebugString(), c);
    CountSubqueries(cs->runner.get(), c);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Bind-value peeking: bucket classification for the plan-variant cache
// ---------------------------------------------------------------------------

int PeekBucket(double est_fraction) {
  if (est_fraction <= 0.001) return 0;
  if (est_fraction <= 0.02) return 1;
  if (est_fraction <= 0.2) return 2;
  return 3;
}

PeekClassifier BuildPeekClassifier(const BoundQuery& bq) {
  PeekClassifier out;
  for (const ExprPtr& c : bq.conjuncts) {
    if (c == nullptr) continue;
    std::set<size_t> positions;
    CollectPositions(*c, bq, &positions);
    std::set<size_t> tables;
    for (size_t p : positions) {
      size_t t = TableOfPosition(bq, p);
      if (t != static_cast<size_t>(-1)) tables.insert(t);
    }
    if (tables.size() != 1) continue;
    const BoundTableRef& t = bq.tables[*tables.begin()];
    ColCompare cc;
    if (!MatchColCompare(*c, t, &cc)) continue;
    PeekClassifier::Entry e;
    e.table = t.table;
    e.column = cc.column;
    e.op = cc.op;
    e.is_between = cc.is_between;
    e.value = cc.value->Clone();
    if (cc.value2 != nullptr) e.value2 = cc.value2->Clone();
    out.entries.push_back(std::move(e));
  }
  return out;
}

double PeekEstimate(const PeekClassifier& c, const std::vector<Value>& params) {
  std::map<const TableInfo*, double> per_table;
  EvalContext ec;
  ec.params = &params;
  for (const PeekClassifier::Entry& e : c.entries) {
    const ColumnStats* s = StatsFor(*e.table, e.column);
    Value v;
    if (!EvalExpr(*e.value, ec, &v).ok()) continue;
    double sel;
    if (e.is_between) {
      Value v2;
      if (e.value2 == nullptr || !EvalExpr(*e.value2, ec, &v2).ok()) continue;
      if (s == nullptr) {
        sel = selectivity::kDefaultRange / 2;
      } else {
        double hi = selectivity::LessThan(*s, v2, /*use_histogram=*/true) +
                    selectivity::Equals(*s, v2, /*use_histogram=*/true);
        double lo = selectivity::LessThan(*s, v, /*use_histogram=*/true);
        sel = std::max(0.0, std::min(1.0, hi) - lo);
      }
    } else if (s == nullptr) {
      sel = e.op == CmpOp::kEq ? selectivity::kDefaultEquals
                               : selectivity::kDefaultRange;
    } else {
      switch (e.op) {
        case CmpOp::kEq:
          sel = selectivity::Equals(*s, v, true);
          break;
        case CmpOp::kLt:
        case CmpOp::kLe:
          sel = selectivity::LessThan(*s, v, true);
          break;
        case CmpOp::kGt:
        case CmpOp::kGe:
          sel = selectivity::GreaterThan(*s, v, true);
          break;
        case CmpOp::kNe:
        default:
          sel = 1.0 - selectivity::Equals(*s, v, true);
          break;
      }
    }
    per_table.emplace(e.table, 1.0).first->second *= sel;
  }
  double min_frac = 1.0;
  for (const auto& kv : per_table) min_frac = std::min(min_frac, kv.second);
  return min_frac;
}

Result<PhysicalPlan> Optimizer::Plan(std::unique_ptr<BoundQuery> bq) {
  R3_ASSIGN_OR_RETURN(PlanResult res, PlanQueryTree(bq.get()));
  PhysicalPlan plan;
  plan.root = std::move(res.root);
  plan.runner = std::move(res.runner);
  plan.output_schema = bq->output_schema;
  plan.column_names = bq->column_names;
  plan.num_params = bq->num_params;
  plan.query = std::move(bq);
  if (plan.root != nullptr) CountPlanText(plan.root->DebugString(), &plan.choices);
  CountSubqueries(plan.runner.get(), &plan.choices);

  MetricsRegistry* metrics = metrics_ != nullptr ? metrics_ : GlobalMetrics();
  const PlanChoices& c = plan.choices;
  metrics->GetCounter("rdbms.optimizer.plans")->Add(1);
  metrics->GetCounter("rdbms.optimizer.seq_scans")->Add(c.seq_scans);
  metrics->GetCounter("rdbms.optimizer.index_scans")->Add(c.index_scans);
  metrics->GetCounter("rdbms.optimizer.parallel_scans")->Add(c.parallel_scans);
  metrics->GetCounter("rdbms.optimizer.hash_joins")->Add(c.hash_joins);
  metrics->GetCounter("rdbms.optimizer.index_nl_joins")->Add(c.index_nl_joins);
  metrics->GetCounter("rdbms.optimizer.nl_joins")->Add(c.nl_joins);
  metrics->GetCounter("rdbms.optimizer.sorts")->Add(c.sorts);
  metrics->GetCounter("rdbms.optimizer.gather_nodes")->Add(c.gather_nodes);
  return plan;
}

}  // namespace rdbms
}  // namespace r3
