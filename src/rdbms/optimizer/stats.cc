#include "rdbms/optimizer/stats.h"

#include <algorithm>

namespace r3 {
namespace rdbms {
namespace selectivity {

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

// Numeric position of v in [min, max] as a fraction; 0.5 if not estimable.
double Fraction(const ColumnStats& s, const Value& v) {
  if (!s.valid || s.min.is_null() || s.max.is_null()) return 0.5;
  if (v.type() == DataType::kString || s.min.type() == DataType::kString) {
    // Compare lexicographically at the first differing character depth.
    // Cheap heuristic: position of the first byte in [first(min), first(max)].
    const std::string& lo = s.min.string_value();
    const std::string& hi = s.max.string_value();
    const std::string& vs = v.string_value();
    if (lo.empty() || hi.empty() || vs.empty()) return 0.5;
    double a = static_cast<unsigned char>(lo[0]);
    double b = static_cast<unsigned char>(hi[0]);
    double x = static_cast<unsigned char>(vs[0]);
    if (b <= a) return 0.5;
    return Clamp01((x - a) / (b - a));
  }
  double lo = s.min.AsDouble();
  double hi = s.max.AsDouble();
  if (hi <= lo) {
    // Degenerate domain: all rows share one value.
    return v.AsDouble() < lo ? 0.0 : 1.0;
  }
  return Clamp01((v.AsDouble() - lo) / (hi - lo));
}

// Position of v within one histogram bucket (lo, hi] as a fraction.
double BucketFraction(const Value& lo, const Value& hi, const Value& v) {
  if (v.type() == DataType::kString || hi.type() == DataType::kString) {
    return 0.5;  // no within-bucket interpolation for strings
  }
  double a = lo.is_null() ? hi.AsDouble() : lo.AsDouble();
  double b = hi.AsDouble();
  if (b <= a) return 1.0;
  return Clamp01((v.AsDouble() - a) / (b - a));
}

// Index of the first bucket whose upper bound is >= v, or hist.size() when
// v exceeds the domain.
size_t FindBucket(const std::vector<HistogramBucket>& hist, const Value& v) {
  size_t lo = 0, hi = hist.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (hist[mid].upper.Compare(v) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Fraction of the column's *rows* (null and non-null) that the histogram
// covers; range estimates scale by it so NULL-heavy columns do not
// over-estimate.
double NonNullFraction(const ColumnStats& s) {
  double total = static_cast<double>(s.hist_rows + s.null_count);
  if (total <= 0) return 1.0;
  return static_cast<double>(s.hist_rows) / total;
}

// P(col < v) over the non-null rows, from the histogram.
double HistLessThan(const ColumnStats& s, const Value& v) {
  if (s.hist_rows == 0) return 0.0;
  if (s.min.Compare(v) >= 0) return 0.0;
  size_t b = FindBucket(s.hist, v);
  if (b >= s.hist.size()) return 1.0;
  uint64_t below = 0;
  for (size_t i = 0; i < b; ++i) below += s.hist[i].rows;
  const Value& lo = b == 0 ? s.min : s.hist[b - 1].upper;
  double within = BucketFraction(lo, s.hist[b].upper, v) *
                  static_cast<double>(s.hist[b].rows);
  return Clamp01((static_cast<double>(below) + within) /
                 static_cast<double>(s.hist_rows));
}

// P(col = v) over the non-null rows, from the histogram.
double HistEquals(const ColumnStats& s, const Value& v) {
  if (s.hist_rows == 0) return 0.0;
  if (s.min.Compare(v) > 0 || s.max.Compare(v) < 0) return 0.0;
  size_t b = FindBucket(s.hist, v);
  if (b >= s.hist.size()) return 0.0;
  const HistogramBucket& bk = s.hist[b];
  double per_value = static_cast<double>(bk.rows) /
                     static_cast<double>(std::max<uint64_t>(1, bk.ndv));
  return Clamp01(per_value / static_cast<double>(s.hist_rows));
}

}  // namespace

double Equals(const ColumnStats& s, const Value& v, bool use_histogram) {
  if (use_histogram && !s.hist.empty()) {
    return Clamp01(HistEquals(s, v) * NonNullFraction(s));
  }
  if (!s.valid || s.ndv == 0) return kDefaultEquals;
  // Out-of-domain constants match nothing.
  if (s.min.Compare(v) > 0 || s.max.Compare(v) < 0) return 0.0;
  return Clamp01(1.0 / static_cast<double>(s.ndv));
}

double LessThan(const ColumnStats& s, const Value& v, bool use_histogram) {
  if (use_histogram && !s.hist.empty()) {
    return Clamp01(HistLessThan(s, v) * NonNullFraction(s));
  }
  if (!s.valid) return kDefaultRange;
  if (s.min.Compare(v) > 0) return 0.0;
  if (s.max.Compare(v) < 0) return 1.0;
  return Fraction(s, v);
}

double GreaterThan(const ColumnStats& s, const Value& v, bool use_histogram) {
  if (use_histogram && !s.hist.empty()) {
    double gt = 1.0 - HistLessThan(s, v) - HistEquals(s, v);
    return Clamp01(std::max(0.0, gt) * NonNullFraction(s));
  }
  if (!s.valid) return kDefaultRange;
  if (s.max.Compare(v) < 0) return 0.0;
  if (s.min.Compare(v) > 0) return 1.0;
  return Clamp01(1.0 - Fraction(s, v));
}

}  // namespace selectivity

void BuildEquiHeightHistogram(std::vector<Value> sorted_values,
                              ColumnStats* s) {
  s->hist.clear();
  s->hist_rows = static_cast<uint64_t>(sorted_values.size());
  if (sorted_values.empty()) return;
  const size_t n = sorted_values.size();
  const size_t nbuckets =
      std::max<size_t>(1, std::min(kHistogramBuckets,
                                   static_cast<size_t>(s->ndv == 0 ? n : s->ndv)));
  const size_t target = (n + nbuckets - 1) / nbuckets;  // rows per bucket

  HistogramBucket cur;
  size_t cur_rows = 0;
  size_t cur_ndv = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool new_value = i == 0 || sorted_values[i].Compare(sorted_values[i - 1]) != 0;
    if (new_value && cur_rows >= target) {
      // Close the bucket at a value boundary: equal values never straddle
      // buckets, so per-bucket frequency stays exact for heavy hitters.
      cur.upper = sorted_values[i - 1];
      cur.rows = cur_rows;
      cur.ndv = cur_ndv;
      s->hist.push_back(std::move(cur));
      cur = HistogramBucket();
      cur_rows = 0;
      cur_ndv = 0;
    }
    if (new_value) ++cur_ndv;
    ++cur_rows;
  }
  cur.upper = sorted_values.back();
  cur.rows = cur_rows;
  cur.ndv = cur_ndv;
  s->hist.push_back(std::move(cur));
}

}  // namespace rdbms
}  // namespace r3
