#include "rdbms/optimizer/stats.h"

#include <algorithm>

namespace r3 {
namespace rdbms {
namespace selectivity {

namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

// Numeric position of v in [min, max] as a fraction; 0.5 if not estimable.
double Fraction(const ColumnStats& s, const Value& v) {
  if (!s.valid || s.min.is_null() || s.max.is_null()) return 0.5;
  if (v.type() == DataType::kString || s.min.type() == DataType::kString) {
    // Compare lexicographically at the first differing character depth.
    // Cheap heuristic: position of the first byte in [first(min), first(max)].
    const std::string& lo = s.min.string_value();
    const std::string& hi = s.max.string_value();
    const std::string& vs = v.string_value();
    if (lo.empty() || hi.empty() || vs.empty()) return 0.5;
    double a = static_cast<unsigned char>(lo[0]);
    double b = static_cast<unsigned char>(hi[0]);
    double x = static_cast<unsigned char>(vs[0]);
    if (b <= a) return 0.5;
    return Clamp01((x - a) / (b - a));
  }
  double lo = s.min.AsDouble();
  double hi = s.max.AsDouble();
  if (hi <= lo) {
    // Degenerate domain: all rows share one value.
    return v.AsDouble() < lo ? 0.0 : 1.0;
  }
  return Clamp01((v.AsDouble() - lo) / (hi - lo));
}

}  // namespace

double Equals(const ColumnStats& s, const Value& v) {
  if (!s.valid || s.ndv == 0) return kDefaultEquals;
  // Out-of-domain constants match nothing.
  if (s.min.Compare(v) > 0 || s.max.Compare(v) < 0) return 0.0;
  return Clamp01(1.0 / static_cast<double>(s.ndv));
}

double LessThan(const ColumnStats& s, const Value& v) {
  if (!s.valid) return kDefaultRange;
  if (s.min.Compare(v) > 0) return 0.0;
  if (s.max.Compare(v) < 0) return 1.0;
  return Fraction(s, v);
}

double GreaterThan(const ColumnStats& s, const Value& v) {
  if (!s.valid) return kDefaultRange;
  if (s.max.Compare(v) < 0) return 0.0;
  if (s.min.Compare(v) > 0) return 1.0;
  return Clamp01(1.0 - Fraction(s, v));
}

}  // namespace selectivity
}  // namespace rdbms
}  // namespace r3
