#include "rdbms/optimizer/optimizer_costs.h"

#include "common/str_util.h"
#include "rdbms/storage/storage_engine.h"

namespace r3 {
namespace rdbms {

OptimizerCosts OptimizerCosts::ForTable(const TableInfo& t,
                                        const CostModel& cost) {
  const StorageCosts base = t.storage->ScanCosts(cost);
  OptimizerCosts oc;
  oc.seq_page_us = base.seq_page_us;
  oc.random_page_us = base.random_page_us;
  oc.tuple_cpu_us = base.tuple_cpu_us;
  // B-tree descent touches buffer-pool pages for every engine; assume a
  // two-level descent (root + leaf) at the global random-page rate.
  oc.index_descent_us = 2.0 * static_cast<double>(cost.random_page_read_us);
  // The executor charges one dbms-tuple CPU unit per index entry visited,
  // engine-independent (IndexScanOp::NextBatchImpl).
  oc.index_entry_cpu_us = static_cast<double>(cost.dbms_tuple_cpu_us);
  switch (t.storage->kind()) {
    case EngineKind::kColumnar:
      // ColumnarEngine::Get decodes ncols values from memory-resident
      // vectors and charges exactly tuple_cpu_us — no page I/O.
      oc.row_fetch_us = base.tuple_cpu_us;
      break;
    case EngineKind::kRowHeap:
    default:
      // Heap fetch by RID: one random page read (plus the per-tuple CPU
      // already counted via index_entry_cpu_us).
      oc.row_fetch_us = base.random_page_us;
      break;
  }
  return oc;
}

std::string OptimizerCosts::Describe(const std::string& table_name) const {
  return str::Format(
      "Costs(%s): seq_page=%.0f random_page=%.0f tuple_cpu=%.1f "
      "index_descent=%.0f index_entry_cpu=%.1f row_fetch=%.1f",
      table_name.c_str(), seq_page_us, random_page_us, tuple_cpu_us,
      index_descent_us, index_entry_cpu_us, row_fetch_us);
}

}  // namespace rdbms
}  // namespace r3
