#ifndef R3DB_RDBMS_OPTIMIZER_OPTIMIZER_COSTS_H_
#define R3DB_RDBMS_OPTIMIZER_OPTIMIZER_COSTS_H_

#include <string>

#include "common/cost_model.h"
#include "rdbms/catalog.h"

namespace r3 {
namespace rdbms {

/// Per-engine optimizer cost structure (MariaDB `optimizer_costs.h` style):
/// one calibrated cost table per storage engine instead of one global
/// CostModel shared by every access path.
///
/// The v2 refinement over the raw `StorageCosts` triple is splitting index
/// access into the pieces that actually differ per engine:
///   - `index_descent_us`: one B-tree root-to-leaf descent. Index pages live
///     in the buffer pool for *both* engines, so this is page-priced for
///     both.
///   - `index_entry_cpu_us`: CPU per index entry visited. The executor
///     charges `dbms_tuple_cpu_us` per entry regardless of engine.
///   - `row_fetch_us`: materializing one table row by RID after an index
///     match. Row heap: a random heap-page read. Columnar: an in-memory
///     decode of `ncols` values (`ChargeColumnarValue(ncols)` in
///     `ColumnarEngine::Get`) — the calibration PR 6 deliberately skipped by
///     pricing every columnar random access at the full page cost.
///
/// Only the optimizer-v2 path (behind `PlannerOptions::bind_peeking`)
/// consults the split fields; the legacy path keeps using the raw
/// `StorageCosts` arithmetic bit for bit.
struct OptimizerCosts {
  double seq_page_us = 0;
  double random_page_us = 0;
  double tuple_cpu_us = 0;

  double index_descent_us = 0;
  double index_entry_cpu_us = 0;
  double row_fetch_us = 0;

  /// Derives the per-engine cost table for `t` from its engine's ScanCosts.
  static OptimizerCosts ForTable(const TableInfo& t, const CostModel& cost);

  /// One-line rendering for EXPLAIN tooling.
  std::string Describe(const std::string& table_name) const;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_OPTIMIZER_OPTIMIZER_COSTS_H_
