#ifndef R3DB_RDBMS_OPTIMIZER_STATS_H_
#define R3DB_RDBMS_OPTIMIZER_STATS_H_

#include <cstdint>
#include <vector>

#include "rdbms/value.h"

namespace r3 {
namespace rdbms {

/// Per-column optimizer statistics, produced by ANALYZE.
struct ColumnStats {
  bool valid = false;
  Value min;
  Value max;
  uint64_t ndv = 0;         ///< number of distinct values (exact at our scale)
  uint64_t null_count = 0;
};

/// Per-table optimizer statistics.
struct TableStats {
  bool valid = false;
  uint64_t row_count = 0;
  uint64_t total_bytes = 0;
  std::vector<ColumnStats> columns;
};

/// Selectivity estimation used by access-path selection.
///
/// When the optimizer cannot see the comparison constant — the paper's
/// Open SQL case, where SAP translates every literal into a `?` parameter —
/// these functions are not called at all and the planner falls back to a
/// blind index-preferring heuristic (Section 4.1 / Table 6 of the paper).
namespace selectivity {

/// P(col = v). 1/ndv, clamped.
double Equals(const ColumnStats& s, const Value& v);

/// P(col < v) (or <=; we do not distinguish at estimation granularity).
double LessThan(const ColumnStats& s, const Value& v);

/// P(col > v).
double GreaterThan(const ColumnStats& s, const Value& v);

/// Fallback when nothing is known.
inline constexpr double kDefaultEquals = 0.01;
inline constexpr double kDefaultRange = 1.0 / 3.0;

}  // namespace selectivity
}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_OPTIMIZER_STATS_H_
