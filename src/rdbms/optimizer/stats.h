#ifndef R3DB_RDBMS_OPTIMIZER_STATS_H_
#define R3DB_RDBMS_OPTIMIZER_STATS_H_

#include <cstdint>
#include <vector>

#include "rdbms/value.h"

namespace r3 {
namespace rdbms {

/// One bucket of an equi-height histogram. Buckets partition the sorted
/// non-null values of a column; `upper` is the largest value in the bucket
/// (inclusive). The lower edge is the previous bucket's `upper`, exclusive
/// (the first bucket's lower edge is the column min, inclusive).
struct HistogramBucket {
  Value upper;
  uint64_t rows = 0;  ///< values in this bucket
  uint64_t ndv = 0;   ///< distinct values in this bucket
};

/// Per-column optimizer statistics, produced by ANALYZE.
struct ColumnStats {
  bool valid = false;
  Value min;
  Value max;
  uint64_t ndv = 0;         ///< number of distinct values (exact at our scale)
  uint64_t null_count = 0;

  /// Equi-height histogram over the non-null values (empty = none built).
  /// ANALYZE always builds it, but the planner only consults it when
  /// `PlannerOptions::bind_peeking` is on — with the knob off, estimation
  /// stays byte-identical to the min/max+ndv interpolation below.
  std::vector<HistogramBucket> hist;
  uint64_t hist_rows = 0;  ///< total non-null rows behind `hist`
};

/// Number of buckets ANALYZE targets (fewer when ndv is smaller).
inline constexpr size_t kHistogramBuckets = 64;

/// Per-table optimizer statistics.
struct TableStats {
  bool valid = false;
  uint64_t row_count = 0;
  uint64_t total_bytes = 0;
  std::vector<ColumnStats> columns;
};

/// Selectivity estimation used by access-path selection.
///
/// When the optimizer cannot see the comparison constant — the paper's
/// Open SQL case, where SAP translates every literal into a `?` parameter —
/// these functions are not called at all and the planner falls back to a
/// blind index-preferring heuristic (Section 4.1 / Table 6 of the paper).
///
/// With `use_histogram` (the optimizer-v2 path behind the bind-peeking
/// knob), estimates route through the column's equi-height histogram when
/// one exists, falling back to the interpolation path for histogram-less
/// columns. The default keeps the original arithmetic bit for bit.
namespace selectivity {

/// P(col = v). 1/ndv, clamped; with a histogram, bucket-rows / bucket-ndv.
double Equals(const ColumnStats& s, const Value& v, bool use_histogram = false);

/// P(col < v) (or <=; we do not distinguish at estimation granularity).
double LessThan(const ColumnStats& s, const Value& v,
                bool use_histogram = false);

/// P(col > v).
double GreaterThan(const ColumnStats& s, const Value& v,
                   bool use_histogram = false);

/// Fallback when nothing is known.
inline constexpr double kDefaultEquals = 0.01;
inline constexpr double kDefaultRange = 1.0 / 3.0;

}  // namespace selectivity

/// Builds an equi-height histogram from the column's value sample.
/// `sorted_values` must be sorted ascending (Value::Compare order) and
/// contain no NULLs; the function fills `s->hist` / `s->hist_rows`.
/// Bucket edges never split runs of equal values, so heavy hitters keep
/// accurate per-bucket frequency.
void BuildEquiHeightHistogram(std::vector<Value> sorted_values,
                              ColumnStats* s);

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_OPTIMIZER_STATS_H_
