#include <algorithm>
#include <unordered_map>

#include "common/str_util.h"
#include "rdbms/exec/agg_state.h"
#include "rdbms/exec/executor.h"
#include "rdbms/index/key_codec.h"

namespace r3 {
namespace rdbms {

namespace {

std::string Indent(const std::string& s) {
  std::string out;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) end = s.size();
    out += "  " + s.substr(start, end - start) + "\n";
    start = end + 1;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

// Cap on speculative reserve() sizing so a wild cardinality estimate cannot
// allocate an absurd table up front.
constexpr uint64_t kMaxReserve = 1u << 20;

}  // namespace

HashAggOp::HashAggOp(OperatorPtr child, std::vector<const Expr*> group_exprs,
                     std::vector<const Expr*> agg_calls,
                     uint64_t est_input_rows)
    : child_(std::move(child)),
      est_input_rows_(est_input_rows),
      group_exprs_(std::move(group_exprs)),
      agg_calls_(std::move(agg_calls)) {}

Status HashAggOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  results_.clear();
  pos_ = 0;
  R3_RETURN_IF_ERROR(child_->Open(ctx));

  struct Group {
    Row keys;
    std::vector<AggState> states;
  };
  std::unordered_map<std::string, Group> groups;
  if (est_input_rows_ > 0) {
    groups.reserve(static_cast<size_t>(
        std::min<uint64_t>(est_input_rows_, kMaxReserve)));
  }

  Row keys;
  std::string key;  // reused encode buffer — no per-row allocation
  EvalContext ec = ctx_->MakeEvalContext(nullptr);
  while (true) {
    child_batch_.Reset(ctx->batch_size);
    R3_ASSIGN_OR_RETURN(bool ok, child_->NextBatch(&child_batch_));
    if (!ok) break;
    for (size_t r = 0; r < child_batch_.size(); ++r) {
      ctx_->clock->ChargeDbmsTuple();
      ec.row = &child_batch_.row(r);
      key.clear();
      keys.clear();
      for (const Expr* g : group_exprs_) {
        Value v;
        R3_RETURN_IF_ERROR(EvalExpr(*g, ec, &v));
        key_codec::EncodeValue(v, &key);
        keys.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        it->second.keys = keys;
        it->second.states.resize(agg_calls_.size());
      }
      for (size_t i = 0; i < agg_calls_.size(); ++i) {
        const Expr& call = *agg_calls_[i];
        Value arg;
        if (call.agg_func != AggFunc::kCountStar) {
          R3_RETURN_IF_ERROR(EvalExpr(*call.children[0], ec, &arg));
        }
        it->second.states[i].Accumulate(call, arg);
      }
    }
  }
  R3_RETURN_IF_ERROR(child_->Close());

  if (groups.empty() && group_exprs_.empty()) {
    // Aggregates over empty input without GROUP BY: one row of "empties".
    Row out;
    for (const Expr* call : agg_calls_) {
      AggState empty;
      out.push_back(empty.Finalize(*call));
    }
    results_.push_back(std::move(out));
    return Status::OK();
  }
  // Emit in encoded-key order (what the previous std::map implementation
  // produced) so result order stays deterministic.
  std::vector<std::pair<const std::string*, Group*>> ordered;
  ordered.reserve(groups.size());
  for (auto& [k, g] : groups) ordered.emplace_back(&k, &g);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  results_.reserve(ordered.size());
  for (auto& [k, g] : ordered) {
    Row out = std::move(g->keys);
    for (size_t i = 0; i < agg_calls_.size(); ++i) {
      out.push_back(g->states[i].Finalize(*agg_calls_[i]));
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashAggOp::NextBatchImpl(RowBatch* out) {
  while (!out->full() && pos_ < results_.size()) {
    out->AppendRow() = results_[pos_++];  // copy: results_ replay on re-open
  }
  return !out->empty();
}

Status HashAggOp::CloseImpl() {
  results_.clear();
  pos_ = 0;
  return Status::OK();
}

std::string HashAggOp::Describe(bool analyze) const {
  std::string out = "HashAggregate(groups=[";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i != 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += "], aggs=[";
  for (size_t i = 0; i < agg_calls_.size(); ++i) {
    if (i != 0) out += ", ";
    out += agg_calls_[i]->ToString();
  }
  return out + "])" + StatsSuffix(analyze) + "\n" +
         Indent(child_->Describe(analyze));
}

}  // namespace rdbms
}  // namespace r3
