#include <map>
#include <set>

#include "common/str_util.h"
#include "rdbms/exec/executor.h"
#include "rdbms/index/key_codec.h"

namespace r3 {
namespace rdbms {

namespace {

std::string Indent(const std::string& s) {
  std::string out;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) end = s.size();
    out += "  " + s.substr(start, end - start) + "\n";
    start = end + 1;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

}  // namespace

/// Accumulator for one aggregate call within one group.
struct HashAggOp::AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min;
  Value max;
  std::set<std::string> distinct;  // encoded values, for DISTINCT aggs

  void Accumulate(const Expr& call, const Value& v) {
    if (call.agg_func == AggFunc::kCountStar) {
      ++count;
      return;
    }
    if (v.is_null()) return;  // SQL: aggregates ignore NULLs
    if (call.agg_distinct) {
      if (!distinct.insert(key_codec::Encode(v)).second) return;
    }
    ++count;
    switch (call.agg_func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == DataType::kInt64 && sum_is_int) {
          isum += v.int_value();
        } else {
          sum_is_int = false;
        }
        sum += v.AsDouble();
        break;
      case AggFunc::kMin:
        if (min.is_null() || v.Compare(min) < 0) min = v;
        break;
      case AggFunc::kMax:
        if (max.is_null() || v.Compare(max) > 0) max = v;
        break;
    }
  }

  Value Finalize(const Expr& call) const {
    switch (call.agg_func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null(DataType::kDouble);
        if (sum_is_int) return Value::Int(isum);
        return Value::Dbl(sum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null(DataType::kDouble);
        return Value::Dbl(sum / static_cast<double>(count));
      case AggFunc::kMin:
        return min;
      case AggFunc::kMax:
        return max;
    }
    return Value::Null();
  }
};

HashAggOp::HashAggOp(OperatorPtr child, std::vector<const Expr*> group_exprs,
                     std::vector<const Expr*> agg_calls)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      agg_calls_(std::move(agg_calls)) {}

Status HashAggOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  results_.clear();
  pos_ = 0;
  R3_RETURN_IF_ERROR(child_->Open(ctx));

  struct Group {
    Row keys;
    std::vector<AggState> states;
  };
  // std::map keeps groups in key order — harmless determinism bonus.
  std::map<std::string, Group> groups;

  Row row;
  size_t input_rows = 0;
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, child_->Next(&row));
    if (!ok) break;
    ++input_rows;
    ctx_->clock->ChargeDbmsTuple();
    EvalContext ec = ctx_->MakeEvalContext(&row);
    Row keys;
    keys.reserve(group_exprs_.size());
    for (const Expr* g : group_exprs_) {
      Value v;
      R3_RETURN_IF_ERROR(EvalExpr(*g, ec, &v));
      keys.push_back(std::move(v));
    }
    std::string key = key_codec::Encode(keys);
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      it->second.keys = std::move(keys);
      it->second.states.resize(agg_calls_.size());
    }
    for (size_t i = 0; i < agg_calls_.size(); ++i) {
      const Expr& call = *agg_calls_[i];
      Value arg;
      if (call.agg_func != AggFunc::kCountStar) {
        R3_RETURN_IF_ERROR(EvalExpr(*call.children[0], ec, &arg));
      }
      it->second.states[i].Accumulate(call, arg);
    }
  }
  R3_RETURN_IF_ERROR(child_->Close());

  if (groups.empty() && group_exprs_.empty()) {
    // Aggregates over empty input without GROUP BY: one row of "empties".
    Row out;
    for (const Expr* call : agg_calls_) {
      AggState empty;
      out.push_back(empty.Finalize(*call));
    }
    results_.push_back(std::move(out));
    return Status::OK();
  }
  results_.reserve(groups.size());
  for (auto& [key, g] : groups) {
    Row out = std::move(g.keys);
    for (size_t i = 0; i < agg_calls_.size(); ++i) {
      out.push_back(g.states[i].Finalize(*agg_calls_[i]));
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashAggOp::Next(Row* out) {
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  return true;
}

Status HashAggOp::Close() {
  results_.clear();
  pos_ = 0;
  return Status::OK();
}

std::string HashAggOp::DebugString() const {
  std::string out = "HashAggregate(groups=[";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i != 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += "], aggs=[";
  for (size_t i = 0; i < agg_calls_.size(); ++i) {
    if (i != 0) out += ", ";
    out += agg_calls_[i]->ToString();
  }
  return out + "])\n" + Indent(child_->DebugString());
}

}  // namespace rdbms
}  // namespace r3
