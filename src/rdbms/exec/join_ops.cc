#include <algorithm>

#include "common/str_util.h"
#include "rdbms/exec/executor.h"
#include "rdbms/exec/parallel_ops.h"
#include "rdbms/index/key_codec.h"

namespace r3 {
namespace rdbms {

namespace {

std::string Indent(const std::string& s) {
  std::string out;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) end = s.size();
    out += "  " + s.substr(start, end - start) + "\n";
    start = end + 1;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

void MergeRanges(const Row& src, const std::vector<FilledRange>& ranges,
                 Row* dst) {
  for (const FilledRange& r : ranges) {
    for (size_t i = 0; i < r.width; ++i) {
      (*dst)[r.offset + i] = src[r.offset + i];
    }
  }
}

void NullRanges(const std::vector<FilledRange>& ranges, Row* dst) {
  for (const FilledRange& r : ranges) {
    for (size_t i = 0; i < r.width; ++i) {
      (*dst)[r.offset + i] = Value::Null();
    }
  }
}

constexpr uint64_t kMaxReserve = 1u << 20;

}  // namespace

Status EvalJoinKey(const std::vector<const Expr*>& keys, const EvalContext& ec,
                   std::string* out, bool* null_key) {
  out->clear();
  *null_key = false;
  for (const Expr* k : keys) {
    Value v;
    R3_RETURN_IF_ERROR(EvalExpr(*k, ec, &v));
    if (v.is_null()) {
      *null_key = true;
      return Status::OK();
    }
    // Normalize numerics so INT 5 and DECIMAL 5.00 and DOUBLE 5.0 meet.
    if (IsNumeric(v.type()) && v.type() != DataType::kDouble) {
      v = Value::Dbl(v.AsDouble());
    }
    key_codec::EncodeValue(v, out);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// HashJoinOp
// ---------------------------------------------------------------------------

HashJoinOp::HashJoinOp(OperatorPtr build, OperatorPtr probe,
                       std::vector<const Expr*> build_keys,
                       std::vector<const Expr*> probe_keys,
                       std::vector<const Expr*> residual,
                       std::vector<FilledRange> build_ranges,
                       bool preserve_probe, uint64_t est_build_rows)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)),
      residual_(std::move(residual)),
      build_ranges_(std::move(build_ranges)),
      preserve_probe_(preserve_probe),
      est_build_rows_(est_build_rows) {}

Status HashJoinOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  table_.clear();
  matches_ = nullptr;
  match_pos_ = 0;
  probe_done_ = false;
  have_probe_ = false;
  emitted_for_probe_ = false;
  probe_batch_.Clear();
  probe_pos_ = 0;

  if (est_build_rows_ > 0) {
    table_.reserve(
        static_cast<size_t>(std::min<uint64_t>(est_build_rows_, kMaxReserve)));
  }
  // A Gather build child runs the scan + key evaluation on its worker pool
  // (partitioned build); the serial path drains the child batch by batch
  // (probe_batch_ doubles as the drain scratch until probing starts).
  if (auto* gather = dynamic_cast<GatherOp*>(build_.get())) {
    R3_RETURN_IF_ERROR(
        gather->BuildJoinTable(ctx, build_keys_, &table_, est_build_rows_));
    return probe_->Open(ctx);
  }
  R3_RETURN_IF_ERROR(build_->Open(ctx));
  EvalContext ec = ctx_->MakeEvalContext(nullptr);
  while (true) {
    probe_batch_.Reset(ctx->batch_size);
    R3_ASSIGN_OR_RETURN(bool ok, build_->NextBatch(&probe_batch_));
    if (!ok) break;
    for (size_t i = 0; i < probe_batch_.size(); ++i) {
      ctx_->clock->ChargeDbmsTuple();
      ec.row = &probe_batch_.row(i);
      bool null_key = false;
      R3_RETURN_IF_ERROR(
          EvalJoinKey(build_keys_, ec, &key_scratch_, &null_key));
      if (null_key) continue;
      table_[key_scratch_].push_back(std::move(probe_batch_.row(i)));
    }
  }
  R3_RETURN_IF_ERROR(build_->Close());
  probe_batch_.Clear();
  return probe_->Open(ctx);
}

Result<bool> HashJoinOp::NextBatchImpl(RowBatch* out) {
  EvalContext ec = ctx_->MakeEvalContext(nullptr);
  while (!probe_done_) {
    if (!have_probe_) {
      if (probe_pos_ >= probe_batch_.size()) {
        probe_batch_.Reset(out->capacity());
        R3_ASSIGN_OR_RETURN(bool ok, probe_->NextBatch(&probe_batch_));
        if (!ok) {
          probe_done_ = true;
          break;
        }
        probe_pos_ = 0;
      }
      ctx_->clock->ChargeDbmsTuple();
      ec.row = &probe_batch_.row(probe_pos_);
      bool null_key = false;
      R3_RETURN_IF_ERROR(
          EvalJoinKey(probe_keys_, ec, &key_scratch_, &null_key));
      if (null_key) {
        matches_ = nullptr;
      } else {
        auto it = table_.find(key_scratch_);
        matches_ = it == table_.end() ? nullptr : &it->second;
      }
      match_pos_ = 0;
      emitted_for_probe_ = false;
      have_probe_ = true;
    }
    const Row& probe_row = probe_batch_.row(probe_pos_);
    if (matches_ != nullptr) {
      // matches_ stays valid across suspensions: unordered_map values are
      // node-stable and the table is immutable during probing.
      while (match_pos_ < matches_->size()) {
        if (out->full()) return true;
        Row& candidate = out->AppendRow();
        candidate = probe_row;
        MergeRanges((*matches_)[match_pos_], build_ranges_, &candidate);
        ++match_pos_;
        ec.row = &candidate;
        R3_ASSIGN_OR_RETURN(bool pass, EvalPredicates(residual_, ec));
        if (pass) {
          emitted_for_probe_ = true;
        } else {
          out->PopRow();
        }
      }
    }
    // This probe row has no (further) matches.
    if (preserve_probe_ && !emitted_for_probe_) {
      if (out->full()) return true;
      Row& preserved = out->AppendRow();
      preserved = probe_row;
      NullRanges(build_ranges_, &preserved);
      emitted_for_probe_ = true;
    }
    have_probe_ = false;
    ++probe_pos_;
  }
  return !out->empty();
}

Status HashJoinOp::CloseImpl() {
  table_.clear();
  return probe_->Close();
}

std::string HashJoinOp::Describe(bool analyze) const {
  std::string out = preserve_probe_ ? "HashLeftOuterJoin(" : "HashJoin(";
  for (size_t i = 0; i < build_keys_.size(); ++i) {
    if (i != 0) out += ", ";
    out += build_keys_[i]->ToString() + "=" + probe_keys_[i]->ToString();
  }
  for (const Expr* r : residual_) out += ", " + r->ToString();
  out += ")";
  return out + StatsSuffix(analyze) + "\n" + Indent(build_->Describe(analyze)) +
         "\n" + Indent(probe_->Describe(analyze));
}

// ---------------------------------------------------------------------------
// IndexNLJoinOp
// ---------------------------------------------------------------------------

IndexNLJoinOp::IndexNLJoinOp(OperatorPtr left, const TableInfo* table,
                             const IndexInfo* index, size_t table_offset,
                             std::vector<const Expr*> key_exprs,
                             std::vector<const Expr*> residual,
                             bool preserve_left)
    : left_(std::move(left)),
      table_(table),
      index_(index),
      table_offset_(table_offset),
      key_exprs_(std::move(key_exprs)),
      residual_(std::move(residual)),
      preserve_left_(preserve_left) {}

Status IndexNLJoinOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  left_done_ = false;
  have_left_ = false;
  cursor_.reset();
  emitted_for_left_ = false;
  left_batch_.Clear();
  left_pos_ = 0;
  return left_->Open(ctx);
}

Status IndexNLJoinOp::BeginProbe(EvalContext* ec) {
  emitted_for_left_ = false;
  // Compute the probe key; NULL key means no matches.
  ec->row = &left_batch_.row(left_pos_);
  probe_key_.clear();
  stop_key_.clear();
  cursor_.reset();
  for (size_t i = 0; i < key_exprs_.size(); ++i) {
    Value v;
    R3_RETURN_IF_ERROR(EvalExpr(*key_exprs_[i], *ec, &v));
    if (v.is_null()) return Status::OK();  // no cursor -> no matches
    size_t col = index_->column_indices[i];
    R3_ASSIGN_OR_RETURN(v, v.CastTo(table_->schema.column(col).type));
    key_codec::EncodeValue(v, &probe_key_);
  }
  // Computed once per probe, not per fetched index entry.
  stop_key_ = key_codec::PrefixUpperBound(probe_key_);
  R3_ASSIGN_OR_RETURN(BTree::Cursor c, index_->btree->Seek(probe_key_));
  cursor_ = std::make_unique<BTree::Cursor>(std::move(c));
  return Status::OK();
}

Result<bool> IndexNLJoinOp::NextBatchImpl(RowBatch* out) {
  EvalContext ec = ctx_->MakeEvalContext(nullptr);
  std::string key;
  uint64_t payload = 0;
  while (!left_done_) {
    if (!have_left_) {
      if (left_pos_ >= left_batch_.size()) {
        // The outer side stays row-at-a-time: each probe interleaves index
        // and inner-heap page reads with the outer scan, so prefetching a
        // batch of outer rows would reorder page accesses and — once the
        // buffer pool is evicting — change simulated I/O. Output batching
        // is unaffected.
        left_batch_.Reset(1);
        R3_ASSIGN_OR_RETURN(bool ok, left_->NextBatch(&left_batch_));
        if (!ok) {
          left_done_ = true;
          cursor_.reset();
          break;
        }
        left_pos_ = 0;
      }
      R3_RETURN_IF_ERROR(BeginProbe(&ec));
      have_left_ = true;
    }
    const Row& left_row = left_batch_.row(left_pos_);
    while (cursor_ != nullptr) {
      if (out->full()) return true;  // resume from the cursor on re-entry
      R3_ASSIGN_OR_RETURN(bool ok, cursor_->Next(&key, &payload));
      if (!ok || (!stop_key_.empty() && key >= stop_key_)) {
        cursor_.reset();
        break;
      }
      ctx_->clock->ChargeDbmsTuple();
      R3_ASSIGN_OR_RETURN(
          bool visible,
          MvccFetchRow(*ctx_, table_, Rid::Unpack(payload), &rec_));
      if (!visible) continue;  // row created after this statement's snapshot
      R3_RETURN_IF_ERROR(DeserializeRow(table_->schema, rec_, &inner_row_));
      Row& candidate = out->AppendRow();
      candidate = left_row;
      for (size_t i = 0; i < inner_row_.size(); ++i) {
        candidate[table_offset_ + i] = std::move(inner_row_[i]);
      }
      ec.row = &candidate;
      R3_ASSIGN_OR_RETURN(bool pass, EvalPredicates(residual_, ec));
      if (pass) {
        emitted_for_left_ = true;
      } else {
        out->PopRow();
      }
    }
    // Left row exhausted its matches.
    if (preserve_left_ && !emitted_for_left_) {
      if (out->full()) return true;
      out->AppendRow() = left_row;  // inner columns already NULL in wide row
      emitted_for_left_ = true;
    }
    have_left_ = false;
    ++left_pos_;
  }
  return !out->empty();
}

Status IndexNLJoinOp::CloseImpl() {
  cursor_.reset();
  return left_->Close();
}

std::string IndexNLJoinOp::Describe(bool analyze) const {
  std::string out = preserve_left_ ? "IndexNLOuterJoin(" : "IndexNLJoin(";
  out += table_->name + " via " + index_->name + ", keys=";
  for (size_t i = 0; i < key_exprs_.size(); ++i) {
    if (i != 0) out += ",";
    out += key_exprs_[i]->ToString();
  }
  for (const Expr* r : residual_) out += ", " + r->ToString();
  return out + ")" + StatsSuffix(analyze) + "\n" +
         Indent(left_->Describe(analyze));
}

// ---------------------------------------------------------------------------
// NestedLoopsJoinOp
// ---------------------------------------------------------------------------

NestedLoopsJoinOp::NestedLoopsJoinOp(OperatorPtr left, OperatorPtr right,
                                     std::vector<const Expr*> predicates,
                                     std::vector<FilledRange> right_ranges,
                                     bool preserve_left)
    : left_(std::move(left)),
      right_(std::make_unique<MaterializeOp>(std::move(right),
                                             /*cacheable=*/false)),
      predicates_(std::move(predicates)),
      right_ranges_(std::move(right_ranges)),
      preserve_left_(preserve_left) {}

Status NestedLoopsJoinOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  left_done_ = false;
  have_left_ = false;
  left_batch_.Clear();
  left_pos_ = 0;
  right_pos_ = 0;
  emitted_for_left_ = false;
  R3_RETURN_IF_ERROR(right_->Open(ctx));
  return left_->Open(ctx);
}

Result<bool> NestedLoopsJoinOp::NextBatchImpl(RowBatch* out) {
  const std::vector<Row>& inner = right_->rows();
  EvalContext ec = ctx_->MakeEvalContext(nullptr);
  while (!left_done_) {
    if (!have_left_) {
      if (left_pos_ >= left_batch_.size()) {
        left_batch_.Reset(out->capacity());
        R3_ASSIGN_OR_RETURN(bool ok, left_->NextBatch(&left_batch_));
        if (!ok) {
          left_done_ = true;
          break;
        }
        left_pos_ = 0;
      }
      right_pos_ = 0;
      emitted_for_left_ = false;
      have_left_ = true;
    }
    const Row& left_row = left_batch_.row(left_pos_);
    while (right_pos_ < inner.size()) {
      if (out->full()) return true;
      ctx_->clock->ChargeDbmsTuple();
      Row& candidate = out->AppendRow();
      candidate = left_row;
      MergeRanges(inner[right_pos_], right_ranges_, &candidate);
      ++right_pos_;
      ec.row = &candidate;
      R3_ASSIGN_OR_RETURN(bool pass, EvalPredicates(predicates_, ec));
      if (pass) {
        emitted_for_left_ = true;
      } else {
        out->PopRow();
      }
    }
    // Inner exhausted for this left row.
    if (preserve_left_ && !emitted_for_left_) {
      if (out->full()) return true;
      Row& preserved = out->AppendRow();
      preserved = left_row;
      NullRanges(right_ranges_, &preserved);
      emitted_for_left_ = true;
    }
    have_left_ = false;
    ++left_pos_;
  }
  return !out->empty();
}

Status NestedLoopsJoinOp::CloseImpl() {
  R3_RETURN_IF_ERROR(right_->Close());
  return left_->Close();
}

std::string NestedLoopsJoinOp::Describe(bool analyze) const {
  std::string out = preserve_left_ ? "NLOuterJoin(" : "NLJoin(";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i != 0) out += " AND ";
    out += predicates_[i]->ToString();
  }
  return out + ")" + StatsSuffix(analyze) + "\n" +
         Indent(left_->Describe(analyze)) + "\n" +
         Indent(right_->Describe(analyze));
}

}  // namespace rdbms
}  // namespace r3
