#include <algorithm>

#include "common/str_util.h"
#include "rdbms/exec/executor.h"
#include "rdbms/exec/parallel_ops.h"
#include "rdbms/index/key_codec.h"

namespace r3 {
namespace rdbms {

namespace {

std::string Indent(const std::string& s) {
  std::string out;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) end = s.size();
    out += "  " + s.substr(start, end - start) + "\n";
    start = end + 1;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

Result<bool> PassesAll(const std::vector<const Expr*>& preds,
                       const EvalContext& ec) {
  for (const Expr* p : preds) {
    R3_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*p, ec));
    if (!ok) return false;
  }
  return true;
}

void MergeRanges(const Row& src, const std::vector<FilledRange>& ranges,
                 Row* dst) {
  for (const FilledRange& r : ranges) {
    for (size_t i = 0; i < r.width; ++i) {
      (*dst)[r.offset + i] = src[r.offset + i];
    }
  }
}

void NullRanges(const std::vector<FilledRange>& ranges, Row* dst) {
  for (const FilledRange& r : ranges) {
    for (size_t i = 0; i < r.width; ++i) {
      (*dst)[r.offset + i] = Value::Null();
    }
  }
}

constexpr uint64_t kMaxReserve = 1u << 20;

}  // namespace

Status EvalJoinKey(const std::vector<const Expr*>& keys, const EvalContext& ec,
                   std::string* out, bool* null_key) {
  out->clear();
  *null_key = false;
  for (const Expr* k : keys) {
    Value v;
    R3_RETURN_IF_ERROR(EvalExpr(*k, ec, &v));
    if (v.is_null()) {
      *null_key = true;
      return Status::OK();
    }
    // Normalize numerics so INT 5 and DECIMAL 5.00 and DOUBLE 5.0 meet.
    if (IsNumeric(v.type()) && v.type() != DataType::kDouble) {
      v = Value::Dbl(v.AsDouble());
    }
    key_codec::EncodeValue(v, out);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// HashJoinOp
// ---------------------------------------------------------------------------

HashJoinOp::HashJoinOp(OperatorPtr build, OperatorPtr probe,
                       std::vector<const Expr*> build_keys,
                       std::vector<const Expr*> probe_keys,
                       std::vector<const Expr*> residual,
                       std::vector<FilledRange> build_ranges,
                       bool preserve_probe, uint64_t est_build_rows)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)),
      residual_(std::move(residual)),
      build_ranges_(std::move(build_ranges)),
      preserve_probe_(preserve_probe),
      est_build_rows_(est_build_rows) {}

Status HashJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  table_.clear();
  matches_ = nullptr;
  match_pos_ = 0;
  probe_done_ = false;
  have_probe_ = false;
  emitted_for_probe_ = false;

  if (est_build_rows_ > 0) {
    table_.reserve(
        static_cast<size_t>(std::min<uint64_t>(est_build_rows_, kMaxReserve)));
  }
  // A Gather build child runs the scan + key evaluation on its worker pool
  // (partitioned build); the serial path drains the child row by row.
  if (auto* gather = dynamic_cast<GatherOp*>(build_.get())) {
    R3_RETURN_IF_ERROR(
        gather->BuildJoinTable(ctx, build_keys_, &table_, est_build_rows_));
    return probe_->Open(ctx);
  }
  R3_RETURN_IF_ERROR(build_->Open(ctx));
  Row row;
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, build_->Next(&row));
    if (!ok) break;
    ctx_->clock->ChargeDbmsTuple();
    EvalContext ec = ctx_->MakeEvalContext(&row);
    bool null_key = false;
    R3_RETURN_IF_ERROR(EvalJoinKey(build_keys_, ec, &key_scratch_, &null_key));
    if (null_key) continue;
    table_[key_scratch_].push_back(row);
  }
  R3_RETURN_IF_ERROR(build_->Close());
  return probe_->Open(ctx);
}

Result<bool> HashJoinOp::ProbeAdvance() {
  R3_ASSIGN_OR_RETURN(bool ok, probe_->Next(&probe_row_));
  if (!ok) {
    probe_done_ = true;
    return false;
  }
  ctx_->clock->ChargeDbmsTuple();
  EvalContext ec = ctx_->MakeEvalContext(&probe_row_);
  bool null_key = false;
  R3_RETURN_IF_ERROR(EvalJoinKey(probe_keys_, ec, &key_scratch_, &null_key));
  if (null_key) {
    matches_ = nullptr;
  } else {
    auto it = table_.find(key_scratch_);
    matches_ = it == table_.end() ? nullptr : &it->second;
  }
  match_pos_ = 0;
  emitted_for_probe_ = false;
  return true;
}

Result<bool> HashJoinOp::Next(Row* out) {
  while (true) {
    if (probe_done_) return false;
    if (!have_probe_) {
      R3_ASSIGN_OR_RETURN(bool ok, ProbeAdvance());
      if (!ok) return false;
      have_probe_ = true;
    }
    if (matches_ != nullptr) {
      while (match_pos_ < matches_->size()) {
        Row candidate = probe_row_;
        MergeRanges((*matches_)[match_pos_], build_ranges_, &candidate);
        ++match_pos_;
        EvalContext ec = ctx_->MakeEvalContext(&candidate);
        R3_ASSIGN_OR_RETURN(bool pass, PassesAll(residual_, ec));
        if (pass) {
          emitted_for_probe_ = true;
          *out = std::move(candidate);
          return true;
        }
      }
    }
    // This probe row has no (further) matches.
    have_probe_ = false;
    if (preserve_probe_ && !emitted_for_probe_) {
      emitted_for_probe_ = true;
      *out = probe_row_;
      NullRanges(build_ranges_, out);
      return true;
    }
  }
}

Status HashJoinOp::Close() {
  table_.clear();
  return probe_->Close();
}

std::string HashJoinOp::DebugString() const {
  std::string out = preserve_probe_ ? "HashLeftOuterJoin(" : "HashJoin(";
  for (size_t i = 0; i < build_keys_.size(); ++i) {
    if (i != 0) out += ", ";
    out += build_keys_[i]->ToString() + "=" + probe_keys_[i]->ToString();
  }
  for (const Expr* r : residual_) out += ", " + r->ToString();
  out += ")";
  return out + "\n" + Indent(build_->DebugString()) + "\n" +
         Indent(probe_->DebugString());
}

// ---------------------------------------------------------------------------
// IndexNLJoinOp
// ---------------------------------------------------------------------------

IndexNLJoinOp::IndexNLJoinOp(OperatorPtr left, const TableInfo* table,
                             const IndexInfo* index, size_t table_offset,
                             std::vector<const Expr*> key_exprs,
                             std::vector<const Expr*> residual,
                             bool preserve_left)
    : left_(std::move(left)),
      table_(table),
      index_(index),
      table_offset_(table_offset),
      key_exprs_(std::move(key_exprs)),
      residual_(std::move(residual)),
      preserve_left_(preserve_left) {}

Status IndexNLJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  left_done_ = false;
  have_left_ = false;
  cursor_.reset();
  emitted_for_left_ = false;
  return left_->Open(ctx);
}

Result<bool> IndexNLJoinOp::AdvanceLeft() {
  R3_ASSIGN_OR_RETURN(bool ok, left_->Next(&left_row_));
  if (!ok) {
    left_done_ = true;
    cursor_.reset();
    return false;
  }
  emitted_for_left_ = false;
  // Compute the probe key; NULL key means no matches.
  EvalContext ec = ctx_->MakeEvalContext(&left_row_);
  probe_key_.clear();
  cursor_.reset();
  for (size_t i = 0; i < key_exprs_.size(); ++i) {
    Value v;
    R3_RETURN_IF_ERROR(EvalExpr(*key_exprs_[i], ec, &v));
    if (v.is_null()) return true;  // no cursor -> no matches
    size_t col = index_->column_indices[i];
    R3_ASSIGN_OR_RETURN(v, v.CastTo(table_->schema.column(col).type));
    key_codec::EncodeValue(v, &probe_key_);
  }
  R3_ASSIGN_OR_RETURN(BTree::Cursor c, index_->btree->Seek(probe_key_));
  cursor_ = std::make_unique<BTree::Cursor>(std::move(c));
  return true;
}

Result<bool> IndexNLJoinOp::Next(Row* out) {
  std::string key;
  uint64_t payload = 0;
  std::string rec;
  Row inner_row;
  while (true) {
    if (left_done_) return false;
    if (!have_left_) {
      R3_ASSIGN_OR_RETURN(bool ok, AdvanceLeft());
      if (!ok) return false;
      have_left_ = true;
    }
    while (cursor_ != nullptr) {
      std::string stop = key_codec::PrefixUpperBound(probe_key_);
      R3_ASSIGN_OR_RETURN(bool ok, cursor_->Next(&key, &payload));
      if (!ok || (!stop.empty() && key >= stop)) {
        cursor_.reset();
        break;
      }
      ctx_->clock->ChargeDbmsTuple();
      R3_RETURN_IF_ERROR(table_->heap->Get(Rid::Unpack(payload), &rec));
      R3_RETURN_IF_ERROR(DeserializeRow(table_->schema, rec, &inner_row));
      Row candidate = left_row_;
      for (size_t i = 0; i < inner_row.size(); ++i) {
        candidate[table_offset_ + i] = std::move(inner_row[i]);
      }
      EvalContext ec = ctx_->MakeEvalContext(&candidate);
      R3_ASSIGN_OR_RETURN(bool pass, PassesAll(residual_, ec));
      if (!pass) continue;
      emitted_for_left_ = true;
      *out = std::move(candidate);
      return true;
    }
    // Left row exhausted its matches.
    have_left_ = false;
    if (preserve_left_ && !emitted_for_left_) {
      emitted_for_left_ = true;
      *out = left_row_;  // inner columns are already NULL in the wide row
      return true;
    }
  }
}

Status IndexNLJoinOp::Close() {
  cursor_.reset();
  return left_->Close();
}

std::string IndexNLJoinOp::DebugString() const {
  std::string out = preserve_left_ ? "IndexNLOuterJoin(" : "IndexNLJoin(";
  out += table_->name + " via " + index_->name + ", keys=";
  for (size_t i = 0; i < key_exprs_.size(); ++i) {
    if (i != 0) out += ",";
    out += key_exprs_[i]->ToString();
  }
  for (const Expr* r : residual_) out += ", " + r->ToString();
  return out + ")\n" + Indent(left_->DebugString());
}

// ---------------------------------------------------------------------------
// NestedLoopsJoinOp
// ---------------------------------------------------------------------------

NestedLoopsJoinOp::NestedLoopsJoinOp(OperatorPtr left, OperatorPtr right,
                                     std::vector<const Expr*> predicates,
                                     std::vector<FilledRange> right_ranges,
                                     bool preserve_left)
    : left_(std::move(left)),
      right_(std::make_unique<MaterializeOp>(std::move(right),
                                             /*cacheable=*/false)),
      predicates_(std::move(predicates)),
      right_ranges_(std::move(right_ranges)),
      preserve_left_(preserve_left) {}

Status NestedLoopsJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  left_done_ = false;
  left_row_.clear();
  right_pos_ = 0;
  emitted_for_left_ = false;
  R3_RETURN_IF_ERROR(right_->Open(ctx));
  return left_->Open(ctx);
}

Result<bool> NestedLoopsJoinOp::Next(Row* out) {
  const std::vector<Row>& inner = right_->rows();
  while (true) {
    if (left_done_) return false;
    if (left_row_.empty()) {
      R3_ASSIGN_OR_RETURN(bool ok, left_->Next(&left_row_));
      if (!ok) {
        left_done_ = true;
        return false;
      }
      right_pos_ = 0;
      emitted_for_left_ = false;
    }
    while (right_pos_ < inner.size()) {
      ctx_->clock->ChargeDbmsTuple();
      Row candidate = left_row_;
      MergeRanges(inner[right_pos_], right_ranges_, &candidate);
      ++right_pos_;
      EvalContext ec = ctx_->MakeEvalContext(&candidate);
      R3_ASSIGN_OR_RETURN(bool pass, PassesAll(predicates_, ec));
      if (pass) {
        emitted_for_left_ = true;
        *out = std::move(candidate);
        return true;
      }
    }
    // Inner exhausted for this left row.
    if (preserve_left_ && !emitted_for_left_) {
      *out = left_row_;
      NullRanges(right_ranges_, out);
      left_row_.clear();
      return true;
    }
    left_row_.clear();
  }
}

Status NestedLoopsJoinOp::Close() {
  R3_RETURN_IF_ERROR(right_->Close());
  return left_->Close();
}

std::string NestedLoopsJoinOp::DebugString() const {
  std::string out = preserve_left_ ? "NLOuterJoin(" : "NLJoin(";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i != 0) out += " AND ";
    out += predicates_[i]->ToString();
  }
  return out + ")\n" + Indent(left_->DebugString()) + "\n" +
         Indent(right_->DebugString());
}

}  // namespace rdbms
}  // namespace r3
