#include "rdbms/exec/parallel_ops.h"

#include <algorithm>
#include <map>
#include <thread>

#include "common/str_util.h"
#include "rdbms/exec/agg_state.h"
#include "rdbms/index/key_codec.h"
#include "rdbms/storage/page.h"
#include "rdbms/txn/mvcc.h"

namespace r3 {
namespace rdbms {

namespace {

std::string Indent(const std::string& s) {
  std::string out;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) end = s.size();
    out += "  " + s.substr(start, end - start) + "\n";
    start = end + 1;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

constexpr uint64_t kMaxReserve = 1u << 20;

size_t CappedReserve(uint64_t est) {
  return static_cast<size_t>(std::min<uint64_t>(est, kMaxReserve));
}

}  // namespace

GatherOp::GatherOp(const TableInfo* table, size_t offset, size_t wide_width,
                   std::vector<const Expr*> filters, int dop,
                   uint64_t est_rows)
    : table_(table),
      offset_(offset),
      wide_width_(wide_width),
      filters_(std::move(filters)),
      dop_(dop < 1 ? 1 : dop),
      est_rows_(est_rows),
      mode_(Mode::kRows) {}

GatherOp::GatherOp(const TableInfo* table, size_t offset, size_t wide_width,
                   std::vector<const Expr*> filters, int dop,
                   uint64_t est_rows, std::vector<const Expr*> group_exprs,
                   std::vector<const Expr*> agg_calls)
    : table_(table),
      offset_(offset),
      wide_width_(wide_width),
      filters_(std::move(filters)),
      dop_(dop < 1 ? 1 : dop),
      est_rows_(est_rows),
      mode_(Mode::kPartialAgg),
      group_exprs_(std::move(group_exprs)),
      agg_calls_(std::move(agg_calls)) {}

Status GatherOp::FilterTail(ExecContext* ctx, EvalContext* ec,
                            LaneScratch* scratch) {
  (void)ctx;
  if (filters_.empty()) {
    scratch->tail_first = scratch->batch.size();
    return Status::OK();
  }
  R3_RETURN_IF_ERROR(EvalPredicatesBatch(filters_, ec, scratch->batch,
                                         scratch->tail_first, &scratch->sel));
  scratch->batch.Keep(scratch->sel, scratch->tail_first);
  scratch->tail_first = scratch->batch.size();
  return Status::OK();
}

Status GatherOp::ScanMorsel(
    ExecContext* ctx, const Morsel& m, size_t morsel_idx, size_t lane,
    char* page_buf, LaneScratch* scratch,
    const std::function<Status(size_t, size_t, RowBatch*)>& emit) {
  const uint32_t file_id = table_->storage->file_id();
  RowBatch& batch = scratch->batch;
  EvalContext ec = ctx->MakeEvalContext(nullptr);
  // Version-map checks only when some row of the system has version info;
  // otherwise this is the pre-MVCC scan, byte for byte.
  const bool mvcc_active = ctx->mvcc != nullptr && ctx->snapshot != nullptr &&
                           ctx->mvcc->MightHaveVersions(file_id);
  std::string alt_rec;
  std::vector<std::pair<uint16_t, std::string>> ghosts;
  // Appends one record to the lane's batch, flushing at capacity.
  auto append_rec = [&](std::string_view rec) -> Status {
    R3_RETURN_IF_ERROR(
        DeserializeRow(table_->schema, rec, &scratch->table_row));
    Row& wide = batch.AppendRow();
    wide.assign(wide_width_, Value::Null());
    for (size_t i = 0; i < scratch->table_row.size(); ++i) {
      wide[offset_ + i] = std::move(scratch->table_row[i]);
    }
    if (batch.full()) {
      R3_RETURN_IF_ERROR(FilterTail(ctx, &ec, scratch));
      if (batch.full()) {  // every held row survived: hand off
        R3_RETURN_IF_ERROR(emit(morsel_idx, lane, &batch));
        batch.Clear();
        scratch->tail_first = 0;
      }
    }
    return Status::OK();
  };
  for (uint32_t pg = m.first_page; pg < m.end_page; ++pg) {
    R3_RETURN_IF_ERROR(
        ctx->pool->ReadPageForScan(PageId{file_id, pg}, page_buf));
    SlottedPage sp(page_buf);
    const uint16_t slots = sp.slot_count();
    for (uint16_t s = 0; s < slots; ++s) {
      if (!sp.IsLive(s)) continue;
      ctx->clock->ChargeDbmsTuple();  // routed to this worker's lane
      R3_ASSIGN_OR_RETURN(std::string_view rec, sp.Read(s));
      if (mvcc_active) {
        switch (ctx->mvcc->Check(file_id, Rid{pg, s}, *ctx->snapshot,
                                 &alt_rec)) {
          case txn::MvccManager::Visibility::kCurrent:
            break;
          case txn::MvccManager::Visibility::kAltVersion:
            rec = alt_rec;
            break;
          case txn::MvccManager::Visibility::kInvisible:
            continue;
        }
      }
      R3_RETURN_IF_ERROR(append_rec(rec));
    }
    if (mvcc_active) {
      ghosts.clear();
      ctx->mvcc->VisibleGhosts(file_id, pg, *ctx->snapshot, &ghosts);
      for (const auto& [slot, rec] : ghosts) {
        ctx->clock->ChargeDbmsTuple();
        R3_RETURN_IF_ERROR(append_rec(rec));
      }
    }
  }
  // Morsel boundary: flush so a batch never spans morsels (the consumer's
  // per-morsel slots depend on it).
  R3_RETURN_IF_ERROR(FilterTail(ctx, &ec, scratch));
  if (!batch.empty()) {
    R3_RETURN_IF_ERROR(emit(morsel_idx, lane, &batch));
    batch.Clear();
    scratch->tail_first = 0;
  }
  return Status::OK();
}

Status GatherOp::RunParallel(
    ExecContext* ctx,
    const std::function<Status(size_t morsel, size_t lane, RowBatch* batch)>&
        emit) {
  morsels_.clear();
  R3_ASSIGN_OR_RETURN(uint32_t num_pages, table_->storage->NumPages());
  for (uint32_t pg = 0; pg < num_pages; pg += kMorselPages) {
    morsels_.push_back(
        Morsel{pg, std::min<uint32_t>(pg + kMorselPages, num_pages)});
  }
  if (mode_ == Mode::kRows) {
    morsel_rows_.assign(morsels_.size(), {});
  }

  std::vector<SimClock::Lane> lanes(static_cast<size_t>(dop_));
  std::vector<Status> lane_status(lanes.size(), Status::OK());

  auto run_lane = [&](size_t lane) -> Status {
    LaneScope scope(&lanes[lane]);
    std::unique_ptr<char[]> page_buf(new char[kPageSize]);
    LaneScratch scratch;
    scratch.batch.Reset(ctx->batch_size);
    for (size_t mi = lane; mi < morsels_.size();
         mi += static_cast<size_t>(dop_)) {
      R3_RETURN_IF_ERROR(ScanMorsel(ctx, morsels_[mi], mi, lane,
                                    page_buf.get(), &scratch, emit));
    }
    return Status::OK();
  };

  // The plan's dop fixes the number of lanes (and therefore all results and
  // simulated charges); ctx->dop only caps the physical thread count.
  const size_t num_threads = static_cast<size_t>(
      std::min<int>(dop_, std::max(1, ctx->dop)));
  if (num_threads <= 1) {
    for (size_t lane = 0; lane < lanes.size(); ++lane) {
      lane_status[lane] = run_lane(lane);
    }
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t tid = 0; tid < num_threads; ++tid) {
      threads.emplace_back([&, tid]() {
        for (size_t lane = tid; lane < lanes.size(); lane += num_threads) {
          lane_status[lane] = run_lane(lane);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  for (const Status& st : lane_status) {
    R3_RETURN_IF_ERROR(st);
  }
  // Barrier: the region's simulated cost is its critical path.
  ctx->clock->MergeLanes(lanes);
  return Status::OK();
}

Status GatherOp::OpenImpl(ExecContext* ctx) {
  out_morsel_ = 0;
  out_pos_ = 0;
  agg_results_.clear();
  morsel_rows_.clear();

  if (mode_ == Mode::kRows) {
    return RunParallel(
        ctx,
        [this](size_t morsel, size_t /*lane*/, RowBatch* batch) -> Status {
          std::vector<Row>& rows = morsel_rows_[morsel];
          for (size_t i = 0; i < batch->size(); ++i) {
            rows.push_back(std::move(batch->row(i)));
          }
          return Status::OK();
        });
  }

  // kPartialAgg: each lane accumulates into a private aggregation table.
  struct Group {
    Row keys;
    std::vector<AggState> states;
  };
  std::vector<std::unordered_map<std::string, Group>> partials(
      static_cast<size_t>(dop_));
  if (est_rows_ > 0) {
    for (auto& p : partials) {
      p.reserve(CappedReserve(est_rows_ / static_cast<uint64_t>(dop_) + 1));
    }
  }
  std::vector<std::string> key_scratch(static_cast<size_t>(dop_));
  std::vector<Row> keys_scratch(static_cast<size_t>(dop_));

  Status st = RunParallel(
      ctx, [&](size_t /*morsel*/, size_t lane, RowBatch* batch) -> Status {
        EvalContext ec = ctx->MakeEvalContext(nullptr);
        std::string& key = key_scratch[lane];
        Row& keys = keys_scratch[lane];
        for (size_t r = 0; r < batch->size(); ++r) {
          ctx->clock->ChargeDbmsTuple();  // aggregation CPU, charged in-lane
          ec.row = &batch->row(r);
          key.clear();
          keys.clear();
          for (const Expr* g : group_exprs_) {
            Value v;
            R3_RETURN_IF_ERROR(EvalExpr(*g, ec, &v));
            key_codec::EncodeValue(v, &key);
            keys.push_back(std::move(v));
          }
          auto [it, inserted] = partials[lane].try_emplace(key);
          if (inserted) {
            it->second.keys = keys;
            it->second.states.resize(agg_calls_.size());
          }
          for (size_t i = 0; i < agg_calls_.size(); ++i) {
            const Expr& call = *agg_calls_[i];
            Value arg;
            if (call.agg_func != AggFunc::kCountStar) {
              R3_RETURN_IF_ERROR(EvalExpr(*call.children[0], ec, &arg));
            }
            it->second.states[i].Accumulate(call, arg);
          }
        }
        return Status::OK();
      });
  R3_RETURN_IF_ERROR(st);

  // Merge the partials (lane order, then encoded-key order for output —
  // matching the serial HashAggOp's emission order).
  std::map<std::string, Group> merged;
  for (auto& partial : partials) {
    for (auto& [key, group] : partial) {
      auto [it, inserted] = merged.try_emplace(key);
      if (inserted) {
        it->second = std::move(group);
      } else {
        for (size_t i = 0; i < agg_calls_.size(); ++i) {
          it->second.states[i].Merge(group.states[i]);
        }
      }
    }
  }
  if (merged.empty() && group_exprs_.empty()) {
    Row out;
    for (const Expr* call : agg_calls_) {
      AggState empty;
      out.push_back(empty.Finalize(*call));
    }
    agg_results_.push_back(std::move(out));
    return Status::OK();
  }
  agg_results_.reserve(merged.size());
  for (auto& [key, group] : merged) {
    Row out = std::move(group.keys);
    for (size_t i = 0; i < agg_calls_.size(); ++i) {
      out.push_back(group.states[i].Finalize(*agg_calls_[i]));
    }
    agg_results_.push_back(std::move(out));
  }
  return Status::OK();
}

Status GatherOp::BuildJoinTable(
    ExecContext* ctx, const std::vector<const Expr*>& keys,
    std::unordered_map<std::string, std::vector<Row>>* table,
    uint64_t est_build_rows) {
  // Lanes do the scan + key evaluation; each morsel collects its (key, row)
  // pairs privately, and the barrier inserts them in morsel order — the
  // exact order the serial build would have used.
  std::vector<std::vector<std::pair<std::string, Row>>> pairs;
  std::vector<std::string> key_scratch(static_cast<size_t>(dop_));

  // Pre-size the per-morsel slots before the workers start (RunParallel
  // recomputes the same page partition deterministically).
  {
    R3_ASSIGN_OR_RETURN(uint32_t num_pages, table_->storage->NumPages());
    size_t n = (num_pages + kMorselPages - 1) / kMorselPages;
    pairs.assign(n, {});
  }
  Status st = RunParallel(
      ctx, [&](size_t morsel, size_t lane, RowBatch* batch) -> Status {
        EvalContext ec = ctx->MakeEvalContext(nullptr);
        std::string& key = key_scratch[lane];
        for (size_t r = 0; r < batch->size(); ++r) {
          ctx->clock->ChargeDbmsTuple();  // build CPU, charged in-lane
          ec.row = &batch->row(r);
          bool null_key = false;
          R3_RETURN_IF_ERROR(EvalJoinKey(keys, ec, &key, &null_key));
          if (null_key) continue;
          pairs[morsel].emplace_back(key, std::move(batch->row(r)));
        }
        return Status::OK();
      });
  R3_RETURN_IF_ERROR(st);

  if (est_build_rows > 0) table->reserve(CappedReserve(est_build_rows));
  for (auto& morsel_pairs : pairs) {
    for (auto& [key, row] : morsel_pairs) {
      (*table)[key].push_back(std::move(row));
    }
  }
  return Status::OK();
}

Result<bool> GatherOp::NextBatchImpl(RowBatch* out) {
  if (mode_ == Mode::kPartialAgg) {
    while (!out->full() && out_pos_ < agg_results_.size()) {
      out->AppendRow() = agg_results_[out_pos_++];  // copy: replay on re-open
    }
    return !out->empty();
  }
  while (!out->full() && out_morsel_ < morsel_rows_.size()) {
    if (out_pos_ < morsel_rows_[out_morsel_].size()) {
      out->PushRow(std::move(morsel_rows_[out_morsel_][out_pos_++]));
    } else {
      ++out_morsel_;
      out_pos_ = 0;
    }
  }
  return !out->empty();
}

Status GatherOp::CloseImpl() {
  morsel_rows_.clear();
  agg_results_.clear();
  out_morsel_ = 0;
  out_pos_ = 0;
  return Status::OK();
}

size_t GatherOp::OutputWidth() const {
  return mode_ == Mode::kPartialAgg
             ? group_exprs_.size() + agg_calls_.size()
             : wide_width_;
}

std::string GatherOp::Describe(bool analyze) const {
  std::string out = "Gather(dop=" + std::to_string(dop_) + ")";
  out += StatsSuffix(analyze);
  std::string scan = "ParallelSeqScan(" + table_->name;
  for (const Expr* f : filters_) scan += ", " + f->ToString();
  scan += ")";
  if (mode_ == Mode::kPartialAgg) {
    std::string agg = "PartialHashAggregate(groups=[";
    for (size_t i = 0; i < group_exprs_.size(); ++i) {
      if (i != 0) agg += ", ";
      agg += group_exprs_[i]->ToString();
    }
    agg += "], aggs=[";
    for (size_t i = 0; i < agg_calls_.size(); ++i) {
      if (i != 0) agg += ", ";
      agg += agg_calls_[i]->ToString();
    }
    agg += "])";
    return out + "\n" + Indent(agg + "\n" + Indent(scan));
  }
  return out + "\n" + Indent(scan);
}

}  // namespace rdbms
}  // namespace r3
