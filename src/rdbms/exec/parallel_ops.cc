#include "rdbms/exec/parallel_ops.h"

#include <algorithm>
#include <map>
#include <thread>

#include "common/str_util.h"
#include "rdbms/exec/agg_state.h"
#include "rdbms/index/key_codec.h"
#include "rdbms/storage/page.h"

namespace r3 {
namespace rdbms {

namespace {

std::string Indent(const std::string& s) {
  std::string out;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) end = s.size();
    out += "  " + s.substr(start, end - start) + "\n";
    start = end + 1;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

Result<bool> PassesAll(const std::vector<const Expr*>& preds,
                       const EvalContext& ec) {
  for (const Expr* p : preds) {
    R3_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*p, ec));
    if (!ok) return false;
  }
  return true;
}

constexpr uint64_t kMaxReserve = 1u << 20;

size_t CappedReserve(uint64_t est) {
  return static_cast<size_t>(std::min<uint64_t>(est, kMaxReserve));
}

}  // namespace

GatherOp::GatherOp(const TableInfo* table, size_t offset, size_t wide_width,
                   std::vector<const Expr*> filters, int dop,
                   uint64_t est_rows)
    : table_(table),
      offset_(offset),
      wide_width_(wide_width),
      filters_(std::move(filters)),
      dop_(dop < 1 ? 1 : dop),
      est_rows_(est_rows),
      mode_(Mode::kRows) {}

GatherOp::GatherOp(const TableInfo* table, size_t offset, size_t wide_width,
                   std::vector<const Expr*> filters, int dop,
                   uint64_t est_rows, std::vector<const Expr*> group_exprs,
                   std::vector<const Expr*> agg_calls)
    : table_(table),
      offset_(offset),
      wide_width_(wide_width),
      filters_(std::move(filters)),
      dop_(dop < 1 ? 1 : dop),
      est_rows_(est_rows),
      mode_(Mode::kPartialAgg),
      group_exprs_(std::move(group_exprs)),
      agg_calls_(std::move(agg_calls)) {}

Status GatherOp::ScanMorsel(
    ExecContext* ctx, const Morsel& m, size_t morsel_idx, size_t lane,
    char* page_buf, Row* table_row, Row* wide,
    const std::function<Status(size_t, size_t, Row&&)>& emit) {
  const uint32_t file_id = table_->heap->file_id();
  for (uint32_t pg = m.first_page; pg < m.end_page; ++pg) {
    R3_RETURN_IF_ERROR(
        ctx->pool->ReadPageForScan(PageId{file_id, pg}, page_buf));
    SlottedPage sp(page_buf);
    const uint16_t slots = sp.slot_count();
    for (uint16_t s = 0; s < slots; ++s) {
      if (!sp.IsLive(s)) continue;
      ctx->clock->ChargeDbmsTuple();  // routed to this worker's lane
      R3_ASSIGN_OR_RETURN(std::string_view rec, sp.Read(s));
      R3_RETURN_IF_ERROR(DeserializeRow(table_->schema, rec, table_row));
      wide->assign(wide_width_, Value::Null());
      for (size_t i = 0; i < table_row->size(); ++i) {
        (*wide)[offset_ + i] = std::move((*table_row)[i]);
      }
      EvalContext ec = ctx->MakeEvalContext(wide);
      R3_ASSIGN_OR_RETURN(bool pass, PassesAll(filters_, ec));
      if (!pass) continue;
      R3_RETURN_IF_ERROR(emit(morsel_idx, lane, std::move(*wide)));
    }
  }
  return Status::OK();
}

Status GatherOp::RunParallel(
    ExecContext* ctx,
    const std::function<Status(size_t morsel, size_t lane, Row&& row)>&
        emit) {
  morsels_.clear();
  R3_ASSIGN_OR_RETURN(uint32_t num_pages, table_->heap->NumPages());
  for (uint32_t pg = 0; pg < num_pages; pg += kMorselPages) {
    morsels_.push_back(
        Morsel{pg, std::min<uint32_t>(pg + kMorselPages, num_pages)});
  }
  if (mode_ == Mode::kRows) {
    morsel_rows_.assign(morsels_.size(), {});
  }

  std::vector<SimClock::Lane> lanes(static_cast<size_t>(dop_));
  std::vector<Status> lane_status(lanes.size(), Status::OK());

  auto run_lane = [&](size_t lane) -> Status {
    LaneScope scope(&lanes[lane]);
    std::unique_ptr<char[]> page_buf(new char[kPageSize]);
    Row table_row;
    Row wide;
    for (size_t mi = lane; mi < morsels_.size();
         mi += static_cast<size_t>(dop_)) {
      R3_RETURN_IF_ERROR(ScanMorsel(ctx, morsels_[mi], mi, lane,
                                    page_buf.get(), &table_row, &wide, emit));
    }
    return Status::OK();
  };

  // The plan's dop fixes the number of lanes (and therefore all results and
  // simulated charges); ctx->dop only caps the physical thread count.
  const size_t num_threads = static_cast<size_t>(
      std::min<int>(dop_, std::max(1, ctx->dop)));
  if (num_threads <= 1) {
    for (size_t lane = 0; lane < lanes.size(); ++lane) {
      lane_status[lane] = run_lane(lane);
    }
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t tid = 0; tid < num_threads; ++tid) {
      threads.emplace_back([&, tid]() {
        for (size_t lane = tid; lane < lanes.size(); lane += num_threads) {
          lane_status[lane] = run_lane(lane);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  for (const Status& st : lane_status) {
    R3_RETURN_IF_ERROR(st);
  }
  // Barrier: the region's simulated cost is its critical path.
  ctx->clock->MergeLanes(lanes);
  return Status::OK();
}

Status GatherOp::Open(ExecContext* ctx) {
  out_morsel_ = 0;
  out_pos_ = 0;
  agg_results_.clear();
  morsel_rows_.clear();

  if (mode_ == Mode::kRows) {
    return RunParallel(
        ctx, [this](size_t morsel, size_t /*lane*/, Row&& row) -> Status {
          morsel_rows_[morsel].push_back(std::move(row));
          return Status::OK();
        });
  }

  // kPartialAgg: each lane accumulates into a private aggregation table.
  struct Group {
    Row keys;
    std::vector<AggState> states;
  };
  std::vector<std::unordered_map<std::string, Group>> partials(
      static_cast<size_t>(dop_));
  if (est_rows_ > 0) {
    for (auto& p : partials) {
      p.reserve(CappedReserve(est_rows_ / static_cast<uint64_t>(dop_) + 1));
    }
  }
  std::vector<std::string> key_scratch(static_cast<size_t>(dop_));
  std::vector<Row> keys_scratch(static_cast<size_t>(dop_));

  Status st = RunParallel(
      ctx, [&](size_t /*morsel*/, size_t lane, Row&& row) -> Status {
        ExecContext* c = ctx;
        c->clock->ChargeDbmsTuple();  // aggregation CPU, charged in-lane
        EvalContext ec = c->MakeEvalContext(&row);
        std::string& key = key_scratch[lane];
        Row& keys = keys_scratch[lane];
        key.clear();
        keys.clear();
        for (const Expr* g : group_exprs_) {
          Value v;
          R3_RETURN_IF_ERROR(EvalExpr(*g, ec, &v));
          key_codec::EncodeValue(v, &key);
          keys.push_back(std::move(v));
        }
        auto [it, inserted] = partials[lane].try_emplace(key);
        if (inserted) {
          it->second.keys = keys;
          it->second.states.resize(agg_calls_.size());
        }
        for (size_t i = 0; i < agg_calls_.size(); ++i) {
          const Expr& call = *agg_calls_[i];
          Value arg;
          if (call.agg_func != AggFunc::kCountStar) {
            R3_RETURN_IF_ERROR(EvalExpr(*call.children[0], ec, &arg));
          }
          it->second.states[i].Accumulate(call, arg);
        }
        return Status::OK();
      });
  R3_RETURN_IF_ERROR(st);

  // Merge the partials (lane order, then encoded-key order for output —
  // matching the serial HashAggOp's emission order).
  std::map<std::string, Group> merged;
  for (auto& partial : partials) {
    for (auto& [key, group] : partial) {
      auto [it, inserted] = merged.try_emplace(key);
      if (inserted) {
        it->second = std::move(group);
      } else {
        for (size_t i = 0; i < agg_calls_.size(); ++i) {
          it->second.states[i].Merge(group.states[i]);
        }
      }
    }
  }
  if (merged.empty() && group_exprs_.empty()) {
    Row out;
    for (const Expr* call : agg_calls_) {
      AggState empty;
      out.push_back(empty.Finalize(*call));
    }
    agg_results_.push_back(std::move(out));
    return Status::OK();
  }
  agg_results_.reserve(merged.size());
  for (auto& [key, group] : merged) {
    Row out = std::move(group.keys);
    for (size_t i = 0; i < agg_calls_.size(); ++i) {
      out.push_back(group.states[i].Finalize(*agg_calls_[i]));
    }
    agg_results_.push_back(std::move(out));
  }
  return Status::OK();
}

Status GatherOp::BuildJoinTable(
    ExecContext* ctx, const std::vector<const Expr*>& keys,
    std::unordered_map<std::string, std::vector<Row>>* table,
    uint64_t est_build_rows) {
  // Lanes do the scan + key evaluation; each morsel collects its (key, row)
  // pairs privately, and the barrier inserts them in morsel order — the
  // exact order the serial build would have used.
  std::vector<std::vector<std::pair<std::string, Row>>> pairs;
  std::vector<std::string> key_scratch(static_cast<size_t>(dop_));

  // Pre-size the per-morsel slots before the workers start (RunParallel
  // recomputes the same page partition deterministically).
  {
    R3_ASSIGN_OR_RETURN(uint32_t num_pages, table_->heap->NumPages());
    size_t n = (num_pages + kMorselPages - 1) / kMorselPages;
    pairs.assign(n, {});
  }
  Status st = RunParallel(ctx, [&](size_t morsel, size_t lane,
                                   Row&& row) -> Status {
    ctx->clock->ChargeDbmsTuple();  // build CPU, charged in-lane
    EvalContext ec = ctx->MakeEvalContext(&row);
    std::string& key = key_scratch[lane];
    bool null_key = false;
    R3_RETURN_IF_ERROR(EvalJoinKey(keys, ec, &key, &null_key));
    if (null_key) return Status::OK();
    pairs[morsel].emplace_back(key, std::move(row));
    return Status::OK();
  });
  R3_RETURN_IF_ERROR(st);

  if (est_build_rows > 0) table->reserve(CappedReserve(est_build_rows));
  for (auto& morsel_pairs : pairs) {
    for (auto& [key, row] : morsel_pairs) {
      (*table)[key].push_back(std::move(row));
    }
  }
  return Status::OK();
}

Result<bool> GatherOp::Next(Row* out) {
  if (mode_ == Mode::kPartialAgg) {
    if (out_pos_ >= agg_results_.size()) return false;
    *out = agg_results_[out_pos_++];
    return true;
  }
  while (out_morsel_ < morsel_rows_.size()) {
    if (out_pos_ < morsel_rows_[out_morsel_].size()) {
      *out = std::move(morsel_rows_[out_morsel_][out_pos_++]);
      return true;
    }
    ++out_morsel_;
    out_pos_ = 0;
  }
  return false;
}

Status GatherOp::Close() {
  morsel_rows_.clear();
  agg_results_.clear();
  out_morsel_ = 0;
  out_pos_ = 0;
  return Status::OK();
}

size_t GatherOp::OutputWidth() const {
  return mode_ == Mode::kPartialAgg
             ? group_exprs_.size() + agg_calls_.size()
             : wide_width_;
}

std::string GatherOp::DebugString() const {
  std::string out = "Gather(dop=" + std::to_string(dop_) + ")";
  std::string scan = "ParallelSeqScan(" + table_->name;
  for (const Expr* f : filters_) scan += ", " + f->ToString();
  scan += ")";
  if (mode_ == Mode::kPartialAgg) {
    std::string agg = "PartialHashAggregate(groups=[";
    for (size_t i = 0; i < group_exprs_.size(); ++i) {
      if (i != 0) agg += ", ";
      agg += group_exprs_[i]->ToString();
    }
    agg += "], aggs=[";
    for (size_t i = 0; i < agg_calls_.size(); ++i) {
      if (i != 0) agg += ", ";
      agg += agg_calls_[i]->ToString();
    }
    agg += "])";
    return out + "\n" + Indent(agg + "\n" + Indent(scan));
  }
  return out + "\n" + Indent(scan);
}

}  // namespace rdbms
}  // namespace r3
