#ifndef R3DB_RDBMS_EXEC_PARALLEL_OPS_H_
#define R3DB_RDBMS_EXEC_PARALLEL_OPS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_clock.h"
#include "rdbms/exec/executor.h"

namespace r3 {
namespace rdbms {

/// Pages per morsel: the unit of work handed to scan workers. Small enough
/// for load balancing, large enough to amortize dispatch (~128 KB of data).
inline constexpr uint32_t kMorselPages = 16;

/// Morsel-driven exchange operator (Gather).
///
/// Splits a base table's heap pages into fixed-size morsels and assigns
/// morsel i to *lane* (i % dop) — a logical worker with its own SimClock
/// lane. OS threads (at most ExecContext::dop) execute the lanes; because
/// morsel->lane assignment is static and scan reads go through
/// BufferPool::ReadPageForScan (which never disturbs replacement state),
/// both the result rows and the per-lane simulated charges are identical
/// for every run and for every physical thread count. At the barrier the
/// lanes merge into the shared clock as max(lane elapsed) — critical-path
/// accounting of the parallel region.
///
/// Lanes exchange RowBatches: every worker fills a lane-local batch
/// (ExecContext::batch_size rows) and hands it to the consumer when it
/// fills up or the morsel ends. Batch granularity only changes how often
/// the consumer runs — per-row charges stay in-lane and rows stay in
/// morsel order, so results and simulated times are batch-size invariant.
///
/// Modes:
///  * kRows — parallel scan+filter. Rows are emitted in morsel order, which
///    equals the serial SeqScanOp's heap order, so downstream operators see
///    exactly the serial row stream.
///  * kPartialAgg — each lane additionally accumulates scan output into a
///    private hash-aggregation table; the barrier merges the partials and
///    emits finished groups in encoded-key order (the serial HashAggOp
///    order). DISTINCT aggregates are not mergeable and stay serial.
///
/// A HashJoinOp whose build child is a GatherOp instead calls
/// BuildJoinTable(): lanes evaluate build keys in parallel and the barrier
/// inserts (key, row) pairs in morsel order — the serial insertion order.
class GatherOp : public Operator {
 public:
  enum class Mode { kRows, kPartialAgg };

  /// Parallel scan+filter (Mode::kRows).
  GatherOp(const TableInfo* table, size_t offset, size_t wide_width,
           std::vector<const Expr*> filters, int dop, uint64_t est_rows);

  /// Parallel partial aggregation (Mode::kPartialAgg). Output rows are
  /// [group values..., aggregate results...] like HashAggOp.
  GatherOp(const TableInfo* table, size_t offset, size_t wide_width,
           std::vector<const Expr*> filters, int dop, uint64_t est_rows,
           std::vector<const Expr*> group_exprs,
           std::vector<const Expr*> agg_calls);

  size_t OutputWidth() const override;
  std::string Describe(bool analyze) const override;

  Mode mode() const { return mode_; }
  int dop() const { return dop_; }

  /// Partitioned hash-join build (called by HashJoinOp instead of Open).
  /// Scans in parallel, evaluates `keys` per surviving row in the worker
  /// lanes, and fills `*table` in morsel order. Rows with NULL keys are
  /// dropped (SQL equi-join semantics).
  Status BuildJoinTable(ExecContext* ctx, const std::vector<const Expr*>& keys,
                        std::unordered_map<std::string, std::vector<Row>>* table,
                        uint64_t est_build_rows);

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  struct Morsel {
    uint32_t first_page = 0;
    uint32_t end_page = 0;  // exclusive
  };

  /// Per-lane scan scratch, reused across the lane's morsels.
  struct LaneScratch {
    RowBatch batch;          // filled rows awaiting hand-off
    size_t tail_first = 0;   // start of the not-yet-filtered tail
    SelVector sel;
    Row table_row;
  };

  /// Runs the parallel region: partitions the heap into morsels, executes
  /// the scan on worker lanes, calls `emit(morsel, lane, &batch)` from the
  /// owning worker for every filled batch of filter-surviving rows (always
  /// whole-morsel: a batch never spans morsels), then merges the lanes into
  /// the shared clock. `emit` must only touch lane/morsel-local state
  /// (slots indexed by `morsel` or `lane` are private to one worker) and
  /// may move rows out of the batch.
  Status RunParallel(
      ExecContext* ctx,
      const std::function<Status(size_t morsel, size_t lane, RowBatch* batch)>&
          emit);
  Status ScanMorsel(ExecContext* ctx, const Morsel& m, size_t morsel_idx,
                    size_t lane, char* page_buf, LaneScratch* scratch,
                    const std::function<Status(size_t, size_t, RowBatch*)>&
                        emit);
  /// Runs the filters over the unfiltered tail of the lane batch and
  /// compacts it; afterwards every held row is a survivor.
  Status FilterTail(ExecContext* ctx, EvalContext* ec, LaneScratch* scratch);

  const TableInfo* table_;
  size_t offset_;
  size_t wide_width_;
  std::vector<const Expr*> filters_;
  int dop_;
  uint64_t est_rows_;
  Mode mode_;
  std::vector<const Expr*> group_exprs_;
  std::vector<const Expr*> agg_calls_;

  std::vector<Morsel> morsels_;
  std::vector<std::vector<Row>> morsel_rows_;  // kRows: per-morsel output
  std::vector<Row> agg_results_;               // kPartialAgg: merged groups
  size_t out_morsel_ = 0;
  size_t out_pos_ = 0;
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_EXEC_PARALLEL_OPS_H_
