#ifndef R3DB_RDBMS_EXEC_EXECUTOR_H_
#define R3DB_RDBMS_EXEC_EXECUTOR_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "common/trace.h"
#include "rdbms/catalog.h"
#include "rdbms/expr/eval.h"
#include "rdbms/expr/expr.h"
#include "rdbms/row.h"
#include "rdbms/row_batch.h"

namespace r3 {
namespace rdbms {

namespace txn {
class MvccManager;
struct Snapshot;
}  // namespace txn

/// Runtime state shared by the operators of one executing statement.
///
/// Operators are re-openable: a plan tree is built once (at prepare time)
/// and can be executed many times — the cursor-caching behaviour the paper's
/// Open SQL interface relies on. `outer_row` carries the correlation row
/// while a subquery plan executes.
struct ExecContext {
  BufferPool* pool = nullptr;
  SimClock* clock = nullptr;
  const std::vector<Value>* params = nullptr;
  SubqueryRunner* subqueries = nullptr;
  const Row* outer_row = nullptr;
  size_t work_mem_bytes = 4u << 20;  ///< sort/aggregate memory budget
  /// Worker-thread budget for parallel (Gather) plan fragments. The plan's
  /// own degree of parallelism is fixed by the optimizer; this only caps how
  /// many OS threads execute it (1 = run all lanes on the calling thread).
  int dop = 1;
  /// Rows per RowBatch for operator-internal pulls (1 = legacy
  /// row-at-a-time shape). A pure execution knob: results and simulated
  /// times are identical at any value (DESIGN.md §6).
  size_t batch_size = kDefaultBatchRows;
  /// Monotonic id of the top-level statement execution this context belongs
  /// to. Operators compare it against the epoch of their accumulated stats
  /// and zero them when it moves on — a cached (prepared) plan re-executed
  /// on a reused Database reports per-statement counters, not lifetime
  /// totals (DESIGN.md §7).
  uint64_t statement_epoch = 0;

  /// MVCC hooks for snapshot-isolation reads: scan/index operators consult
  /// `mvcc` with `snapshot` to decide which version of each heap row this
  /// statement sees. Both null (WAL/MVCC off, or DML internals) = read the
  /// heap as-is — the pre-MVCC behavior, byte for byte.
  txn::MvccManager* mvcc = nullptr;
  const txn::Snapshot* snapshot = nullptr;

  /// Query-wide operator counters, summed across every operator of the plan
  /// (EXPLAIN ANALYZE sets this; normal execution leaves it null).
  struct Totals {
    int64_t rows = 0;     ///< rows exchanged between operators
    int64_t batches = 0;  ///< non-empty batches exchanged
    int64_t opens = 0;
    int64_t closes = 0;
  };
  Totals* totals = nullptr;

  EvalContext MakeEvalContext(const Row* row) const {
    EvalContext ec;
    ec.row = row;
    ec.outer = outer_row;
    ec.params = params;
    ec.subqueries = subqueries;
    return ec;
  }
};

/// Per-operator runtime counters, accumulated across the operator's
/// lifetime by the non-virtual Open/NextBatch/Close wrappers.
struct OperatorStats {
  int64_t rows_out = 0;
  int64_t batches_out = 0;
  int64_t opens = 0;
  int64_t closes = 0;
  /// Inclusive simulated time (this operator plus its inputs), measured as
  /// the shared-clock delta across Open and every NextBatch call.
  int64_t sim_us = 0;
};

/// Batch-at-a-time (vectorized Volcano) operator. All rows exchanged
/// between operators of one query are "wide rows": the concatenation of
/// every base table's columns (see plan/logical_plan.h), except downstream
/// of aggregation/projection where the layouts documented there apply.
///
/// NextBatch contract: the wrapper clears `*out`; the operator fills at
/// most `out->capacity()` rows and returns true iff it produced at least
/// one (false is sticky until the next Open, and implies an empty batch).
/// Partial batches do NOT signal exhaustion. Operators must bound every
/// child pull by the caller's capacity so early-exiting consumers (LIMIT,
/// EXISTS/scalar subqueries) trigger exactly the work — and therefore the
/// simulated charges — of the row-at-a-time engine.
class Operator {
 public:
  virtual ~Operator() = default;

  /// (Re)initializes; must be callable repeatedly.
  Status Open(ExecContext* ctx);

  /// Produces the next batch of rows into `*out` (cleared first); returns
  /// false when exhausted.
  Result<bool> NextBatch(RowBatch* out);

  Status Close();

  /// Width of rows this operator produces.
  virtual size_t OutputWidth() const = 0;

  /// Human-readable plan node for EXPLAIN-style rendering. With `analyze`,
  /// nodes append their runtime counters (see StatsSuffix).
  virtual std::string Describe(bool analyze) const = 0;

  /// Plan rendering without runtime counters (byte-identical to the
  /// pre-batch engine's output).
  std::string DebugString() const { return Describe(false); }

  const OperatorStats& stats() const { return stats_; }

  /// Optimizer's estimated output cardinality for this node (0 = none
  /// recorded). EXPLAIN ANALYZE renders est-vs-actual drift from it; plain
  /// EXPLAIN output is unaffected.
  void set_est_rows(uint64_t est) { est_rows_ = est; }
  uint64_t est_rows() const { return est_rows_; }

 protected:
  virtual Status OpenImpl(ExecContext* ctx) = 0;
  virtual Result<bool> NextBatchImpl(RowBatch* out) = 0;
  virtual Status CloseImpl() = 0;

  /// " [rows=... batches=... opens=... sim=...us]" when `analyze`, else "".
  std::string StatsSuffix(bool analyze) const;

 private:
  OperatorStats stats_;
  uint64_t est_rows_ = 0;
  SimClock* stats_clock_ = nullptr;
  ExecContext::Totals* totals_ = nullptr;
  uint64_t stats_epoch_ = 0;
  /// Trace state: one "exec" span per Open→Close cycle (suppressed inside
  /// worker lanes and when no tracer is attached).
  uint64_t span_token_ = Tracer::kInactive;
  int64_t span_rows_base_ = 0;
  std::string span_name_;  ///< cached first line of Describe(false)
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Renders the plan tree (indented, one node per line). With `analyze`,
/// every node is annotated with its accumulated runtime counters.
std::string ExplainPlan(const Operator& root, bool analyze = false);

/// MVCC-aware heap fetch for index-driven operators: reads the row at `rid`
/// into `*rec` and substitutes the snapshot-visible version when the current
/// heap image is newer than the statement's snapshot. Returns false when no
/// version of the row is visible (caller skips it). With no MVCC context on
/// `ctx` this is exactly `storage->Get`.
Result<bool> MvccFetchRow(const ExecContext& ctx, const TableInfo* table,
                          Rid rid, std::string* rec);

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

/// Full scan of `table` through its storage engine's ScanCursor, emitting
/// wide rows with the table's columns at `offset` and NULL elsewhere;
/// applies pushed-down filters. Renders as "SeqScan" over the row heap and
/// "ColumnarScan" over the columnar engine — same operator, different
/// engine-provided cursor.
///
/// Batched: the cursor stages one heap page (or columnar chunk) per fill
/// step, releasing any page pin before filters run so predicates with
/// subqueries cannot pile up pins.
///
/// `needed_cols` (table-local indices) is the optimizer's projection set;
/// a columnar cursor decodes only those columns. Empty optional = all
/// columns. The row engine always materializes full rows either way.
class SeqScanOp : public Operator {
 public:
  SeqScanOp(const TableInfo* table, size_t offset, size_t wide_width,
            std::vector<const Expr*> filters,
            std::optional<std::vector<size_t>> needed_cols = std::nullopt);

  size_t OutputWidth() const override { return wide_width_; }
  std::string Describe(bool analyze) const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  /// Fills the engine scan spec: MVCC context, projection set, and — for
  /// dictionary-compressed engines — string-equality predicates that can be
  /// pre-filtered on dictionary codes (the predicates stay in `filters_`
  /// and are re-checked on materialized survivors).
  Status BuildScanSpec(ExecContext* ctx, ScanSpec* spec) const;

  const TableInfo* table_;
  size_t offset_;
  size_t wide_width_;
  std::vector<const Expr*> filters_;
  std::optional<std::vector<size_t>> needed_cols_;
  ExecContext* ctx_ = nullptr;
  std::unique_ptr<ScanCursor> cursor_;
  bool done_ = false;
  SelVector sel_;
};

/// Bounds of an index scan. Leading index columns are constrained by
/// equality (`eq_exprs`), optionally followed by a range on the next column.
/// All bound expressions are evaluated once at Open (literals or `?`
/// parameters) — or per probe against the left row for index-nested-loops
/// (see IndexNLJoinOp, which evaluates them itself).
/// One range on the index column after the equality prefix. A point range
/// (`a IN (…)` item, OR'd equality) sets `point`; otherwise lower/upper with
/// open/closed edges (either side may be absent).
struct IndexRange {
  const Expr* point = nullptr;
  const Expr* lower = nullptr;
  bool lower_inclusive = true;
  const Expr* upper = nullptr;
  bool upper_inclusive = true;
};

struct IndexBounds {
  std::vector<const Expr*> eq_exprs;
  const Expr* lower = nullptr;  ///< range lower bound (on next column)
  bool lower_inclusive = true;
  const Expr* upper = nullptr;
  bool upper_inclusive = true;
  /// Optimizer-v2 multi-range access (`a IN (…)`, OR-of-ranges): when
  /// non-empty the scan visits each range in key order and the single-range
  /// fields above are ignored. Only v2 plans (bind peeking on) produce
  /// these, so legacy plan text never changes.
  std::vector<IndexRange> ranges;
};

/// Index range scan + heap fetch; the random fetches charge the cost model
/// through the buffer pool (the Table 6 effect).
class IndexScanOp : public Operator {
 public:
  IndexScanOp(const TableInfo* table, const IndexInfo* index, size_t offset,
              size_t wide_width, IndexBounds bounds,
              std::vector<const Expr*> residual_filters);

  size_t OutputWidth() const override { return wide_width_; }
  std::string Describe(bool analyze) const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  /// Seeks the cursor to the next compiled key range; false when all ranges
  /// are exhausted.
  Result<bool> SeekNextRange();

  const TableInfo* table_;
  const IndexInfo* index_;
  size_t offset_;
  size_t wide_width_;
  IndexBounds bounds_;
  std::vector<const Expr*> filters_;
  ExecContext* ctx_ = nullptr;
  std::unique_ptr<BTree::Cursor> cursor_;
  std::string stop_key_;  ///< exclusive upper bound ("" = none)
  bool done_ = false;
  std::string rec_;  // heap-fetch scratch
  Row table_row_;
  SelVector sel_;
  /// Multi-range execution state: encoded (start, stop) per range, sorted
  /// and merged at Open; `next_range_` is the next one to seek.
  std::vector<std::pair<std::string, std::string>> key_ranges_;
  size_t next_range_ = 0;
};

// ---------------------------------------------------------------------------
// Streaming transforms
// ---------------------------------------------------------------------------

/// Applies residual predicates, compacting each child batch down to the
/// surviving rows via a selection vector.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, std::vector<const Expr*> predicates);

  size_t OutputWidth() const override { return child_->OutputWidth(); }
  std::string Describe(bool analyze) const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<const Expr*> predicates_;
  ExecContext* ctx_ = nullptr;
  RowBatch child_batch_;
  SelVector sel_;
};

/// Evaluates the select list, producing output rows.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<const Expr*> exprs);

  size_t OutputWidth() const override { return exprs_.size(); }
  std::string Describe(bool analyze) const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<const Expr*> exprs_;
  ExecContext* ctx_ = nullptr;
  RowBatch child_batch_;
};

/// Stops after `limit` rows, shrinking the pull capacity to the remaining
/// count so a cut mid-batch never pulls (or charges for) surplus rows.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit);

  size_t OutputWidth() const override { return child_->OutputWidth(); }
  std::string Describe(bool analyze) const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t produced_ = 0;
};

/// Drops duplicate rows (hash-based). `est_rows` (0 = unknown) pre-sizes the
/// hash set from the optimizer's cardinality estimate.
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child, uint64_t est_rows = 0);

  size_t OutputWidth() const override { return child_->OutputWidth(); }
  std::string Describe(bool analyze) const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  OperatorPtr child_;
  uint64_t est_rows_;
  ExecContext* ctx_ = nullptr;
  std::unordered_set<std::string> seen_;
  std::string key_scratch_;
  RowBatch child_batch_;
};

/// Materializes and re-emits child rows; Open() after the first run replays
/// from memory. Used as the inner of nested-loops joins.
class MaterializeOp : public Operator {
 public:
  /// With `cacheable` false the child is re-run on every Open — required
  /// when the subtree's output depends on correlation (outer refs) or
  /// parameters that change between Opens.
  explicit MaterializeOp(OperatorPtr child, bool cacheable = true);

  size_t OutputWidth() const override { return child_->OutputWidth(); }
  std::string Describe(bool analyze) const override;

  /// Accesses the materialized rows after Open.
  const std::vector<Row>& rows() const { return rows_; }

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  OperatorPtr child_;
  bool cacheable_;
  bool loaded_ = false;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  RowBatch child_batch_;
};

// ---------------------------------------------------------------------------
// Joins (join_ops.cc)
// ---------------------------------------------------------------------------

/// A contiguous wide-row range one side of a join fills.
struct FilledRange {
  size_t offset = 0;
  size_t width = 0;
};

/// Hash join: builds on `build`, probes with `probe`, merging wide rows.
/// With `preserve_probe` (left-outer semantics where the probe side is the
/// preserved side), probe rows without a match are emitted with the build
/// ranges left NULL. `est_build_rows` (0 = unknown) pre-sizes the hash table
/// from the optimizer's cardinality estimate. When the build child is a
/// GatherOp, the table is built by its worker pool (partitioned build).
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr build, OperatorPtr probe,
             std::vector<const Expr*> build_keys,
             std::vector<const Expr*> probe_keys,
             std::vector<const Expr*> residual,
             std::vector<FilledRange> build_ranges, bool preserve_probe,
             uint64_t est_build_rows = 0);

  size_t OutputWidth() const override { return probe_->OutputWidth(); }
  std::string Describe(bool analyze) const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  OperatorPtr build_;
  OperatorPtr probe_;
  std::vector<const Expr*> build_keys_;
  std::vector<const Expr*> probe_keys_;
  std::vector<const Expr*> residual_;
  std::vector<FilledRange> build_ranges_;
  bool preserve_probe_;
  uint64_t est_build_rows_;

  ExecContext* ctx_ = nullptr;
  std::unordered_map<std::string, std::vector<Row>> table_;
  std::string key_scratch_;
  RowBatch probe_batch_;
  size_t probe_pos_ = 0;
  bool have_probe_ = false;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
  bool emitted_for_probe_ = false;
  bool probe_done_ = false;
};

/// Index nested-loops join: for each left row, evaluates the key
/// expressions and probes `index`, fetching matching heap rows of `table`
/// into the wide row. One round of random I/O per probe — the expensive
/// pattern the paper's 2.2 Open SQL reports exhibit server-side.
class IndexNLJoinOp : public Operator {
 public:
  IndexNLJoinOp(OperatorPtr left, const TableInfo* table,
                const IndexInfo* index, size_t table_offset,
                std::vector<const Expr*> key_exprs,
                std::vector<const Expr*> residual, bool preserve_left);

  size_t OutputWidth() const override { return left_->OutputWidth(); }
  std::string Describe(bool analyze) const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  /// Computes the probe key and cursor for the current left row.
  Status BeginProbe(EvalContext* ec);

  OperatorPtr left_;
  const TableInfo* table_;
  const IndexInfo* index_;
  size_t table_offset_;
  std::vector<const Expr*> key_exprs_;
  std::vector<const Expr*> residual_;
  bool preserve_left_;

  ExecContext* ctx_ = nullptr;
  RowBatch left_batch_;
  size_t left_pos_ = 0;
  bool have_left_ = false;
  bool left_done_ = false;
  std::unique_ptr<BTree::Cursor> cursor_;
  std::string probe_key_;
  std::string stop_key_;  ///< per-probe upper bound, computed once per probe
  bool emitted_for_left_ = false;
  std::string rec_;  // heap-fetch scratch
  Row inner_row_;
};

/// Nested-loops join over a materialized right side, with an arbitrary
/// predicate (used for non-equi joins and cross products).
class NestedLoopsJoinOp : public Operator {
 public:
  NestedLoopsJoinOp(OperatorPtr left, OperatorPtr right,
                    std::vector<const Expr*> predicates,
                    std::vector<FilledRange> right_ranges, bool preserve_left);

  size_t OutputWidth() const override { return left_->OutputWidth(); }
  std::string Describe(bool analyze) const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  OperatorPtr left_;
  std::unique_ptr<MaterializeOp> right_;
  std::vector<const Expr*> predicates_;
  std::vector<FilledRange> right_ranges_;
  bool preserve_left_;

  ExecContext* ctx_ = nullptr;
  RowBatch left_batch_;
  size_t left_pos_ = 0;
  bool have_left_ = false;
  bool left_done_ = false;
  size_t right_pos_ = 0;
  bool emitted_for_left_ = false;
};

// ---------------------------------------------------------------------------
// Aggregation (agg_ops.cc)
// ---------------------------------------------------------------------------

/// Hash aggregation. Output rows: [group values..., aggregate results...].
/// Without GROUP BY, emits exactly one row (aggregates over the empty input
/// follow SQL: COUNT = 0, SUM/AVG/MIN/MAX = NULL). `est_input_rows`
/// (0 = unknown) pre-sizes the hash table from the optimizer's estimate.
class HashAggOp : public Operator {
 public:
  HashAggOp(OperatorPtr child, std::vector<const Expr*> group_exprs,
            std::vector<const Expr*> agg_calls, uint64_t est_input_rows = 0);

  size_t OutputWidth() const override {
    return group_exprs_.size() + agg_calls_.size();
  }
  std::string Describe(bool analyze) const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  OperatorPtr child_;
  uint64_t est_input_rows_;
  std::vector<const Expr*> group_exprs_;
  std::vector<const Expr*> agg_calls_;
  ExecContext* ctx_ = nullptr;
  std::vector<Row> results_;
  size_t pos_ = 0;
  RowBatch child_batch_;
};

// ---------------------------------------------------------------------------
// Sorting (sort_ops.cc)
// ---------------------------------------------------------------------------

struct SortKey {
  size_t column = 0;  ///< position in the child's output row
  bool asc = true;
};

/// Full sort of the child's rows. When the data exceeds the work-memory
/// budget, external-sort I/O (run write + merge read) is charged to the
/// simulated clock — in-memory execution stays exact either way.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys);

  size_t OutputWidth() const override { return child_->OutputWidth(); }
  std::string Describe(bool analyze) const override;

 protected:
  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextBatchImpl(RowBatch* out) override;
  Status CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  RowBatch child_batch_;
};

/// Encodes a row (or a subset of its values) into a canonical byte string
/// usable as a hash/equality key.
std::string RowKey(const Row& row);
std::string ValuesKey(const std::vector<Value>& values);

/// Evaluates equi-join key expressions into a canonical byte key, appending
/// to a caller-owned (reusable) buffer after clearing it. Numerics are
/// normalized to double so INT 5 and DECIMAL 5.00 meet; `*null_key` is set
/// when any key value is NULL (SQL equi-join never matches on NULL).
/// Shared by HashJoinOp and the parallel partitioned join build.
Status EvalJoinKey(const std::vector<const Expr*>& keys, const EvalContext& ec,
                   std::string* out, bool* null_key);

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_EXEC_EXECUTOR_H_
