#include <algorithm>

#include "common/str_util.h"
#include "rdbms/exec/executor.h"

namespace r3 {
namespace rdbms {

namespace {

std::string Indent(const std::string& s) {
  std::string out;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) end = s.size();
    out += "  " + s.substr(start, end - start) + "\n";
    start = end + 1;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

size_t ApproxRowBytes(const Row& row) {
  size_t n = 0;
  for (const Value& v : row) {
    n += 9;
    if (v.type() == DataType::kString) n += v.string_value().size();
  }
  return n;
}

}  // namespace

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

Status SortOp::OpenImpl(ExecContext* ctx) {
  rows_.clear();
  pos_ = 0;
  R3_RETURN_IF_ERROR(child_->Open(ctx));
  size_t bytes = 0;
  while (true) {
    child_batch_.Reset(ctx->batch_size);
    R3_ASSIGN_OR_RETURN(bool ok, child_->NextBatch(&child_batch_));
    if (!ok) break;
    for (size_t i = 0; i < child_batch_.size(); ++i) {
      ctx->clock->ChargeDbmsTuple();
      Row& row = child_batch_.row(i);
      bytes += ApproxRowBytes(row);
      rows_.push_back(std::move(row));
    }
  }
  R3_RETURN_IF_ERROR(child_->Close());

  // A pipelined in-memory sort up to the work-memory budget; beyond that,
  // charge one external run-generation + merge pass (write + re-read).
  if (bytes > ctx->work_mem_bytes) {
    int64_t pages = static_cast<int64_t>((bytes + kPageSize - 1) / kPageSize);
    for (int64_t i = 0; i < pages; ++i) {
      ctx->clock->ChargePageWrite();
      ctx->clock->ChargeSeqPageRead();
    }
  }

  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const SortKey& k : keys_) {
                       int c = a[k.column].Compare(b[k.column]);
                       if (c != 0) return k.asc ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return Status::OK();
}

Result<bool> SortOp::NextBatchImpl(RowBatch* out) {
  while (!out->full() && pos_ < rows_.size()) {
    out->AppendRow() = rows_[pos_++];  // copy: rows_ replay on re-open
  }
  return !out->empty();
}

Status SortOp::CloseImpl() {
  rows_.clear();
  pos_ = 0;
  return Status::OK();
}

std::string SortOp::Describe(bool analyze) const {
  std::string out = "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i != 0) out += ", ";
    out += str::Format("#%zu %s", keys_[i].column, keys_[i].asc ? "asc" : "desc");
  }
  return out + ")" + StatsSuffix(analyze) + "\n" +
         Indent(child_->Describe(analyze));
}

}  // namespace rdbms
}  // namespace r3
