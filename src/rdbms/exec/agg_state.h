#ifndef R3DB_RDBMS_EXEC_AGG_STATE_H_
#define R3DB_RDBMS_EXEC_AGG_STATE_H_

#include <cstdint>
#include <set>
#include <string>

#include "rdbms/expr/expr.h"
#include "rdbms/index/key_codec.h"
#include "rdbms/value.h"

namespace r3 {
namespace rdbms {

/// Accumulator for one aggregate call within one group. Shared by the serial
/// HashAggOp and the parallel partial-aggregation pipeline: workers each
/// Accumulate() into private states, which the gather barrier combines with
/// Merge() before Finalize().
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min;
  Value max;
  std::set<std::string> distinct;  // encoded values, for DISTINCT aggs

  void Accumulate(const Expr& call, const Value& v) {
    if (call.agg_func == AggFunc::kCountStar) {
      ++count;
      return;
    }
    if (v.is_null()) return;  // SQL: aggregates ignore NULLs
    if (call.agg_distinct) {
      if (!distinct.insert(key_codec::Encode(v)).second) return;
    }
    ++count;
    switch (call.agg_func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == DataType::kInt64 && sum_is_int) {
          isum += v.int_value();
        } else {
          sum_is_int = false;
        }
        sum += v.AsDouble();
        break;
      case AggFunc::kMin:
        if (min.is_null() || v.Compare(min) < 0) min = v;
        break;
      case AggFunc::kMax:
        if (max.is_null() || v.Compare(max) > 0) max = v;
        break;
    }
  }

  /// Folds the partial state `o` (same call, same group, disjoint input
  /// rows) into *this. Not valid for DISTINCT aggregates — COUNT/SUM over
  /// merged `distinct` sets cannot be reconstructed from the partial counts,
  /// so the planner keeps DISTINCT aggregation serial.
  void Merge(const AggState& o) {
    count += o.count;
    if (!o.sum_is_int) sum_is_int = false;
    isum += o.isum;
    sum += o.sum;
    if (!o.min.is_null() && (min.is_null() || o.min.Compare(min) < 0)) {
      min = o.min;
    }
    if (!o.max.is_null() && (max.is_null() || o.max.Compare(max) > 0)) {
      max = o.max;
    }
  }

  Value Finalize(const Expr& call) const {
    switch (call.agg_func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null(DataType::kDouble);
        if (sum_is_int) return Value::Int(isum);
        return Value::Dbl(sum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null(DataType::kDouble);
        return Value::Dbl(sum / static_cast<double>(count));
      case AggFunc::kMin:
        return min;
      case AggFunc::kMax:
        return max;
    }
    return Value::Null();
  }
};

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_EXEC_AGG_STATE_H_
