#include "rdbms/exec/executor.h"

#include <algorithm>

#include "common/str_util.h"
#include "rdbms/index/key_codec.h"
#include "rdbms/storage/page.h"
#include "rdbms/txn/mvcc.h"

namespace r3 {
namespace rdbms {

namespace {

/// Indents every line of a child's debug string.
std::string Indent(const std::string& s) {
  std::string out;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) end = s.size();
    out += "  " + s.substr(start, end - start) + "\n";
    start = end + 1;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Operator wrappers
// ---------------------------------------------------------------------------

Status Operator::Open(ExecContext* ctx) {
  stats_clock_ = ctx->clock;
  totals_ = ctx->totals;
  if (ctx->statement_epoch != stats_epoch_) {
    // First Open on behalf of a new top-level statement: drop the counters
    // accumulated by earlier executions of this (cached) plan.
    stats_ = OperatorStats();
    stats_epoch_ = ctx->statement_epoch;
  }
  if (Tracer* tracer =
          stats_clock_ != nullptr ? stats_clock_->tracer() : nullptr) {
    if (span_token_ != Tracer::kInactive) tracer->EndSpan(span_token_);
    if (span_name_.empty()) {
      span_name_ = Describe(false);
      size_t eol = span_name_.find('\n');
      if (eol != std::string::npos) span_name_.resize(eol);
    }
    span_token_ = tracer->BeginSpan("exec", span_name_);
    span_rows_base_ = stats_.rows_out;
  }
  ++stats_.opens;
  if (totals_ != nullptr) ++totals_->opens;
  int64_t t0 = stats_clock_ != nullptr ? stats_clock_->NowMicros() : 0;
  Status s = OpenImpl(ctx);
  if (stats_clock_ != nullptr) stats_.sim_us += stats_clock_->NowMicros() - t0;
  return s;
}

Result<bool> Operator::NextBatch(RowBatch* out) {
  out->Clear();
  int64_t t0 = stats_clock_ != nullptr ? stats_clock_->NowMicros() : 0;
  Result<bool> r = NextBatchImpl(out);
  if (stats_clock_ != nullptr) stats_.sim_us += stats_clock_->NowMicros() - t0;
  if (r.ok() && r.value()) {
    stats_.rows_out += static_cast<int64_t>(out->size());
    ++stats_.batches_out;
    if (totals_ != nullptr) {
      totals_->rows += static_cast<int64_t>(out->size());
      ++totals_->batches;
    }
  }
  return r;
}

Status Operator::Close() {
  ++stats_.closes;
  if (totals_ != nullptr) ++totals_->closes;
  Status s = CloseImpl();
  if (span_token_ != Tracer::kInactive && stats_clock_ != nullptr) {
    if (Tracer* tracer = stats_clock_->tracer()) {
      tracer->SpanArgInt(span_token_, "rows", stats_.rows_out - span_rows_base_);
      tracer->EndSpan(span_token_);
    }
    span_token_ = Tracer::kInactive;
  }
  return s;
}

std::string Operator::StatsSuffix(bool analyze) const {
  if (!analyze) return "";
  std::string out =
      str::Format(" [rows=%lld batches=%lld opens=%lld sim=%lldus]",
                  static_cast<long long>(stats_.rows_out),
                  static_cast<long long>(stats_.batches_out),
                  static_cast<long long>(stats_.opens),
                  static_cast<long long>(stats_.sim_us));
  // Est-vs-actual drift for nodes the optimizer recorded an estimate on;
  // the stale-stats story of EXPLAIN ANALYZE (plain EXPLAIN is untouched).
  if (est_rows_ > 0) {
    double actual = static_cast<double>(stats_.rows_out);
    double drift = actual / static_cast<double>(est_rows_);
    out += str::Format(" [est_rows=%llu drift=%.2fx]",
                       static_cast<unsigned long long>(est_rows_), drift);
  }
  return out;
}

std::string ExplainPlan(const Operator& root, bool analyze) {
  return root.Describe(analyze);
}

std::string RowKey(const Row& row) { return key_codec::Encode(row); }
std::string ValuesKey(const std::vector<Value>& values) {
  return key_codec::Encode(values);
}

Result<bool> MvccFetchRow(const ExecContext& ctx, const TableInfo* table,
                          Rid rid, std::string* rec) {
  Status got = table->storage->Get(rid, rec);
  if (got.code() == StatusCode::kNotFound && ctx.mvcc != nullptr &&
      ctx.snapshot != nullptr) {
    // Under deferred index cleanup (DatabaseOptions::mvcc_index_ghosts) a
    // B-tree entry can outlive its row: emit the ghost image when this
    // snapshot must still see the row, skip the entry otherwise.
    return ctx.mvcc->GhostImage(table->storage->file_id(), rid, *ctx.snapshot,
                                rec);
  }
  R3_RETURN_IF_ERROR(got);
  if (ctx.mvcc == nullptr || ctx.snapshot == nullptr ||
      !ctx.mvcc->MightHaveVersions(table->storage->file_id())) {
    return true;
  }
  std::string alt;
  switch (
      ctx.mvcc->Check(table->storage->file_id(), rid, *ctx.snapshot, &alt)) {
    case txn::MvccManager::Visibility::kCurrent:
      return true;
    case txn::MvccManager::Visibility::kAltVersion:
      *rec = std::move(alt);
      return true;
    case txn::MvccManager::Visibility::kInvisible:
      return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// SeqScanOp
// ---------------------------------------------------------------------------

namespace {

/// Collects the table-local column ids a predicate reads (wide-row refs
/// rebased by `offset`, clipped to the table's width). Correlated outer
/// refs and subquery internals are charged-for conservatively elsewhere.
void CollectLocalCols(const Expr& e, size_t offset, size_t ncols,
                      std::vector<size_t>* out) {
  if (e.kind == ExprKind::kColumnRef && e.column_index >= offset &&
      e.column_index < offset + ncols) {
    out->push_back(e.column_index - offset);
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr) CollectLocalCols(*c, offset, ncols, out);
  }
}

void SortUnique(std::vector<size_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

bool IsSubqueryNode(const Expr& e) {
  return e.kind == ExprKind::kScalarSubquery ||
         e.kind == ExprKind::kExistsSubquery ||
         e.kind == ExprKind::kInSubquery;
}

}  // namespace

SeqScanOp::SeqScanOp(const TableInfo* table, size_t offset, size_t wide_width,
                     std::vector<const Expr*> filters,
                     std::optional<std::vector<size_t>> needed_cols)
    : table_(table),
      offset_(offset),
      wide_width_(wide_width),
      filters_(std::move(filters)),
      needed_cols_(std::move(needed_cols)) {}

Status SeqScanOp::BuildScanSpec(ExecContext* ctx, ScanSpec* spec) const {
  spec->mvcc = ctx->mvcc;
  spec->snapshot = ctx->snapshot;
  spec->offset = offset_;
  spec->wide_width = wide_width_;
  if (needed_cols_.has_value()) {
    spec->all_columns = false;
    spec->needed_cols = *needed_cols_;
    SortUnique(&spec->needed_cols);
  }
  if (table_->storage->kind() == EngineKind::kRowHeap) return Status::OK();
  // Columnar extras: which columns the filters read (charging), and which
  // string-equality predicates can pre-filter on dictionary codes. A
  // pushed-down equality is evaluated exactly like EvalExpr would on the
  // materialized value (NULL never matches), and the original predicate
  // stays in filters_, so this can only skip decode work — never change
  // results.
  const size_t ncols = table_->schema.NumColumns();
  EvalContext ec = ctx->MakeEvalContext(nullptr);
  for (const Expr* f : filters_) {
    CollectLocalCols(*f, offset_, ncols, &spec->filter_cols);
    if (f->kind != ExprKind::kCompare || f->cmp_op != CmpOp::kEq ||
        f->children.size() != 2) {
      continue;
    }
    for (int side = 0; side < 2; ++side) {
      const Expr& col = *f->children[side];
      const Expr& konst = *f->children[1 - side];
      if (col.kind != ExprKind::kColumnRef || col.column_index < offset_ ||
          col.column_index >= offset_ + ncols) {
        continue;
      }
      size_t local = col.column_index - offset_;
      if (table_->schema.column(local).type != DataType::kString) continue;
      if (ExprHasColumnRefs(konst) || ExprContains(konst, IsSubqueryNode)) {
        continue;
      }
      Value v;
      Status st = EvalExpr(konst, ec, &v);
      if (!st.ok() || v.is_null() || v.type() != DataType::kString) continue;
      spec->dict_eqs.push_back(ScanSpec::DictEq{local, v.string_value()});
      break;
    }
  }
  SortUnique(&spec->filter_cols);
  return Status::OK();
}

Status SeqScanOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  done_ = false;
  ScanSpec spec;
  R3_RETURN_IF_ERROR(BuildScanSpec(ctx, &spec));
  cursor_ = table_->storage->NewScanCursor(spec);
  return Status::OK();
}

Result<bool> SeqScanOp::NextBatchImpl(RowBatch* out) {
  if (done_) return false;
  R3_RETURN_IF_ERROR(cursor_->BeginBatch());
  EvalContext ec = ctx_->MakeEvalContext(nullptr);
  while (!out->full()) {
    size_t first = out->size();
    R3_ASSIGN_OR_RETURN(bool more, cursor_->NextChunk(out));
    if (!more) {
      done_ = true;
      break;
    }
    // Any page pin was released inside the cursor before filters run (they
    // may execute subqueries).
    if (!filters_.empty() && out->size() > first) {
      R3_RETURN_IF_ERROR(
          EvalPredicatesBatch(filters_, &ec, *out, first, &sel_));
      out->Keep(sel_, first);
    }
  }
  return !out->empty();
}

Status SeqScanOp::CloseImpl() {
  cursor_.reset();
  return Status::OK();
}

std::string SeqScanOp::Describe(bool analyze) const {
  std::string out = table_->storage->kind() == EngineKind::kColumnar
                        ? "ColumnarScan("
                        : "SeqScan(";
  out += table_->name;
  for (const Expr* f : filters_) out += ", " + f->ToString();
  return out + ")" + StatsSuffix(analyze);
}

// ---------------------------------------------------------------------------
// IndexScanOp
// ---------------------------------------------------------------------------

IndexScanOp::IndexScanOp(const TableInfo* table, const IndexInfo* index,
                         size_t offset, size_t wide_width, IndexBounds bounds,
                         std::vector<const Expr*> residual_filters)
    : table_(table),
      index_(index),
      offset_(offset),
      wide_width_(wide_width),
      bounds_(std::move(bounds)),
      filters_(std::move(residual_filters)) {}

Status IndexScanOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  done_ = false;
  key_ranges_.clear();
  next_range_ = 0;
  // Evaluate the bound expressions (no row context: literals/params only).
  EvalContext ec = ctx_->MakeEvalContext(nullptr);
  std::string prefix;
  for (size_t i = 0; i < bounds_.eq_exprs.size(); ++i) {
    Value v;
    R3_RETURN_IF_ERROR(EvalExpr(*bounds_.eq_exprs[i], ec, &v));
    // Cast to the index column's type so encodings line up.
    size_t col = index_->column_indices[i];
    R3_ASSIGN_OR_RETURN(v, v.CastTo(table_->schema.column(col).type));
    key_codec::EncodeValue(v, &prefix);
  }
  if (!bounds_.ranges.empty()) {
    // Multi-range (optimizer v2): compile every range to an encoded
    // (start, stop) pair, then sort and merge overlaps so the scan emits
    // each qualifying row exactly once, in key order.
    const size_t col = index_->column_indices[bounds_.eq_exprs.size()];
    const DataType ct = table_->schema.column(col).type;
    auto encode = [&](const Expr& e, std::string* out_key) -> Status {
      Value v;
      R3_RETURN_IF_ERROR(EvalExpr(e, ec, &v));
      R3_ASSIGN_OR_RETURN(v, v.CastTo(ct));
      *out_key = prefix;
      key_codec::EncodeValue(v, out_key);
      return Status::OK();
    };
    for (const IndexRange& r : bounds_.ranges) {
      std::string start = prefix;
      std::string stop = key_codec::PrefixUpperBound(prefix);
      std::string enc;
      if (r.point != nullptr) {
        R3_RETURN_IF_ERROR(encode(*r.point, &enc));
        start = enc;
        stop = key_codec::PrefixUpperBound(enc);
      } else {
        if (r.lower != nullptr) {
          R3_RETURN_IF_ERROR(encode(*r.lower, &enc));
          start = r.lower_inclusive ? enc : key_codec::PrefixUpperBound(enc);
        }
        if (r.upper != nullptr) {
          R3_RETURN_IF_ERROR(encode(*r.upper, &enc));
          stop = r.upper_inclusive ? key_codec::PrefixUpperBound(enc) : enc;
        }
      }
      if (!stop.empty() && start >= stop) continue;  // provably empty
      key_ranges_.emplace_back(std::move(start), std::move(stop));
    }
    std::sort(key_ranges_.begin(), key_ranges_.end());
    std::vector<std::pair<std::string, std::string>> merged;
    for (auto& kr : key_ranges_) {
      if (!merged.empty()) {
        auto& last = merged.back();
        const bool last_unbounded = last.second.empty();
        if (last_unbounded || kr.first <= last.second) {
          if (last_unbounded || kr.second.empty()) {
            last.second.clear();
          } else if (kr.second > last.second) {
            last.second = kr.second;
          }
          continue;
        }
      }
      merged.push_back(std::move(kr));
    }
    key_ranges_ = std::move(merged);
    R3_ASSIGN_OR_RETURN(bool any, SeekNextRange());
    done_ = !any;
    return Status::OK();
  }
  std::string start = prefix;
  stop_key_ = key_codec::PrefixUpperBound(prefix);
  size_t range_col_pos = bounds_.eq_exprs.size();
  if (bounds_.lower != nullptr) {
    Value v;
    R3_RETURN_IF_ERROR(EvalExpr(*bounds_.lower, ec, &v));
    size_t col = index_->column_indices[range_col_pos];
    R3_ASSIGN_OR_RETURN(v, v.CastTo(table_->schema.column(col).type));
    std::string enc = prefix;
    key_codec::EncodeValue(v, &enc);
    start = bounds_.lower_inclusive ? enc : key_codec::PrefixUpperBound(enc);
  }
  if (bounds_.upper != nullptr) {
    Value v;
    R3_RETURN_IF_ERROR(EvalExpr(*bounds_.upper, ec, &v));
    size_t col = index_->column_indices[range_col_pos];
    R3_ASSIGN_OR_RETURN(v, v.CastTo(table_->schema.column(col).type));
    std::string enc = prefix;
    key_codec::EncodeValue(v, &enc);
    stop_key_ = bounds_.upper_inclusive ? key_codec::PrefixUpperBound(enc) : enc;
  }
  R3_ASSIGN_OR_RETURN(BTree::Cursor c, index_->btree->Seek(start));
  cursor_ = std::make_unique<BTree::Cursor>(std::move(c));
  return Status::OK();
}

Result<bool> IndexScanOp::SeekNextRange() {
  if (next_range_ >= key_ranges_.size()) return false;
  const auto& kr = key_ranges_[next_range_++];
  stop_key_ = kr.second;
  R3_ASSIGN_OR_RETURN(BTree::Cursor c, index_->btree->Seek(kr.first));
  cursor_ = std::make_unique<BTree::Cursor>(std::move(c));
  return true;
}

Result<bool> IndexScanOp::NextBatchImpl(RowBatch* out) {
  if (done_) return false;
  EvalContext ec = ctx_->MakeEvalContext(nullptr);
  std::string key;
  uint64_t payload = 0;
  while (!out->full() && !done_) {
    size_t first = out->size();
    while (!out->full()) {
      R3_ASSIGN_OR_RETURN(bool ok, cursor_->Next(&key, &payload));
      if (!ok || (!stop_key_.empty() && key >= stop_key_)) {
        R3_ASSIGN_OR_RETURN(bool more, SeekNextRange());
        if (more) continue;
        done_ = true;
        break;
      }
      ctx_->clock->ChargeDbmsTuple();
      R3_ASSIGN_OR_RETURN(
          bool visible,
          MvccFetchRow(*ctx_, table_, Rid::Unpack(payload), &rec_));
      if (!visible) continue;  // row created after this statement's snapshot
      R3_RETURN_IF_ERROR(DeserializeRow(table_->schema, rec_, &table_row_));
      Row& wide = out->AppendRow();
      wide.assign(wide_width_, Value::Null());
      for (size_t i = 0; i < table_row_.size(); ++i) {
        wide[offset_ + i] = std::move(table_row_[i]);
      }
    }
    if (!filters_.empty() && out->size() > first) {
      R3_RETURN_IF_ERROR(
          EvalPredicatesBatch(filters_, &ec, *out, first, &sel_));
      out->Keep(sel_, first);
    }
  }
  return !out->empty();
}

Status IndexScanOp::CloseImpl() {
  cursor_.reset();
  return Status::OK();
}

std::string IndexScanOp::Describe(bool analyze) const {
  std::string out = "IndexScan(" + table_->name + " via " + index_->name;
  out += str::Format(", eq=%zu", bounds_.eq_exprs.size());
  if (!bounds_.ranges.empty()) {
    // v2 multi-range rendering (never produced by legacy plans).
    out += str::Format(", ranges=%zu{", bounds_.ranges.size());
    for (size_t i = 0; i < bounds_.ranges.size(); ++i) {
      const IndexRange& r = bounds_.ranges[i];
      if (i > 0) out += ",";
      if (r.point != nullptr) {
        out += "=" + r.point->ToString();
      } else {
        out += r.lower_inclusive ? "[" : "(";
        if (r.lower != nullptr) out += r.lower->ToString();
        out += "..";
        if (r.upper != nullptr) out += r.upper->ToString();
        out += r.upper_inclusive ? "]" : ")";
      }
    }
    out += "}";
  }
  if (bounds_.lower != nullptr) out += ", lo=" + bounds_.lower->ToString();
  if (bounds_.upper != nullptr) out += ", hi=" + bounds_.upper->ToString();
  for (const Expr* f : filters_) out += ", " + f->ToString();
  return out + ")" + StatsSuffix(analyze);
}

// ---------------------------------------------------------------------------
// FilterOp
// ---------------------------------------------------------------------------

FilterOp::FilterOp(OperatorPtr child, std::vector<const Expr*> predicates)
    : child_(std::move(child)), predicates_(std::move(predicates)) {}

Status FilterOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> FilterOp::NextBatchImpl(RowBatch* out) {
  EvalContext ec = ctx_->MakeEvalContext(nullptr);
  while (out->empty()) {
    // Capacity-bounded pull: the child produces at most as many rows as the
    // caller still wants, so an early-exiting caller never triggers work the
    // row-at-a-time engine would not have done (DESIGN.md §6).
    child_batch_.Reset(out->capacity());
    R3_ASSIGN_OR_RETURN(bool ok, child_->NextBatch(&child_batch_));
    if (!ok) return false;
    R3_RETURN_IF_ERROR(
        EvalPredicatesBatch(predicates_, &ec, child_batch_, 0, &sel_));
    for (uint32_t idx : sel_) out->PushRow(std::move(child_batch_.row(idx)));
  }
  return true;
}

Status FilterOp::CloseImpl() { return child_->Close(); }

std::string FilterOp::Describe(bool analyze) const {
  std::string out = "Filter(";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i != 0) out += " AND ";
    out += predicates_[i]->ToString();
  }
  return out + ")" + StatsSuffix(analyze) + "\n" +
         Indent(child_->Describe(analyze));
}

// ---------------------------------------------------------------------------
// ProjectOp
// ---------------------------------------------------------------------------

ProjectOp::ProjectOp(OperatorPtr child, std::vector<const Expr*> exprs)
    : child_(std::move(child)), exprs_(std::move(exprs)) {}

Status ProjectOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> ProjectOp::NextBatchImpl(RowBatch* out) {
  child_batch_.Reset(out->capacity());
  R3_ASSIGN_OR_RETURN(bool ok, child_->NextBatch(&child_batch_));
  if (!ok) return false;
  EvalContext ec = ctx_->MakeEvalContext(nullptr);
  R3_RETURN_IF_ERROR(EvalProjectionBatch(exprs_, &ec, child_batch_, out));
  return true;
}

Status ProjectOp::CloseImpl() { return child_->Close(); }

std::string ProjectOp::Describe(bool analyze) const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i != 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  return out + ")" + StatsSuffix(analyze) + "\n" +
         Indent(child_->Describe(analyze));
}

// ---------------------------------------------------------------------------
// LimitOp
// ---------------------------------------------------------------------------

LimitOp::LimitOp(OperatorPtr child, int64_t limit)
    : child_(std::move(child)), limit_(limit) {}

Status LimitOp::OpenImpl(ExecContext* ctx) {
  produced_ = 0;
  return child_->Open(ctx);
}

Result<bool> LimitOp::NextBatchImpl(RowBatch* out) {
  if (produced_ >= limit_) return false;
  // Shrink the pull to the remaining row budget so a LIMIT cutting
  // mid-batch never makes the child produce (or charge for) surplus rows.
  size_t want = std::min<size_t>(
      out->capacity(), static_cast<size_t>(limit_ - produced_));
  out->Reset(want);
  R3_ASSIGN_OR_RETURN(bool ok, child_->NextBatch(out));
  if (!ok) return false;
  produced_ += static_cast<int64_t>(out->size());
  return true;
}

Status LimitOp::CloseImpl() { return child_->Close(); }

std::string LimitOp::Describe(bool analyze) const {
  return str::Format("Limit(%lld)", static_cast<long long>(limit_)) +
         StatsSuffix(analyze) + "\n" + Indent(child_->Describe(analyze));
}

// ---------------------------------------------------------------------------
// DistinctOp
// ---------------------------------------------------------------------------

DistinctOp::DistinctOp(OperatorPtr child, uint64_t est_rows)
    : child_(std::move(child)), est_rows_(est_rows) {}

Status DistinctOp::OpenImpl(ExecContext* ctx) {
  ctx_ = ctx;
  seen_.clear();
  if (est_rows_ > 0) {
    seen_.reserve(
        static_cast<size_t>(std::min<uint64_t>(est_rows_, uint64_t{1} << 20)));
  }
  return child_->Open(ctx);
}

Result<bool> DistinctOp::NextBatchImpl(RowBatch* out) {
  while (out->empty()) {
    child_batch_.Reset(out->capacity());
    R3_ASSIGN_OR_RETURN(bool ok, child_->NextBatch(&child_batch_));
    if (!ok) return false;
    for (size_t i = 0; i < child_batch_.size(); ++i) {
      ctx_->clock->ChargeDbmsTuple();
      Row& row = child_batch_.row(i);
      // Encode into a reused scratch buffer; the set only copies on insert.
      key_scratch_.clear();
      for (const Value& v : row) key_codec::EncodeValue(v, &key_scratch_);
      if (seen_.insert(key_scratch_).second) out->PushRow(std::move(row));
    }
  }
  return true;
}

Status DistinctOp::CloseImpl() {
  seen_.clear();
  return child_->Close();
}

std::string DistinctOp::Describe(bool analyze) const {
  return "Distinct" + StatsSuffix(analyze) + "\n" +
         Indent(child_->Describe(analyze));
}

// ---------------------------------------------------------------------------
// MaterializeOp
// ---------------------------------------------------------------------------

MaterializeOp::MaterializeOp(OperatorPtr child, bool cacheable)
    : child_(std::move(child)), cacheable_(cacheable) {}

Status MaterializeOp::OpenImpl(ExecContext* ctx) {
  pos_ = 0;
  if (loaded_ && cacheable_) return Status::OK();
  rows_.clear();
  R3_RETURN_IF_ERROR(child_->Open(ctx));
  while (true) {
    child_batch_.Reset(ctx->batch_size);
    R3_ASSIGN_OR_RETURN(bool ok, child_->NextBatch(&child_batch_));
    if (!ok) break;
    for (size_t i = 0; i < child_batch_.size(); ++i) {
      rows_.push_back(std::move(child_batch_.row(i)));
    }
  }
  R3_RETURN_IF_ERROR(child_->Close());
  loaded_ = true;
  return Status::OK();
}

Result<bool> MaterializeOp::NextBatchImpl(RowBatch* out) {
  while (!out->full() && pos_ < rows_.size()) {
    out->AppendRow() = rows_[pos_++];  // copy: rows_ replays on re-open
  }
  return !out->empty();
}

Status MaterializeOp::CloseImpl() { return Status::OK(); }

std::string MaterializeOp::Describe(bool analyze) const {
  return "Materialize" + StatsSuffix(analyze) + "\n" +
         Indent(child_->Describe(analyze));
}

}  // namespace rdbms
}  // namespace r3
