#include "rdbms/exec/executor.h"

#include <algorithm>

#include "common/str_util.h"
#include "rdbms/index/key_codec.h"

namespace r3 {
namespace rdbms {

namespace {

/// Indents every line of a child's debug string.
std::string Indent(const std::string& s) {
  std::string out;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) end = s.size();
    out += "  " + s.substr(start, end - start) + "\n";
    start = end + 1;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

Result<bool> PassesAll(const std::vector<const Expr*>& preds,
                       const EvalContext& ec) {
  for (const Expr* p : preds) {
    R3_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*p, ec));
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::string ExplainPlan(const Operator& root) { return root.DebugString(); }

std::string RowKey(const Row& row) { return key_codec::Encode(row); }
std::string ValuesKey(const std::vector<Value>& values) {
  return key_codec::Encode(values);
}

// ---------------------------------------------------------------------------
// SeqScanOp
// ---------------------------------------------------------------------------

SeqScanOp::SeqScanOp(const TableInfo* table, size_t offset, size_t wide_width,
                     std::vector<const Expr*> filters)
    : table_(table),
      offset_(offset),
      wide_width_(wide_width),
      filters_(std::move(filters)) {}

Status SeqScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  it_ = std::make_unique<HeapFile::Iterator>(table_->heap.get());
  return Status::OK();
}

Result<bool> SeqScanOp::Next(Row* out) {
  Rid rid;
  std::string rec;
  Row table_row;
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, it_->Next(&rid, &rec));
    if (!ok) return false;
    ctx_->clock->ChargeDbmsTuple();
    R3_RETURN_IF_ERROR(DeserializeRow(table_->schema, rec, &table_row));
    out->assign(wide_width_, Value::Null());
    for (size_t i = 0; i < table_row.size(); ++i) {
      (*out)[offset_ + i] = std::move(table_row[i]);
    }
    EvalContext ec = ctx_->MakeEvalContext(out);
    R3_ASSIGN_OR_RETURN(bool pass, PassesAll(filters_, ec));
    if (pass) return true;
  }
}

Status SeqScanOp::Close() {
  it_.reset();
  return Status::OK();
}

std::string SeqScanOp::DebugString() const {
  std::string out = "SeqScan(" + table_->name;
  for (const Expr* f : filters_) out += ", " + f->ToString();
  return out + ")";
}

// ---------------------------------------------------------------------------
// IndexScanOp
// ---------------------------------------------------------------------------

IndexScanOp::IndexScanOp(const TableInfo* table, const IndexInfo* index,
                         size_t offset, size_t wide_width, IndexBounds bounds,
                         std::vector<const Expr*> residual_filters)
    : table_(table),
      index_(index),
      offset_(offset),
      wide_width_(wide_width),
      bounds_(std::move(bounds)),
      filters_(std::move(residual_filters)) {}

Status IndexScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  done_ = false;
  // Evaluate the bound expressions (no row context: literals/params only).
  EvalContext ec = ctx_->MakeEvalContext(nullptr);
  std::string prefix;
  for (size_t i = 0; i < bounds_.eq_exprs.size(); ++i) {
    Value v;
    R3_RETURN_IF_ERROR(EvalExpr(*bounds_.eq_exprs[i], ec, &v));
    // Cast to the index column's type so encodings line up.
    size_t col = index_->column_indices[i];
    R3_ASSIGN_OR_RETURN(v, v.CastTo(table_->schema.column(col).type));
    key_codec::EncodeValue(v, &prefix);
  }
  std::string start = prefix;
  stop_key_ = key_codec::PrefixUpperBound(prefix);
  size_t range_col_pos = bounds_.eq_exprs.size();
  if (bounds_.lower != nullptr) {
    Value v;
    R3_RETURN_IF_ERROR(EvalExpr(*bounds_.lower, ec, &v));
    size_t col = index_->column_indices[range_col_pos];
    R3_ASSIGN_OR_RETURN(v, v.CastTo(table_->schema.column(col).type));
    std::string enc = prefix;
    key_codec::EncodeValue(v, &enc);
    start = bounds_.lower_inclusive ? enc : key_codec::PrefixUpperBound(enc);
  }
  if (bounds_.upper != nullptr) {
    Value v;
    R3_RETURN_IF_ERROR(EvalExpr(*bounds_.upper, ec, &v));
    size_t col = index_->column_indices[range_col_pos];
    R3_ASSIGN_OR_RETURN(v, v.CastTo(table_->schema.column(col).type));
    std::string enc = prefix;
    key_codec::EncodeValue(v, &enc);
    stop_key_ = bounds_.upper_inclusive ? key_codec::PrefixUpperBound(enc) : enc;
  }
  R3_ASSIGN_OR_RETURN(BTree::Cursor c, index_->btree->Seek(start));
  cursor_ = std::make_unique<BTree::Cursor>(std::move(c));
  return Status::OK();
}

Result<bool> IndexScanOp::Next(Row* out) {
  if (done_) return false;
  std::string key;
  uint64_t payload = 0;
  std::string rec;
  Row table_row;
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, cursor_->Next(&key, &payload));
    if (!ok) {
      done_ = true;
      return false;
    }
    if (!stop_key_.empty() && key >= stop_key_) {
      done_ = true;
      return false;
    }
    ctx_->clock->ChargeDbmsTuple();
    R3_RETURN_IF_ERROR(table_->heap->Get(Rid::Unpack(payload), &rec));
    R3_RETURN_IF_ERROR(DeserializeRow(table_->schema, rec, &table_row));
    out->assign(wide_width_, Value::Null());
    for (size_t i = 0; i < table_row.size(); ++i) {
      (*out)[offset_ + i] = std::move(table_row[i]);
    }
    EvalContext ec = ctx_->MakeEvalContext(out);
    R3_ASSIGN_OR_RETURN(bool pass, PassesAll(filters_, ec));
    if (pass) return true;
  }
}

Status IndexScanOp::Close() {
  cursor_.reset();
  return Status::OK();
}

std::string IndexScanOp::DebugString() const {
  std::string out = "IndexScan(" + table_->name + " via " + index_->name;
  out += str::Format(", eq=%zu", bounds_.eq_exprs.size());
  if (bounds_.lower != nullptr) out += ", lo=" + bounds_.lower->ToString();
  if (bounds_.upper != nullptr) out += ", hi=" + bounds_.upper->ToString();
  for (const Expr* f : filters_) out += ", " + f->ToString();
  return out + ")";
}

// ---------------------------------------------------------------------------
// FilterOp
// ---------------------------------------------------------------------------

FilterOp::FilterOp(OperatorPtr child, std::vector<const Expr*> predicates)
    : child_(std::move(child)), predicates_(std::move(predicates)) {}

Status FilterOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> FilterOp::Next(Row* out) {
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, child_->Next(out));
    if (!ok) return false;
    EvalContext ec = ctx_->MakeEvalContext(out);
    R3_ASSIGN_OR_RETURN(bool pass, PassesAll(predicates_, ec));
    if (pass) return true;
  }
}

Status FilterOp::Close() { return child_->Close(); }

std::string FilterOp::DebugString() const {
  std::string out = "Filter(";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i != 0) out += " AND ";
    out += predicates_[i]->ToString();
  }
  return out + ")\n" + Indent(child_->DebugString());
}

// ---------------------------------------------------------------------------
// ProjectOp
// ---------------------------------------------------------------------------

ProjectOp::ProjectOp(OperatorPtr child, std::vector<const Expr*> exprs)
    : child_(std::move(child)), exprs_(std::move(exprs)) {}

Status ProjectOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> ProjectOp::Next(Row* out) {
  R3_ASSIGN_OR_RETURN(bool ok, child_->Next(&scratch_));
  if (!ok) return false;
  out->clear();
  out->reserve(exprs_.size());
  EvalContext ec = ctx_->MakeEvalContext(&scratch_);
  for (const Expr* e : exprs_) {
    Value v;
    R3_RETURN_IF_ERROR(EvalExpr(*e, ec, &v));
    out->push_back(std::move(v));
  }
  return true;
}

Status ProjectOp::Close() { return child_->Close(); }

std::string ProjectOp::DebugString() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i != 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  return out + ")\n" + Indent(child_->DebugString());
}

// ---------------------------------------------------------------------------
// LimitOp
// ---------------------------------------------------------------------------

LimitOp::LimitOp(OperatorPtr child, int64_t limit)
    : child_(std::move(child)), limit_(limit) {}

Status LimitOp::Open(ExecContext* ctx) {
  produced_ = 0;
  return child_->Open(ctx);
}

Result<bool> LimitOp::Next(Row* out) {
  if (produced_ >= limit_) return false;
  R3_ASSIGN_OR_RETURN(bool ok, child_->Next(out));
  if (!ok) return false;
  ++produced_;
  return true;
}

Status LimitOp::Close() { return child_->Close(); }

std::string LimitOp::DebugString() const {
  return str::Format("Limit(%lld)\n", static_cast<long long>(limit_)) +
         Indent(child_->DebugString());
}

// ---------------------------------------------------------------------------
// DistinctOp
// ---------------------------------------------------------------------------

DistinctOp::DistinctOp(OperatorPtr child, uint64_t est_rows)
    : child_(std::move(child)), est_rows_(est_rows) {}

Status DistinctOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  seen_.clear();
  if (est_rows_ > 0) {
    seen_.reserve(
        static_cast<size_t>(std::min<uint64_t>(est_rows_, uint64_t{1} << 20)));
  }
  return child_->Open(ctx);
}

Result<bool> DistinctOp::Next(Row* out) {
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, child_->Next(out));
    if (!ok) return false;
    ctx_->clock->ChargeDbmsTuple();
    // Encode into a reused scratch buffer; the set only copies on insert.
    key_scratch_.clear();
    for (const Value& v : *out) key_codec::EncodeValue(v, &key_scratch_);
    if (seen_.insert(key_scratch_).second) return true;
  }
}

Status DistinctOp::Close() {
  seen_.clear();
  return child_->Close();
}

std::string DistinctOp::DebugString() const {
  return "Distinct\n" + Indent(child_->DebugString());
}

// ---------------------------------------------------------------------------
// MaterializeOp
// ---------------------------------------------------------------------------

MaterializeOp::MaterializeOp(OperatorPtr child, bool cacheable)
    : child_(std::move(child)), cacheable_(cacheable) {}

Status MaterializeOp::Open(ExecContext* ctx) {
  pos_ = 0;
  if (loaded_ && cacheable_) return Status::OK();
  rows_.clear();
  R3_RETURN_IF_ERROR(child_->Open(ctx));
  Row row;
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, child_->Next(&row));
    if (!ok) break;
    rows_.push_back(row);
  }
  R3_RETURN_IF_ERROR(child_->Close());
  loaded_ = true;
  return Status::OK();
}

Result<bool> MaterializeOp::Next(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

Status MaterializeOp::Close() { return Status::OK(); }

std::string MaterializeOp::DebugString() const {
  return "Materialize\n" + Indent(child_->DebugString());
}

}  // namespace rdbms
}  // namespace r3
