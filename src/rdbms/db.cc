#include "rdbms/db.h"

#include <algorithm>
#include <unordered_set>

#include "common/str_util.h"
#include "rdbms/expr/eval.h"
#include "rdbms/index/key_codec.h"
#include "rdbms/optimizer/optimizer_costs.h"
#include "rdbms/sql/binder.h"
#include "rdbms/sql/parser.h"
#include "rdbms/txn/recovery.h"

namespace r3 {
namespace rdbms {

Database::Database(SimClock* clock, DatabaseOptions options)
    : options_(options) {
  if (clock == nullptr) {
    owned_clock_ = std::make_unique<SimClock>();
    clock_ = owned_clock_.get();
  } else {
    clock_ = clock;
  }
  metrics_ = options_.metrics != nullptr ? options_.metrics : GlobalMetrics();
  m_statements_ = metrics_->GetCounter("rdbms.sql.statements");
  m_hard_parses_ = metrics_->GetCounter("rdbms.sql.hard_parses");
  m_prepared_hits_ = metrics_->GetCounter("rdbms.sql.prepared_cache_hits");
  m_plan_variants_ = metrics_->GetCounter("rdbms.sql.plan_cache.variants");
  for (int b = 0; b < kPeekBuckets; ++b) {
    m_bucket_hits_[b] = metrics_->GetCounter(
        str::Format("rdbms.sql.plan_cache.bucket%d_hits", b));
  }
  h_statement_sim_us_ = metrics_->GetHistogram("rdbms.sql.statement_sim_us");
  disk_ = std::make_unique<Disk>();
  pool_ = std::make_unique<BufferPool>(disk_.get(), clock_,
                                       options_.buffer_pool_bytes, metrics_);
  catalog_ = std::make_unique<Catalog>(pool_.get());
  catalog_->set_default_engine(options_.default_engine);
  catalog_->set_metrics(metrics_);
  txn_mgr_ = std::make_unique<txn::TxnManager>(pool_.get(), clock_, metrics_);
  options_.planner.work_mem_bytes = options_.work_mem_bytes;
  options_.planner.dop = options_.dop;
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

Status Database::Begin() {
  undo_log_.clear();
  R3_RETURN_IF_ERROR(DrainDeferredIndexDeletes(/*force=*/false));
  return txn_mgr_->Begin().status();
}

Status Database::Commit() {
  R3_RETURN_IF_ERROR(txn_mgr_->Commit());
  undo_log_.clear();
  // Commit may have advanced the horizon past our (and others') deletes.
  return DrainDeferredIndexDeletes(/*force=*/false);
}

Status Database::Rollback() {
  if (!txn_mgr_->in_txn()) {
    return Status::InvalidArgument("no active transaction");
  }
  const uint64_t aborting = txn_mgr_->active_txn_id();
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    R3_RETURN_IF_ERROR(UndoOne(*it));
  }
  undo_log_.clear();
  // Undone deletes restored their rows in place; the B-tree entries they
  // had queued for deferred removal are live again and must stay.
  deferred_index_deletes_.erase(
      std::remove_if(deferred_index_deletes_.begin(),
                     deferred_index_deletes_.end(),
                     [aborting](const DeferredIndexDelete& d) {
                       return d.xmax == aborting;
                     }),
      deferred_index_deletes_.end());
  R3_RETURN_IF_ERROR(txn_mgr_->FinishRollback());
  // A reused connection must not bleed per-statement state across the
  // aborted boundary: advance the operator-stats epoch (operators of a
  // cached plan re-opened later reset their counters — same mechanism as a
  // successful statement) and clear any stale SimClock lane binding an
  // aborted parallel region could have left on this thread.
  BeginStatement();
  SimClock::ExitLane();
  return Status::OK();
}

Status Database::EnableWal() {
  for (const TableInfo* t : catalog_->AllTables()) {
    if (!t->storage->wal_capable()) {
      return Status::InvalidArgument(
          "EnableWal: table '" + t->name + "' uses the non-durable " +
          std::string(t->storage->name()) + " engine");
    }
  }
  return txn_mgr_->EnableWal();
}

Status Database::Checkpoint() { return txn_mgr_->Checkpoint(); }

Status Database::SimulateCrash() {
  undo_log_.clear();
  // Pending B-tree cleanups die with the process; recovery rebuilds the
  // indexes from the surviving committed heap, which has no ghost entries.
  deferred_index_deletes_.clear();
  txn_mgr_->ResetAfterCrash();
  R3_RETURN_IF_ERROR(pool_->DropAllNoFlush());
  if (txn_mgr_->wal() != nullptr) txn_mgr_->wal()->DropUnflushed();
  prepared_.clear();
  // Engines without WAL backing (columnar) are memory-resident: a crash
  // empties them, and their indexes with them. Recovery never visits these
  // files — a warehouse re-extracts its tables instead.
  for (const TableInfo* ct : catalog_->AllTables()) {
    if (ct->storage->wal_capable()) continue;
    R3_ASSIGN_OR_RETURN(TableInfo * t, catalog_->GetTable(ct->name));
    t->storage->Clear();
    for (IndexInfo* idx : t->indexes) {
      R3_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_.get()));
      *idx->btree = std::move(tree);
    }
    t->row_count = 0;
    t->data_bytes = 0;
    t->stats = TableStats();
  }
  return Status::OK();
}

Status Database::Recover() {
  if (!txn_mgr_->wal_enabled()) {
    return Status::InvalidArgument("Recover requires EnableWal");
  }
  R3_RETURN_IF_ERROR(txn::RunRecovery(catalog_.get(), pool_.get(),
                                      txn_mgr_->wal(), clock_, metrics_)
                         .status());
  // Leave a clean image + bounded log behind; also re-baselines page LSNs.
  R3_RETURN_IF_ERROR(txn_mgr_->Checkpoint());
  BeginStatement();
  return Status::OK();
}

Result<uint64_t> Database::TableChecksum(const std::string& table) const {
  R3_ASSIGN_OR_RETURN(TableInfo * t, catalog_->GetTable(table));
  return t->storage->Checksum();
}

Status Database::LockTableIntent(TableInfo* table) {
  if (!txn_mgr_->in_txn()) return Status::OK();
  uint64_t id = txn_mgr_->active_txn_id();
  txn::LockManager* locks = txn_mgr_->locks();
  R3_RETURN_IF_ERROR(
      locks->Acquire(id, txn::LockKey::Root(), txn::LockMode::kIX));
  return locks->Acquire(id, txn::LockKey::Table(table->storage->file_id()),
                        txn::LockMode::kIX);
}

Status Database::LockRowForWrite(TableInfo* table, Rid rid) {
  if (!txn_mgr_->in_txn()) return Status::OK();
  R3_RETURN_IF_ERROR(LockTableIntent(table));
  return txn_mgr_->locks()->Acquire(
      txn_mgr_->active_txn_id(),
      txn::LockKey::Row(table->storage->file_id(), rid.Pack()),
      txn::LockMode::kX);
}

Status Database::LogEngineOp(TableInfo* table, txn::LogType type, Rid rid,
                             std::string_view rec) {
  // Non-WAL-capable engines (columnar) keep no pages to redo; their crash
  // story is Clear-and-reextract, so nothing is logged for them.
  if (!table->storage->wal_capable()) return Status::OK();
  return txn_mgr_->LogHeapOp(type, table->storage->file_id(), rid, rec);
}

Status Database::DrainDeferredIndexDeletes(bool force) {
  if (deferred_index_deletes_.empty()) return Status::OK();
  // An entry is removable once every live snapshot sees its deletion, i.e.
  // the deleting txn committed below the horizon. The deleter's own
  // in-flight txn keeps the horizon at or below its id, so uncommitted
  // deletes never drain.
  const uint64_t horizon =
      force ? UINT64_MAX : txn_mgr_->mvcc()->Horizon();
  size_t kept = 0;
  for (size_t i = 0; i < deferred_index_deletes_.size(); ++i) {
    DeferredIndexDelete& d = deferred_index_deletes_[i];
    if (d.xmax >= horizon) {
      if (kept != i) deferred_index_deletes_[kept] = std::move(d);
      ++kept;
      continue;
    }
    R3_RETURN_IF_ERROR(d.index->btree->Delete(d.key, d.rid_pack));
  }
  deferred_index_deletes_.resize(kept);
  return Status::OK();
}

Status Database::UndoOne(const UndoEntry& e) {
  TableInfo* table = e.table;
  switch (e.kind) {
    case UndoEntry::Kind::kInsert: {
      R3_RETURN_IF_ERROR(table->storage->Delete(e.rid));
      for (IndexInfo* idx : table->indexes) {
        R3_RETURN_IF_ERROR(
            idx->btree->Delete(IndexKeyForRow(*idx, e.row), e.rid.Pack()));
      }
      if (table->row_count > 0) table->row_count -= 1;
      size_t bytes = SerializedRowSize(table->schema, e.row);
      table->data_bytes =
          table->data_bytes > bytes ? table->data_bytes - bytes : 0;
      return Status::OK();
    }
    case UndoEntry::Kind::kDelete: {
      std::string rec;
      R3_RETURN_IF_ERROR(SerializeRow(table->schema, e.row, &rec));
      R3_RETURN_IF_ERROR(table->storage->InsertAt(e.rid, rec));
      // A deferred-cleanup delete never removed its B-tree entries
      // (Rollback purges them from the drain queue); re-inserting here
      // would duplicate them.
      if (!e.deferred_index) {
        for (IndexInfo* idx : table->indexes) {
          R3_RETURN_IF_ERROR(idx->btree->Insert(IndexKeyForRow(*idx, e.row),
                                                e.rid.Pack(), false));
        }
      }
      table->row_count += 1;
      table->data_bytes += rec.size();
      return Status::OK();
    }
    case UndoEntry::Kind::kUpdate: {
      std::string rec;
      R3_RETURN_IF_ERROR(SerializeRow(table->schema, e.row, &rec));
      Rid final_rid;
      if (e.new_rid == e.rid) {
        // May relocate again if the pre-image no longer fits in place;
        // harmless — checksums and index fixes below are RID-aware.
        R3_ASSIGN_OR_RETURN(final_rid, table->storage->Update(e.rid, rec));
      } else {
        R3_RETURN_IF_ERROR(table->storage->Delete(e.new_rid));
        R3_RETURN_IF_ERROR(table->storage->InsertAt(e.rid, rec));
        final_rid = e.rid;
      }
      // The live index entry for this row is (key(new_row), new_rid) whether
      // or not the forward op touched the index; swap it for the pre-image.
      for (IndexInfo* idx : table->indexes) {
        std::string old_key = IndexKeyForRow(*idx, e.row);
        std::string new_key = IndexKeyForRow(*idx, e.new_row);
        if (new_key != old_key || !(e.new_rid == final_rid)) {
          R3_RETURN_IF_ERROR(idx->btree->Delete(new_key, e.new_rid.Pack()));
          R3_RETURN_IF_ERROR(
              idx->btree->Insert(old_key, final_rid.Pack(), false));
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown undo kind");
}

void Database::set_dop(int dop) {
  if (dop < 1) dop = 1;
  if (dop == options_.dop) return;
  options_.dop = dop;
  options_.planner.dop = dop;
  // Cached plans embed the old lane count; recompile on next use.
  prepared_.clear();
}

void Database::set_bind_peeking(bool on) {
  if (on == options_.planner.bind_peeking) return;
  options_.planner.bind_peeking = on;
  // Cached plans embed the peeking decision; recompile on next use.
  prepared_.clear();
  peeked_prepared_.clear();
}

void Database::set_batch_rows(size_t batch_rows) {
  // Plans are batch-size agnostic (capacity is picked per execution), so
  // the prepared-statement cache stays valid.
  options_.batch_rows = batch_rows < 1 ? 1 : batch_rows;
}

uint64_t Database::BeginStatement() {
  m_statements_->Add(1);
  return ++statement_epoch_;
}

ExecContext Database::MakeExecContext(SubqueryRunnerImpl* runner,
                                      const std::vector<Value>* params) {
  ExecContext ctx;
  ctx.pool = pool_.get();
  ctx.clock = clock_;
  ctx.params = params;
  ctx.subqueries = runner;
  ctx.work_mem_bytes = options_.work_mem_bytes;
  ctx.dop = EffectiveExecThreads();
  ctx.batch_size = options_.batch_rows < 1 ? 1 : options_.batch_rows;
  ctx.statement_epoch = statement_epoch_;
  return ctx;
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

Cursor::~Cursor() {
  Status st = Close();
  (void)st;
}

const Schema& Cursor::output_schema() const {
  return state_->stmt->plan_.output_schema;
}

const std::vector<std::string>& Cursor::column_names() const {
  return state_->stmt->plan_.column_names;
}

Result<bool> Cursor::FetchBatch(RowBatch* batch) {
  batch->Clear();
  if (state_ == nullptr || state_->done) return false;
  R3_ASSIGN_OR_RETURN(bool ok, state_->stmt->plan_.root->NextBatch(batch));
  if (!ok) state_->done = true;
  return ok;
}

Status Cursor::Close() {
  if (state_ == nullptr) return Status::OK();
  Status st = state_->stmt->plan_.root->Close();
  state_.reset();
  return st;
}

Result<Cursor> Database::OpenCursor(PreparedStatement* stmt,
                                    const std::vector<Value>& params) {
  BeginStatement();
  Cursor cur;
  cur.state_ = std::make_unique<Cursor::State>();
  Cursor::State* st = cur.state_.get();
  st->stmt = stmt;
  st->params = params;
  // Covers the whole open..fetch..close window; ends in Cursor::Close after
  // the plan's own Close (State members are destroyed span-first).
  st->span = TraceSpan(clock_, "sql", "execute");
  stmt->plan_.runner->BindExecution(pool_.get(), clock_, &st->params,
                                    options_.work_mem_bytes,
                                    EffectiveExecThreads(),
                                    options_.batch_rows, statement_epoch_);
  st->snapshot = txn_mgr_->AcquireSnapshot();
  stmt->plan_.runner->BindMvcc(txn_mgr_->mvcc(), st->snapshot.get());
  st->ctx = MakeExecContext(stmt->plan_.runner.get(), &st->params);
  st->ctx.mvcc = txn_mgr_->mvcc();
  st->ctx.snapshot = st->snapshot.get();
  R3_RETURN_IF_ERROR(stmt->plan_.root->Open(&st->ctx));
  return cur;
}

Status Database::Execute(const std::string& sql,
                         const std::vector<Value>& params, QueryResult* result,
                         int64_t* affected_rows) {
  TraceSpan parse_span(clock_, "sql", "parse");
  R3_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  parse_span.End();
  int64_t affected = 0;
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      QueryResult local;
      R3_RETURN_IF_ERROR(
          ExecuteSelect(*stmt.select, params, result != nullptr ? result : &local));
      return Status::OK();
    }
    case Statement::Kind::kInsert: {
      uint64_t wid = txn_mgr_->AllocWriteId();
      write_id_ = wid;
      Status st = ExecuteInsert(*stmt.insert, params, &affected);
      write_id_ = 0;
      // Autocommit DML's physical effects persist even on mid-statement
      // failure (no statement-level undo), so its version-map footprint
      // commits unconditionally to keep both views consistent.
      txn_mgr_->FinishAutocommitWrite(wid, /*committed=*/true);
      R3_RETURN_IF_ERROR(st);
      break;
    }
    case Statement::Kind::kDelete: {
      uint64_t wid = txn_mgr_->AllocWriteId();
      write_id_ = wid;
      Status st = ExecuteDelete(*stmt.del, params, &affected);
      write_id_ = 0;
      txn_mgr_->FinishAutocommitWrite(wid, /*committed=*/true);
      R3_RETURN_IF_ERROR(st);
      // An autocommit delete is committed now; with no older snapshot
      // alive its deferred index entries drain immediately.
      R3_RETURN_IF_ERROR(DrainDeferredIndexDeletes(/*force=*/false));
      break;
    }
    case Statement::Kind::kUpdate: {
      uint64_t wid = txn_mgr_->AllocWriteId();
      write_id_ = wid;
      Status st = ExecuteUpdate(*stmt.update, params, &affected);
      write_id_ = 0;
      txn_mgr_->FinishAutocommitWrite(wid, /*committed=*/true);
      R3_RETURN_IF_ERROR(st);
      break;
    }
    case Statement::Kind::kCreateTable:
      R3_RETURN_IF_ERROR(ExecuteCreateTable(*stmt.create_table));
      break;
    case Statement::Kind::kCreateIndex: {
      clock_->ChargeStatementCompile();
      R3_RETURN_IF_ERROR(catalog_
                             ->CreateIndex(stmt.create_index->index,
                                           stmt.create_index->table,
                                           stmt.create_index->columns,
                                           stmt.create_index->unique)
                             .status());
      break;
    }
    case Statement::Kind::kCreateView:
      R3_RETURN_IF_ERROR(catalog_->CreateView(stmt.create_view->view,
                                              stmt.create_view->select_sql));
      break;
    case Statement::Kind::kDrop:
      prepared_.clear();  // plans may reference the dropped object
      // Pending deferred index cleanups that point into the dropped object
      // would dangle; they die with it.
      if (!deferred_index_deletes_.empty()) {
        std::unordered_set<const IndexInfo*> doomed;
        if (stmt.drop->target == DropStmt::Target::kTable) {
          auto t = catalog_->GetTable(stmt.drop->name);
          if (t.ok()) {
            for (const IndexInfo* idx : t.value()->indexes) doomed.insert(idx);
          }
        }
        const std::string& dropped = stmt.drop->name;
        auto is_doomed = [&](const DeferredIndexDelete& d) {
          return stmt.drop->target == DropStmt::Target::kIndex
                     ? d.index->name == dropped
                     : doomed.count(d.index) != 0;
        };
        deferred_index_deletes_.erase(
            std::remove_if(deferred_index_deletes_.begin(),
                           deferred_index_deletes_.end(), is_doomed),
            deferred_index_deletes_.end());
      }
      switch (stmt.drop->target) {
        case DropStmt::Target::kTable:
          R3_RETURN_IF_ERROR(catalog_->DropTable(stmt.drop->name));
          break;
        case DropStmt::Target::kIndex:
          R3_RETURN_IF_ERROR(catalog_->DropIndex(stmt.drop->name));
          break;
        case DropStmt::Target::kView:
          return Status::Unsupported("DROP VIEW not implemented");
      }
      break;
    case Statement::Kind::kAnalyze:
      R3_RETURN_IF_ERROR(Analyze(stmt.analyze->table));
      break;
  }
  if (affected_rows != nullptr) *affected_rows = affected;
  return Status::OK();
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    const std::vector<Value>& params) {
  QueryResult result;
  R3_RETURN_IF_ERROR(Execute(sql, params, &result, nullptr));
  return result;
}

Status Database::ExecuteSelect(const SelectStmt& stmt,
                               const std::vector<Value>& params,
                               QueryResult* result) {
  BeginStatement();
  m_hard_parses_->Add(1);
  SimTimer timer(*clock_);
  clock_->ChargeStatementCompile();
  TraceSpan bind_span(clock_, "sql", "bind");
  Binder binder(catalog_.get());
  R3_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bq, binder.BindSelect(stmt));
  bind_span.End();
  TraceSpan opt_span(clock_, "sql", "optimize");
  Optimizer opt(catalog_.get(), options_.planner, metrics_);
  R3_ASSIGN_OR_RETURN(PhysicalPlan plan, opt.Plan(std::move(bq)));
  opt_span.End();

  plan.runner->BindExecution(pool_.get(), clock_, &params,
                             options_.work_mem_bytes, EffectiveExecThreads(),
                             options_.batch_rows, statement_epoch_);
  std::shared_ptr<const txn::Snapshot> snapshot = txn_mgr_->AcquireSnapshot();
  plan.runner->BindMvcc(txn_mgr_->mvcc(), snapshot.get());
  ExecContext ctx = MakeExecContext(plan.runner.get(), &params);
  ctx.mvcc = txn_mgr_->mvcc();
  ctx.snapshot = snapshot.get();
  result->schema = plan.output_schema;
  result->column_names = plan.column_names;
  result->rows.clear();
  TraceSpan exec_span(clock_, "sql", "execute");
  R3_RETURN_IF_ERROR(plan.root->Open(&ctx));
  RowBatch batch(ctx.batch_size);
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, plan.root->NextBatch(&batch));
    if (!ok) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      result->rows.push_back(std::move(batch.row(i)));
    }
  }
  Status close_status = plan.root->Close();
  exec_span.ArgInt("rows", static_cast<int64_t>(result->rows.size()));
  exec_span.End();
  h_statement_sim_us_->Observe(timer.ElapsedUs());
  return close_status;
}

Result<PreparedStatement*> Database::Prepare(const std::string& sql) {
  auto it = prepared_.find(sql);
  if (it != prepared_.end()) {
    m_prepared_hits_->Add(1);
    return it->second.get();
  }

  m_hard_parses_->Add(1);
  TraceSpan prepare_span(clock_, "sql", "prepare");
  clock_->ChargeStatementCompile();
  TraceSpan parse_span(clock_, "sql", "parse");
  R3_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect(sql));
  parse_span.End();
  TraceSpan bind_span(clock_, "sql", "bind");
  Binder binder(catalog_.get());
  R3_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bq, binder.BindSelect(*sel));
  bind_span.End();
  TraceSpan opt_span(clock_, "sql", "optimize");
  Optimizer opt(catalog_.get(), options_.planner, metrics_);
  R3_ASSIGN_OR_RETURN(PhysicalPlan plan, opt.Plan(std::move(bq)));
  opt_span.End();

  auto stmt = std::make_unique<PreparedStatement>();
  stmt->sql_ = sql;
  stmt->plan_ = std::move(plan);
  PreparedStatement* raw = stmt.get();
  prepared_.emplace(sql, std::move(stmt));
  return raw;
}

Result<std::unique_ptr<PreparedStatement>> Database::CompilePeekedVariant(
    const std::string& sql, const std::vector<Value>& params,
    PeekClassifier* classifier_out) {
  m_hard_parses_->Add(1);
  TraceSpan prepare_span(clock_, "sql", "prepare");
  clock_->ChargeStatementCompile();
  TraceSpan parse_span(clock_, "sql", "parse");
  R3_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect(sql));
  parse_span.End();
  TraceSpan bind_span(clock_, "sql", "bind");
  Binder binder(catalog_.get());
  R3_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bq, binder.BindSelect(*sel));
  bind_span.End();
  if (classifier_out != nullptr) *classifier_out = BuildPeekClassifier(*bq);
  TraceSpan opt_span(clock_, "sql", "optimize");
  PlannerOptions popts = options_.planner;
  popts.peeked_params = &params;
  Optimizer opt(catalog_.get(), popts, metrics_);
  R3_ASSIGN_OR_RETURN(PhysicalPlan plan, opt.Plan(std::move(bq)));
  opt_span.End();
  auto stmt = std::make_unique<PreparedStatement>();
  stmt->sql_ = sql;
  stmt->plan_ = std::move(plan);
  m_plan_variants_->Add(1);
  return stmt;
}

Result<PreparedStatement*> Database::PrepareWithParams(
    const std::string& sql, const std::vector<Value>& params,
    BindPeekInfo* info) {
  if (info != nullptr) *info = BindPeekInfo{};
  if (!options_.planner.bind_peeking) return Prepare(sql);

  auto it = peeked_prepared_.find(sql);
  if (it == peeked_prepared_.end()) {
    // First sight: one hard parse builds both the classifier and the first
    // variant, filed under the bucket these bind values land in.
    PeekedStatement ps;
    R3_ASSIGN_OR_RETURN(std::unique_ptr<PreparedStatement> stmt,
                        CompilePeekedVariant(sql, params, &ps.classifier));
    double est = PeekEstimate(ps.classifier, params);
    int bucket = PeekBucket(est);
    PreparedStatement* raw = stmt.get();
    ps.variants[static_cast<size_t>(bucket)] = std::move(stmt);
    peeked_prepared_.emplace(sql, std::move(ps));
    if (info != nullptr) {
      info->peeked = true;
      info->bucket = bucket;
      info->est_fraction = est;
    }
    return raw;
  }

  // Known statement: classify (no simulated charges) and pick the variant.
  PeekedStatement& ps = it->second;
  double est = PeekEstimate(ps.classifier, params);
  int bucket = PeekBucket(est);
  if (info != nullptr) {
    info->peeked = true;
    info->bucket = bucket;
    info->est_fraction = est;
  }
  std::unique_ptr<PreparedStatement>& slot =
      ps.variants[static_cast<size_t>(bucket)];
  if (slot != nullptr) {
    m_prepared_hits_->Add(1);
    m_bucket_hits_[static_cast<size_t>(bucket)]->Add(1);
    if (info != nullptr) info->variant_hit = true;
    return slot.get();
  }
  // Bucket boundary crossed: compile one new variant for this bucket.
  R3_ASSIGN_OR_RETURN(std::unique_ptr<PreparedStatement> stmt,
                      CompilePeekedVariant(sql, params, nullptr));
  PreparedStatement* raw = stmt.get();
  slot = std::move(stmt);
  return raw;
}

Result<QueryResult> Database::ExecutePrepared(PreparedStatement* stmt,
                                              const std::vector<Value>& params) {
  SimTimer timer(*clock_);
  R3_ASSIGN_OR_RETURN(Cursor cur, OpenCursor(stmt, params));
  QueryResult result;
  result.schema = stmt->plan_.output_schema;
  result.column_names = stmt->plan_.column_names;
  RowBatch batch(options_.batch_rows < 1 ? 1 : options_.batch_rows);
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, cur.FetchBatch(&batch));
    if (!ok) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      result.rows.push_back(std::move(batch.row(i)));
    }
  }
  R3_RETURN_IF_ERROR(cur.Close());
  h_statement_sim_us_->Observe(timer.ElapsedUs());
  return result;
}

Result<std::string> Database::Explain(const std::string& sql) {
  R3_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect(sql));
  Binder binder(catalog_.get());
  R3_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bq, binder.BindSelect(*sel));
  Optimizer opt(catalog_.get(), options_.planner, metrics_);
  R3_ASSIGN_OR_RETURN(PhysicalPlan plan, opt.Plan(std::move(bq)));
  return plan.Explain();
}

Result<std::string> Database::Explain(const std::string& sql,
                                      const std::vector<Value>& params) {
  R3_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect(sql));
  Binder binder(catalog_.get());
  R3_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bq, binder.BindSelect(*sel));
  PeekClassifier classifier = BuildPeekClassifier(*bq);
  double est = PeekEstimate(classifier, params);
  int bucket = PeekBucket(est);
  std::vector<const TableInfo*> tables;
  for (const BoundTableRef& bt : bq->tables) tables.push_back(bt.table);
  PlannerOptions popts = options_.planner;
  popts.bind_peeking = true;
  popts.peeked_params = &params;
  Optimizer opt(catalog_.get(), popts, metrics_);
  R3_ASSIGN_OR_RETURN(PhysicalPlan plan, opt.Plan(std::move(bq)));
  std::string out =
      str::Format("Peek: bucket=%d est_fraction=%.6f\n", bucket, est);
  const CostModel& cost = DefaultCostModel();
  for (const TableInfo* t : tables) {
    out += OptimizerCosts::ForTable(*t, cost).Describe(t->name) + "\n";
  }
  out += plan.Explain();
  return out;
}

Result<std::string> Database::ExplainAnalyze(const std::string& sql,
                                             const std::vector<Value>& params) {
  BeginStatement();
  m_hard_parses_->Add(1);
  SimTimer timer(*clock_);
  clock_->ChargeStatementCompile();
  R3_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> sel, ParseSelect(sql));
  Binder binder(catalog_.get());
  R3_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bq, binder.BindSelect(*sel));
  std::vector<const TableInfo*> plan_tables;
  for (const BoundTableRef& bt : bq->tables) plan_tables.push_back(bt.table);
  Optimizer opt(catalog_.get(), options_.planner, metrics_);
  R3_ASSIGN_OR_RETURN(PhysicalPlan plan, opt.Plan(std::move(bq)));

  plan.runner->BindExecution(pool_.get(), clock_, &params,
                             options_.work_mem_bytes, EffectiveExecThreads(),
                             options_.batch_rows, statement_epoch_);
  std::shared_ptr<const txn::Snapshot> snapshot = txn_mgr_->AcquireSnapshot();
  plan.runner->BindMvcc(txn_mgr_->mvcc(), snapshot.get());
  ExecContext ctx = MakeExecContext(plan.runner.get(), &params);
  ctx.mvcc = txn_mgr_->mvcc();
  ctx.snapshot = snapshot.get();
  ExecContext::Totals totals;
  ctx.totals = &totals;
  BufferPoolStats pool_before = pool_->stats();
  R3_RETURN_IF_ERROR(plan.root->Open(&ctx));
  RowBatch batch(ctx.batch_size);
  int64_t result_rows = 0;
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, plan.root->NextBatch(&batch));
    if (!ok) break;
    result_rows += static_cast<int64_t>(batch.size());
  }
  R3_RETURN_IF_ERROR(plan.root->Close());
  BufferPoolStats pool_after = pool_->stats();
  h_statement_sim_us_->Observe(timer.ElapsedUs());
  std::string out = ExplainPlan(*plan.root, /*analyze=*/true);
  out += str::Format(
      "\nTotals: result_rows=%lld exchanged_rows=%lld batches=%lld "
      "opens=%lld closes=%lld",
      static_cast<long long>(result_rows), static_cast<long long>(totals.rows),
      static_cast<long long>(totals.batches),
      static_cast<long long>(totals.opens),
      static_cast<long long>(totals.closes));
  out += "\nOptimizer: " + plan.choices.Summary();
  uint64_t logical = pool_after.logical_reads - pool_before.logical_reads;
  uint64_t physical = pool_after.physical_reads - pool_before.physical_reads;
  double hit_pct =
      logical == 0 ? 100.0
                   : 100.0 * (1.0 - static_cast<double>(physical) /
                                        static_cast<double>(logical));
  out += str::Format(
      "\nBuffer pool: logical_reads=%llu physical_reads=%llu "
      "(seq=%llu random=%llu) page_writes=%llu hit=%.1f%%",
      static_cast<unsigned long long>(logical),
      static_cast<unsigned long long>(physical),
      static_cast<unsigned long long>(pool_after.sequential_reads -
                                      pool_before.sequential_reads),
      static_cast<unsigned long long>(pool_after.random_reads -
                                      pool_before.random_reads),
      static_cast<unsigned long long>(pool_after.page_writes -
                                      pool_before.page_writes),
      hit_pct);
  for (const TableInfo* t : plan_tables) {
    if (!t->stats_stale()) continue;
    uint64_t threshold = t->stats.row_count / 10;
    if (threshold < 64) threshold = 64;
    out += str::Format(
        "\nStats: %s stale (mods=%llu since ANALYZE, threshold=%llu)",
        t->name.c_str(),
        static_cast<unsigned long long>(t->mods_since_analyze),
        static_cast<unsigned long long>(threshold));
  }
  return out;
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

Status Database::BindTableExpr(const TableInfo& table, Expr* e) const {
  if (e->kind == ExprKind::kColumnRef) {
    R3_ASSIGN_OR_RETURN(size_t idx, table.schema.IndexOf(e->column_name));
    e->column_index = idx;
    e->result_type = table.schema.column(idx).type;
    return Status::OK();
  }
  if (e->kind == ExprKind::kAggCall || e->subquery_ast != nullptr) {
    return Status::Unsupported("aggregates/subqueries not allowed in DML");
  }
  for (ExprPtr& c : e->children) {
    R3_RETURN_IF_ERROR(BindTableExpr(table, c.get()));
  }
  if (e->kind == ExprKind::kCompare || e->kind == ExprKind::kLogic ||
      e->kind == ExprKind::kNot || e->kind == ExprKind::kIsNull ||
      e->kind == ExprKind::kLike || e->kind == ExprKind::kInList ||
      e->kind == ExprKind::kBetween) {
    e->result_type = DataType::kBool;
  }
  return Status::OK();
}

Status Database::InsertRowChecked(TableInfo* table, Row row, Rid* rid_out) {
  const Schema& schema = table->schema;
  if (row.size() != schema.NumColumns()) {
    return Status::InvalidArgument(
        str::Format("row has %zu values but %s has %zu columns", row.size(),
                    table->name.c_str(), schema.NumColumns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Column& col = schema.column(i);
    if (row[i].is_null()) {
      if (!col.nullable) {
        return Status::ConstraintViolation("column " + col.name +
                                           " must not be NULL");
      }
      row[i] = Value::Null(col.type);
      continue;
    }
    if (row[i].type() != col.type) {
      R3_ASSIGN_OR_RETURN(row[i], row[i].CastTo(col.type));
    }
    if (col.type == DataType::kString && col.length > 0) {
      if (row[i].string_value().size() > col.length) {
        return Status::OutOfRange(
            str::Format("value too long for %s.%s CHAR(%u)",
                        table->name.c_str(), col.name.c_str(), col.length));
      }
      // CHAR semantics: storage blank-pads and reads trim, so normalize now
      // to keep index keys identical before and after a round trip.
      std::string trimmed = str::RTrim(row[i].string_value());
      if (trimmed.size() != row[i].string_value().size()) {
        row[i] = Value::Str(std::move(trimmed));
      }
    }
  }
  std::string rec;
  R3_RETURN_IF_ERROR(SerializeRow(schema, row, &rec));
  // Intent locks first; the row X lock must wait until the heap hands out
  // the RID (a fresh RID, so it can never block or deadlock).
  R3_RETURN_IF_ERROR(LockTableIntent(table));
  R3_ASSIGN_OR_RETURN(Rid rid, table->storage->Insert(rec));
  R3_RETURN_IF_ERROR(LockRowForWrite(table, rid));
  clock_->ChargeDbmsTuple();
  // Logged immediately (before the index work can trigger an eviction) so
  // the no-steal pin and page LSN are in place while the page is dirty.
  R3_RETURN_IF_ERROR(
      LogEngineOp(table, txn::LogType::kHeapInsert, rid, rec));

  // Maintain indexes; undo on unique violation.
  std::vector<IndexInfo*> done;
  for (IndexInfo* idx : table->indexes) {
    Status st = idx->btree->Insert(IndexKeyForRow(*idx, row), rid.Pack(),
                                   idx->unique);
    if (!st.ok()) {
      for (IndexInfo* u : done) {
        (void)u->btree->Delete(IndexKeyForRow(*u, row), rid.Pack());
      }
      (void)table->storage->Delete(rid);
      // A compensating log record instead of unlogging: redo replays the
      // insert and this delete, netting out to nothing.
      (void)LogEngineOp(table, txn::LogType::kHeapDelete, rid, {});
      if (st.code() == StatusCode::kAlreadyExists) {
        return Status::ConstraintViolation("duplicate key for index " +
                                           idx->name);
      }
      return st;
    }
    done.push_back(idx);
  }
  table->row_count += 1;
  table->data_bytes += rec.size();
  table->mods_since_analyze += 1;
  // Only after index maintenance succeeded: the unique-violation path above
  // physically removed the row again, so no version-map entry may exist yet.
  txn_mgr_->mvcc()->OnInsert(table->storage->file_id(), rid, write_id_);
  if (txn_mgr_->in_txn()) {
    undo_log_.push_back(UndoEntry{UndoEntry::Kind::kInsert, table, rid, rid,
                                  row, Row{}});
  }
  if (rid_out != nullptr) *rid_out = rid;
  return Status::OK();
}

Status Database::InsertRow(const std::string& table, const Row& row) {
  R3_ASSIGN_OR_RETURN(TableInfo * ti, catalog_->GetTable(table));
  uint64_t wid = txn_mgr_->AllocWriteId();
  write_id_ = wid;
  Status st = InsertRowChecked(ti, row, nullptr);
  write_id_ = 0;
  txn_mgr_->FinishAutocommitWrite(wid, /*committed=*/true);
  return st;
}

Status Database::DeleteRowAt(TableInfo* table, Rid rid, const Row& row) {
  R3_RETURN_IF_ERROR(LockRowForWrite(table, rid));
  // Pre-image for the version chain, captured before the physical delete.
  // Serialization is a faithful round trip of the stored record (rows come
  // from DeserializeRow of that record).
  std::string pre;
  if (write_id_ != 0) {
    R3_RETURN_IF_ERROR(SerializeRow(table->schema, row, &pre));
  }
  R3_RETURN_IF_ERROR(table->storage->Delete(rid));
  if (write_id_ != 0) {
    txn_mgr_->mvcc()->OnDelete(table->storage->file_id(), rid, write_id_, pre);
  }
  R3_RETURN_IF_ERROR(LogEngineOp(table, txn::LogType::kHeapDelete, rid, {}));
  const bool defer_index = options_.mvcc_index_ghosts && write_id_ != 0;
  if (defer_index) {
    // Leave the B-tree entries pointing at the ghost: index probes resolve
    // them through MvccManager::GhostImage exactly the way sequential
    // scans resolve page ghosts, and the entries drain once no snapshot
    // can see the row (DESIGN.md §9).
    for (IndexInfo* idx : table->indexes) {
      deferred_index_deletes_.push_back(DeferredIndexDelete{
          idx, IndexKeyForRow(*idx, row), rid.Pack(), write_id_});
    }
  } else {
    for (IndexInfo* idx : table->indexes) {
      R3_RETURN_IF_ERROR(
          idx->btree->Delete(IndexKeyForRow(*idx, row), rid.Pack()));
    }
  }
  if (table->row_count > 0) table->row_count -= 1;
  table->mods_since_analyze += 1;
  size_t bytes = SerializedRowSize(table->schema, row);
  table->data_bytes = table->data_bytes > bytes ? table->data_bytes - bytes : 0;
  clock_->ChargeDbmsTuple();
  if (txn_mgr_->in_txn()) {
    UndoEntry e{UndoEntry::Kind::kDelete, table, rid, rid, row, Row{}};
    e.deferred_index = defer_index;
    undo_log_.push_back(std::move(e));
  }
  return Status::OK();
}

Status Database::ExecuteInsert(const InsertStmt& stmt,
                               const std::vector<Value>& params,
                               int64_t* affected) {
  R3_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt.table));
  const Schema& schema = table->schema;
  std::vector<size_t> targets;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.NumColumns(); ++i) targets.push_back(i);
  } else {
    for (const std::string& c : stmt.columns) {
      R3_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(c));
      targets.push_back(idx);
    }
  }
  EvalContext ec;
  ec.params = &params;
  for (const auto& exprs : stmt.rows) {
    if (exprs.size() != targets.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    Row row(schema.NumColumns(), Value::Null());
    for (size_t i = 0; i < exprs.size(); ++i) {
      Value v;
      R3_RETURN_IF_ERROR(EvalExpr(*exprs[i], ec, &v));
      row[targets[i]] = std::move(v);
    }
    R3_RETURN_IF_ERROR(InsertRowChecked(table, std::move(row), nullptr));
    ++*affected;
  }
  return Status::OK();
}

Status Database::CollectMatches(TableInfo* table, const Expr* where,
                                const std::vector<Value>& params,
                                std::vector<std::pair<Rid, Row>>* out) {
  EvalContext ec;
  ec.params = &params;

  // Index assist: if the WHERE conjuncts constrain a prefix of some index
  // by equality against runtime constants, range-scan that index instead of
  // the heap (crucial for tuple-at-a-time application workloads).
  const IndexInfo* best_index = nullptr;
  std::string best_prefix;
  size_t best_cols = 0;
  if (where != nullptr) {
    // Gather col = const candidates.
    std::vector<std::pair<size_t, const Expr*>> eqs;
    std::function<void(const Expr&)> gather = [&](const Expr& e) {
      if (e.kind == ExprKind::kLogic && e.logic_op == LogicOp::kAnd) {
        gather(*e.children[0]);
        gather(*e.children[1]);
        return;
      }
      if (e.kind == ExprKind::kCompare && e.cmp_op == CmpOp::kEq) {
        const Expr& l = *e.children[0];
        const Expr& r = *e.children[1];
        if (l.kind == ExprKind::kColumnRef && !ExprHasColumnRefs(r)) {
          eqs.emplace_back(l.column_index, &r);
        } else if (r.kind == ExprKind::kColumnRef && !ExprHasColumnRefs(l)) {
          eqs.emplace_back(r.column_index, &l);
        }
      }
    };
    gather(*where);
    for (const IndexInfo* idx : table->indexes) {
      std::string prefix;
      size_t covered = 0;
      for (size_t col : idx->column_indices) {
        const Expr* value = nullptr;
        for (const auto& [c, v] : eqs) {
          if (c == col) {
            value = v;
            break;
          }
        }
        if (value == nullptr) break;
        Value v;
        Status st = EvalExpr(*value, ec, &v);
        if (!st.ok()) {
          prefix.clear();
          covered = 0;
          break;
        }
        auto cast = v.CastTo(table->schema.column(col).type);
        if (!cast.ok()) {
          prefix.clear();
          covered = 0;
          break;
        }
        key_codec::EncodeValue(cast.value(), &prefix);
        ++covered;
      }
      if (covered > best_cols) {
        best_cols = covered;
        best_index = idx;
        best_prefix = prefix;
      }
    }
  }

  Row row;
  std::string rec;
  if (best_index != nullptr && best_cols > 0) {
    std::string stop = key_codec::PrefixUpperBound(best_prefix);
    R3_ASSIGN_OR_RETURN(BTree::Cursor cursor, best_index->btree->Seek(best_prefix));
    std::string key;
    uint64_t payload = 0;
    while (true) {
      R3_ASSIGN_OR_RETURN(bool ok, cursor.Next(&key, &payload));
      if (!ok || (!stop.empty() && key >= stop)) break;
      clock_->ChargeDbmsTuple();
      Rid rid = Rid::Unpack(payload);
      Status got = table->storage->Get(rid, &rec);
      // Under deferred index cleanup a probe can land on the entry of an
      // MVCC-deleted row. DML reads current committed state, so the ghost
      // is simply not a match.
      if (got.code() == StatusCode::kNotFound) continue;
      R3_RETURN_IF_ERROR(got);
      R3_RETURN_IF_ERROR(DeserializeRow(table->schema, rec, &row));
      ec.row = &row;
      R3_ASSIGN_OR_RETURN(bool match, EvalPredicate(*where, ec));
      if (match) out->emplace_back(rid, row);
    }
    return Status::OK();
  }

  std::unique_ptr<RecordIterator> it = table->storage->NewIterator();
  Rid rid;
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, it->Next(&rid, &rec));
    if (!ok) break;
    clock_->ChargeDbmsTuple();
    R3_RETURN_IF_ERROR(DeserializeRow(table->schema, rec, &row));
    if (where != nullptr) {
      ec.row = &row;
      R3_ASSIGN_OR_RETURN(bool match, EvalPredicate(*where, ec));
      if (!match) continue;
    }
    out->emplace_back(rid, row);
  }
  return Status::OK();
}

Status Database::ExecuteDelete(const DeleteStmt& stmt,
                               const std::vector<Value>& params,
                               int64_t* affected) {
  R3_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt.table));
  ExprPtr where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    R3_RETURN_IF_ERROR(BindTableExpr(*table, where.get()));
  }
  std::vector<std::pair<Rid, Row>> victims;
  R3_RETURN_IF_ERROR(CollectMatches(table, where.get(), params, &victims));
  for (auto& [vrid, vrow] : victims) {
    R3_RETURN_IF_ERROR(DeleteRowAt(table, vrid, vrow));
    ++*affected;
  }
  return Status::OK();
}

Status Database::ExecuteUpdate(const UpdateStmt& stmt,
                               const std::vector<Value>& params,
                               int64_t* affected) {
  R3_ASSIGN_OR_RETURN(TableInfo * table, catalog_->GetTable(stmt.table));
  ExprPtr where;
  if (stmt.where != nullptr) {
    where = stmt.where->Clone();
    R3_RETURN_IF_ERROR(BindTableExpr(*table, where.get()));
  }
  std::vector<std::pair<size_t, ExprPtr>> sets;
  for (const auto& [name, expr] : stmt.assignments) {
    R3_ASSIGN_OR_RETURN(size_t idx, table->schema.IndexOf(name));
    ExprPtr bound = expr->Clone();
    R3_RETURN_IF_ERROR(BindTableExpr(*table, bound.get()));
    sets.emplace_back(idx, std::move(bound));
  }
  std::vector<std::pair<Rid, Row>> targets;
  R3_RETURN_IF_ERROR(CollectMatches(table, where.get(), params, &targets));
  for (auto& [rid, old_row] : targets) {
    Row new_row = old_row;
    EvalContext ec;
    ec.params = &params;
    ec.row = &old_row;
    for (auto& [idx, expr] : sets) {
      Value v;
      R3_RETURN_IF_ERROR(EvalExpr(*expr, ec, &v));
      if (!v.is_null()) {
        R3_ASSIGN_OR_RETURN(v, v.CastTo(table->schema.column(idx).type));
      }
      new_row[idx] = std::move(v);
    }
    std::string rec;
    R3_RETURN_IF_ERROR(SerializeRow(table->schema, new_row, &rec));
    R3_RETURN_IF_ERROR(LockRowForWrite(table, rid));
    std::string old_rec;
    if (write_id_ != 0) {
      R3_RETURN_IF_ERROR(SerializeRow(table->schema, old_row, &old_rec));
    }
    R3_ASSIGN_OR_RETURN(Rid new_rid, table->storage->Update(rid, rec));
    clock_->ChargeDbmsTuple();
    if (new_rid == rid) {
      R3_RETURN_IF_ERROR(
          LogEngineOp(table, txn::LogType::kHeapUpdate, rid, rec));
      if (write_id_ != 0) {
        txn_mgr_->mvcc()->OnUpdate(table->storage->file_id(), rid, write_id_,
                                   old_rec);
      }
    } else {
      // The heap relocated the record: physiologically that is a delete at
      // the old RID plus an insert at the new one.
      R3_RETURN_IF_ERROR(
          LogEngineOp(table, txn::LogType::kHeapDelete, rid, {}));
      R3_RETURN_IF_ERROR(
          LogEngineOp(table, txn::LogType::kHeapInsert, new_rid, rec));
      if (write_id_ != 0) {
        txn_mgr_->mvcc()->OnDelete(table->storage->file_id(), rid, write_id_,
                                   old_rec);
        txn_mgr_->mvcc()->OnInsert(table->storage->file_id(), new_rid, write_id_);
      }
    }
    if (txn_mgr_->in_txn()) {
      undo_log_.push_back(UndoEntry{UndoEntry::Kind::kUpdate, table, rid,
                                    new_rid, old_row, new_row});
    }
    for (IndexInfo* idx : table->indexes) {
      std::string old_key = IndexKeyForRow(*idx, old_row);
      std::string new_key = IndexKeyForRow(*idx, new_row);
      if (old_key != new_key || !(new_rid == rid)) {
        R3_RETURN_IF_ERROR(idx->btree->Delete(old_key, rid.Pack()));
        R3_RETURN_IF_ERROR(idx->btree->Insert(new_key, new_rid.Pack(), false));
      }
    }
    table->mods_since_analyze += 1;
    ++*affected;
  }
  return Status::OK();
}

Status Database::ExecuteCreateTable(const CreateTableStmt& stmt) {
  EngineKind kind = catalog_->default_engine();
  if (!stmt.engine.empty()) {
    R3_ASSIGN_OR_RETURN(kind, ParseEngineKind(stmt.engine));
  }
  if (kind != EngineKind::kRowHeap && txn_mgr_->wal_enabled()) {
    return Status::InvalidArgument(
        "cannot create a non-WAL-capable table after EnableWal");
  }
  R3_RETURN_IF_ERROR(
      catalog_->CreateTable(stmt.table, Schema(stmt.columns), kind).status());
  if (!stmt.primary_key.empty()) {
    R3_RETURN_IF_ERROR(catalog_
                           ->CreateIndex("PK_" + str::ToUpper(stmt.table),
                                         stmt.table, stmt.primary_key,
                                         /*unique=*/true)
                           .status());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ANALYZE / introspection
// ---------------------------------------------------------------------------

Status Database::AnalyzeTable(TableInfo* table) {
  TableStats stats;
  stats.columns.resize(table->schema.NumColumns());
  std::vector<std::unordered_set<std::string>> distinct(
      table->schema.NumColumns());
  std::vector<std::vector<Value>> samples(table->schema.NumColumns());
  std::unique_ptr<RecordIterator> it = table->storage->NewIterator();
  Rid rid;
  std::string rec;
  Row row;
  while (true) {
    R3_ASSIGN_OR_RETURN(bool ok, it->Next(&rid, &rec));
    if (!ok) break;
    clock_->ChargeDbmsTuple();
    R3_RETURN_IF_ERROR(DeserializeRow(table->schema, rec, &row));
    ++stats.row_count;
    stats.total_bytes += rec.size();
    for (size_t i = 0; i < row.size(); ++i) {
      ColumnStats& cs = stats.columns[i];
      if (row[i].is_null()) {
        ++cs.null_count;
        continue;
      }
      if (!cs.valid) {
        cs.valid = true;
        cs.min = row[i];
        cs.max = row[i];
      } else {
        if (row[i].Compare(cs.min) < 0) cs.min = row[i];
        if (row[i].Compare(cs.max) > 0) cs.max = row[i];
      }
      distinct[i].insert(key_codec::Encode(row[i]));
      samples[i].push_back(row[i]);
    }
  }
  for (size_t i = 0; i < distinct.size(); ++i) {
    ColumnStats& cs = stats.columns[i];
    cs.ndv = distinct[i].size();
    // Equi-height histograms ride on the values ANALYZE already read; the
    // in-memory sort is free of simulated charges (the paper's systems fold
    // it into the utility's CPU budget).
    std::sort(samples[i].begin(), samples[i].end(),
              [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
    BuildEquiHeightHistogram(std::move(samples[i]), &cs);
  }
  stats.valid = true;
  table->stats = std::move(stats);
  table->mods_since_analyze = 0;
  return Status::OK();
}

Status Database::Analyze(const std::string& table) {
  if (!table.empty()) {
    R3_ASSIGN_OR_RETURN(TableInfo * ti, catalog_->GetTable(table));
    return AnalyzeTable(ti);
  }
  for (const TableInfo* t : catalog_->AllTables()) {
    R3_RETURN_IF_ERROR(AnalyzeTable(const_cast<TableInfo*>(t)));
  }
  return Status::OK();
}

Result<std::vector<Database::TableSize>> Database::TableSizes() const {
  std::vector<TableSize> out;
  for (const TableInfo* t : catalog_->AllTables()) {
    TableSize ts;
    ts.name = t->name;
    ts.rows = t->row_count;
    R3_ASSIGN_OR_RETURN(uint64_t data_bytes, t->storage->DataBytes());
    ts.data_kb = data_bytes / 1024;
    uint64_t index_bytes = 0;
    for (const IndexInfo* idx : t->indexes) {
      R3_ASSIGN_OR_RETURN(uint64_t b,
                          pool_->disk()->FileSizeBytes(idx->btree->file_id()));
      index_bytes += b;
    }
    ts.index_kb = index_bytes / 1024;
    out.push_back(std::move(ts));
  }
  return out;
}

}  // namespace rdbms
}  // namespace r3
