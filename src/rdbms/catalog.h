#ifndef R3DB_RDBMS_CATALOG_H_
#define R3DB_RDBMS_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "rdbms/index/btree.h"
#include "rdbms/optimizer/stats.h"
#include "rdbms/row.h"
#include "rdbms/schema.h"
#include "rdbms/storage/heap_file.h"
#include "rdbms/storage/storage_engine.h"

namespace r3 {
namespace rdbms {

/// A secondary (or primary) index over a table.
struct IndexInfo {
  std::string name;
  std::string table;
  std::vector<size_t> column_indices;  ///< key columns, in key order
  bool unique = false;
  std::unique_ptr<BTree> btree;
};

/// A stored table.
struct TableInfo {
  std::string name;
  Schema schema;
  /// The table's storage engine (row heap by default); owns the record
  /// layout, scan cursors, and per-engine optimizer costs.
  std::unique_ptr<StorageEngine> storage;
  /// Indices into `Catalog::indexes_` of this table's indexes.
  std::vector<IndexInfo*> indexes;
  TableStats stats;
  uint64_t row_count = 0;   ///< maintained on insert/delete
  uint64_t data_bytes = 0;  ///< live record bytes (approximate after updates)
  /// Rows inserted/deleted/updated since the last ANALYZE. Bulk DML (RF1/RF2,
  /// LOAD-style inserts) used to silently leave stale TableStats in place;
  /// past a threshold the stats are flagged stale and EXPLAIN ANALYZE warns.
  uint64_t mods_since_analyze = 0;

  /// True when enough DML has accumulated since the last ANALYZE that the
  /// stats are likely misleading (>10% of the analyzed row count, with a
  /// floor so small tables do not flap).
  bool stats_stale() const {
    if (!stats.valid) return false;
    uint64_t threshold = stats.row_count / 10;
    if (threshold < 64) threshold = 64;
    return mods_since_analyze > threshold;
  }
};

/// A named view: the SQL text is re-parsed and inlined at bind time.
struct ViewInfo {
  std::string name;
  std::string sql;  ///< a SELECT statement
};

/// Name -> object directory for one database instance.
class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Engine used when CreateTable is not given an explicit kind.
  void set_default_engine(EngineKind kind) { default_engine_ = kind; }
  EngineKind default_engine() const { return default_engine_; }

  /// Metrics registry handed to engines that report compression/scan
  /// counters (may be null).
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Creates an empty table under the catalog's default engine.
  Result<TableInfo*> CreateTable(const std::string& name, Schema schema);

  /// Creates an empty table under an explicit storage engine.
  Result<TableInfo*> CreateTable(const std::string& name, Schema schema,
                                 EngineKind kind);

  /// Looks up a table (case-insensitive). kNotFound if absent.
  Result<TableInfo*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Removes a table and its indexes. The underlying Disk files are
  /// truncated (ids are not reused).
  Status DropTable(const std::string& name);

  /// Creates a B+-tree index over existing rows of `table`.
  Result<IndexInfo*> CreateIndex(const std::string& index_name,
                                 const std::string& table,
                                 const std::vector<std::string>& columns,
                                 bool unique);

  Result<IndexInfo*> GetIndex(const std::string& name) const;

  /// Drops an index by name.
  Status DropIndex(const std::string& name);

  Status CreateView(const std::string& name, const std::string& sql);
  Result<const ViewInfo*> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;

  /// All tables, for size reporting.
  std::vector<const TableInfo*> AllTables() const;

  BufferPool* pool() const { return pool_; }

 private:
  BufferPool* pool_;
  EngineKind default_engine_ = EngineKind::kRowHeap;
  MetricsRegistry* metrics_ = nullptr;
  std::unordered_map<std::string, std::unique_ptr<TableInfo>> tables_;
  std::unordered_map<std::string, std::unique_ptr<IndexInfo>> indexes_;
  std::unordered_map<std::string, ViewInfo> views_;
  std::vector<std::string> table_order_;  // creation order for reporting
};

/// Builds the memcomparable index key for `row` under `index`.
std::string IndexKeyForRow(const IndexInfo& index, const Row& row);

}  // namespace rdbms
}  // namespace r3

#endif  // R3DB_RDBMS_CATALOG_H_
