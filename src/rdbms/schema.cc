#include "rdbms/schema.h"

#include "common/str_util.h"

namespace r3 {
namespace rdbms {

size_t Column::StoredSize(const Value& v) const {
  switch (type) {
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
      return length == 4 ? 4 : 8;
    case DataType::kDouble:
    case DataType::kDecimal:
      return 8;
    case DataType::kDate:
      return 4;
    case DataType::kString:
      if (length > 0) return length;            // CHAR(n)
      return 2 + (v.is_null() ? 0 : v.string_value().size());  // VARCHAR
  }
  return 0;
}

Column ColInt(std::string name, uint16_t byte_width) {
  return Column{std::move(name), DataType::kInt64, byte_width, true};
}
Column ColDouble(std::string name) {
  return Column{std::move(name), DataType::kDouble, 0, true};
}
Column ColDecimal(std::string name) {
  return Column{std::move(name), DataType::kDecimal, 0, true};
}
Column ColChar(std::string name, uint16_t width) {
  return Column{std::move(name), DataType::kString, width, true};
}
Column ColVarchar(std::string name) {
  return Column{std::move(name), DataType::kString, 0, true};
}
Column ColDate(std::string name) {
  return Column{std::move(name), DataType::kDate, 0, true};
}
Column ColBool(std::string name) {
  return Column{std::move(name), DataType::kBool, 0, true};
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    index_.emplace(str::ToUpper(columns_[i].name), i);
  }
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(str::ToUpper(name));
  if (it == index_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

bool Schema::Contains(const std::string& name) const {
  return index_.count(str::ToUpper(name)) > 0;
}

Status Schema::AddColumn(Column c) {
  std::string key = str::ToUpper(c.name);
  if (index_.count(key) > 0) {
    return Status::AlreadyExists("duplicate column '" + c.name + "'");
  }
  index_.emplace(std::move(key), columns_.size());
  columns_.push_back(std::move(c));
  return Status::OK();
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> cols = columns_;
  for (const Column& c : other.columns_) cols.push_back(c);
  // Duplicate names across sides are allowed in join outputs; lookup finds
  // the left occurrence first (we rebuild the map, first insert wins).
  Schema out;
  out.columns_ = std::move(cols);
  for (size_t i = 0; i < out.columns_.size(); ++i) {
    out.index_.emplace(str::ToUpper(out.columns_[i].name), i);
  }
  return out;
}

}  // namespace rdbms
}  // namespace r3
