#ifndef R3DB_SAP_DIALOG_WORKLOAD_H_
#define R3DB_SAP_DIALOG_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "appsys/dispatch/landscape.h"
#include "appsys/dispatch/request.h"

namespace r3 {
namespace sap {

/// The business-data key spaces the workload draws from — a copy of the
/// generator's counts (sap sits *below* tpcd in the layering, so this file
/// cannot see tpcd::DbGen; callers fill this from it):
///   {gen.NumOrders(), gen.NumParts(), gen.NumCustomers(), gen.NumSuppliers()}
struct SapKeySpace {
  int64_t orders = 0;     ///< order *count*; keys are spec-sparse (x4 space)
  int64_t parts = 0;
  int64_t customers = 0;
  int64_t suppliers = 0;
};

/// Parameters of the open-loop interactive workload: `users` simulated
/// dialog users logging on over a ramp, each submitting Table-8-style
/// transactions separated by think times, plus background report streams.
/// A plan is a pure function of these options (integer arithmetic only), so
/// runs are byte-reproducible across hosts.
struct DialogWorkloadOptions {
  int users = 100;
  int64_t duration_s = 600;       ///< arrival horizon (virtual seconds)
  int64_t ramp_s = 60;            ///< logons spread uniformly over the ramp
  int64_t mean_think_ms = 10000;  ///< uniform in [mean/2, 3*mean/2]
  int report_streams = 1;         ///< background SDRPT job streams
  int64_t report_interval_s = 120;
  uint64_t seed = 42;
  /// Clients (MANDTs) users are spread across, round-robin by user id.
  std::vector<std::string> clients = {"301"};
};

/// Generates the full arrival plan, sorted by (arrival_us, seq). Update
/// postings are NOT planned here — VA01 steps schedule them as followups at
/// execution time, like the real asynchronous update task.
std::vector<appsys::dispatch::PlannedRequest> GenerateDialogWorkload(
    const SapKeySpace& keys, const DialogWorkloadOptions& options);

/// The script implementations: a ScriptRunner executing VA03/MM03/VA05/
/// VA01 (+ its update posting) and the SD report against an instance's
/// Open SQL interface. Order numbers for created orders are allocated from
/// a counter above the generated keyspace; the returned runner owns that
/// state, so use one runner per landscape run.
appsys::dispatch::ScriptRunner MakeSapScriptRunner(const SapKeySpace& keys);

}  // namespace sap
}  // namespace r3

#endif  // R3DB_SAP_DIALOG_WORKLOAD_H_
