#include "sap/dialog_workload.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "appsys/open_sql.h"
#include "common/rng.h"
#include "sap/schema.h"

namespace r3 {
namespace sap {

namespace {

using appsys::OpenSql;
using appsys::OsqlCond;
using appsys::OpenSqlQuery;
using appsys::dispatch::AppServerInstance;
using appsys::dispatch::DialogScript;
using appsys::dispatch::PlannedRequest;
using appsys::dispatch::ScriptKind;
using appsys::dispatch::ScriptResult;
using appsys::dispatch::WorkProcess;
using appsys::dispatch::WpClass;
using rdbms::Value;

// The spec's sparse order numbering: 8 used keys per 32-key block.
int64_t SparseOrderKey(int64_t i) { return (i - 1) / 8 * 32 + (i - 1) % 8 + 1; }

// Integer-only think time: uniform in [mean/2, 3*mean/2] (mean = mean_us).
int64_t ThinkUs(Rng* rng, int64_t mean_us) {
  return mean_us / 2 + rng->Uniform(0, mean_us);
}

DialogScript RollDialogScript(Rng* rng, const SapKeySpace& keys) {
  DialogScript s;
  const int64_t roll = rng->Uniform(0, 99);
  if (roll < 35) {  // VA03: display one sales order
    s.tcode = "VA03";
    s.kind = ScriptKind::kVa03DisplayOrder;
    s.orderkey = SparseOrderKey(rng->Uniform(1, keys.orders));
  } else if (roll < 60) {  // MM03: display one material master
    s.tcode = "MM03";
    s.kind = ScriptKind::kMm03DisplayMaterial;
    s.partkey = rng->Uniform(1, keys.parts);
  } else if (roll < 75) {  // VA05: list one customer's orders
    s.tcode = "VA05";
    s.kind = ScriptKind::kVa05ListOrders;
    s.custkey = rng->Uniform(1, keys.customers);
  } else {  // VA01: create a sales order (posts via the update task)
    s.tcode = "VA01";
    s.kind = ScriptKind::kVa01CreateOrder;
    s.custkey = rng->Uniform(1, keys.customers);
    const int64_t items = rng->Uniform(1, 3);
    for (int64_t i = 0; i < items; ++i) {
      s.parts.push_back(rng->Uniform(1, keys.parts));
    }
  }
  return s;
}

// -- Script implementations ---------------------------------------------------

Status RunVa03(AppServerInstance* inst, OpenSql* osql,
               const DialogScript& script, ScriptResult* out) {
  inst->clock()->Charge(inst->clock()->model().dialog_screen_us);
  const std::string vbeln = Vbeln(script.orderkey);
  auto header = osql->SelectSingle(
      "VBAK", {OsqlCond::Eq("VBELN", Value::Str(vbeln))});
  R3_RETURN_IF_ERROR(header.status());
  if (!header.value().has_value()) {
    out->ok = false;
    return Status::OK();
  }
  out->rows += 1;
  OpenSqlQuery items;
  items.table = "VBAP";
  items.where = {OsqlCond::Eq("VBELN", Value::Str(vbeln))};
  auto positions = osql->Select(items);
  R3_RETURN_IF_ERROR(positions.status());
  for (const rdbms::Row& r : positions.value().rows) {
    // VBAP: MANDT, VBELN, POSNR, MATNR, ... — per-item material lookup,
    // served from the (buffered) material master.
    auto mara = osql->SelectSingle(
        "MARA", {OsqlCond::Eq("MATNR", Value::Str(r[3].string_value()))});
    R3_RETURN_IF_ERROR(mara.status());
    out->rows += 1 + (mara.value().has_value() ? 1 : 0);
  }
  return Status::OK();
}

Status RunMm03(AppServerInstance* inst, OpenSql* osql,
               const DialogScript& script, ScriptResult* out) {
  inst->clock()->Charge(inst->clock()->model().dialog_screen_us);
  const std::string matnr = Matnr(script.partkey);
  auto mara = osql->SelectSingle(
      "MARA", {OsqlCond::Eq("MATNR", Value::Str(matnr))});
  R3_RETURN_IF_ERROR(mara.status());
  if (!mara.value().has_value()) {
    out->ok = false;
    return Status::OK();
  }
  auto makt = osql->SelectSingle(
      "MAKT", {OsqlCond::Eq("MATNR", Value::Str(matnr)),
               OsqlCond::Eq("SPRAS", Value::Str("E"))});
  R3_RETURN_IF_ERROR(makt.status());
  out->rows = 1 + (makt.value().has_value() ? 1 : 0);
  return Status::OK();
}

Status RunVa05(AppServerInstance* inst, OpenSql* osql,
               const DialogScript& script, ScriptResult* out) {
  inst->clock()->Charge(inst->clock()->model().dialog_screen_us);
  OpenSqlQuery list;
  list.table = "VBAK";
  list.where = {OsqlCond::Eq("KUNNR", Value::Str(Kunnr(script.custkey)))};
  list.up_to = 20;  // the list screen shows one page
  auto orders = osql->Select(list);
  R3_RETURN_IF_ERROR(orders.status());
  out->rows = static_cast<int64_t>(orders.value().rows.size());
  return Status::OK();
}

Status RunVa01(AppServerInstance* inst, OpenSql* osql,
               const PlannedRequest& req, int64_t new_orderkey,
               ScriptResult* out) {
  // Entry screen + item/pricing screen.
  inst->clock()->Charge(inst->clock()->model().dialog_screen_us);
  const DialogScript& script = req.script;
  auto customer = osql->SelectSingle(
      "KNA1", {OsqlCond::Eq("KUNNR", Value::Str(Kunnr(script.custkey)))});
  R3_RETURN_IF_ERROR(customer.status());
  if (!customer.value().has_value()) {
    out->ok = false;  // order entry refused: unknown sold-to party
    return Status::OK();
  }
  out->rows += 1;
  for (int64_t partkey : script.parts) {
    auto mara = osql->SelectSingle(
        "MARA", {OsqlCond::Eq("MATNR", Value::Str(Matnr(partkey)))});
    R3_RETURN_IF_ERROR(mara.status());
    out->rows += 1;
  }
  inst->clock()->Charge(inst->clock()->model().dialog_screen_us);

  // Saving hands the document to the asynchronous update task: the dialog
  // step ends here; the posting runs later on an update work process.
  PlannedRequest post;
  post.user = req.user;
  post.client = req.client;
  post.wp_class = WpClass::kUpdate;
  post.script.tcode = "VA01U";
  post.script.kind = ScriptKind::kVa01UpdatePost;
  post.script.orderkey = new_orderkey;
  post.script.custkey = script.custkey;
  post.script.parts = script.parts;
  out->followup = std::move(post);
  return Status::OK();
}

Status RunVa01UpdatePost(OpenSql* osql, const SapKeySpace& keys,
                         const DialogScript& script, ScriptResult* out) {
  const std::string vbeln = Vbeln(script.orderkey);
  const int64_t total_cents =
      static_cast<int64_t>(script.parts.size()) * 10000;
  // MANDT (column 0) is overwritten with the session client by Open SQL.
  R3_RETURN_IF_ERROR(osql->Insert(
      "VBAK",
      WithFiller(rdbms::Row{Value::Str(""), Value::Str(vbeln),
                            Value::Date(9496), Value::Str("DIALOG"),
                            Value::Date(9496), Value::Str("A"),
                            Value::Str("TA"),
                            Value::DecimalFromCents(total_cents),
                            Value::Str("USD"),
                            Value::Str(Kunnr(script.custkey)),
                            Value::Str(Knumv(script.orderkey)),
                            Value::Str("O"), Value::Str("3-MEDIUM"),
                            Value::Str("00")},
                 FillerCounts::kVbak)));
  out->rows += 1;
  int64_t posnr = 0;
  for (int64_t partkey : script.parts) {
    const int64_t suppkey = (partkey - 1) % keys.suppliers + 1;
    posnr += 1;
    R3_RETURN_IF_ERROR(osql->Insert(
        "VBAP",
        WithFiller(rdbms::Row{Value::Str(""), Value::Str(vbeln),
                              Value::Str(Posnr(posnr)),
                              Value::Str(Matnr(partkey)),
                              Value::Str(Lifnr(suppkey)),
                              Value::DecimalFromCents(100), Value::Str("ST"),
                              Value::DecimalFromCents(10000),
                              Value::Str("USD"), Value::Str("N"),
                              Value::Str("O"), Value::Str("TRUCK"),
                              Value::Str("NONE")},
                   FillerCounts::kVbap)));
    out->rows += 1;
  }
  return Status::OK();
}

Status RunSdReport(OpenSql* osql, const DialogScript& script,
                   ScriptResult* out) {
  OpenSqlQuery scan;
  scan.table = "VBAP";
  scan.where = {OsqlCond::Between("VBELN",
                                  Value::Str(Vbeln(script.orderkey)),
                                  Value::Str(Vbeln(script.orderkey_hi)))};
  auto positions = osql->Select(scan);
  R3_RETURN_IF_ERROR(positions.status());
  out->rows = static_cast<int64_t>(positions.value().rows.size());
  // The report resolves each distinct material once (buffered lookups).
  std::vector<std::string> seen;
  for (const rdbms::Row& r : positions.value().rows) {
    const std::string& matnr = r[3].string_value();
    if (std::find(seen.begin(), seen.end(), matnr) != seen.end()) continue;
    seen.push_back(matnr);
    auto mara = osql->SelectSingle(
        "MARA", {OsqlCond::Eq("MATNR", Value::Str(matnr))});
    R3_RETURN_IF_ERROR(mara.status());
  }
  return Status::OK();
}

}  // namespace

std::vector<PlannedRequest> GenerateDialogWorkload(
    const SapKeySpace& keys, const DialogWorkloadOptions& options) {
  std::vector<PlannedRequest> plan;
  const int64_t horizon_us = options.duration_s * 1000000;
  const int64_t ramp_us = options.ramp_s * 1000000;
  const int64_t mean_think_us = options.mean_think_ms * 1000;
  const size_t num_clients = std::max<size_t>(options.clients.size(), 1);

  for (int user = 0; user < options.users; ++user) {
    // Per-user stream: an independent generator makes the plan insensitive
    // to the user count ordering (user k's steps are the same whether 10 or
    // 5000 users run).
    Rng rng(options.seed + 0x9e3779b97f4a7c15ULL *
                               static_cast<uint64_t>(user + 1));
    const int64_t logon_us =
        options.users > 0 ? ramp_us * user / options.users : 0;
    int64_t t = logon_us + ThinkUs(&rng, mean_think_us);
    while (t < horizon_us) {
      PlannedRequest req;
      req.arrival_us = t;
      req.user = user;
      req.client = options.clients.empty()
                       ? "301"
                       : options.clients[user % num_clients];
      req.wp_class = WpClass::kDialog;
      req.script = RollDialogScript(&rng, keys);
      plan.push_back(std::move(req));
      t += ThinkUs(&rng, mean_think_us);
    }
  }

  // Background report streams: periodic SD reports on batch work processes,
  // staggered so streams do not align.
  const int64_t interval_us = options.report_interval_s * 1000000;
  const int64_t orders = keys.orders;
  const int64_t span = std::max<int64_t>(orders / 50, 8) * 4;  // sparse keys
  const int64_t keyspace = orders * 4;
  for (int s = 0; s < options.report_streams; ++s) {
    Rng rng(options.seed ^ (0xb5297a4d3f84d5b5ULL *
                            static_cast<uint64_t>(s + 1)));
    int64_t t = interval_us * (2 * s + 1) /
                (2 * std::max(options.report_streams, 1));
    while (t < horizon_us) {
      PlannedRequest req;
      req.arrival_us = t;
      req.user = options.users + s;
      req.client = options.clients.empty()
                       ? "301"
                       : options.clients[s % num_clients];
      req.wp_class = WpClass::kBatch;
      req.script.tcode = "SDRPT";
      req.script.kind = ScriptKind::kSdReport;
      req.script.orderkey = rng.Uniform(1, std::max<int64_t>(keyspace - span, 1));
      req.script.orderkey_hi = req.script.orderkey + span;
      plan.push_back(std::move(req));
      t += interval_us;
    }
  }

  std::sort(plan.begin(), plan.end(),
            [](const PlannedRequest& a, const PlannedRequest& b) {
              if (a.arrival_us != b.arrival_us)
                return a.arrival_us < b.arrival_us;
              return a.user < b.user;
            });
  for (size_t i = 0; i < plan.size(); ++i) {
    plan[i].seq = static_cast<int64_t>(i);
  }
  return plan;
}

appsys::dispatch::ScriptRunner MakeSapScriptRunner(const SapKeySpace& keys) {
  // Created documents number upward from above the generated keyspace;
  // allocation order is deterministic because execution order is.
  auto next_vbeln = std::make_shared<int64_t>(100000000);
  return [keys, next_vbeln](AppServerInstance* inst, WorkProcess* wp,
                           const PlannedRequest& req,
                           ScriptResult* out) -> Status {
    OpenSql* osql = inst->OpenSqlFor(wp, req.client);
    switch (req.script.kind) {
      case ScriptKind::kVa03DisplayOrder:
        return RunVa03(inst, osql, req.script, out);
      case ScriptKind::kMm03DisplayMaterial:
        return RunMm03(inst, osql, req.script, out);
      case ScriptKind::kVa05ListOrders:
        return RunVa05(inst, osql, req.script, out);
      case ScriptKind::kVa01CreateOrder:
        return RunVa01(inst, osql, req, ++*next_vbeln, out);
      case ScriptKind::kVa01UpdatePost:
        return RunVa01UpdatePost(osql, keys, req.script, out);
      case ScriptKind::kSdReport:
        return RunSdReport(osql, req.script, out);
    }
    return Status::InvalidArgument("unknown script kind");
  };
}

}  // namespace sap
}  // namespace r3
