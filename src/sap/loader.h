#ifndef R3DB_SAP_LOADER_H_
#define R3DB_SAP_LOADER_H_

#include "appsys/app_server.h"
#include "common/status.h"
#include "tpcd/dbgen.h"

namespace r3 {
namespace sap {

/// Loads TPC-D data into the SAP-mapped schema.
///
/// Two paths:
///  * Batch input ("EnterXxx"): the faithful path — every record runs a
///    dialog transaction with screens, master-data validation probes, and
///    tuple-at-a-time inserts (Table 3's month-long load; UF1/UF2's cost).
///  * FastLoad: direct dictionary inserts without the dialog machinery, for
///    setting up query experiments quickly. Same resulting bytes.
class SapLoader {
 public:
  SapLoader(appsys::AppServer* app, tpcd::DbGen* gen) : app_(app), gen_(gen) {}

  /// Direct-load everything + ANALYZE. No dialog overhead.
  Status FastLoadAll();

  // -- Batch-input ("simulated interactive entry") per business object ------

  Status EnterNation(const tpcd::NationRec& n);
  Status EnterRegion(const tpcd::RegionRec& r);
  Status EnterSupplier(const tpcd::SupplierRec& s);
  Status EnterPart(const tpcd::PartRec& p);
  Status EnterPartSupp(const tpcd::PartSuppRec& ps, int64_t nth_supplier);
  Status EnterCustomer(const tpcd::CustomerRec& c);
  Status EnterOrder(const tpcd::OrderRec& o);

  /// Deletes one order and its dependent records through the application
  /// layer (the UF2 path).
  Status DeleteOrder(int64_t orderkey);

  appsys::AppServer* app() { return app_; }
  tpcd::DbGen* gen() { return gen_; }

 private:
  // Direct row writers shared by both paths.
  Status PutNation(const tpcd::NationRec& n);
  Status PutRegion(const tpcd::RegionRec& r);
  Status PutSupplier(const tpcd::SupplierRec& s);
  Status PutPart(const tpcd::PartRec& p);
  Status PutPartSupp(const tpcd::PartSuppRec& ps, int64_t nth);
  Status PutCustomer(const tpcd::CustomerRec& c);
  Status PutOrder(const tpcd::OrderRec& o);
  Status PutText(const std::string& tdobject, const std::string& tdname,
                 const std::string& text);

  appsys::AppServer* app_;
  tpcd::DbGen* gen_;
  /// Tracks which supplier slot a PARTSUPP row is, keyed by generation order.
  int64_t partsupp_seq_ = 0;
};

}  // namespace sap
}  // namespace r3

#endif  // R3DB_SAP_LOADER_H_
