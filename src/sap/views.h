#ifndef R3DB_SAP_VIEWS_H_
#define R3DB_SAP_VIEWS_H_

#include "appsys/app_server.h"
#include "common/status.h"

namespace r3 {
namespace sap {

/// The join views a Release 2.2 installation needs to push any join work at
/// all down to the RDBMS (Section 2.3: join views over transparent tables
/// along key relationships — note KONV, being a cluster table, can never
/// appear in one):
///
///   VLIPS  = VBAP x VBEP   (order position + schedule dates)
///   VORDK  = VBAK x KNA1   (order header + customer)
///   VINFO  = EINA x EINE   (purchasing info record, both halves)
///   VMAT   = MARA x MAKT   (material + description)
///   VSUPN  = LFA1 x T005T  (supplier + nation name)
Status CreateJoinViews(appsys::AppServer* app);

}  // namespace sap
}  // namespace r3

#endif  // R3DB_SAP_VIEWS_H_
