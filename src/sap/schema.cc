#include "sap/schema.h"

#include "common/str_util.h"

namespace r3 {
namespace sap {

using appsys::AppServer;
using appsys::DataDictionary;
using rdbms::ColChar;
using rdbms::ColDate;
using rdbms::ColDecimal;
using rdbms::ColDouble;
using rdbms::ColInt;
using rdbms::ColVarchar;
using rdbms::Schema;

std::string Land1(int64_t nationkey) { return str::SapKey(nationkey, 3); }
std::string Regio(int64_t regionkey) { return str::SapKey(regionkey, 3); }
std::string Matnr(int64_t partkey) { return str::SapKey(partkey, 16); }
std::string Lifnr(int64_t suppkey) { return str::SapKey(suppkey, 10); }
std::string Kunnr(int64_t custkey) { return str::SapKey(custkey, 10); }
std::string Vbeln(int64_t orderkey) { return str::SapKey(orderkey, 10); }
std::string Posnr(int64_t linenumber) { return str::SapKey(linenumber, 6); }
std::string Knumv(int64_t orderkey) { return str::SapKey(orderkey, 10); }
std::string Knumh(int64_t partkey) { return str::SapKey(partkey, 10); }
std::string Infnr(int64_t partkey, int64_t nth_supplier) {
  return str::SapKey(partkey * 4 + nth_supplier, 10);
}

int64_t OrderKeyOf(const std::string& vbeln) {
  return std::strtoll(vbeln.c_str(), nullptr, 10);
}

void AddFiller(Schema* schema, int n) {
  for (int i = 0; i < n; ++i) {
    (void)schema->AddColumn(ColChar(str::Format("FILL%02d", i), 10));
  }
}

rdbms::Row WithFiller(rdbms::Row row, int n) {
  for (int i = 0; i < n; ++i) {
    row.push_back(rdbms::Value::Str(""));
  }
  return row;
}

Status CreateSapSchema(AppServer* app) {
  DataDictionary* dict = app->dictionary();

  // ---- Country / region master data (NATION, REGION) ----------------------
  Schema t005({ColChar("MANDT", 3), ColChar("LAND1", 3), ColChar("LANDK", 4),
               ColChar("REGIO", 3), ColChar("WAERS", 5), ColChar("NMFMT", 2),
               ColChar("XPLZS", 1), ColChar("INTCA", 2)});
  AddFiller(&t005, FillerCounts::kT005);
  R3_RETURN_IF_ERROR(dict->DefineTransparent("T005", t005, {"MANDT", "LAND1"}));

  Schema t005t({ColChar("MANDT", 3), ColChar("SPRAS", 2), ColChar("LAND1", 3),
                ColChar("LANDX", 25), ColChar("NATIO", 25)});
  R3_RETURN_IF_ERROR(
      dict->DefineTransparent("T005T", t005t, {"MANDT", "SPRAS", "LAND1"}));

  Schema t005u({ColChar("MANDT", 3), ColChar("SPRAS", 2), ColChar("REGIO", 3),
                ColChar("BEZEI", 25)});
  R3_RETURN_IF_ERROR(
      dict->DefineTransparent("T005U", t005u, {"MANDT", "SPRAS", "REGIO"}));

  // ---- Material master (PART) ---------------------------------------------
  Schema mara({ColChar("MANDT", 3), ColChar("MATNR", 16), ColDate("ERSDA"),
               ColChar("ERNAM", 12), ColChar("MTART", 10), ColChar("MATKL", 9),
               ColChar("MEINS", 3), ColDecimal("BRGEW"), ColChar("GEWEI", 3),
               ColChar("GROES", 25), ColChar("MAGRV", 10),
               ColChar("MFRNR", 25), ColDate("LAEDA"), ColChar("VPSTA", 2)});
  AddFiller(&mara, FillerCounts::kMara);
  R3_RETURN_IF_ERROR(dict->DefineTransparent("MARA", mara, {"MANDT", "MATNR"}));

  Schema makt({ColChar("MANDT", 3), ColChar("MATNR", 16), ColChar("SPRAS", 2),
               ColChar("MAKTX", 55), ColChar("MAKTG", 55)});
  AddFiller(&makt, FillerCounts::kMakt);
  R3_RETURN_IF_ERROR(
      dict->DefineTransparent("MAKT", makt, {"MANDT", "MATNR", "SPRAS"}));

  // Pricing condition index (pool) + condition items: the part's list price.
  Schema a004({ColChar("MANDT", 3), ColChar("KAPPL", 2), ColChar("KSCHL", 4),
               ColChar("VKORG", 4), ColChar("MATNR", 16), ColDate("DATBI"),
               ColDate("DATAB"), ColChar("KNUMH", 10)});
  AddFiller(&a004, FillerCounts::kA004);
  R3_RETURN_IF_ERROR(dict->DefinePool(
      "A004", a004, {"MANDT", "KAPPL", "KSCHL", "VKORG", "MATNR", "DATBI"},
      "KAPOL"));

  Schema konp({ColChar("MANDT", 3), ColChar("KNUMH", 10), ColChar("KOPOS", 2),
               ColChar("KAPPL", 2), ColChar("KSCHL", 4), ColDecimal("KBETR"),
               ColChar("KONWA", 5), ColDecimal("KPEIN"), ColChar("KMEIN", 3)});
  AddFiller(&konp, FillerCounts::kKonp);
  R3_RETURN_IF_ERROR(
      dict->DefineTransparent("KONP", konp, {"MANDT", "KNUMH", "KOPOS"}));

  // ---- Supplier master (SUPPLIER) ------------------------------------------
  Schema lfa1({ColChar("MANDT", 3), ColChar("LIFNR", 10), ColChar("LAND1", 3),
               ColChar("NAME1", 30), ColChar("ORT01", 25), ColChar("PSTLZ", 10),
               ColChar("STRAS", 30), ColChar("TELF1", 16), ColChar("SPRAS", 2),
               ColChar("KTOKK", 4)});
  AddFiller(&lfa1, FillerCounts::kLfa1);
  R3_RETURN_IF_ERROR(dict->DefineTransparent("LFA1", lfa1, {"MANDT", "LIFNR"}));

  // ---- Purchasing info records (PARTSUPP) ----------------------------------
  Schema eina({ColChar("MANDT", 3), ColChar("INFNR", 10), ColChar("MATNR", 16),
               ColChar("LIFNR", 10), ColDate("ERDAT"), ColChar("MEINS", 3),
               ColChar("LOEKZ", 1)});
  AddFiller(&eina, FillerCounts::kEina);
  R3_RETURN_IF_ERROR(dict->DefineTransparent("EINA", eina, {"MANDT", "INFNR"}));
  R3_RETURN_IF_ERROR(dict->CreateSecondaryIndex("EINA", "M", {"MATNR", "LIFNR"}));

  Schema eine({ColChar("MANDT", 3), ColChar("INFNR", 10), ColChar("EKORG", 4),
               ColChar("WERKS", 4), ColDecimal("APLFZ"), ColDecimal("NETPR"),
               ColDecimal("PEINH"), ColChar("BPRME", 3), ColChar("WAERS", 5)});
  AddFiller(&eine, FillerCounts::kEine);
  R3_RETURN_IF_ERROR(
      dict->DefineTransparent("EINE", eine, {"MANDT", "INFNR", "EKORG"}));

  // ---- Characteristic values (odd attributes) ------------------------------
  Schema ausp({ColChar("MANDT", 3), ColChar("OBJEK", 20), ColChar("ATINN", 12),
               ColChar("ATZHL", 4), ColChar("KLART", 3), ColChar("ATWRT", 30),
               ColDouble("ATFLV")});
  AddFiller(&ausp, FillerCounts::kAusp);
  R3_RETURN_IF_ERROR(dict->DefineTransparent(
      "AUSP", ausp, {"MANDT", "OBJEK", "ATINN", "ATZHL", "KLART"}));

  // ---- Customer master (CUSTOMER) -------------------------------------------
  Schema kna1({ColChar("MANDT", 3), ColChar("KUNNR", 10), ColChar("LAND1", 3),
               ColChar("NAME1", 30), ColChar("ORT01", 25), ColChar("PSTLZ", 10),
               ColChar("STRAS", 30), ColChar("TELF1", 16), ColChar("BRSCH", 10),
               ColChar("KTOKD", 4)});
  AddFiller(&kna1, FillerCounts::kKna1);
  R3_RETURN_IF_ERROR(dict->DefineTransparent("KNA1", kna1, {"MANDT", "KUNNR"}));

  // ---- Sales documents (ORDERS / LINEITEM) ----------------------------------
  Schema vbak({ColChar("MANDT", 3), ColChar("VBELN", 10), ColDate("ERDAT"),
               ColChar("ERNAM", 15), ColDate("AUDAT"), ColChar("VBTYP", 1),
               ColChar("AUART", 4), ColDecimal("NETWR"), ColChar("WAERK", 5),
               ColChar("KUNNR", 10), ColChar("KNUMV", 10), ColChar("GBSTK", 1),
               ColChar("PRIOK", 15), ColChar("VSBED", 2)});
  AddFiller(&vbak, FillerCounts::kVbak);
  R3_RETURN_IF_ERROR(dict->DefineTransparent("VBAK", vbak, {"MANDT", "VBELN"}));
  R3_RETURN_IF_ERROR(dict->CreateSecondaryIndex("VBAK", "K", {"MANDT", "KUNNR"}));
  R3_RETURN_IF_ERROR(dict->CreateSecondaryIndex("VBAK", "D", {"MANDT", "AUDAT"}));

  Schema vbap({ColChar("MANDT", 3), ColChar("VBELN", 10), ColChar("POSNR", 6),
               ColChar("MATNR", 16), ColChar("LIFNR", 10),
               ColDecimal("KWMENG"), ColChar("VRKME", 3), ColDecimal("NETWR"),
               ColChar("WAERK", 5), ColChar("ABGRU", 2), ColChar("GBSTA", 1),
               ColChar("ROUTE", 10), ColChar("LGORT", 25)});
  AddFiller(&vbap, FillerCounts::kVbap);
  R3_RETURN_IF_ERROR(
      dict->DefineTransparent("VBAP", vbap, {"MANDT", "VBELN", "POSNR"}));
  R3_RETURN_IF_ERROR(dict->CreateSecondaryIndex("VBAP", "M", {"MANDT", "MATNR"}));

  Schema vbep({ColChar("MANDT", 3), ColChar("VBELN", 10), ColChar("POSNR", 6),
               ColChar("ETENR", 4), ColDate("EDATU"), ColDate("WADAT"),
               ColDate("LDDAT"), ColDecimal("BMENG"), ColChar("LIFSP", 2)});
  AddFiller(&vbep, FillerCounts::kVbep);
  R3_RETURN_IF_ERROR(dict->DefineTransparent(
      "VBEP", vbep, {"MANDT", "VBELN", "POSNR", "ETENR"}));
  // The default shipdate index the paper talks about (deleted for the 3.0
  // power test because it misled the blind optimizer).
  R3_RETURN_IF_ERROR(dict->CreateSecondaryIndex("VBEP", "E", {"MANDT", "EDATU"}));

  // Document conditions (cluster): discount/tax/price of every position.
  Schema konv({ColChar("MANDT", 3), ColChar("KNUMV", 10), ColChar("KPOSN", 6),
               ColChar("STUNR", 3), ColChar("ZAEHK", 2), ColChar("KSCHL", 4),
               ColDecimal("KBETR"), ColDecimal("KAWRT"), ColDecimal("KWERT")});
  AddFiller(&konv, FillerCounts::kKonv);
  R3_RETURN_IF_ERROR(dict->DefineCluster(
      "KONV", konv, {"MANDT", "KNUMV", "KPOSN", "STUNR", "ZAEHK"}, 2, "KOCLU"));

  // ---- Texts (every TPC-D comment) ------------------------------------------
  Schema stxl({ColChar("MANDT", 3), ColChar("RELID", 2),
               ColChar("TDOBJECT", 10), ColChar("TDNAME", 32),
               ColChar("TDID", 4), ColChar("TDSPRAS", 2), ColInt("SRTF2", 4),
               ColVarchar("CLUSTD")});
  R3_RETURN_IF_ERROR(dict->DefineTransparent(
      "STXL", stxl,
      {"MANDT", "RELID", "TDOBJECT", "TDNAME", "TDID", "TDSPRAS", "SRTF2"}));

  return Status::OK();
}

}  // namespace sap
}  // namespace r3
