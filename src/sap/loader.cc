#include "sap/loader.h"

#include "common/date.h"
#include "common/str_util.h"
#include "sap/schema.h"

namespace r3 {
namespace sap {

using appsys::BatchInput;
using appsys::DataDictionary;
using appsys::OsqlCond;
using rdbms::Row;
using rdbms::Value;
using tpcd::CustomerRec;
using tpcd::NationRec;
using tpcd::OrderRec;
using tpcd::PartRec;
using tpcd::PartSuppRec;
using tpcd::RegionRec;
using tpcd::SupplierRec;

namespace {

Value Mandt(const appsys::AppServer& app) {
  return Value::Str(app.client());
}

int32_t HighDate() { return date::FromYmd(9999, 12, 31); }
int32_t LoadDate() { return date::FromYmd(1995, 1, 1); }

}  // namespace

Status SapLoader::PutText(const std::string& tdobject, const std::string& tdname,
                          const std::string& text) {
  Row row{Mandt(*app_),          Value::Str("TX"),  Value::Str(tdobject),
          Value::Str(tdname),    Value::Str("0001"), Value::Str("E"),
          Value::Int(0),         Value::Str(text)};
  return app_->dictionary()->InsertLogical("STXL", row);
}

Status SapLoader::PutNation(const NationRec& n) {
  DataDictionary* dict = app_->dictionary();
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "T005", WithFiller(
      Row{Mandt(*app_), Value::Str(Land1(n.nationkey)),
                  Value::Str(""), Value::Str(Regio(n.regionkey)),
                  Value::Str("USD"), Value::Str(""), Value::Str(""),
                  Value::Str("")}, FillerCounts::kT005)));
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "T005T", Row{Mandt(*app_), Value::Str("E"), Value::Str(Land1(n.nationkey)),
                   Value::Str(n.name), Value::Str("")}));
  return PutText("NATION", Land1(n.nationkey), n.comment);
}

Status SapLoader::PutRegion(const RegionRec& r) {
  R3_RETURN_IF_ERROR(app_->dictionary()->InsertLogical(
      "T005U", Row{Mandt(*app_), Value::Str("E"), Value::Str(Regio(r.regionkey)),
                   Value::Str(r.name)}));
  return PutText("REGION", Regio(r.regionkey), r.comment);
}

Status SapLoader::PutSupplier(const SupplierRec& s) {
  DataDictionary* dict = app_->dictionary();
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "LFA1",
      WithFiller(
      Row{Mandt(*app_), Value::Str(Lifnr(s.suppkey)),
          Value::Str(Land1(s.nationkey)), Value::Str(s.name),
          Value::Str(""), Value::Str(""), Value::Str(s.address),
          Value::Str(s.phone), Value::Str("E"), Value::Str("KRED")}, FillerCounts::kLfa1)));
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "AUSP", WithFiller(
      Row{Mandt(*app_), Value::Str(Lifnr(s.suppkey)),
                  Value::Str(kAtinnSuppAcctbal), Value::Str("0001"),
                  Value::Str("001"), Value::Str(""),
                  Value::Dbl(static_cast<double>(s.acctbal_cents) / 100.0)}, FillerCounts::kAusp)));
  return PutText("LFA1", Lifnr(s.suppkey), s.comment);
}

Status SapLoader::PutPart(const PartRec& p) {
  DataDictionary* dict = app_->dictionary();
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "MARA",
      WithFiller(
      Row{Mandt(*app_), Value::Str(Matnr(p.partkey)), Value::Date(LoadDate()),
          Value::Str("DBGEN"), Value::Str("FERT"), Value::Str(p.brand),
          Value::Str("ST"), Value::Decimal(static_cast<double>(p.size)),
          Value::Str("KG"), Value::Str(p.type), Value::Str(p.container),
          Value::Str(p.mfgr), Value::Date(LoadDate()), Value::Str("K")}, FillerCounts::kMara)));
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "MAKT", WithFiller(
      Row{Mandt(*app_), Value::Str(Matnr(p.partkey)), Value::Str("E"),
                  Value::Str(p.name), Value::Str(str::ToUpper(p.name))}, FillerCounts::kMakt)));
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "AUSP", WithFiller(
      Row{Mandt(*app_), Value::Str(Matnr(p.partkey)),
                  Value::Str(kAtinnPartSize), Value::Str("0001"),
                  Value::Str("001"), Value::Str(""),
                  Value::Dbl(static_cast<double>(p.size))}, FillerCounts::kAusp)));
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "A004", WithFiller(
      Row{Mandt(*app_), Value::Str("V"), Value::Str(kKschlPrice),
                  Value::Str("0001"), Value::Str(Matnr(p.partkey)),
                  Value::Date(HighDate()), Value::Date(LoadDate()),
                  Value::Str(Knumh(p.partkey))}, FillerCounts::kA004)));
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "KONP",
      WithFiller(
      Row{Mandt(*app_), Value::Str(Knumh(p.partkey)), Value::Str("01"),
          Value::Str("V"), Value::Str(kKschlPrice),
          Value::DecimalFromCents(p.retailprice_cents), Value::Str("USD"),
          Value::Decimal(1.0), Value::Str("ST")}, FillerCounts::kKonp)));
  return PutText("MATERIAL", Matnr(p.partkey), p.comment);
}

Status SapLoader::PutPartSupp(const PartSuppRec& ps, int64_t nth) {
  DataDictionary* dict = app_->dictionary();
  std::string infnr = Infnr(ps.partkey, nth);
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "EINA", WithFiller(
      Row{Mandt(*app_), Value::Str(infnr), Value::Str(Matnr(ps.partkey)),
                  Value::Str(Lifnr(ps.suppkey)), Value::Date(LoadDate()),
                  Value::Str("ST"), Value::Str("")}, FillerCounts::kEina)));
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "EINE", WithFiller(
      Row{Mandt(*app_), Value::Str(infnr), Value::Str("0001"),
                  Value::Str("0001"), Value::Decimal(0.0),
                  Value::DecimalFromCents(ps.supplycost_cents),
                  Value::Decimal(1.0), Value::Str("ST"), Value::Str("USD")}, FillerCounts::kEine)));
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "AUSP", WithFiller(
      Row{Mandt(*app_), Value::Str(infnr), Value::Str(kAtinnPsAvailqty),
                  Value::Str("0001"), Value::Str("001"), Value::Str(""),
                  Value::Dbl(static_cast<double>(ps.availqty))}, FillerCounts::kAusp)));
  return PutText("EINA", infnr, ps.comment);
}

Status SapLoader::PutCustomer(const CustomerRec& c) {
  DataDictionary* dict = app_->dictionary();
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "KNA1",
      WithFiller(
      Row{Mandt(*app_), Value::Str(Kunnr(c.custkey)),
          Value::Str(Land1(c.nationkey)), Value::Str(c.name), Value::Str(""),
          Value::Str(""), Value::Str(c.address), Value::Str(c.phone),
          Value::Str(c.mktsegment), Value::Str("KUNA")}, FillerCounts::kKna1)));
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "AUSP", WithFiller(
      Row{Mandt(*app_), Value::Str(Kunnr(c.custkey)),
                  Value::Str(kAtinnCustAcctbal), Value::Str("0001"),
                  Value::Str("001"), Value::Str(""),
                  Value::Dbl(static_cast<double>(c.acctbal_cents) / 100.0)}, FillerCounts::kAusp)));
  return PutText("KNA1", Kunnr(c.custkey), c.comment);
}

Status SapLoader::PutOrder(const OrderRec& o) {
  DataDictionary* dict = app_->dictionary();
  R3_RETURN_IF_ERROR(dict->InsertLogical(
      "VBAK",
      WithFiller(
      Row{Mandt(*app_), Value::Str(Vbeln(o.orderkey)), Value::Date(o.orderdate),
          Value::Str(o.clerk), Value::Date(o.orderdate), Value::Str("C"),
          Value::Str("TA"), Value::DecimalFromCents(o.totalprice_cents),
          Value::Str("USD"), Value::Str(Kunnr(o.custkey)),
          Value::Str(Knumv(o.orderkey)), Value::Str(o.orderstatus),
          Value::Str(o.orderpriority),
          Value::Str(str::SapKey(o.shippriority, 2))}, FillerCounts::kVbak)));
  R3_RETURN_IF_ERROR(PutText("VBBK", Vbeln(o.orderkey), o.comment));

  for (const tpcd::LineItemRec& l : o.lines) {
    std::string posnr = Posnr(l.linenumber);
    R3_RETURN_IF_ERROR(dict->InsertLogical(
        "VBAP",
        WithFiller(
      Row{Mandt(*app_), Value::Str(Vbeln(o.orderkey)), Value::Str(posnr),
            Value::Str(Matnr(l.partkey)), Value::Str(Lifnr(l.suppkey)),
            Value::DecimalFromCents(l.quantity * 100), Value::Str("ST"),
            Value::DecimalFromCents(l.extendedprice_cents), Value::Str("USD"),
            Value::Str(l.returnflag), Value::Str(l.linestatus),
            Value::Str(l.shipmode), Value::Str(l.shipinstruct)}, FillerCounts::kVbap)));
    R3_RETURN_IF_ERROR(dict->InsertLogical(
        "VBEP",
        WithFiller(
      Row{Mandt(*app_), Value::Str(Vbeln(o.orderkey)), Value::Str(posnr),
            Value::Str("0001"), Value::Date(l.shipdate), Value::Date(l.commitdate),
            Value::Date(l.receiptdate),
            Value::DecimalFromCents(l.quantity * 100), Value::Str("")}, FillerCounts::kVbep)));
    // Three pricing conditions per position: price, discount, tax.
    // KBETR is per-mille for percentage conditions (paper's 1 + KBETR/1000).
    int64_t unit_price_cents =
        l.quantity > 0 ? l.extendedprice_cents / l.quantity : 0;
    int64_t disc_value = -l.extendedprice_cents * l.discount_bp / 100;
    int64_t taxed_base = l.extendedprice_cents + disc_value;
    int64_t tax_value = taxed_base * l.tax_bp / 100;
    auto konv_row = [&](const char* stunr, const char* kschl, double kbetr,
                        int64_t kawrt_cents, int64_t kwert_cents) {
      return WithFiller(
          Row{Mandt(*app_), Value::Str(Knumv(o.orderkey)), Value::Str(posnr),
              Value::Str(stunr), Value::Str("01"), Value::Str(kschl),
              Value::Decimal(kbetr), Value::DecimalFromCents(kawrt_cents),
              Value::DecimalFromCents(kwert_cents)},
          FillerCounts::kKonv);
    };
    R3_RETURN_IF_ERROR(dict->InsertLogical(
        "KONV",
        konv_row(kStunrPrice, kKschlPrice,
                 static_cast<double>(unit_price_cents) / 100.0,
                 l.quantity * 100, l.extendedprice_cents)));
    R3_RETURN_IF_ERROR(dict->InsertLogical(
        "KONV", konv_row(kStunrDiscount, kKschlDiscount,
                         -static_cast<double>(l.discount_bp) * 10.0,
                         l.extendedprice_cents, disc_value)));
    R3_RETURN_IF_ERROR(dict->InsertLogical(
        "KONV", konv_row(kStunrTax, kKschlTax,
                         static_cast<double>(l.tax_bp) * 10.0, taxed_base,
                         tax_value)));
    R3_RETURN_IF_ERROR(
        PutText("VBBP", Vbeln(o.orderkey) + posnr, l.comment));
  }
  return Status::OK();
}

Status SapLoader::FastLoadAll() {
  for (const RegionRec& r : gen_->MakeRegions()) {
    R3_RETURN_IF_ERROR(PutRegion(r));
  }
  for (const NationRec& n : gen_->MakeNations()) {
    R3_RETURN_IF_ERROR(PutNation(n));
  }
  for (const SupplierRec& s : gen_->MakeSuppliers()) {
    R3_RETURN_IF_ERROR(PutSupplier(s));
  }
  for (const PartRec& p : gen_->MakeParts()) {
    R3_RETURN_IF_ERROR(PutPart(p));
  }
  {
    int64_t i = 0;
    for (const PartSuppRec& ps : gen_->MakePartSupps()) {
      R3_RETURN_IF_ERROR(PutPartSupp(ps, i % 4));
      ++i;
    }
  }
  for (const CustomerRec& c : gen_->MakeCustomers()) {
    R3_RETURN_IF_ERROR(PutCustomer(c));
  }
  R3_RETURN_IF_ERROR(gen_->ForEachOrder(
      [&](const OrderRec& o) -> Status { return PutOrder(o); }));
  return app_->db()->Analyze();
}

// ---------------------------------------------------------------------------
// Batch-input entry (dialog transactions with validation)
// ---------------------------------------------------------------------------

Status SapLoader::EnterNation(const NationRec& n) {
  BatchInput::Transaction txn = app_->batch_input()->Begin("OY01");
  txn.Screen();
  R3_RETURN_IF_ERROR(PutNation(n));
  return txn.Commit();
}

Status SapLoader::EnterRegion(const RegionRec& r) {
  BatchInput::Transaction txn = app_->batch_input()->Begin("OY03");
  txn.Screen();
  R3_RETURN_IF_ERROR(PutRegion(r));
  return txn.Commit();
}

Status SapLoader::EnterSupplier(const SupplierRec& s) {
  BatchInput::Transaction txn = app_->batch_input()->Begin("XK01");
  txn.Screen();  // address + control data
  R3_RETURN_IF_ERROR(txn.CheckExists(
      "T005", {OsqlCond::Eq("LAND1", Value::Str(Land1(s.nationkey)))}));
  R3_RETURN_IF_ERROR(PutSupplier(s));
  return txn.Commit();
}

Status SapLoader::EnterPart(const PartRec& p) {
  BatchInput::Transaction txn = app_->batch_input()->Begin("MM01");
  txn.Screen();  // basic data + classification + sales views
  R3_RETURN_IF_ERROR(PutPart(p));
  return txn.Commit();
}

Status SapLoader::EnterPartSupp(const PartSuppRec& ps, int64_t nth_supplier) {
  BatchInput::Transaction txn = app_->batch_input()->Begin("ME11");
  txn.Screen();  // general + purchasing-org data
  R3_RETURN_IF_ERROR(txn.CheckExists(
      "MARA", {OsqlCond::Eq("MATNR", Value::Str(Matnr(ps.partkey)))}));
  R3_RETURN_IF_ERROR(txn.CheckExists(
      "LFA1", {OsqlCond::Eq("LIFNR", Value::Str(Lifnr(ps.suppkey)))}));
  R3_RETURN_IF_ERROR(PutPartSupp(ps, nth_supplier));
  return txn.Commit();
}

Status SapLoader::EnterCustomer(const CustomerRec& c) {
  BatchInput::Transaction txn = app_->batch_input()->Begin("XD01");
  txn.Screen();  // address + control data
  R3_RETURN_IF_ERROR(txn.CheckExists(
      "T005", {OsqlCond::Eq("LAND1", Value::Str(Land1(c.nationkey)))}));
  R3_RETURN_IF_ERROR(PutCustomer(c));
  return txn.Commit();
}

Status SapLoader::EnterOrder(const OrderRec& o) {
  BatchInput::Transaction txn = app_->batch_input()->Begin("VA01");
  txn.Screen();  // header
  R3_RETURN_IF_ERROR(txn.CheckExists(
      "KNA1", {OsqlCond::Eq("KUNNR", Value::Str(Kunnr(o.custkey)))}));
  for (const tpcd::LineItemRec& l : o.lines) {
    txn.Screen();  // one item screen per position
    R3_RETURN_IF_ERROR(txn.CheckExists(
        "MARA", {OsqlCond::Eq("MATNR", Value::Str(Matnr(l.partkey)))}));
    // Pricing: find the condition record (pool read) and its item.
    R3_RETURN_IF_ERROR(txn.CheckExists(
        "A004", {OsqlCond::Eq("KAPPL", Value::Str("V")),
                 OsqlCond::Eq("KSCHL", Value::Str(kKschlPrice)),
                 OsqlCond::Eq("VKORG", Value::Str("0001")),
                 OsqlCond::Eq("MATNR", Value::Str(Matnr(l.partkey)))}));
    R3_RETURN_IF_ERROR(txn.CheckExists(
        "KONP", {OsqlCond::Eq("KNUMH", Value::Str(Knumh(l.partkey))),
                 OsqlCond::Eq("KOPOS", Value::Str("01"))}));
  }
  R3_RETURN_IF_ERROR(PutOrder(o));
  return txn.Commit();
}

Status SapLoader::DeleteOrder(int64_t orderkey) {
  appsys::OpenSql* osql = app_->open_sql();
  int64_t affected = 0;
  // UF2 runs through batch input too: a VA02 dialog per document.
  BatchInput::Transaction txn = app_->batch_input()->Begin("VA02");
  txn.Screen();
  R3_RETURN_IF_ERROR(txn.CheckExists(
      "VBAK", {OsqlCond::Eq("VBELN", Value::Str(Vbeln(orderkey)))}));
  // Positions, schedule lines, conditions, texts, then the header.
  // Capture the positions first so the line texts can be deleted by their
  // exact keys (a LIKE over STXL would scan every comment in the system).
  appsys::OpenSqlQuery posq;
  posq.table = "VBAP";
  posq.columns = {"POSNR"};
  posq.where = {OsqlCond::Eq("VBELN", Value::Str(Vbeln(orderkey)))};
  R3_ASSIGN_OR_RETURN(rdbms::QueryResult positions, osql->Select(posq));
  R3_RETURN_IF_ERROR(osql->Delete(
      "VBAP", {OsqlCond::Eq("VBELN", Value::Str(Vbeln(orderkey)))}, &affected));
  R3_RETURN_IF_ERROR(osql->Delete(
      "VBEP", {OsqlCond::Eq("VBELN", Value::Str(Vbeln(orderkey)))}, &affected));
  R3_RETURN_IF_ERROR(osql->Delete(
      "KONV", {OsqlCond::Eq("KNUMV", Value::Str(Knumv(orderkey)))}, &affected));
  R3_RETURN_IF_ERROR(osql->Delete(
      "STXL", {OsqlCond::Eq("RELID", Value::Str("TX")),
               OsqlCond::Eq("TDOBJECT", Value::Str("VBBK")),
               OsqlCond::Eq("TDNAME", Value::Str(Vbeln(orderkey)))},
      &affected));
  for (const rdbms::Row& pos : positions.rows) {
    R3_RETURN_IF_ERROR(osql->Delete(
        "STXL",
        {OsqlCond::Eq("RELID", Value::Str("TX")),
         OsqlCond::Eq("TDOBJECT", Value::Str("VBBP")),
         OsqlCond::Eq("TDNAME",
                      Value::Str(Vbeln(orderkey) + pos[0].string_value()))},
        &affected));
  }
  R3_RETURN_IF_ERROR(osql->Delete(
      "VBAK", {OsqlCond::Eq("VBELN", Value::Str(Vbeln(orderkey)))}, &affected));
  return txn.Commit();
}

}  // namespace sap
}  // namespace r3
