#ifndef R3DB_SAP_SCHEMA_H_
#define R3DB_SAP_SCHEMA_H_

#include <cstdint>
#include <string>

#include "appsys/app_server.h"
#include "common/status.h"
#include "rdbms/row.h"

namespace r3 {
namespace sap {

/// Defines the 17 application tables that hold the TPC-D business data
/// (Table 1 of the paper) in the data dictionary, with their primary keys,
/// customary secondary indexes, and kinds:
///
///   T005/T005T/T005U         <- NATION/REGION master data
///   MARA/MAKT/A004(pool)/KONP <- PART (+ price terms)
///   LFA1                      <- SUPPLIER
///   EINA/EINE                 <- PARTSUPP (purchasing info records)
///   AUSP                      <- odd attributes of PART/SUPP/CUST/PARTSUPP
///   KNA1                      <- CUSTOMER
///   VBAK                      <- ORDERS
///   VBAP/VBEP/KONV(cluster)   <- LINEITEM (position/schedule/pricing)
///   STXL                      <- all comment texts
///
/// Everything is CHAR-key coded (order numbers as CHAR(10), materials as
/// CHAR(16), ...) and carries the realistic filler columns business master
/// data needs — together these produce the paper's ~10x data / ~8x index
/// size inflation (Table 2).
Status CreateSapSchema(appsys::AppServer* app);

// -- Key codings ------------------------------------------------------------

std::string Land1(int64_t nationkey);          ///< CHAR(3)
std::string Regio(int64_t regionkey);          ///< CHAR(3)
std::string Matnr(int64_t partkey);            ///< CHAR(16)
std::string Lifnr(int64_t suppkey);            ///< CHAR(10)
std::string Kunnr(int64_t custkey);            ///< CHAR(10)
std::string Vbeln(int64_t orderkey);           ///< CHAR(10)
std::string Posnr(int64_t linenumber);         ///< CHAR(6)
std::string Knumv(int64_t orderkey);           ///< CHAR(10), pricing document
std::string Knumh(int64_t partkey);            ///< CHAR(10), condition record
std::string Infnr(int64_t partkey, int64_t nth_supplier);  ///< CHAR(10)

/// Inverse of Vbeln (for reports that compute keys).
int64_t OrderKeyOf(const std::string& vbeln);

/// Filler-column counts per table (each CHAR(10), blank by default). Real
/// SAP master/document tables carry one to two hundred columns; business
/// data occupies a fraction of the row. These counts put our rows at a
/// realistic width so Table 2's ~10x inflation emerges from actual bytes.
struct FillerCounts {
  static constexpr int kMara = 25;   // real MARA: ~240 fields
  static constexpr int kMakt = 2;
  static constexpr int kKna1 = 22;   // real KNA1: ~180 fields
  static constexpr int kLfa1 = 20;
  static constexpr int kVbak = 25;   // real VBAK: ~100 fields
  static constexpr int kVbap = 32;   // real VBAP: ~200 fields
  static constexpr int kVbep = 15;
  static constexpr int kKonv = 10;   // real KONV: ~80 fields
  static constexpr int kKonp = 8;
  static constexpr int kEina = 10;
  static constexpr int kEine = 12;
  static constexpr int kT005 = 6;
  static constexpr int kAusp = 4;
  static constexpr int kStxl = 0;
  static constexpr int kA004 = 4;
};

/// Appends `n` blank CHAR(10) filler columns to a schema.
void AddFiller(rdbms::Schema* schema, int n);

/// Appends `n` empty values to a row (the default values SAP assigns).
rdbms::Row WithFiller(rdbms::Row row, int n);

// AUSP characteristic ids.
inline constexpr const char* kAtinnPartSize = "P_SIZE";
inline constexpr const char* kAtinnSuppAcctbal = "S_ACCTBAL";
inline constexpr const char* kAtinnCustAcctbal = "C_ACCTBAL";
inline constexpr const char* kAtinnPsAvailqty = "PS_AVAILQTY";

// KONV condition types.
inline constexpr const char* kKschlPrice = "PR00";
inline constexpr const char* kKschlDiscount = "DISC";
inline constexpr const char* kKschlTax = "TAX";
inline constexpr const char* kStunrPrice = "010";
inline constexpr const char* kStunrDiscount = "040";
inline constexpr const char* kStunrTax = "050";

}  // namespace sap
}  // namespace r3

#endif  // R3DB_SAP_SCHEMA_H_
