#include "sap/views.h"

#include "sap/schema.h"

namespace r3 {
namespace sap {

using rdbms::ColChar;
using rdbms::ColDate;
using rdbms::ColDecimal;
using rdbms::Schema;

Status CreateJoinViews(appsys::AppServer* app) {
  appsys::DataDictionary* dict = app->dictionary();

  // Order position + schedule line: the closest thing 2.2 Open SQL has to a
  // LINEITEM table (still without the KONV pricing!).
  Schema vlips({ColChar("MANDT", 3), ColChar("VBELN", 10), ColChar("POSNR", 6),
                ColChar("MATNR", 16), ColChar("LIFNR", 10),
                ColDecimal("KWMENG"), ColDecimal("NETWR"), ColChar("ABGRU", 2),
                ColChar("GBSTA", 1), ColChar("ROUTE", 10), ColChar("LGORT", 25),
                ColDate("EDATU"), ColDate("WADAT"), ColDate("LDDAT")});
  R3_RETURN_IF_ERROR(dict->DefineJoinView(
      "VLIPS",
      "SELECT P.MANDT MANDT, P.VBELN VBELN, P.POSNR POSNR, P.MATNR MATNR, "
      "P.LIFNR LIFNR, P.KWMENG KWMENG, P.NETWR NETWR, P.ABGRU ABGRU, "
      "P.GBSTA GBSTA, P.ROUTE ROUTE, P.LGORT LGORT, E.EDATU EDATU, "
      "E.WADAT WADAT, E.LDDAT LDDAT "
      "FROM VBAP P JOIN VBEP E ON P.MANDT = E.MANDT AND P.VBELN = E.VBELN "
      "AND P.POSNR = E.POSNR",
      vlips));

  // Order header + customer.
  Schema vordk({ColChar("MANDT", 3), ColChar("VBELN", 10), ColChar("KUNNR", 10),
                ColDate("AUDAT"), ColDecimal("NETWR"), ColChar("GBSTK", 1),
                ColChar("PRIOK", 15), ColChar("VSBED", 2), ColChar("ERNAM", 15),
                ColChar("KNUMV", 10), ColChar("BRSCH", 10),
                ColChar("LAND1", 3)});
  R3_RETURN_IF_ERROR(dict->DefineJoinView(
      "VORDK",
      "SELECT K.MANDT MANDT, K.VBELN VBELN, K.KUNNR KUNNR, K.AUDAT AUDAT, "
      "K.NETWR NETWR, K.GBSTK GBSTK, K.PRIOK PRIOK, K.VSBED VSBED, "
      "K.ERNAM ERNAM, K.KNUMV KNUMV, C.BRSCH BRSCH, C.LAND1 LAND1 "
      "FROM VBAK K JOIN KNA1 C ON K.MANDT = C.MANDT AND K.KUNNR = C.KUNNR",
      vordk));

  // Purchasing info record, both halves.
  Schema vinfo({ColChar("MANDT", 3), ColChar("INFNR", 10), ColChar("MATNR", 16),
                ColChar("LIFNR", 10), ColDecimal("NETPR")});
  R3_RETURN_IF_ERROR(dict->DefineJoinView(
      "VINFO",
      "SELECT A.MANDT MANDT, A.INFNR INFNR, A.MATNR MATNR, A.LIFNR LIFNR, "
      "E.NETPR NETPR "
      "FROM EINA A JOIN EINE E ON A.MANDT = E.MANDT AND A.INFNR = E.INFNR",
      vinfo));

  // Material + description.
  Schema vmat({ColChar("MANDT", 3), ColChar("MATNR", 16), ColChar("MAKTX", 55),
               ColChar("MATKL", 9), ColChar("GROES", 25), ColChar("MAGRV", 10),
               ColChar("MFRNR", 25)});
  R3_RETURN_IF_ERROR(dict->DefineJoinView(
      "VMAT",
      "SELECT M.MANDT MANDT, M.MATNR MATNR, T.MAKTX MAKTX, M.MATKL MATKL, "
      "M.GROES GROES, M.MAGRV MAGRV, M.MFRNR MFRNR "
      "FROM MARA M JOIN MAKT T ON M.MANDT = T.MANDT AND M.MATNR = T.MATNR",
      vmat));

  // Supplier + nation name.
  Schema vsupn({ColChar("MANDT", 3), ColChar("LIFNR", 10), ColChar("NAME1", 30),
                ColChar("STRAS", 30), ColChar("TELF1", 16), ColChar("LAND1", 3),
                ColChar("LANDX", 25)});
  R3_RETURN_IF_ERROR(dict->DefineJoinView(
      "VSUPN",
      "SELECT L.MANDT MANDT, L.LIFNR LIFNR, L.NAME1 NAME1, L.STRAS STRAS, "
      "L.TELF1 TELF1, L.LAND1 LAND1, T.LANDX LANDX "
      "FROM LFA1 L JOIN T005T T ON L.MANDT = T.MANDT AND L.LAND1 = T.LAND1",
      vsupn));

  return Status::OK();
}

}  // namespace sap
}  // namespace r3
