#include "appsys/app_server.h"

namespace r3 {
namespace appsys {

using rdbms::ColChar;
using rdbms::ColInt;
using rdbms::Schema;
using rdbms::Value;

AppServer::AppServer(rdbms::Database* db, AppServerOptions options)
    : db_(db), options_(std::move(options)) {
  dict_ = std::make_unique<DataDictionary>(db_);
  conn_ = std::make_unique<DbConnection>(db_, db_->clock());
  buffer_ = std::make_unique<TableBuffer>(
      db_->clock(), options_.table_buffer_bytes, db_->metrics());
  open_sql_ = std::make_unique<OpenSql>(dict_.get(), conn_.get(), buffer_.get(),
                                        db_->clock(), options_.release,
                                        options_.client);
  native_sql_ = std::make_unique<NativeSql>(conn_.get());
  batch_input_ = std::make_unique<BatchInput>(open_sql_.get(), conn_.get(),
                                              db_->clock());
}

Status AppServer::Bootstrap() {
  R3_RETURN_IF_ERROR(dict_->Bootstrap());
  if (!dict_->Exists("NRIV")) {
    Schema nriv({ColChar("MANDT", 3), ColChar("OBJECT", 10),
                 ColInt("NRLEVEL", 8)});
    R3_RETURN_IF_ERROR(
        dict_->DefineTransparent("NRIV", nriv, {"MANDT", "OBJECT"}));
  }
  return Status::OK();
}

Status AppServer::CreateNumberRange(const std::string& object,
                                    int64_t initial) {
  rdbms::Row row{Value::Str(options_.client), Value::Str(object),
                 Value::Int(initial)};
  return dict_->InsertLogical("NRIV", row);
}

Status AppServer::UpgradeTo30() {
  if (options_.release == Release::kRelease30) {
    return Status::InvalidArgument("already at Release 3.0");
  }
  options_.release = Release::kRelease30;
  // The Open SQL interface gains the 3.0 features; existing reports keep
  // running (and keep their 2.2 performance) until rewritten.
  open_sql_ = std::make_unique<OpenSql>(dict_.get(), conn_.get(), buffer_.get(),
                                        db_->clock(), options_.release,
                                        options_.client);
  batch_input_ = std::make_unique<BatchInput>(open_sql_.get(), conn_.get(),
                                              db_->clock());
  return Status::OK();
}

R3System::R3System(AppServerOptions app_options,
                   rdbms::DatabaseOptions db_options)
    : clock(), db(&clock, db_options), app(&db, std::move(app_options)) {}

}  // namespace appsys
}  // namespace r3
