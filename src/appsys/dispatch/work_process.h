#ifndef R3DB_APPSYS_DISPATCH_WORK_PROCESS_H_
#define R3DB_APPSYS_DISPATCH_WORK_PROCESS_H_

#include <map>
#include <memory>
#include <string>

#include "appsys/connection.h"
#include "appsys/dispatch/request.h"
#include "appsys/open_sql.h"
#include "appsys/sql_trace.h"
#include "rdbms/session_pool.h"

namespace r3 {
namespace appsys {
namespace dispatch {

/// One R/3 work process: a class-typed executor slot with its *own* database
/// session (leased from the RDBMS session pool), its own DbConnection — and
/// therefore its own cursor cache — and optionally its own ST05 trace. The
/// per-WP cursor cache is faithful to R/3 (each work process keeps private
/// open cursors against its shadow process) and is why a landscape-wide
/// ST05 needs SqlTrace::Combine().
struct WorkProcess {
  int32_t id = 0;
  WpClass wp_class = WpClass::kDialog;

  rdbms::SessionPool::Lease session;
  std::unique_ptr<DbConnection> conn;
  std::unique_ptr<SqlTrace> trace;  ///< non-null when ST05 is enabled
  /// One Open SQL interface per client (MANDT) that ever ran on this WP —
  /// the interface object carries the session client for predicate
  /// injection, so multi-tenant routing needs one per tenant.
  std::map<std::string, std::unique_ptr<OpenSql>> open_sql_by_client;

  // -- Scheduling state (virtual timeline, maintained by the dispatcher) ----
  bool busy = false;
  int64_t busy_until_us = 0;
  int64_t busy_us = 0;  ///< accumulated service time (utilization numerator)
  int64_t steps = 0;    ///< dialog steps executed
};

}  // namespace dispatch
}  // namespace appsys
}  // namespace r3

#endif  // R3DB_APPSYS_DISPATCH_WORK_PROCESS_H_
