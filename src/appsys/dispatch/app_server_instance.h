#ifndef R3DB_APPSYS_DISPATCH_APP_SERVER_INSTANCE_H_
#define R3DB_APPSYS_DISPATCH_APP_SERVER_INSTANCE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "appsys/data_dictionary.h"
#include "appsys/dispatch/dispatcher.h"
#include "appsys/release.h"
#include "appsys/table_buffer.h"
#include "appsys/workload_monitor.h"
#include "common/status.h"
#include "rdbms/db.h"
#include "rdbms/session_pool.h"

namespace r3 {
namespace appsys {
namespace dispatch {

struct InstanceOptions {
  /// Instance name; SystemLandscape::Start treats it as a prefix and
  /// appends the instance number ("as" -> "as01", "as02", ...).
  std::string name = "as";
  Release release = Release::kRelease30;
  /// Per-instance table buffer (each app server caches independently —
  /// the paper's weak "periodic sync" coherency is per server).
  size_t table_buffer_bytes = 2u << 20;
  std::vector<std::string> buffered_tables = {"MARA", "MAKT", "KNA1"};
  int dialog_wps = 6;
  int batch_wps = 2;
  int update_wps = 2;
  DispatcherOptions dispatcher;
  bool st05 = false;  ///< per-WP SQL traces (merged landscape-wide)
};

/// One application-server instance of a landscape: its own dispatcher and
/// work-process pool, its own table buffer and per-WP cursor caches and
/// program buffer, sharing the one Database (and its DataDictionary) with
/// every other instance — the paper's Figure 1 drawn with N boxes in
/// layer 2.
class AppServerInstance {
 public:
  AppServerInstance(rdbms::Database* db, DataDictionary* dict,
                    rdbms::SessionPool* sessions, InstanceOptions options);

  AppServerInstance(const AppServerInstance&) = delete;
  AppServerInstance& operator=(const AppServerInstance&) = delete;

  /// Creates the work processes (one session lease + connection each).
  /// Fails when the session pool cannot cover the configured pool sizes.
  Status Start();

  /// The Open SQL interface of `wp` for one client (MANDT) — created on
  /// first use; the interface object is what injects the client predicate,
  /// so tenancy isolation holds per (work process, client) pair.
  OpenSql* OpenSqlFor(WorkProcess* wp, const std::string& client);

  /// Charges (and books as ST03 load time) the one-time program load of
  /// `tcode` on this instance's program buffer.
  void EnsureProgramLoaded(const std::string& tcode);

  const std::string& name() const { return options_.name; }
  const InstanceOptions& options() const { return options_; }
  rdbms::Database* db() { return db_; }
  SimClock* clock() { return db_->clock(); }
  DataDictionary* dictionary() { return dict_; }
  TableBuffer* buffer() { return buffer_.get(); }
  WorkloadMonitor* monitor() { return monitor_.get(); }
  Dispatcher* dispatcher() { return dispatcher_.get(); }

 private:
  rdbms::Database* db_;
  DataDictionary* dict_;
  rdbms::SessionPool* sessions_;
  InstanceOptions options_;
  std::unique_ptr<TableBuffer> buffer_;
  std::unique_ptr<WorkloadMonitor> monitor_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::set<std::string> loaded_programs_;
};

}  // namespace dispatch
}  // namespace appsys
}  // namespace r3

#endif  // R3DB_APPSYS_DISPATCH_APP_SERVER_INSTANCE_H_
