#ifndef R3DB_APPSYS_DISPATCH_LANDSCAPE_H_
#define R3DB_APPSYS_DISPATCH_LANDSCAPE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "appsys/dispatch/app_server_instance.h"
#include "appsys/dispatch/request.h"
#include "appsys/sql_trace.h"
#include "common/json.h"
#include "common/status.h"
#include "rdbms/db.h"
#include "rdbms/session_pool.h"

namespace r3 {
namespace appsys {
namespace dispatch {

/// What one executed script reports back to the event loop.
struct ScriptResult {
  int64_t rows = 0;  ///< rows shipped/processed (reporting only)
  bool ok = true;    ///< false = business-level failure (missing data, ...)
  /// A request to schedule at this step's completion time — VA01's
  /// asynchronous update posting. The runner fills everything except
  /// arrival_us and seq (the landscape stamps those).
  std::optional<PlannedRequest> followup;
};

/// Executes one script on one work process. Supplied by the workload layer
/// (sap/dialog_workload.h) so this subsystem stays free of SAP content; a
/// hard (engine) error aborts the run, business failures go in
/// ScriptResult::ok.
using ScriptRunner = std::function<Status(
    AppServerInstance*, WorkProcess*, const PlannedRequest&, ScriptResult*)>;

struct LandscapeOptions {
  int num_instances = 1;
  /// Template for every instance (names get a per-instance suffix).
  InstanceOptions instance;
  /// RDBMS session cap shared by all instances (0 = unlimited). Every work
  /// process holds one session for its whole lifetime, so this must cover
  /// num_instances × (dialog+batch+update) or Start() fails.
  int64_t max_sessions = 0;
  /// Logon groups: client (MANDT) -> instance indices serving it. A client
  /// not listed may log on anywhere. Users hash onto their group round-
  /// robin by user id — sticky (a user's steps all run on one instance),
  /// like real R/3 logon load balancing.
  std::map<std::string, std::vector<int>> logon_groups;
};

/// A multi-app-server R/3 installation over one shared Database, plus the
/// discrete-event loop that runs an open-loop workload against it.
///
/// Simulation model: requests arrive on a virtual timeline (generated
/// offline, think times included). The event loop dispatches each arrival
/// to its routed instance; a free work process executes the script
/// *atomically* against the real engine — the script's charges to the
/// shared SimClock are measured with a SimTimer and become the step's
/// service time on the virtual timeline; the work process is then busy
/// until dispatch + service. Queue wait is virtual-timeline time between
/// arrival and dispatch. Because event order is a deterministic function of
/// (requests, options) and the engine itself is deterministic, the whole
/// run — percentiles included — is byte-reproducible regardless of host
/// threading (exec_threads changes wall clock only, never simulated time).
class SystemLandscape {
 public:
  SystemLandscape(rdbms::Database* db, DataDictionary* dict,
                  LandscapeOptions options);

  SystemLandscape(const SystemLandscape&) = delete;
  SystemLandscape& operator=(const SystemLandscape&) = delete;

  /// Builds the instances and their work-process pools.
  Status Start();

  int num_instances() const { return static_cast<int>(instances_.size()); }
  AppServerInstance* instance(int i) { return instances_[i].get(); }
  rdbms::SessionPool* sessions() { return sessions_.get(); }

  /// Which instance serves (client, user) — logon-group routing.
  int Route(const std::string& client, int32_t user) const;

  /// Aggregates of one work-process class across the landscape.
  struct ClassStats {
    int64_t wps = 0;
    int64_t completed = 0;
    int64_t rejected = 0;
    int64_t queued = 0;            ///< went through a queue before dispatch
    int64_t busy_us = 0;
    int64_t total_wait_us = 0;
    int64_t peak_queue_depth = 0;  ///< max over instances
    /// Time-weighted landscape-total depth: summed queue-depth integrals of
    /// all instances over the makespan (i.e. the expected number of queued
    /// requests of this class at a random virtual instant).
    double mean_queue_depth = 0;
    double utilization = 0;        ///< busy_us / (wps × makespan)
  };

  struct RunResult {
    int64_t offered = 0;    ///< planned requests + scheduled followups
    int64_t completed = 0;
    int64_t rejected = 0;
    int64_t script_errors = 0;  ///< completed with ScriptResult::ok == false
    int64_t makespan_us = 0;    ///< virtual time of the last completion
    // Dialog-step response time (wait + service), completed kDialog steps.
    int64_t dialog_steps = 0;
    int64_t dialog_p50_us = 0;
    int64_t dialog_p95_us = 0;
    int64_t dialog_p99_us = 0;
    int64_t dialog_mean_us = 0;
    int64_t dialog_max_us = 0;
    ClassStats per_class[kNumWpClasses];
    std::vector<RequestOutcome> outcomes;  ///< in dispatch order

    /// Deterministic document (no wall-clock, no addresses): the bench's
    /// per-point record and the determinism test's byte-comparison unit.
    json::Value ToJson() const;
  };

  /// Runs the workload to completion (arrivals stop with the input; queues
  /// drain). `requests` must be sorted by (arrival_us, seq).
  Result<RunResult> Run(std::vector<PlannedRequest> requests,
                        const ScriptRunner& runner);

  /// Landscape-wide ST05: merges every work process's trace into `out`
  /// (only meaningful when InstanceOptions::st05 was set).
  void CombineTraces(SqlTrace* out) const;

  /// ST03 reports of every instance, as one JSON array.
  json::Value St03Json() const;

 private:
  struct Event;

  void StartExecution(int inst_idx, WorkProcess* wp, PlannedRequest req,
                      int64_t now_us, const ScriptRunner& runner,
                      std::vector<Event>* heap, RunResult* result,
                      Status* error);

  rdbms::Database* db_;
  DataDictionary* dict_;
  LandscapeOptions options_;
  std::unique_ptr<rdbms::SessionPool> sessions_;
  std::vector<std::unique_ptr<AppServerInstance>> instances_;
  int64_t next_seq_ = 0;
};

}  // namespace dispatch
}  // namespace appsys
}  // namespace r3

#endif  // R3DB_APPSYS_DISPATCH_LANDSCAPE_H_
