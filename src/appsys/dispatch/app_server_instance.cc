#include "appsys/dispatch/app_server_instance.h"

#include <utility>

namespace r3 {
namespace appsys {
namespace dispatch {

AppServerInstance::AppServerInstance(rdbms::Database* db, DataDictionary* dict,
                                     rdbms::SessionPool* sessions,
                                     InstanceOptions options)
    : db_(db), dict_(dict), sessions_(sessions), options_(std::move(options)) {
  buffer_ = std::make_unique<TableBuffer>(
      db_->clock(), options_.table_buffer_bytes, db_->metrics());
  for (const std::string& t : options_.buffered_tables) {
    buffer_->EnableFor(t);
  }
  monitor_ = std::make_unique<WorkloadMonitor>(db_->clock());
  dispatcher_ = std::make_unique<Dispatcher>(db_->clock(), db_->metrics(),
                                             options_.dispatcher);
}

Status AppServerInstance::Start() {
  struct PoolSpec {
    WpClass wp_class;
    int count;
  };
  const PoolSpec pools[] = {
      {WpClass::kDialog, options_.dialog_wps},
      {WpClass::kBatch, options_.batch_wps},
      {WpClass::kUpdate, options_.update_wps},
  };
  int32_t next_id = 0;
  for (const PoolSpec& p : pools) {
    for (int i = 0; i < p.count; ++i) {
      WorkProcess wp;
      wp.id = next_id++;
      wp.wp_class = p.wp_class;
      auto lease = sessions_->Acquire();
      R3_RETURN_IF_ERROR(lease.status());
      wp.session = std::move(lease).value();
      wp.conn = std::make_unique<DbConnection>(db_, db_->clock());
      wp.conn->set_workload_monitor(monitor_.get());
      if (options_.st05) {
        wp.trace = std::make_unique<SqlTrace>();
        wp.conn->set_sql_trace(wp.trace.get());
      }
      dispatcher_->AddWorkProcess(std::move(wp));
    }
  }
  return Status::OK();
}

OpenSql* AppServerInstance::OpenSqlFor(WorkProcess* wp,
                                       const std::string& client) {
  auto it = wp->open_sql_by_client.find(client);
  if (it == wp->open_sql_by_client.end()) {
    it = wp->open_sql_by_client
             .emplace(client, std::make_unique<OpenSql>(
                                  dict_, wp->conn.get(), buffer_.get(),
                                  db_->clock(), options_.release, client))
             .first;
  }
  return it->second.get();
}

void AppServerInstance::EnsureProgramLoaded(const std::string& tcode) {
  if (!loaded_programs_.insert(tcode).second) return;
  // A cold program load is real work on the app server: charge the clock
  // (it is part of the step's service time) and book it as ST03 load time
  // so the decomposition shows it, exactly like the real monitor.
  int64_t load_us = db_->clock()->model().program_load_us;
  db_->clock()->Charge(load_us);
  monitor_->AddLoadTime(load_us);
}

}  // namespace dispatch
}  // namespace appsys
}  // namespace r3
