#include "appsys/dispatch/dispatcher.h"

#include <utility>

namespace r3 {
namespace appsys {
namespace dispatch {

Dispatcher::Dispatcher(SimClock* clock, MetricsRegistry* metrics,
                       DispatcherOptions options)
    : clock_(clock), options_(options) {
  m_requests_ = metrics->GetCounter("appsys.dispatch.requests");
  m_queued_ = metrics->GetCounter("appsys.dispatch.queued");
  m_rejected_ = metrics->GetCounter("appsys.dispatch.rejected");
  m_wait_count_ = metrics->GetCounter("appsys.wait.dispatch_queue");
  h_wait_us_ = metrics->GetHistogram("appsys.wait.dispatch_queue_us");
}

WorkProcess* Dispatcher::AddWorkProcess(WorkProcess wp) {
  wps_.push_back(std::move(wp));
  return &wps_.back();
}

void Dispatcher::OnArrival() { m_requests_->Add(1); }

WorkProcess* Dispatcher::FindFreeWp(WpClass c) {
  for (WorkProcess& wp : wps_) {
    if (wp.wp_class == c && !wp.busy) return &wp;
  }
  return nullptr;
}

void Dispatcher::AdvanceDepthClock(WpClass c, int64_t now_us) {
  QueueStats& s = stats_[static_cast<size_t>(c)];
  s.depth_integral_us += s.cur_depth * (now_us - s.last_change_us);
  s.last_change_us = now_us;
}

bool Dispatcher::Enqueue(PlannedRequest req, int64_t now_us) {
  size_t ci = static_cast<size_t>(req.wp_class);
  QueueStats& s = stats_[ci];
  if (static_cast<int64_t>(queues_[ci].size()) >= options_.queue_cap[ci]) {
    s.rejected += 1;
    m_rejected_->Add(1);
    return false;
  }
  AdvanceDepthClock(req.wp_class, now_us);
  queues_[ci].push_back(std::move(req));
  s.cur_depth += 1;
  if (s.cur_depth > s.peak_depth) s.peak_depth = s.cur_depth;
  s.queued_total += 1;
  m_queued_->Add(1);
  return true;
}

std::optional<PlannedRequest> Dispatcher::PopQueued(WpClass c,
                                                    int64_t now_us) {
  size_t ci = static_cast<size_t>(c);
  if (queues_[ci].empty()) return std::nullopt;
  AdvanceDepthClock(c, now_us);
  PlannedRequest req = std::move(queues_[ci].front());
  queues_[ci].pop_front();
  stats_[ci].cur_depth -= 1;
  return req;
}

void Dispatcher::MarkBusy(WorkProcess* wp, int64_t now_us, int64_t until_us) {
  wp->busy = true;
  wp->busy_until_us = until_us;
  wp->busy_us += until_us - now_us;
  wp->steps += 1;
}

void Dispatcher::MarkFree(WorkProcess* wp) { wp->busy = false; }

void Dispatcher::RecordQueueWait(WpClass c, int64_t arrival_us,
                                 int64_t wait_us) {
  QueueStats& s = stats_[static_cast<size_t>(c)];
  s.total_wait_us += wait_us;
  // The histogram sees every dispatched step (zero waits included — the
  // distribution's mass at 0 is the unsaturated regime); the counter counts
  // steps that actually waited, mirroring the wait-event log.
  h_wait_us_->Observe(wait_us);
  if (wait_us <= 0) return;
  s.waited_steps += 1;
  m_wait_count_->Add(1);
  if (WaitEventLog* log = clock_->wait_log()) {
    log->Record(WaitClass::kDispatchQueue, arrival_us, wait_us,
                std::string(WpClassName(c)) + " queue");
  }
}

void Dispatcher::FinishAccounting(int64_t horizon_us) {
  for (size_t ci = 0; ci < kNumWpClasses; ++ci) {
    AdvanceDepthClock(static_cast<WpClass>(ci), horizon_us);
  }
}

}  // namespace dispatch
}  // namespace appsys
}  // namespace r3
